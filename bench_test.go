package repro_test

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation section, plus the ablations DESIGN.md calls for
// and throughput benchmarks of the pass itself. Metrics are emitted
// with b.ReportMetric so `go test -bench . -benchmem` prints the
// paper-shaped numbers (improvement percentages, color deltas) next to
// the usual ns/op.

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/regalloc"
	"repro/internal/report"
	"repro/internal/workload"
)

// BenchmarkTable1Static regenerates Table 1: static counts of singleton
// loads and stores before and after promotion, per benchmark.
func BenchmarkTable1Static(b *testing.B) {
	var rows []report.Row1
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = report.Table1(report.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	var imp float64
	for _, r := range rows {
		imp += r.TotalImprovement()
	}
	b.ReportMetric(imp/float64(len(rows)), "mean_static_impro_%")
}

// BenchmarkTable2Dynamic regenerates Table 2: dynamic counts of memory
// operations before and after promotion — the paper's headline metric.
func BenchmarkTable2Dynamic(b *testing.B) {
	var rows []report.Row2
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = report.Table2(report.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(report.MeanTotalImprovement(rows), "mean_dyn_impro_%")
	for _, r := range rows {
		if r.Name == "go" {
			b.ReportMetric(r.LoadImprovement(), "go_load_impro_%")
		}
		if r.Name == "vortex" {
			b.ReportMetric(r.TotalImprovement(), "vortex_impro_%")
		}
	}
}

// BenchmarkTable3RegPressure regenerates Table 3: interference graph
// colors before and after promotion on routines with promotion
// opportunities.
func BenchmarkTable3RegPressure(b *testing.B) {
	var rows []report.Row3
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = report.Table3(report.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	delta := 0
	for _, r := range rows {
		delta += r.ColorsAfter - r.ColorsBefore
	}
	b.ReportMetric(float64(delta)/float64(len(rows)), "mean_color_delta")
	b.ReportMetric(float64(len(rows)), "routines")
}

// BenchmarkFigure1 runs the paper's running example end to end and
// reports the dynamic memory operations removed (200 -> ~2 in the first
// loop).
func BenchmarkFigure1(b *testing.B) {
	src := `
int x;
void foo() { x = x + 1; }
void main() {
	int i;
	for (i = 0; i < 100; i++) x++;
	for (i = 0; i < 10; i++) foo();
	print(x);
}
`
	var out *pipeline.Outcome
	for i := 0; i < b.N; i++ {
		var err error
		out, err = pipeline.Run(src, pipeline.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(out.Before.DynMemOps()), "memops_before")
	b.ReportMetric(float64(out.After.DynMemOps()), "memops_after")
}

// BenchmarkFigure7ColdCall runs the Figures 7/8 scenario and reports
// how the SSA algorithm and the loop baseline compare on a loop whose
// only aliased reference is cold.
func BenchmarkFigure7ColdCall(b *testing.B) {
	src := `
int x;
int log;
void foo() { log = log + x; }
void main() {
	int i;
	for (i = 0; i < 1000; i++) {
		x++;
		if (x < 30) foo();
	}
	print(x);
	print(log);
}
`
	var ssaOps, baseOps int64
	for i := 0; i < b.N; i++ {
		ssaOut, err := pipeline.Run(src, pipeline.Options{Algorithm: pipeline.AlgSSA})
		if err != nil {
			b.Fatal(err)
		}
		baseOut, err := pipeline.Run(src, pipeline.Options{Algorithm: pipeline.AlgBaseline})
		if err != nil {
			b.Fatal(err)
		}
		ssaOps, baseOps = ssaOut.After.DynMemOps(), baseOut.After.DynMemOps()
	}
	b.ReportMetric(float64(ssaOps), "ssa_memops")
	b.ReportMetric(float64(baseOps), "baseline_memops")
}

// BenchmarkAblationSSAvsBaseline sweeps the whole suite under both
// algorithms and reports total dynamic memory operations.
func BenchmarkAblationSSAvsBaseline(b *testing.B) {
	var rows []report.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = report.Ablation(
			report.Options{Algorithm: pipeline.AlgSSA},
			report.Options{Algorithm: pipeline.AlgBaseline},
			"ssa", "baseline")
		if err != nil {
			b.Fatal(err)
		}
	}
	var ssaTotal, baseTotal float64
	for _, r := range rows {
		ssaTotal += float64(r.BaseA)
		baseTotal += float64(r.BaseB)
	}
	b.ReportMetric(ssaTotal, "ssa_total_memops")
	b.ReportMetric(baseTotal, "baseline_total_memops")
}

// BenchmarkAblationProfile compares measured-profile promotion against
// the static loop-depth estimator.
func BenchmarkAblationProfile(b *testing.B) {
	var rows []report.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = report.Ablation(
			report.Options{},
			report.Options{StaticProfile: true},
			"measured", "static")
		if err != nil {
			b.Fatal(err)
		}
	}
	var measured, static float64
	for _, r := range rows {
		measured += float64(r.BaseA)
		static += float64(r.BaseB)
	}
	b.ReportMetric(measured, "measured_total_memops")
	b.ReportMetric(static, "static_total_memops")
}

// BenchmarkAblationProfitFormula compares the repository's safe profit
// formula (tail stores counted) against the paper's printed formula.
func BenchmarkAblationProfitFormula(b *testing.B) {
	var rows []report.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = report.Ablation(
			report.Options{},
			report.Options{PaperProfitFormula: true},
			"safe", "paper")
		if err != nil {
			b.Fatal(err)
		}
	}
	var safe, paper float64
	for _, r := range rows {
		safe += float64(r.BaseA)
		paper += float64(r.BaseB)
	}
	b.ReportMetric(safe, "safe_total_memops")
	b.ReportMetric(paper, "paper_total_memops")
}

// BenchmarkAblationScope compares interval-scoped promotion (the
// paper's algorithm) against whole-function-scope promotion (its
// rejected first approach, section 4.1).
func BenchmarkAblationScope(b *testing.B) {
	var rows []report.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = report.Ablation(
			report.Options{},
			report.Options{WholeFunctionScope: true},
			"intervals", "whole-function")
		if err != nil {
			b.Fatal(err)
		}
	}
	var intervals, whole float64
	for _, r := range rows {
		intervals += float64(r.BaseA)
		whole += float64(r.BaseB)
	}
	b.ReportMetric(intervals, "interval_total_memops")
	b.ReportMetric(whole, "wholefunc_total_memops")
}

// BenchmarkAblationMemOpt compares full promotion against the
// memory-SSA scalar optimizations alone (store forwarding, redundant
// load elimination, dead store elimination) — how much of the win is
// plain redundancy removal.
func BenchmarkAblationMemOpt(b *testing.B) {
	var rows []report.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = report.Ablation(
			report.Options{},
			report.Options{Algorithm: pipeline.AlgMemOpt},
			"promotion", "memopt")
		if err != nil {
			b.Fatal(err)
		}
	}
	var promo, memopt float64
	for _, r := range rows {
		promo += float64(r.BaseA)
		memopt += float64(r.BaseB)
	}
	b.ReportMetric(promo, "promotion_total_memops")
	b.ReportMetric(memopt, "memopt_total_memops")
}

// BenchmarkPromotionThroughput measures compile+promote time per
// workload — the cost of the pass itself, without measurement runs.
func BenchmarkPromotionThroughput(b *testing.B) {
	for _, w := range workload.Suite() {
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.Run(w.Src, pipeline.Options{
					StaticProfile:   true,
					SkipMeasurement: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRegallocThroughput measures interference graph construction
// and coloring on promoted programs.
func BenchmarkRegallocThroughput(b *testing.B) {
	var progs []*pipeline.Outcome
	for _, w := range workload.Suite() {
		out, err := pipeline.Run(w.Src, pipeline.Options{
			StaticProfile:   true,
			SkipMeasurement: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, out)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, out := range progs {
			regalloc.AllocateProgram(out.Prog)
		}
	}
}

// BenchmarkGeneratedPrograms exercises the whole pipeline on random
// programs, a stress benchmark for compile-time robustness.
func BenchmarkGeneratedPrograms(b *testing.B) {
	srcs := make([]string, 10)
	for i := range srcs {
		srcs[i] = workload.Generate(workload.DefaultGenConfig(int64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := srcs[i%len(srcs)]
		if _, err := pipeline.Run(src, pipeline.Options{
			StaticProfile:   true,
			SkipMeasurement: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Loopglobals reproduces the paper's Figure 1, its running example: a
// global x incremented 100 times in one loop, then a function called 10
// times in a second loop. Interval-scoped promotion turns the first
// loop's 200 memory operations into one load before the loop and one
// store after it, while the call-bearing second loop is left for the
// calls to handle — the whole point of using intervals rather than the
// entire program as the promotion scope.
package main

import (
	"fmt"
	"log"

	"repro/internal/pipeline"
)

const figure1 = `
int x;

void foo() { x = x + 1; }

void main() {
	int i;
	for (i = 0; i < 100; i++) x++;
	for (i = 0; i < 10; i++) foo();
	print(x);
}
`

func main() {
	out, err := pipeline.Run(figure1, pipeline.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 1: two loops over global x")
	fmt.Printf("final x (must be 110): before=%v after=%v\n\n",
		out.Before.Output, out.After.Output)

	fmt.Printf("dynamic loads:  %4d -> %4d\n", out.Before.DynLoads(), out.After.DynLoads())
	fmt.Printf("dynamic stores: %4d -> %4d\n", out.Before.DynStores(), out.After.DynStores())
	fmt.Println()
	fmt.Println("The first loop originally loads and stores x every iteration")
	fmt.Println("(200 operations). After promotion, main performs one load in")
	fmt.Println("the first loop's preheader and one store at its exit; the ten")
	fmt.Println("foo() calls account for the rest of the remaining traffic.")
	fmt.Println()

	fmt.Println("== promoted main ==")
	fmt.Print(out.Prog.Func("main"))
}

// Pointerlab demonstrates how the alias model shapes promotion:
// address-taken locals, pointers that escape into callees, and pointer
// stores inside loops. Each scenario prints whether promotion was able
// to act and what it cost — and verifies the transformed program still
// computes the same answers.
package main

import (
	"fmt"
	"log"
	"reflect"

	"repro/internal/pipeline"
)

type scenario struct {
	name string
	note string
	src  string
}

var scenarios = []scenario{
	{
		name: "address-taken local, no aliased refs in loop",
		note: "the slot promotes: &a exists, but the loop itself is clean",
		src: `
void main() {
	int a = 0;
	int* p = &a;
	*p = 5;
	int i;
	for (i = 0; i < 500; i++) a += i;
	print(a);
}`,
	},
	{
		name: "pointer store on a cold path inside the loop",
		note: "promotion compensates: a store lands just before the *p write",
		src: `
int x;
void main() {
	int* p = &x;
	int i;
	for (i = 0; i < 500; i++) {
		x++;
		if (i % 125 == 124) { *p = x * 2; }
	}
	print(x);
}`,
	},
	{
		name: "escaped pointer: callee writes through it every iteration",
		note: "aliased on the hot path: the web is rejected, program unharmed",
		src: `
void bump(int* q) { *q = *q + 1; }
void main() {
	int a = 0;
	int i;
	for (i = 0; i < 500; i++) bump(&a);
	print(a);
}`,
	},
	{
		name: "two globals, only one aliased by the pointer",
		note: "y's web promotes even though x's is pinned by *p",
		src: `
int x;
int y;
void main() {
	int* p = &x;
	int i;
	for (i = 0; i < 500; i++) {
		y += i;
		*p = y;
	}
	print(x);
	print(y);
}`,
	},
}

func main() {
	for _, sc := range scenarios {
		out, err := pipeline.Run(sc.src, pipeline.Options{})
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		if !reflect.DeepEqual(out.Before.Output, out.After.Output) {
			log.Fatalf("%s: promotion changed behaviour!", sc.name)
		}
		s := out.TotalStats
		fmt.Printf("── %s\n", sc.name)
		fmt.Printf("   %s\n", sc.note)
		fmt.Printf("   dynamic mem ops %d -> %d; webs promoted %d, load-only %d, rejected %d\n",
			out.Before.DynMemOps(), out.After.DynMemOps(),
			s.WebsPromoted, s.WebsLoadOnly, s.WebsRejected)
		fmt.Printf("   output %v unchanged ✓\n\n", out.After.Output)
	}
}

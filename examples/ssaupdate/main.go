// Ssaupdate demonstrates the paper's second contribution in isolation:
// the batch incremental SSA update for cloned definitions (its Figures
// 9–11). The program builds the paper's Example 2 CFG with the IR API,
// clones two store definitions of x exactly as register promotion
// would, runs ssa.UpdateForClonedResources, and prints the function
// before and after — showing the phi placed at the join, the renamed
// uses, and the dead-code cascade that removes the original store and
// the redundant phis.
package main

import (
	"fmt"
	"log"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/ssa"
)

func main() {
	p := ir.NewProgram()
	g := p.AddGlobal("x", 1, false, nil)
	f := ir.NewFunction(p, "example2")
	base := f.AddResource("x", ir.ResScalar, ir.GlobalLoc(g, 0))

	cond := f.NewReg("c")
	f.Params = []ir.RegID{cond}

	// The paper's six-block interval plus entry and exit:
	// b0 -> b1; b1 -> {b2, b3}; b2 -> {b4, b5}; b3 -> b5;
	// b4 -> b6; b5 -> b6; b6 -> {b1, b7}.
	var b [8]*ir.Block
	for i := range b {
		b[i] = f.NewBlock()
	}
	edge := ir.AddEdge
	edge(b[0], b[1])
	edge(b[1], b[2])
	edge(b[1], b[3])
	edge(b[2], b[4])
	edge(b[2], b[5])
	edge(b[3], b[5])
	edge(b[4], b[6])
	edge(b[5], b[6])
	edge(b[6], b[1])
	edge(b[6], b[7])

	b[0].Append(ir.NewInstr(ir.OpJmp, ir.NoReg))

	// x0 (version 1 here): the existing definition in b1.
	v1 := f.NewVersion(base.ID)
	def := ir.NewInstr(ir.OpStore, ir.NoReg, ir.ConstVal(10))
	def.Loc = ir.GlobalLoc(g, 0)
	def.MemDefs = []ir.MemRef{{Res: v1.ID}}
	b[1].Append(def)
	b[1].Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(cond)))

	b[2].Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(cond)))

	load := func(blk *ir.Block) *ir.Instr {
		r := f.NewReg("")
		ld := ir.NewInstr(ir.OpLoad, r)
		ld.Loc = ir.GlobalLoc(g, 0)
		ld.MemUses = []ir.MemRef{{Res: v1.ID}}
		blk.Append(ld)
		return ld
	}
	load(b[3])
	b[3].Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
	load(b[4])
	b[4].Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
	load(b[5])
	b[5].Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
	b[6].Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(cond)))
	b[7].Append(ir.NewInstr(ir.OpRet, ir.NoReg))

	// Clone two definitions, as register promotion does when it sinks
	// stores: one at the end of b2, one in b3 ahead of its use.
	v2 := f.NewVersion(base.ID)
	clone1 := ir.NewInstr(ir.OpStore, ir.NoReg, ir.ConstVal(20))
	clone1.Loc = ir.GlobalLoc(g, 0)
	clone1.MemDefs = []ir.MemRef{{Res: v2.ID}}
	b[2].InsertBeforeTerm(clone1)

	v3 := f.NewVersion(base.ID)
	clone2 := ir.NewInstr(ir.OpStore, ir.NoReg, ir.ConstVal(30))
	clone2.Loc = ir.GlobalLoc(g, 0)
	clone2.MemDefs = []ir.MemRef{{Res: v3.ID}}
	b[3].InsertBefore(clone2, b[3].Instrs[0])

	fmt.Println("== before the incremental update (SSA broken: uses still name x.1) ==")
	fmt.Print(f)

	dom := cfg.BuildDomTree(f)
	df := cfg.BuildDomFrontiers(dom)
	livePhis, err := ssa.UpdateForClonedResources(f, dom, df,
		[]ir.ResourceID{v1.ID}, []ir.ResourceID{v2.ID, v3.ID})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== after ==")
	fmt.Print(f)
	fmt.Printf("\nlive phis inserted: %d (at ", len(livePhis))
	for i, phi := range livePhis {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(phi.Parent)
	}
	fmt.Println(")")
	fmt.Println("note: the original store in b1 and the frontier phis at b1/b6")
	fmt.Println("died during the update's sweep — cloning introduced no dead code.")

	if err := ssa.VerifyDominance(f); err != nil {
		log.Fatalf("SSA invariant violated: %v", err)
	}
	fmt.Println("SSA dominance verified ✓")
}

// Coldcall reproduces the scenario of the paper's Figures 7 and 8: a
// hot loop whose only aliased reference — a function call — sits on a
// rarely executed path. A loop-based promoter gives up on the whole
// loop; the profile-driven SSA algorithm promotes x and pays for it
// with a compensation store before the call and a reload after it, on
// the cold path only. This example runs both algorithms side by side.
package main

import (
	"fmt"
	"log"

	"repro/internal/pipeline"
)

const coldCall = `
int x;
int log;

void foo() { log = log + x; }

void main() {
	int i;
	for (i = 0; i < 1000; i++) {
		x++;
		if (x < 30) foo();
	}
	print(x);
	print(log);
}
`

func main() {
	ssaOut, err := pipeline.Run(coldCall, pipeline.Options{Algorithm: pipeline.AlgSSA})
	if err != nil {
		log.Fatal(err)
	}
	baseOut, err := pipeline.Run(coldCall, pipeline.Options{Algorithm: pipeline.AlgBaseline})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Cold call path: for(i<1000){ x++; if (x<30) foo(); }")
	fmt.Println("foo() executes only while x < 30 — about 29 of 1000 iterations.")
	fmt.Println()
	fmt.Printf("%-22s %10s %10s\n", "", "loads", "stores")
	fmt.Printf("%-22s %10d %10d\n", "unpromoted",
		ssaOut.Before.DynLoads(), ssaOut.Before.DynStores())
	fmt.Printf("%-22s %10d %10d\n", "loop-based baseline",
		baseOut.After.DynLoads(), baseOut.After.DynStores())
	fmt.Printf("%-22s %10d %10d\n", "SSA promotion (paper)",
		ssaOut.After.DynLoads(), ssaOut.After.DynStores())
	fmt.Println()
	fmt.Println("The baseline sees a call in the loop and refuses to promote;")
	fmt.Println("the paper's algorithm sinks the load/store pair into the cold")
	fmt.Println("arm, keeping the hot path free of memory traffic.")
	fmt.Println()
	fmt.Println("== promoted main (SSA algorithm) ==")
	fmt.Print(ssaOut.Prog.Func("main"))
}

// Quickstart: compile a mini-C program, run the register promotion
// pipeline, and inspect the result — the five-minute tour of the
// public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/pipeline"
)

const program = `
int counter;
int limit = 10000;

void main() {
	int i;
	for (i = 0; i < limit; i++) {
		counter = counter + i;
	}
	print(counter);
}
`

func main() {
	// pipeline.Run does everything: parse, type-check, lower to IR,
	// alias-annotate, normalize the CFG, collect a training profile by
	// interpretation, build SSA (registers and memory), run the
	// interval-based promotion pass, clean up, leave SSA, and finally
	// measure the promoted program against the original.
	out, err := pipeline.Run(program, pipeline.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== what the program prints (unchanged by promotion) ==")
	fmt.Println("before:", out.Before.Output)
	fmt.Println("after: ", out.After.Output)

	fmt.Println("\n== memory traffic ==")
	fmt.Printf("dynamic loads : %7d -> %d\n", out.Before.DynLoads(), out.After.DynLoads())
	fmt.Printf("dynamic stores: %7d -> %d\n", out.Before.DynStores(), out.After.DynStores())

	fmt.Println("\n== promotion statistics ==")
	s := out.TotalStats
	fmt.Printf("webs considered %d, promoted %d, load-only %d, rejected %d\n",
		s.WebsConsidered, s.WebsPromoted, s.WebsLoadOnly, s.WebsRejected)

	fmt.Println("\n== transformed IR ==")
	fmt.Print(out.Prog.Func("main"))
}

// Package repro is a from-scratch Go reproduction of "A New Algorithm
// for Scalar Register Promotion Based on SSA Form" (A.V.S. Sastry and
// Roy D.C. Ju, PLDI 1998): a profile-driven, interval-scoped register
// promotion pass over an SSA intermediate representation with explicit
// memory resources, together with every substrate the paper depends on
// — a mini-C frontend, CFG and dominance analyses, SSA construction and
// incremental update, an interpreter that measures the paper's dynamic
// cost metric, a coloring register allocator for the register pressure
// study, the loop-based baseline it improves on, and a benchmark suite
// standing in for SPECInt95.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the table-by-table reproduction record. The
// benchmarks in bench_test.go regenerate each table of the paper's
// evaluation section.
package repro

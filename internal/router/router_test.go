package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/histo"
	"repro/internal/server"
	"repro/internal/workload"
)

// fakeReplica is a scriptable stand-in for rpserved: it answers
// /v1/promote with a canned outcome (after an optional delay), tracks
// which keys it saw, and serves /readyz and /metrics.
type fakeReplica struct {
	ts    *httptest.Server
	delay time.Duration

	mu      sync.Mutex
	sources []string
	metrics string // /metrics body override
}

func newFakeReplica(t *testing.T, delay time.Duration) *fakeReplica {
	f := &fakeReplica{delay: delay}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/promote", func(w http.ResponseWriter, r *http.Request) {
		var req server.PromoteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.sources = append(f.sources, req.Source)
		f.mu.Unlock()
		if f.delay > 0 {
			time.Sleep(f.delay)
		}
		w.Header().Set("Content-Type", "application/json")
		// Outcome must be a pure function of the source so cross-replica
		// identity checks pass: echo a digest of it.
		fmt.Fprintf(w, `{"outcome":{"src":%q},"report":"ok","serving":{"cache":"miss"}}`, req.Source)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		fmt.Fprint(w, f.metrics)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeReplica) host() string {
	u, _ := url.Parse(f.ts.URL)
	return u.Host
}

func (f *fakeReplica) seen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.sources)
}

// newTestRouter builds an unstarted router (tests drive probeOnce by
// hand for determinism).
func newTestRouter(t *testing.T, cfg Config) *Router {
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	return rt
}

func promoteBody(t *testing.T, src string) []byte {
	b, err := json.Marshal(server.PromoteRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func post(t *testing.T, h http.Handler, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/promote", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestRouterPlacementStable: every distinct source routes to exactly
// one replica, and repeats of the source land on that same replica —
// the property that keeps replica caches warm per key.
func TestRouterPlacementStable(t *testing.T) {
	a := newFakeReplica(t, 0)
	b := newFakeReplica(t, 0)
	rt := newTestRouter(t, Config{Replicas: []string{a.host(), b.host()}, HedgeDelay: -1})
	h := rt.Handler()

	placed := make(map[string]string) // source → replica header
	for round := 0; round < 3; round++ {
		for i := 0; i < 16; i++ {
			src := fmt.Sprintf("int f%d() { return %d; }", i, i)
			rec := post(t, h, promoteBody(t, src), nil)
			if rec.Code != http.StatusOK {
				t.Fatalf("source %d: status %d: %s", i, rec.Code, rec.Body.String())
			}
			rep := rec.Header().Get("X-RP-Replica")
			if rep == "" {
				t.Fatal("missing X-RP-Replica header")
			}
			if prev, ok := placed[src]; ok && prev != rep {
				t.Fatalf("source %d moved %s → %s with no ring change", i, prev, rep)
			}
			placed[src] = rep
		}
	}
	if a.seen() == 0 || b.seen() == 0 {
		t.Fatalf("placement skew: replica a saw %d, b saw %d", a.seen(), b.seen())
	}
}

// TestRouterHedging: a slow primary's requests are rescued by a hedge
// to the key's next replica well before the primary finishes.
func TestRouterHedging(t *testing.T) {
	slow := newFakeReplica(t, 300*time.Millisecond)
	fast := newFakeReplica(t, 0)
	rt := newTestRouter(t, Config{
		Replicas:   []string{slow.host(), fast.host()},
		HedgeDelay: 10 * time.Millisecond,
	})
	h := rt.Handler()

	sawHedgeWin := false
	for i := 0; i < 12; i++ {
		src := fmt.Sprintf("int g%d() { return %d; }", i, i)
		start := time.Now()
		rec := post(t, h, promoteBody(t, src), nil)
		elapsed := time.Since(start)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
		if rec.Header().Get("X-RP-Hedged") == "1" {
			sawHedgeWin = true
			if elapsed > 200*time.Millisecond {
				t.Fatalf("hedged request took %v; hedge did not rescue it", elapsed)
			}
		}
	}
	if !sawHedgeWin {
		t.Fatal("no request was won by a hedge; keys never placed on the slow replica?")
	}
	if rt.m.hedges.Load() == 0 || rt.m.hedgeWins.Load() == 0 {
		t.Fatalf("hedge counters: fired=%d wins=%d, want both > 0",
			rt.m.hedges.Load(), rt.m.hedgeWins.Load())
	}
}

// TestRouterFailoverAndRecovery: a blacked-out replica's requests fail
// over transparently (clients see 200s), the replica is demoted from
// the ring at once, and probe cycles bring it back after recovery.
func TestRouterFailoverAndRecovery(t *testing.T) {
	a := newFakeReplica(t, 0)
	b := newFakeReplica(t, 0)
	blackout := faults.NewReplicaBlackout(nil)
	rt := newTestRouter(t, Config{
		Replicas:    []string{a.host(), b.host()},
		HedgeDelay:  -1,
		Transport:   blackout,
		OkThreshold: 2,
	})
	h := rt.Handler()

	// Warm assertion: both replicas serve.
	for i := 0; i < 8; i++ {
		if rec := post(t, h, promoteBody(t, fmt.Sprintf("int h%d() { return 1; }", i)), nil); rec.Code != http.StatusOK {
			t.Fatalf("warmup %d: status %d", i, rec.Code)
		}
	}

	churnBefore := rt.m.ringChurn.Load()
	blackout.Down(a.host())
	// Every request still succeeds — a's share fails over to b.
	for i := 0; i < 16; i++ {
		rec := post(t, h, promoteBody(t, fmt.Sprintf("int h%d() { return 1; }", i)), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d during blackout: status %d: %s", i, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("X-RP-Replica"); got == a.host() && i > 0 {
			t.Fatalf("request %d placed on dead replica after demotion", i)
		}
	}
	if rt.m.failovers.Load() == 0 {
		t.Fatal("no failovers recorded during blackout")
	}
	if rt.byName[a.host()].healthy.Load() {
		t.Fatal("dead replica still marked healthy")
	}
	if rt.m.ringChurn.Load() == churnBefore {
		t.Fatal("ring churn did not advance on demotion")
	}

	// Recovery: restore the transport. The first probe round after
	// recovery drains the in-band failure notes accumulated during the
	// blackout (they count as one failed round); then OkThreshold clean
	// rounds re-promote the replica and rebuild the ring.
	blackout.Up(a.host())
	rt.probeOnce()
	rt.probeOnce()
	if rt.byName[a.host()].healthy.Load() {
		t.Fatal("replica promoted after one ok probe; OkThreshold is 2")
	}
	rt.probeOnce()
	if !rt.byName[a.host()].healthy.Load() {
		t.Fatal("replica not re-promoted after OkThreshold ok probes")
	}
}

// TestRouterProbeDemotesUnready: a replica answering /readyz with 503
// leaves the ring after FailThreshold probe rounds without any client
// traffic being involved.
func TestRouterProbeDemotesUnready(t *testing.T) {
	a := newFakeReplica(t, 0)
	notReady := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer notReady.Close()
	nu, _ := url.Parse(notReady.URL)

	rt := newTestRouter(t, Config{
		Replicas:      []string{a.host(), nu.Host},
		HedgeDelay:    -1,
		FailThreshold: 2,
	})
	rt.probeOnce()
	if !rt.byName[nu.Host].healthy.Load() {
		t.Fatal("demoted after a single failed probe; FailThreshold is 2")
	}
	rt.probeOnce()
	if rt.byName[nu.Host].healthy.Load() {
		t.Fatal("unready replica still in the ring after FailThreshold probes")
	}
	ring := rt.ring.Load()
	if ring.Len() != 1 || ring.Lookup("any") != a.host() {
		t.Fatalf("ring = %v, want only the ready replica", ring.Nodes())
	}
}

// TestRouterQuota: a tenant beyond its bucket collects 429s with a
// Retry-After hint; a different tenant is unaffected.
func TestRouterQuota(t *testing.T) {
	a := newFakeReplica(t, 0)
	rt := newTestRouter(t, Config{
		Replicas:   []string{a.host()},
		HedgeDelay: -1,
		QuotaRPS:   1,
		QuotaBurst: 2,
	})
	h := rt.Handler()

	body := promoteBody(t, "int q() { return 1; }")
	limited := 0
	for i := 0; i < 5; i++ {
		rec := post(t, h, body, map[string]string{"X-Tenant": "tenant-a"})
		if rec.Code == http.StatusTooManyRequests {
			limited++
			if rec.Header().Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After hint")
			}
		}
	}
	if limited == 0 {
		t.Fatal("tenant-a was never quota-limited")
	}
	if rec := post(t, h, body, map[string]string{"X-Tenant": "tenant-b"}); rec.Code != http.StatusOK {
		t.Fatalf("tenant-b caught tenant-a's limit: status %d", rec.Code)
	}
	if rt.m.quotaLimited.Load() != int64(limited) {
		t.Fatalf("quotaLimited = %d, want %d", rt.m.quotaLimited.Load(), limited)
	}
}

// TestRouterBadRequestShortCircuits: invalid options are rejected at
// the router with the replica's 400 shape, costing zero proxy hops.
func TestRouterBadRequestShortCircuits(t *testing.T) {
	a := newFakeReplica(t, 0)
	rt := newTestRouter(t, Config{Replicas: []string{a.host()}, HedgeDelay: -1})
	h := rt.Handler()

	body, _ := json.Marshal(server.PromoteRequest{
		Source:  "int f() { return 1; }",
		Options: server.RequestOptions{Algorithm: "turbo"},
	})
	rec := post(t, h, body, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "Algorithm") {
		t.Fatalf("400 body does not name the field: %s", rec.Body.String())
	}
	if a.seen() != 0 {
		t.Fatalf("bad request reached a replica (%d hops)", a.seen())
	}
}

// TestRouterNoHealthyReplicas: with every replica out of the ring the
// router answers 503 and /readyz flips not-ready.
func TestRouterNoHealthyReplicas(t *testing.T) {
	a := newFakeReplica(t, 0)
	rt := newTestRouter(t, Config{Replicas: []string{a.host()}, HedgeDelay: -1})
	rt.byName[a.host()].healthy.Store(false)
	rt.rebuildRing()
	h := rt.Handler()

	rec := post(t, h, promoteBody(t, "int f() { return 1; }"), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("promote status = %d, want 503", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	ready := httptest.NewRecorder()
	h.ServeHTTP(ready, req)
	if ready.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz status = %d, want 503", ready.Code)
	}
}

// TestRouterDrain: after Drain the front door answers 503 and in-flight
// work has completed.
func TestRouterDrain(t *testing.T) {
	a := newFakeReplica(t, 0)
	rt := newTestRouter(t, Config{Replicas: []string{a.host()}, HedgeDelay: -1})
	h := rt.Handler()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rec := post(t, h, promoteBody(t, "int f() { return 1; }"), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status after drain = %d, want 503", rec.Code)
	}
}

// TestDerivedHedgeDelay: the router scrapes replica request-latency
// histograms and sets its hedge delay to the merged p95, clamped.
func TestDerivedHedgeDelay(t *testing.T) {
	a := newFakeReplica(t, 0)
	// 100 samples: 95 in (0.001, 0.0025], 5 in (0.05, 0.1] → p95 at the
	// upper edge of the 0.0025 bucket.
	hist := histo.New(nil)
	for i := 0; i < 95; i++ {
		hist.Observe(2 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		hist.Observe(80 * time.Millisecond)
	}
	var buf bytes.Buffer
	hist.Snapshot().WritePrometheus(&buf, "rpserved_request_seconds", "test", "")
	a.mu.Lock()
	a.metrics = buf.String()
	a.mu.Unlock()

	rt := newTestRouter(t, Config{
		Replicas: []string{a.host()},
		HedgeMin: time.Millisecond,
		HedgeMax: time.Second,
	})
	rt.probeOnce()
	got := time.Duration(rt.hedgeDelayNS.Load())
	want := time.Duration(hist.Snapshot().Quantile(0.95) * float64(time.Second))
	if got != want {
		t.Fatalf("derived hedge delay = %v, want scraped p95 %v", got, want)
	}
	if got < time.Millisecond || got > 10*time.Millisecond {
		t.Fatalf("derived delay %v implausible for the synthetic distribution", got)
	}
}

// TestRouterAgainstRealReplicas is the key-agreement proof: the router
// in front of two real promotion servers. If the router's ResolveKey
// matched the replicas' internal keys, every repeat of a program lands
// on the replica that already cached it — so the second pass must be
// all memory-tier hits, with byte-identical outcomes throughout.
func TestRouterAgainstRealReplicas(t *testing.T) {
	mkReplica := func() (*server.Server, string) {
		s, err := server.New(server.Config{Workers: 1, QueueDepth: 16})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		u, _ := url.Parse(ts.URL)
		return s, u.Host
	}
	_, hostA := mkReplica()
	_, hostB := mkReplica()
	rt := newTestRouter(t, Config{Replicas: []string{hostA, hostB}, HedgeDelay: -1})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	corpus, err := workload.ReplayCorpus(7, 6, "small")
	if err != nil {
		t.Fatal(err)
	}
	client := ts.Client()
	outcomes := make(map[int]string)
	var resp struct {
		Outcome json.RawMessage `json:"outcome"`
		Serving struct {
			Cache string `json:"cache"`
		} `json:"serving"`
	}
	for pass := 0; pass < 2; pass++ {
		for i, wl := range corpus {
			body := promoteBody(t, wl.Src)
			r, err := client.Post(ts.URL+"/v1/promote", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			data := readAll(t, r)
			if r.StatusCode != http.StatusOK {
				t.Fatalf("pass %d program %d: status %d: %s", pass, i, r.StatusCode, data)
			}
			if err := json.Unmarshal(data, &resp); err != nil {
				t.Fatal(err)
			}
			if pass == 0 {
				outcomes[i] = string(resp.Outcome)
				continue
			}
			if string(resp.Outcome) != outcomes[i] {
				t.Fatalf("program %d outcome diverged across passes", i)
			}
			if resp.Serving.Cache != "hit" {
				t.Fatalf("pass 2 program %d: cache=%q, want hit — router key does not match replica key",
					i, resp.Serving.Cache)
			}
		}
	}
}

func readAll(t *testing.T, r *http.Response) []byte {
	t.Helper()
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

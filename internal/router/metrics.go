package router

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/histo"
)

// routerMetrics is the router's own Prometheus surface: cluster-level
// counters plus per-replica labeled series, rendered by /metrics. The
// per-replica request/error/hedge counters live on the replica structs
// (they are updated on the serving path); this struct holds the
// aggregates.
type routerMetrics struct {
	requests       atomic.Int64 // front-door requests admitted for processing
	ok             atomic.Int64 // 2xx responses proxied back
	upstreamNon2xx atomic.Int64 // non-2xx replica responses proxied back verbatim
	badRequests    atomic.Int64 // router-side 4xx (parse/validate failures)
	quotaLimited   atomic.Int64 // 429s from the per-tenant quota
	noReplica      atomic.Int64 // 503s with zero healthy replicas
	gatewayErrors  atomic.Int64 // 502s after exhausting every replica attempt
	drained        atomic.Int64 // 503s while draining

	hedges    atomic.Int64 // hedge attempts fired
	hedgeWins atomic.Int64 // requests won by the hedge attempt
	failovers atomic.Int64 // transparent retries after a transport failure
	spills    atomic.Int64 // bounded-load overflows off a key's primary
	demotions atomic.Int64 // in-band replica demotions (probe demotions excluded)
	ringChurn atomic.Int64 // ring rebuilds since start (health transitions)
	probes    atomic.Int64 // health-probe rounds completed

	latency *histo.Histogram // proxied-attempt latency (replica side of the wire)
	e2e     *histo.Histogram // front-door end-to-end latency
}

func newRouterMetrics() routerMetrics {
	return routerMetrics{
		latency: histo.New(nil),
		e2e:     histo.New(nil),
	}
}

// writeMetrics renders the Prometheus text exposition.
func (rt *Router) writeMetrics(w io.Writer) {
	m := &rt.m
	metric := func(name, help, typ string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	counter := func(name, help string, v int64) { metric(name, help, "counter", v) }
	gauge := func(name, help string, v int64) { metric(name, help, "gauge", v) }

	counter("rprouter_requests_total", "front-door promotion requests admitted", m.requests.Load())
	counter("rprouter_responses_ok_total", "2xx responses proxied back", m.ok.Load())
	counter("rprouter_responses_upstream_non2xx_total", "replica non-2xx responses proxied back verbatim", m.upstreamNon2xx.Load())
	counter("rprouter_bad_requests_total", "router-side request rejections", m.badRequests.Load())
	counter("rprouter_quota_limited_total", "requests rejected by the per-tenant quota", m.quotaLimited.Load())
	counter("rprouter_no_replica_total", "requests rejected with zero healthy replicas", m.noReplica.Load())
	counter("rprouter_gateway_errors_total", "requests that exhausted every replica attempt", m.gatewayErrors.Load())
	counter("rprouter_drained_total", "requests rejected while draining", m.drained.Load())
	counter("rprouter_hedges_total", "hedge attempts fired", m.hedges.Load())
	counter("rprouter_hedge_wins_total", "requests won by the hedge attempt", m.hedgeWins.Load())
	counter("rprouter_failovers_total", "transparent failovers after replica transport failures", m.failovers.Load())
	counter("rprouter_spills_total", "bounded-load spills off a key's primary replica", m.spills.Load())
	counter("rprouter_demotions_total", "in-band replica demotions on transport failure", m.demotions.Load())
	counter("rprouter_probe_rounds_total", "health-probe rounds completed", m.probes.Load())

	gauge("rprouter_ring_churn", "ring rebuilds since start (replica health transitions)", m.ringChurn.Load())
	gauge("rprouter_replicas_healthy", "replicas currently in the ring", int64(rt.healthyCount()))
	gauge("rprouter_replicas_configured", "replicas configured", int64(len(rt.replicas)))
	gauge("rprouter_inflight_total", "proxied attempts currently in flight", int64(rt.totalInflight()))
	gauge("rprouter_hedge_delay_us", "current hedge delay in microseconds (0 = hedging off)", rt.hedgeDelayNS.Load()/int64(time.Microsecond))
	gauge("rprouter_quota_tenants", "tenants with a live quota bucket", int64(rt.quotas.tenants()))
	draining := int64(0)
	if rt.isDraining() {
		draining = 1
	}
	gauge("rprouter_draining", "1 while the router is draining", draining)
	gauge("rprouter_uptime_seconds", "seconds since the router started", int64(time.Since(rt.start).Seconds()))

	// Per-replica counters, one labeled series per replica.
	perReplica := func(name, help string, get func(*replica) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, rep := range rt.replicas {
			fmt.Fprintf(w, "%s{replica=%q} %d\n", name, rep.name, get(rep))
		}
	}
	perReplica("rprouter_replica_requests_total", "proxied attempts per replica (hedges included)",
		func(r *replica) int64 { return r.requests.Load() })
	perReplica("rprouter_replica_errors_total", "transport-level attempt failures per replica",
		func(r *replica) int64 { return r.errors.Load() })
	perReplica("rprouter_replica_hedges_total", "hedge attempts fired at each replica",
		func(r *replica) int64 { return r.hedges.Load() })
	perReplica("rprouter_replica_spills_total", "bounded-load spills absorbed by each replica",
		func(r *replica) int64 { return r.spillsIn.Load() })

	fmt.Fprintf(w, "# HELP rprouter_replica_healthy 1 while the replica is in the ring\n# TYPE rprouter_replica_healthy gauge\n")
	for _, rep := range rt.replicas {
		up := int64(0)
		if rep.healthy.Load() {
			up = 1
		}
		fmt.Fprintf(w, "rprouter_replica_healthy{replica=%q} %d\n", rep.name, up)
	}
	fmt.Fprintf(w, "# HELP rprouter_replica_inflight proxied attempts in flight per replica\n# TYPE rprouter_replica_inflight gauge\n")
	for _, rep := range rt.replicas {
		fmt.Fprintf(w, "rprouter_replica_inflight{replica=%q} %d\n", rep.name, rep.inflight.Load())
	}

	// Latency histograms: the aggregate attempt latency, the end-to-end
	// front-door latency, and one per-replica series — the same fixed
	// buckets rpserved exposes, so dashboards line up.
	m.latency.Snapshot().WritePrometheus(w,
		"rprouter_attempt_seconds", "proxied replica attempt latency in seconds", "")
	m.e2e.Snapshot().WritePrometheus(w,
		"rprouter_request_seconds", "front-door end-to-end latency in seconds", "")
	for _, rep := range rt.replicas {
		rep.latency.Snapshot().WritePrometheus(w,
			"rprouter_replica_seconds", "per-replica attempt latency in seconds",
			fmt.Sprintf("replica=%q", rep.name))
	}
}

package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/histo"
	"repro/internal/server"
)

// Config sizes the router. Replicas is required; everything else has a
// sane zero-value default.
type Config struct {
	// Replicas are the rpserved instances (host:port) behind the ring.
	Replicas []string
	// VNodes is the virtual-node count per replica (0 = 128).
	VNodes int
	// LoadFactor is the bounded-load ceiling as a multiple of the
	// cluster-average in-flight count (0 = 1.25; values < 1 clamp to 1).
	LoadFactor float64
	// SpillFloor is the minimum per-replica in-flight bound, so a
	// near-idle cluster never spills on its first burst (0 = 4).
	SpillFloor int
	// HedgeDelay is how long the primary attempt may run before a
	// hedge fires at the key's next ring replica. 0 derives the delay
	// from the replicas' scraped request-latency p95 each probe cycle;
	// negative disables hedging.
	HedgeDelay time.Duration
	// HedgeMin/HedgeMax clamp the derived delay (0 = 2ms / 1s).
	HedgeMin, HedgeMax time.Duration
	// QuotaRPS is the per-tenant steady admission rate ahead of
	// placement (0 = no quotas). QuotaBurst is the bucket size
	// (0 = max(4, 2×QuotaRPS)).
	QuotaRPS   float64
	QuotaBurst int
	// ProbeInterval is the replica health-probe cadence (0 = 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (0 = 1s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures mark a
	// replica down (0 = 2); OkThreshold how many successes bring it
	// back (0 = 1).
	FailThreshold, OkThreshold int
	// MaxSourceBytes bounds the request body (0 = 1 MiB) — mirrors the
	// replica bound so oversized requests die at the door.
	MaxSourceBytes int64
	// Ceilings must match the replicas' key-relevant configuration so
	// router-side cache keys equal replica-side ones.
	Ceilings server.KeyCeilings
	// Transport overrides the proxy/probe transport (tests inject
	// fault-wrapped transports here; nil = a pooled http.Transport).
	Transport http.RoundTripper
	// ProxyTimeout bounds one proxied attempt (0 = 60s).
	ProxyTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 128
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 1.25
	}
	if c.SpillFloor <= 0 {
		c.SpillFloor = 4
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 2 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.OkThreshold <= 0 {
		c.OkThreshold = 1
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 60 * time.Second
	}
	if c.Transport == nil {
		c.Transport = &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	// c.Ceilings stays as configured; server.ResolveKey applies the
	// replica defaults to its zero values.
	return c
}

// replica is one rpserved instance as the router sees it.
type replica struct {
	name string // host:port — the ring node name
	url  string // http://host:port

	healthy  atomic.Bool
	inflight atomic.Int64

	requests atomic.Int64 // proxied attempts (hedges included)
	errors   atomic.Int64 // transport-level attempt failures
	hedges   atomic.Int64 // hedge attempts fired at this replica
	spillsIn atomic.Int64 // requests absorbed as a bounded-load spill target
	latency  *histo.Histogram
	failNote atomic.Int64 // in-band failure reports since last probe (prober resets)
	failRuns int          // consecutive failed probes (prober goroutine only)
	okRuns   int          // consecutive ok probes (prober goroutine only)
}

// Router is the cluster front door.
type Router struct {
	cfg      Config
	replicas []*replica
	byName   map[string]*replica
	client   *http.Client

	// ringMu guards ring rebuilds; lookups load the value atomically.
	ringMu sync.Mutex
	ring   atomic.Pointer[Ring]

	quotas *quota // nil when QuotaRPS is 0

	hedgeDelayNS atomic.Int64 // current hedge delay (derived or fixed)

	m routerMetrics

	start time.Time
	stop  chan struct{}
	once  sync.Once

	drainMu  sync.Mutex
	draining bool
	wg       sync.WaitGroup
}

// New builds a router over cfg.Replicas. Every replica starts healthy
// and the first probe cycle corrects that optimism; starting
// pessimistic would turn a router restart into a self-inflicted
// outage.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	rt := &Router{
		cfg:    cfg,
		byName: make(map[string]*replica, len(cfg.Replicas)),
		client: &http.Client{Transport: cfg.Transport, Timeout: cfg.ProxyTimeout},
		quotas: newQuota(cfg.QuotaRPS, cfg.QuotaBurst),
		start:  time.Now(),
		stop:   make(chan struct{}),
		m:      newRouterMetrics(),
	}
	seen := map[string]bool{}
	for _, name := range cfg.Replicas {
		if seen[name] {
			continue
		}
		seen[name] = true
		rep := &replica{
			name:    name,
			url:     "http://" + name,
			latency: histo.New(nil),
		}
		rep.healthy.Store(true)
		rt.replicas = append(rt.replicas, rep)
		rt.byName[name] = rep
	}
	if cfg.HedgeDelay > 0 {
		rt.hedgeDelayNS.Store(int64(cfg.HedgeDelay))
	}
	rt.rebuildRing()
	return rt, nil
}

// Start launches the health-probe loop. Stop (or Drain) ends it.
func (rt *Router) Start() {
	go rt.probeLoop()
}

// Stop terminates the probe loop without draining.
func (rt *Router) Stop() { rt.once.Do(func() { close(rt.stop) }) }

// Drain stops admission, ends probing, and waits for in-flight
// requests (or ctx).
func (rt *Router) Drain(ctx context.Context) error {
	rt.drainMu.Lock()
	rt.draining = true
	rt.drainMu.Unlock()
	rt.Stop()
	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("router: drain: %w", ctx.Err())
	}
}

func (rt *Router) isDraining() bool {
	rt.drainMu.Lock()
	defer rt.drainMu.Unlock()
	return rt.draining
}

func (rt *Router) beginRequest() bool {
	rt.drainMu.Lock()
	defer rt.drainMu.Unlock()
	if rt.draining {
		return false
	}
	rt.wg.Add(1)
	return true
}

// rebuildRing recomputes the ring over the currently-healthy replica
// set and bumps the churn counter. Called by the prober on membership
// change and by in-band failure demotion.
func (rt *Router) rebuildRing() {
	rt.ringMu.Lock()
	defer rt.ringMu.Unlock()
	var healthy []string
	for _, rep := range rt.replicas {
		if rep.healthy.Load() {
			healthy = append(healthy, rep.name)
		}
	}
	rt.ring.Store(NewRing(healthy, rt.cfg.VNodes))
	rt.m.ringChurn.Add(1)
}

// healthyCount reports how many replicas are currently up.
func (rt *Router) healthyCount() int {
	n := 0
	for _, rep := range rt.replicas {
		if rep.healthy.Load() {
			n++
		}
	}
	return n
}

// totalInflight sums in-flight attempts across replicas.
func (rt *Router) totalInflight() int {
	n := int64(0)
	for _, rep := range rt.replicas {
		n += rep.inflight.Load()
	}
	return int(n)
}

// place picks the serving sequence for key: the healthy replicas in
// ring order, with the head adjusted by the bounded-load rule. The
// returned slice's first element is where the request goes; the rest
// are failover/hedge targets in preference order.
func (rt *Router) place(key string) (seq []*replica, spilled bool) {
	ring := rt.ring.Load()
	if ring == nil || ring.Len() == 0 {
		return nil, false
	}
	names := ring.Sequence(key, 0)
	reps := make([]*replica, 0, len(names))
	for _, n := range names {
		if rep := rt.byName[n]; rep != nil && rep.healthy.Load() {
			reps = append(reps, rep)
		}
	}
	if len(reps) == 0 {
		return nil, false
	}
	bound := LoadBound(rt.cfg.LoadFactor, rt.totalInflight()+1, len(reps), rt.cfg.SpillFloor)
	for i, rep := range reps {
		if int(rep.inflight.Load()) < bound {
			if i == 0 {
				return reps, false
			}
			// Rotate the under-bound replica to the front, keeping the
			// remaining ring order as the failover tail.
			out := make([]*replica, 0, len(reps))
			out = append(out, rep)
			for j, r := range reps {
				if j != i {
					out = append(out, r)
				}
			}
			rep.spillsIn.Add(1)
			rt.m.spills.Add(1)
			return out, true
		}
	}
	// Everything is at the bound: the primary absorbs the overflow and
	// its admission control pushes back with 429s.
	return reps, false
}

// hedgeDelay returns the current hedge delay, or 0 when hedging is off.
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.HedgeDelay < 0 {
		return 0
	}
	return time.Duration(rt.hedgeDelayNS.Load())
}

// noteFailure records an in-band transport failure against rep and
// demotes it immediately — between a replica dying and the next probe
// cycle noticing, no further request should be placed on it. The
// prober re-promotes it after OkThreshold healthy probes.
func (rt *Router) noteFailure(rep *replica) {
	rep.errors.Add(1)
	rep.failNote.Add(1)
	if rep.healthy.CompareAndSwap(true, false) {
		rt.m.demotions.Add(1)
		rt.rebuildRing()
	}
}

// proxyResult is one completed proxy attempt.
type proxyResult struct {
	rep     *replica
	status  int
	header  http.Header
	body    []byte
	err     error
	latency time.Duration
	hedged  bool // this attempt was the hedge, not the primary
}

// proxyOnce forwards one attempt to rep and reads the full response.
func (rt *Router) proxyOnce(ctx context.Context, rep *replica, body []byte, hdr http.Header, hedged bool) proxyResult {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	rep.requests.Add(1)

	res := proxyResult{rep: rep, hedged: hedged}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/promote", bytes.NewReader(body))
	if err != nil {
		res.err = err
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	// Forward the client identity so per-client rate limiting on the
	// replica keys on the real tenant, not on the router's address.
	for _, h := range []string{"X-Client-ID", "X-Tenant"} {
		if v := hdr.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	t0 := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		res.err = err
		return res
	}
	defer resp.Body.Close()
	res.body, err = io.ReadAll(resp.Body)
	res.latency = time.Since(t0)
	if err != nil {
		res.err = err
		return res
	}
	res.status = resp.StatusCode
	res.header = resp.Header
	rep.latency.Observe(res.latency)
	rt.m.latency.Observe(res.latency)
	return res
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/promote", rt.handlePromote)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/readyz", rt.handleReadyz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("/v1/cluster", rt.handleCluster)
	return mux
}

// handlePromote is the front-door serving path: quota → key → placement
// → proxy with hedging and transparent failover.
func (rt *Router) handlePromote(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { rt.m.e2e.Observe(time.Since(start)) }()

	if r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, "use POST", "bad_request")
		return
	}
	if !rt.beginRequest() {
		rt.m.drained.Add(1)
		rt.writeError(w, http.StatusServiceUnavailable, "router is draining", "draining")
		return
	}
	defer rt.wg.Done()
	rt.m.requests.Add(1)

	// Per-tenant quota ahead of everything: a tenant over its budget
	// costs the cluster one token-bucket check, nothing more.
	if ok, retry := rt.quotas.allow(tenantKey(r), time.Now()); !ok {
		rt.m.quotaLimited.Add(1)
		w.Header().Set("Retry-After", retrySeconds(retry))
		rt.writeError(w, http.StatusTooManyRequests, "per-tenant quota exceeded", "rate_limited")
		return
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxSourceBytes+1))
	if err != nil {
		rt.m.badRequests.Add(1)
		rt.writeError(w, http.StatusBadRequest, "reading body: "+err.Error(), "bad_request")
		return
	}
	if int64(len(body)) > rt.cfg.MaxSourceBytes {
		rt.m.badRequests.Add(1)
		rt.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", rt.cfg.MaxSourceBytes), "bad_request")
		return
	}
	var preq server.PromoteRequest
	if err := json.Unmarshal(body, &preq); err != nil {
		rt.m.badRequests.Add(1)
		rt.writeError(w, http.StatusBadRequest, "decoding request: "+err.Error(), "bad_request")
		return
	}
	// The router computes the same content-addressed key the replica
	// will: that is the whole sharding contract. Invalid options die
	// here with the replica's exact 400 shape, saving the hop.
	key, err := server.ResolveKey(preq.Source, preq.Options, rt.cfg.Ceilings)
	if err != nil {
		rt.m.badRequests.Add(1)
		rt.writeError(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}

	seq, _ := rt.place(key)
	if len(seq) == 0 {
		rt.m.noReplica.Add(1)
		rt.writeError(w, http.StatusServiceUnavailable, "no healthy replicas", "no_replica")
		return
	}

	res, ok := rt.dispatch(r, seq, body)
	if !ok {
		rt.m.gatewayErrors.Add(1)
		rt.writeError(w, http.StatusBadGateway,
			"every replica attempt failed: "+res.err.Error(), "upstream_down")
		return
	}
	if res.hedged {
		rt.m.hedgeWins.Add(1)
	}
	if res.status >= 200 && res.status < 300 {
		rt.m.ok.Add(1)
	} else {
		rt.m.upstreamNon2xx.Add(1)
	}
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-RP-Replica", res.rep.name)
	if res.hedged {
		w.Header().Set("X-RP-Hedged", "1")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// dispatch runs the primary attempt against seq[0] with tail-latency
// hedging and transport-failure failover down the rest of the
// sequence. It returns the winning result, or (lastResult, false) when
// every attempt failed at the transport level.
//
// The loser of a hedge race is canceled via context; its replica
// counters were already charged, which is the honest accounting — the
// replica did spend the work.
func (rt *Router) dispatch(r *http.Request, seq []*replica, body []byte) (proxyResult, bool) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	results := make(chan proxyResult, len(seq)+1)
	launch := func(rep *replica, hedged bool) {
		go func() { results <- rt.proxyOnce(ctx, rep, body, r.Header, hedged) }()
	}

	next := 1 // index into seq of the next untried replica
	outstanding := 1
	launch(seq[0], false)

	// The hedge timer fires at most once per request; a fired hedge is
	// just another outstanding attempt afterwards.
	var hedgeCh <-chan time.Time
	if d := rt.hedgeDelay(); d > 0 && len(seq) > 1 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		hedgeCh = timer.C
	}

	var last proxyResult
	for {
		select {
		case res := <-results:
			outstanding--
			if res.err == nil {
				return res, true
			}
			last = res
			if ctx.Err() != nil {
				// The client went away (or a winner already canceled
				// us); don't demote replicas for our own cancellation.
				if outstanding == 0 {
					return last, false
				}
				continue
			}
			rt.noteFailure(res.rep)
			if next < len(seq) {
				rt.m.failovers.Add(1)
				launch(seq[next], res.hedged)
				next++
				outstanding++
			} else if outstanding == 0 {
				return last, false
			}
		case <-hedgeCh:
			hedgeCh = nil
			if next < len(seq) {
				rep := seq[next]
				next++
				rep.hedges.Add(1)
				rt.m.hedges.Add(1)
				launch(rep, true)
				outstanding++
			}
		case <-r.Context().Done():
			// Client disconnected: nothing left to serve. In-flight
			// attempts die with the shared context.
			return proxyResult{err: r.Context().Err()}, false
		}
	}
}

// tenantKey identifies the quota bucket for a request: the X-Tenant
// header when a fronting gateway set one, else the per-client identity
// the replicas also use.
func tenantKey(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if c := r.Header.Get("X-Client-ID"); c != "" {
		return c
	}
	return hostOnly(r.RemoteAddr)
}

// handleHealthz: 200 while the router process is serving, 503 while
// draining.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	code := http.StatusOK
	status := "ok"
	if rt.isDraining() {
		code, status = http.StatusServiceUnavailable, "draining"
	}
	rt.writeJSON(w, code, map[string]any{
		"status":   status,
		"uptime_s": int64(time.Since(rt.start).Seconds()),
	})
}

// handleReadyz: ready iff at least one replica is healthy and the
// router is not draining — the signal an upstream balancer needs.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case rt.isDraining():
		rt.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "not_ready", "reason": "draining"})
	case rt.healthyCount() == 0:
		rt.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "not_ready", "reason": "no healthy replicas"})
	default:
		rt.writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	}
}

// handleCluster reports per-replica state as JSON — the harness's and
// an operator's view of ring membership, health, and load.
func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	type repView struct {
		Name     string  `json:"name"`
		Healthy  bool    `json:"healthy"`
		Inflight int64   `json:"inflight"`
		Requests int64   `json:"requests"`
		Errors   int64   `json:"errors"`
		Hedges   int64   `json:"hedges"`
		SpillsIn int64   `json:"spills_in"`
		P95MS    float64 `json:"p95_ms"`
	}
	views := make([]repView, 0, len(rt.replicas))
	for _, rep := range rt.replicas {
		views = append(views, repView{
			Name:     rep.name,
			Healthy:  rep.healthy.Load(),
			Inflight: rep.inflight.Load(),
			Requests: rep.requests.Load(),
			Errors:   rep.errors.Load(),
			Hedges:   rep.hedges.Load(),
			SpillsIn: rep.spillsIn.Load(),
			P95MS:    rep.latency.Snapshot().Quantile(0.95) * 1000,
		})
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"replicas":       views,
		"healthy":        rt.healthyCount(),
		"ring_churn":     rt.m.ringChurn.Load(),
		"hedge_delay_ms": float64(rt.hedgeDelayNS.Load()) / 1e6,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.writeMetrics(w)
}

func (rt *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (rt *Router) writeError(w http.ResponseWriter, code int, msg, kind string) {
	rt.writeJSON(w, code, server.ErrorResponse{Error: msg, Kind: kind})
}

func retrySeconds(d time.Duration) string {
	secs := int64(d / time.Second)
	if d%time.Second != 0 || secs == 0 {
		secs++
	}
	return fmt.Sprintf("%d", secs)
}

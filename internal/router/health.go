package router

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/histo"
)

// probeLoop drives replica health and the derived hedge delay until
// Stop. Each round probes every replica's /readyz concurrently; on any
// health transition the ring is rebuilt over the surviving set —
// consistent hashing guarantees only the changed replica's keys move.
func (rt *Router) probeLoop() {
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.probeOnce()
		}
	}
}

// probeOnce runs one probe round: health transitions first, then (when
// hedging is in derived mode) a /metrics scrape of the healthy
// replicas to recompute the hedge delay from their aggregated request
// latency p95.
func (rt *Router) probeOnce() {
	changed := false
	var wg sync.WaitGroup
	transitions := make([]bool, len(rt.replicas))
	for i, rep := range rt.replicas {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			transitions[i] = rt.probeReplica(rep)
		}(i, rep)
	}
	wg.Wait()
	for _, t := range transitions {
		changed = changed || t
	}
	if changed {
		rt.rebuildRing()
	}
	rt.m.probes.Add(1)
	if rt.cfg.HedgeDelay == 0 {
		rt.deriveHedgeDelay()
	}
}

// probeReplica probes one replica and updates its streaks; it reports
// whether the replica's health flipped. In-band failure notes since
// the last round count as one failed probe equivalent — a replica that
// just broke a live request shouldn't need two more probe ticks to be
// believed.
func (rt *Router) probeReplica(rep *replica) (flipped bool) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/readyz", nil)
	if err == nil {
		resp, rerr := rt.client.Do(req)
		if rerr == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	notes := rep.failNote.Swap(0)

	if ok && notes == 0 {
		rep.failRuns = 0
		rep.okRuns++
		if !rep.healthy.Load() && rep.okRuns >= rt.cfg.OkThreshold {
			rep.healthy.Store(true)
			return true
		}
		return false
	}
	rep.okRuns = 0
	rep.failRuns++
	if rep.healthy.Load() && rep.failRuns >= rt.cfg.FailThreshold {
		rep.healthy.Store(false)
		return true
	}
	return false
}

// deriveHedgeDelay scrapes each healthy replica's /metrics, merges the
// rpserved_request_seconds histograms, and sets the hedge delay to the
// aggregate p95 (clamped to [HedgeMin, HedgeMax]). Until enough
// samples exist the delay stays at HedgeMin — hedging early against an
// unknown distribution is cheaper than never hedging.
func (rt *Router) deriveHedgeDelay() {
	var agg histo.Snapshot
	for _, rep := range rt.replicas {
		if !rep.healthy.Load() {
			continue
		}
		snap, err := rt.scrapeHistogram(rep, "rpserved_request_seconds")
		if err != nil {
			continue
		}
		if merged, err := agg.Merge(snap); err == nil {
			agg = merged
		}
	}
	if agg.Count < 20 {
		rt.hedgeDelayNS.Store(int64(rt.cfg.HedgeMin))
		return
	}
	d := time.Duration(agg.Quantile(0.95) * float64(time.Second))
	if d < rt.cfg.HedgeMin {
		d = rt.cfg.HedgeMin
	}
	if d > rt.cfg.HedgeMax {
		d = rt.cfg.HedgeMax
	}
	rt.hedgeDelayNS.Store(int64(d))
}

// scrapeHistogram fetches one replica's /metrics and parses the named
// histogram out of it.
func (rt *Router) scrapeHistogram(rep *replica, name string) (histo.Snapshot, error) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/metrics", nil)
	if err != nil {
		return histo.Snapshot{}, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return histo.Snapshot{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return histo.Snapshot{}, err
	}
	return histo.ParsePrometheus(body, name)
}

// Package router is the cluster front door for a fleet of rpserved
// replicas: one HTTP endpoint that places each promotion request on a
// replica by its content-addressed cache key.
//
// Placement is a consistent-hash ring with bounded-load overflow:
//
//   - Consistent hashing: each replica owns many pseudo-random points
//     ("virtual nodes") on a 64-bit ring; a key is served by the first
//     replica point at or after its own hash. Adding or removing one
//     replica moves only the keys the changed replica owns (~K/N of
//     them) — every other key keeps its placement, and with it the
//     replica whose caches it already warmed.
//   - Bounded load: a pure hash ring sends a hot key's entire load to
//     one replica. When the primary's in-flight count exceeds its fair
//     share (a configurable factor over the cluster average), the
//     request spills to the next replica on the ring — a deterministic
//     overflow target whose disk cache warms for exactly the keys it
//     absorbs, instead of a random scatter.
//
// The same purity property that makes caching sound — outcomes are
// functions of (source, options) alone — is what makes all of this
// correct: any replica can serve any key, so placement is purely a
// performance decision and spilling or rebalancing can never change an
// answer.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is an immutable consistent-hash ring over a set of node names.
// Routers rebuild the ring (cheap, O(nodes·vnodes·log)) whenever
// replica health changes; lookups are lock-free on the ring value.
type Ring struct {
	vnodes int
	nodes  []string // sorted, deduped
	points []point  // sorted by hash
}

type point struct {
	hash uint64
	node int32 // index into nodes
}

// NewRing builds a ring over nodes with vnodes virtual points per node
// (vnodes <= 0 picks 128). Node order does not matter: the ring is a
// pure function of the node *set*, so two routers configured with the
// same replicas in any order place every key identically.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 128
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		vnodes: vnodes,
		nodes:  uniq,
		points: make([]point, 0, len(uniq)*vnodes),
	}
	for ni, n := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash: hashString(n + "#" + strconv.Itoa(v)),
				node: int32(ni),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on node index so equal hashes (vanishingly rare but
		// possible) still order deterministically.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's node set in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Lookup returns the primary node for key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns up to max distinct nodes in ring-walk order starting
// at key's point: the primary first, then each successive overflow
// target. max <= 0 returns every node. The order is deterministic per
// key, which is what makes bounded-load spill predictable — a hot key
// always overflows to the same successor, whose cache then stays warm
// for it.
func (r *Ring) Sequence(key string, max int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if max <= 0 || max > len(r.nodes) {
		max = len(r.nodes)
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, max)
	taken := make(map[int32]bool, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.node] {
			taken[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// hashString is 64-bit FNV-1a — fast, dependency-free, and uniform
// enough for ring placement. Keys arriving here are already SHA-256
// hex, so their entropy is not in question; the vnode labels it also
// hashes are short and benefit from FNV's avalanche being applied to
// every byte.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// LoadBound computes the bounded-load ceiling for one replica: a
// loadFactor multiple of the cluster-average in-flight count, never
// below minBound so a near-idle cluster doesn't spill on its first
// concurrent burst. totalInflight counts the request being placed.
func LoadBound(loadFactor float64, totalInflight, healthy, minBound int) int {
	if healthy < 1 {
		healthy = 1
	}
	if loadFactor < 1 {
		loadFactor = 1
	}
	avg := float64(totalInflight) / float64(healthy)
	bound := int(loadFactor*avg + 0.999999) // ceil
	if bound < minBound {
		bound = minBound
	}
	return bound
}

// String renders the ring for diagnostics.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d nodes, %d vnodes)", len(r.nodes), r.vnodes)
}

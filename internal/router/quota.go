package router

import (
	"math/rand"
	"strings"
	"sync"
	"time"
)

// quota is the router's per-tenant token bucket, sitting ahead of
// placement: a tenant over budget collects 429s with jittered
// Retry-After hints while every other tenant's latency holds. It is
// the cluster-level twin of the replica's per-client limiter — the
// router enforces the tenant contract once, instead of N replicas each
// enforcing 1/N of it and a tenant's effective quota wobbling with
// ring placement.
//
// Buckets refill continuously at rate tokens/second up to burst. The
// tenant map is bounded; past maxTenants the stalest bucket (refilled
// longest ago — a full, idle bucket) is dropped.
type quota struct {
	rate       float64
	burst      float64
	maxTenants int

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	rng     *rand.Rand // Retry-After jitter
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// newQuota builds the limiter; rate <= 0 disables quotas and returns
// nil (a nil quota admits everything).
func newQuota(rate float64, burst int) *quota {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = int(2 * rate)
		if burst < 4 {
			burst = 4
		}
	}
	return &quota{
		rate:       rate,
		burst:      float64(burst),
		maxTenants: 10_000,
		buckets:    make(map[string]*tokenBucket),
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// allow takes one token from tenant's bucket; when empty it returns
// false and a jittered Retry-After hint.
func (q *quota) allow(tenant string, now time.Time) (bool, time.Duration) {
	if q == nil {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		if len(q.buckets) >= q.maxTenants {
			q.evictStalest()
		}
		b = &tokenBucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	wait += time.Duration(q.rng.Int63n(int64(wait)/2 + 1))
	return false, wait
}

// evictStalest drops the bucket refilled longest ago. Called with the
// lock held.
func (q *quota) evictStalest() {
	var stalest string
	var oldest time.Time
	first := true
	for t, b := range q.buckets {
		if first || b.last.Before(oldest) {
			first = false
			stalest, oldest = t, b.last
		}
	}
	delete(q.buckets, stalest)
}

// tenants reports how many live buckets exist (metrics).
func (q *quota) tenants() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}

// hostOnly strips a trailing ":port" (digits only) from an address the
// same way the replica's limiter does, so the router and replicas key
// the same client identically. Bracketed IPv6 keeps the bracket
// content; portless IPv6 is returned unchanged.
func hostOnly(addr string) string {
	if strings.HasPrefix(addr, "[") {
		if end := strings.IndexByte(addr, ']'); end > 0 {
			return addr[1:end]
		}
		return addr
	}
	i := strings.LastIndexByte(addr, ':')
	if i <= 0 || i == len(addr)-1 || addr[i-1] == ':' {
		return addr
	}
	for _, ch := range addr[i+1:] {
		if ch < '0' || ch > '9' {
			return addr
		}
	}
	return addr[:i]
}

package router

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	// Stand-ins for cache keys: deterministic, high-entropy-enough
	// strings (the real keys are SHA-256 hex).
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d-%x", i, uint64(i)*0x9e3779b97f4a7c15)
	}
	return keys
}

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("127.0.0.1:%d", 9000+i)
	}
	return nodes
}

// TestRingDeterminism: the same key set places identically across
// independently built rings, regardless of node declaration order.
func TestRingDeterminism(t *testing.T) {
	keys := ringKeys(5000)
	nodes := ringNodes(5)
	a := NewRing(nodes, 128)
	shuffled := []string{nodes[3], nodes[0], nodes[4], nodes[2], nodes[1]}
	b := NewRing(shuffled, 128)
	for _, k := range keys {
		if pa, pb := a.Lookup(k), b.Lookup(k); pa != pb {
			t.Fatalf("key %q: ring a → %s, ring b (shuffled nodes) → %s", k, pa, pb)
		}
		sa, sb := a.Sequence(k, 0), b.Sequence(k, 0)
		if len(sa) != len(sb) {
			t.Fatalf("key %q: sequence lengths differ", k)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("key %q: sequences diverge at %d: %v vs %v", k, i, sa, sb)
			}
		}
	}
}

// TestRingBalance: with enough vnodes no replica owns a pathological
// share of a uniform key set.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(20000)
	nodes := ringNodes(4)
	r := NewRing(nodes, 128)
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	want := len(keys) / len(nodes)
	for n, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("node %s owns %d of %d keys (fair share %d): ring too skewed", n, c, len(keys), want)
		}
	}
}

// TestRingMinimalMovementOnRemove: removing one replica moves only the
// keys it owned — every key whose primary survives keeps it exactly.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	keys := ringKeys(10000)
	nodes := ringNodes(5)
	before := NewRing(nodes, 128)
	after := NewRing(nodes[:4], 128) // drop the last replica
	removed := nodes[4]

	moved := 0
	for _, k := range keys {
		pb, pa := before.Lookup(k), after.Lookup(k)
		if pb == removed {
			moved++
			if pa == removed {
				t.Fatalf("key %q still places on removed node", k)
			}
			// Orphaned keys must land on the old ring's next node —
			// that is where bounded-load spill was already warming.
			seq := before.Sequence(k, 2)
			if len(seq) == 2 && pa != seq[1] {
				t.Fatalf("key %q: moved to %s, want old successor %s", k, pa, seq[1])
			}
			continue
		}
		if pa != pb {
			t.Fatalf("key %q moved %s → %s though its primary survived", k, pb, pa)
		}
	}
	// The removed node owned ~K/N keys; its orphans are the only moves.
	fair := len(keys) / len(nodes)
	if moved < fair/2 || moved > fair*2 {
		t.Fatalf("moved %d keys, expected ~%d (removed node's share)", moved, fair)
	}
}

// TestRingMinimalMovementOnAdd: adding a replica moves ≈ K/(N+1) keys,
// all of them *to* the new replica.
func TestRingMinimalMovementOnAdd(t *testing.T) {
	keys := ringKeys(10000)
	nodes := ringNodes(4)
	added := "127.0.0.1:9100"
	before := NewRing(nodes, 128)
	after := NewRing(append(append([]string(nil), nodes...), added), 128)

	moved := 0
	for _, k := range keys {
		pb, pa := before.Lookup(k), after.Lookup(k)
		if pa == pb {
			continue
		}
		moved++
		if pa != added {
			t.Fatalf("key %q moved %s → %s, but only moves to the new node are allowed", k, pb, pa)
		}
	}
	fair := len(keys) / (len(nodes) + 1)
	if moved < fair/2 || moved > fair*2 {
		t.Fatalf("moved %d keys, expected ~%d (new node's share)", moved, fair)
	}
}

// TestRingBoundedLoadSpill: a Zipf-skewed key stream assigned with the
// bounded-load rule never loads any replica beyond the bound, while
// pure primary placement would melt the hot key's owner. Spilled keys
// must land on the hot key's ring successor, not scatter.
func TestRingBoundedLoadSpill(t *testing.T) {
	nodes := ringNodes(4)
	r := NewRing(nodes, 128)

	// A Zipf-ish stream: key 0 dominates. 60% hot key, the rest spread.
	stream := make([]string, 0, 1000)
	for i := 0; i < 1000; i++ {
		if i%5 < 3 {
			stream = append(stream, "hot-key")
		} else {
			stream = append(stream, fmt.Sprintf("cold-%d", i))
		}
	}

	const loadFactor = 1.25
	inflight := make(map[string]int, len(nodes))
	assigned := make(map[string]string)
	spills := 0
	// Model a closed system of 32 concurrent requests: each arrival
	// takes a slot on its placed node; every 32nd step the oldest batch
	// completes. Crude, but enough to exercise the spill rule.
	type slot struct{ node string }
	var active []slot
	for _, k := range stream {
		if len(active) == 32 {
			inflight[active[0].node]--
			active = active[1:]
		}
		total := 0
		for _, c := range inflight {
			total += c
		}
		bound := LoadBound(loadFactor, total+1, len(nodes), 4)
		seq := r.Sequence(k, 0)
		placed := ""
		for i, n := range seq {
			if inflight[n] < bound {
				placed = n
				if i > 0 {
					spills++
					if i == 1 && assigned[k] == "" {
						// First spill of a key goes to its immediate successor.
						if n != seq[1] {
							t.Fatalf("key %q spilled to %s, want successor %s", k, n, seq[1])
						}
					}
				}
				break
			}
		}
		if placed == "" {
			placed = seq[0] // all saturated: primary absorbs (admission 429s handle it)
		}
		if inflight[placed] >= bound+1 {
			t.Fatalf("node %s loaded to %d, bound %d", placed, inflight[placed], bound)
		}
		inflight[placed]++
		active = append(active, slot{placed})
		assigned[k] = placed
	}
	if spills == 0 {
		t.Fatal("hot-key stream produced no bounded-load spills; bound never engaged")
	}
}

func TestLoadBound(t *testing.T) {
	// Near-idle cluster: the floor wins.
	if b := LoadBound(1.25, 1, 4, 4); b != 4 {
		t.Fatalf("idle bound = %d, want floor 4", b)
	}
	// Loaded cluster: ceil(1.25 * 40/4) = 13.
	if b := LoadBound(1.25, 40, 4, 4); b != 13 {
		t.Fatalf("loaded bound = %d, want 13", b)
	}
	// Degenerate inputs clamp instead of dividing by zero.
	if b := LoadBound(0.5, 10, 0, 1); b < 1 {
		t.Fatalf("degenerate bound = %d, want >= 1", b)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 8)
	if got := empty.Lookup("k"); got != "" {
		t.Fatalf("empty ring lookup = %q, want \"\"", got)
	}
	if seq := empty.Sequence("k", 0); seq != nil {
		t.Fatalf("empty ring sequence = %v, want nil", seq)
	}
	one := NewRing([]string{"a"}, 8)
	if got := one.Lookup("k"); got != "a" {
		t.Fatalf("single ring lookup = %q, want a", got)
	}
	// Duplicate node names collapse.
	dup := NewRing([]string{"a", "a", "b"}, 8)
	if dup.Len() != 2 {
		t.Fatalf("dup ring Len = %d, want 2", dup.Len())
	}
}

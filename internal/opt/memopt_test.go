package opt_test

import (
	"reflect"
	"testing"

	"repro/internal/alias"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/pipeline"
	"repro/internal/source"
	"repro/internal/ssa"
)

// buildSSA compiles mini-C to SSA form (external-test copy of the
// helper in opt's internal tests).
func buildSSA(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := source.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatal(err)
	}
	for _, f := range prog.Funcs {
		if _, err := cfg.Normalize(f); err != nil {
			t.Fatal(err)
		}
		if _, err := ssa.Build(f); err != nil {
			t.Fatal(err)
		}
	}
	return prog
}

func countOp(f *ir.Function, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestForwardStoresToLoad(t *testing.T) {
	prog := buildSSA(t, `
int x;
void main() {
	x = 7;
	print(x);
	print(x + 1);
}`)
	main := prog.Func("main")
	n := opt.ForwardStores(main)
	if n != 2 {
		t.Fatalf("forwarded %d loads, want 2\n%s", n, main)
	}
	if countOp(main, ir.OpLoad) != 0 {
		t.Errorf("loads remain after forwarding:\n%s", main)
	}
}

func TestRedundantLoadElim(t *testing.T) {
	// Two loads of the same version (no intervening def): the second
	// becomes a copy of the first.
	prog := buildSSA(t, `
int x;
void helper() { x = 3; }
void main() {
	helper();
	print(x);
	print(x * 2);
}`)
	main := prog.Func("main")
	before := countOp(main, ir.OpLoad)
	if before != 2 {
		t.Fatalf("precondition: want 2 loads, have %d", before)
	}
	n := opt.ForwardStores(main)
	if n != 1 {
		t.Fatalf("rewrote %d loads, want 1", n)
	}
	if countOp(main, ir.OpLoad) != 1 {
		t.Errorf("want exactly one canonical load:\n%s", main)
	}
}

func TestForwardStoresRespectsVersions(t *testing.T) {
	// A call between the store and the load creates a new version; the
	// load must NOT be forwarded.
	prog := buildSSA(t, `
int x;
void clobber() { x = 99; }
void main() {
	x = 7;
	clobber();
	print(x);
}`)
	main := prog.Func("main")
	opt.ForwardStores(main)
	if countOp(main, ir.OpLoad) != 1 {
		t.Errorf("load across a call was removed — unsound:\n%s", main)
	}
}

func TestDeadStoreElim(t *testing.T) {
	// The first store is overwritten before any read on every path.
	prog := buildSSA(t, `
int x;
void main() {
	x = 1;
	x = 2;
	print(x);
}`)
	main := prog.Func("main")
	n := opt.DeadStoreElim(main)
	if n != 1 {
		t.Fatalf("removed %d stores, want 1\n%s", n, main)
	}
	if countOp(main, ir.OpStore) != 1 {
		t.Errorf("want one surviving store:\n%s", main)
	}
}

func TestDeadStoreElimKeepsObservableStores(t *testing.T) {
	// The final store must survive: the return makes globals
	// observable.
	prog := buildSSA(t, `
int x;
void main() {
	x = 42;
}`)
	main := prog.Func("main")
	if n := opt.DeadStoreElim(main); n != 0 {
		t.Fatalf("removed %d observable stores", n)
	}
}

func TestDeadStoreElimKeepsLoopCarriedStores(t *testing.T) {
	prog := buildSSA(t, `
int x;
void main() {
	int i;
	for (i = 0; i < 10; i++) x++;
	print(x);
}`)
	main := prog.Func("main")
	if n := opt.DeadStoreElim(main); n != 0 {
		t.Fatalf("removed %d loop-carried stores", n)
	}
}

// TestMemOptSemantics: the memopt-only pipeline preserves behaviour on
// every workload-shaped scenario it is pointed at.
func TestMemOptSemantics(t *testing.T) {
	srcs := []string{
		`int x; void main() { x = 1; x = 2; print(x); print(x + x); }`,
		`int a; int b;
		 void main() {
			int i;
			for (i = 0; i < 20; i++) { a = i; b = a + a; }
			print(a); print(b);
		 }`,
		`int g;
		 void f() { g = g * 2; }
		 void main() { g = 3; f(); print(g); print(g); }`,
	}
	for _, src := range srcs {
		out, err := pipeline.Run(src, pipeline.Options{Algorithm: pipeline.AlgMemOpt})
		if err != nil {
			t.Fatalf("%v\n%s", err, src)
		}
		if !reflect.DeepEqual(out.Before.Output, out.After.Output) {
			t.Fatalf("memopt changed output: %v -> %v\n%s",
				out.Before.Output, out.After.Output, src)
		}
		if !reflect.DeepEqual(out.Before.Globals, out.After.Globals) {
			t.Fatalf("memopt changed memory image\n%s", src)
		}
	}
}

// TestMemOptCannotMatchPromotionOnLoops: the ablation's point — RLE and
// forwarding catch within-iteration redundancy but cannot remove
// loop-carried traffic, which needs promotion.
func TestMemOptCannotMatchPromotionOnLoops(t *testing.T) {
	src := `
int x;
void main() {
	int i;
	for (i = 0; i < 100; i++) x++;
	print(x);
}`
	memopt, err := pipeline.Run(src, pipeline.Options{Algorithm: pipeline.AlgMemOpt})
	if err != nil {
		t.Fatal(err)
	}
	promo, err := pipeline.Run(src, pipeline.Options{Algorithm: pipeline.AlgSSA})
	if err != nil {
		t.Fatal(err)
	}
	if memopt.After.DynMemOps() <= promo.After.DynMemOps() {
		t.Errorf("memopt (%d ops) should not match promotion (%d ops) on a loop",
			memopt.After.DynMemOps(), promo.After.DynMemOps())
	}
}

// TestPreMemOptsComposeWithPromotion: running the scalar opts before
// promotion must stay semantically transparent.
func TestPreMemOptsComposeWithPromotion(t *testing.T) {
	src := `
int x; int y;
void main() {
	x = 5;
	int i;
	for (i = 0; i < 50; i++) {
		y = y + x;
	}
	print(x); print(y);
}`
	out, err := pipeline.Run(src, pipeline.Options{PreMemOpts: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Before.Output, out.After.Output) {
		t.Fatalf("output changed: %v -> %v", out.Before.Output, out.After.Output)
	}
}

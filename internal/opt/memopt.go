package opt

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// The passes in this file exploit memory SSA form directly, exercising
// the paper's observation that putting singleton resources under SSA
// lets classical scalar optimizations (redundant load elimination via
// value numbering, dead store elimination) apply to memory
// instructions. They are deliberately independent of register
// promotion: the ablation benchmarks measure how much of promotion's
// win these cheaper passes capture on their own (answer: the
// within-iteration redundancy, but never the loop-carried traffic,
// which needs promotion's phi-web reasoning).

// ForwardStores rewrites every load of a resource version defined by a
// direct store into a copy of the stored value (store-to-load
// forwarding), and every load of a version already loaded at a
// dominating program point into a copy of the earlier load's result
// (redundant load elimination). Memory SSA makes both checks trivial:
// a load and its reaching definition share a resource version, and
// versions are immutable between definitions. Returns the number of
// loads rewritten. The function must be in SSA form.
func ForwardStores(f *ir.Function) int {
	return ForwardStoresWith(f, cfg.BuildDomTree(f))
}

// ForwardStoresWith is ForwardStores with a caller-supplied dominator
// tree, which must describe f's current CFG.
func ForwardStoresWith(f *ir.Function, dom *cfg.DomTree) int {
	// storeVal[v] = the value a direct store wrote into version v.
	// Resource IDs are dense, so all per-version state lives in slices.
	storeVal := make([]ir.Value, len(f.Resources))
	hasStore := make([]bool, len(f.Resources))
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore {
				storeVal[in.MemDefs[0].Res] = in.Args[0]
				hasStore[in.MemDefs[0].Res] = true
			}
		}
	}

	// Collect loads per version in dominator-tree preorder, so the
	// first load of a version in the list dominates any later one that
	// it dominates (preorder guarantees ancestors come first).
	type loadSite struct {
		in  *ir.Instr
		blk *ir.Block
		idx int
	}
	loadsOf := make([][]loadSite, len(f.Resources))
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		for i, in := range b.Instrs {
			if in.Op == ir.OpLoad {
				v := in.MemUses[0].Res
				loadsOf[v] = append(loadsOf[v], loadSite{in, b, i})
			}
		}
		for _, c := range dom.Children(b) {
			visit(c)
		}
	}
	visit(f.Entry())

	rewritten := 0
	for v, sites := range loadsOf {
		if len(sites) == 0 {
			continue
		}
		if val := storeVal[v]; hasStore[v] {
			// Store-to-load forwarding: the store dominates every use
			// of its version by SSA discipline.
			for _, s := range sites {
				replaceLoad(s.in, val)
				rewritten++
			}
			continue
		}
		// Redundant load elimination: keep the first (dominating-most)
		// load as the canonical one; later loads it dominates become
		// copies of its result.
		dominatesSite := func(a, b loadSite) bool {
			if a.blk == b.blk {
				return a.idx < b.idx
			}
			return dom.Dominates(a.blk, b.blk)
		}
		for i := 1; i < len(sites); i++ {
			canon := -1
			for j := 0; j < i; j++ {
				if dominatesSite(sites[j], sites[i]) {
					canon = j
					break
				}
			}
			if canon >= 0 {
				replaceLoad(sites[i].in, ir.RegVal(sites[canon].in.Dst))
				rewritten++
			}
		}
	}
	return rewritten
}

func replaceLoad(load *ir.Instr, v ir.Value) {
	load.Op = ir.OpCopy
	load.Args = []ir.Value{v}
	load.Loc = ir.MemLoc{}
	load.MemUses = nil
}

// DeadStoreElim removes direct stores whose defined version is never
// read: not by a load, an aliased use (call, pointer access, return),
// or transitively through live memory phis. Because returns carry
// aliased uses of every global, a store is only deleted when it is
// genuinely overwritten before any possible read on every path — the
// SSA formulation of dead store elimination the paper attributes to
// Cytron et al. Dead memory phis discovered along the way are removed
// too. Returns the number of instructions removed. The function must be
// in SSA form.
func DeadStoreElim(f *ir.Function) int {
	live, phiDefs, storeDefs := markLiveVersions(f)

	removed := 0
	for v, st := range storeDefs {
		if st != nil && !live[v] && st.Parent != nil {
			st.Parent.Remove(st)
			removed++
		}
	}
	for v, phi := range phiDefs {
		if phi != nil && !live[v] && phi.Parent != nil {
			phi.Parent.Remove(phi)
			removed++
		}
	}
	return removed
}

// DeadStores returns the direct stores DeadStoreElim would remove,
// without mutating the function — the read-only analysis behind the
// rpanalyze dead-store rule. The function must be in SSA form. Results
// are in block/instruction order.
func DeadStores(f *ir.Function) []*ir.Instr {
	live, _, storeDefs := markLiveVersions(f)
	var dead []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore && storeDefs[in.MemDefs[0].Res] == in && !live[in.MemDefs[0].Res] {
				dead = append(dead, in)
			}
		}
	}
	return dead
}

// markLiveVersions runs the mark phase shared by DeadStoreElim and
// DeadStores: versions read by real code seed the liveness; a live
// version defined by a memphi makes its operands live.
func markLiveVersions(f *ir.Function) (live []bool, phiDefs, storeDefs []*ir.Instr) {
	phiDefs = make([]*ir.Instr, len(f.Resources))
	storeDefs = make([]*ir.Instr, len(f.Resources))
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpMemPhi:
				phiDefs[in.MemDefs[0].Res] = in
			case ir.OpStore:
				storeDefs[in.MemDefs[0].Res] = in
			}
		}
	}

	live = make([]bool, len(f.Resources))
	var work []ir.ResourceID
	mark := func(r ir.ResourceID) {
		if r < 0 || int(r) >= len(live) {
			return
		}
		if !live[r] {
			live[r] = true
			work = append(work, r)
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpMemPhi {
				continue
			}
			for _, u := range in.MemUses {
				mark(u.Res)
			}
		}
	}
	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		if phi := phiDefs[r]; phi != nil {
			for _, u := range phi.MemUses {
				mark(u.Res)
			}
		}
	}
	return live, phiDefs, storeDefs
}

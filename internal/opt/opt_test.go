package opt

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/source"
	"repro/internal/ssa"
)

func buildSSA(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := source.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatal(err)
	}
	for _, f := range prog.Funcs {
		if _, err := cfg.Normalize(f); err != nil {
			t.Fatal(err)
		}
		if _, err := ssa.Build(f); err != nil {
			t.Fatal(err)
		}
	}
	return prog
}

func countOp(f *ir.Function, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestCopyPropagateChains(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFunction(p, "cp")
	a := f.NewReg("a")
	b := f.NewReg("b")
	c := f.NewReg("c")
	blk := f.NewBlock()
	blk.Append(ir.NewInstr(ir.OpCopy, a, ir.ConstVal(5)))
	blk.Append(ir.NewInstr(ir.OpCopy, b, ir.RegVal(a)))
	blk.Append(ir.NewInstr(ir.OpCopy, c, ir.RegVal(b)))
	blk.Append(ir.NewInstr(ir.OpPrint, ir.NoReg, ir.RegVal(c)))
	blk.Append(ir.NewInstr(ir.OpRet, ir.NoReg))

	n := CopyPropagate(f)
	if n != 3 {
		t.Fatalf("removed %d copies, want 3", n)
	}
	pr := blk.Instrs[0]
	if pr.Op != ir.OpPrint || !pr.Args[0].IsConst() || pr.Args[0].Const() != 5 {
		t.Fatalf("print arg not folded through chain: %v", pr)
	}
}

func TestDCERemovesDeadArithmeticAndLoads(t *testing.T) {
	prog := buildSSA(t, `
int g;
void main() {
	int dead = g + 41;
	print(7);
}`)
	main := prog.Func("main")
	if n := countOp(main, ir.OpLoad); n != 1 {
		t.Fatalf("precondition: want 1 load, have %d", n)
	}
	DCE(main)
	if n := countOp(main, ir.OpLoad); n != 0 {
		t.Errorf("dead load survived DCE")
	}
	if n := countOp(main, ir.OpAdd); n != 0 {
		t.Errorf("dead add survived DCE")
	}
	// The print must survive.
	if n := countOp(main, ir.OpPrint); n != 1 {
		t.Errorf("print removed by DCE")
	}
}

func TestDCEKeepsStoresAndCalls(t *testing.T) {
	prog := buildSSA(t, `
int g;
void touch() { g = 1; }
void main() {
	g = 42;
	touch();
}`)
	main := prog.Func("main")
	stores := countOp(main, ir.OpStore)
	calls := countOp(main, ir.OpCall)
	DCE(main)
	if countOp(main, ir.OpStore) != stores || countOp(main, ir.OpCall) != calls {
		t.Error("DCE removed a store or call")
	}
}

func TestDCEKeepsLiveMemPhis(t *testing.T) {
	prog := buildSSA(t, `
int x;
void main() {
	int i;
	for (i = 0; i < 10; i++) x++;
	print(x);
}`)
	main := prog.Func("main")
	before := countOp(main, ir.OpMemPhi)
	if before == 0 {
		t.Fatal("precondition: loop should have a memphi for x")
	}
	DCE(main)
	// The memphi feeds the load of x inside the loop; it must survive.
	if after := countOp(main, ir.OpMemPhi); after == 0 {
		t.Error("live memphi removed by DCE")
	}
}

func TestDCERemovesDeadPhis(t *testing.T) {
	prog := buildSSA(t, `
int c;
void main() {
	int a = 0;
	if (c) { a = 1; } else { a = 2; }
	print(9);
}`)
	main := prog.Func("main")
	DCE(main)
	if n := countOp(main, ir.OpPhi); n != 0 {
		t.Errorf("dead phi survived: %d", n)
	}
}

func TestCleanupReachesFixpoint(t *testing.T) {
	// A copy feeding a dead add feeding nothing: needs copy-prop then
	// DCE, possibly repeatedly.
	prog := buildSSA(t, `
int g;
void main() {
	int a = g;
	int b = a;
	int c = b + 1;
	print(1);
}`)
	main := prog.Func("main")
	Cleanup(main)
	if n := countOp(main, ir.OpCopy) + countOp(main, ir.OpAdd) + countOp(main, ir.OpLoad); n != 0 {
		t.Errorf("Cleanup left %d dead instructions:\n%s", n, main)
	}
	if err := main.Verify(ir.VerifySSA); err != nil {
		t.Fatal(err)
	}
}

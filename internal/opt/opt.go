// Package opt provides the scalar cleanup passes that run after
// register promotion: copy propagation and dead code elimination. The
// promotion algorithm deliberately leaves its transformation residue —
// loads replaced by copy instructions, register phis mirroring memory
// phis, dead memory phis — and these passes sweep it away, exactly as
// the paper's cleanup() step does.
package opt

import (
	"repro/internal/ir"
	"repro/internal/ssa"
)

// CopyPropagate rewrites every use of a register defined by `dst = copy
// src` to src directly and removes the copies. It resolves copy chains
// and returns the number of copies removed. The function must be in SSA
// form.
func CopyPropagate(f *ir.Function) int {
	// Map each copy target to its (chain-resolved) source value.
	repl := make(map[ir.RegID]ir.Value)
	var copies []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCopy {
				repl[in.Dst] = in.Args[0]
				copies = append(copies, in)
			}
		}
	}
	if len(copies) == 0 {
		return 0
	}
	resolve := func(v ir.Value) ir.Value {
		seen := 0
		for !v.IsConst() {
			next, ok := repl[v.Reg()]
			if !ok {
				break
			}
			v = next
			if seen++; seen > len(copies) {
				break // defensive: cyclic copies cannot occur in SSA
			}
		}
		return v
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if !a.IsConst() {
					if _, ok := repl[a.Reg()]; ok {
						in.Args[i] = resolve(a)
					}
				}
			}
		}
	}
	for _, c := range copies {
		c.Parent.Remove(c)
	}
	return len(copies)
}

// DCE removes instructions whose results are never used and which have
// no side effects: dead arithmetic, dead loads, dead copies, dead
// register phis, and dead memory phis. Stores, calls, prints, and
// terminators are roots. Liveness propagates through both the register
// operand graph and the memory version graph (a live instruction's
// memory uses keep the defining memphi alive). Returns the number of
// instructions removed.
func DCE(f *ir.Function) int {
	regDef := make(map[ir.RegID]*ir.Instr)
	resDef := make(map[ir.ResourceID]*ir.Instr)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasDst() {
				regDef[in.Dst] = in
			}
			for _, d := range in.MemDefs {
				resDef[d.Res] = in
			}
		}
	}

	live := make(map[*ir.Instr]bool)
	var work []*ir.Instr
	mark := func(in *ir.Instr) {
		if in != nil && !live[in] {
			live[in] = true
			work = append(work, in)
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op.HasSideEffects() {
				mark(in)
			}
		}
	}
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		for _, a := range in.Args {
			if !a.IsConst() {
				mark(regDef[a.Reg()])
			}
		}
		for _, u := range in.MemUses {
			mark(resDef[u.Res])
		}
	}

	removed := 0
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			if !live[in] && !in.Op.HasSideEffects() {
				b.Remove(in)
				removed++
			}
		}
	}
	return removed
}

// Cleanup runs the full post-promotion sweep: copy propagation, dead
// code elimination, and trivial phi pruning, iterating until nothing
// changes.
func Cleanup(f *ir.Function) {
	for {
		n := CopyPropagate(f)
		n += DCE(f)
		n += ssa.PruneTrivialPhis(f)
		if n == 0 {
			return
		}
	}
}

// Package lint implements the repo's custom determinism lint: the
// compiler-side packages (IR, analyses, transforms, the workload
// generator) must be bit-for-bit reproducible across runs, so they may
// not read wall-clock time or draw from the process-global random
// source. The lint parses each package's non-test sources with
// go/parser and flags:
//
//   - any use of time.Now, time.Since, or time.Until — wall-clock reads
//     that make output depend on when the run happened;
//   - any use of math/rand other than rand.New and rand.NewSource —
//     the package-level functions (rand.Intn, rand.Float64, ...) draw
//     from the global source, whose sequence is shared process-wide and
//     therefore depends on what ran before. Explicitly seeded
//     rand.New(rand.NewSource(seed)) generators are fine: that is how
//     the workload generator gets deterministic variety.
//
// The canonical implementation of this kind of check is a go/analysis
// Analyzer run via `go vet -vettool`. That framework lives in
// golang.org/x/tools, which this repo deliberately does not depend on
// (zero external modules); the stdlib go/parser + go/ast walk below
// enforces the same rules with the toolchain alone. `make lint` (and
// `make ci`) runs it over DefaultPackages via cmd/rplint.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Issue is one lint finding.
type Issue struct {
	// File is the path as given to the checker.
	File string
	// Line is the 1-based source line.
	Line int
	// Msg says what was used and why it is forbidden.
	Msg string
}

// String renders "file:line: msg".
func (i Issue) String() string {
	return fmt.Sprintf("%s:%d: %s", i.File, i.Line, i.Msg)
}

// DefaultPackages lists the internal packages held to the determinism
// contract, relative to the module root. Packages that measure wall
// time on purpose (pipeline stage timings, the server, the
// interpreter's timeout plumbing) are deliberately absent.
var DefaultPackages = []string{
	"internal/alias",
	"internal/analysis",
	"internal/baseline",
	"internal/bitset",
	"internal/cfg",
	"internal/core",
	"internal/diag",
	"internal/ir",
	"internal/irimport",
	"internal/lint",
	"internal/liveness",
	"internal/opt",
	"internal/oracle",
	"internal/profile",
	"internal/regalloc",
	"internal/source",
	"internal/ssa",
	"internal/workload",
}

// forbiddenTime are the time members that read the wall clock.
var forbiddenTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRand are the math/rand members that build explicitly seeded
// generators; everything else on the package draws from or mutates the
// process-global source.
var allowedRand = map[string]bool{"New": true, "NewSource": true}

// CheckSource lints one file's source text. filename is used for
// positions only.
func CheckSource(filename string, src []byte) ([]Issue, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return checkFile(fset, filename, f), nil
}

// CheckDir lints every non-test .go file directly in dir, in name
// order.
func CheckDir(dir string) ([]Issue, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var issues []Issue
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		found, err := CheckSource(path, src)
		if err != nil {
			return nil, err
		}
		issues = append(issues, found...)
	}
	return issues, nil
}

// CheckPackages lints each package directory (relative to root), in
// order, and returns all issues.
func CheckPackages(root string, pkgs []string) ([]Issue, error) {
	var issues []Issue
	for _, pkg := range pkgs {
		found, err := CheckDir(filepath.Join(root, pkg))
		if err != nil {
			return nil, fmt.Errorf("lint %s: %w", pkg, err)
		}
		issues = append(issues, found...)
	}
	return issues, nil
}

// checkFile walks one parsed file. Import aliases are honored: the
// rules key on the import path ("time", "math/rand"), not the local
// name, so `import clock "time"` does not dodge the check.
func checkFile(fset *token.FileSet, filename string, f *ast.File) []Issue {
	// Local names bound to the watched import paths.
	timeNames := map[string]bool{}
	randNames := map[string]bool{}
	var issues []Issue
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path != "time" && path != "math/rand" {
			continue
		}
		local := localName(imp, path)
		switch {
		case local == "_":
			// Blank import: nothing reachable.
		case local == ".":
			// A dot import makes every member an unqualified
			// identifier, which this resolver-free walk cannot
			// attribute reliably — flag the import itself.
			issues = append(issues, Issue{
				File: filename, Line: fset.Position(imp.Pos()).Line,
				Msg: fmt.Sprintf("dot import of %q defeats the determinism lint; use a named import", path),
			})
		case path == "time":
			timeNames[local] = true
		default:
			randNames[local] = true
		}
	}
	if len(timeNames) == 0 && len(randNames) == 0 {
		return issues
	}

	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		line := fset.Position(sel.Pos()).Line
		switch {
		case timeNames[id.Name] && forbiddenTime[sel.Sel.Name]:
			issues = append(issues, Issue{
				File: filename, Line: line,
				Msg: fmt.Sprintf("time.%s reads the wall clock; deterministic packages must not depend on when they run", sel.Sel.Name),
			})
		case randNames[id.Name] && !allowedRand[sel.Sel.Name]:
			// Type names like rand.Rand appear in declarations, not
			// as calls on the global source; they are harmless.
			if isRandType(sel.Sel.Name) {
				return true
			}
			issues = append(issues, Issue{
				File: filename, Line: line,
				Msg: fmt.Sprintf("rand.%s uses the process-global random source; build an explicitly seeded rand.New(rand.NewSource(seed)) instead", sel.Sel.Name),
			})
		}
		return true
	})
	sort.SliceStable(issues, func(a, b int) bool { return issues[a].Line < issues[b].Line })
	return issues
}

// isRandType reports whether name is a math/rand type rather than a
// function on the global source.
func isRandType(name string) bool {
	switch name {
	case "Rand", "Source", "Source64", "Zipf":
		return true
	}
	return false
}

// localName resolves the identifier an import binds in this file.
func localName(imp *ast.ImportSpec, path string) string {
	if imp.Name != nil {
		return imp.Name.Name
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

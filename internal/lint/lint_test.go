package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []Issue {
	t.Helper()
	issues, err := CheckSource("probe.go", []byte(src))
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	return issues
}

func TestFlagsWallClockReads(t *testing.T) {
	src := `package p
import "time"
func f() time.Duration {
	start := time.Now()
	return time.Since(start)
}
`
	issues := check(t, src)
	if len(issues) != 2 {
		t.Fatalf("issues = %v, want time.Now and time.Since flagged", issues)
	}
	if !strings.Contains(issues[0].Msg, "time.Now") || issues[0].Line != 4 {
		t.Errorf("first issue = %v, want time.Now at line 4", issues[0])
	}
	if !strings.Contains(issues[1].Msg, "time.Since") || issues[1].Line != 5 {
		t.Errorf("second issue = %v, want time.Since at line 5", issues[1])
	}
}

func TestAllowsDeterministicTimeUse(t *testing.T) {
	src := `package p
import "time"
const tick = 5 * time.Millisecond
func f(d time.Duration) string { return d.String() }
`
	if issues := check(t, src); len(issues) != 0 {
		t.Fatalf("issues = %v, want none for Duration arithmetic", issues)
	}
}

func TestFlagsGlobalRandButAllowsSeeded(t *testing.T) {
	src := `package p
import "math/rand"
func f(seed int64) (int, *rand.Rand) {
	g := rand.New(rand.NewSource(seed))
	return rand.Intn(10), g
}
`
	issues := check(t, src)
	if len(issues) != 1 {
		t.Fatalf("issues = %v, want only rand.Intn flagged", issues)
	}
	if !strings.Contains(issues[0].Msg, "rand.Intn") || issues[0].Line != 5 {
		t.Errorf("issue = %v, want rand.Intn at line 5", issues[0])
	}
}

func TestHonorsImportAliases(t *testing.T) {
	src := `package p
import clock "time"
func f() { _ = clock.Now() }
`
	issues := check(t, src)
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "time.Now") {
		t.Fatalf("issues = %v, want aliased time.Now flagged", issues)
	}

	// A different package named "time" locally is not the stdlib time.
	src = `package p
import time "example.com/notclock"
func f() { _ = time.Now() }
`
	if issues := check(t, src); len(issues) != 0 {
		t.Fatalf("issues = %v, want none for shadowing import path", issues)
	}
}

func TestFlagsDotImport(t *testing.T) {
	src := `package p
import . "time"
func f() { _ = Now() }
`
	issues := check(t, src)
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "dot import") {
		t.Fatalf("issues = %v, want the dot import itself flagged", issues)
	}
}

// TestDefaultPackagesClean is the repo-level gate: every package under
// the determinism contract must lint clean right now. cmd/rplint runs
// the same check from make lint; this keeps `go test` equivalent.
func TestDefaultPackagesClean(t *testing.T) {
	root := filepath.Join("..", "..")
	issues, err := CheckPackages(root, DefaultPackages)
	if err != nil {
		t.Fatalf("CheckPackages: %v", err)
	}
	for _, is := range issues {
		t.Errorf("%s", is)
	}
}

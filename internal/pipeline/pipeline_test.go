package pipeline_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/pipeline"
)

const simpleLoop = `
int x;
void main() {
	int i;
	for (i = 0; i < 100; i++) x++;
	print(x);
}
`

func TestRunAllAlgorithms(t *testing.T) {
	for _, alg := range []pipeline.Algorithm{
		pipeline.AlgSSA, pipeline.AlgBaseline, pipeline.AlgMemOpt, pipeline.AlgNone,
	} {
		t.Run(alg.String(), func(t *testing.T) {
			out, err := pipeline.Run(simpleLoop, pipeline.Options{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(out.Before.Output, out.After.Output) {
				t.Fatalf("%v changed output", alg)
			}
			if out.Prog == nil || out.Prog.Func("main") == nil {
				t.Fatal("missing transformed program")
			}
		})
	}
}

func TestSkipMeasurement(t *testing.T) {
	out, err := pipeline.Run(simpleLoop, pipeline.Options{
		SkipMeasurement: true,
		StaticProfile:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Before != nil || out.After != nil {
		t.Error("measurement runs should be skipped")
	}
	if out.StaticBefore.Total() == 0 {
		t.Error("static counts missing")
	}
}

func TestStaticCountsReflectPromotion(t *testing.T) {
	out, err := pipeline.Run(simpleLoop, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The loop's load+store become preheader load + tail store: static
	// count stays small and positive.
	if out.StaticAfter.Loads == 0 || out.StaticAfter.Stores == 0 {
		t.Errorf("static after = %+v, want nonzero loads and stores", out.StaticAfter)
	}
}

func TestTrainingProfileAttached(t *testing.T) {
	out, err := pipeline.Run(simpleLoop, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fp := out.Profile.ForFunc("main")
	total := 0.0
	for _, n := range fp.Block {
		total += n
	}
	if total < 100 {
		t.Errorf("training profile too small: %v", total)
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	cases := []string{
		`void main() { undeclared = 1; }`,
		`int x; void f() {}`,    // no main
		`void main() { while }`, // parse error
		`void main() { int x = (; }`,
	}
	for _, src := range cases {
		if _, err := pipeline.Run(src, pipeline.Options{}); err == nil {
			t.Errorf("Run(%q) succeeded, want error", src)
		}
	}
}

func TestRuntimeErrorsSurface(t *testing.T) {
	src := `void main() { int z = 0; print(1 / z); }`
	_, err := pipeline.Run(src, pipeline.Options{})
	if err == nil || !strings.Contains(err.Error(), "division") {
		t.Errorf("err = %v, want division error", err)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[pipeline.Algorithm]string{
		pipeline.AlgSSA:      "ssa",
		pipeline.AlgBaseline: "baseline",
		pipeline.AlgMemOpt:   "memopt",
		pipeline.AlgNone:     "none",
	}
	for alg, name := range want {
		if alg.String() != name {
			t.Errorf("%d.String() = %q, want %q", alg, alg.String(), name)
		}
	}
}

func TestTrainRefProfile(t *testing.T) {
	// Train on a short run, measure on the long run — the SPEC
	// methodology. The loop shape is identical, so the short profile
	// still identifies the hot loop and promotion fires.
	ref := `
int x;
void main() {
	int i;
	for (i = 0; i < 5000; i++) x++;
	print(x);
}
`
	train := `
int x;
void main() {
	int i;
	for (i = 0; i < 50; i++) x++;
	print(x);
}
`
	out, err := pipeline.Run(ref, pipeline.Options{TrainSrc: train})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Before.Output, out.After.Output) {
		t.Fatalf("train/ref run changed output: %v -> %v", out.Before.Output, out.After.Output)
	}
	if out.TotalStats.WebsPromoted == 0 {
		t.Error("training profile failed to identify the hot loop")
	}
	if out.After.DynMemOps() > 10 {
		t.Errorf("ref-input run kept %d memory ops", out.After.DynMemOps())
	}
}

func TestTrainSrcMismatchRejected(t *testing.T) {
	_, err := pipeline.Run(simpleLoop, pipeline.Options{
		TrainSrc: `void other() {} void main() {}`,
	})
	// The training source lacks no function here (main exists), so use
	// one that genuinely misses a function of the reference program.
	if err != nil {
		t.Logf("accepted or rejected: %v", err)
	}
	_, err = pipeline.Run(`
int x;
void helper() { x++; }
void main() { helper(); }`, pipeline.Options{
		TrainSrc: `void main() {}`,
	})
	if err == nil {
		t.Fatal("training source missing a function was accepted")
	}
}

func TestStatsPlumbing(t *testing.T) {
	out, err := pipeline.Run(simpleLoop, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats["main"] == nil {
		t.Fatal("per-function stats missing")
	}
	if out.TotalStats.WebsPromoted == 0 {
		t.Error("loop web should have been promoted")
	}
}

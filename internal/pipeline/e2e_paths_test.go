package pipeline_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/irimport"
	"repro/internal/pipeline"
	"repro/internal/source"
)

// exampleSources extracts every backquoted string constant from the
// example programs and keeps the ones that compile as mini-C with a
// main — the exact sources the examples feed the pipeline. Parsing the
// Go files (rather than go-running the examples) keeps the test hermetic
// and fast while guaranteeing it tracks the example programs verbatim.
func exampleSources(t *testing.T) map[string]string {
	t.Helper()
	mains, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(mains) == 0 {
		t.Fatal("no examples/*/main.go found")
	}
	srcs := make(map[string]string)
	for _, file := range mains {
		f, err := parser.ParseFile(token.NewFileSet(), file, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		example := filepath.Base(filepath.Dir(file))
		n := 0
		ast.Inspect(f, func(node ast.Node) bool {
			lit, ok := node.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || !strings.HasPrefix(lit.Value, "`") {
				return true
			}
			text := strings.Trim(lit.Value, "`")
			if !strings.Contains(text, "main") {
				return true
			}
			if _, err := source.Compile(text); err != nil {
				return true // other backquoted literal (e.g. expected output)
			}
			srcs[example+"#"+itoa(n)] = text
			n++
			return true
		})
		// Some examples (ssaupdate) build IR programmatically and have no
		// source literal; the floor below catches extraction regressions.
	}
	if len(srcs) < 5 {
		t.Fatalf("extracted only %d example programs; the extractor regressed", len(srcs))
	}
	return srcs
}

// irSources loads the import corpus from internal/irimport/testdata.
func irSources(t *testing.T) map[string]string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "irimport", "testdata", "*.ll"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no irimport testdata corpus found")
	}
	srcs := make(map[string]string)
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		srcs[filepath.Base(file)] = string(data)
	}
	return srcs
}

// TestAllProgramsAllPaths is the end-to-end sweep: every example
// program and every imported-IR corpus program goes through the full
// promotion pipeline, and the promoted result runs on all three
// interpreter paths with identical observables. Run under -race in CI
// (make race), this also shakes out data races in the concurrent
// transform chains and the bytecode compiler.
func TestAllProgramsAllPaths(t *testing.T) {
	type testCase struct {
		src  string
		lang string
	}
	cases := make(map[string]testCase)
	for name, src := range exampleSources(t) {
		cases["example/"+name] = testCase{src, ""}
	}
	for name, src := range irSources(t) {
		cases["imported/"+name] = testCase{src, irimport.LangIR}
	}

	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := pipeline.Run(tc.src, pipeline.Options{
				Lang:   tc.lang,
				Check:  pipeline.CheckParanoid,
				Interp: interp.Options{MaxSteps: 50_000_000},
			})
			if err != nil {
				t.Fatalf("pipeline: %v", err)
			}
			if len(out.Degraded) > 0 {
				t.Errorf("degraded: %v", out.DegradedFuncs())
			}
			if !reflect.DeepEqual(out.Before.Output, out.After.Output) ||
				out.Before.ReturnValue != out.After.ReturnValue {
				t.Fatalf("promotion changed observables: %v/%d vs %v/%d",
					out.Before.Output, out.Before.ReturnValue,
					out.After.Output, out.After.ReturnValue)
			}
			want, err := interp.Run(out.Prog, interp.Options{Legacy: true, MaxSteps: 50_000_000})
			if err != nil {
				t.Fatalf("legacy run: %v", err)
			}
			for _, path := range []struct {
				name string
				opts interp.Options
			}{
				{"fast", interp.Options{MaxSteps: 50_000_000}},
				{"bytecode", interp.Options{Bytecode: true, MaxSteps: 50_000_000}},
			} {
				got, err := interp.Run(out.Prog, path.opts)
				if err != nil {
					t.Fatalf("%s run: %v", path.name, err)
				}
				if !reflect.DeepEqual(got.Output, want.Output) ||
					got.ReturnValue != want.ReturnValue ||
					!reflect.DeepEqual(got.Globals, want.Globals) {
					t.Errorf("%s path diverges from legacy: %v/%d vs %v/%d",
						path.name, got.Output, got.ReturnValue, want.Output, want.ReturnValue)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

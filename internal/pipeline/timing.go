package pipeline

import "time"

// StageTiming is the measured wall-clock duration of one stage
// execution. Per-function stages carry the function name; whole-program
// stages leave it empty. The pipeline records one entry per runStage
// call, so a run over a program with N functions produces roughly
// N entries per per-function stage plus one per whole-program stage.
type StageTiming struct {
	// Stage is the pipeline stage that was timed (see Stages).
	Stage string
	// Func is the function being transformed, or "" for whole-program
	// stages.
	Func string
	// Wall is the stage body's wall-clock duration, including any
	// boundary checks the configured CheckLevel adds.
	Wall time.Duration
}

// stageOrder maps each stage name to its position in execution order,
// for canonical sorting of timings and degradations.
var stageOrder = func() map[string]int {
	m := make(map[string]int, len(Stages()))
	for i, s := range Stages() {
		m[s] = i
	}
	return m
}()

// stageIndex returns the execution-order position of stage, or a
// past-the-end position for unknown names.
func stageIndex(stage string) int {
	if i, ok := stageOrder[stage]; ok {
		return i
	}
	return len(stageOrder)
}

// recordTiming appends one stage timing under the runner's lock (the
// per-function chains run concurrently on the worker pool).
func (r *runner) recordTiming(stage, fn string, wall time.Duration) {
	r.mu.Lock()
	r.out.Timings = append(r.out.Timings, StageTiming{Stage: stage, Func: fn, Wall: wall})
	r.mu.Unlock()
}

// StageWall aggregates the outcome's timings into total wall time per
// stage. Map iteration order is not defined; render through
// report.SumStageTimings (or sort by Stages order) for stable output.
func (o *Outcome) StageWall() map[string]time.Duration {
	m := make(map[string]time.Duration, len(stageOrder))
	for _, t := range o.Timings {
		m[t.Stage] += t.Wall
	}
	return m
}

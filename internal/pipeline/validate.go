package pipeline

import (
	"fmt"

	"repro/internal/irimport"
)

// OptionError reports one invalid Options field. Run validates its
// options up front and returns an *OptionError instead of silently
// clamping nonsense values, so callers that accept options from the
// outside world (the promotion service's request decoder, the CLIs'
// flag handlers) can distinguish "the request was malformed" from "the
// pipeline failed" and map the former to a 400-class response.
type OptionError struct {
	// Field is the Options field that was rejected (Go field name,
	// dotted for nested fields, e.g. "Interp.MaxSteps").
	Field string
	// Value is the rejected value.
	Value any
	// Reason says what a valid value looks like.
	Reason string
}

// Error renders "pipeline: invalid option Field=value: reason".
func (e *OptionError) Error() string {
	return fmt.Sprintf("pipeline: invalid option %s=%v: %s", e.Field, e.Value, e.Reason)
}

// ParseAlgorithm parses "ssa", "baseline", "memopt", or "none".
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "ssa":
		return AlgSSA, nil
	case "baseline":
		return AlgBaseline, nil
	case "memopt":
		return AlgMemOpt, nil
	case "none":
		return AlgNone, nil
	}
	return AlgSSA, fmt.Errorf("pipeline: unknown algorithm %q (want ssa, baseline, memopt, or none)", s)
}

// Validate checks that every Options field is in its documented range
// and returns a typed *OptionError for the first violation. Zero values
// are always valid (they select the documented defaults); what Validate
// rejects are values no code path gives a meaning to — a negative
// worker count, an Algorithm or CheckLevel outside the enum — which
// previously fell through to whatever the nearest clamp did.
func (o Options) Validate() error {
	switch o.Lang {
	case "", irimport.LangMiniC, irimport.LangIR:
	default:
		return &OptionError{Field: "Lang", Value: o.Lang,
			Reason: `unknown input language (want "mc" or "ll")`}
	}
	if o.Algorithm < AlgSSA || o.Algorithm > AlgNone {
		return &OptionError{Field: "Algorithm", Value: int(o.Algorithm),
			Reason: "unknown algorithm (want ssa, baseline, memopt, or none)"}
	}
	if o.Check < CheckOff || o.Check > CheckParanoid {
		return &OptionError{Field: "Check", Value: int(o.Check),
			Reason: "unknown check level (want off, boundaries, or paranoid)"}
	}
	if o.Workers < 0 {
		return &OptionError{Field: "Workers", Value: o.Workers,
			Reason: "must be >= 0 (0 = GOMAXPROCS)"}
	}
	if o.MaxPromotedWebs < 0 {
		return &OptionError{Field: "MaxPromotedWebs", Value: o.MaxPromotedWebs,
			Reason: "must be >= 0 (0 = unlimited)"}
	}
	if o.PressureCap < 0 {
		return &OptionError{Field: "PressureCap", Value: o.PressureCap,
			Reason: "must be >= 0 (0 = no pressure cap)"}
	}
	if o.Interp.MaxSteps < 0 {
		return &OptionError{Field: "Interp.MaxSteps", Value: o.Interp.MaxSteps,
			Reason: "must be >= 0 (0 = default)"}
	}
	if o.Interp.MaxDepth < 0 {
		return &OptionError{Field: "Interp.MaxDepth", Value: o.Interp.MaxDepth,
			Reason: "must be >= 0 (0 = default)"}
	}
	if o.Interp.MaxOutput < 0 {
		return &OptionError{Field: "Interp.MaxOutput", Value: o.Interp.MaxOutput,
			Reason: "must be >= 0 (0 = default)"}
	}
	if o.Interp.Timeout < 0 {
		return &OptionError{Field: "Interp.Timeout", Value: o.Interp.Timeout,
			Reason: "must be >= 0 (0 = no limit)"}
	}
	return nil
}

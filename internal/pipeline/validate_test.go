package pipeline

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/interp"
)

// TestValidateRejectsBadOptions sweeps every field Validate guards and
// checks each violation comes back as a typed *OptionError naming the
// right field.
func TestValidateRejectsBadOptions(t *testing.T) {
	cases := []struct {
		name  string
		opts  Options
		field string
	}{
		{"negative workers", Options{Workers: -1}, "Workers"},
		{"negative webs cap", Options{MaxPromotedWebs: -2}, "MaxPromotedWebs"},
		{"algorithm too big", Options{Algorithm: AlgNone + 1}, "Algorithm"},
		{"algorithm negative", Options{Algorithm: -1}, "Algorithm"},
		{"check too big", Options{Check: CheckParanoid + 1}, "Check"},
		{"check negative", Options{Check: -3}, "Check"},
		{"negative max steps", Options{Interp: interp.Options{MaxSteps: -1}}, "Interp.MaxSteps"},
		{"negative max depth", Options{Interp: interp.Options{MaxDepth: -1}}, "Interp.MaxDepth"},
		{"negative max output", Options{Interp: interp.Options{MaxOutput: -1}}, "Interp.MaxOutput"},
		{"negative timeout", Options{Interp: interp.Options{Timeout: -time.Second}}, "Interp.Timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("Validate() = %v, want *OptionError", err)
			}
			if oe.Field != tc.field {
				t.Fatalf("OptionError.Field = %q, want %q", oe.Field, tc.field)
			}
			if !strings.Contains(oe.Error(), tc.field) {
				t.Fatalf("Error() = %q does not name field %q", oe.Error(), tc.field)
			}
		})
	}
}

// TestValidateAcceptsDefaultsAndExtremes checks the zero value and the
// documented boundary values validate.
func TestValidateAcceptsDefaultsAndExtremes(t *testing.T) {
	good := []Options{
		{},
		{Algorithm: AlgNone, Check: CheckParanoid, Workers: 64},
		{Workers: 0, MaxPromotedWebs: 0},
		{Interp: interp.Options{MaxSteps: 1, MaxDepth: 1, MaxOutput: 1, Timeout: time.Nanosecond}},
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v, want nil", o, err)
		}
	}
}

// TestRunRejectsInvalidOptions checks Run surfaces the typed error
// before doing any work.
func TestRunRejectsInvalidOptions(t *testing.T) {
	_, err := Run(`void main() { print(1); }`, Options{Workers: -4})
	var oe *OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("Run with Workers=-4 returned %v, want *OptionError", err)
	}
	if oe.Field != "Workers" {
		t.Fatalf("OptionError.Field = %q, want Workers", oe.Field)
	}
}

// TestParseAlgorithm round-trips every algorithm name and rejects
// unknown ones.
func TestParseAlgorithm(t *testing.T) {
	for _, a := range []Algorithm{AlgSSA, AlgBaseline, AlgMemOpt, AlgNone} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v; want %v", a.String(), got, err, a)
		}
	}
	if _, err := ParseAlgorithm("turbo"); err == nil {
		t.Fatal("ParseAlgorithm(turbo) succeeded, want error")
	}
}

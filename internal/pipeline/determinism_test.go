package pipeline_test

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestRunTwiceIdentical runs every corpus entry through the pipeline
// twice in the same process and requires byte-identical outcome reports
// and transformed IR. Go randomizes map iteration order per range
// statement, so any pass that lets a map's order leak into phi
// placement, web numbering, or statistics shows up here as a diff
// between the two runs.
func TestRunTwiceIdentical(t *testing.T) {
	corpus := workload.Suite()
	for i := 0; i < 6; i++ {
		corpus = append(corpus, workload.CorpusEntry(3, i))
	}
	opts := pipeline.Options{
		PreMemOpts: true,
		Check:      pipeline.CheckBoundaries,
	}
	for _, w := range corpus {
		_, report1, prog1 := runReport(t, w.Src, opts)
		_, report2, prog2 := runReport(t, w.Src, opts)
		if report1 != report2 {
			t.Errorf("%s: reports differ between identical runs:\n--- first\n%s\n--- second\n%s",
				w.Name, report1, report2)
		}
		if prog1 != prog2 {
			t.Errorf("%s: transformed programs differ between identical runs", w.Name)
		}
	}
}

// TestRunTwiceIdenticalLegacy repeats the corpus-twice check on the
// no-cache, legacy-interpreter configuration, so the baseline paths
// rpbench -legacy measures stay deterministic too.
func TestRunTwiceIdenticalLegacy(t *testing.T) {
	opts := pipeline.Options{
		PreMemOpts:      true,
		NoAnalysisCache: true,
	}
	opts.Interp.Legacy = true
	for _, w := range workload.Suite() {
		_, report1, prog1 := runReport(t, w.Src, opts)
		_, report2, prog2 := runReport(t, w.Src, opts)
		if report1 != report2 {
			t.Errorf("%s: legacy reports differ between identical runs", w.Name)
		}
		if prog1 != prog2 {
			t.Errorf("%s: legacy transformed programs differ between identical runs", w.Name)
		}
	}
}

// TestCachedMatchesUncachedReport asserts the analysis cache is
// semantically invisible: a cached run and a NoAnalysisCache run of the
// same source produce byte-identical reports and IR.
func TestCachedMatchesUncachedReport(t *testing.T) {
	for _, w := range workload.Suite() {
		_, cachedReport, cachedProg := runReport(t, w.Src, pipeline.Options{PreMemOpts: true})
		_, plainReport, plainProg := runReport(t, w.Src, pipeline.Options{PreMemOpts: true, NoAnalysisCache: true})
		if cachedReport != plainReport {
			t.Errorf("%s: cached and uncached reports differ:\n--- cached\n%s\n--- uncached\n%s",
				w.Name, cachedReport, plainReport)
		}
		if cachedProg != plainProg {
			t.Errorf("%s: cached and uncached transformed programs differ", w.Name)
		}
	}
}

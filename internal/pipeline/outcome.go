package pipeline

import (
	"fmt"
	"sort"
	"strings"
)

// Report renders a canonical, deterministic summary of the outcome:
// static counts, per-function promotion statistics (sorted by function
// name), degradations (canonical order, stage and function only — no
// stacks), and the measured runs' observable behavior (output, return
// value, final global memory in sorted order). Two Runs over the same
// source with the same options produce byte-identical reports whatever
// Options.Workers is — the determinism tests and the batch harness
// compare this string. Timings are deliberately excluded: wall time is
// the one thing that legitimately differs between runs.
func (o *Outcome) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "static loads %d -> %d stores %d -> %d\n",
		o.StaticBefore.Loads, o.StaticAfter.Loads,
		o.StaticBefore.Stores, o.StaticAfter.Stores)

	names := make([]string, 0, len(o.Stats))
	for name := range o.Stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := o.Stats[name]
		fmt.Fprintf(&sb, "func %s: considered=%d promoted=%d loadonly=%d rejected=%d "+
			"loads(repl=%d ins=%d) stores(del=%d ins=%d) dummy=%d\n",
			name, s.WebsConsidered, s.WebsPromoted, s.WebsLoadOnly, s.WebsRejected,
			s.LoadsReplaced, s.LoadsInserted, s.StoresDeleted, s.StoresInserted,
			s.DummyLoadsAdded)
	}
	t := o.TotalStats
	fmt.Fprintf(&sb, "total: considered=%d promoted=%d loadonly=%d rejected=%d "+
		"loads(repl=%d ins=%d) stores(del=%d ins=%d)\n",
		t.WebsConsidered, t.WebsPromoted, t.WebsLoadOnly, t.WebsRejected,
		t.LoadsReplaced, t.LoadsInserted, t.StoresDeleted, t.StoresInserted)

	for _, d := range o.Degraded {
		fmt.Fprintf(&sb, "degraded %s at %s\n", d.Func, d.Stage)
	}

	if o.Before != nil {
		fmt.Fprintf(&sb, "dyn before: loads=%d stores=%d\n", o.Before.DynLoads(), o.Before.DynStores())
	}
	if o.After != nil {
		fmt.Fprintf(&sb, "dyn after: loads=%d stores=%d\n", o.After.DynLoads(), o.After.DynStores())
		fmt.Fprintf(&sb, "output: %v return: %d\n", o.After.Output, o.After.ReturnValue)
		globals := make([]string, 0, len(o.After.Globals))
		for name := range o.After.Globals {
			globals = append(globals, name)
		}
		sort.Strings(globals)
		for _, name := range globals {
			fmt.Fprintf(&sb, "global %s: %v\n", name, o.After.Globals[name])
		}
	}
	return sb.String()
}

package pipeline_test

import (
	"reflect"
	"strconv"
	"testing"

	"repro/internal/interp"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// requireSameRun holds two measurement results to the same observable
// behavior.
func requireSameRun(t *testing.T, phase string, want, got *interp.Result) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("%s: one run missing (default %v, bytecode %v)", phase, want != nil, got != nil)
	}
	if want == nil {
		return
	}
	if !reflect.DeepEqual(want.Output, got.Output) {
		t.Errorf("%s: output differs: default %v bytecode %v", phase, want.Output, got.Output)
	}
	if want.ReturnValue != got.ReturnValue {
		t.Errorf("%s: return value differs: default %d bytecode %d", phase, want.ReturnValue, got.ReturnValue)
	}
	if want.Steps != got.Steps {
		t.Errorf("%s: steps differ: default %d bytecode %d", phase, want.Steps, got.Steps)
	}
	if !reflect.DeepEqual(want.OpCounts, got.OpCounts) {
		t.Errorf("%s: opcode counts differ:\ndefault  %v\nbytecode %v", phase, want.OpCounts, got.OpCounts)
	}
	if !reflect.DeepEqual(want.Globals, got.Globals) {
		t.Errorf("%s: final global images differ", phase)
	}
}

// TestPipelineBytecodeDifferential runs the full pipeline — training
// run, SSA promotion, paranoid checking, and measurement — twice per
// program, once on each interpreter path, and requires identical
// outcomes. Unlike the interp-package differential this executes
// PROMOTED code: phi-heavy, register-renamed functions the compiler
// never sees from the frontend alone, plus the degradation bookkeeping
// around them.
func TestPipelineBytecodeDifferential(t *testing.T) {
	type prog struct{ name, src string }
	var corpus []prog
	for _, w := range workload.Suite() {
		corpus = append(corpus, prog{"workload/" + w.Name, w.Src})
	}
	for seed := 0; seed < 4; seed++ {
		corpus = append(corpus, prog{
			"generated/" + strconv.Itoa(seed),
			workload.Generate(workload.DefaultGenConfig(workload.DeriveSeed(7, seed))),
		})
	}

	for _, p := range corpus {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			opts := pipeline.Options{
				Algorithm:  pipeline.AlgSSA,
				PreMemOpts: true,
				Check:      pipeline.CheckParanoid,
			}
			base, err := pipeline.Run(p.src, opts)
			if err != nil {
				t.Fatalf("default path: %v", err)
			}
			opts.Interp = interp.Options{Bytecode: true}
			bc, err := pipeline.Run(p.src, opts)
			if err != nil {
				t.Fatalf("bytecode path: %v", err)
			}

			requireSameRun(t, "before", base.Before, bc.Before)
			requireSameRun(t, "after", base.After, bc.After)
			if !reflect.DeepEqual(base.TotalStats, bc.TotalStats) {
				t.Errorf("promotion stats differ:\ndefault  %+v\nbytecode %+v", base.TotalStats, bc.TotalStats)
			}
			if !reflect.DeepEqual(base.StaticAfter, bc.StaticAfter) {
				t.Errorf("static counts differ: default %+v bytecode %+v", base.StaticAfter, bc.StaticAfter)
			}
			if !reflect.DeepEqual(base.DegradedFuncs(), bc.DegradedFuncs()) {
				t.Errorf("degradations differ: default %v bytecode %v", base.DegradedFuncs(), bc.DegradedFuncs())
			}
		})
	}
}

package pipeline_test

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// manyFuncs returns a generated program with enough helper functions to
// keep a worker pool busy (the default generator config plus extra
// helpers and globals).
func manyFuncs(t *testing.T, seed int64) string {
	t.Helper()
	cfg := workload.DefaultGenConfig(seed)
	cfg.NumHelpers = 8
	cfg.NumGlobals = 8
	return workload.Generate(cfg)
}

// runReport runs the pipeline and returns the canonical outcome report
// plus the printed transformed program.
func runReport(t *testing.T, src string, opts pipeline.Options) (*pipeline.Outcome, string, string) {
	t.Helper()
	out, err := pipeline.Run(src, opts)
	if err != nil {
		t.Fatalf("Workers=%d: %v", opts.Workers, err)
	}
	return out, out.Report(), out.Prog.String()
}

// TestParallelDeterminism is the tentpole acceptance test: Run with
// Workers:1 and Workers:N must produce byte-identical Outcome reports
// and byte-identical transformed IR on multi-function programs.
func TestParallelDeterminism(t *testing.T) {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 4
	}
	for seed := int64(0); seed < 4; seed++ {
		src := manyFuncs(t, seed)
		seqOut, seqReport, seqIR := runReport(t, src, pipeline.Options{Workers: 1})
		for _, workers := range []int{0, 2, n, 2 * n} {
			parOut, parReport, parIR := runReport(t, src, pipeline.Options{Workers: workers})
			if parReport != seqReport {
				t.Fatalf("seed %d: Workers=%d report differs from Workers=1:\n--- seq ---\n%s\n--- par ---\n%s",
					seed, workers, seqReport, parReport)
			}
			if parIR != seqIR {
				t.Fatalf("seed %d: Workers=%d produced different transformed IR", seed, workers)
			}
			if !reflect.DeepEqual(seqOut.TotalStats, parOut.TotalStats) {
				t.Fatalf("seed %d: Workers=%d TotalStats %+v, want %+v",
					seed, workers, parOut.TotalStats, seqOut.TotalStats)
			}
		}
	}
}

// TestParallelDeterminismSuite repeats the byte-identity check on the
// real workload suite with full measurement and paranoid checking.
func TestParallelDeterminismSuite(t *testing.T) {
	for _, w := range workload.Suite() {
		t.Run(w.Name, func(t *testing.T) {
			opts := pipeline.Options{Check: pipeline.CheckParanoid}
			opts.Workers = 1
			_, seqReport, seqIR := runReport(t, w.Src, opts)
			opts.Workers = 4
			_, parReport, parIR := runReport(t, w.Src, opts)
			if parReport != seqReport || parIR != seqIR {
				t.Fatalf("Workers=4 diverged from Workers=1 on %s", w.Name)
			}
		})
	}
}

// TestParallelFaultIsolation proves degradation still isolates to the
// faulted function under the worker pool: breaking one function leaves
// exactly that function degraded, the others promoted, and the program
// output equal to the baseline — for both fault modes, at several
// worker counts.
func TestParallelFaultIsolation(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		for _, mode := range []faults.Mode{faults.ModeError, faults.ModePanic} {
			inj := faults.New(faults.Plan{Stage: pipeline.StagePromote, Func: "bumpx", Mode: mode})
			out, err := pipeline.Run(multiFunc, pipeline.Options{
				Workers: workers,
				Check:   pipeline.CheckParanoid,
				Faults:  inj,
			})
			if err != nil {
				t.Fatalf("workers=%d mode=%v: fault not absorbed: %v", workers, mode, err)
			}
			if got := out.DegradedFuncs(); len(got) != 1 || got[0] != "bumpx" {
				t.Fatalf("workers=%d mode=%v: DegradedFuncs() = %v, want [bumpx]", workers, mode, got)
			}
			if !reflect.DeepEqual(out.Before.Output, out.After.Output) {
				t.Fatalf("workers=%d mode=%v: degraded program changed output", workers, mode)
			}
			if out.Stats["bumpx"] != nil {
				t.Fatalf("workers=%d mode=%v: degraded function kept stats", workers, mode)
			}
			if out.Stats["bumpy"] == nil || out.Stats["bumpy"].WebsPromoted == 0 {
				t.Fatalf("workers=%d mode=%v: healthy sibling lost its promotion", workers, mode)
			}
		}
	}
}

// TestParallelFaultSweepEveryStage drives a fault through every stage
// under the pool: Run must never panic and every fault must either
// surface as a StageError or leave a degradation trace — the serial
// sweep's contract, now with Workers=4.
func TestParallelFaultSweepEveryStage(t *testing.T) {
	for _, stage := range pipeline.Stages() {
		for _, mode := range []faults.Mode{faults.ModeError, faults.ModePanic} {
			t.Run(stage+"/"+mode.String(), func(t *testing.T) {
				inj := faults.New(faults.Plan{Stage: stage, Mode: mode})
				out, err := runNoPanic(t, multiFunc, pipeline.Options{
					Workers:    4,
					PreMemOpts: true,
					Check:      pipeline.CheckParanoid,
					Faults:     inj,
				})
				if inj.Fired() == 0 {
					t.Fatalf("stage %s was never reached: sites %v", stage, inj.Sites())
				}
				switch {
				case err != nil:
					var se *pipeline.StageError
					if !errors.As(err, &se) {
						t.Fatalf("error is not a StageError: %v", err)
					}
					if se.Stage != stage {
						t.Fatalf("StageError names stage %q, want %q", se.Stage, stage)
					}
				case out != nil && len(out.Degraded) > 0:
					if out.Before != nil && out.After != nil &&
						!reflect.DeepEqual(out.Before.Output, out.After.Output) {
						t.Fatalf("degraded program changed output")
					}
				default:
					t.Fatalf("fault at %s vanished: no error, no degradation", stage)
				}
			})
		}
	}
}

// TestParallelFailFastDeterministic: with FailFast, the pool must
// return the same error the sequential run hits — the failure of the
// earliest function in declaration order, not of whichever worker
// finished first.
func TestParallelFailFastDeterministic(t *testing.T) {
	inj := func() *faults.Injector {
		return faults.New(
			faults.Plan{Stage: pipeline.StagePromote, Func: "bumpx", Mode: faults.ModeError},
			faults.Plan{Stage: pipeline.StagePromote, Func: "bumpy", Mode: faults.ModeError},
		)
	}
	_, seqErr := pipeline.Run(multiFunc, pipeline.Options{Workers: 1, FailFast: true, Faults: inj()})
	var seqSE *pipeline.StageError
	if !errors.As(seqErr, &seqSE) {
		t.Fatalf("sequential FailFast: err = %v, want StageError", seqErr)
	}
	for i := 0; i < 8; i++ {
		_, parErr := pipeline.Run(multiFunc, pipeline.Options{Workers: 4, FailFast: true, Faults: inj()})
		var parSE *pipeline.StageError
		if !errors.As(parErr, &parSE) {
			t.Fatalf("parallel FailFast: err = %v, want StageError", parErr)
		}
		if parSE.Func != seqSE.Func || parSE.Stage != seqSE.Stage {
			t.Fatalf("parallel FailFast error at %s/%s, sequential at %s/%s",
				parSE.Stage, parSE.Func, seqSE.Stage, seqSE.Func)
		}
	}
}

// TestParallelRescueAccounting: when the rescue path (a failing
// measure-after run triggering the bisect) degrades a function, the
// degradation list and totals must be identical whatever the worker
// count — the bisect always runs after the pool has drained.
func TestParallelRescueAccounting(t *testing.T) {
	run := func(workers int) *pipeline.Outcome {
		inj := faults.New(faults.Plan{Stage: pipeline.StageMeasureAfter, Mode: faults.ModeError, Count: 1})
		out, err := pipeline.Run(multiFunc, pipeline.Options{Workers: workers, Faults: inj})
		if err != nil {
			t.Fatalf("workers=%d: rescue failed: %v", workers, err)
		}
		return out
	}
	seq := run(1)
	if len(seq.DegradedFuncs()) == 0 {
		t.Fatal("rescue did not degrade any function")
	}
	for _, workers := range []int{2, 4} {
		par := run(workers)
		if !reflect.DeepEqual(par.DegradedFuncs(), seq.DegradedFuncs()) {
			t.Fatalf("workers=%d: DegradedFuncs %v, want %v", workers, par.DegradedFuncs(), seq.DegradedFuncs())
		}
		if par.Report() != seq.Report() {
			t.Fatalf("workers=%d: rescue report differs from sequential", workers)
		}
	}
}

// TestTimingsRecorded: every executed stage leaves a timing entry, in
// canonical order (stage order, then function order), so the report
// layer can aggregate per-stage wall time.
func TestTimingsRecorded(t *testing.T) {
	out, err := pipeline.Run(multiFunc, pipeline.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Timings) == 0 {
		t.Fatal("no timings recorded")
	}
	wall := out.StageWall()
	for _, stage := range []string{
		pipeline.StageCompile, pipeline.StageTrain, pipeline.StageSSABuild,
		pipeline.StagePromote, pipeline.StageVerify, pipeline.StageMeasureAfter,
	} {
		if _, ok := wall[stage]; !ok {
			t.Errorf("stage %s has no aggregated wall time", stage)
		}
	}
	// Canonical order: stage positions must be non-decreasing.
	stagePos := make(map[string]int)
	for i, s := range pipeline.Stages() {
		stagePos[s] = i
	}
	last := -1
	for _, tm := range out.Timings {
		if p := stagePos[tm.Stage]; p < last {
			t.Fatalf("timings out of canonical order at %s/%s", tm.Stage, tm.Func)
		} else {
			last = p
		}
	}
}

package pipeline_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/pipeline"
)

// multiFunc is a three-function program: main's output depends on both
// helpers, so a miscompiled helper is observable.
const multiFunc = `
int x;
int y;
void bumpx() { int i; for (i = 0; i < 40; i++) x++; }
void bumpy() { int i; for (i = 0; i < 30; i++) y += 2; }
void main() {
	bumpx();
	bumpy();
	print(x);
	print(y);
}
`

// runNoPanic runs the pipeline and converts an escaped panic into a
// test failure; it returns the outcome and error otherwise.
func runNoPanic(t *testing.T, src string, opts pipeline.Options) (out *pipeline.Outcome, err error) {
	t.Helper()
	defer func() {
		if rec := recover(); rec != nil {
			t.Fatalf("pipeline.Run panicked: %v", rec)
		}
	}()
	return pipeline.Run(src, opts)
}

// TestFaultInjectionEveryStage drives a fault (both error and panic
// mode) through every stage's injection point and asserts the
// acceptance contract: Run never panics, and each failure either
// surfaces as a structured *StageError or degrades the affected
// function and is reported in the outcome.
func TestFaultInjectionEveryStage(t *testing.T) {
	for _, stage := range pipeline.Stages() {
		for _, mode := range []faults.Mode{faults.ModeError, faults.ModePanic} {
			t.Run(stage+"/"+mode.String(), func(t *testing.T) {
				inj := faults.New(faults.Plan{Stage: stage, Mode: mode})
				opts := pipeline.Options{
					// Reach every stage: memopts needs PreMemOpts, the
					// differential stage needs paranoid checking, and
					// the measure stages need measurement enabled.
					PreMemOpts: true,
					Check:      pipeline.CheckParanoid,
					Faults:     inj,
				}
				out, err := runNoPanic(t, multiFunc, opts)
				if inj.Fired() == 0 {
					t.Fatalf("stage %s was never reached: sites %v", stage, inj.Sites())
				}
				switch {
				case err != nil:
					var se *pipeline.StageError
					if !errors.As(err, &se) {
						t.Fatalf("error is not a StageError: %v", err)
					}
					if se.Stage != stage {
						t.Fatalf("StageError names stage %q, want %q", se.Stage, stage)
					}
					if mode == faults.ModePanic {
						if se.Recovered == nil || se.Stack == "" {
							t.Fatalf("panic StageError lacks recovered value or stack: %+v", se)
						}
					}
				case out != nil && len(out.Degraded) > 0:
					d := out.Degraded[0]
					if d.Err == nil {
						t.Fatalf("degradation lacks structured error: %+v", d)
					}
					// The degraded program must still run correctly.
					if out.Before != nil && out.After != nil &&
						!reflect.DeepEqual(out.Before.Output, out.After.Output) {
						t.Fatalf("degraded program changed output: %v vs %v",
							out.Before.Output, out.After.Output)
					}
				default:
					t.Fatalf("fault at %s vanished: no error, no degradation", stage)
				}
			})
		}
	}
}

// TestFaultInjectionFailFast asserts that FailFast converts every
// per-function degradation into a returned StageError instead.
func TestFaultInjectionFailFast(t *testing.T) {
	for _, stage := range []string{
		pipeline.StageNormalize, pipeline.StageSSABuild, pipeline.StagePromote,
		pipeline.StageDestruct, pipeline.StageVerify,
	} {
		inj := faults.New(faults.Plan{Stage: stage, Mode: faults.ModePanic})
		_, err := runNoPanic(t, multiFunc, pipeline.Options{Faults: inj, FailFast: true})
		var se *pipeline.StageError
		if !errors.As(err, &se) {
			t.Fatalf("stage %s with FailFast: err = %v, want StageError", stage, err)
		}
		if se.Stage != stage || se.Func == "" {
			t.Fatalf("stage %s: StageError site = %s/%s", stage, se.Stage, se.Func)
		}
	}
}

// TestDegradationPath is the satellite acceptance test: break promotion
// of exactly one function in a multi-function program and require that
// the program still compiles, runs correctly, and reports exactly that
// function as degraded — with the other functions still promoted.
func TestDegradationPath(t *testing.T) {
	for _, mode := range []faults.Mode{faults.ModeError, faults.ModePanic} {
		t.Run(mode.String(), func(t *testing.T) {
			inj := faults.New(faults.Plan{Stage: pipeline.StagePromote, Func: "bumpx", Mode: mode})
			out, err := runNoPanic(t, multiFunc, pipeline.Options{
				Check:  pipeline.CheckParanoid,
				Faults: inj,
			})
			if err != nil {
				t.Fatalf("degradation did not absorb the fault: %v", err)
			}
			if got := out.DegradedFuncs(); len(got) != 1 || got[0] != "bumpx" {
				t.Fatalf("DegradedFuncs() = %v, want [bumpx]", got)
			}
			if out.Degraded[0].Stage != pipeline.StagePromote {
				t.Fatalf("degradation stage = %s, want promote", out.Degraded[0].Stage)
			}
			// The program still runs and matches the baseline.
			if !reflect.DeepEqual(out.Before.Output, out.After.Output) {
				t.Fatalf("degraded program changed output: %v vs %v",
					out.Before.Output, out.After.Output)
			}
			if want := []int64{40, 60}; !reflect.DeepEqual(out.After.Output, want) {
				t.Fatalf("output = %v, want %v", out.After.Output, want)
			}
			// The degraded function keeps no promotion stats; the others
			// are still promoted.
			if out.Stats["bumpx"] != nil {
				t.Fatal("degraded function still has promotion stats")
			}
			if out.Stats["bumpy"] == nil || out.Stats["bumpy"].WebsPromoted == 0 {
				t.Fatal("healthy function lost its promotion")
			}
			// The degraded function's loop still issues memory traffic
			// (its promotion was rolled back).
			if out.After.DynMemOps() <= int64(out.Stats["bumpy"].StoresInserted) {
				t.Fatalf("suspiciously few dynamic memory ops: %d", out.After.DynMemOps())
			}
		})
	}
}

// TestStageErrorDetail checks the repro payload: a panic's StageError
// carries the stack and an IR snapshot of the function being
// transformed.
func TestStageErrorDetail(t *testing.T) {
	inj := faults.New(faults.Plan{Stage: pipeline.StagePromote, Mode: faults.ModePanic})
	_, err := runNoPanic(t, multiFunc, pipeline.Options{Faults: inj, FailFast: true})
	var se *pipeline.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StageError", err)
	}
	if se.IR == "" || !strings.Contains(se.IR, "func ") {
		t.Fatalf("StageError lacks IR snapshot: %q", se.IR)
	}
	detail := se.Detail()
	for _, want := range []string{"stage promote", "stack:", "IR at failure:"} {
		if !strings.Contains(detail, want) {
			t.Fatalf("Detail() missing %q:\n%s", want, detail)
		}
	}
	if !strings.Contains(se.Error(), "panicked") {
		t.Fatalf("Error() = %q, want panic mention", se.Error())
	}
}

// TestCheckLevelsCleanRun: all check levels pass on a healthy program,
// for all four algorithms, with identical results.
func TestCheckLevelsCleanRun(t *testing.T) {
	for _, alg := range []pipeline.Algorithm{
		pipeline.AlgSSA, pipeline.AlgBaseline, pipeline.AlgMemOpt, pipeline.AlgNone,
	} {
		for _, lvl := range []pipeline.CheckLevel{
			pipeline.CheckOff, pipeline.CheckBoundaries, pipeline.CheckParanoid,
		} {
			out, err := pipeline.Run(multiFunc, pipeline.Options{Algorithm: alg, Check: lvl})
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, lvl, err)
			}
			if len(out.Degraded) != 0 {
				t.Fatalf("%v/%v: unexpected degradations %v", alg, lvl, out.Degraded)
			}
			if !reflect.DeepEqual(out.Before.Output, out.After.Output) {
				t.Fatalf("%v/%v: output changed", alg, lvl)
			}
		}
	}
}

func TestParseCheckLevel(t *testing.T) {
	for s, want := range map[string]pipeline.CheckLevel{
		"off": pipeline.CheckOff, "boundaries": pipeline.CheckBoundaries, "paranoid": pipeline.CheckParanoid,
	} {
		got, err := pipeline.ParseCheckLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseCheckLevel(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := pipeline.ParseCheckLevel("strict"); err == nil {
		t.Error("ParseCheckLevel accepted unknown level")
	}
}

// TestSeededFaultSweep sweeps seeds through the seeded injector over
// all stages — the reproducible shotgun the fuzz targets build on.
func TestSeededFaultSweep(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		inj := faults.NewSeeded(seed, pipeline.Stages())
		out, err := runNoPanic(t, multiFunc, pipeline.Options{
			PreMemOpts: true,
			Check:      pipeline.CheckParanoid,
			Faults:     inj,
		})
		if err == nil && out != nil && len(out.Degraded) == 0 && inj.Fired() > 0 {
			t.Fatalf("seed %d: fault fired but left no trace", seed)
		}
		if err != nil {
			var se *pipeline.StageError
			if !errors.As(err, &se) {
				t.Fatalf("seed %d: non-structured error %v", seed, err)
			}
		}
	}
}

package pipeline

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/profile"
)

// workerCount resolves Options.Workers against the machine and the
// number of functions to transform.
func (r *runner) workerCount(nfuncs int) int {
	w := r.opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > nfuncs {
		w = nfuncs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// transformAll runs the per-function transformation chain over every
// function of after, either sequentially or on a bounded worker pool
// (Options.Workers). Each function's chain is independent — its own
// SSA construction, interval tree, webs, and rollback snapshot — so
// the only shared state is program-level bookkeeping, which the
// runner's mutex serializes and finish canonicalizes. The outcome is
// therefore identical for every worker count; only wall time changes.
func (r *runner) transformAll(after *ir.Program, forests map[string]*cfg.Forest, prof *profile.Profile) error {
	// Materialize every function's profile before spawning workers:
	// Profile.ForFunc inserts into the shared map on first use, which
	// must not happen concurrently.
	for _, f := range after.Funcs {
		prof.ForFunc(f.Name)
	}

	workers := r.workerCount(len(after.Funcs))
	if workers == 1 {
		for _, f := range after.Funcs {
			if err := r.transformFunc(after, f, forests[f.Name], prof); err != nil {
				return err
			}
		}
		return nil
	}

	// Shard function indexes across the pool. Errors (FailFast mode
	// only) are collected per index so the returned error is the one
	// the sequential run would have hit first.
	errs := make([]error, len(after.Funcs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f := after.Funcs[i]
				errs[i] = r.transformFunc(after, f, forests[f.Name], prof)
			}
		}()
	}
	for i := range after.Funcs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// finish canonicalizes the outcome so that it is bit-identical across
// worker counts and run repetitions: degradations are ordered by
// program declaration order (stage order breaking ties) with at most
// one entry per function, timings are ordered by stage then function,
// and TotalStats is rebuilt from the per-function map.
func (r *runner) finish(after *ir.Program) {
	funcPos := func(name string) int {
		if name == "" {
			return -1 // whole-program entries sort first
		}
		if i := after.FuncIndex(name); i >= 0 {
			return i
		}
		return len(after.Funcs)
	}

	sort.SliceStable(r.out.Degraded, func(i, j int) bool {
		a, b := r.out.Degraded[i], r.out.Degraded[j]
		if pa, pb := funcPos(a.Func), funcPos(b.Func); pa != pb {
			return pa < pb
		}
		return stageIndex(a.Stage) < stageIndex(b.Stage)
	})
	deduped := r.out.Degraded[:0]
	seen := make(map[string]bool, len(r.out.Degraded))
	for _, d := range r.out.Degraded {
		if seen[d.Func] {
			continue // one record per function, earliest stage wins
		}
		seen[d.Func] = true
		deduped = append(deduped, d)
	}
	r.out.Degraded = deduped

	sort.SliceStable(r.out.Timings, func(i, j int) bool {
		a, b := r.out.Timings[i], r.out.Timings[j]
		if sa, sb := stageIndex(a.Stage), stageIndex(b.Stage); sa != sb {
			return sa < sb
		}
		return funcPos(a.Func) < funcPos(b.Func)
	})

	r.recomputeTotals()
}

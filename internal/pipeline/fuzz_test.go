package pipeline_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// FuzzPipelineDifferential generates a random deterministic mini-C
// program from the seeded workload generator and runs it through all
// four algorithms at the paranoid check level. The contract is the
// paper's ground truth: no panic escapes the pipeline, nothing
// degrades on a healthy program, and every algorithm's transformed
// program produces exactly the baseline's output.
func FuzzPipelineDifferential(f *testing.F) {
	f.Add(int64(1), byte(3), byte(2), byte(2), byte(30))
	f.Add(int64(7), byte(0), byte(0), byte(1), byte(0))
	f.Add(int64(42), byte(2), byte(1), byte(3), byte(80))
	f.Add(int64(1998), byte(4), byte(2), byte(2), byte(50))
	f.Add(int64(-3), byte(1), byte(2), byte(1), byte(99))
	f.Fuzz(func(t *testing.T, seed int64, helpers, arrays, depth, ptrPct byte) {
		cfg := workload.DefaultGenConfig(seed)
		cfg.NumHelpers = int(helpers % 5)
		cfg.NumArrays = int(arrays % 3)
		cfg.MaxDepth = 1 + int(depth%3)
		cfg.PtrChance = float64(ptrPct%101) / 100
		src := workload.Generate(cfg)

		bounded := interp.Options{MaxSteps: 20_000_000, Timeout: 20 * time.Second}
		var want []int64
		for _, alg := range []pipeline.Algorithm{
			pipeline.AlgNone, pipeline.AlgSSA, pipeline.AlgBaseline, pipeline.AlgMemOpt,
		} {
			out, err := pipeline.Run(src, pipeline.Options{
				Algorithm: alg,
				Check:     pipeline.CheckParanoid,
				Interp:    bounded,
			})
			if err != nil {
				t.Fatalf("%v: %v\nsource:\n%s", alg, err, src)
			}
			if len(out.Degraded) != 0 {
				t.Fatalf("%v degraded a healthy program: %v\nsource:\n%s", alg, out.Degraded, src)
			}
			if !reflect.DeepEqual(out.Before.Output, out.After.Output) {
				t.Fatalf("%v changed output: %v vs %v\nsource:\n%s",
					alg, out.Before.Output, out.After.Output, src)
			}
			if want == nil {
				want = out.Before.Output
			} else if !reflect.DeepEqual(want, out.Before.Output) {
				t.Fatalf("%v baseline disagrees across algorithms: %v vs %v\nsource:\n%s",
					alg, want, out.Before.Output, src)
			}
		}
	})
}

// FuzzPipelineFaults composes the generator with the seeded fault
// injector: a random program, a random fault in a random stage, at the
// paranoid check level. Whatever happens, Run must not panic and must
// leave a trace — a structured error or a recorded degradation.
func FuzzPipelineFaults(f *testing.F) {
	f.Add(int64(1), int64(1))
	f.Add(int64(5), int64(9))
	f.Add(int64(1998), int64(0))
	f.Fuzz(func(t *testing.T, progSeed, faultSeed int64) {
		cfg := workload.DefaultGenConfig(progSeed)
		cfg.NumHelpers = 2
		src := workload.Generate(cfg)
		inj := faults.NewSeeded(faultSeed, pipeline.Stages())
		out, err := pipeline.Run(src, pipeline.Options{
			PreMemOpts: true,
			Check:      pipeline.CheckParanoid,
			Faults:     inj,
			Interp:     interp.Options{MaxSteps: 20_000_000, Timeout: 20 * time.Second},
		})
		if inj.Fired() == 0 {
			return // fault stage not reached for this program shape
		}
		if err == nil && (out == nil || len(out.Degraded) == 0) {
			t.Fatalf("fault fired but left no trace (seeds %d/%d)", progSeed, faultSeed)
		}
		if err == nil && out.Before != nil && out.After != nil &&
			!reflect.DeepEqual(out.Before.Output, out.After.Output) {
			t.Fatalf("degraded run changed output (seeds %d/%d)", progSeed, faultSeed)
		}
	})
}

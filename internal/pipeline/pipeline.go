// Package pipeline assembles the full register promotion compiler flow
// used by the examples, tools, tests, and the benchmark harness:
//
//	mini-C ─ source.Compile ─ alias.Analyze ─ cfg.Normalize
//	       ─ (training run → profile | static estimate)
//	       ─ ssa.Build ─ core.PromoteFunction ─ opt.Cleanup ─ ssa.Destruct
//
// Because promotion mutates the IR in place, the pipeline compiles the
// source twice: once to measure the baseline program and once to build
// the promoted program, so before/after comparisons run the same input
// on genuinely independent programs.
package pipeline

import (
	"fmt"

	"repro/internal/alias"
	"repro/internal/baseline"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/profile"
	"repro/internal/source"
	"repro/internal/ssa"
)

// Algorithm selects the promotion algorithm.
type Algorithm int

const (
	// AlgSSA is the paper's interval-based SSA promotion (internal/core).
	AlgSSA Algorithm = iota
	// AlgBaseline is the loop-based, profile-blind promotion in the
	// style of Lu–Cooper (internal/baseline).
	AlgBaseline
	// AlgMemOpt runs only the memory-SSA scalar optimizations
	// (store-to-load forwarding, redundant load elimination, dead store
	// elimination) without promotion — the ablation showing how much of
	// promotion's win is plain redundancy removal.
	AlgMemOpt
	// AlgNone performs no promotion (control).
	AlgNone
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgSSA:
		return "ssa"
	case AlgBaseline:
		return "baseline"
	case AlgMemOpt:
		return "memopt"
	case AlgNone:
		return "none"
	}
	return "?"
}

// Options configures a pipeline run.
type Options struct {
	// Algorithm selects the promotion pass (default AlgSSA).
	Algorithm Algorithm
	// PreMemOpts runs store-to-load forwarding, redundant load
	// elimination, and dead store elimination before promotion (only
	// meaningful with AlgSSA).
	PreMemOpts bool
	// WholeFunctionScope promotes once over the whole function body
	// (the paper's rejected first approach) instead of interval by
	// interval; for the scope ablation.
	WholeFunctionScope bool
	// MaxPromotedWebs caps promotions per function (0 = unlimited), a
	// crude register pressure budget.
	MaxPromotedWebs int
	// StaticProfile uses the loop-depth estimator instead of a training
	// run when true.
	StaticProfile bool
	// TrainSrc, when non-empty, is a separate program variant (same
	// functions, different input constants) whose execution supplies
	// the training profile — the SPEC train-vs-reference methodology.
	// Block IDs must line up, which holds when the variants differ only
	// in constants; Run verifies function names match.
	TrainSrc string
	// CountTailStores is forwarded to core.Config (default true unless
	// PaperProfitFormula is set).
	PaperProfitFormula bool
	// Interp bounds the measurement runs.
	Interp interp.Options
	// SkipMeasurement skips the before/after interpreter runs (the
	// caller only wants the transformed program and static counts).
	SkipMeasurement bool
}

// StaticCounts are instruction counts of a program, the paper's static
// cost metric.
type StaticCounts struct {
	Loads  int // singleton loads
	Stores int // singleton stores
}

// Total returns loads plus stores.
func (s StaticCounts) Total() int { return s.Loads + s.Stores }

// Outcome is the result of running the pipeline on one program.
type Outcome struct {
	// Prog is the transformed (promoted, destructed) program.
	Prog *ir.Program
	// Stats accumulates promotion statistics per function.
	Stats map[string]*core.Stats
	// TotalStats sums Stats.
	TotalStats core.Stats
	// StaticBefore/StaticAfter count singleton memory operations in the
	// normalized program before and after promotion (Table 1's metric).
	StaticBefore, StaticAfter StaticCounts
	// Before/After are the measurement runs (nil when SkipMeasurement).
	Before, After *interp.Result
	// Profile is the training profile the promoter consumed.
	Profile *profile.Profile
}

// Run executes the full pipeline on mini-C source text.
func Run(src string, opts Options) (*Outcome, error) {
	out := &Outcome{Stats: make(map[string]*core.Stats)}

	// Baseline program: compiled, analyzed, normalized — not promoted.
	before, _, err := frontend(src)
	if err != nil {
		return nil, err
	}
	out.StaticBefore = countStatic(before)

	// Training profile (on the unpromoted program, or on a separate
	// training-input variant when TrainSrc is set).
	prof := profile.NewProfile()
	switch {
	case opts.StaticProfile:
		p, err := estimateAll(before)
		if err != nil {
			return nil, err
		}
		prof = p
	case opts.TrainSrc != "":
		train, _, err := frontend(opts.TrainSrc)
		if err != nil {
			return nil, fmt.Errorf("pipeline: training source: %w", err)
		}
		for _, f := range before.Funcs {
			if train.Func(f.Name) == nil {
				return nil, fmt.Errorf("pipeline: training source lacks function %s", f.Name)
			}
		}
		popts := opts.Interp
		popts.CollectProfile = true
		res, err := interp.Run(train, popts)
		if err != nil {
			return nil, fmt.Errorf("pipeline: training run: %w", err)
		}
		prof = res.Profile
	default:
		popts := opts.Interp
		popts.CollectProfile = true
		res, err := interp.Run(before, popts)
		if err != nil {
			return nil, fmt.Errorf("pipeline: training run: %w", err)
		}
		prof = res.Profile
	}
	out.Profile = prof

	// Measurement of the unpromoted program.
	if !opts.SkipMeasurement {
		res, err := interp.Run(before, opts.Interp)
		if err != nil {
			return nil, fmt.Errorf("pipeline: baseline run: %w", err)
		}
		out.Before = res
	}

	// Promoted program: fresh compile, then transform.
	after, forests, err := frontend(src)
	if err != nil {
		return nil, err
	}
	for _, f := range after.Funcs {
		fp := prof.ForFunc(f.Name)
		switch opts.Algorithm {
		case AlgSSA:
			if _, err := ssa.Build(f); err != nil {
				return nil, fmt.Errorf("pipeline: %s: %w", f.Name, err)
			}
			if opts.PreMemOpts {
				opt.ForwardStores(f)
				opt.DeadStoreElim(f)
				opt.Cleanup(f)
			}
			scope := core.ScopeIntervals
			if opts.WholeFunctionScope {
				scope = core.ScopeWholeFunction
			}
			stats, err := core.PromoteFunction(f, forests[f.Name], core.Config{
				Profile:         fp,
				Scope:           scope,
				CountTailStores: !opts.PaperProfitFormula,
				MaxPromotedWebs: opts.MaxPromotedWebs,
			})
			if err != nil {
				return nil, fmt.Errorf("pipeline: promote %s: %w", f.Name, err)
			}
			out.Stats[f.Name] = stats
			out.TotalStats.Add(*stats)
			ssa.Destruct(f)
		case AlgMemOpt:
			if _, err := ssa.Build(f); err != nil {
				return nil, fmt.Errorf("pipeline: %s: %w", f.Name, err)
			}
			opt.ForwardStores(f)
			opt.DeadStoreElim(f)
			opt.Cleanup(f)
			ssa.Destruct(f)
		case AlgBaseline:
			stats := baseline.PromoteFunction(f, forests[f.Name])
			out.Stats[f.Name] = &core.Stats{
				WebsConsidered: stats.VarsConsidered,
				WebsPromoted:   stats.VarsPromoted,
				LoadsReplaced:  stats.LoadsReplaced,
				StoresDeleted:  stats.StoresDeleted,
				LoadsInserted:  stats.LoadsInserted,
				StoresInserted: stats.StoresInserted,
			}
			out.TotalStats.Add(*out.Stats[f.Name])
		case AlgNone:
			// control: nothing
		}
		if err := f.Verify(ir.VerifyCFG); err != nil {
			return nil, fmt.Errorf("pipeline: post-transform %s: %w", f.Name, err)
		}
	}
	out.Prog = after
	out.StaticAfter = countStatic(after)

	if !opts.SkipMeasurement {
		res, err := interp.Run(after, opts.Interp)
		if err != nil {
			return nil, fmt.Errorf("pipeline: promoted run: %w", err)
		}
		out.After = res
	}
	return out, nil
}

// frontend compiles and prepares a program up to (but excluding) SSA.
func frontend(src string) (*ir.Program, map[string]*cfg.Forest, error) {
	prog, err := source.Compile(src)
	if err != nil {
		return nil, nil, err
	}
	if err := alias.Analyze(prog); err != nil {
		return nil, nil, err
	}
	forests := make(map[string]*cfg.Forest, len(prog.Funcs))
	for _, f := range prog.Funcs {
		forest, err := cfg.Normalize(f)
		if err != nil {
			return nil, nil, err
		}
		forests[f.Name] = forest
	}
	return prog, forests, nil
}

func estimateAll(prog *ir.Program) (*profile.Profile, error) {
	p := profile.NewProfile()
	for _, f := range prog.Funcs {
		forest := cfg.BuildIntervals(f)
		p.Funcs[f.Name] = profile.Estimate(f, forest)
	}
	return p, nil
}

// countStatic counts singleton loads and stores in a program.
func countStatic(prog *ir.Program) StaticCounts {
	var c StaticCounts
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpLoad:
					c.Loads++
				case ir.OpStore:
					c.Stores++
				}
			}
		}
	}
	return c
}

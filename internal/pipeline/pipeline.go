// Package pipeline assembles the full register promotion compiler flow
// used by the examples, tools, tests, and the benchmark harness:
//
//	mini-C ─ source.Compile ─ alias.Analyze ─ cfg.Normalize
//	       ─ (training run → profile | static estimate)
//	       ─ ssa.Build ─ core.PromoteFunction ─ opt.Cleanup ─ ssa.Destruct
//
// Because promotion mutates the IR in place, the pipeline compiles the
// source twice: once to measure the baseline program and once to build
// the promoted program, so before/after comparisons run the same input
// on genuinely independent programs.
//
// Every phase of the flow runs as a named, panic-isolated stage: a
// panicking or erring stage becomes a structured *StageError instead of
// killing the process. Per-function stages additionally degrade
// gracefully — the pipeline snapshots each function before transforming
// it, and a failure rolls that one function back to its unpromoted IR,
// records a Degradation in the Outcome, and keeps compiling the rest of
// the program. Options.Check turns on stage-boundary re-verification
// and a paranoid semantic differential check; Options.Faults injects
// deterministic failures so the recovery paths themselves stay tested.
package pipeline

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/alias"
	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irimport"
	"repro/internal/liveness"
	"repro/internal/opt"
	"repro/internal/profile"
	"repro/internal/source"
	"repro/internal/ssa"
)

// Algorithm selects the promotion algorithm.
type Algorithm int

const (
	// AlgSSA is the paper's interval-based SSA promotion (internal/core).
	AlgSSA Algorithm = iota
	// AlgBaseline is the loop-based, profile-blind promotion in the
	// style of Lu–Cooper (internal/baseline).
	AlgBaseline
	// AlgMemOpt runs only the memory-SSA scalar optimizations
	// (store-to-load forwarding, redundant load elimination, dead store
	// elimination) without promotion — the ablation showing how much of
	// promotion's win is plain redundancy removal.
	AlgMemOpt
	// AlgNone performs no promotion (control).
	AlgNone
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgSSA:
		return "ssa"
	case AlgBaseline:
		return "baseline"
	case AlgMemOpt:
		return "memopt"
	case AlgNone:
		return "none"
	}
	return "?"
}

// Options configures a pipeline run.
type Options struct {
	// Lang selects the input language Run compiles: "" or
	// irimport.LangMiniC ("mc") for the native mini-C frontend, and
	// irimport.LangIR ("ll") for textual LLVM-style IR through
	// internal/irimport. TrainSrc, when set, is parsed with the same
	// language.
	Lang string
	// Algorithm selects the promotion pass (default AlgSSA).
	Algorithm Algorithm
	// PreMemOpts runs store-to-load forwarding, redundant load
	// elimination, and dead store elimination before promotion (only
	// meaningful with AlgSSA).
	PreMemOpts bool
	// WholeFunctionScope promotes once over the whole function body
	// (the paper's rejected first approach) instead of interval by
	// interval; for the scope ablation.
	WholeFunctionScope bool
	// MaxPromotedWebs caps promotions per function (0 = unlimited), a
	// crude register pressure budget.
	MaxPromotedWebs int
	// PressureCap, when positive, makes promotion pressure-aware: each
	// function is promoted through core.PromoteUnderPressure, which
	// guarantees the post-promotion regalloc color count never exceeds
	// max(PressureCap, the function's unpromoted color count) by
	// trial-promoting clones and demoting webs that blow the cap.
	// Per-function results land in Outcome.Pressure. Only meaningful
	// with AlgSSA.
	PressureCap int
	// Diagnose runs the internal/diag rule set over the baseline
	// (pre-promotion) program as an extra isolated whole-program stage
	// and records the findings in Outcome.Diagnostics. The stage reads
	// the program without mutating it; a failure aborts the run like
	// any other whole-program stage.
	Diagnose bool
	// StaticProfile uses the loop-depth estimator instead of a training
	// run when true.
	StaticProfile bool
	// TrainSrc, when non-empty, is a separate program variant (same
	// functions, different input constants) whose execution supplies
	// the training profile — the SPEC train-vs-reference methodology.
	// Block IDs must line up, which holds when the variants differ only
	// in constants; Run verifies function names match.
	TrainSrc string
	// CountTailStores is forwarded to core.Config (default true unless
	// PaperProfitFormula is set).
	PaperProfitFormula bool
	// Interp bounds the training, measurement, and differential-check
	// runs: MaxSteps caps executed instructions and Timeout caps
	// wall-clock time, so a runaway program fails the run instead of
	// hanging the harness.
	Interp interp.Options
	// SkipMeasurement skips the before/after interpreter runs (the
	// caller only wants the transformed program and static counts).
	SkipMeasurement bool
	// Check selects how much self-checking runs during transformation:
	// stage-boundary IR verification (CheckBoundaries) and the
	// whole-program semantic differential check (CheckParanoid).
	Check CheckLevel
	// FailFast disables graceful degradation: the first stage failure
	// aborts the run with its *StageError instead of rolling the
	// affected function back and continuing.
	FailFast bool
	// Faults, when non-nil, injects deterministic failures at stage
	// boundaries (see internal/faults); used to test the recovery
	// paths and exposed through the tools' -fault flag.
	Faults *faults.Injector
	// AnalysisCache optionally supplies the analysis cache the run
	// memoizes CFG analyses in (tests pass their own to inspect build
	// counts). Nil means the run creates one, unless NoAnalysisCache is
	// set.
	AnalysisCache *analysis.Cache
	// NoAnalysisCache disables cross-stage analysis memoization: every
	// stage rebuilds its own dominators/frontiers, the pre-caching
	// behavior. Kept as a benchmark baseline (rpbench -legacy).
	NoAnalysisCache bool
	// Workers bounds how many functions are transformed concurrently.
	// Each worker runs the full per-function chain (SSA build →
	// promote → destruct → verify) behind the usual isolation and
	// rollback barrier; program-level effects (function swaps, stats,
	// degradations) are serialized and canonicalized so the Outcome is
	// identical for every worker count. 0 means GOMAXPROCS; 1 keeps
	// the sequential behavior.
	Workers int
}

// StaticCounts are instruction counts of a program, the paper's static
// cost metric.
type StaticCounts struct {
	Loads  int // singleton loads
	Stores int // singleton stores
}

// Total returns loads plus stores.
func (s StaticCounts) Total() int { return s.Loads + s.Stores }

// Outcome is the result of running the pipeline on one program.
type Outcome struct {
	// Prog is the transformed (promoted, destructed) program.
	Prog *ir.Program
	// Stats accumulates promotion statistics per function. Degraded
	// functions have no entry: their transformation was rolled back.
	Stats map[string]*core.Stats
	// Pressure records the pressure-aware promotion result per function
	// when Options.PressureCap is set. Degraded functions have no entry.
	Pressure map[string]*core.PressureResult
	// Diagnostics holds the diag findings when Options.Diagnose is set.
	Diagnostics []diag.Finding
	// TotalStats sums Stats.
	TotalStats core.Stats
	// StaticBefore/StaticAfter count singleton memory operations in the
	// normalized program before and after promotion (Table 1's metric).
	StaticBefore, StaticAfter StaticCounts
	// Before/After are the measurement runs (nil when SkipMeasurement).
	Before, After *interp.Result
	// Profile is the training profile the promoter consumed.
	Profile *profile.Profile
	// Degraded lists functions compiled without promotion because a
	// stage failed on them, in canonical order (program declaration
	// order, then stage order); each entry carries the absorbed
	// failure. A function appears at most once, whichever code path
	// (transformation, rescue, differential bisect) degraded it.
	Degraded []Degradation
	// Timings records the measured wall time of every stage execution,
	// in canonical order (stage order, then program declaration order).
	// Durations naturally vary run to run; Report excludes them.
	Timings []StageTiming
}

// DegradedFuncs returns the names of degraded functions, in order.
func (o *Outcome) DegradedFuncs() []string {
	names := make([]string, len(o.Degraded))
	for i, d := range o.Degraded {
		names[i] = d.Func
	}
	return names
}

// runner carries one Run invocation's state.
type runner struct {
	opts Options
	out  *Outcome
	// mu guards the shared run state (out, snapshots, degraded, the
	// program's function registry) while the per-function transform
	// chains execute on the worker pool. Outside that phase the run is
	// single-goroutine and the lock is uncontended.
	mu sync.Mutex
	// snapshots holds each function's pre-transformation clone, used to
	// roll a failing function back and to bisect differential-check
	// mismatches down to one function.
	snapshots map[string]*ir.Function
	degraded  map[string]bool
	// cache memoizes per-function CFG analyses across stages, keyed on
	// the functions' CFG version counters; nil when NoAnalysisCache.
	cache *analysis.Cache
}

// interpOptions returns the run's interpreter options with the
// cross-stage code cache threaded in: when the bytecode path is on and
// the run has an analysis cache, compiled functions are shared across
// the training, measurement, differential, and bisect runs (the cache
// revalidates per run, so stage-boundary rewrites recompile safely).
func (r *runner) interpOptions() interp.Options {
	popts := r.opts.Interp
	if popts.Bytecode && popts.Code == nil && r.cache != nil {
		popts.Code = r.cache
	}
	return popts
}

// domOf returns f's dominator tree: memoized when the cache is on,
// freshly built otherwise.
func (r *runner) domOf(f *ir.Function) *cfg.DomTree {
	if r.cache != nil {
		return r.cache.Dom(f)
	}
	return cfg.BuildDomTree(f)
}

// analyses returns f's dominator tree and dominance frontiers, memoized
// when the cache is on.
func (r *runner) analyses(f *ir.Function) (*cfg.DomTree, cfg.DomFrontiers) {
	if r.cache != nil {
		return r.cache.Dom(f), r.cache.DF(f)
	}
	dom := cfg.BuildDomTree(f)
	return dom, cfg.BuildDomFrontiers(dom)
}

// Run executes the full pipeline on mini-C source text. Options are
// validated up front: an out-of-range field returns a typed
// *OptionError before any compilation happens.
func Run(src string, opts Options) (*Outcome, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	r := &runner{
		opts:      opts,
		out:       &Outcome{Stats: make(map[string]*core.Stats)},
		snapshots: make(map[string]*ir.Function),
		degraded:  make(map[string]bool),
	}
	if opts.PressureCap > 0 {
		r.out.Pressure = make(map[string]*core.PressureResult)
	}
	r.cache = opts.AnalysisCache
	if r.cache == nil && !opts.NoAnalysisCache {
		r.cache = analysis.New()
	}
	if r.cache != nil && opts.Check >= CheckParanoid {
		r.cache.Paranoid = true
	}

	// Baseline program: compiled, analyzed, normalized — not promoted.
	before, beforeForests, err := r.frontend(src)
	if err != nil {
		return nil, err
	}
	r.out.StaticBefore = countStatic(before)

	// Opt-in static diagnostics, on the baseline program: the rules
	// clone what they need, so the differential check's reference is
	// untouched.
	if opts.Diagnose {
		if err := r.runStage(StageDiagnose, "", nil, func() error {
			ds, derr := diag.AnalyzeProgram(before, diag.Options{})
			if derr != nil {
				return derr
			}
			r.out.Diagnostics = ds
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// Training profile (on the unpromoted program, or on a separate
	// training-input variant when TrainSrc is set).
	prof, err := r.trainProfile(before, beforeForests)
	if err != nil {
		return nil, err
	}
	r.out.Profile = prof

	// Measurement of the unpromoted program.
	if !opts.SkipMeasurement {
		res, err := r.measure(StageMeasureBefore, before)
		if err != nil {
			return nil, err
		}
		r.out.Before = res
	}

	// Promoted program: fresh compile, then transform, function by
	// function, each behind its own isolation and rollback boundary.
	after, forests, err := r.frontend(src)
	if err != nil {
		return nil, err
	}
	if err := r.transformAll(after, forests, prof); err != nil {
		return nil, err
	}
	r.out.Prog = after

	if !opts.SkipMeasurement {
		res, err := r.measure(StageMeasureAfter, after)
		if err != nil {
			// A promoted program that no longer runs is a miscompile:
			// try to rescue the run by degrading the culprit function.
			if rerr := r.rescueAfter(after, err); rerr != nil {
				return nil, rerr
			}
		} else {
			r.out.After = res
		}
	}

	if opts.Check >= CheckParanoid {
		if err := r.differential(before, after); err != nil {
			return nil, err
		}
	}

	r.out.StaticAfter = countStatic(after)
	r.finish(after)
	return r.out, nil
}

// frontend compiles and prepares a program up to (but excluding) SSA,
// one isolated stage per phase. Compile and alias failures abort the
// run; a per-function normalize failure degrades that function (its
// forest stays nil and promotion is skipped).
func (r *runner) frontend(src string) (*ir.Program, map[string]*cfg.Forest, error) {
	var prog *ir.Program
	if err := r.runStage(StageCompile, "", nil, func() error {
		p, err := compileInput(r.opts.Lang, src)
		prog = p
		return err
	}); err != nil {
		return nil, nil, err
	}
	if err := r.runStage(StageAlias, "", func() string { return prog.String() }, func() error {
		return alias.Analyze(prog)
	}); err != nil {
		return nil, nil, err
	}
	forests := make(map[string]*cfg.Forest, len(prog.Funcs))
	for _, f := range prog.Funcs {
		f := f
		snap := f.Clone()
		err := r.runStage(StageNormalize, f.Name, func() string { return f.String() }, func() error {
			forest, err := cfg.Normalize(f)
			if err != nil {
				return err
			}
			if r.opts.Check >= CheckBoundaries {
				if verr := f.Verify(ir.VerifyCFG); verr != nil {
					return fmt.Errorf("post-normalize verify: %w", verr)
				}
			}
			forests[f.Name] = forest
			if r.cache != nil {
				// Normalize just built this forest at the function's
				// current CFG version; seed the cache so the estimate and
				// promote paths never rebuild it.
				r.cache.PutIntervals(f, forest)
			}
			return nil
		})
		if err != nil {
			if r.opts.FailFast {
				return nil, nil, err
			}
			prog.ReplaceFunction(snap)
			forests[f.Name] = nil
			r.recordDegradation(f.Name, StageNormalize, err)
		}
	}
	return prog, forests, nil
}

// trainProfile acquires the promotion profile behind the train stage's
// isolation boundary.
func (r *runner) trainProfile(before *ir.Program, forests map[string]*cfg.Forest) (*profile.Profile, error) {
	prof := profile.NewProfile()
	err := r.runStage(StageTrain, "", nil, func() error {
		switch {
		case r.opts.StaticProfile:
			p, err := estimateAll(before, forests)
			if err != nil {
				return err
			}
			prof = p
		case r.opts.TrainSrc != "":
			train, _, err := plainFrontend(r.opts.Lang, r.opts.TrainSrc)
			if err != nil {
				return fmt.Errorf("training source: %w", err)
			}
			for _, f := range before.Funcs {
				if train.Func(f.Name) == nil {
					return fmt.Errorf("training source lacks function %s", f.Name)
				}
			}
			popts := r.interpOptions()
			popts.CollectProfile = true
			res, err := interp.Run(train, popts)
			if err != nil {
				return fmt.Errorf("training run: %w", err)
			}
			prof = res.Profile
		default:
			popts := r.interpOptions()
			popts.CollectProfile = true
			res, err := interp.Run(before, popts)
			if err != nil {
				return fmt.Errorf("training run: %w", err)
			}
			prof = res.Profile
		}
		return nil
	})
	return prof, err
}

// measure interprets prog behind the named stage's isolation boundary.
func (r *runner) measure(stage string, prog *ir.Program) (*interp.Result, error) {
	var res *interp.Result
	err := r.runStage(stage, "", nil, func() error {
		rr, err := interp.Run(prog, r.interpOptions())
		res = rr
		return err
	})
	return res, err
}

// transformStep is one per-function stage of the promotion chain.
type transformStep struct {
	name string
	body func() error
	// inSSA says the function is in SSA form after this step, which
	// selects the boundary verifier (dominance vs. plain CFG).
	inSSA bool
}

// transformFunc runs the per-function transformation chain for f. Any
// stage failure (including a boundary-check failure) rolls f back to
// its pre-transformation snapshot and records a Degradation, unless
// FailFast is set, in which case the *StageError is returned.
func (r *runner) transformFunc(prog *ir.Program, f *ir.Function, forest *cfg.Forest, prof *profile.Profile) error {
	r.mu.Lock()
	if r.degraded[f.Name] {
		r.mu.Unlock()
		return nil // degraded at normalize; already in known-good state
	}
	snap := f.Clone()
	r.snapshots[f.Name] = snap
	r.mu.Unlock()
	fp := prof.ForFunc(f.Name)

	var stats *core.Stats
	var chain []transformStep
	switch r.opts.Algorithm {
	case AlgSSA:
		chain = append(chain, transformStep{StageSSABuild, func() error {
			cfg.RemoveUnreachable(f)
			dom, df := r.analyses(f)
			return ssa.BuildWith(f, dom, df)
		}, true})
		if r.opts.PreMemOpts {
			chain = append(chain, transformStep{StageMemOpts, func() error {
				opt.ForwardStoresWith(f, r.domOf(f))
				opt.DeadStoreElim(f)
				opt.Cleanup(f)
				return nil
			}, true})
		}
		chain = append(chain, transformStep{StagePromote, func() error {
			scope := core.ScopeIntervals
			if r.opts.WholeFunctionScope {
				scope = core.ScopeWholeFunction
			}
			dom, df := r.analyses(f)
			ccfg := core.Config{
				Profile:         fp,
				Scope:           scope,
				CountTailStores: !r.opts.PaperProfitFormula,
				MaxPromotedWebs: r.opts.MaxPromotedWebs,
				Dom:             dom,
				DF:              df,
			}
			if r.opts.PressureCap > 0 {
				// The cap search seeds its budgets from the
				// pre-promotion liveness; hand it the cache's copy
				// (keyed on version + instruction fingerprint) so
				// repeated analyses of the same form are hits.
				var live *liveness.Info
				if r.cache != nil {
					live = r.cache.Liveness(f)
				}
				pres, err := core.PromoteUnderPressureWith(f, forest, ccfg, r.opts.PressureCap, live)
				if err != nil {
					return err
				}
				stats = pres.Stats
				r.mu.Lock()
				r.out.Pressure[f.Name] = pres
				r.mu.Unlock()
				return nil
			}
			s, err := core.PromoteFunction(f, forest, ccfg)
			stats = s
			return err
		}, true})
		chain = append(chain, transformStep{StageDestruct, func() error {
			ssa.Destruct(f)
			return nil
		}, false})
	case AlgMemOpt:
		chain = append(chain, transformStep{StageSSABuild, func() error {
			cfg.RemoveUnreachable(f)
			dom, df := r.analyses(f)
			return ssa.BuildWith(f, dom, df)
		}, true})
		chain = append(chain, transformStep{StageMemOpts, func() error {
			opt.ForwardStoresWith(f, r.domOf(f))
			opt.DeadStoreElim(f)
			opt.Cleanup(f)
			return nil
		}, true})
		chain = append(chain, transformStep{StageDestruct, func() error {
			ssa.Destruct(f)
			return nil
		}, false})
	case AlgBaseline:
		chain = append(chain, transformStep{StagePromote, func() error {
			bs := baseline.PromoteFunction(f, forest)
			stats = &core.Stats{
				WebsConsidered: bs.VarsConsidered,
				WebsPromoted:   bs.VarsPromoted,
				LoadsReplaced:  bs.LoadsReplaced,
				StoresDeleted:  bs.StoresDeleted,
				LoadsInserted:  bs.LoadsInserted,
				StoresInserted: bs.StoresInserted,
			}
			return nil
		}, false})
	case AlgNone:
		// control: nothing to transform, but the verify stage below
		// still runs, preserving the isolation contract.
	}

	for _, st := range chain {
		st := st
		err := r.runStage(st.name, f.Name, func() string { return f.String() }, func() error {
			if err := st.body(); err != nil {
				return err
			}
			return r.boundaryCheck(f, st.inSSA)
		})
		if err != nil {
			return r.degrade(prog, f, snap, st.name, err)
		}
	}

	// Final structural verification — always on, whatever the check
	// level (the seed pipeline's single verify call lives on here).
	if err := r.runStage(StageVerify, f.Name, func() string { return f.String() }, func() error {
		return f.Verify(ir.VerifyCFG)
	}); err != nil {
		return r.degrade(prog, f, snap, StageVerify, err)
	}

	if stats != nil {
		r.mu.Lock()
		r.out.Stats[f.Name] = stats
		r.mu.Unlock()
	}
	return nil
}

// boundaryCheck re-verifies f after a stage when the check level asks
// for it: full SSA dominance discipline while in SSA form, structural
// CFG invariants otherwise.
func (r *runner) boundaryCheck(f *ir.Function, inSSA bool) error {
	if r.opts.Check < CheckBoundaries {
		return nil
	}
	if inSSA {
		if err := ssa.VerifyDominanceWith(f, r.domOf(f)); err != nil {
			return fmt.Errorf("boundary verify (ssa): %w", err)
		}
		return nil
	}
	if err := f.Verify(ir.VerifyCFG); err != nil {
		return fmt.Errorf("boundary verify (cfg): %w", err)
	}
	return nil
}

// degrade rolls f back to snap inside prog and records the absorbed
// failure, or returns it when FailFast is set. The rollback and the
// bookkeeping run under the runner's lock: ReplaceFunction mutates the
// program's shared function registry, which concurrent workers may be
// swapping other functions into.
func (r *runner) degrade(prog *ir.Program, f *ir.Function, snap *ir.Function, stage string, err error) error {
	if r.opts.FailFast {
		return err
	}
	r.mu.Lock()
	prog.ReplaceFunction(snap)
	r.snapshots[f.Name] = snap
	delete(r.out.Stats, f.Name)
	delete(r.out.Pressure, f.Name)
	r.mu.Unlock()
	if r.cache != nil {
		// The function object just left the program; drop its analyses so
		// a recycled pointer can never alias a stale entry.
		r.cache.Invalidate(f)
	}
	r.recordDegradation(f.Name, stage, err)
	return nil
}

// recordDegradation appends one Degradation, deduplicating on function
// name — the baseline and promoted compiles hit the same deterministic
// failure twice, and a function rescued by the differential bisect must
// not be double-counted with its transformation-time failure. finish
// re-sorts the surviving entries into canonical order.
func (r *runner) recordDegradation(fn, stage string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, d := range r.out.Degraded {
		if d.Func == fn {
			return
		}
	}
	se, ok := err.(*StageError)
	if !ok {
		se = &StageError{Stage: stage, Func: fn, Err: err}
	}
	r.degraded[fn] = true
	r.out.Degraded = append(r.out.Degraded, Degradation{Func: fn, Stage: stage, Err: se})
}

// recomputeTotals rebuilds TotalStats from the per-function map (stats
// of degraded functions have been dropped by then).
func (r *runner) recomputeTotals() {
	r.out.TotalStats = core.Stats{}
	for _, s := range r.out.Stats {
		r.out.TotalStats.Add(*s)
	}
}

// differential is the paranoid semantic check: the baseline and
// transformed programs must print the same output, return the same
// value, and leave identical global memory. On a mismatch the pipeline
// bisects — it retries with one function at a time rolled back to its
// unpromoted snapshot, and if a single rollback restores equivalence,
// that function is degraded and compilation succeeds.
func (r *runner) differential(before, after *ir.Program) error {
	return r.runStage(StageDifferential, "", func() string { return after.String() }, func() error {
		resB := r.out.Before
		if resB == nil {
			rb, err := interp.Run(before, r.interpOptions())
			if err != nil {
				return fmt.Errorf("baseline run: %w", err)
			}
			resB = rb
		}
		resA := r.out.After
		if resA == nil {
			ra, err := interp.Run(after, r.interpOptions())
			if err != nil {
				if r.bisect(after, resB) {
					return nil
				}
				return fmt.Errorf("transformed run: %w", err)
			}
			resA = ra
		}
		diff := compareResults(resB, resA)
		if diff == "" {
			// The primary interpreter agrees; paranoid mode also runs the
			// transformed program through the other two execution paths
			// (whichever of fast, legacy tree-walker, and bytecode are
			// not primary) and holds them to the same baseline, so a
			// miscompile that only one path exposes still fails the
			// check.
			primary := "fast"
			if popts := r.interpOptions(); popts.Legacy {
				primary = "legacy"
			} else if popts.Bytecode {
				primary = "bytecode"
			}
			for _, alt := range []struct {
				name   string
				adjust func(*interp.Options)
			}{
				{"fast", func(o *interp.Options) { o.Legacy, o.Bytecode, o.Code = false, false, nil }},
				{"legacy", func(o *interp.Options) { o.Legacy, o.Bytecode, o.Code = true, false, nil }},
				{"bytecode", func(o *interp.Options) { o.Legacy, o.Bytecode = false, true }},
			} {
				if alt.name == primary {
					continue
				}
				popts := r.interpOptions()
				alt.adjust(&popts)
				ra, err := interp.Run(after, popts)
				if err != nil {
					return fmt.Errorf("transformed run (%s path): %w", alt.name, err)
				}
				if d := compareResults(resB, ra); d != "" {
					return fmt.Errorf("semantic differential check failed on %s path: %s", alt.name, d)
				}
			}
			return nil
		}
		if r.bisect(after, resB) {
			return nil
		}
		return fmt.Errorf("semantic differential check failed: %s", diff)
	})
}

// rescueAfter handles a failing measurement run of the transformed
// program by bisecting for a degradable culprit function. It returns
// nil when the rescue succeeded (out.After is then the rescued run).
func (r *runner) rescueAfter(after *ir.Program, err error) error {
	if r.opts.FailFast || r.out.Before == nil {
		return err
	}
	if r.bisect(after, r.out.Before) {
		return nil
	}
	return err
}

// bisect tries rolling transformed functions back one at a time until
// the program's behavior matches want. On success the culprit stays
// rolled back, is recorded as degraded, and out.After is refreshed.
func (r *runner) bisect(after *ir.Program, want *interp.Result) bool {
	if r.opts.FailFast {
		return false
	}
	for _, f := range after.Funcs {
		snap := r.snapshots[f.Name]
		if snap == nil || r.degraded[f.Name] {
			continue
		}
		cur := after.Func(f.Name)
		if cur == snap {
			continue
		}
		after.ReplaceFunction(snap)
		res, err := interp.Run(after, r.interpOptions())
		if err == nil && compareResults(want, res) == "" {
			delete(r.out.Stats, f.Name)
			delete(r.out.Pressure, f.Name)
			r.recordDegradation(f.Name, StageDifferential, fmt.Errorf(
				"transformed program diverged from baseline; rolling back %s restored equivalence", f.Name))
			if !r.opts.SkipMeasurement {
				r.out.After = res
			}
			return true
		}
		after.ReplaceFunction(cur) // not the culprit; restore
	}
	return false
}

// compareResults reports the first observable difference between two
// runs, or "" when they are semantically identical.
func compareResults(a, b *interp.Result) string {
	if len(a.Output) != len(b.Output) {
		return fmt.Sprintf("output length %d vs %d", len(a.Output), len(b.Output))
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			return fmt.Sprintf("output[%d] = %d vs %d", i, a.Output[i], b.Output[i])
		}
	}
	if a.ReturnValue != b.ReturnValue {
		return fmt.Sprintf("return value %d vs %d", a.ReturnValue, b.ReturnValue)
	}
	// Walk globals in sorted order so a multi-global mismatch always
	// reports the same cell — map iteration order must not leak into
	// differential messages or reports.
	names := make([]string, 0, len(a.Globals))
	for name := range a.Globals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		img := a.Globals[name]
		other := b.Globals[name]
		if len(img) != len(other) {
			return fmt.Sprintf("global %s size %d vs %d", name, len(img), len(other))
		}
		for i := range img {
			if img[i] != other[i] {
				return fmt.Sprintf("global %s[%d] = %d vs %d", name, i, img[i], other[i])
			}
		}
	}
	return ""
}

// compileInput dispatches to the frontend selected by lang: the mini-C
// compiler for "" or "mc", the textual-IR importer for "ll". Validate
// has already rejected anything else.
func compileInput(lang, src string) (*ir.Program, error) {
	if lang == irimport.LangIR {
		return irimport.Compile(src)
	}
	return source.Compile(src)
}

// plainFrontend compiles and prepares a program without stage isolation
// (used for the training-input variant, whose failures are reported as
// train-stage errors by the caller).
func plainFrontend(lang, src string) (*ir.Program, map[string]*cfg.Forest, error) {
	prog, err := compileInput(lang, src)
	if err != nil {
		return nil, nil, err
	}
	if err := alias.Analyze(prog); err != nil {
		return nil, nil, err
	}
	forests := make(map[string]*cfg.Forest, len(prog.Funcs))
	for _, f := range prog.Funcs {
		forest, err := cfg.Normalize(f)
		if err != nil {
			return nil, nil, err
		}
		forests[f.Name] = forest
	}
	return prog, forests, nil
}

func estimateAll(prog *ir.Program, forests map[string]*cfg.Forest) (*profile.Profile, error) {
	p := profile.NewProfile()
	for _, f := range prog.Funcs {
		forest := forests[f.Name]
		if forest == nil {
			// Degraded at normalize (or no forest supplied): estimate on a
			// freshly built interval tree.
			forest = cfg.BuildIntervals(f)
		}
		p.Funcs[f.Name] = profile.Estimate(f, forest)
	}
	return p, nil
}

// countStatic counts singleton loads and stores in a program.
func countStatic(prog *ir.Program) StaticCounts {
	var c StaticCounts
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpLoad:
					c.Loads++
				case ir.OpStore:
					c.Stores++
				}
			}
		}
	}
	return c
}

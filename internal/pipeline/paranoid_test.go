package pipeline_test

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestParanoidOverCorpus is the acceptance sweep: every benchmark
// workload and every parser seed-corpus program must survive
// CheckLevel=Paranoid — boundary verification after every stage plus
// the semantic differential check — under all four algorithms, with
// no degradations.
func TestParanoidOverCorpus(t *testing.T) {
	type prog struct{ name, src string }
	var corpus []prog
	for _, w := range workload.Suite() {
		corpus = append(corpus, prog{"workload/" + w.Name, w.Src})
	}
	for _, p := range corpusSources(t) {
		corpus = append(corpus, p)
	}
	for seed := int64(0); seed < 6; seed++ {
		corpus = append(corpus, prog{
			"generated/" + strconv.FormatInt(seed, 10),
			workload.Generate(workload.DefaultGenConfig(seed)),
		})
	}

	algs := []pipeline.Algorithm{
		pipeline.AlgSSA, pipeline.AlgBaseline, pipeline.AlgMemOpt, pipeline.AlgNone,
	}
	for _, p := range corpus {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			for _, alg := range algs {
				out, err := pipeline.Run(p.src, pipeline.Options{
					Algorithm:       alg,
					Check:           pipeline.CheckParanoid,
					PreMemOpts:      alg == pipeline.AlgSSA,
					SkipMeasurement: true,
				})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				if len(out.Degraded) != 0 {
					t.Fatalf("%v: degradations on healthy corpus program: %v", alg, out.Degraded)
				}
			}
		})
	}
}

// TestParanoidAlternatePaths runs the paranoid differential with each
// of the three interpreter paths as the primary, so the cross-check of
// the other two (including the fast path when the primary is legacy or
// bytecode) executes on real promoted code rather than only the
// default fast-primary configuration.
func TestParanoidAlternatePaths(t *testing.T) {
	src := workload.Suite()[0].Src
	for _, primary := range []struct {
		name string
		opts interp.Options
	}{
		{"fast", interp.Options{}},
		{"legacy", interp.Options{Legacy: true}},
		{"bytecode", interp.Options{Bytecode: true}},
	} {
		primary := primary
		t.Run(primary.name, func(t *testing.T) {
			t.Parallel()
			out, err := pipeline.Run(src, pipeline.Options{
				Algorithm:       pipeline.AlgSSA,
				Check:           pipeline.CheckParanoid,
				Interp:          primary.opts,
				SkipMeasurement: true,
			})
			if err != nil {
				t.Fatalf("primary %s: %v", primary.name, err)
			}
			if len(out.Degraded) != 0 {
				t.Fatalf("primary %s: unexpected degradations: %v", primary.name, out.Degraded)
			}
		})
	}
}

// corpusSources loads the mini-C programs from the parser fuzz seed
// corpus, skipping entries the frontend rejects (they seed error
// paths).
func corpusSources(t *testing.T) []struct{ name, src string } {
	t.Helper()
	dir := filepath.Join("..", "source", "testdata", "fuzz", "FuzzParser")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	var progs []struct{ name, src string }
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		// Corpus format: header line, then string("...") entries.
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "string(") {
				continue
			}
			src, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "string("), ")"))
			if err != nil {
				t.Fatalf("%s: bad corpus entry: %v", e.Name(), err)
			}
			if _, perr := pipeline.Run(src, pipeline.Options{
				Algorithm:       pipeline.AlgNone,
				SkipMeasurement: true,
				StaticProfile:   true,
			}); perr != nil {
				continue // seeds error paths, not the corpus sweep
			}
			progs = append(progs, struct{ name, src string }{"corpus/" + e.Name(), src})
		}
	}
	if len(progs) < 4 {
		t.Fatalf("only %d usable corpus programs; corpus missing?", len(progs))
	}
	return progs
}

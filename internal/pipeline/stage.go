package pipeline

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// CheckLevel selects how much self-checking the pipeline performs while
// transforming a program.
type CheckLevel int

const (
	// CheckOff performs only the final per-function CFG verification.
	CheckOff CheckLevel = iota
	// CheckBoundaries re-verifies the IR after every transformation
	// stage: full SSA dominance discipline while the function is in SSA
	// form, structural CFG invariants otherwise.
	CheckBoundaries
	// CheckParanoid adds a whole-program semantic differential check:
	// the baseline and transformed programs are interpreted on the same
	// input and must produce identical output, return value, and final
	// global memory.
	CheckParanoid
)

// String names the check level.
func (l CheckLevel) String() string {
	switch l {
	case CheckOff:
		return "off"
	case CheckBoundaries:
		return "boundaries"
	case CheckParanoid:
		return "paranoid"
	}
	return "?"
}

// ParseCheckLevel parses "off", "boundaries", or "paranoid".
func ParseCheckLevel(s string) (CheckLevel, error) {
	switch s {
	case "off":
		return CheckOff, nil
	case "boundaries":
		return CheckBoundaries, nil
	case "paranoid":
		return CheckParanoid, nil
	}
	return CheckOff, fmt.Errorf("pipeline: unknown check level %q (want off, boundaries, or paranoid)", s)
}

// Stage names. Per-function stages (normalize through verify) degrade
// the affected function on failure; whole-program stages fail the run.
const (
	StageCompile       = "compile"
	StageAlias         = "alias"
	StageNormalize     = "normalize"
	StageTrain         = "train"
	StageMeasureBefore = "measure-before"
	StageSSABuild      = "ssa-build"
	StageMemOpts       = "memopts"
	StagePromote       = "promote"
	StageDestruct      = "destruct"
	StageVerify        = "verify"
	StageMeasureAfter  = "measure-after"
	StageDifferential  = "differential"
	// StageDiagnose is the opt-in static-diagnostics stage
	// (Options.Diagnose). It is deliberately absent from Stages(): that
	// list is the every-run isolation contract the fault-injection
	// tests sweep, and this stage only exists when asked for. Stage
	// bookkeeping (timings, server metrics) tolerates the extra name.
	StageDiagnose = "diagnose"
)

// Stages returns every pipeline stage name in execution order. Fault
// injection tests iterate this list to prove each stage's isolation
// wrapper works.
func Stages() []string {
	return []string{
		StageCompile, StageAlias, StageNormalize, StageTrain,
		StageMeasureBefore, StageSSABuild, StageMemOpts, StagePromote,
		StageDestruct, StageVerify, StageMeasureAfter, StageDifferential,
	}
}

// StageError is the structured failure report of one pipeline stage. It
// is what the pipeline returns instead of letting a stage panic escape:
// the stage and function that failed, the recovered panic value (when
// the stage panicked rather than erred), the goroutine stack captured
// at the recovery point, and a printed IR snapshot of the function
// being transformed — everything needed to reproduce the failure.
type StageError struct {
	// Stage is the pipeline stage that failed (see Stages).
	Stage string
	// Func is the function being transformed, or "" for whole-program
	// stages.
	Func string
	// Recovered is the panic value when the stage panicked, else nil.
	Recovered any
	// Err is the underlying error (a wrapper around Recovered for
	// panics).
	Err error
	// Stack is the goroutine stack captured at the recovery point
	// (panics only).
	Stack string
	// IR is a printed snapshot of the IR at the moment of failure, for
	// repro; empty when no IR existed yet (e.g. compile errors).
	IR string
}

// Error renders a one-line structured message: stage, function, cause.
func (e *StageError) Error() string {
	site := e.Stage
	if e.Func != "" {
		site += " " + e.Func
	}
	if e.Recovered != nil {
		return fmt.Sprintf("pipeline: stage %s panicked: %v", site, e.Recovered)
	}
	return fmt.Sprintf("pipeline: stage %s: %v", site, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// Detail returns the full repro report: message, panic stack, and IR
// snapshot.
func (e *StageError) Detail() string {
	s := e.Error()
	if e.Stack != "" {
		s += "\n\nstack:\n" + e.Stack
	}
	if e.IR != "" {
		s += "\nIR at failure:\n" + e.IR
	}
	return s
}

// Degradation records one function the pipeline compiled without
// (or with partially rolled-back) promotion because a stage failed.
type Degradation struct {
	// Func is the degraded function.
	Func string
	// Stage is the stage whose failure triggered the fallback.
	Stage string
	// Err is the structured failure that was absorbed.
	Err *StageError
}

// String renders "func: stage failure".
func (d Degradation) String() string {
	return fmt.Sprintf("%s: %v", d.Func, d.Err)
}

// runStage executes body under panic isolation, firing any configured
// fault injector first (inside the isolation scope, so injected panics
// are recovered like real ones). Failures come back as *StageError;
// snap, when non-nil, lazily supplies the IR snapshot attached to them.
func (r *runner) runStage(stage, fn string, snap func() string, body func() error) (err error) {
	snapshot := func() string {
		if snap == nil {
			return ""
		}
		return snap()
	}
	start := time.Now()
	defer func() { r.recordTiming(stage, fn, time.Since(start)) }()
	defer func() {
		if rec := recover(); rec != nil {
			err = &StageError{
				Stage:     stage,
				Func:      fn,
				Recovered: rec,
				Err:       fmt.Errorf("panic: %v", rec),
				Stack:     string(debug.Stack()),
				IR:        snapshot(),
			}
		}
	}()
	if ferr := r.opts.Faults.Fire(stage, fn); ferr != nil {
		return &StageError{Stage: stage, Func: fn, Err: ferr, IR: snapshot()}
	}
	if berr := body(); berr != nil {
		var se *StageError
		if errors.As(berr, &se) {
			return se
		}
		return &StageError{Stage: stage, Func: fn, Err: berr, IR: snapshot()}
	}
	return nil
}

package bitset

import (
	"math/rand"
	"testing"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(130)
	if d.Cap() != 130 {
		t.Fatalf("Cap = %d, want 130", d.Cap())
	}
	for _, i := range []int{0, 1, 63, 64, 127, 129} {
		if d.Has(i) {
			t.Fatalf("fresh set has %d", i)
		}
		d.Set(i)
		if !d.Has(i) {
			t.Fatalf("Set(%d) not visible", i)
		}
	}
	if d.Count() != 6 {
		t.Fatalf("Count = %d, want 6", d.Count())
	}
	d.Clear(64)
	if d.Has(64) || d.Count() != 5 {
		t.Fatalf("Clear(64) failed: has=%v count=%d", d.Has(64), d.Count())
	}
	if d.Has(-1) || d.Has(130) {
		t.Fatal("out-of-range Has must be false")
	}
	d.Reset()
	if d.Count() != 0 {
		t.Fatalf("Count after Reset = %d", d.Count())
	}
}

func TestDenseGrow(t *testing.T) {
	d := NewDense(10)
	d.Set(3)
	d.Grow(200)
	if !d.Has(3) {
		t.Fatal("Grow lost membership")
	}
	d.Set(199)
	if !d.Has(199) || d.Count() != 2 {
		t.Fatalf("after grow: has(199)=%v count=%d", d.Has(199), d.Count())
	}
	d.Grow(5) // no-op shrink attempt
	if d.Cap() != 200 {
		t.Fatalf("Grow shrank capacity to %d", d.Cap())
	}
}

func TestSparseBasics(t *testing.T) {
	s := NewSparse(64)
	if s.Has(0) || s.Len() != 0 {
		t.Fatal("fresh sparse set not empty")
	}
	if !s.Add(5) || !s.Add(0) || !s.Add(63) {
		t.Fatal("Add of new element returned false")
	}
	if s.Add(5) {
		t.Fatal("Add of existing element returned true")
	}
	if s.Len() != 3 || !s.Has(5) || !s.Has(0) || !s.Has(63) || s.Has(7) {
		t.Fatalf("membership wrong: len=%d", s.Len())
	}
	got := s.Members()
	want := []int32{5, 0, 63}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
	s.Reset()
	if s.Len() != 0 || s.Has(5) {
		t.Fatal("Reset did not clear")
	}
	// Reuse after Reset must behave identically (the Briggs–Torczon
	// stale-sparse-entry case).
	if !s.Add(5) || s.Len() != 1 {
		t.Fatal("Add after Reset failed")
	}
}

// TestSparseVsDenseRandom cross-checks the two implementations under a
// random operation stream.
func TestSparseVsDenseRandom(t *testing.T) {
	const n = 256
	rng := rand.New(rand.NewSource(1))
	s := NewSparse(n)
	d := NewDense(n)
	for op := 0; op < 10000; op++ {
		v := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			s.Add(v)
			d.Set(v)
		case 1:
			if s.Has(v) != d.Has(v) {
				t.Fatalf("op %d: Has(%d) disagree", op, v)
			}
		case 2:
			if rng.Intn(50) == 0 {
				s.Reset()
				d.Reset()
			}
		}
	}
	if s.Len() != d.Count() {
		t.Fatalf("cardinality disagree: sparse %d dense %d", s.Len(), d.Count())
	}
}

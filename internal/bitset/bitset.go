// Package bitset provides the two small set representations the dense
// CFG analyses are built on: a Dense bitset (one bit per element, cheap
// to test, O(capacity/64) to clear) and a Sparse set (the classic
// sparse/dense array pair: O(1) add, membership, and clear, at the cost
// of two ints per capacity slot). Both index elements by small
// non-negative ints — block IDs or reverse-postorder numbers.
//
// Neither type grows automatically on Add/Set: capacity is fixed at
// construction, which is exactly the dense-numbering contract
// (ir.Function.Renumber) the analyses rely on. Grow exists for the few
// callers whose element bound changes mid-analysis.
package bitset

import "math/bits"

// Dense is a fixed-capacity bitset over [0, Cap).
type Dense struct {
	words []uint64
	n     int
}

// NewDense returns a Dense bitset with capacity n (elements 0..n-1).
func NewDense(n int) *Dense {
	return &Dense{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the capacity the set was constructed with.
func (d *Dense) Cap() int { return d.n }

// Set adds i to the set.
func (d *Dense) Set(i int) { d.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i from the set.
func (d *Dense) Clear(i int) { d.words[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether i is in the set.
func (d *Dense) Has(i int) bool {
	if i < 0 || i >= d.n {
		return false
	}
	return d.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Reset removes every element.
func (d *Dense) Reset() {
	for i := range d.words {
		d.words[i] = 0
	}
}

// Grow extends the capacity to at least n, preserving membership.
func (d *Dense) Grow(n int) {
	if n <= d.n {
		return
	}
	need := (n + 63) / 64
	if need > len(d.words) {
		w := make([]uint64, need)
		copy(w, d.words)
		d.words = w
	}
	d.n = n
}

// Count returns the number of elements in the set.
func (d *Dense) Count() int {
	c := 0
	for _, w := range d.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CopyFrom overwrites d's membership with other's. The two sets must
// have the same capacity.
func (d *Dense) CopyFrom(other *Dense) {
	if d.n != other.n {
		panic("bitset: CopyFrom capacity mismatch")
	}
	copy(d.words, other.words)
}

// UnionWith adds every member of other to d, reporting whether d grew.
// The two sets must have the same capacity.
func (d *Dense) UnionWith(other *Dense) bool {
	if d.n != other.n {
		panic("bitset: UnionWith capacity mismatch")
	}
	changed := false
	for i, w := range other.words {
		if nw := d.words[i] | w; nw != d.words[i] {
			d.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Equal reports whether the two sets have identical membership. Sets of
// different capacity are equal when their members coincide.
func (d *Dense) Equal(other *Dense) bool {
	long, short := d.words, other.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if long[i] != w {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every member, in ascending order.
func (d *Dense) ForEach(fn func(int)) {
	for wi, w := range d.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 | b)
			w &^= 1 << uint(b)
		}
	}
}

// Sparse is a fixed-capacity sparse set over [0, Cap): add, membership,
// and whole-set clear are all O(1), and iteration touches only members.
// The zero-initialization trick (Briggs–Torczon) means construction is
// two allocations and no writes.
type Sparse struct {
	dense  []int32 // members, in insertion order
	sparse []int32 // sparse[v] = index of v in dense, if a member
}

// NewSparse returns a Sparse set with capacity n (elements 0..n-1).
func NewSparse(n int) *Sparse {
	return &Sparse{dense: make([]int32, 0, n), sparse: make([]int32, n)}
}

// Cap returns the capacity the set was constructed with.
func (s *Sparse) Cap() int { return len(s.sparse) }

// Len returns the number of members.
func (s *Sparse) Len() int { return len(s.dense) }

// Has reports whether i is a member.
func (s *Sparse) Has(i int) bool {
	if i < 0 || i >= len(s.sparse) {
		return false
	}
	j := s.sparse[i]
	return int(j) < len(s.dense) && s.dense[j] == int32(i)
}

// Add inserts i, reporting whether it was newly added.
func (s *Sparse) Add(i int) bool {
	if s.Has(i) {
		return false
	}
	s.sparse[i] = int32(len(s.dense))
	s.dense = append(s.dense, int32(i))
	return true
}

// Members returns the members in insertion order. The slice aliases the
// set's storage: it is valid until the next Add or Reset.
func (s *Sparse) Members() []int32 { return s.dense }

// Reset removes every member in O(1).
func (s *Sparse) Reset() { s.dense = s.dense[:0] }

package core_test

import (
	"reflect"
	"testing"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/ssa"
)

// buildImproper constructs a function with an irreducible region —
// a two-entry cycle {b1, b2} — that reads and writes global x in both
// cycle blocks. Mini-C's structured control flow cannot produce this
// shape, so the end-to-end path for improper intervals (least-common-
// dominator preheader, multi-entry webs) is exercised here directly.
//
//	b0: i = 0;           br c -> b1, b2
//	b1: x += 1; i += 1;  cond = i < 6; br cond -> b2, b3
//	b2: x += 2; i += 1;  jmp b1
//	b3: print x;         ret
func buildImproper() *ir.Program {
	p := ir.NewProgram()
	g := p.AddGlobal("x", 1, false, nil)
	f := ir.NewFunction(p, "main")
	base := f.AddResource("x", ir.ResScalar, ir.GlobalLoc(g, 0))

	c := f.NewReg("c") // parameter: 0 at runtime, so entry goes to b2
	f.Params = []ir.RegID{c}
	i := f.NewReg("i")
	cond := f.NewReg("cond")

	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	ir.AddEdge(b0, b1)
	ir.AddEdge(b0, b2)
	ir.AddEdge(b1, b2)
	ir.AddEdge(b1, b3)
	ir.AddEdge(b2, b1)

	b0.Append(ir.NewInstr(ir.OpCopy, i, ir.ConstVal(0)))
	b0.Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(c)))

	bump := func(blk *ir.Block, delta int64) {
		t := f.NewReg("")
		ld := ir.NewInstr(ir.OpLoad, t)
		ld.Loc = ir.GlobalLoc(g, 0)
		ld.MemUses = []ir.MemRef{{Res: base.ID}}
		blk.Append(ld)
		t2 := f.NewReg("")
		blk.Append(ir.NewInstr(ir.OpAdd, t2, ir.RegVal(t), ir.ConstVal(delta)))
		st := ir.NewInstr(ir.OpStore, ir.NoReg, ir.RegVal(t2))
		st.Loc = ir.GlobalLoc(g, 0)
		st.MemDefs = []ir.MemRef{{Res: base.ID}}
		blk.Append(st)
		blk.Append(ir.NewInstr(ir.OpAdd, i, ir.RegVal(i), ir.ConstVal(1)))
	}

	bump(b1, 1)
	b1.Append(ir.NewInstr(ir.OpLt, cond, ir.RegVal(i), ir.ConstVal(6)))
	b1.Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(cond)))

	bump(b2, 2)
	b2.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))

	t := f.NewReg("")
	ld := ir.NewInstr(ir.OpLoad, t)
	ld.Loc = ir.GlobalLoc(g, 0)
	ld.MemUses = []ir.MemRef{{Res: base.ID}}
	b3.Append(ld)
	b3.Append(ir.NewInstr(ir.OpPrint, ir.NoReg, ir.RegVal(t)))
	ret := ir.NewInstr(ir.OpRet, ir.NoReg)
	ret.MemUses = []ir.MemRef{{Res: base.ID, Aliased: true}}
	b3.Append(ret)

	// Pre-SSA form multiply assigns i; that is legal at this stage.
	return p
}

func TestImproperIntervalPromotion(t *testing.T) {
	// Reference semantics from an untouched copy.
	ref, err := interp.Run(buildImproper(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	prog := buildImproper()
	f := prog.Func("main")
	forest, err := cfg.Normalize(f)
	if err != nil {
		t.Fatal(err)
	}

	// The interval must be improper with two entries and an LCD
	// preheader outside it.
	var iv *cfg.Interval
	forest.Root.Walk(func(v *cfg.Interval) {
		if !v.Root {
			iv = v
		}
	})
	if iv == nil {
		t.Fatal("no interval found")
	}
	if iv.Proper() {
		t.Fatalf("interval should be improper; entries=%v", iv.Entries)
	}
	if iv.Preheader == nil || iv.Contains(iv.Preheader) {
		t.Fatalf("bad improper preheader %v", iv.Preheader)
	}

	if _, err := ssa.Build(f); err != nil {
		t.Fatal(err)
	}
	fp := profile.Estimate(f, forest)
	stats, err := core.PromoteFunction(f, forest, core.Config{
		Profile:         fp,
		CountTailStores: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ssa.VerifyDominance(f); err != nil {
		t.Fatalf("post-promotion SSA invalid: %v\n%s", err, f)
	}
	ssa.Destruct(f)
	if err := f.Verify(ir.VerifyCFG); err != nil {
		t.Fatal(err)
	}

	got, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatalf("promoted improper program: %v\n%s", err, f)
	}
	if !reflect.DeepEqual(ref.Output, got.Output) {
		t.Fatalf("improper promotion changed output: %v -> %v\n%s", ref.Output, got.Output, f)
	}
	if !reflect.DeepEqual(ref.Globals, got.Globals) {
		t.Fatalf("improper promotion changed memory: %v -> %v", ref.Globals, got.Globals)
	}

	// The cycle runs ~6 iterations with a load+store each; promotion
	// should collapse that to boundary traffic.
	if stats.WebsPromoted+stats.WebsLoadOnly > 0 && got.DynMemOps() >= ref.DynMemOps() {
		t.Errorf("promotion claimed success but memory ops did not drop: %d -> %d",
			ref.DynMemOps(), got.DynMemOps())
	}
	t.Logf("improper interval: %d -> %d memory ops, stats %+v",
		ref.DynMemOps(), got.DynMemOps(), stats)
}

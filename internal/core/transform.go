package core

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/ssa"
)

// transformer applies a web's promotion plan: Figures 4, 5, and 6 of
// the paper plus the incremental SSA update after store cloning.
type transformer struct {
	p    *promoter
	iv   *cfg.Interval
	w    *web
	plan *webPlan

	// vrMap maps a singleton resource version to the virtual register
	// that always holds its value (the paper's vrMap).
	vrMap map[ir.ResourceID]ir.RegID
	// leafLoads records the loads inserted at phi leaves, keyed by
	// (resource, block): materializeStoreValue's leaf lookup.
	leafLoads map[leafKey]ir.RegID
	// cloned collects the new store-defined versions for the SSA update.
	cloned []ir.ResourceID
}

type leafKey struct {
	res ir.ResourceID
	blk ir.BlockID
}

// initVRMap inserts a copy `t = v` after every store `st [x] = v` of the
// web and records vrMap[x] = t.
func (t *transformer) initVRMap() {
	for _, st := range t.w.stores {
		f := t.p.f
		reg := f.NewReg(f.BaseOf(st.MemDefs[0].Res).Name)
		cp := ir.NewInstr(ir.OpCopy, reg, st.Args[0])
		st.Parent.InsertAfter(cp, st)
		t.vrMap[st.MemDefs[0].Res] = reg
	}
}

// insertLoadsAtPhiLeaves adds `t = ld [x]` before each planned insertion
// point — the compensation loads on paths carrying aliased definitions
// or the live-in value.
func (t *transformer) insertLoadsAtPhiLeaves() {
	t.leafLoads = make(map[leafKey]ir.RegID)
	f := t.p.f
	for _, ref := range t.plan.loadsAdded {
		reg := f.NewReg(f.BaseOf(ref.res).Name)
		ld := ir.NewInstr(ir.OpLoad, reg)
		ld.Loc = f.Res(ref.res).Loc
		ld.MemUses = []ir.MemRef{{Res: ref.res}}
		ref.at.Parent.InsertBefore(ld, ref.at)
		// Leaf loads are looked up per (resource, block) — never through
		// vrMap: the same leaf resource can feed several phis from
		// different predecessor blocks (multi-entry intervals), and each
		// phi operand must use the load on its own edge.
		t.leafLoads[leafKey{ref.res, ref.at.Parent.ID}] = reg
		t.p.stats.LoadsInserted++
	}
}

// materializeStoreValue returns a register holding the value of memRes,
// which must be defined by a web store or memphi (Figure 6). For phi-
// defined resources it builds a register phi mirroring the memphi,
// recursing into operands. The register phi is inserted and registered
// in vrMap before the recursion so that phi cycles (loop-carried
// values) terminate.
func (t *transformer) materializeStoreValue(memRes ir.ResourceID) (ir.RegID, error) {
	if reg, ok := t.vrMap[memRes]; ok {
		return reg, nil
	}
	f := t.p.f
	var memPhi *ir.Instr
	for _, phi := range t.w.memPhis {
		if phi.MemDefs[0].Res == memRes {
			memPhi = phi
			break
		}
	}
	if memPhi == nil {
		return ir.NoReg, fmt.Errorf("core: materialize %s: not in vrMap and not phi-defined", f.Res(memRes))
	}

	dst := f.NewReg(f.BaseOf(memRes).Name)
	regPhi := ir.NewInstr(ir.OpPhi, dst, make([]ir.Value, len(memPhi.MemUses))...)
	memPhi.Parent.InsertPhi(regPhi)
	t.vrMap[memRes] = dst

	for i, u := range memPhi.MemUses {
		x := u.Res
		// A leaf operand takes the load inserted on its own incoming
		// edge; this must win over any other mapping for x.
		if reg, ok := t.leafLoads[leafKey{x, memPhi.Parent.Preds[i].ID}]; ok {
			regPhi.Args[i] = ir.RegVal(reg)
			continue
		}
		if reg, ok := t.vrMap[x]; ok {
			regPhi.Args[i] = ir.RegVal(reg)
			continue
		}
		reg, err := t.materializeStoreValue(x)
		if err != nil {
			return ir.NoReg, err
		}
		regPhi.Args[i] = ir.RegVal(reg)
	}
	return dst, nil
}

// replaceLoadsByCopies is Figure 5: every load of a store- or phi-
// defined resource becomes a copy from the materialized register.
func (t *transformer) replaceLoadsByCopies() {
	definedByStore := make(map[ir.ResourceID]bool)
	for _, st := range t.w.stores {
		definedByStore[st.MemDefs[0].Res] = true
	}
	definedByPhi := make(map[ir.ResourceID]bool)
	for _, phi := range t.w.memPhis {
		definedByPhi[phi.MemDefs[0].Res] = true
	}
	for _, ld := range t.w.loads {
		x := ld.MemUses[0].Res
		if !definedByStore[x] && !definedByPhi[x] {
			continue // live-in or aliased-def value: must stay a load
		}
		reg, err := t.materializeStoreValue(x)
		if err != nil {
			// Defensive: leave the load in place rather than
			// miscompiling; cannot happen for well-formed webs.
			continue
		}
		replaceWithCopy(ld, ir.RegVal(reg))
		t.p.stats.LoadsReplaced++
	}
}

// insertStoresForAliasedLoads places the planned compensation stores:
// `st [x] = vrMap[x]` immediately before each planned point, cloning a
// fresh version of the base for the later SSA update.
func (t *transformer) insertStoresForAliasedLoads() {
	f := t.p.f
	for _, ref := range t.plan.storesAdded {
		reg, ok := t.vrMap[ref.res]
		if !ok {
			continue // store-defined resources always have vrMap entries
		}
		ver := f.NewVersion(t.w.base)
		st := ir.NewInstr(ir.OpStore, ir.NoReg, ir.RegVal(reg))
		st.Loc = f.Res(t.w.base).Loc
		st.MemDefs = []ir.MemRef{{Res: ver.ID}}
		ref.at.Parent.InsertBefore(st, ref.at)
		t.cloned = append(t.cloned, ver.ID)
		t.p.stats.StoresInserted++
	}
}

// insertStoresAtIntervalTails stores each exit edge's live-out value in
// its dedicated tail block, materializing the value first.
func (t *transformer) insertStoresAtIntervalTails() {
	f := t.p.f
	for _, ts := range t.plan.tailStores {
		reg, err := t.materializeStoreValue(ts.res)
		if err != nil {
			continue
		}
		ver := f.NewVersion(t.w.base)
		st := ir.NewInstr(ir.OpStore, ir.NoReg, ir.RegVal(reg))
		st.Loc = f.Res(t.w.base).Loc
		st.MemDefs = []ir.MemRef{{Res: ver.ID}}
		if first := firstNonPhi(ts.tail); first != nil {
			ts.tail.InsertBefore(st, first)
		} else {
			ts.tail.Append(st)
		}
		t.cloned = append(t.cloned, ver.ID)
		t.p.stats.StoresInserted++
	}
}

func firstNonPhi(b *ir.Block) *ir.Instr {
	for _, in := range b.Instrs {
		if !in.Op.IsPhi() {
			return in
		}
	}
	return nil
}

// updateSSAAndDeleteStores runs the incremental SSA update for the
// cloned store definitions. The old resource set is every web version
// defined inside the interval by a store or memphi; renaming moves all
// their uses onto the clones (or onto fresh phis), after which the
// update's dead-definition sweep deletes the original stores — the
// paper's deleteStores() realized through the Figure 11 algorithm.
func (t *transformer) updateSSAAndDeleteStores() error {
	if len(t.cloned) == 0 {
		return nil
	}
	var oldSet []ir.ResourceID
	before := make(map[*ir.Instr]bool)
	for _, st := range t.w.stores {
		oldSet = append(oldSet, st.MemDefs[0].Res)
		before[st] = true
	}
	for _, phi := range t.w.memPhis {
		oldSet = append(oldSet, phi.MemDefs[0].Res)
	}
	// The dominator tree is unchanged (no CFG edits), but the frontier
	// cache may be reused as-is too.
	if _, err := ssa.UpdateForClonedResources(t.p.f, t.p.dom, t.p.df, oldSet, t.cloned); err != nil {
		return err
	}
	for st := range before {
		if st.Parent == nil {
			t.p.stats.StoresDeleted++
		}
	}
	return nil
}

package core_test

import (
	"reflect"
	"testing"

	"repro/internal/alias"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/source"
	"repro/internal/ssa"
	"repro/internal/workload"
)

// TestPressureBudgetDemotesWebs drives the promoter's demotion path
// directly: two equally shaped webs in one loop, and a descending
// per-block budget sweep. Somewhere between "everything fits" and "no
// headroom at all" there must be a budget that promotes exactly one
// web and demotes the other — and at that point semantics must hold
// through destruction.
//
// This is a unit test on the Config.PressureBudget heuristic because,
// empirically, the trial loop in PromoteUnderPressure cannot reach it
// on compiled programs: on this IR the unpromoted baseline always
// colors higher than promoted code (memory-op temporaries and
// loop-carried webs dominate), so the uncapped trial always fits
// max(cap, baseline). See EXPERIMENTS.md.
func TestPressureBudgetDemotesWebs(t *testing.T) {
	src := `
int a; int b;
void main() {
	int i;
	for (i = 0; i < 100; i++) {
		a += 1;
		b += 1;
	}
	print(a);
	print(b);
}
`
	ref, err := source.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := alias.Analyze(ref); err != nil {
		t.Fatal(err)
	}
	want, err := interp.Run(ref, interp.Options{CollectProfile: true})
	if err != nil {
		t.Fatal(err)
	}

	// promoteAt rebuilds the program from source and promotes main
	// under the given per-block budget.
	promoteAt := func(budget int) (*ir.Program, *core.Stats) {
		prog, err := source.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := alias.Analyze(prog); err != nil {
			t.Fatal(err)
		}
		var stats *core.Stats
		for _, f := range prog.Funcs {
			forest, err := cfg.Normalize(f)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ssa.Build(f); err != nil {
				t.Fatal(err)
			}
			info := liveness.Compute(f)
			s, err := core.PromoteFunction(f, forest, core.Config{
				Profile:         want.Profile.ForFunc(f.Name),
				CountTailStores: true,
				PressureBudget:  budget,
				BlockPressure:   info.BlockMaxLive,
			})
			if err != nil {
				t.Fatal(err)
			}
			ssa.Destruct(f)
			if f.Name == "main" {
				stats = s
			}
		}
		return prog, stats
	}

	// Sweep budgets downward until exactly one of the two webs fits.
	// The budget charges only blocks in a web's span, so the binding
	// point depends on span-block pressure, not the function MaxLive;
	// sweeping finds it without encoding that detail here.
	var prog *ir.Program
	var stats *core.Stats
	for budget := 16; budget >= 1; budget-- {
		prog, stats = promoteAt(budget)
		if stats == nil {
			t.Fatal("no stats for main")
		}
		if stats.WebsPromoted+stats.WebsLoadOnly == 1 {
			break
		}
	}
	if stats.WebsPromoted+stats.WebsLoadOnly != 1 {
		t.Fatalf("no budget in [1,16] promoted exactly one web; last stats %+v", stats)
	}
	if stats.WebsDemoted != 1 {
		t.Fatalf("WebsDemoted = %d, want 1: %+v", stats.WebsDemoted, stats)
	}

	got, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatalf("promoted program failed to run: %v", err)
	}
	if !reflect.DeepEqual(got.Output, want.Output) || got.ReturnValue != want.ReturnValue {
		t.Fatalf("demotion changed semantics: output %v (want %v), ret %d (want %d)",
			got.Output, want.Output, got.ReturnValue, want.ReturnValue)
	}
}

// TestPressureBudgetZeroBudgetDemotesAll: a budget equal to the
// existing pressure floor leaves no headroom, so every candidate web is
// demoted and the function is effectively unpromoted.
func TestPressureBudgetZeroBudgetDemotesAll(t *testing.T) {
	src := `
int a; int b;
void main() {
	int i;
	for (i = 0; i < 50; i++) { a += i; b += a; }
	print(a + b);
}
`
	prog, err := source.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatal(err)
	}
	for _, f := range prog.Funcs {
		forest, err := cfg.Normalize(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ssa.Build(f); err != nil {
			t.Fatal(err)
		}
		if f.Name != "main" {
			continue
		}
		info := liveness.Compute(f)
		stats, err := core.PromoteFunction(f, forest, core.Config{
			Profile:         profile.Estimate(f, forest),
			CountTailStores: true,
			PressureBudget:  1, // every block already holds >= 1 live register
			BlockPressure:   info.BlockMaxLive,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.WebsPromoted+stats.WebsLoadOnly != 0 {
			t.Fatalf("no-headroom budget still promoted webs: %+v", stats)
		}
		if stats.WebsDemoted == 0 {
			t.Fatalf("no-headroom budget demoted nothing: %+v", stats)
		}
	}
}

// TestPressureCapParanoidDifferential runs the capped promotion under
// the paranoid semantic differential on the paper's running example:
// demotion must never change observable behavior. The promote helper
// additionally compares before/after interpreter runs.
func TestPressureCapParanoidDifferential(t *testing.T) {
	for _, cap := range []int{1, 3, 8} {
		out := promote(t, figure1Src, pipeline.Options{
			PressureCap: cap,
			Check:       pipeline.CheckParanoid,
		})
		if out.Before.Output[0] != 110 {
			t.Fatalf("cap %d: program computes %d, want 110", cap, out.Before.Output[0])
		}
	}
}

// TestPressureCapPropertyCorpus is the property the whole layer
// guarantees: for every function of every corpus entry, re-coloring the
// emitted IR never needs more than max(cap, baseline) colors, and the
// recorded FinalColors is exactly that measurement.
func TestPressureCapPropertyCorpus(t *testing.T) {
	corpus := workload.Suite()
	corpus = append(corpus, workload.Corpus(11, 6)...)
	for _, cap := range []int{2, 5, 9} {
		for _, w := range corpus {
			out, err := pipeline.Run(w.Src, pipeline.Options{
				PressureCap:     cap,
				SkipMeasurement: true,
			})
			if err != nil {
				t.Fatalf("cap %d %s: %v", cap, w.Name, err)
			}
			results, names := regalloc.AllocateProgram(out.Prog)
			for _, fn := range names {
				pres := out.Pressure[fn]
				if pres == nil {
					continue
				}
				got := results[fn]
				if got == nil {
					continue
				}
				if got.Colors != pres.FinalColors {
					t.Errorf("cap %d %s/%s: recorded %d colors, emitted IR needs %d",
						cap, w.Name, fn, pres.FinalColors, got.Colors)
				}
				if got.Colors > pres.EffectiveCap {
					t.Errorf("cap %d %s/%s: %d colors exceeds effective cap %d",
						cap, w.Name, fn, got.Colors, pres.EffectiveCap)
				}
				if pres.EffectiveCap != max(cap, pres.BaselineColors) {
					t.Errorf("cap %d %s/%s: effective cap %d, want max(%d, %d)",
						cap, w.Name, fn, pres.EffectiveCap, cap, pres.BaselineColors)
				}
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

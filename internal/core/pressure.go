package core

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/regalloc"
	"repro/internal/ssa"
)

// maxPressureTrials bounds the descending working-budget search in
// PromoteUnderPressure. Each trial is a full clone-promote-destruct-
// color cycle; in practice the first or second budget already fits.
const maxPressureTrials = 6

// PressureResult records what pressure-aware promotion decided for one
// function: the color counts of the paper's Table 3 for the unpromoted
// baseline, the uncapped promotion, and the accepted configuration.
type PressureResult struct {
	// Cap is the requested color cap.
	Cap int
	// EffectiveCap is max(Cap, BaselineColors): if the function needs
	// more colors than the cap before any promotion, promotion cannot
	// fix that, and not promoting at all is always available — so the
	// guarantee is FinalColors <= EffectiveCap.
	EffectiveCap int
	// BaselineColors is the regalloc color count with no promotion.
	BaselineColors int
	// UncappedColors is the color count after unrestricted promotion.
	UncappedColors int
	// FinalColors is the color count of the accepted configuration.
	FinalColors int
	// BudgetUsed is the per-block pressure budget of the accepted
	// configuration: 0 when uncapped promotion already fit, -1 when no
	// trial fit and promotion was skipped entirely.
	BudgetUsed int
	// Trials counts the clone trials run (including the uncapped one).
	Trials int
	// Stats describes the accepted promotion (zero-valued when
	// promotion was skipped).
	Stats *Stats
}

// PromoteUnderPressure promotes f subject to a hard register-pressure
// cap: after promotion, destruction, and coloring, the function needs
// at most max(cap, baseline) colors, where baseline is what the
// unpromoted function needs.
//
// The pressure budget inside the promoter is a placement heuristic — a
// greedy coloring can exceed MaxLive — so the hard guarantee comes from
// measuring: each candidate configuration is tried on a Clone (promote,
// SSA-destruct, color) and accepted only if it fits. Trials run
// uncapped first, then at descending per-block budgets seeded from the
// pre-promotion liveness; if nothing fits within maxPressureTrials, the
// function is left unpromoted, which meets the cap by construction.
// Clone preserves block IDs and register numbers and promotion is
// deterministic, so replaying the winning configuration on f reproduces
// the trial exactly.
func PromoteUnderPressure(f *ir.Function, forest *cfg.Forest, config Config, cap int) (*PressureResult, error) {
	return PromoteUnderPressureWith(f, forest, config, cap, nil)
}

// PromoteUnderPressureWith is PromoteUnderPressure with a precomputed
// liveness Info for f's current (pre-promotion) SSA form — the pipeline
// passes the analysis cache's copy so the seeding is not recomputed per
// run. nil means compute it on demand.
func PromoteUnderPressureWith(f *ir.Function, forest *cfg.Forest, config Config, cap int, info *liveness.Info) (*PressureResult, error) {
	if cap <= 0 {
		return nil, fmt.Errorf("core: pressure cap must be positive, got %d", cap)
	}
	res := &PressureResult{Cap: cap, BudgetUsed: -1, Stats: &Stats{}}

	// Baseline: the unpromoted function's color count. Destruct runs on
	// a clone; the real f must stay in SSA for the promotion below.
	base := f.Clone()
	ssa.Destruct(base)
	res.BaselineColors = regalloc.Allocate(base).Colors
	res.EffectiveCap = cap
	if res.BaselineColors > res.EffectiveCap {
		res.EffectiveCap = res.BaselineColors
	}

	// trial promotes a fresh clone under the given budget and reports
	// the resulting color count. The clone needs its own annotated
	// forest and dominance info: config's point into f's blocks.
	trial := func(budget int, blockPressure []int) (int, *Stats, error) {
		c := f.Clone()
		tc := config
		tc.Dom = nil
		tc.DF = cfg.DomFrontiers{}
		tc.PressureBudget = budget
		tc.BlockPressure = blockPressure
		st, err := PromoteFunction(c, cfg.AnnotatedIntervals(c), tc)
		if err != nil {
			return 0, nil, err
		}
		ssa.Destruct(c)
		return regalloc.Allocate(c).Colors, st, nil
	}

	accept := func(budget int, blockPressure []int, colors int) error {
		fc := config
		fc.PressureBudget = budget
		fc.BlockPressure = blockPressure
		stats, err := PromoteFunction(f, forest, fc)
		if err != nil {
			return err
		}
		res.FinalColors = colors
		res.BudgetUsed = budget
		res.Stats = stats
		return nil
	}

	// Trial 1: unrestricted promotion. If it fits the cap there is
	// nothing to demote.
	res.Trials++
	colors, _, err := trial(0, nil)
	if err != nil {
		return nil, err
	}
	res.UncappedColors = colors
	if colors <= res.EffectiveCap {
		return res, accept(0, nil, colors)
	}

	// Descending working budgets, charged against the pre-promotion
	// SSA liveness. The budget is deliberately tried below the cap too:
	// greedy coloring can need more colors than the per-block pressure.
	if info == nil {
		info = liveness.Compute(f)
	}
	lo := res.EffectiveCap - (maxPressureTrials - 1)
	if lo < 1 {
		lo = 1
	}
	for budget := res.EffectiveCap; budget >= lo; budget-- {
		res.Trials++
		colors, _, err := trial(budget, info.BlockMaxLive)
		if err != nil {
			return nil, err
		}
		if colors <= res.EffectiveCap {
			return res, accept(budget, info.BlockMaxLive, colors)
		}
	}

	// Nothing fit: skip promotion. The unpromoted function needs
	// BaselineColors <= EffectiveCap by construction.
	res.FinalColors = res.BaselineColors
	return res, nil
}

package core

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// memRefSite is one memory reference: an operand slot on an instruction
// (the paper's "reference").
type memRefSite struct {
	in    *ir.Instr
	isDef bool
	idx   int // index into MemDefs or MemUses
}

func (r memRefSite) res() ir.ResourceID {
	if r.isDef {
		return r.in.MemDefs[r.idx].Res
	}
	return r.in.MemUses[r.idx].Res
}

// web is one memory SSA web inside an interval, with the reference sets
// of section 4.2 of the paper.
type web struct {
	base      ir.ResourceID // base resource all versions rename
	resources map[ir.ResourceID]bool

	// Reference sets, all restricted to the interval.
	loads        []*ir.Instr  // singleton loads (OpLoad)
	stores       []*ir.Instr  // singleton stores (OpStore)
	aliasedLoads []memRefSite // aliased uses: calls, pointer ops, dummies
	aliasedDefs  []memRefSite // aliased defs: calls, pointer stores
	memPhis      []*ir.Instr  // memphi instructions of the web

	// defsInInterval lists web resources defined inside the interval
	// (by any kind of definition).
	defsInInterval map[ir.ResourceID]*ir.Instr
}

// constructSSAWebs partitions the promotable resource versions
// referenced in the interval into webs: the union-find pass of the
// paper's Figure 3, seeded with every referenced resource and unioned
// across each memphi's target and operands.
func (p *promoter) constructSSAWebs(iv *cfg.Interval) []*web {
	parent := make(map[ir.ResourceID]ir.ResourceID)
	var find func(r ir.ResourceID) ir.ResourceID
	find = func(r ir.ResourceID) ir.ResourceID {
		if parent[r] == r {
			return r
		}
		root := find(parent[r])
		parent[r] = root
		return root
	}
	add := func(r ir.ResourceID) {
		if _, ok := parent[r]; !ok {
			parent[r] = r
		}
	}
	union := func(a, b ir.ResourceID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	promotable := func(r ir.ResourceID) bool { return p.f.BaseOf(r).Promotable() }

	// Seed with every promotable resource referenced in the interval,
	// then union across phi connections.
	for _, b := range iv.Blocks {
		for _, in := range b.Instrs {
			for _, d := range in.MemDefs {
				if promotable(d.Res) {
					add(d.Res)
				}
			}
			for _, u := range in.MemUses {
				if promotable(u.Res) {
					add(u.Res)
				}
			}
		}
	}
	for _, b := range iv.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpMemPhi || !promotable(in.MemDefs[0].Res) {
				continue
			}
			target := in.MemDefs[0].Res
			for _, u := range in.MemUses {
				union(target, u.Res)
			}
		}
	}

	// Group into webs keyed by representative.
	websByRoot := make(map[ir.ResourceID]*web)
	for r := range parent {
		root := find(r)
		w := websByRoot[root]
		if w == nil {
			w = &web{
				base:           p.f.BaseOf(r).ID,
				resources:      make(map[ir.ResourceID]bool),
				defsInInterval: make(map[ir.ResourceID]*ir.Instr),
			}
			websByRoot[root] = w
		}
		w.resources[r] = true
	}

	// Collect reference sets in one scan (the paper's single pass over
	// the interval's instructions).
	for _, b := range iv.Blocks {
		for _, in := range b.Instrs {
			for i := range in.MemDefs {
				r := in.MemDefs[i].Res
				if !promotable(r) {
					continue
				}
				w := websByRoot[find(r)]
				w.defsInInterval[r] = in
				switch {
				case in.Op == ir.OpMemPhi:
					w.memPhis = append(w.memPhis, in)
				case in.Op == ir.OpStore:
					w.stores = append(w.stores, in)
				default:
					w.aliasedDefs = append(w.aliasedDefs, memRefSite{in, true, i})
				}
			}
			for i := range in.MemUses {
				r := in.MemUses[i].Res
				if !promotable(r) {
					continue
				}
				w := websByRoot[find(r)]
				switch in.Op {
				case ir.OpMemPhi:
					// phi operands are web structure, not references
				case ir.OpLoad:
					w.loads = append(w.loads, in)
				default:
					w.aliasedLoads = append(w.aliasedLoads, memRefSite{in, false, i})
				}
			}
		}
	}

	// Deterministic order by smallest member resource.
	webs := make([]*web, 0, len(websByRoot))
	for _, w := range websByRoot {
		webs = append(webs, w)
	}
	sort.Slice(webs, func(i, j int) bool {
		return minRes(webs[i].resources) < minRes(webs[j].resources)
	})
	return webs
}

func minRes(set map[ir.ResourceID]bool) ir.ResourceID {
	first := true
	var m ir.ResourceID
	for r := range set {
		if first || r < m {
			m = r
			first = false
		}
	}
	return m
}

// webPlan holds the placement and profitability analysis of section 4.3:
// the loads-added and stores-added sets, the live-in and live-out
// resources, and the profit components.
type webPlan struct {
	liveIn ir.ResourceID // version valid on interval entry (NoResource if none)

	// loadsAdded maps each insertion point to the resource to load
	// before it (the paper's loads-added pairs (x, i)).
	loadsAdded []plannedRef
	// storesAdded lists the (x, i) pairs for compensation stores before
	// aliased loads and at phi-leaf edges.
	storesAdded []plannedRef
	// tailStores lists the interval tail insertions: the live-out
	// resource per exit edge.
	tailStores []tailStore

	loadProfit   float64
	storeProfit  float64
	removeStores bool
}

type plannedRef struct {
	res ir.ResourceID
	at  *ir.Instr // insert immediately before this instruction
}

type tailStore struct {
	res  ir.ResourceID
	tail *ir.Block
}

func (pl *webPlan) profit() float64 {
	if pl.removeStores {
		return pl.loadProfit + pl.storeProfit
	}
	return pl.loadProfit
}

// planWeb computes the analysis of section 4.3 for one web.
func (p *promoter) planWeb(iv *cfg.Interval, w *web) *webPlan {
	pl := &webPlan{liveIn: p.findLiveIn(iv, w)}

	definedByStore := make(map[ir.ResourceID]bool)
	for _, st := range w.stores {
		definedByStore[st.MemDefs[0].Res] = true
	}
	definedByPhi := make(map[ir.ResourceID]*ir.Instr)
	for _, phi := range w.memPhis {
		definedByPhi[phi.MemDefs[0].Res] = phi
	}

	// loads-added: for each phi operand x:L that is a leaf (not defined
	// by a web phi) and not defined by a web store, a load of x at the
	// end of block L.
	seenLoad := make(map[plannedRef]bool)
	for _, phi := range w.memPhis {
		blk := phi.Parent
		for i, u := range phi.MemUses {
			x := u.Res
			if definedByPhi[x] != nil || definedByStore[x] {
				continue
			}
			at := blk.Preds[i].Term()
			ref := plannedRef{res: x, at: at}
			if !seenLoad[ref] {
				seenLoad[ref] = true
				pl.loadsAdded = append(pl.loadsAdded, ref)
			}
		}
	}

	// stores-added. First find every web resource an aliased load
	// depends on, transitively through phis.
	depends := make(map[ir.ResourceID]bool)
	var mark func(r ir.ResourceID)
	mark = func(r ir.ResourceID) {
		if depends[r] {
			return
		}
		depends[r] = true
		if phi := definedByPhi[r]; phi != nil {
			for _, u := range phi.MemUses {
				mark(u.Res)
			}
		}
	}
	for _, al := range w.aliasedLoads {
		mark(al.res())
	}
	seenStore := make(map[plannedRef]bool)
	addStore := func(ref plannedRef) {
		if !seenStore[ref] {
			seenStore[ref] = true
			pl.storesAdded = append(pl.storesAdded, ref)
		}
	}
	// Case 1: store-defined phi operands x:L on paths feeding an
	// aliased load get a store at the end of L.
	for _, phi := range w.memPhis {
		if !depends[phi.MemDefs[0].Res] {
			continue
		}
		blk := phi.Parent
		for i, u := range phi.MemUses {
			if definedByStore[u.Res] {
				addStore(plannedRef{res: u.Res, at: blk.Preds[i].Term()})
			}
		}
	}
	// Case 2: an aliased load directly using a store-defined resource
	// gets a store immediately before it.
	for _, al := range w.aliasedLoads {
		if definedByStore[al.res()] {
			addStore(plannedRef{res: al.res(), at: al.in})
		}
	}
	pl.storesAdded = p.pruneDominatedStores(pl.storesAdded)

	// Interval tail stores: per exit edge, the reaching web definition;
	// a store is needed when it is a store- or phi-defined version with
	// uses outside the interval.
	liveOut := p.liveOutResources(iv, w, definedByStore, definedByPhi)
	for _, e := range iv.ExitEdges {
		r := p.reachingWebDefAt(iv, w, e.From)
		if r == ir.NoResource || !liveOut[r] {
			continue
		}
		pl.tailStores = append(pl.tailStores, tailStore{res: r, tail: e.Tail})
	}

	// Profit (section 4.3). Replaceable loads are those whose resource
	// is defined by a web phi or store.
	for _, ld := range w.loads {
		x := ld.MemUses[0].Res
		if definedByPhi[x] != nil || definedByStore[x] {
			pl.loadProfit += p.freq(ld.Parent)
		}
	}
	if len(w.defsInInterval) == 0 {
		// Whole-web load promotion: all loads become copies at the cost
		// of one preheader load.
		pl.loadProfit = 0
		for _, ld := range w.loads {
			pl.loadProfit += p.freq(ld.Parent)
		}
		pl.loadProfit -= p.freq(iv.Preheader)
		pl.removeStores = false
		return pl
	}
	for _, ref := range pl.loadsAdded {
		pl.loadProfit -= p.freq(ref.at.Parent)
	}
	for _, st := range w.stores {
		pl.storeProfit += p.freq(st.Parent)
	}
	for _, ref := range pl.storesAdded {
		pl.storeProfit -= p.freq(ref.at.Parent)
	}
	if p.config.CountTailStores {
		for _, ts := range pl.tailStores {
			pl.storeProfit -= p.freq(ts.tail)
		}
	}
	pl.removeStores = len(w.stores) > 0 && pl.storeProfit >= 0
	return pl
}

// pruneDominatedStores drops (x, j) when (x, i) exists and i dominates
// j, the paper's redundancy rule.
func (p *promoter) pruneDominatedStores(refs []plannedRef) []plannedRef {
	pos := func(in *ir.Instr) (blk *ir.Block, idx int) {
		blk = in.Parent
		for i, x := range blk.Instrs {
			if x == in {
				return blk, i
			}
		}
		return blk, -1
	}
	dominates := func(a, b *ir.Instr) bool {
		ba, ia := pos(a)
		bb, ib := pos(b)
		if ba == bb {
			return ia < ib
		}
		return p.dom.Dominates(ba, bb)
	}
	var kept []plannedRef
	for i, r := range refs {
		dominated := false
		for j, q := range refs {
			if i == j || q.res != r.res {
				continue
			}
			if dominates(q.at, r.at) && !(dominates(r.at, q.at) && j > i) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, r)
		}
	}
	return kept
}

// findLiveIn returns the web's unique live-in resource: the version used
// inside the interval but defined outside it (or never defined, i.e.
// version 0). NoResource if the web has none.
func (p *promoter) findLiveIn(iv *cfg.Interval, w *web) ir.ResourceID {
	for _, r := range sortResources(w.resources) {
		def, definedInside := w.defsInInterval[r]
		_ = def
		if !definedInside {
			return r
		}
	}
	return ir.NoResource
}

// liveOutResources returns the web versions defined inside the interval
// by a store or phi that have uses outside it.
func (p *promoter) liveOutResources(iv *cfg.Interval, w *web, byStore map[ir.ResourceID]bool, byPhi map[ir.ResourceID]*ir.Instr) map[ir.ResourceID]bool {
	out := make(map[ir.ResourceID]bool)
	for _, b := range p.f.Blocks {
		if iv.Contains(b) {
			continue
		}
		for _, in := range b.Instrs {
			for _, u := range in.MemUses {
				if w.resources[u.Res] && (byStore[u.Res] || byPhi[u.Res] != nil) {
					out[u.Res] = true
				}
			}
		}
	}
	return out
}

// reachingWebDefAt finds the web version of the base live at the end of
// the given block: the nearest definition of the base scanning backward
// through the block and up the dominator tree. Returns NoResource when
// the reaching version does not belong to this web (another web of the
// same base, or a version from outside the interval).
func (p *promoter) reachingWebDefAt(iv *cfg.Interval, w *web, blk *ir.Block) ir.ResourceID {
	for b := blk; b != nil; {
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			for _, d := range b.Instrs[i].MemDefs {
				if p.f.BaseOf(d.Res).ID == w.base {
					if w.resources[d.Res] && w.defsInInterval[d.Res] != nil {
						return d.Res
					}
					return ir.NoResource
				}
			}
		}
		next := p.dom.Idom(b)
		if next == nil || next == b {
			return ir.NoResource
		}
		b = next
	}
	return ir.NoResource
}

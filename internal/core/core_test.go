package core_test

import (
	"reflect"
	"testing"

	"repro/internal/alias"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/pipeline"
	"repro/internal/source"
	"repro/internal/ssa"
	"repro/internal/workload"
)

// promote runs the full pipeline and checks semantic equivalence: the
// promoted program must print the same values, return the same result,
// and leave the same global memory image as the original.
func promote(t *testing.T, src string, opts pipeline.Options) *pipeline.Outcome {
	t.Helper()
	out, err := pipeline.Run(src, opts)
	if err != nil {
		t.Fatalf("pipeline.Run: %v", err)
	}
	if out.Before != nil && out.After != nil {
		if !reflect.DeepEqual(out.Before.Output, out.After.Output) {
			t.Fatalf("output changed by promotion:\nbefore: %v\nafter:  %v\nprogram:\n%s",
				out.Before.Output, out.After.Output, out.Prog)
		}
		if out.Before.ReturnValue != out.After.ReturnValue {
			t.Fatalf("return value changed: %d -> %d", out.Before.ReturnValue, out.After.ReturnValue)
		}
		if !reflect.DeepEqual(out.Before.Globals, out.After.Globals) {
			t.Fatalf("global memory image changed:\nbefore: %v\nafter:  %v\nprogram:\n%s",
				out.Before.Globals, out.After.Globals, out.Prog)
		}
	}
	return out
}

const figure1Src = `
int x;
void foo() { x = x + 1; }
void main() {
	int i;
	for (i = 0; i < 100; i++) x++;
	for (i = 0; i < 10; i++) foo();
	print(x);
}
`

// TestFigure1 reproduces the paper's running example: promotion scoped
// to intervals reduces the first loop's 200 memory operations to a
// preheader load and a tail store, while the call-bearing second loop
// is left alone.
func TestFigure1(t *testing.T) {
	out := promote(t, figure1Src, pipeline.Options{})
	if out.Before.Output[0] != 110 {
		t.Fatalf("program computes %d, want 110", out.Before.Output[0])
	}

	// Dynamic improvement in main: before, the first loop does 100
	// loads + 100 stores; after, 1 load + 1 store around it.
	saved := out.Before.DynMemOps() - out.After.DynMemOps()
	if saved < 190 {
		t.Errorf("promotion saved %d dynamic memory ops, want >= 190 (before=%d after=%d)",
			saved, out.Before.DynMemOps(), out.After.DynMemOps())
	}

	mainStats := out.Stats["main"]
	if mainStats == nil || mainStats.WebsPromoted == 0 {
		t.Errorf("no webs promoted in main: %+v", mainStats)
	}
	if mainStats.StoresDeleted == 0 {
		t.Errorf("store in hot loop not deleted: %+v", mainStats)
	}
}

// TestFigure7ColdCallPath reproduces the paper's Figure 7/8: a loop
// whose only aliased reference sits on a rarely executed path. The
// algorithm promotes x, placing the compensation load and store inside
// the `if (x < 30)` arm.
func TestFigure7ColdCallPath(t *testing.T) {
	src := `
int x;
int log;
void foo() { log = log + x; }
void main() {
	int i;
	for (i = 0; i < 100; i++) {
		x++;
		if (x < 30) foo();
	}
	print(x);
	print(log);
}
`
	out := promote(t, src, pipeline.Options{})
	stats := out.Stats["main"]
	if stats.WebsPromoted == 0 {
		t.Fatalf("cold-call loop not promoted: %+v\n%s", stats, out.Prog)
	}
	// The loop body executes 100 times; the call path far less. After
	// promotion the per-iteration load/store pair is gone — memory ops
	// happen only around calls.
	if out.After.DynMemOps() >= out.Before.DynMemOps() {
		t.Errorf("no dynamic improvement: before=%d after=%d",
			out.Before.DynMemOps(), out.After.DynMemOps())
	}
	// Compensation stores were inserted (before the cold calls).
	if stats.StoresInserted == 0 {
		t.Errorf("expected compensation stores on the cold path: %+v", stats)
	}
}

// TestHotCallLoopRejected: when the call executes every iteration, the
// profit of store removal is negative and the web must not be fully
// promoted (this is the vortex-like no-gain case).
func TestHotCallLoopRejected(t *testing.T) {
	src := `
int x;
void foo() { x = x + 1; }
void main() {
	int i;
	for (i = 0; i < 50; i++) {
		foo();
	}
	print(x);
}
`
	out := promote(t, src, pipeline.Options{})
	// x's only accesses in the loop are through the call; there are no
	// direct loads or stores to replace, so memory traffic must not
	// increase.
	if out.After.DynMemOps() > out.Before.DynMemOps() {
		t.Errorf("promotion added traffic on hot-call loop: before=%d after=%d",
			out.Before.DynMemOps(), out.After.DynMemOps())
	}
}

// TestLoadOnlyWeb: a loop that only reads a global gets the read hoisted
// to one preheader load (the defs == {} branch of Figure 4).
func TestLoadOnlyWeb(t *testing.T) {
	src := `
int limit = 1000;
int total;
void main() {
	int i;
	int s = 0;
	for (i = 0; i < limit; i++) s += i;
	total = s;
	print(s);
}
`
	out := promote(t, src, pipeline.Options{})
	// Before: one load of limit per iteration (1000). After: 1.
	if out.After.DynLoads() > out.Before.DynLoads()/100 {
		t.Errorf("loads not hoisted: before=%d after=%d",
			out.Before.DynLoads(), out.After.DynLoads())
	}
}

// TestAddressTakenLocal: an address-exposed local scalar is promotable
// when the loop has no aliased references to it.
func TestAddressTakenLocal(t *testing.T) {
	src := `
void main() {
	int a = 0;
	int* p = &a;
	*p = 5;
	int i;
	for (i = 0; i < 200; i++) {
		a = a + i;
	}
	print(a);
}
`
	out := promote(t, src, pipeline.Options{})
	if out.After.DynMemOps() >= out.Before.DynMemOps() {
		t.Errorf("address-taken local not promoted: before=%d after=%d",
			out.Before.DynMemOps(), out.After.DynMemOps())
	}
}

// TestStructFieldPromotion: scalar components of structures are
// independent singleton resources and promote independently.
func TestStructFieldPromotion(t *testing.T) {
	src := `
struct counters { int hits; int misses; };
struct counters c;
void main() {
	int i;
	for (i = 0; i < 300; i++) {
		if (i % 3 == 0) { c.hits++; } else { c.misses++; }
	}
	print(c.hits);
	print(c.misses);
}
`
	out := promote(t, src, pipeline.Options{})
	if out.After.DynMemOps()*4 > out.Before.DynMemOps() {
		t.Errorf("struct fields not promoted: before=%d after=%d",
			out.Before.DynMemOps(), out.After.DynMemOps())
	}
}

// TestArrayNotPromoted: array elements are aggregate references and must
// never be promoted; the program must still be correct.
func TestArrayNotPromoted(t *testing.T) {
	src := `
int a[16];
void main() {
	int i;
	for (i = 0; i < 16; i++) a[i] = i;
	int s = 0;
	for (i = 0; i < 16; i++) s += a[i];
	print(s);
}
`
	out := promote(t, src, pipeline.Options{})
	if out.Before.Output[0] != 120 {
		t.Fatalf("wrong sum: %v", out.Before.Output)
	}
}

// TestNestedLoopPropagation: promotion in the inner interval pushes a
// load/store pair into the outer interval, where the outer pass
// promotes them again, leaving memory traffic only at the outermost
// boundary.
func TestNestedLoopPropagation(t *testing.T) {
	src := `
int g;
void main() {
	int i; int j;
	for (i = 0; i < 20; i++) {
		for (j = 0; j < 20; j++) {
			g += i * j;
		}
	}
	print(g);
}
`
	out := promote(t, src, pipeline.Options{})
	// 400 iterations of load+store originally; after double promotion
	// only the outermost boundary touches memory.
	if out.After.DynMemOps() > 10 {
		t.Errorf("nested promotion left %d dynamic memory ops (before %d)",
			out.After.DynMemOps(), out.Before.DynMemOps())
	}
}

// TestPointerHeavyLoopNotBroken: pointer stores through a pointer that
// may alias the promoted variable must block or compensate promotion;
// semantics are the acid test.
func TestPointerHeavyLoopNotBroken(t *testing.T) {
	src := `
int x;
int y;
void main() {
	int* p = &x;
	int i;
	for (i = 0; i < 50; i++) {
		x = x + 1;
		if (i % 10 == 0) { *p = x + 100; }
	}
	print(x);
	print(y);
}
`
	promote(t, src, pipeline.Options{})
}

// TestStaticProfileFallback: the pipeline also works with the static
// loop-depth estimator.
func TestStaticProfileFallback(t *testing.T) {
	out := promote(t, figure1Src, pipeline.Options{StaticProfile: true})
	if out.TotalStats.WebsPromoted == 0 {
		t.Error("static profile promoted nothing")
	}
}

// TestPaperProfitFormula: the exact paper formula (tail stores not
// counted) must also produce a correct program.
func TestPaperProfitFormula(t *testing.T) {
	promote(t, figure1Src, pipeline.Options{PaperProfitFormula: true})
}

// TestBaselineAlgorithm: the Lu–Cooper-style baseline must be
// semantically correct too, and must refuse the cold-call loop the SSA
// algorithm handles.
func TestBaselineAlgorithm(t *testing.T) {
	src := `
int x;
void foo() { x = x - 2; }
void main() {
	int i;
	for (i = 0; i < 100; i++) {
		x++;
		if (x < 30) foo();
	}
	print(x);
}
`
	base := promote(t, src, pipeline.Options{Algorithm: pipeline.AlgBaseline})
	ssa := promote(t, src, pipeline.Options{Algorithm: pipeline.AlgSSA})
	// The baseline cannot touch this loop (a call is present), so the
	// SSA algorithm must beat it.
	if ssa.After.DynMemOps() >= base.After.DynMemOps() {
		t.Errorf("SSA promotion (%d mem ops) should beat baseline (%d) on cold-call loop",
			ssa.After.DynMemOps(), base.After.DynMemOps())
	}
}

// TestBaselineMatchesOnCleanLoop: on a loop with no aliased references
// both algorithms promote fully.
func TestBaselineMatchesOnCleanLoop(t *testing.T) {
	src := `
int x;
void main() {
	int i;
	for (i = 0; i < 100; i++) x++;
	print(x);
}
`
	base := promote(t, src, pipeline.Options{Algorithm: pipeline.AlgBaseline})
	ssaOut := promote(t, src, pipeline.Options{Algorithm: pipeline.AlgSSA})
	if base.After.DynMemOps() != ssaOut.After.DynMemOps() {
		t.Errorf("baseline %d vs ssa %d dynamic mem ops on clean loop",
			base.After.DynMemOps(), ssaOut.After.DynMemOps())
	}
}

// TestWholeFunctionScopeAblation reproduces the paper's section 4.1
// comparison: promoting at whole-function scope (its rejected first
// approach) wins over no promotion but inserts redundant compensation
// traffic around the call-bearing region that interval scoping avoids.
func TestWholeFunctionScopeAblation(t *testing.T) {
	whole := promote(t, figure1Src, pipeline.Options{WholeFunctionScope: true})
	interval := promote(t, figure1Src, pipeline.Options{})
	if whole.After.DynMemOps() >= whole.Before.DynMemOps() {
		t.Errorf("whole-function scope should still improve: %d -> %d",
			whole.Before.DynMemOps(), whole.After.DynMemOps())
	}
	if interval.After.DynMemOps() >= whole.After.DynMemOps() {
		t.Errorf("interval scope (%d ops) must beat whole-function scope (%d ops)",
			interval.After.DynMemOps(), whole.After.DynMemOps())
	}
}

// TestWholeFunctionScopeSemantics: the rejected approach must still be
// correct on every workload.
func TestWholeFunctionScopeSemantics(t *testing.T) {
	for _, w := range workload.Suite() {
		t.Run(w.Name, func(t *testing.T) {
			promote(t, w.Src, pipeline.Options{WholeFunctionScope: true})
		})
	}
}

// TestMultiExitLoop: a loop left through break as well as the normal
// exit needs a tail store per exit edge.
func TestMultiExitLoop(t *testing.T) {
	src := `
int x;
void main() {
	int i;
	for (i = 0; i < 1000; i++) {
		x += i;
		if (x > 900) break;
	}
	print(x);
	print(i);
}
`
	out := promote(t, src, pipeline.Options{})
	if out.Stats["main"].WebsPromoted == 0 {
		t.Fatalf("multi-exit loop not promoted: %+v", out.Stats["main"])
	}
	if out.After.DynMemOps() >= out.Before.DynMemOps()/2 {
		t.Errorf("weak improvement on multi-exit loop: %d -> %d",
			out.Before.DynMemOps(), out.After.DynMemOps())
	}
}

// TestDoWhileLoop: the do-while shape (body before test) promotes too.
func TestDoWhileLoop(t *testing.T) {
	src := `
int x;
void main() {
	int i = 0;
	do {
		x = x + 2;
		i++;
	} while (i < 250);
	print(x);
}
`
	out := promote(t, src, pipeline.Options{})
	if out.After.DynMemOps() > 10 {
		t.Errorf("do-while loop left %d memory ops (before %d)",
			out.After.DynMemOps(), out.Before.DynMemOps())
	}
}

// TestPromotionKeepsSSAValid: for every workload, the promoted program
// must still satisfy the full SSA discipline before destruction.
func TestPromotionKeepsSSAValid(t *testing.T) {
	for _, w := range workload.Suite() {
		t.Run(w.Name, func(t *testing.T) {
			prog, err := source.Compile(w.Src)
			if err != nil {
				t.Fatal(err)
			}
			if err := alias.Analyze(prog); err != nil {
				t.Fatal(err)
			}
			res, err := interp.Run(prog, interp.Options{CollectProfile: true})
			if err != nil {
				t.Fatal(err)
			}
			prog2, err := source.Compile(w.Src)
			if err != nil {
				t.Fatal(err)
			}
			if err := alias.Analyze(prog2); err != nil {
				t.Fatal(err)
			}
			for _, f := range prog2.Funcs {
				forest, err := cfg.Normalize(f)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ssa.Build(f); err != nil {
					t.Fatal(err)
				}
				if _, err := core.PromoteFunction(f, forest, core.Config{
					Profile:         res.Profile.ForFunc(f.Name),
					CountTailStores: true,
				}); err != nil {
					t.Fatal(err)
				}
				if err := ssa.VerifyDominance(f); err != nil {
					t.Fatalf("%s: post-promotion SSA invalid: %v\n%s", f.Name, err, f)
				}
			}
		})
	}
}

// TestWebSplittingAcrossCalls reproduces the paper's section 4.2
// example: sequential calls split one variable into multiple webs, each
// considered independently, so a later call does not block promotion of
// an earlier region.
func TestWebSplittingAcrossCalls(t *testing.T) {
	src := `
int x;
int sink;
void foo() { sink = sink + x; }
void bar() { sink = sink * 2 + x; }
void main() {
	int i;
	for (i = 0; i < 400; i++) x += i;
	foo();
	for (i = 0; i < 400; i++) x += 3;
	bar();
	print(x);
	print(sink);
}
`
	out := promote(t, src, pipeline.Options{})
	stats := out.Stats["main"]
	// Both hot loops promote despite the interleaved calls.
	if stats.WebsPromoted < 2 {
		t.Errorf("expected both loop webs promoted: %+v", stats)
	}
	if out.After.DynMemOps() > out.Before.DynMemOps()/10 {
		t.Errorf("weak improvement: %d -> %d", out.Before.DynMemOps(), out.After.DynMemOps())
	}
}

// TestPressureBudget: a budget of one web still promotes the single
// most profitable web, keeps semantics, and bounds the register
// pressure increase relative to the unlimited run.
func TestPressureBudget(t *testing.T) {
	src := `
int a; int b; int c; int d;
void main() {
	int i;
	for (i = 0; i < 200; i++) {
		a += i; b += a; c += b; d += c;
	}
	print(a + b + c + d);
}
`
	limited := promote(t, src, pipeline.Options{MaxPromotedWebs: 1})
	unlimited := promote(t, src, pipeline.Options{})
	s := limited.Stats["main"]
	if got := s.WebsPromoted + s.WebsLoadOnly; got != 1 {
		t.Fatalf("budget of 1 promoted %d webs: %+v", got, s)
	}
	// Budgeted promotion still improves, but less than unlimited.
	if limited.After.DynMemOps() >= limited.Before.DynMemOps() {
		t.Errorf("budgeted promotion did not improve: %d -> %d",
			limited.Before.DynMemOps(), limited.After.DynMemOps())
	}
	if unlimited.After.DynMemOps() >= limited.After.DynMemOps() {
		t.Errorf("unlimited (%d ops) should beat budgeted (%d ops)",
			unlimited.After.DynMemOps(), limited.After.DynMemOps())
	}
}

// TestPressureBudgetPicksBestWeb: with two candidate webs of very
// different heat in the same interval, the budget must go to the
// hotter one (within an interval, webs are considered in descending
// profit order).
func TestPressureBudgetPicksBestWeb(t *testing.T) {
	src := `
int hot; int cold;
void main() {
	int i;
	for (i = 0; i < 1000; i++) {
		hot += i;
		if (i % 250 == 0) cold += i;
	}
	print(hot); print(cold);
}
`
	out := promote(t, src, pipeline.Options{MaxPromotedWebs: 1})
	// hot's ~2000 operations must be the ones removed; cold's ~8 may
	// stay.
	if out.After.DynMemOps() > 30 {
		t.Errorf("budget picked the wrong web: %d ops remain (before %d)",
			out.After.DynMemOps(), out.Before.DynMemOps())
	}
}

// TestStatsAccumulate checks the Stats plumbing.
func TestStatsAccumulate(t *testing.T) {
	var s core.Stats
	s.Add(core.Stats{WebsConsidered: 2, LoadsReplaced: 3})
	s.Add(core.Stats{WebsConsidered: 1, StoresDeleted: 4})
	if s.WebsConsidered != 3 || s.LoadsReplaced != 3 || s.StoresDeleted != 4 {
		t.Errorf("Stats.Add broken: %+v", s)
	}
}

// Package core implements the paper's primary contribution: interval-
// scoped, profile-driven scalar register promotion on SSA form (Sastry
// and Ju, PLDI 1998).
//
// The driver walks the function's interval tree bottom-up. Within an
// interval, the unit of promotion is a memory SSA web — the equivalence
// class of singleton resource versions connected by memphi instructions
// (built with union-find, the paper's Figure 3). For each web the pass
// computes, from profile frequencies, the profit of replacing the web's
// loads and stores with register traffic:
//
//	profit = freq(replaceable loads) + freq(deletable stores)
//	       - freq(loads added at phi leaves)
//	       - freq(stores added for aliased loads and at interval tails)
//
// When promotion is profitable, loads are replaced by copies from
// registers materialized along the web's phi structure
// (materializeStoreValue, Figure 6), compensation loads are placed at
// phi leaves on the paths carrying aliased definitions, compensation
// stores are placed before aliased loads and in interval tail blocks,
// and the original stores die during the incremental SSA update for the
// cloned store definitions. Where removing stores alone is
// unprofitable, only loads are replaced and the variable lives in both
// memory and a register. Inner intervals leave dummy aliased loads in
// their preheaders so outer intervals keep memory consistent at the
// boundary.
package core

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/profile"
	"repro/internal/ssa"
)

// Scope selects the promotion scope.
type Scope int

const (
	// ScopeIntervals promotes within each interval of the interval
	// tree, bottom-up — the paper's second approach and its actual
	// algorithm.
	ScopeIntervals Scope = iota
	// ScopeWholeFunction promotes once over the whole function body
	// (the root pseudo-interval) — the paper's first approach, kept as
	// an ablation: it wins on hot loops but inserts redundant loads and
	// stores around every aliased reference elsewhere in the function,
	// which is exactly why the paper rejects it.
	ScopeWholeFunction
)

// Config controls the promotion pass.
type Config struct {
	// Profile supplies block frequencies; required.
	Profile *profile.FuncProfile
	// Scope selects interval-based promotion (the paper's algorithm,
	// default) or whole-function-scope promotion (its rejected first
	// approach, for the ablation benchmarks).
	Scope Scope
	// CountTailStores includes the frequency of stores inserted at
	// interval tails in the store-removal profit. The paper's printed
	// formula omits them; counting them (the default used by the
	// benchmark harness) is strictly safer. Disable to match the
	// paper's formula exactly — the ablation benchmarks compare both.
	CountTailStores bool
	// MaxPromotedWebs bounds the number of webs promoted (fully or
	// load-only) per function, 0 meaning unlimited. Each promoted web
	// adds a long live range, so this is a crude register pressure
	// budget — the knob the paper's conclusion says a production
	// compiler would need. Within an interval, webs are considered in
	// descending profit order when a budget is set; across intervals
	// the budget is spent greedily in the bottom-up traversal order
	// (an inner interval's promotion cannot be deferred, because the
	// enclosing interval's planning depends on it).
	MaxPromotedWebs int
	// KeepCleanupResidue skips the final copy-propagation/DCE sweep,
	// leaving the transformation residue visible (used by tests that
	// inspect intermediate structure).
	KeepCleanupResidue bool
	// PressureBudget, when positive, makes promotion pressure-aware: a
	// web is promoted only if, in every block its promoted register
	// spans, the pre-promotion register pressure (BlockPressure) plus
	// the registers charged by promotions so far plus this web's one
	// register stays within the budget. Webs that do not fit are demoted
	// (left in memory, counted in Stats.WebsDemoted), and within an
	// interval webs are considered in profit-per-pressure order — the
	// cheapest pressure per unit of saved memory traffic first — instead
	// of raw profit order. The budget is a heuristic, not a hard bound
	// on regalloc colors; PromoteUnderPressure wraps it in a
	// trial-and-measure loop for the hard guarantee.
	PressureBudget int
	// BlockPressure is the per-block baseline MaxLive, indexed by
	// ir.BlockID (liveness.Compute on the pre-promotion SSA form).
	// Required when PressureBudget > 0; blocks beyond the slice are
	// treated as pressure 0.
	BlockPressure []int
	// Dom and DF optionally supply prebuilt analyses of f's current CFG
	// (the pipeline passes them from its analysis cache). When Dom is
	// nil or DF is invalid, PromoteFunction computes its own.
	Dom *cfg.DomTree
	DF  cfg.DomFrontiers
}

// Stats reports what promotion did to one function.
type Stats struct {
	WebsConsidered  int
	WebsPromoted    int // full promotions (stores removed or no stores existed)
	WebsLoadOnly    int // partial: loads replaced, stores kept
	WebsRejected    int // unprofitable
	WebsDemoted     int // profitable but over the pressure budget
	LoadsReplaced   int
	StoresDeleted   int
	LoadsInserted   int
	StoresInserted  int
	DummyLoadsAdded int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.WebsConsidered += other.WebsConsidered
	s.WebsPromoted += other.WebsPromoted
	s.WebsLoadOnly += other.WebsLoadOnly
	s.WebsRejected += other.WebsRejected
	s.WebsDemoted += other.WebsDemoted
	s.LoadsReplaced += other.LoadsReplaced
	s.StoresDeleted += other.StoresDeleted
	s.LoadsInserted += other.LoadsInserted
	s.StoresInserted += other.StoresInserted
	s.DummyLoadsAdded += other.DummyLoadsAdded
}

// PromoteFunction runs register promotion over f, which must be in SSA
// form with memory resources annotated, on the normalized CFG described
// by forest. It returns statistics about the transformation.
func PromoteFunction(f *ir.Function, forest *cfg.Forest, config Config) (*Stats, error) {
	if config.Profile == nil {
		return nil, fmt.Errorf("core: promotion requires a profile")
	}
	p := &promoter{
		f:      f,
		forest: forest,
		config: config,
		stats:  &Stats{},
	}
	p.dom = config.Dom
	if p.dom == nil {
		p.dom = cfg.BuildDomTree(f)
	}
	p.df = config.DF
	if !p.df.Valid() {
		p.df = cfg.BuildDomFrontiers(p.dom)
	}
	if config.PressureBudget > 0 {
		p.extra = make([]int, f.BlockIDBound())
	}

	var err error
	if config.Scope == ScopeWholeFunction {
		// The paper's first approach: one promotion pass over the whole
		// function body, ignoring interval structure.
		err = p.promoteInInterval(forest.Root)
	} else {
		forest.Root.Walk(func(iv *cfg.Interval) {
			if err != nil || iv.Root {
				return
			}
			if e := p.promoteInInterval(iv); e != nil {
				err = e
			}
		})
	}
	if err != nil {
		return nil, err
	}

	// The paper's cleanup(): dummy aliased loads served their purpose;
	// delete them, then sweep the copy/dead-code residue.
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			if in.Op == ir.OpDummyLoad {
				b.Remove(in)
			}
		}
	}
	if !config.KeepCleanupResidue {
		opt.Cleanup(f)
	}
	return p.stats, nil
}

type promoter struct {
	f      *ir.Function
	forest *cfg.Forest
	config Config
	stats  *Stats
	dom    *cfg.DomTree
	df     cfg.DomFrontiers
	// extra, indexed by block ID, counts the registers already charged
	// to each block by promotions in this pass (only allocated when a
	// pressure budget is set).
	extra []int
}

// freq returns the profile frequency of the block containing the given
// instruction insertion point.
func (p *promoter) freq(b *ir.Block) float64 { return p.config.Profile.BlockFreq(b) }

func (p *promoter) promoteInInterval(iv *cfg.Interval) error {
	webs := p.constructSSAWebs(iv)
	if p.config.MaxPromotedWebs > 0 || p.config.PressureBudget > 0 {
		// Under a budget, spend it on the best webs first: by raw profit
		// when only the web count is capped, by profit per unit of
		// pressure cost when a pressure budget is set (a web referenced
		// only in cold blocks is cheap to carry; one spanning the hot
		// loop body is not).
		plans := make(map[*web]*webPlan, len(webs))
		for _, w := range webs {
			plans[w] = p.planWeb(iv, w)
		}
		score := func(w *web) float64 {
			pr := plans[w].profit()
			if p.config.PressureBudget <= 0 {
				return pr
			}
			cost := p.pressureCost(iv, w)
			if cost <= 0 {
				cost = 1
			}
			return pr / cost
		}
		sort.SliceStable(webs, func(i, j int) bool {
			si, sj := score(webs[i]), score(webs[j])
			if si != sj {
				return si > sj
			}
			return plans[webs[i]].profit() > plans[webs[j]].profit()
		})
	}
	for _, w := range webs {
		if err := p.promoteInWeb(iv, w); err != nil {
			return err
		}
	}
	return nil
}

// spanBlocks returns the blocks a web's promoted register is charged
// to: every block referencing the web, plus the interval boundary (the
// preheader holds the canonical load and the header carries the value
// in). Blocks the register merely passes through are not charged — the
// budget is a placement heuristic; PromoteUnderPressure's trial loop
// supplies the hard color guarantee.
func (p *promoter) spanBlocks(iv *cfg.Interval, w *web) []*ir.Block {
	seen := make(map[ir.BlockID]bool)
	var span []*ir.Block
	add := func(b *ir.Block) {
		if b != nil && !seen[b.ID] {
			seen[b.ID] = true
			span = append(span, b)
		}
	}
	if !iv.Root {
		add(iv.Preheader)
		add(iv.Header)
	}
	for _, in := range w.loads {
		add(in.Parent)
	}
	for _, in := range w.stores {
		add(in.Parent)
	}
	for _, r := range w.aliasedLoads {
		add(r.in.Parent)
	}
	for _, r := range w.aliasedDefs {
		add(r.in.Parent)
	}
	for _, in := range w.memPhis {
		add(in.Parent)
	}
	return span
}

// pressureCost is the spill-cost weight of carrying the web in a
// register: profile frequency summed over the span (the static
// estimator's frequency is 10^loop-depth, so this is exactly the
// loop-depth × execution-frequency weight of the classic spill metric).
func (p *promoter) pressureCost(iv *cfg.Interval, w *web) float64 {
	cost := 0.0
	for _, b := range p.spanBlocks(iv, w) {
		cost += p.freq(b)
	}
	return cost
}

// fitsPressure reports whether promoting one more register for w keeps
// every spanned block within the pressure budget.
func (p *promoter) fitsPressure(iv *cfg.Interval, w *web) bool {
	if p.config.PressureBudget <= 0 {
		return true
	}
	for _, b := range p.spanBlocks(iv, w) {
		base := 0
		if int(b.ID) < len(p.config.BlockPressure) {
			base = p.config.BlockPressure[b.ID]
		}
		extra := 0
		if int(b.ID) < len(p.extra) {
			extra = p.extra[b.ID]
		}
		if base+extra+1 > p.config.PressureBudget {
			return false
		}
	}
	return true
}

// chargePressure records w's promoted register against its span.
func (p *promoter) chargePressure(iv *cfg.Interval, w *web) {
	if p.config.PressureBudget <= 0 {
		return
	}
	for _, b := range p.spanBlocks(iv, w) {
		if int(b.ID) < len(p.extra) {
			p.extra[b.ID]++
		}
	}
}

// budgetExhausted reports whether the pressure budget forbids another
// promotion.
func (p *promoter) budgetExhausted() bool {
	return p.config.MaxPromotedWebs > 0 &&
		p.stats.WebsPromoted+p.stats.WebsLoadOnly >= p.config.MaxPromotedWebs
}

// promoteInWeb is the paper's Figure 4.
func (p *promoter) promoteInWeb(iv *cfg.Interval, w *web) error {
	p.stats.WebsConsidered++

	plan := p.planWeb(iv, w)
	if plan.profit() < 0 || p.budgetExhausted() {
		p.stats.WebsRejected++
		// An unpromoted web with references still needs the parent to
		// keep memory valid at the interval boundary.
		p.addDummyLoad(iv, w, plan)
		return nil
	}
	if !p.fitsPressure(iv, w) {
		// Profitable, but its register would push some spanned block
		// over the pressure budget: partially demote — the web stays in
		// memory — rather than blow the cap.
		p.stats.WebsDemoted++
		p.addDummyLoad(iv, w, plan)
		return nil
	}

	if len(w.defsInInterval) == 0 {
		// No definitions: one load in the preheader, every load in the
		// web becomes a copy.
		p.promoteLoadOnlyWeb(iv, w, plan)
		p.stats.WebsPromoted++
		p.chargePressure(iv, w)
		if len(w.aliasedLoads) > 0 {
			p.addDummyLoad(iv, w, plan)
		}
		return nil
	}

	t := &transformer{p: p, iv: iv, w: w, plan: plan, vrMap: make(map[ir.ResourceID]ir.RegID)}
	t.initVRMap()
	t.insertLoadsAtPhiLeaves()
	t.replaceLoadsByCopies()

	if plan.removeStores {
		t.insertStoresForAliasedLoads()
		t.insertStoresAtIntervalTails()
		if err := t.updateSSAAndDeleteStores(); err != nil {
			return err
		}
		p.stats.WebsPromoted++
	} else {
		p.stats.WebsLoadOnly++
	}
	p.chargePressure(iv, w)
	if len(w.aliasedLoads) > 0 {
		p.addDummyLoad(iv, w, plan)
	}
	return nil
}

// promoteLoadOnlyWeb handles the defs == {} branch of Figure 4.
func (p *promoter) promoteLoadOnlyWeb(iv *cfg.Interval, w *web, plan *webPlan) {
	pre := iv.Preheader
	liveIn := plan.liveIn
	t := p.f.NewReg(p.f.BaseOf(liveIn).Name)
	ld := ir.NewInstr(ir.OpLoad, t)
	ld.Loc = p.f.Res(liveIn).Loc
	ld.MemUses = []ir.MemRef{{Res: liveIn}}
	if iv.Root {
		// Whole-function scope: the "preheader" is the entry block
		// itself, and the web's loads may sit anywhere in it — the
		// canonical load must come first to dominate them all.
		pre.InsertAfterPhis(ld)
	} else {
		// The preheader is strictly outside the interval, so its end
		// dominates every block (and hence every load) inside.
		pre.InsertBeforeTerm(ld)
	}
	p.stats.LoadsInserted++

	for _, ref := range w.loads {
		replaceWithCopy(ref, ir.RegVal(t))
		p.stats.LoadsReplaced++
	}
}

// addDummyLoad leaves the paper's dummy aliased load in the interval
// preheader, referencing the web's live-in resource, so the parent
// interval treats the boundary as an aliased load site. Webs with no
// live-in value (everything they touch is defined inside) need none.
func (p *promoter) addDummyLoad(iv *cfg.Interval, w *web, plan *webPlan) {
	if iv.Root {
		return // no enclosing interval to inform
	}
	if plan.liveIn == ir.NoResource {
		return
	}
	if len(w.loads) == 0 && len(w.stores) == 0 && len(w.aliasedLoads) == 0 {
		return
	}
	dummy := ir.NewInstr(ir.OpDummyLoad, ir.NoReg)
	dummy.MemUses = []ir.MemRef{{Res: plan.liveIn, Aliased: true}}
	iv.Preheader.InsertBeforeTerm(dummy)
	p.stats.DummyLoadsAdded++
}

// replaceWithCopy rewrites a load instruction in place into a copy of
// the given value, clearing its memory reference.
func replaceWithCopy(load *ir.Instr, v ir.Value) {
	load.Op = ir.OpCopy
	load.Args = []ir.Value{v}
	load.Loc = ir.MemLoc{}
	load.MemUses = nil
}

// sortResources returns the web's resources in deterministic order.
func sortResources(set map[ir.ResourceID]bool) []ir.ResourceID {
	out := make([]ir.ResourceID, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

var _ = ssa.PruneTrivialPhis // keep import grouping honest during refactors

package core

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/source"
	"repro/internal/ssa"
)

// prep compiles to SSA and returns a promoter ready for white-box
// inspection of web construction and planning. The profile is measured
// by a training run on the normalized pre-SSA program, matching the
// real pipeline (the static estimator cannot see cold branches).
func prep(t *testing.T, src string) (*promoter, *cfg.Forest) {
	t.Helper()
	prog, err := source.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatal(err)
	}
	var forests []*cfg.Forest
	for _, fn := range prog.Funcs {
		forest, err := cfg.Normalize(fn)
		if err != nil {
			t.Fatal(err)
		}
		if fn.Name == "main" {
			forests = append(forests, forest)
		}
	}
	res, err := interp.Run(prog, interp.Options{CollectProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	forest := forests[0]
	if _, err := ssa.Build(f); err != nil {
		t.Fatal(err)
	}
	p := &promoter{
		f:      f,
		forest: forest,
		config: Config{Profile: res.Profile.ForFunc("main"), CountTailStores: true},
		stats:  &Stats{},
	}
	p.dom = cfg.BuildDomTree(f)
	p.df = cfg.BuildDomFrontiers(p.dom)
	return p, forest
}

// websOfBase filters webs in the interval to one base name.
func websOfBase(p *promoter, iv *cfg.Interval, name string) []*web {
	var out []*web
	for _, w := range p.constructSSAWebs(iv) {
		if p.f.Res(w.base).Name == name {
			out = append(out, w)
		}
	}
	return out
}

// TestWebsSplitAtCalls reproduces the paper's section 4.2 example: in
// straight-line code `x = ..; foo(); bar();` the versions of x form
// three separate webs, each an independent promotion unit.
func TestWebsSplitAtCalls(t *testing.T) {
	p, forest := prep(t, `
int x;
int sink;
void foo() { sink += x; }
void bar() { sink *= x; }
void main() {
	x = 1;
	foo();
	bar();
}
`)
	webs := websOfBase(p, forest.Root, "x")
	if len(webs) < 3 {
		t.Fatalf("straight-line call-split produced %d webs, want >= 3", len(webs))
	}
	// No phis anywhere, so every web is a singleton class.
	for _, w := range webs {
		if len(w.memPhis) != 0 {
			t.Errorf("web has phis in phi-free code")
		}
		if len(w.resources) != 1 {
			t.Errorf("web spans %d versions without phis", len(w.resources))
		}
	}
}

// TestWebsJoinThroughPhis: inside a loop, the header phi unions the
// live-in version, the store version, and itself into one web.
func TestWebsJoinThroughPhis(t *testing.T) {
	p, forest := prep(t, `
int x;
void main() {
	int i;
	for (i = 0; i < 10; i++) x++;
	print(x);
}
`)
	var loop *cfg.Interval
	forest.Root.Walk(func(iv *cfg.Interval) {
		if !iv.Root {
			loop = iv
		}
	})
	webs := websOfBase(p, loop, "x")
	if len(webs) != 1 {
		t.Fatalf("loop produced %d webs for x, want 1", len(webs))
	}
	w := webs[0]
	if len(w.memPhis) != 1 {
		t.Errorf("web has %d phis, want the header phi", len(w.memPhis))
	}
	if len(w.loads) != 1 || len(w.stores) != 1 {
		t.Errorf("web refs: %d loads, %d stores; want 1 and 1", len(w.loads), len(w.stores))
	}
	// resources: live-in, phi target, store version.
	if len(w.resources) != 3 {
		t.Errorf("web spans %d versions, want 3", len(w.resources))
	}
}

// TestPlanLoadsAddedLeaves: the plan places a load exactly at each
// non-store leaf of the web's phi structure.
func TestPlanLoadsAddedLeaves(t *testing.T) {
	p, forest := prep(t, `
int x;
int sink;
void foo() { sink += x; }
void main() {
	int i;
	for (i = 0; i < 100; i++) {
		x++;
		if (x == 500) foo();
	}
	print(x);
}
`)
	var loop *cfg.Interval
	forest.Root.Walk(func(iv *cfg.Interval) {
		if !iv.Root && loop == nil {
			loop = iv
		}
	})
	webs := websOfBase(p, loop, "x")
	if len(webs) != 1 {
		t.Fatalf("webs = %d, want 1", len(webs))
	}
	plan := p.planWeb(loop, webs[0])

	// Leaves: the live-in version (load in the preheader) and the
	// call-defined version (reload on the call path).
	if len(plan.loadsAdded) != 2 {
		t.Fatalf("loads-added = %d sites, want 2", len(plan.loadsAdded))
	}
	sawPreheader, sawCallPath := false, false
	for _, ref := range plan.loadsAdded {
		res := p.f.Res(ref.res)
		if res.Version == 0 {
			sawPreheader = true
			if ref.at.Parent != loop.Preheader {
				t.Errorf("live-in load placed in %v, want preheader %v", ref.at.Parent, loop.Preheader)
			}
		} else {
			sawCallPath = true
		}
	}
	if !sawPreheader || !sawCallPath {
		t.Errorf("leaf classification wrong: preheader=%v callpath=%v", sawPreheader, sawCallPath)
	}

	// The store feeds the call path: one compensation store planned
	// (plus none at the hot back edge beyond it).
	if len(plan.storesAdded) == 0 {
		t.Error("no stores-added despite an aliased load in the web")
	}
	// Tail store for the live-out value.
	if len(plan.tailStores) != 1 {
		t.Errorf("tail stores = %d, want 1", len(plan.tailStores))
	}
	if !plan.removeStores {
		t.Error("cold call path: store removal should be profitable")
	}
}

// TestPlanLiveInDetection: the unique live-in version is the one
// defined outside the interval.
func TestPlanLiveIn(t *testing.T) {
	p, forest := prep(t, `
int x;
void main() {
	x = 41;
	int i;
	for (i = 0; i < 10; i++) x++;
	print(x);
}
`)
	var loop *cfg.Interval
	forest.Root.Walk(func(iv *cfg.Interval) {
		if !iv.Root {
			loop = iv
		}
	})
	webs := websOfBase(p, loop, "x")
	plan := p.planWeb(loop, webs[0])
	if plan.liveIn == ir.NoResource {
		t.Fatal("no live-in found")
	}
	res := p.f.Res(plan.liveIn)
	// The live-in is the version the pre-loop store defined — defined
	// outside the loop, used inside via the header phi.
	if def := webs[0].defsInInterval[plan.liveIn]; def != nil {
		t.Errorf("live-in %s is defined inside the interval", res)
	}
}

// TestPruneDominatedStores: a store insertion point dominated by
// another for the same resource is dropped.
func TestPruneDominatedStores(t *testing.T) {
	p, _ := prep(t, `
int x;
void main() {
	x = 1;
	print(x);
}
`)
	f := p.f
	// Fabricate two insertion points in the same block: the earlier
	// dominates the later.
	entry := f.Entry()
	first := entry.Instrs[0]
	last := entry.Term()
	refs := []plannedRef{
		{res: 1, at: last},
		{res: 1, at: first},
		{res: 2, at: last}, // different resource: kept
	}
	kept := p.pruneDominatedStores(refs)
	if len(kept) != 2 {
		t.Fatalf("kept %d refs, want 2: %+v", len(kept), kept)
	}
	for _, r := range kept {
		if r.res == 1 && r.at != first {
			t.Error("kept the dominated insertion point")
		}
	}
}

// TestWebsDeterministic: web construction yields the same order across
// runs (maps must not leak iteration order).
func TestWebsDeterministic(t *testing.T) {
	src := `
int a; int b; int c;
void main() {
	int i;
	for (i = 0; i < 10; i++) { a++; b += a; c = c ^ b; }
	print(a + b + c);
}
`
	shape := func() []string {
		p, forest := prep(t, src)
		var loop *cfg.Interval
		forest.Root.Walk(func(iv *cfg.Interval) {
			if !iv.Root {
				loop = iv
			}
		})
		var names []string
		for _, w := range p.constructSSAWebs(loop) {
			names = append(names, p.f.Res(w.base).Name)
		}
		return names
	}
	a := shape()
	for try := 0; try < 5; try++ {
		b := shape()
		if len(a) != len(b) {
			t.Fatalf("web count varies: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("web order varies: %v vs %v", a, b)
			}
		}
	}
}

// Package report regenerates the paper's evaluation tables over the
// workload suite: static memory-operation counts (Table 1), dynamic
// memory-operation counts (Table 2), and register pressure (Table 3),
// plus the ablation comparisons DESIGN.md calls for (SSA vs loop-based
// baseline, measured vs static profile, profit-formula variants). The
// same functions back cmd/rpbench and the root benchmark harness.
package report

import (
	"fmt"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/regalloc"
	"repro/internal/workload"
)

// Options configures table generation.
type Options struct {
	// Algorithm selects the promotion pass (default the paper's).
	Algorithm pipeline.Algorithm
	// StaticProfile switches the promoter to the loop-depth estimator.
	StaticProfile bool
	// PaperProfitFormula uses the exact printed profit formula.
	PaperProfitFormula bool
	// WholeFunctionScope promotes at whole-function scope (the paper's
	// rejected first approach).
	WholeFunctionScope bool
	// PreMemOpts runs the memory-SSA scalar optimizations before
	// promotion.
	PreMemOpts bool
	// Check selects the pipeline's self-checking level (stage-boundary
	// verification, paranoid semantic differential).
	Check pipeline.CheckLevel
	// FailFast aborts on the first stage failure instead of degrading
	// the affected function.
	FailFast bool
	// Workers bounds the pipeline's per-function transform concurrency
	// (0 = GOMAXPROCS, 1 = sequential); results are identical for any
	// value.
	Workers int
}

func (o Options) pipeline(skipMeasure bool) pipeline.Options {
	return pipeline.Options{
		Algorithm:          o.Algorithm,
		StaticProfile:      o.StaticProfile,
		PaperProfitFormula: o.PaperProfitFormula,
		WholeFunctionScope: o.WholeFunctionScope,
		PreMemOpts:         o.PreMemOpts,
		SkipMeasurement:    skipMeasure,
		Check:              o.Check,
		FailFast:           o.FailFast,
		Workers:            o.Workers,
	}
}

// Row1 is one Table 1 row: static counts of singleton loads and stores
// before and after promotion. Positive improvement percentages mean
// fewer operations; the paper's rows are mostly negative (statics grow
// because promotion inserts compensation code on cold paths).
type Row1 struct {
	Name         string
	LoadsBefore  int
	LoadsAfter   int
	StoresBefore int
	StoresAfter  int
}

// LoadImprovement returns the static load improvement in percent.
func (r Row1) LoadImprovement() float64 { return improvement(r.LoadsBefore, r.LoadsAfter) }

// StoreImprovement returns the static store improvement in percent.
func (r Row1) StoreImprovement() float64 { return improvement(r.StoresBefore, r.StoresAfter) }

// TotalImprovement returns the static total improvement in percent.
func (r Row1) TotalImprovement() float64 {
	return improvement(r.LoadsBefore+r.StoresBefore, r.LoadsAfter+r.StoresAfter)
}

func improvement(before, after int) float64 {
	if before == 0 {
		return 0
	}
	return float64(before-after) / float64(before) * 100
}

// Table1 computes static memory operation counts for every workload.
func Table1(opts Options) ([]Row1, error) {
	var rows []Row1
	for _, w := range workload.Suite() {
		out, err := pipeline.Run(w.Src, opts.pipeline(true))
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", w.Name, err)
		}
		rows = append(rows, Row1{
			Name:         w.Name,
			LoadsBefore:  out.StaticBefore.Loads,
			LoadsAfter:   out.StaticAfter.Loads,
			StoresBefore: out.StaticBefore.Stores,
			StoresAfter:  out.StaticAfter.Stores,
		})
	}
	return rows, nil
}

// Row2 is one Table 2 row: dynamic counts of singleton loads and stores
// before and after promotion.
type Row2 struct {
	Name         string
	LoadsBefore  int64
	LoadsAfter   int64
	StoresBefore int64
	StoresAfter  int64
}

// LoadImprovement returns the dynamic load improvement in percent.
func (r Row2) LoadImprovement() float64 {
	return improvement64(r.LoadsBefore, r.LoadsAfter)
}

// StoreImprovement returns the dynamic store improvement in percent.
func (r Row2) StoreImprovement() float64 {
	return improvement64(r.StoresBefore, r.StoresAfter)
}

// TotalImprovement returns the dynamic total improvement in percent.
func (r Row2) TotalImprovement() float64 {
	return improvement64(r.LoadsBefore+r.StoresBefore, r.LoadsAfter+r.StoresAfter)
}

func improvement64(before, after int64) float64 {
	if before == 0 {
		return 0
	}
	return float64(before-after) / float64(before) * 100
}

// Table2 measures dynamic memory operation counts for every workload.
func Table2(opts Options) ([]Row2, error) {
	var rows []Row2
	for _, w := range workload.Suite() {
		out, err := pipeline.Run(w.Src, opts.pipeline(false))
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", w.Name, err)
		}
		rows = append(rows, Row2{
			Name:         w.Name,
			LoadsBefore:  out.Before.DynLoads(),
			LoadsAfter:   out.After.DynLoads(),
			StoresBefore: out.Before.DynStores(),
			StoresAfter:  out.After.DynStores(),
		})
	}
	return rows, nil
}

// MeanTotalImprovement returns the arithmetic mean of the per-benchmark
// total improvements — the paper's headline "~12% of memory operations"
// style number.
func MeanTotalImprovement(rows []Row2) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.TotalImprovement()
	}
	return sum / float64(len(rows))
}

// Row3 is one Table 3 row: colors needed to color the register
// interference graph of one routine, before and after promotion.
type Row3 struct {
	Benchmark    string
	Routine      string
	ColorsBefore int
	ColorsAfter  int
}

// Table3 measures register pressure on the routines promotion touched,
// mirroring the paper's "routines that had opportunities for
// promotion".
func Table3(opts Options) ([]Row3, error) {
	var rows []Row3
	for _, w := range workload.Suite() {
		unopt, err := pipeline.Run(w.Src, pipeline.Options{
			Algorithm:       pipeline.AlgNone,
			SkipMeasurement: true,
		})
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", w.Name, err)
		}
		opt, err := pipeline.Run(w.Src, opts.pipeline(true))
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", w.Name, err)
		}
		beforeRes, _ := regalloc.AllocateProgram(unopt.Prog)
		afterRes, names := regalloc.AllocateProgram(opt.Prog)
		for _, fn := range names {
			stats := opt.Stats[fn]
			if stats == nil || stats.WebsPromoted+stats.WebsLoadOnly == 0 {
				continue // the paper selects routines with promotion opportunities
			}
			b, a := beforeRes[fn], afterRes[fn]
			if b == nil || a == nil {
				continue
			}
			rows = append(rows, Row3{
				Benchmark:    w.Name,
				Routine:      fn,
				ColorsBefore: b.Colors,
				ColorsAfter:  a.Colors,
			})
		}
	}
	return rows, nil
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Row1) string {
	var sb strings.Builder
	sb.WriteString("Table 1: Effect of register promotion on static counts of memory operations\n")
	fmt.Fprintf(&sb, "%-10s %28s %28s %10s\n", "benchmark", "static loads", "static stores", "total")
	fmt.Fprintf(&sb, "%-10s %8s %8s %10s %8s %8s %10s %10s\n",
		"", "before", "after", "(% impro)", "before", "after", "(% impro)", "(% impro)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %8d %8d %10.1f %8d %8d %10.1f %10.1f\n",
			r.Name, r.LoadsBefore, r.LoadsAfter, r.LoadImprovement(),
			r.StoresBefore, r.StoresAfter, r.StoreImprovement(), r.TotalImprovement())
	}
	return sb.String()
}

// FormatTable2 renders Table 2 in the paper's layout.
func FormatTable2(rows []Row2) string {
	var sb strings.Builder
	sb.WriteString("Table 2: Effect of register promotion on dynamic counts of memory operations\n")
	fmt.Fprintf(&sb, "%-10s %32s %32s %10s\n", "benchmark", "dynamic loads", "dynamic stores", "total")
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s %10s %10s %10s %10s\n",
		"", "before", "after", "(% impro)", "before", "after", "(% impro)", "(% impro)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %10d %10d %10.1f %10d %10d %10.1f %10.1f\n",
			r.Name, r.LoadsBefore, r.LoadsAfter, r.LoadImprovement(),
			r.StoresBefore, r.StoresAfter, r.StoreImprovement(), r.TotalImprovement())
	}
	fmt.Fprintf(&sb, "mean total improvement: %.1f%%\n", MeanTotalImprovement(rows))
	return sb.String()
}

// FormatTable3 renders Table 3 in the paper's layout.
func FormatTable3(rows []Row3) string {
	var sb strings.Builder
	sb.WriteString("Table 3: Effect of register promotion on register pressure\n")
	fmt.Fprintf(&sb, "%-10s %-16s %14s %14s %8s\n",
		"benchmark", "routine", "colors before", "colors after", "delta")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-16s %14d %14d %+8d\n",
			r.Benchmark, r.Routine, r.ColorsBefore, r.ColorsAfter, r.ColorsAfter-r.ColorsBefore)
	}
	return sb.String()
}

// AblationRow compares the dynamic totals of two configurations on one
// workload.
type AblationRow struct {
	Name   string
	BaseA  int64 // dynamic mem ops under configuration A
	BaseB  int64 // dynamic mem ops under configuration B
	LabelA string
	LabelB string
}

// Ablation runs two configurations over the suite and reports dynamic
// memory operation totals side by side.
func Ablation(a, b Options, labelA, labelB string) ([]AblationRow, error) {
	var rows []AblationRow
	for _, w := range workload.Suite() {
		outA, err := pipeline.Run(w.Src, a.pipeline(false))
		if err != nil {
			return nil, fmt.Errorf("ablation %s (%s): %w", w.Name, labelA, err)
		}
		outB, err := pipeline.Run(w.Src, b.pipeline(false))
		if err != nil {
			return nil, fmt.Errorf("ablation %s (%s): %w", w.Name, labelB, err)
		}
		rows = append(rows, AblationRow{
			Name:   w.Name,
			BaseA:  outA.After.DynMemOps(),
			BaseB:  outB.After.DynMemOps(),
			LabelA: labelA,
			LabelB: labelB,
		})
	}
	return rows, nil
}

// FormatAblation renders an ablation comparison.
func FormatAblation(rows []AblationRow) string {
	if len(rows) == 0 {
		return "(no ablation rows)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: dynamic memory ops, %s vs %s\n", rows[0].LabelA, rows[0].LabelB)
	fmt.Fprintf(&sb, "%-10s %14s %14s\n", "benchmark", rows[0].LabelA, rows[0].LabelB)
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %14d %14d\n", r.Name, r.BaseA, r.BaseB)
	}
	return sb.String()
}

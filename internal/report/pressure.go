package report

import (
	"fmt"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/regalloc"
	"repro/internal/workload"
)

// PressureRow is one row of the pressure-aware promotion table: the
// Table-3-style color counts of one routine under no promotion, under
// unrestricted promotion, and under the accepted pressure-capped
// configuration, plus what the cap search did to get there.
type PressureRow struct {
	Benchmark string `json:"benchmark"`
	Routine   string `json:"routine"`
	// BaselineColors is the color count with no promotion at all.
	BaselineColors int `json:"baseline_colors"`
	// UncappedColors is the color count after unrestricted promotion.
	UncappedColors int `json:"uncapped_colors"`
	// CappedColors is the color count of the accepted configuration;
	// guaranteed <= EffectiveCap.
	CappedColors int `json:"capped_colors"`
	// Cap is the requested cap; EffectiveCap is max(Cap, baseline).
	Cap          int `json:"cap"`
	EffectiveCap int `json:"effective_cap"`
	// BudgetUsed is the accepted per-block budget (0 = uncapped
	// promotion already fit, -1 = promotion skipped entirely).
	BudgetUsed int `json:"budget_used"`
	// Trials counts the clone trials the cap search ran.
	Trials int `json:"trials"`
	// Web counts of the accepted configuration.
	WebsPromoted int `json:"webs_promoted"`
	WebsLoadOnly int `json:"webs_load_only"`
	WebsDemoted  int `json:"webs_demoted"`
}

// PressureTable runs the suite (plus any extra workloads, e.g. a
// generated corpus) under pressure-aware promotion with the given cap
// and reports one row per routine the cap search had to think about:
// routines where promotion touched a web, demoted one, or was skipped.
//
// Each program's final IR is re-colored here, independently of the
// pipeline, and checked against both the recorded CappedColors and the
// EffectiveCap — the end-to-end verification that the guarantee the
// pipeline reports is true of the program it actually emitted. A
// mismatch is an error, not a row.
func PressureTable(opts Options, cap int, extra []workload.Workload) ([]PressureRow, error) {
	if cap <= 0 {
		return nil, fmt.Errorf("pressure table: cap must be positive, got %d", cap)
	}
	var rows []PressureRow
	suite := append(append([]workload.Workload{}, workload.Suite()...), extra...)
	for _, w := range suite {
		popts := opts.pipeline(true)
		popts.PressureCap = cap
		out, err := pipeline.Run(w.Src, popts)
		if err != nil {
			return nil, fmt.Errorf("pressure table %s: %w", w.Name, err)
		}
		results, names := regalloc.AllocateProgram(out.Prog)
		for _, fn := range names {
			pres := out.Pressure[fn]
			if pres == nil {
				continue // degraded, or never ran the SSA promoter
			}
			got := results[fn]
			if got == nil {
				continue
			}
			if got.Colors != pres.FinalColors {
				return nil, fmt.Errorf("pressure table %s/%s: recorded %d colors but re-coloring the emitted IR needs %d",
					w.Name, fn, pres.FinalColors, got.Colors)
			}
			if got.Colors > pres.EffectiveCap {
				return nil, fmt.Errorf("pressure table %s/%s: %d colors exceeds effective cap %d",
					w.Name, fn, got.Colors, pres.EffectiveCap)
			}
			if pres.Stats.WebsPromoted+pres.Stats.WebsLoadOnly+pres.Stats.WebsDemoted == 0 && pres.BudgetUsed == 0 {
				continue // nothing promoted and the cap never bound
			}
			rows = append(rows, PressureRow{
				Benchmark:      w.Name,
				Routine:        fn,
				BaselineColors: pres.BaselineColors,
				UncappedColors: pres.UncappedColors,
				CappedColors:   pres.FinalColors,
				Cap:            pres.Cap,
				EffectiveCap:   pres.EffectiveCap,
				BudgetUsed:     pres.BudgetUsed,
				Trials:         pres.Trials,
				WebsPromoted:   pres.Stats.WebsPromoted,
				WebsLoadOnly:   pres.Stats.WebsLoadOnly,
				WebsDemoted:    pres.Stats.WebsDemoted,
			})
		}
	}
	return rows, nil
}

// FormatPressureTable renders the pressure table in the Table 3 layout
// extended with the cap-search columns.
func FormatPressureTable(rows []PressureRow, cap int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Pressure-aware promotion: colors vs no-cap baseline (cap %d)\n", cap)
	fmt.Fprintf(&sb, "%-12s %-16s %8s %8s %8s %8s %8s %6s %6s %6s\n",
		"benchmark", "routine", "base", "uncapped", "capped", "effcap", "budget", "prom", "ldonly", "demot")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-16s %8d %8d %8d %8d %8d %6d %6d %6d\n",
			r.Benchmark, r.Routine, r.BaselineColors, r.UncappedColors, r.CappedColors,
			r.EffectiveCap, r.BudgetUsed, r.WebsPromoted, r.WebsLoadOnly, r.WebsDemoted)
	}
	if len(rows) == 0 {
		sb.WriteString("(no routines with promotion opportunities)\n")
	}
	return sb.String()
}

package report

import (
	"sort"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// SchemaVersion is the version stamped into every machine-readable
// record this repo emits: the serving layer's outcome payloads
// (rpserved), the batch benchmark records (rpbench -batch -json), and
// the load-generator's BENCH_serve.json. Bump it whenever a field
// changes meaning or shape, so downstream consumers can reject records
// they do not understand instead of misreading them.
const SchemaVersion = 1

// StatsJSON is the stable JSON shape of one function's (or the
// program-total) promotion statistics.
type StatsJSON struct {
	WebsConsidered  int `json:"webs_considered"`
	WebsPromoted    int `json:"webs_promoted"`
	WebsLoadOnly    int `json:"webs_load_only"`
	WebsRejected    int `json:"webs_rejected"`
	LoadsReplaced   int `json:"loads_replaced"`
	StoresDeleted   int `json:"stores_deleted"`
	LoadsInserted   int `json:"loads_inserted"`
	StoresInserted  int `json:"stores_inserted"`
	DummyLoadsAdded int `json:"dummy_loads_added"`
}

// FuncStatsJSON pairs a function name with its promotion statistics.
type FuncStatsJSON struct {
	Name string `json:"name"`
	StatsJSON
}

// StaticJSON is the static singleton memory-operation counts before and
// after promotion (the paper's Table 1 metric).
type StaticJSON struct {
	LoadsBefore  int `json:"loads_before"`
	LoadsAfter   int `json:"loads_after"`
	StoresBefore int `json:"stores_before"`
	StoresAfter  int `json:"stores_after"`
}

// DynJSON is one measurement run's dynamic memory-operation counts
// (the paper's Table 2 metric).
type DynJSON struct {
	Loads  int64 `json:"loads"`
	Stores int64 `json:"stores"`
}

// DegradationJSON records one function the pipeline compiled without
// promotion because a stage failed on it.
type DegradationJSON struct {
	Func  string `json:"func"`
	Stage string `json:"stage"`
	Error string `json:"error"`
}

// GlobalJSON is one global's final memory image after the measurement
// run.
type GlobalJSON struct {
	Name   string  `json:"name"`
	Values []int64 `json:"values"`
}

// OutcomeJSON is the stable, versioned JSON encoding of a
// pipeline.Outcome, shared by the promotion service, rpbench's batch
// records, and the BENCH_*.json writers. Every slice is in canonical
// order (function declaration order comes pre-canonicalized from the
// pipeline; stats and globals sort by name here), and wall-clock
// timings are deliberately excluded, so two runs over the same
// (source, options) — at any worker count — marshal to byte-identical
// JSON. The serving layer's cache determinism checks rely on that.
type OutcomeJSON struct {
	SchemaVersion int               `json:"schema_version"`
	Static        StaticJSON        `json:"static"`
	Funcs         []FuncStatsJSON   `json:"funcs,omitempty"`
	Total         StatsJSON         `json:"total"`
	Degraded      []DegradationJSON `json:"degraded,omitempty"`
	DynBefore     *DynJSON          `json:"dyn_before,omitempty"`
	DynAfter      *DynJSON          `json:"dyn_after,omitempty"`
	Output        []int64           `json:"output,omitempty"`
	ReturnValue   *int64            `json:"return_value,omitempty"`
	Globals       []GlobalJSON      `json:"globals,omitempty"`
}

// EncodeOutcome converts a pipeline outcome into its stable JSON shape.
func EncodeOutcome(out *pipeline.Outcome) OutcomeJSON {
	enc := OutcomeJSON{
		SchemaVersion: SchemaVersion,
		Static: StaticJSON{
			LoadsBefore:  out.StaticBefore.Loads,
			LoadsAfter:   out.StaticAfter.Loads,
			StoresBefore: out.StaticBefore.Stores,
			StoresAfter:  out.StaticAfter.Stores,
		},
		Total: statsJSON(out.TotalStats),
	}

	names := make([]string, 0, len(out.Stats))
	for name := range out.Stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		enc.Funcs = append(enc.Funcs, FuncStatsJSON{Name: name, StatsJSON: statsJSON(*out.Stats[name])})
	}

	for _, d := range out.Degraded {
		enc.Degraded = append(enc.Degraded, DegradationJSON{
			Func:  d.Func,
			Stage: d.Stage,
			Error: d.Err.Error(),
		})
	}

	if out.Before != nil {
		enc.DynBefore = &DynJSON{Loads: out.Before.DynLoads(), Stores: out.Before.DynStores()}
	}
	if out.After != nil {
		enc.DynAfter = &DynJSON{Loads: out.After.DynLoads(), Stores: out.After.DynStores()}
		enc.Output = out.After.Output
		ret := out.After.ReturnValue
		enc.ReturnValue = &ret
		globals := make([]string, 0, len(out.After.Globals))
		for name := range out.After.Globals {
			globals = append(globals, name)
		}
		sort.Strings(globals)
		for _, name := range globals {
			enc.Globals = append(enc.Globals, GlobalJSON{Name: name, Values: out.After.Globals[name]})
		}
	}
	return enc
}

func statsJSON(s core.Stats) StatsJSON {
	return StatsJSON{
		WebsConsidered:  s.WebsConsidered,
		WebsPromoted:    s.WebsPromoted,
		WebsLoadOnly:    s.WebsLoadOnly,
		WebsRejected:    s.WebsRejected,
		LoadsReplaced:   s.LoadsReplaced,
		StoresDeleted:   s.StoresDeleted,
		LoadsInserted:   s.LoadsInserted,
		StoresInserted:  s.StoresInserted,
		DummyLoadsAdded: s.DummyLoadsAdded,
	}
}

package report

import (
	"strings"
	"testing"

	"repro/internal/pipeline"
)

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// The paper's signature static effect: on benchmarks with real
	// promotion, static load counts mostly *increase* (negative
	// improvement) because compensation loads land on cold paths.
	byName := map[string]Row1{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["go"]; r.LoadsAfter < r.LoadsBefore {
		t.Errorf("go: static loads should not shrink (before %d, after %d)",
			r.LoadsBefore, r.LoadsAfter)
	}
	// compress has almost nothing to promote: counts barely move.
	if r := byName["compress"]; abs(r.LoadsAfter-r.LoadsBefore) > 5 {
		t.Errorf("compress: static loads moved too much: %d -> %d", r.LoadsBefore, r.LoadsAfter)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "go") || !strings.Contains(out, "vortex") {
		t.Error("formatted table missing benchmarks")
	}
}

func TestTable2Shapes(t *testing.T) {
	rows, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Row2{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Dynamic shape: go and ijpeg win big; vortex barely moves; nothing
	// regresses.
	if imp := byName["go"].TotalImprovement(); imp < 15 {
		t.Errorf("go dynamic improvement %.1f%%, want >= 15%%", imp)
	}
	if imp := byName["ijpeg"].LoadImprovement(); imp < 10 {
		t.Errorf("ijpeg dynamic load improvement %.1f%%, want >= 10%%", imp)
	}
	if imp := byName["vortex"].TotalImprovement(); imp > 10 {
		t.Errorf("vortex dynamic improvement %.1f%%, want < 10%%", imp)
	}
	for _, r := range rows {
		if r.TotalImprovement() < -1 {
			t.Errorf("%s regressed: %.1f%%", r.Name, r.TotalImprovement())
		}
	}
	// Headline: mean total improvement should land in the paper's
	// neighbourhood (~12%).
	mean := MeanTotalImprovement(rows)
	if mean < 5 {
		t.Errorf("mean improvement %.1f%%, want >= 5%%", mean)
	}
	_ = FormatTable2(rows)
}

func TestTable3Shapes(t *testing.T) {
	rows, err := Table3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no routines with promotion opportunities found")
	}
	// Register pressure may only grow or stay.
	raised := 0
	for _, r := range rows {
		if r.ColorsAfter < r.ColorsBefore {
			t.Errorf("%s/%s: colors dropped %d -> %d",
				r.Benchmark, r.Routine, r.ColorsBefore, r.ColorsAfter)
		}
		if r.ColorsAfter > r.ColorsBefore {
			raised++
		}
	}
	if raised == 0 {
		t.Error("promotion never raised register pressure — Table 3 would be empty of signal")
	}
	_ = FormatTable3(rows)
}

func TestAblationBaseline(t *testing.T) {
	rows, err := Ablation(
		Options{Algorithm: pipeline.AlgSSA},
		Options{Algorithm: pipeline.AlgBaseline},
		"ssa", "loop-baseline",
	)
	if err != nil {
		t.Fatal(err)
	}
	// The SSA algorithm must never lose to the baseline, and must win
	// somewhere (the cold-call-path benchmarks).
	wins := 0
	for _, r := range rows {
		if r.BaseA > r.BaseB {
			t.Errorf("%s: ssa (%d) worse than baseline (%d)", r.Name, r.BaseA, r.BaseB)
		}
		if r.BaseA < r.BaseB {
			wins++
		}
	}
	if wins == 0 {
		t.Error("ssa never beat the loop baseline across the suite")
	}
	_ = FormatAblation(rows)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

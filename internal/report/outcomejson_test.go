package report

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"repro/internal/pipeline"
)

const encodeSrc = `
int a = 3;
int b = 4;
void main() {
	int i;
	for (i = 0; i < 10; i++) {
		a = a + b;
	}
	print(a);
}
`

// TestEncodeOutcomeStable checks the encoding carries the schema
// version, marshals identically across repeated runs, and is identical
// for Workers=1 vs Workers=4 — the property the serving layer's
// content-addressed cache depends on.
func TestEncodeOutcomeStable(t *testing.T) {
	marshal := func(workers int) []byte {
		t.Helper()
		out, err := pipeline.Run(encodeSrc, pipeline.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(EncodeOutcome(out))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	first := marshal(1)
	var enc OutcomeJSON
	if err := json.Unmarshal(first, &enc); err != nil {
		t.Fatal(err)
	}
	if enc.SchemaVersion != SchemaVersion {
		t.Fatalf("schema_version = %d, want %d", enc.SchemaVersion, SchemaVersion)
	}
	if enc.DynBefore == nil || enc.DynAfter == nil || enc.ReturnValue == nil {
		t.Fatalf("measurement fields missing: %s", first)
	}
	if !sort.SliceIsSorted(enc.Funcs, func(i, j int) bool { return enc.Funcs[i].Name < enc.Funcs[j].Name }) {
		t.Fatalf("funcs not sorted by name: %s", first)
	}
	if !sort.SliceIsSorted(enc.Globals, func(i, j int) bool { return enc.Globals[i].Name < enc.Globals[j].Name }) {
		t.Fatalf("globals not sorted by name: %s", first)
	}

	if again := marshal(1); !bytes.Equal(first, again) {
		t.Fatalf("repeated run encoded differently:\n%s\nvs\n%s", first, again)
	}
	if par := marshal(4); !bytes.Equal(first, par) {
		t.Fatalf("Workers=4 encoded differently from Workers=1:\n%s\nvs\n%s", first, par)
	}
}

// TestEncodeOutcomeSkipMeasurement checks the dynamic fields are
// omitted (not zeroed) when the run skipped measurement.
func TestEncodeOutcomeSkipMeasurement(t *testing.T) {
	out, err := pipeline.Run(encodeSrc, pipeline.Options{SkipMeasurement: true})
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeOutcome(out)
	if enc.DynBefore != nil || enc.DynAfter != nil || enc.ReturnValue != nil || enc.Globals != nil {
		t.Fatalf("skip-measurement encoding carries dynamic fields: %+v", enc)
	}
	data, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"dyn_before", "dyn_after", "return_value", "globals"} {
		if bytes.Contains(data, []byte(absent)) {
			t.Fatalf("marshaled skip-measurement outcome contains %q: %s", absent, data)
		}
	}
}

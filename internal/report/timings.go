package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/pipeline"
)

// StageTime is the aggregated wall time of one pipeline stage across a
// set of runs.
type StageTime struct {
	// Stage is the pipeline stage name (see pipeline.Stages).
	Stage string
	// Wall is the summed wall-clock time of every execution of the
	// stage.
	Wall time.Duration
	// Count is how many times the stage executed (per-function stages
	// run once per function per compile).
	Count int
}

// SumStageTimings merges the per-stage wall time of any number of
// outcomes into one row per stage, in pipeline execution order. Stages
// that never ran are omitted.
func SumStageTimings(outcomes ...*pipeline.Outcome) []StageTime {
	wall := make(map[string]time.Duration)
	count := make(map[string]int)
	for _, out := range outcomes {
		if out == nil {
			continue
		}
		for _, t := range out.Timings {
			wall[t.Stage] += t.Wall
			count[t.Stage]++
		}
	}
	var rows []StageTime
	for _, stage := range pipeline.Stages() {
		if count[stage] == 0 {
			continue
		}
		rows = append(rows, StageTime{Stage: stage, Wall: wall[stage], Count: count[stage]})
	}
	return rows
}

// StageMS is the stable JSON shape of one aggregated stage-timing row,
// shared by rpbench's batch records and the serving layer's metrics
// payloads (wall time in milliseconds so the records are directly
// plottable).
type StageMS struct {
	Stage  string  `json:"stage"`
	WallMS float64 `json:"wall_ms"`
	Count  int     `json:"count"`
}

// StageTimingsMS converts SumStageTimings rows into their JSON shape.
func StageTimingsMS(rows []StageTime) []StageMS {
	out := make([]StageMS, len(rows))
	for i, r := range rows {
		out[i] = StageMS{
			Stage:  r.Stage,
			WallMS: float64(r.Wall.Microseconds()) / 1000,
			Count:  r.Count,
		}
	}
	return out
}

// FormatStageTimings renders the per-stage wall time table with each
// stage's share of the total.
func FormatStageTimings(rows []StageTime) string {
	var total time.Duration
	for _, r := range rows {
		total += r.Wall
	}
	var sb strings.Builder
	sb.WriteString("Per-stage wall time\n")
	fmt.Fprintf(&sb, "%-16s %12s %8s %7s\n", "stage", "wall", "count", "share")
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = float64(r.Wall) / float64(total) * 100
		}
		fmt.Fprintf(&sb, "%-16s %12s %8d %6.1f%%\n",
			r.Stage, r.Wall.Round(time.Microsecond), r.Count, share)
	}
	fmt.Fprintf(&sb, "%-16s %12s\n", "total", total.Round(time.Microsecond))
	return sb.String()
}

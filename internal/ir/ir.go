// Package ir defines the intermediate representation used throughout this
// repository: a conventional three-address, control-flow-graph IR in which
// memory is modeled with explicit memory resources, as described in
// "A New Algorithm for Scalar Register Promotion Based on SSA Form"
// (Sastry and Ju, PLDI 1998).
//
// The representation has two value spaces:
//
//   - Virtual registers (RegID) hold scalar values. After SSA construction
//     every register has exactly one definition, and Phi instructions join
//     values at control-flow confluence points.
//
//   - Memory resources (ResourceID) name memory locations. A singleton
//     resource represents one scalar memory cell (a global scalar, an
//     address-exposed local scalar, or a scalar component of a struct).
//     Array objects get a single non-promotable resource. Aggregate
//     effects (function calls, pointer loads and stores, array accesses)
//     are expanded into sets of aliased singleton references on each
//     instruction (the MemDefs and MemUses lists), which is the form the
//     promotion algorithm consumes. Memory resources are themselves put
//     into SSA form: renaming creates versioned resources whose Orig field
//     points back at the base resource, and MemPhi instructions join
//     memory versions exactly like Phi joins registers.
//
// Instructions live in basic blocks; blocks form a CFG with explicit
// predecessor and successor lists. Phi and MemPhi arguments are positional
// with respect to the block's predecessor list: argument i flows in from
// Preds[i].
package ir

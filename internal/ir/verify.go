package ir

import "fmt"

// VerifyMode selects how strict Verify is about SSA properties.
type VerifyMode int

const (
	// VerifyCFG checks only structural CFG invariants.
	VerifyCFG VerifyMode = iota
	// VerifySSA additionally checks the single-assignment property for
	// registers and memory resources and that definitions dominate uses
	// is left to callers with a dominator tree; here we check single
	// definition and phi shape.
	VerifySSA
)

// Verify checks structural invariants of the function and returns the
// first violation found, or nil. It is used liberally in tests and after
// each transformation pass.
func (f *Function) Verify(mode VerifyMode) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: function has no blocks", f.Name)
	}
	if len(f.Entry().Preds) != 0 {
		return fmt.Errorf("%s: entry block has predecessors", f.Name)
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	for _, b := range f.Blocks {
		if err := f.verifyBlock(b, inFunc); err != nil {
			return err
		}
	}
	if mode == VerifySSA {
		return f.verifySSA()
	}
	return nil
}

func (f *Function) verifyBlock(b *Block, inFunc map[*Block]bool) error {
	if b.Func != f {
		return fmt.Errorf("%s: block %v has wrong Func pointer", f.Name, b)
	}
	term := b.Term()
	if term == nil {
		return fmt.Errorf("%s: block %v has no terminator", f.Name, b)
	}
	for i, in := range b.Instrs {
		if in.Parent != b {
			return fmt.Errorf("%s: %v instr %d (%s) has wrong Parent", f.Name, b, i, in.Op)
		}
		if in.Op.IsTerminator() && in != term {
			return fmt.Errorf("%s: %v has terminator %s before end", f.Name, b, in.Op)
		}
		if in.Op.IsPhi() && i > 0 && !b.Instrs[i-1].Op.IsPhi() {
			return fmt.Errorf("%s: %v has phi after non-phi", f.Name, b)
		}
		if in.Op == OpPhi && len(in.Args) != len(b.Preds) {
			return fmt.Errorf("%s: %v phi r%d has %d args for %d preds", f.Name, b, in.Dst, len(in.Args), len(b.Preds))
		}
		if in.Op == OpMemPhi {
			if len(in.MemDefs) != 1 {
				return fmt.Errorf("%s: %v memphi with %d defs", f.Name, b, len(in.MemDefs))
			}
			if len(in.MemUses) != len(b.Preds) {
				return fmt.Errorf("%s: %v memphi of %s has %d args for %d preds",
					f.Name, b, f.Res(in.MemDefs[0].Res), len(in.MemUses), len(b.Preds))
			}
		}
		for _, a := range in.Args {
			if !a.IsConst() && (a.Reg() < 0 || int(a.Reg()) >= f.NumRegs) {
				return fmt.Errorf("%s: %v uses out-of-range register %v", f.Name, b, a)
			}
		}
		if in.HasDst() && int(in.Dst) >= f.NumRegs {
			return fmt.Errorf("%s: %v defines out-of-range register r%d", f.Name, b, in.Dst)
		}
	}
	switch term.Op {
	case OpJmp:
		if len(b.Succs) != 1 {
			return fmt.Errorf("%s: %v jmp with %d successors", f.Name, b, len(b.Succs))
		}
	case OpBr:
		if len(b.Succs) != 2 {
			return fmt.Errorf("%s: %v br with %d successors", f.Name, b, len(b.Succs))
		}
		if b.Succs[0] == b.Succs[1] {
			return fmt.Errorf("%s: %v br with identical targets", f.Name, b)
		}
	case OpRet:
		if len(b.Succs) != 0 {
			return fmt.Errorf("%s: %v ret with successors", f.Name, b)
		}
	}
	for _, s := range b.Succs {
		if !inFunc[s] {
			return fmt.Errorf("%s: %v has successor %v outside function", f.Name, b, s)
		}
		if s.PredIndex(b) < 0 {
			return fmt.Errorf("%s: edge %v -> %v missing back-pointer", f.Name, b, s)
		}
	}
	for _, p := range b.Preds {
		if !inFunc[p] {
			return fmt.Errorf("%s: %v has predecessor %v outside function", f.Name, b, p)
		}
		if p.SuccIndex(b) < 0 {
			return fmt.Errorf("%s: edge %v <- %v missing forward-pointer", f.Name, b, p)
		}
	}
	return nil
}

func (f *Function) verifySSA() error {
	regDef := make([]*Instr, f.NumRegs)
	resDef := make(map[ResourceID]*Instr)
	for _, p := range f.Params {
		regDef[p] = &Instr{Op: OpInvalid} // sentinel: defined at entry
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasDst() {
				if regDef[in.Dst] != nil {
					return fmt.Errorf("%s: register r%d multiply defined (%v)", f.Name, in.Dst, b)
				}
				regDef[in.Dst] = in
			}
			for _, d := range in.MemDefs {
				if prev, ok := resDef[d.Res]; ok {
					return fmt.Errorf("%s: resource %s multiply defined (%v and %v)",
						f.Name, f.Res(d.Res), prev.Op, in.Op)
				}
				resDef[d.Res] = in
			}
		}
	}
	// Every used register and resource version must have a definition
	// (version 0 resources are live-in and need none).
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if !a.IsConst() && regDef[a.Reg()] == nil {
					return fmt.Errorf("%s: register r%d used in %v but never defined", f.Name, a.Reg(), b)
				}
			}
			for _, u := range in.MemUses {
				if f.Res(u.Res).Version != 0 && resDef[u.Res] == nil {
					return fmt.Errorf("%s: resource %s used in %v (%s) but never defined",
						f.Name, f.Res(u.Res), b, in.Op)
				}
			}
		}
	}
	return nil
}

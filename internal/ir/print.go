package ir

import (
	"fmt"
	"strings"
)

// String renders the instruction in the textual IR syntax used by the
// printer and by golden tests.
func (in *Instr) String() string {
	var sb strings.Builder
	f := func(format string, args ...any) { fmt.Fprintf(&sb, format, args...) }

	resName := func(id ResourceID) string {
		if in.Parent != nil && in.Parent.Func != nil && int(id) < len(in.Parent.Func.Resources) {
			return in.Parent.Func.Resources[id].String()
		}
		return fmt.Sprintf("res%d", id)
	}

	switch in.Op {
	case OpPhi:
		f("r%d = phi", in.Dst)
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(",")
			}
			lbl := "?"
			if in.Parent != nil && i < len(in.Parent.Preds) {
				lbl = in.Parent.Preds[i].String()
			}
			f(" [%s: %s]", lbl, a)
		}
	case OpMemPhi:
		f("%s = memphi", resName(in.MemDefs[0].Res))
		for i, u := range in.MemUses {
			if i > 0 {
				sb.WriteString(",")
			}
			lbl := "?"
			if in.Parent != nil && i < len(in.Parent.Preds) {
				lbl = in.Parent.Preds[i].String()
			}
			f(" [%s: %s]", lbl, resName(u.Res))
		}
	case OpLoad:
		f("r%d = load %s", in.Dst, in.Loc)
		if len(in.MemUses) > 0 {
			f(" {%s}", resName(in.MemUses[0].Res))
		}
	case OpStore:
		f("store %s = %s", in.Loc, in.Args[0])
		if len(in.MemDefs) > 0 {
			f(" {%s}", resName(in.MemDefs[0].Res))
		}
	case OpAddr:
		f("r%d = addr %s", in.Dst, in.Loc)
	case OpLoadPtr:
		f("r%d = loadptr %s", in.Dst, in.Args[0])
		sb.WriteString(memRefList(" mu", in.MemUses, resName))
	case OpStorePtr:
		f("storeptr %s = %s", in.Args[0], in.Args[1])
		sb.WriteString(memRefList(" chi", in.MemDefs, resName))
	case OpLoadIdx:
		f("r%d = loadidx %s[%s]", in.Dst, in.Loc, in.Args[0])
		sb.WriteString(memRefList(" mu", in.MemUses, resName))
	case OpStoreIdx:
		f("storeidx %s[%s] = %s", in.Loc, in.Args[0], in.Args[1])
		sb.WriteString(memRefList(" chi", in.MemDefs, resName))
	case OpCall:
		if in.HasDst() {
			f("r%d = ", in.Dst)
		}
		f("call %s(", in.Callee)
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
		sb.WriteString(")")
		sb.WriteString(memRefList(" mu", in.MemUses, resName))
		sb.WriteString(memRefList(" chi", in.MemDefs, resName))
	case OpPrint:
		f("print %s", in.Args[0])
	case OpDummyLoad:
		sb.WriteString("dummyload")
		sb.WriteString(memRefList(" mu", in.MemUses, resName))
	case OpCopy:
		f("r%d = copy %s", in.Dst, in.Args[0])
	case OpJmp:
		lbl := "?"
		if in.Parent != nil && len(in.Parent.Succs) > 0 {
			lbl = in.Parent.Succs[0].String()
		}
		f("jmp %s", lbl)
	case OpBr:
		t, e := "?", "?"
		if in.Parent != nil && len(in.Parent.Succs) == 2 {
			t, e = in.Parent.Succs[0].String(), in.Parent.Succs[1].String()
		}
		f("br %s, %s, %s", in.Args[0], t, e)
	case OpRet:
		sb.WriteString("ret")
		if len(in.Args) > 0 {
			f(" %s", in.Args[0])
		}
	case OpNeg, OpNot:
		f("r%d = %s %s", in.Dst, in.Op, in.Args[0])
	default:
		f("r%d = %s %s, %s", in.Dst, in.Op, in.Args[0], in.Args[1])
	}
	return sb.String()
}

func memRefList(tag string, refs []MemRef, name func(ResourceID) string) string {
	if len(refs) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(tag)
	sb.WriteString("{")
	for i, r := range refs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(name(r.Res))
	}
	sb.WriteString("}")
	return sb.String()
}

// String renders the whole function.
func (f *Function) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "r%d", p)
	}
	sb.WriteString(") {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:", b)
		if len(b.Preds) > 0 {
			sb.WriteString(" ; preds:")
			for i, p := range b.Preds {
				if i > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, " %s", p)
			}
		}
		sb.WriteString("\n")
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders every function in the program.
func (p *Program) String() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, "global %s [%d]\n", g.Name, g.Size)
	}
	for _, f := range p.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

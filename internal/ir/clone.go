package ir

import (
	"maps"
	"slices"
)

// Clone returns a deep copy of the function: blocks, instructions, CFG
// edges, stack slots, and the memory resource table are all fresh
// objects, while program-level state (the Prog pointer and Global
// objects referenced by memory locations) stays shared. Block IDs,
// register numbers, and resource IDs are preserved, so a clone prints
// identically to the original.
//
// The clone is not registered in the program; it serves as a shadow
// copy — the pipeline snapshots each function before transforming it
// and swaps the snapshot back in with Program.ReplaceFunction when a
// transformation stage fails.
func (f *Function) Clone() *Function {
	nf := &Function{
		Name:       f.Name,
		Params:     slices.Clone(f.Params),
		Prog:       f.Prog,
		NumRegs:    f.NumRegs,
		regNames:   slices.Clone(f.regNames),
		nextBlock:  f.nextBlock,
		cfgVersion: f.cfgVersion,
	}
	if f.maxVer != nil {
		nf.maxVer = maps.Clone(f.maxVer)
	}

	slotMap := make(map[*Slot]*Slot, len(f.Slots))
	for _, s := range f.Slots {
		ns := &Slot{
			Name:       s.Name,
			Size:       s.Size,
			IsArray:    s.IsArray,
			FieldNames: slices.Clone(s.FieldNames),
			AddrTaken:  s.AddrTaken,
			Escapes:    s.Escapes,
			Index:      s.Index,
		}
		slotMap[s] = ns
		nf.Slots = append(nf.Slots, ns)
	}
	remapLoc := func(l MemLoc) MemLoc {
		if l.Kind == LocSlot {
			l.Slot = slotMap[l.Slot]
		}
		return l
	}

	nf.Resources = make([]*Resource, len(f.Resources))
	for i, r := range f.Resources {
		nr := *r
		nr.Loc = remapLoc(nr.Loc)
		nf.Resources[i] = &nr
	}

	blockMap := make(map[*Block]*Block, len(f.Blocks))
	nf.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{ID: b.ID, Func: nf}
		blockMap[b] = nb
		nf.Blocks[i] = nb
	}
	for _, b := range f.Blocks {
		nb := blockMap[b]
		nb.Preds = make([]*Block, len(b.Preds))
		for i, p := range b.Preds {
			nb.Preds[i] = blockMap[p]
		}
		nb.Succs = make([]*Block, len(b.Succs))
		for i, s := range b.Succs {
			nb.Succs[i] = blockMap[s]
		}
		nb.Instrs = make([]*Instr, len(b.Instrs))
		for i, in := range b.Instrs {
			nb.Instrs[i] = &Instr{
				Op:      in.Op,
				Dst:     in.Dst,
				Args:    slices.Clone(in.Args),
				Callee:  in.Callee,
				Loc:     remapLoc(in.Loc),
				MemDefs: slices.Clone(in.MemDefs),
				MemUses: slices.Clone(in.MemUses),
				Parent:  nb,
			}
		}
	}
	return nf
}

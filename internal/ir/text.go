package ir

import (
	"fmt"
	"io"
	"strings"
)

// This file implements WriteText, the textual LLVM-style serialization
// of a program — the output half of the external-IR surface whose input
// half is internal/irimport. The two are designed as a round-trip pair:
// for any program WriteText can render, irimport.Parse(text) produces a
// program with identical observable behavior, and rendering that parse
// again reproduces the text byte for byte (the parse→print→reparse
// fixed point the importer's tests and fuzz target enforce).
//
// The dialect is LLVM-shaped but deliberately loose where this IR is
// looser than LLVM (see DESIGN.md §14 for the grammar):
//
//   - every integer type is an int64 cell; i1..i64 are accepted on
//     input and i64 is always printed;
//   - registers may be reassigned (the pre-SSA form the pipeline
//     consumes); LLVM's single-assignment rule is not imposed;
//   - opcodes with no LLVM spelling print as equivalent LLVM
//     instructions: copy prints as `add x, 0`, neg as `sub 0, x`,
//     not as `xor x, -1`, print as `call void @print(i64 x)`, and
//     addr-of as `ptrtoint`;
//   - array and struct objects print as `[N x i64]`; cell accesses
//     print as a `getelementptr` line feeding the load or store.
//
// Memory-SSA artifacts (memphi, dummyload) have no textual form:
// WriteText returns an error for programs that still carry them.
// Register phis are printable (so SSA-form programs can be dumped), but
// the importer lowers them back to predecessor copies, so they do not
// survive a round trip textually — only semantically.

// WriteText renders prog in the textual IR dialect to w.
func WriteText(w io.Writer, p *Program) error {
	var sb strings.Builder
	for _, g := range p.Globals {
		writeGlobalText(&sb, g)
	}
	for i, f := range p.Funcs {
		if len(p.Globals) > 0 || i > 0 {
			sb.WriteByte('\n')
		}
		if err := writeFuncText(&sb, f); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// ProgramText renders prog in the textual IR dialect as a string.
func ProgramText(p *Program) (string, error) {
	var sb strings.Builder
	if err := WriteText(&sb, p); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func writeGlobalText(sb *strings.Builder, g *Global) {
	if g.Size == 1 && !g.IsArray {
		v := int64(0)
		if len(g.Init) > 0 {
			v = g.Init[0]
		}
		fmt.Fprintf(sb, "@%s = global i64 %d\n", g.Name, v)
		return
	}
	// Arrays and structs both flatten to [N x i64]: the cells are the
	// representation; field names are presentation-only and not kept.
	allZero := true
	for _, v := range g.Init {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		fmt.Fprintf(sb, "@%s = global [%d x i64] zeroinitializer\n", g.Name, g.Size)
		return
	}
	fmt.Fprintf(sb, "@%s = global [%d x i64] [", g.Name, g.Size)
	for i := 0; i < g.Size; i++ {
		v := int64(0)
		if i < len(g.Init) {
			v = g.Init[i]
		}
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "i64 %d", v)
	}
	sb.WriteString("]\n")
}

// textWriter carries the per-function rendering state.
type textWriter struct {
	sb        *strings.Builder
	f         *Function
	slotNames map[*Slot]string
	retty     map[string]string // return type per function name
	gepN      int               // synthesized pointer-name counter
}

// funcRetty returns "i64" when any ret in f carries a value, else
// "void". Functions mixing the two print bare rets as `ret i64 0`,
// which the interpreter also treats as returning zero.
func funcRetty(f *Function) string {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpRet && len(in.Args) > 0 {
				return "i64"
			}
		}
	}
	return "void"
}

// slotTextNames assigns each stack slot a printable name: its IR name
// sanitized to identifier characters, uniquified against the reserved
// register (%vN), label (bN), and synthesized-pointer (%pN) namespaces
// and against the other slots.
func slotTextNames(f *Function) map[*Slot]string {
	names := make(map[*Slot]string, len(f.Slots))
	used := make(map[string]bool, len(f.Slots))
	for i, s := range f.Slots {
		name := sanitizeIdent(s.Name)
		if name == "" || reservedTextName(name) || used[name] {
			name = fmt.Sprintf("%s.s%d", name, i)
		}
		used[name] = true
		names[s] = name
	}
	return names
}

func sanitizeIdent(s string) string {
	var sb strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '.', c == '_', c == '$':
			sb.WriteRune(c)
		default:
			sb.WriteByte('.')
		}
	}
	out := sb.String()
	if out != "" && out[0] >= '0' && out[0] <= '9' {
		out = "." + out
	}
	return out
}

// reservedTextName reports whether name collides with a namespace the
// printer generates: vN registers, pN synthesized pointers, bN labels.
func reservedTextName(name string) bool {
	if len(name) < 2 {
		return false
	}
	switch name[0] {
	case 'v', 'p', 'b':
	default:
		return false
	}
	for i := 1; i < len(name); i++ {
		if name[i] < '0' || name[i] > '9' {
			return false
		}
	}
	return true
}

func writeFuncText(sb *strings.Builder, f *Function) error {
	tw := &textWriter{sb: sb, f: f, slotNames: slotTextNames(f)}
	tw.retty = make(map[string]string)
	if f.Prog != nil {
		for _, g := range f.Prog.Funcs {
			tw.retty[g.Name] = funcRetty(g)
		}
	}

	fmt.Fprintf(sb, "define %s @%s(", funcRetty(f), f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "i64 %%v%d", p)
	}
	sb.WriteString(") {\n")
	for bi, b := range f.Blocks {
		fmt.Fprintf(sb, "b%d:\n", b.ID)
		if bi == 0 {
			for _, s := range f.Slots {
				if s.Size == 1 && !s.IsArray {
					fmt.Fprintf(sb, "  %%%s = alloca i64\n", tw.slotNames[s])
				} else {
					fmt.Fprintf(sb, "  %%%s = alloca [%d x i64]\n", tw.slotNames[s], s.Size)
				}
			}
		}
		for _, in := range b.Instrs {
			if err := tw.writeInstr(in); err != nil {
				return err
			}
		}
	}
	sb.WriteString("}\n")
	return nil
}

func (tw *textWriter) val(v Value) string {
	if v.IsConst() {
		return fmt.Sprintf("%d", v.Const())
	}
	return fmt.Sprintf("%%v%d", v.Reg())
}

// ptrTo renders the pointer operand for the cell at loc (plus an
// optional dynamic index), emitting a getelementptr line first when the
// cell is not a whole scalar object. It returns the operand text.
func (tw *textWriter) ptrTo(loc MemLoc, idx *Value) (string, error) {
	var base string
	var scalar bool
	switch loc.Kind {
	case LocGlobal:
		base = "@" + loc.Global.Name
		scalar = loc.Global.Size == 1 && !loc.Global.IsArray
	case LocSlot:
		base = "%" + tw.slotNames[loc.Slot]
		scalar = loc.Slot.Size == 1 && !loc.Slot.IsArray
	default:
		return "", fmt.Errorf("ir: WriteText: instruction with no memory location")
	}
	if scalar && loc.Offset == 0 && idx == nil {
		return base, nil
	}
	var index string
	switch {
	case idx == nil:
		index = fmt.Sprintf("%d", loc.Offset)
	case loc.Offset == 0:
		index = tw.val(*idx)
	default:
		return "", fmt.Errorf("ir: WriteText: indexed access with nonzero base offset %d in %s",
			loc.Offset, tw.f.Name)
	}
	name := fmt.Sprintf("%%p%d", tw.gepN)
	tw.gepN++
	fmt.Fprintf(tw.sb, "  %s = getelementptr i64, i64* %s, i64 %s\n", name, base, index)
	return name, nil
}

// ptrVal renders a pointer held in a register or constant (the loadptr
// and storeptr operand): registers print bare, constants print as an
// inttoptr constant expression.
func (tw *textWriter) ptrVal(v Value) string {
	if v.IsConst() {
		return fmt.Sprintf("inttoptr (i64 %d to i64*)", v.Const())
	}
	return fmt.Sprintf("%%v%d", v.Reg())
}

func (tw *textWriter) writeInstr(in *Instr) error {
	sb := tw.sb
	emit := func(format string, args ...any) {
		sb.WriteString("  ")
		fmt.Fprintf(sb, format, args...)
		sb.WriteByte('\n')
	}
	dst := func() string { return fmt.Sprintf("%%v%d", in.Dst) }

	switch in.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr:
		emit("%s = %s i64 %s, %s", dst(), textArith[in.Op], tw.val(in.Args[0]), tw.val(in.Args[1]))
	case OpNeg:
		emit("%s = sub i64 0, %s", dst(), tw.val(in.Args[0]))
	case OpNot:
		emit("%s = xor i64 %s, -1", dst(), tw.val(in.Args[0]))
	case OpCopy:
		emit("%s = add i64 %s, 0", dst(), tw.val(in.Args[0]))
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		emit("%s = icmp %s i64 %s, %s", dst(), textCmp[in.Op], tw.val(in.Args[0]), tw.val(in.Args[1]))
	case OpPhi:
		var sb2 strings.Builder
		for i, a := range in.Args {
			if i > 0 {
				sb2.WriteString(", ")
			}
			lbl := "?"
			if in.Parent != nil && i < len(in.Parent.Preds) {
				lbl = fmt.Sprintf("b%d", in.Parent.Preds[i].ID)
			}
			fmt.Fprintf(&sb2, "[ %s, %%%s ]", tw.val(a), lbl)
		}
		emit("%s = phi i64 %s", dst(), sb2.String())
	case OpLoad:
		ptr, err := tw.ptrTo(in.Loc, nil)
		if err != nil {
			return err
		}
		emit("%s = load i64, i64* %s", dst(), ptr)
	case OpStore:
		ptr, err := tw.ptrTo(in.Loc, nil)
		if err != nil {
			return err
		}
		emit("store i64 %s, i64* %s", tw.val(in.Args[0]), ptr)
	case OpLoadIdx:
		idx := in.Args[0]
		ptr, err := tw.ptrTo(in.Loc, &idx)
		if err != nil {
			return err
		}
		emit("%s = load i64, i64* %s", dst(), ptr)
	case OpStoreIdx:
		idx := in.Args[0]
		ptr, err := tw.ptrTo(in.Loc, &idx)
		if err != nil {
			return err
		}
		emit("store i64 %s, i64* %s", tw.val(in.Args[1]), ptr)
	case OpAddr:
		ptr, err := tw.ptrTo(in.Loc, nil)
		if err != nil {
			return err
		}
		emit("%s = ptrtoint i64* %s to i64", dst(), ptr)
	case OpLoadPtr:
		emit("%s = load i64, i64* %s", dst(), tw.ptrVal(in.Args[0]))
	case OpStorePtr:
		emit("store i64 %s, i64* %s", tw.val(in.Args[1]), tw.ptrVal(in.Args[0]))
	case OpCall:
		retty := tw.retty[in.Callee]
		var args strings.Builder
		for i, a := range in.Args {
			if i > 0 {
				args.WriteString(", ")
			}
			fmt.Fprintf(&args, "i64 %s", tw.val(a))
		}
		if in.HasDst() {
			if retty == "" {
				retty = "i64"
			}
			emit("%s = call %s @%s(%s)", dst(), retty, in.Callee, args.String())
		} else {
			emit("call void @%s(%s)", in.Callee, args.String())
		}
	case OpPrint:
		emit("call void @print(i64 %s)", tw.val(in.Args[0]))
	case OpJmp:
		if in.Parent == nil || len(in.Parent.Succs) != 1 {
			return fmt.Errorf("ir: WriteText: jmp without single successor in %s", tw.f.Name)
		}
		emit("br label %%b%d", in.Parent.Succs[0].ID)
	case OpBr:
		if in.Parent == nil || len(in.Parent.Succs) != 2 {
			return fmt.Errorf("ir: WriteText: br without two successors in %s", tw.f.Name)
		}
		emit("br i1 %s, label %%b%d, label %%b%d",
			tw.val(in.Args[0]), in.Parent.Succs[0].ID, in.Parent.Succs[1].ID)
	case OpRet:
		if len(in.Args) > 0 {
			emit("ret i64 %s", tw.val(in.Args[0]))
		} else if funcRetty(tw.f) == "i64" {
			emit("ret i64 0")
		} else {
			emit("ret void")
		}
	default:
		return fmt.Errorf("ir: WriteText: %s has no textual form (function %s)", in.Op, tw.f.Name)
	}
	return nil
}

var textArith = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "sdiv", OpRem: "srem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "ashr",
}

var textCmp = map[Op]string{
	OpEq: "eq", OpNe: "ne", OpLt: "slt", OpLe: "sle", OpGt: "sgt", OpGe: "sge",
}

// TextRegOrder returns the function's registers in first-mention order
// of the textual rendering: parameters left to right, then for each
// instruction in layout order the registers in the order their names
// appear in the printed line (destination before operands, with the
// printer's operand-order quirks accounted for). The importer renumbers
// parsed functions into this order so that printing is a fixed point of
// parse∘print: a parsed program's registers are always named in
// ascending first-mention order, which is exactly what a reparse of the
// printed text would assign.
func TextRegOrder(f *Function) []RegID {
	order := make([]RegID, 0, f.NumRegs)
	seen := make([]bool, f.NumRegs)
	touch := func(r RegID) {
		if r != NoReg && int(r) < len(seen) && !seen[r] {
			seen[r] = true
			order = append(order, r)
		}
	}
	touchVal := func(v Value) {
		if !v.IsConst() {
			touch(v.Reg())
		}
	}
	for _, p := range f.Params {
		touch(p)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case OpStorePtr:
				// Printed as `store i64 VAL, i64* PTR`: value first.
				touchVal(in.Args[1])
				touchVal(in.Args[0])
			case OpLoadIdx:
				// The getelementptr line (index) precedes the load (dst).
				touchVal(in.Args[0])
				touch(in.Dst)
			default:
				touch(in.Dst)
				for _, a := range in.Args {
					touchVal(a)
				}
			}
		}
	}
	return order
}

package ir

import "fmt"

// RegID identifies a virtual register within a function. Register numbers
// are dense: 0 <= RegID < Function.NumRegs.
type RegID int32

// NoReg marks an absent register (for example, the Dst of a store).
const NoReg RegID = -1

// Value is an instruction operand: either a constant or a virtual
// register.
type Value struct {
	isConst bool
	c       int64
	r       RegID
}

// ConstVal returns a constant operand.
func ConstVal(c int64) Value { return Value{isConst: true, c: c} }

// RegVal returns a register operand.
func RegVal(r RegID) Value { return Value{r: r} }

// IsConst reports whether the value is a constant.
func (v Value) IsConst() bool { return v.isConst }

// Const returns the constant payload; it panics if the value is a
// register.
func (v Value) Const() int64 {
	if !v.isConst {
		panic("ir: Const on register value")
	}
	return v.c
}

// Reg returns the register payload; it panics if the value is a constant.
func (v Value) Reg() RegID {
	if v.isConst {
		panic("ir: Reg on constant value")
	}
	return v.r
}

// IsReg reports whether the value is the given register.
func (v Value) IsReg(r RegID) bool { return !v.isConst && v.r == r }

// String renders the value as "#n" for constants and "rN" for registers.
func (v Value) String() string {
	if v.isConst {
		return fmt.Sprintf("#%d", v.c)
	}
	return fmt.Sprintf("r%d", v.r)
}

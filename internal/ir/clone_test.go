package ir_test

import (
	"testing"

	"repro/internal/ir"
)

// buildCloneFixture makes a small two-block function with a slot, a
// global, resources, a phi, and memory references — one of everything
// Clone has to copy.
func buildCloneFixture() (*ir.Program, *ir.Function) {
	p := ir.NewProgram()
	g := p.AddGlobal("x", 1, false, nil)
	f := ir.NewFunction(p, "main")
	slot := f.NewSlot("a", 1, false, nil)
	res := f.AddResource("x", ir.ResScalar, ir.GlobalLoc(g, 0))

	r0 := f.NewReg("t")
	r1 := f.NewReg("u")
	r2 := f.NewReg("phi")

	b0, b1 := f.NewBlock(), f.NewBlock()
	ir.AddEdge(b0, b1)
	ir.AddEdge(b1, b1)

	ld := ir.NewInstr(ir.OpLoad, r0)
	ld.Loc = ir.GlobalLoc(g, 0)
	ld.MemUses = []ir.MemRef{{Res: res.ID}}
	b0.Append(ld)
	st := ir.NewInstr(ir.OpStore, ir.NoReg, ir.RegVal(r0))
	st.Loc = ir.SlotLoc(slot, 0)
	st.MemDefs = []ir.MemRef{{Res: res.ID}}
	b0.Append(st)
	b0.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))

	phi := ir.NewInstr(ir.OpPhi, r2, ir.RegVal(r0), ir.RegVal(r2))
	b1.Append(phi)
	b1.Append(ir.NewInstr(ir.OpAdd, r1, ir.RegVal(r2), ir.ConstVal(1)))
	b1.Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(r1)))
	// Make b1 a proper 2-succ branch target: b1 -> b1 already; add exit.
	b2 := f.NewBlock()
	ir.AddEdge(b1, b2)
	b2.Append(ir.NewInstr(ir.OpRet, ir.NoReg))
	return p, f
}

func TestClonePrintsIdentically(t *testing.T) {
	_, f := buildCloneFixture()
	c := f.Clone()
	if got, want := c.String(), f.String(); got != want {
		t.Fatalf("clone prints differently:\n--- original\n%s\n--- clone\n%s", want, got)
	}
	if err := c.Verify(ir.VerifyCFG); err != nil {
		t.Fatalf("clone fails verify: %v", err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	_, f := buildCloneFixture()
	c := f.Clone()

	// Mutating the original must not affect the clone.
	before := c.String()
	f.Entry().Instrs[0].Op = ir.OpDummyLoad
	f.Entry().Instrs[0].MemUses = nil
	f.Resources[0].Name = "mutated"
	f.Slots[0].Name = "mutated"
	if c.String() != before {
		t.Fatal("mutating original leaked into clone")
	}

	// The clone's blocks, instrs, slots, and resources are fresh objects.
	if c.Entry() == f.Entry() {
		t.Fatal("clone shares blocks")
	}
	if c.Slots[0] == f.Slots[0] {
		t.Fatal("clone shares slots")
	}
	if c.Resources[0] == f.Resources[0] {
		t.Fatal("clone shares resources")
	}
	for _, b := range c.Blocks {
		if b.Func != c {
			t.Fatalf("clone block %v points at wrong function", b)
		}
		for _, in := range b.Instrs {
			if in.Parent != b {
				t.Fatalf("clone instr in %v has wrong parent", b)
			}
			if in.Loc.Kind == ir.LocSlot && in.Loc.Slot == f.Slots[0] {
				t.Fatal("clone instruction references original slot")
			}
		}
	}
}

func TestCloneSharesGlobals(t *testing.T) {
	p, f := buildCloneFixture()
	c := f.Clone()
	orig := f.Entry().Instrs[0].Loc.Global
	cl := c.Entry().Instrs[0].Loc.Global
	if orig != cl || cl != p.Globals[0] {
		t.Fatal("clone must share Global objects with the program")
	}
}

func TestReplaceFunction(t *testing.T) {
	p, f := buildCloneFixture()
	c := f.Clone()
	p.ReplaceFunction(c)
	if p.Func("main") != c {
		t.Fatal("ReplaceFunction did not update the name index")
	}
	found := false
	for _, fn := range p.Funcs {
		if fn == f {
			t.Fatal("original function still registered")
		}
		if fn == c {
			found = true
		}
	}
	if !found {
		t.Fatal("replacement not in Funcs")
	}
	if c.Prog != p {
		t.Fatal("replacement Prog pointer not set")
	}
}

package ir

import "fmt"

// BlockID identifies a basic block within a function. IDs are assigned
// densely at creation and never reused, so they stay stable across CFG
// edits (new blocks get fresh IDs).
type BlockID int32

// Block is a basic block: a phi prefix followed by ordinary instructions
// and exactly one terminator. Preds and Succs describe the CFG; phi and
// memphi arguments are positional with Preds.
type Block struct {
	ID     BlockID
	Instrs []*Instr
	Preds  []*Block
	Succs  []*Block
	Func   *Function
}

// String renders the block label, "bN".
func (b *Block) String() string { return fmt.Sprintf("b%d", b.ID) }

// Term returns the block terminator, or nil if the block is unterminated
// (legal only mid-construction).
func (b *Block) Term() *Instr {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].Op.IsTerminator() {
		return b.Instrs[n-1]
	}
	return nil
}

// Append adds an instruction at the end of the block (after any existing
// terminator check is the caller's concern during construction).
func (b *Block) Append(in *Instr) *Instr {
	in.Parent = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertBefore inserts in immediately before pos, which must be in this
// block.
func (b *Block) InsertBefore(in, pos *Instr) {
	i := b.indexOf(pos)
	b.insertAt(in, i)
}

// InsertAfter inserts in immediately after pos, which must be in this
// block.
func (b *Block) InsertAfter(in, pos *Instr) {
	i := b.indexOf(pos)
	b.insertAt(in, i+1)
}

// InsertBeforeTerm inserts in immediately before the block terminator, or
// appends if the block is unterminated.
func (b *Block) InsertBeforeTerm(in *Instr) {
	if t := b.Term(); t != nil {
		b.InsertBefore(in, t)
		return
	}
	b.Append(in)
}

// InsertPhi inserts a phi or memphi instruction at the start of the
// block's phi prefix.
func (b *Block) InsertPhi(phi *Instr) {
	if !phi.Op.IsPhi() {
		panic("ir: InsertPhi on non-phi instruction")
	}
	b.insertAt(phi, 0)
}

// InsertAfterPhis inserts in after the block's phi prefix.
func (b *Block) InsertAfterPhis(in *Instr) {
	i := 0
	for i < len(b.Instrs) && b.Instrs[i].Op.IsPhi() {
		i++
	}
	b.insertAt(in, i)
}

func (b *Block) insertAt(in *Instr, i int) {
	in.Parent = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// Remove deletes in from the block. It panics if in is not present.
func (b *Block) Remove(in *Instr) {
	i := b.indexOf(in)
	copy(b.Instrs[i:], b.Instrs[i+1:])
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
	in.Parent = nil
}

func (b *Block) indexOf(in *Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	panic(fmt.Sprintf("ir: instruction %v not in block %v", in.Op, b))
}

// Phis returns the block's phi prefix (both register and memory phis).
func (b *Block) Phis() []*Instr {
	i := 0
	for i < len(b.Instrs) && b.Instrs[i].Op.IsPhi() {
		i++
	}
	return b.Instrs[:i]
}

// PredIndex returns the position of p in the predecessor list, or -1.
func (b *Block) PredIndex(p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// SuccIndex returns the position of s in the successor list, or -1.
func (b *Block) SuccIndex(s *Block) int {
	for i, q := range b.Succs {
		if q == s {
			return i
		}
	}
	return -1
}

// AddEdge links b -> s, appending to both edge lists. Phi arguments in s
// are not extended; use this only before phis exist or when the caller
// maintains them.
func AddEdge(b, s *Block) {
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
	if b.Func != nil {
		b.Func.MarkCFGChanged()
	}
}

// ReplacePred substitutes newPred for oldPred in b's predecessor list,
// preserving position so that phi arguments keep their association.
func (b *Block) ReplacePred(oldPred, newPred *Block) {
	i := b.PredIndex(oldPred)
	if i < 0 {
		panic(fmt.Sprintf("ir: %v is not a predecessor of %v", oldPred, b))
	}
	b.Preds[i] = newPred
	if b.Func != nil {
		b.Func.MarkCFGChanged()
	}
}

// RemovePred deletes predecessor p from b, removing the corresponding
// positional argument from every phi and memphi in b.
func (b *Block) RemovePred(p *Block) {
	i := b.PredIndex(p)
	if i < 0 {
		panic(fmt.Sprintf("ir: %v is not a predecessor of %v", p, b))
	}
	b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
	if b.Func != nil {
		b.Func.MarkCFGChanged()
	}
	for _, in := range b.Phis() {
		switch in.Op {
		case OpPhi:
			in.Args = append(in.Args[:i], in.Args[i+1:]...)
		case OpMemPhi:
			in.MemUses = append(in.MemUses[:i], in.MemUses[i+1:]...)
		}
	}
}

package ir

import "fmt"

// ResourceID indexes a function's resource table.
type ResourceID int32

// NoResource marks an absent resource reference.
const NoResource ResourceID = -1

// ResourceKind classifies memory resources.
type ResourceKind uint8

const (
	// ResScalar is a singleton resource: one promotable scalar memory
	// cell (global scalar, address-exposed local scalar, or scalar
	// struct component).
	ResScalar ResourceKind = iota
	// ResArray is the resource of a whole array object. Array resources
	// are never promoted; array accesses reference them as aliased.
	ResArray
)

// Resource is a memory resource in a function's resource table. Base
// resources (Version 0, Orig == ID) are created by alias analysis, one
// per memory location the function may touch. SSA renaming creates
// versioned resources that share the base's Loc and point back at it
// through Orig, mirroring the paper's rule that "we keep track of the
// original name of every newly created singleton".
type Resource struct {
	ID      ResourceID
	Name    string // base name, e.g. "x" or "buf"
	Kind    ResourceKind
	Orig    ResourceID // base resource; for a base, Orig == ID
	Version int        // 0 for base resources
	Loc     MemLoc     // the memory cell(s) this resource names
}

// IsBase reports whether r is a base (pre-SSA) resource.
func (r *Resource) IsBase() bool { return r.Orig == r.ID }

// Promotable reports whether the resource names a single scalar cell and
// is therefore a candidate for register promotion.
func (r *Resource) Promotable() bool { return r.Kind == ResScalar }

// String renders the resource as "name.version".
func (r *Resource) String() string {
	return fmt.Sprintf("%s.%d", r.Name, r.Version)
}

// MemRef is one memory reference on an instruction: a use or definition
// of a singleton resource version. Aliased marks references that arise
// from aggregate effects (calls, pointer accesses, array accesses) rather
// than direct scalar loads and stores; the promotion algorithm treats the
// two very differently.
type MemRef struct {
	Res     ResourceID
	Aliased bool
}

// LocKind classifies memory locations.
type LocKind uint8

const (
	// LocNone marks an instruction with no direct memory cell operand.
	LocNone LocKind = iota
	// LocGlobal is a cell inside a program global.
	LocGlobal
	// LocSlot is a cell inside a function stack slot.
	LocSlot
)

// MemLoc identifies a memory cell (or, for arrays, the base of a cell
// sequence): a global or stack slot plus a constant cell offset. Struct
// fields are flattened to constant offsets.
type MemLoc struct {
	Kind   LocKind
	Global *Global // when Kind == LocGlobal
	Slot   *Slot   // when Kind == LocSlot
	Offset int     // constant cell offset within the object
}

// GlobalLoc returns the location of cell offset within global g.
func GlobalLoc(g *Global, offset int) MemLoc {
	return MemLoc{Kind: LocGlobal, Global: g, Offset: offset}
}

// SlotLoc returns the location of cell offset within stack slot s.
func SlotLoc(s *Slot, offset int) MemLoc {
	return MemLoc{Kind: LocSlot, Slot: s, Offset: offset}
}

// Object returns the name of the object the location refers to.
func (l MemLoc) Object() string {
	switch l.Kind {
	case LocGlobal:
		return l.Global.Name
	case LocSlot:
		return l.Slot.Name
	}
	return "<none>"
}

// Size returns the cell count of the underlying object.
func (l MemLoc) Size() int {
	switch l.Kind {
	case LocGlobal:
		return l.Global.Size
	case LocSlot:
		return l.Slot.Size
	}
	return 0
}

// String renders the location as "object" or "object+offset".
func (l MemLoc) String() string {
	if l.Kind == LocNone {
		return "<none>"
	}
	if l.Offset == 0 {
		return l.Object()
	}
	return fmt.Sprintf("%s+%d", l.Object(), l.Offset)
}

// SameCell reports whether two locations name the same memory cell.
func (l MemLoc) SameCell(m MemLoc) bool {
	return l.Kind == m.Kind && l.Global == m.Global && l.Slot == m.Slot && l.Offset == m.Offset
}

// Global is a program-level memory object: a scalar (Size 1), an array,
// or a struct flattened into Size scalar cells.
type Global struct {
	Name       string
	Size       int      // number of int64 cells
	IsArray    bool     // true for arrays (indexed, non-promotable)
	FieldNames []string // for structs: one name per cell, else nil
	Init       []int64  // optional initial cell values (zero-filled if short)
	AddrTaken  bool     // set by alias analysis when any address is taken
}

// CellName returns a human-readable name of cell offset within g, such as
// "s.f" for struct fields.
func (g *Global) CellName(offset int) string {
	if g.FieldNames != nil && offset < len(g.FieldNames) {
		return g.Name + "." + g.FieldNames[offset]
	}
	if g.Size == 1 {
		return g.Name
	}
	return fmt.Sprintf("%s[%d]", g.Name, offset)
}

// Slot is a function-level memory object: an address-exposed local
// scalar, a local array, or a local struct flattened into cells.
type Slot struct {
	Name       string
	Size       int
	IsArray    bool
	FieldNames []string
	AddrTaken  bool
	Escapes    bool // address observed escaping to a call or to memory
	Index      int  // position in Function.Slots; keys FrameLayout offsets
}

// CellName returns a human-readable name of cell offset within s.
func (s *Slot) CellName(offset int) string {
	if s.FieldNames != nil && offset < len(s.FieldNames) {
		return s.Name + "." + s.FieldNames[offset]
	}
	if s.Size == 1 {
		return s.Name
	}
	return fmt.Sprintf("%s[%d]", s.Name, offset)
}

package ir

import "fmt"

// Function is one procedure: an entry block, a set of basic blocks, a
// virtual register file, stack slots for address-exposed locals and local
// aggregates, and a memory resource table filled in by alias analysis and
// extended by SSA renaming.
type Function struct {
	Name   string
	Params []RegID // parameter registers, defined on entry
	Blocks []*Block
	Slots  []*Slot
	Prog   *Program

	NumRegs   int
	regNames  []string
	nextBlock BlockID
	maxVer    map[ResourceID]int // highest version per base resource

	// cfgVersion counts CFG shape mutations: block additions and
	// removals, edge splits, and any rewiring of Preds/Succs. Analyses
	// cached per function (internal/analysis) key their entries on it, so
	// every mutation point must bump it — the ir mutators below do, and
	// code that edits Preds/Succs slices directly must call
	// MarkCFGChanged itself (see DESIGN.md §8 for the contract).
	cfgVersion uint64

	// slotOffsets[i] is the frame offset of Slots[i]; frameSize is the
	// total activation size. Both are computed lazily by FrameLayout and
	// invalidated by NewSlot, so the interpreter can allocate frames with
	// pointer arithmetic instead of a per-call map.
	slotOffsets []int64
	frameSize   int64
	slotsLaid   bool

	// Resources is the function's memory resource table, indexed by
	// ResourceID. Base resources come first (one per location the
	// function may touch); SSA renaming appends versioned resources.
	Resources []*Resource
}

// NewFunction returns an empty function registered in prog.
func NewFunction(prog *Program, name string) *Function {
	f := &Function{Name: name, Prog: prog}
	if prog != nil {
		prog.AddFunction(f)
	}
	return f
}

// Entry returns the function entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// CFGVersion returns the CFG shape version counter. Two calls returning
// the same value bracket a region with no CFG mutations, so any
// analysis of the block graph computed in between is still valid.
func (f *Function) CFGVersion() uint64 { return f.cfgVersion }

// MarkCFGChanged bumps the CFG version counter. The ir-level mutators
// (NewBlock, RemoveBlock, SplitEdge, AddEdge, ReplacePred, RemovePred,
// Renumber) call it automatically; callers that rewire Preds or Succs
// slices directly must call it themselves.
func (f *Function) MarkCFGChanged() { f.cfgVersion++ }

// BlockIDBound returns an exclusive upper bound on the BlockIDs in use:
// every block of the function has ID < BlockIDBound(). Dense analyses
// size their ID-indexed slices with it. After Renumber the bound equals
// len(Blocks).
func (f *Function) BlockIDBound() BlockID { return f.nextBlock }

// Renumber reassigns dense BlockIDs 0..len(Blocks)-1 in block-list
// order, re-establishing the dense-numbering invariant after CFG edits
// have left holes (RemoveUnreachable) or growth (edge splitting). It
// bumps the CFG version when any ID changes, invalidating cached
// analyses, and must therefore not be called between collecting a
// profile and consuming it — block IDs are the profile's keys.
// cfg.Normalize renumbers exactly once per function, right after
// removing unreachable blocks and before any ID-keyed state exists.
func (f *Function) Renumber() {
	changed := false
	for i, b := range f.Blocks {
		if b.ID != BlockID(i) {
			b.ID = BlockID(i)
			changed = true
		}
	}
	if f.nextBlock != BlockID(len(f.Blocks)) {
		f.nextBlock = BlockID(len(f.Blocks))
		changed = true
	}
	if changed {
		f.MarkCFGChanged()
	}
}

// NewBlock creates a block with a fresh ID and appends it to the
// function.
func (f *Function) NewBlock() *Block {
	b := &Block{ID: f.nextBlock, Func: f}
	f.nextBlock++
	f.Blocks = append(f.Blocks, b)
	f.MarkCFGChanged()
	return b
}

// NewReg allocates a fresh virtual register. The name is a debugging
// hint and may be empty.
func (f *Function) NewReg(name string) RegID {
	r := RegID(f.NumRegs)
	f.NumRegs++
	f.regNames = append(f.regNames, name)
	return r
}

// RegName returns the debugging name hint of r, or "".
func (f *Function) RegName(r RegID) string {
	if int(r) < len(f.regNames) {
		return f.regNames[r]
	}
	return ""
}

// NewSlot creates a stack slot for an address-exposed local or local
// aggregate.
func (f *Function) NewSlot(name string, size int, isArray bool, fields []string) *Slot {
	s := &Slot{Name: name, Size: size, IsArray: isArray, FieldNames: fields, Index: len(f.Slots)}
	f.Slots = append(f.Slots, s)
	f.slotsLaid = false
	return s
}

// FrameLayout returns the per-slot frame offsets (indexed by
// Slot.Index) and the total frame size, laying slots out contiguously
// in declaration order. The layout is computed once and cached; NewSlot
// invalidates it. The interpreter resolves a slot cell as
// frameBase + offsets[slot.Index] + cellOffset.
func (f *Function) FrameLayout() ([]int64, int64) {
	if !f.slotsLaid || len(f.slotOffsets) != len(f.Slots) {
		offs := make([]int64, len(f.Slots))
		var size int64
		for i, s := range f.Slots {
			offs[i] = size
			size += int64(s.Size)
		}
		f.slotOffsets = offs
		f.frameSize = size
		f.slotsLaid = true
	}
	return f.slotOffsets, f.frameSize
}

// AddResource appends a base resource for the given location and returns
// it. Alias analysis uses this to seed the resource table.
func (f *Function) AddResource(name string, kind ResourceKind, loc MemLoc) *Resource {
	r := &Resource{
		ID:   ResourceID(len(f.Resources)),
		Name: name,
		Kind: kind,
		Loc:  loc,
	}
	r.Orig = r.ID
	f.Resources = append(f.Resources, r)
	return r
}

// NewVersion appends a fresh SSA version of the base resource orig and
// returns it. The version number is one greater than the highest existing
// version of that base.
func (f *Function) NewVersion(orig ResourceID) *Resource {
	base := f.Resources[orig]
	if !base.IsBase() {
		base = f.Resources[base.Orig]
	}
	if f.maxVer == nil {
		f.maxVer = make(map[ResourceID]int)
	}
	ver, ok := f.maxVer[base.ID]
	if !ok {
		for _, r := range f.Resources {
			if r.Orig == base.ID && r.Version > ver {
				ver = r.Version
			}
		}
	}
	nr := &Resource{
		ID:      ResourceID(len(f.Resources)),
		Name:    base.Name,
		Kind:    base.Kind,
		Orig:    base.ID,
		Version: ver + 1,
		Loc:     base.Loc,
	}
	f.maxVer[base.ID] = ver + 1
	f.Resources = append(f.Resources, nr)
	return nr
}

// Res returns the resource with the given ID.
func (f *Function) Res(id ResourceID) *Resource {
	return f.Resources[id]
}

// BaseOf returns the base resource of the given (possibly versioned)
// resource ID.
func (f *Function) BaseOf(id ResourceID) *Resource {
	return f.Resources[f.Resources[id].Orig]
}

// FindSlot returns the slot with the given name, or nil.
func (f *Function) FindSlot(name string) *Slot {
	for _, s := range f.Slots {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// RemoveBlock deletes b from the function's block list. The caller must
// have already unlinked its edges.
func (f *Function) RemoveBlock(b *Block) {
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			f.MarkCFGChanged()
			return
		}
	}
	panic(fmt.Sprintf("ir: block %v not in function %s", b, f.Name))
}

// SplitEdge inserts a new block on the edge from -> to and returns it.
// The new block ends in a jump to to. Positional phi arguments in to are
// preserved because the new block replaces from at the same predecessor
// index. If the edge appears multiple times (a conditional branch with
// identical targets) only the occurrence at the given successor index is
// split; pass -1 to split the first occurrence.
func (f *Function) SplitEdge(from, to *Block, succIdx int) *Block {
	if succIdx < 0 {
		succIdx = from.SuccIndex(to)
	}
	if succIdx < 0 || from.Succs[succIdx] != to {
		panic(fmt.Sprintf("ir: no edge %v -> %v at index %d", from, to, succIdx))
	}
	mid := f.NewBlock()
	mid.Append(NewInstr(OpJmp, NoReg))
	from.Succs[succIdx] = mid
	mid.Preds = []*Block{from}
	mid.Succs = []*Block{to}
	to.ReplacePred(from, mid)
	return mid
}

// Program is a whole compilation unit: an ordered set of functions plus
// the global memory objects they share.
type Program struct {
	Funcs   []*Function
	Globals []*Global

	funcsByName map[string]*Function
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{funcsByName: make(map[string]*Function)}
}

// AddFunction registers f in the program.
func (p *Program) AddFunction(f *Function) {
	f.Prog = p
	p.Funcs = append(p.Funcs, f)
	p.funcsByName[f.Name] = f
}

// ReplaceFunction substitutes nf for the registered function of the same
// name, preserving its position in Funcs. Calls are linked by name, so
// every call site picks up the replacement automatically. The pipeline
// uses this to swap a pre-transformation snapshot back in when a stage
// fails on one function.
func (p *Program) ReplaceFunction(nf *Function) {
	old := p.funcsByName[nf.Name]
	if old == nil {
		p.AddFunction(nf)
		return
	}
	for i, f := range p.Funcs {
		if f == old {
			p.Funcs[i] = nf
			break
		}
	}
	p.funcsByName[nf.Name] = nf
	nf.Prog = p
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Function {
	return p.funcsByName[name]
}

// FuncIndex returns the position of the named function in Funcs
// (declaration order), or -1. ReplaceFunction preserves positions, so
// the index is stable across snapshot rollbacks — the pipeline keys its
// canonical result ordering on it.
func (p *Program) FuncIndex(name string) int {
	f := p.funcsByName[name]
	if f == nil {
		return -1
	}
	for i, x := range p.Funcs {
		if x == f {
			return i
		}
	}
	return -1
}

// AddGlobal registers a global object and returns it.
func (p *Program) AddGlobal(name string, size int, isArray bool, fields []string) *Global {
	g := &Global{Name: name, Size: size, IsArray: isArray, FieldNames: fields}
	p.Globals = append(p.Globals, g)
	return g
}

// FindGlobal returns the global with the given name, or nil.
func (p *Program) FindGlobal(name string) *Global {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

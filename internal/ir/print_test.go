package ir

import (
	"strings"
	"testing"
)

// TestPrinterGoldenPerOp builds one instruction per opcode and checks
// the printed form, pinning the textual IR syntax that debugging and
// documentation rely on.
func TestPrinterGoldenPerOp(t *testing.T) {
	p := NewProgram()
	g := p.AddGlobal("x", 1, false, nil)
	arr := p.AddGlobal("a", 4, true, nil)
	f := NewFunction(p, "golden")
	res := f.AddResource("x", ResScalar, GlobalLoc(g, 0))
	arrRes := f.AddResource("a", ResArray, GlobalLoc(arr, 0))
	b := f.NewBlock()
	b2 := f.NewBlock()
	AddEdge(b, b2)
	b2.Append(NewInstr(OpRet, NoReg))

	mk := func(op Op, dst RegID, args ...Value) *Instr {
		in := NewInstr(op, dst, args...)
		in.Parent = b
		return in
	}

	cases := []struct {
		in   *Instr
		want string
	}{
		{mk(OpAdd, 3, RegVal(1), ConstVal(2)), "r3 = add r1, #2"},
		{mk(OpSub, 3, RegVal(1), RegVal(2)), "r3 = sub r1, r2"},
		{mk(OpNeg, 4, RegVal(1)), "r4 = neg r1"},
		{mk(OpNot, 4, ConstVal(0)), "r4 = not #0"},
		{mk(OpEq, 5, RegVal(1), ConstVal(9)), "r5 = eq r1, #9"},
		{mk(OpCopy, 6, RegVal(2)), "r6 = copy r2"},
		{mk(OpPrint, NoReg, RegVal(7)), "print r7"},
		{mk(OpAddr, 8, ConstVal(0)), "r8 = addr <none>"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%s: printed %q, want %q", c.in.Op, got, c.want)
		}
	}

	ld := mk(OpLoad, 9)
	ld.Loc = GlobalLoc(g, 0)
	ld.MemUses = []MemRef{{Res: res.ID}}
	if got := ld.String(); got != "r9 = load x {x.0}" {
		t.Errorf("load printed %q", got)
	}

	st := mk(OpStore, NoReg, ConstVal(5))
	st.Loc = GlobalLoc(g, 0)
	st.MemDefs = []MemRef{{Res: res.ID}}
	if got := st.String(); got != "store x = #5 {x.0}" {
		t.Errorf("store printed %q", got)
	}

	li := mk(OpLoadIdx, 10, RegVal(2))
	li.Loc = GlobalLoc(arr, 0)
	li.MemUses = []MemRef{{Res: arrRes.ID, Aliased: true}}
	if got := li.String(); !strings.Contains(got, "loadidx a[r2]") || !strings.Contains(got, "mu{a.0}") {
		t.Errorf("loadidx printed %q", got)
	}

	call := mk(OpCall, 11, RegVal(1))
	call.Callee = "foo"
	call.MemUses = []MemRef{{Res: res.ID, Aliased: true}}
	call.MemDefs = []MemRef{{Res: res.ID, Aliased: true}}
	if got := call.String(); !strings.Contains(got, "r11 = call foo(r1)") ||
		!strings.Contains(got, "mu{x.0}") || !strings.Contains(got, "chi{x.0}") {
		t.Errorf("call printed %q", got)
	}

	dummy := mk(OpDummyLoad, NoReg)
	dummy.MemUses = []MemRef{{Res: res.ID, Aliased: true}}
	if got := dummy.String(); got != "dummyload mu{x.0}" {
		t.Errorf("dummyload printed %q", got)
	}

	lp := mk(OpLoadPtr, 12, RegVal(3))
	lp.MemUses = []MemRef{{Res: res.ID, Aliased: true}}
	if got := lp.String(); got != "r12 = loadptr r3 mu{x.0}" {
		t.Errorf("loadptr printed %q", got)
	}

	sp := mk(OpStorePtr, NoReg, RegVal(3), ConstVal(7))
	sp.MemDefs = []MemRef{{Res: res.ID, Aliased: true}}
	if got := sp.String(); got != "storeptr r3 = #7 chi{x.0}" {
		t.Errorf("storeptr printed %q", got)
	}

	// Terminators render their targets from block context.
	jmp := b.Append(NewInstr(OpJmp, NoReg))
	if got := jmp.String(); got != "jmp b1" {
		t.Errorf("jmp printed %q", got)
	}

	// Phis render predecessor labels.
	p2 := NewProgram()
	f2 := NewFunction(p2, "phis")
	a0, a1, join := f2.NewBlock(), f2.NewBlock(), f2.NewBlock()
	AddEdge(a0, join)
	AddEdge(a1, join)
	phi := NewInstr(OpPhi, 5, ConstVal(1), RegVal(2))
	join.InsertPhi(phi)
	if got := phi.String(); got != "r5 = phi [b0: #1], [b1: r2]" {
		t.Errorf("phi printed %q", got)
	}
}

func TestProgramPrintIncludesGlobals(t *testing.T) {
	p := NewProgram()
	p.AddGlobal("g", 1, false, nil)
	p.AddGlobal("buf", 16, true, nil)
	f := NewFunction(p, "main")
	b := f.NewBlock()
	b.Append(NewInstr(OpRet, NoReg))
	out := p.String()
	for _, want := range []string{"global g [1]", "global buf [16]", "func main() {"} {
		if !strings.Contains(out, want) {
			t.Errorf("program print missing %q:\n%s", want, out)
		}
	}
}

func TestCellNames(t *testing.T) {
	g := &Global{Name: "s", Size: 2, FieldNames: []string{"a", "b"}}
	if g.CellName(1) != "s.b" {
		t.Errorf("CellName = %q", g.CellName(1))
	}
	arr := &Global{Name: "v", Size: 3}
	if arr.CellName(2) != "v[2]" {
		t.Errorf("CellName = %q", arr.CellName(2))
	}
	scalar := &Global{Name: "x", Size: 1}
	if scalar.CellName(0) != "x" {
		t.Errorf("CellName = %q", scalar.CellName(0))
	}
	s := &Slot{Name: "t", Size: 2, FieldNames: []string{"lo", "hi"}}
	if s.CellName(0) != "t.lo" {
		t.Errorf("slot CellName = %q", s.CellName(0))
	}
}

func TestMemLocHelpers(t *testing.T) {
	g := &Global{Name: "x", Size: 4}
	l := GlobalLoc(g, 2)
	if l.Object() != "x" || l.Size() != 4 || l.String() != "x+2" {
		t.Errorf("loc = %v/%v/%v", l.Object(), l.Size(), l.String())
	}
	if !l.SameCell(GlobalLoc(g, 2)) || l.SameCell(GlobalLoc(g, 1)) {
		t.Error("SameCell broken")
	}
	var none MemLoc
	if none.String() != "<none>" || none.Object() != "<none>" || none.Size() != 0 {
		t.Errorf("zero loc misprints: %v", none)
	}
}

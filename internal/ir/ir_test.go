package ir

import (
	"strings"
	"testing"
)

// buildDiamond constructs:
//
//	b0: br r0, b1, b2
//	b1: jmp b3
//	b2: jmp b3
//	b3: ret
func buildDiamond(t *testing.T) *Function {
	t.Helper()
	p := NewProgram()
	f := NewFunction(p, "diamond")
	cond := f.NewReg("cond")
	f.Params = []RegID{cond}
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	b0.Append(NewInstr(OpBr, NoReg, RegVal(cond)))
	b1.Append(NewInstr(OpJmp, NoReg))
	b2.Append(NewInstr(OpJmp, NoReg))
	b3.Append(NewInstr(OpRet, NoReg))
	AddEdge(b0, b1)
	AddEdge(b0, b2)
	AddEdge(b1, b3)
	AddEdge(b2, b3)
	return f
}

func TestVerifyDiamond(t *testing.T) {
	f := buildDiamond(t)
	if err := f.Verify(VerifySSA); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	p := NewProgram()
	f := NewFunction(p, "broken")
	b := f.NewBlock()
	r := f.NewReg("")
	b.Append(NewInstr(OpCopy, r, ConstVal(1)))
	if err := f.Verify(VerifyCFG); err == nil {
		t.Fatal("Verify accepted block without terminator")
	}
}

func TestVerifyCatchesDoubleDef(t *testing.T) {
	p := NewProgram()
	f := NewFunction(p, "dd")
	b := f.NewBlock()
	r := f.NewReg("")
	b.Append(NewInstr(OpCopy, r, ConstVal(1)))
	b.Append(NewInstr(OpCopy, r, ConstVal(2)))
	b.Append(NewInstr(OpRet, NoReg))
	if err := f.Verify(VerifySSA); err == nil {
		t.Fatal("Verify accepted double definition in SSA mode")
	}
}

func TestVerifyCatchesPhiArity(t *testing.T) {
	f := buildDiamond(t)
	b3 := f.Blocks[3]
	r := f.NewReg("")
	phi := NewInstr(OpPhi, r, ConstVal(1)) // one arg, two preds
	b3.insertAt(phi, 0)
	if err := f.Verify(VerifyCFG); err == nil {
		t.Fatal("Verify accepted phi with wrong arity")
	}
}

func TestVerifyCatchesBrSameTargets(t *testing.T) {
	p := NewProgram()
	f := NewFunction(p, "same")
	c := f.NewReg("c")
	f.Params = []RegID{c}
	b0, b1 := f.NewBlock(), f.NewBlock()
	b0.Append(NewInstr(OpBr, NoReg, RegVal(c)))
	b1.Append(NewInstr(OpRet, NoReg))
	AddEdge(b0, b1)
	AddEdge(b0, b1)
	if err := f.Verify(VerifyCFG); err == nil {
		t.Fatal("Verify accepted br with identical targets")
	}
}

func TestSplitEdgePreservesPhiAssociation(t *testing.T) {
	f := buildDiamond(t)
	b0, b1, b2, b3 := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	_ = b0
	v1 := f.NewReg("")
	v2 := f.NewReg("")
	dst := f.NewReg("")
	// Need defs for SSA check.
	b1.insertAt(NewInstr(OpCopy, v1, ConstVal(10)), 0)
	b2.insertAt(NewInstr(OpCopy, v2, ConstVal(20)), 0)
	phi := NewInstr(OpPhi, dst, RegVal(v1), RegVal(v2))
	b3.insertAt(phi, 0)
	if err := f.Verify(VerifySSA); err != nil {
		t.Fatalf("pre-split Verify: %v", err)
	}

	idx1 := b3.PredIndex(b1)
	mid := f.SplitEdge(b1, b3, -1)
	if b3.Preds[idx1] != mid {
		t.Fatalf("split block not at old predecessor index: preds=%v", b3.Preds)
	}
	if got := phi.Args[idx1]; !got.IsReg(v1) {
		t.Fatalf("phi arg moved: got %v want r%d", got, v1)
	}
	if err := f.Verify(VerifySSA); err != nil {
		t.Fatalf("post-split Verify: %v", err)
	}
	if mid.Term().Op != OpJmp {
		t.Fatalf("split block terminator = %v, want jmp", mid.Term().Op)
	}
}

func TestRemovePredDropsPhiArg(t *testing.T) {
	f := buildDiamond(t)
	b1, b2, b3 := f.Blocks[1], f.Blocks[2], f.Blocks[3]
	v1, v2, dst := f.NewReg(""), f.NewReg(""), f.NewReg("")
	b1.insertAt(NewInstr(OpCopy, v1, ConstVal(1)), 0)
	b2.insertAt(NewInstr(OpCopy, v2, ConstVal(2)), 0)
	b3.insertAt(NewInstr(OpPhi, dst, RegVal(v1), RegVal(v2)), 0)

	b3.RemovePred(b1)
	phi := b3.Instrs[0]
	if len(phi.Args) != 1 || !phi.Args[0].IsReg(v2) {
		t.Fatalf("phi args after RemovePred = %v", phi.Args)
	}
}

func TestInsertHelpers(t *testing.T) {
	p := NewProgram()
	f := NewFunction(p, "ins")
	b := f.NewBlock()
	r0, r1, r2, r3 := f.NewReg(""), f.NewReg(""), f.NewReg(""), f.NewReg("")
	phi := NewInstr(OpPhi, r0)
	b.Append(phi)
	term := NewInstr(OpRet, NoReg)
	b.Append(term)

	mid := NewInstr(OpCopy, r1, ConstVal(1))
	b.InsertAfterPhis(mid)
	pre := NewInstr(OpCopy, r2, ConstVal(2))
	b.InsertBeforeTerm(pre)
	after := NewInstr(OpCopy, r3, ConstVal(3))
	b.InsertAfter(after, mid)

	wantOrder := []*Instr{phi, mid, after, pre, term}
	if len(b.Instrs) != len(wantOrder) {
		t.Fatalf("got %d instrs, want %d", len(b.Instrs), len(wantOrder))
	}
	for i, in := range wantOrder {
		if b.Instrs[i] != in {
			t.Fatalf("instr %d = %s, want %s", i, b.Instrs[i].Op, in.Op)
		}
		if in.Parent != b {
			t.Fatalf("instr %d has wrong parent", i)
		}
	}

	b.Remove(mid)
	if len(b.Instrs) != 4 || mid.Parent != nil {
		t.Fatalf("Remove failed: %d instrs, parent=%v", len(b.Instrs), mid.Parent)
	}
}

func TestResourceVersioning(t *testing.T) {
	p := NewProgram()
	g := p.AddGlobal("x", 1, false, nil)
	f := NewFunction(p, "rv")
	base := f.AddResource("x", ResScalar, GlobalLoc(g, 0))
	if !base.IsBase() || base.Version != 0 {
		t.Fatalf("base resource malformed: %+v", base)
	}
	v1 := f.NewVersion(base.ID)
	v2 := f.NewVersion(v1.ID) // versioning a version still chains to base
	if v1.Version != 1 || v2.Version != 2 {
		t.Fatalf("versions = %d, %d; want 1, 2", v1.Version, v2.Version)
	}
	if v2.Orig != base.ID || f.BaseOf(v2.ID) != base {
		t.Fatalf("BaseOf broken: orig=%d", v2.Orig)
	}
	if v1.String() != "x.1" {
		t.Fatalf("String = %q, want x.1", v1.String())
	}
	if !v1.Loc.SameCell(base.Loc) {
		t.Fatal("version does not share base location")
	}
}

func TestValueAccessors(t *testing.T) {
	c := ConstVal(42)
	r := RegVal(7)
	if !c.IsConst() || c.Const() != 42 || c.String() != "#42" {
		t.Fatalf("const value malformed: %v", c)
	}
	if r.IsConst() || r.Reg() != 7 || r.String() != "r7" {
		t.Fatalf("reg value malformed: %v", r)
	}
	if !r.IsReg(7) || r.IsReg(8) || c.IsReg(42) {
		t.Fatal("IsReg misbehaves")
	}
}

func TestPrinterMentionsResources(t *testing.T) {
	p := NewProgram()
	g := p.AddGlobal("x", 1, false, nil)
	f := NewFunction(p, "pr")
	res := f.AddResource("x", ResScalar, GlobalLoc(g, 0))
	b := f.NewBlock()
	r := f.NewReg("t")
	ld := NewInstr(OpLoad, r)
	ld.Loc = GlobalLoc(g, 0)
	ld.MemUses = []MemRef{{Res: res.ID}}
	b.Append(ld)
	st := NewInstr(OpStore, NoReg, RegVal(r))
	st.Loc = GlobalLoc(g, 0)
	st.MemDefs = []MemRef{{Res: res.ID}}
	b.Append(st)
	b.Append(NewInstr(OpRet, NoReg))

	out := f.String()
	for _, want := range []string{"load x", "store x = r0", "{x.0}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printer output missing %q:\n%s", want, out)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	cases := []struct {
		op         Op
		term, phi  bool
		sideEffect bool
	}{
		{OpJmp, true, false, true},
		{OpBr, true, false, true},
		{OpRet, true, false, true},
		{OpPhi, false, true, false},
		{OpMemPhi, false, true, false},
		{OpAdd, false, false, false},
		{OpStore, false, false, true},
		{OpCall, false, false, true},
		{OpLoad, false, false, false},
		{OpPrint, false, false, true},
	}
	for _, c := range cases {
		if c.op.IsTerminator() != c.term {
			t.Errorf("%s.IsTerminator() = %v", c.op, !c.term)
		}
		if c.op.IsPhi() != c.phi {
			t.Errorf("%s.IsPhi() = %v", c.op, !c.phi)
		}
		if c.op.HasSideEffects() != c.sideEffect {
			t.Errorf("%s.HasSideEffects() = %v", c.op, !c.sideEffect)
		}
	}
}

package ir

// Instr is one IR instruction. The meaning of the fields depends on Op;
// see the opcode documentation. Parent is maintained by the Block
// insertion and removal helpers.
type Instr struct {
	Op     Op
	Dst    RegID   // defined register, or NoReg
	Args   []Value // register/constant operands
	Callee string  // OpCall: target function name
	Loc    MemLoc  // OpLoad/OpStore/OpAddr/OpLoadIdx/OpStoreIdx: the cell

	// MemDefs and MemUses list the singleton resource versions this
	// instruction defines and uses. Direct scalar loads and stores carry
	// exactly one non-aliased entry; calls, pointer accesses, and array
	// accesses carry one aliased entry per resource they may touch. For
	// OpMemPhi, MemDefs[0] is the target and MemUses are positional with
	// the block's predecessors.
	MemDefs []MemRef
	MemUses []MemRef

	Parent *Block
}

// NewInstr returns an instruction with the given opcode, destination, and
// operands, not yet attached to a block.
func NewInstr(op Op, dst RegID, args ...Value) *Instr {
	return &Instr{Op: op, Dst: dst, Args: args}
}

// HasDst reports whether the instruction defines a register.
func (in *Instr) HasDst() bool { return in.Dst != NoReg }

// UseRegs appends the registers read by the instruction to buf and
// returns it. Phi arguments are included.
func (in *Instr) UseRegs(buf []RegID) []RegID {
	for _, a := range in.Args {
		if !a.IsConst() {
			buf = append(buf, a.Reg())
		}
	}
	return buf
}

// ReplaceUseReg rewrites register operands reading from into value to.
func (in *Instr) ReplaceUseReg(from RegID, to Value) bool {
	changed := false
	for i, a := range in.Args {
		if a.IsReg(from) {
			in.Args[i] = to
			changed = true
		}
	}
	return changed
}

// IsDirectLoad reports whether the instruction is a scalar load (a
// singleton, non-aliased load in the paper's terminology).
func (in *Instr) IsDirectLoad() bool { return in.Op == OpLoad }

// IsDirectStore reports whether the instruction is a scalar store (a
// singleton, non-aliased store).
func (in *Instr) IsDirectStore() bool { return in.Op == OpStore }

// UsesResource reports whether the instruction's MemUses mention the
// given resource version.
func (in *Instr) UsesResource(r ResourceID) bool {
	for _, u := range in.MemUses {
		if u.Res == r {
			return true
		}
	}
	return false
}

// DefsResource reports whether the instruction's MemDefs mention the
// given resource version.
func (in *Instr) DefsResource(r ResourceID) bool {
	for _, d := range in.MemDefs {
		if d.Res == r {
			return true
		}
	}
	return false
}

// MemDefOf returns a pointer to the MemDefs entry for resource r, or nil.
func (in *Instr) MemDefOf(r ResourceID) *MemRef {
	for i := range in.MemDefs {
		if in.MemDefs[i].Res == r {
			return &in.MemDefs[i]
		}
	}
	return nil
}

// MemUseOf returns a pointer to the MemUses entry for resource r, or nil.
func (in *Instr) MemUseOf(r ResourceID) *MemRef {
	for i := range in.MemUses {
		if in.MemUses[i].Res == r {
			return &in.MemUses[i]
		}
	}
	return nil
}

// IsAliasedMemOp reports whether the instruction is an aliased load or
// aliased store in the paper's sense: a call, pointer access, or array
// access that may touch scalar resources indirectly.
func (in *Instr) IsAliasedMemOp() bool {
	switch in.Op {
	case OpCall, OpLoadPtr, OpStorePtr, OpLoadIdx, OpStoreIdx:
		return true
	}
	return false
}

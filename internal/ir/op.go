package ir

// Op enumerates the instruction opcodes of the IR.
type Op uint8

// Instruction opcodes. Arithmetic and comparison operations read register
// or constant operands and define one register. Memory operations carry
// MemDefs/MemUses lists naming the singleton resources they touch.
const (
	OpInvalid Op = iota

	// Arithmetic: Dst = Args[0] op Args[1] (Neg/Not are unary).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg
	OpNot

	// Comparisons: Dst = Args[0] cmp Args[1], producing 0 or 1.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// OpCopy: Dst = Args[0].
	OpCopy

	// OpPhi joins register values at a confluence point:
	// Dst = phi(Args[0]:Preds[0], ..., Args[n-1]:Preds[n-1]).
	OpPhi

	// OpMemPhi joins memory resource versions at a confluence point:
	// MemDefs[0] = memphi(MemUses[0]:Preds[0], ...). It generates no code;
	// it exists to give memory locations SSA structure.
	OpMemPhi

	// OpLoad: Dst = load of the scalar cell Loc. MemUses[0] names the
	// singleton resource version read (a direct, non-aliased use).
	OpLoad

	// OpStore: store Args[0] to the scalar cell Loc. MemDefs[0] names the
	// singleton resource version defined (a direct, non-aliased def).
	OpStore

	// OpAddr: Dst = address of cell Loc (base + constant Offset).
	// Taking an address makes the underlying object address-exposed.
	OpAddr

	// OpLoadPtr: Dst = *Args[0]. An aliased load: MemUses lists a version
	// of every resource the pointer may reference, each marked Aliased.
	OpLoadPtr

	// OpStorePtr: *Args[0] = Args[1]. An aliased store: MemDefs lists a
	// version of every resource the pointer may reference, each marked
	// Aliased. MemUses carries the corresponding prior versions.
	OpStorePtr

	// OpLoadIdx: Dst = Loc[Args[0]], an array element read. Uses the
	// array's resource as an aliased reference.
	OpLoadIdx

	// OpStoreIdx: Loc[Args[0]] = Args[1], an array element write. Defines
	// the array's resource as an aliased reference.
	OpStoreIdx

	// OpCall: Dst = Callee(Args...). An aliased load and aliased store of
	// every global resource and every escaped address-exposed local, per
	// the paper's conservative call model: MemUses and MemDefs list those
	// resources with Aliased set.
	OpCall

	// OpPrint writes Args[0] to the program's output stream. It has no
	// memory effect; it exists so tests and examples can observe values
	// without perturbing promotion.
	OpPrint

	// OpDummyLoad is the paper's "dummy aliased load": a no-op at run
	// time whose aliased MemUses mark, for the enclosing interval's
	// promotion pass, that the referenced resource's value must be
	// valid in memory at this point. Register promotion inserts dummy
	// loads in interval preheaders after processing an inner interval
	// and deletes every dummy when the whole function is done.
	OpDummyLoad

	// Terminators.
	OpJmp // unconditional jump to Succs[0]
	OpBr  // branch: if Args[0] != 0 go to Succs[0] else Succs[1]
	OpRet // return Args[0] if present, else void
)

// NumOps is one more than the largest opcode value, for sizing dense
// per-opcode tables.
const NumOps = int(OpRet) + 1

var opNames = [...]string{
	OpInvalid:   "invalid",
	OpAdd:       "add",
	OpSub:       "sub",
	OpMul:       "mul",
	OpDiv:       "div",
	OpRem:       "rem",
	OpAnd:       "and",
	OpOr:        "or",
	OpXor:       "xor",
	OpShl:       "shl",
	OpShr:       "shr",
	OpNeg:       "neg",
	OpNot:       "not",
	OpEq:        "eq",
	OpNe:        "ne",
	OpLt:        "lt",
	OpLe:        "le",
	OpGt:        "gt",
	OpGe:        "ge",
	OpCopy:      "copy",
	OpPhi:       "phi",
	OpMemPhi:    "memphi",
	OpLoad:      "load",
	OpStore:     "store",
	OpAddr:      "addr",
	OpLoadPtr:   "loadptr",
	OpStorePtr:  "storeptr",
	OpLoadIdx:   "loadidx",
	OpStoreIdx:  "storeidx",
	OpCall:      "call",
	OpPrint:     "print",
	OpDummyLoad: "dummyload",
	OpJmp:       "jmp",
	OpBr:        "br",
	OpRet:       "ret",
}

// String returns the lower-case mnemonic of the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}

// IsTerminator reports whether the opcode ends a basic block.
func (op Op) IsTerminator() bool {
	return op == OpJmp || op == OpBr || op == OpRet
}

// IsPhi reports whether the opcode is a register or memory phi.
func (op Op) IsPhi() bool { return op == OpPhi || op == OpMemPhi }

// IsBinary reports whether the opcode is a two-operand arithmetic or
// comparison operation.
func (op Op) IsBinary() bool { return op >= OpAdd && op <= OpGe && op != OpNeg && op != OpNot }

// IsCompare reports whether the opcode is a comparison.
func (op Op) IsCompare() bool { return op >= OpEq && op <= OpGe }

// HasSideEffects reports whether the instruction must be preserved even if
// its register result is unused: stores, calls, prints, and terminators.
// Dummy aliased loads are included so cleanup passes cannot remove them
// before the promotion driver does.
func (op Op) HasSideEffects() bool {
	switch op {
	case OpStore, OpStorePtr, OpStoreIdx, OpCall, OpPrint, OpDummyLoad, OpJmp, OpBr, OpRet:
		return true
	}
	return false
}

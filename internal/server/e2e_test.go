package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestEndToEndCorpusReplay drives a real HTTP round trip: a replay
// corpus of generated programs fired concurrently at an httptest
// server, repeating programs so the cache warms up. It asserts every
// request succeeds, the hit rate is positive, every response for the
// same program carries a byte-identical outcome (whatever mix of cache
// hits, misses, and concurrent first-computations produced it), and the
// server drains cleanly afterwards.
func TestEndToEndCorpusReplay(t *testing.T) {
	const (
		seed    = 11
		unique  = 3
		n       = 24
		clients = 4
	)
	s := newTestServer(t, Config{Workers: 2, QueueDepth: n}) // queue deep enough to never reject
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	corpus, err := workload.ReplayCorpus(seed, unique, "small")
	if err != nil {
		t.Fatal(err)
	}
	bodies := make([][]byte, unique)
	for i, w := range corpus {
		b, err := json.Marshal(PromoteRequest{Source: w.Src})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = b
	}
	mix := workload.MixIndexes(seed, n, unique)

	type reply struct {
		program int
		cache   string
		outcome []byte
		err     error
	}
	replies := make([]reply, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				program := mix[i]
				resp, err := http.Post(ts.URL+"/v1/promote", "application/json", bytes.NewReader(bodies[program]))
				if err != nil {
					replies[i] = reply{program: program, err: err}
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err == nil && resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d: %s", resp.StatusCode, body)
				}
				if err != nil {
					replies[i] = reply{program: program, err: err}
					continue
				}
				var pr PromoteResponse
				if err := json.Unmarshal(body, &pr); err != nil {
					replies[i] = reply{program: program, err: err}
					continue
				}
				replies[i] = reply{program: program, cache: pr.Serving.Cache, outcome: pr.Outcome}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	hits := 0
	canonical := make(map[int][]byte, unique)
	for i, r := range replies {
		if r.err != nil {
			t.Fatalf("request %d (program %d): %v", i, r.program, r.err)
		}
		if r.cache == "hit" {
			hits++
		}
		if want, ok := canonical[r.program]; ok {
			if !bytes.Equal(want, r.outcome) {
				t.Fatalf("program %d served two different outcomes:\n%s\nvs\n%s", r.program, want, r.outcome)
			}
		} else {
			canonical[r.program] = r.outcome
		}
	}
	if hits == 0 {
		t.Fatalf("no cache hits across %d requests over %d programs", n, unique)
	}
	if len(canonical) != unique {
		t.Fatalf("replay touched %d of %d programs", len(canonical), unique)
	}

	// Every outcome must carry the schema version.
	for program, out := range canonical {
		var enc struct {
			SchemaVersion int `json:"schema_version"`
		}
		if err := json.Unmarshal(out, &enc); err != nil || enc.SchemaVersion != 1 {
			t.Fatalf("program %d outcome schema_version = %d (err %v), want 1", program, enc.SchemaVersion, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain after load = %v, want nil", err)
	}
	resp, err := http.Post(ts.URL+"/v1/promote", "application/json", bytes.NewReader(bodies[0]))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: %d, want 503", resp.StatusCode)
	}
}

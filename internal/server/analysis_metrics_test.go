package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestStripPortShapes is the table the IPv6 audit produced: bracketed
// IPv6 with and without ports and zones, portless IPv6, IPv4, and
// hostname shapes must all reduce to a stable per-host key.
func TestStripPortShapes(t *testing.T) {
	cases := []struct{ addr, want string }{
		{"10.0.0.1:8080", "10.0.0.1"},
		{"10.0.0.1", "10.0.0.1"},
		{"host:123", "host"},
		{"host", "host"},
		{"host:", "host:"},         // trailing colon, no digits
		{"host:12ab", "host:12ab"}, // non-numeric suffix is not a port
		{":8080", ":8080"},         // no host part to key on
		{"[::1]:8080", "::1"},
		{"[::1]", "::1"},
		{"[fe80::1%eth0]:443", "fe80::1%eth0"},
		{"[fe80::1%eth0]", "fe80::1%eth0"},
		{"[2001:db8::7]:65535", "2001:db8::7"},
		{"::1", "::1"},                      // portless; old heuristic returned ":"
		{"fe80::2", "fe80::2"},              // candidate port right after "::"
		{"2001:db8::5:8080", "2001:db8::5"}, /* ambiguous; stripped for stability */
		{"::1:40001", "::1"},
		{"unix-socket", "unix-socket"},
	}
	for _, c := range cases {
		if got := stripPort(c.addr); got != c.want {
			t.Errorf("stripPort(%q) = %q, want %q", c.addr, got, c.want)
		}
	}
	// The invariant rate limiting needs: the same host with different
	// ephemeral ports lands in the same bucket, for every shape.
	pairs := [][2]string{
		{"10.0.0.1:1111", "10.0.0.1:2222"},
		{"[::1]:1111", "[::1]:2222"},
		{"[fe80::1%eth0]:1111", "[fe80::1%eth0]:2222"},
		{"::1:1111", "::1:2222"},
	}
	for _, p := range pairs {
		if a, b := stripPort(p[0]), stripPort(p[1]); a != b {
			t.Errorf("stripPort keys differ across ports: %q -> %q vs %q -> %q", p[0], a, p[1], b)
		}
	}
	// Bracketed and SplitHostPort-parsed forms agree on the bucket.
	if got := stripPort("[2001:db8::7]"); got != "2001:db8::7" {
		t.Errorf("bracketed key %q disagrees with SplitHostPort host", got)
	}
}

// TestMetricsAnalysisBuilds checks /metrics exports per-kind analysis
// build counts and that a pressure-capped run makes the liveness kind
// move: the pipeline pulls the seeding liveness from the per-request
// cache, whose totals the server folds into the gauge.
func TestMetricsAnalysisBuilds(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	postPromote(t, s, PromoteRequest{Source: smallSrc, Options: RequestOptions{
		SkipMeasurement: true,
		PressureCap:     6,
	}})

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	body := rec.Body.String()

	series := func(kind string) int {
		t.Helper()
		re := regexp.MustCompile(fmt.Sprintf(`rpserved_analysis_builds\{kind=%q\} (\d+)`, kind))
		m := re.FindStringSubmatch(body)
		if m == nil {
			t.Fatalf("/metrics missing analysis series for kind %q:\n%s", kind, body)
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	if n := series("dom"); n == 0 {
		t.Error("dom builds = 0 after a pipeline run")
	}
	if n := series("liveness"); n == 0 {
		t.Error("liveness builds = 0 after a pressure-capped run")
	}
	// Every registered kind renders a series, even at zero.
	if !strings.Contains(body, `rpserved_analysis_builds{kind="pressure"}`) {
		t.Errorf("/metrics missing the pressure kind series:\n%s", body)
	}

	// A cache hit (identical request) runs no pipeline: builds stay put.
	before := series("liveness")
	postPromote(t, s, PromoteRequest{Source: smallSrc, Options: RequestOptions{
		SkipMeasurement: true,
		PressureCap:     6,
	}})
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body = rec.Body.String()
	if after := series("liveness"); after != before {
		t.Errorf("liveness builds moved on a cache hit: %d -> %d", before, after)
	}
}

// TestPressureCapRequestOption checks the option round-trips: negative
// is a 400 naming the field, positive runs and is part of the cache
// key.
func TestPressureCapRequestOption(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	rec, _, fail := postPromote(t, s, PromoteRequest{Source: smallSrc, Options: RequestOptions{PressureCap: -1}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("negative pressure_cap: %d, want 400", rec.Code)
	}
	if !strings.Contains(fail.Error, "PressureCap") {
		t.Errorf("400 body does not name the field: %q", fail.Error)
	}

	rec, ok, _ := postPromote(t, s, PromoteRequest{Source: smallSrc, Options: RequestOptions{PressureCap: 6, SkipMeasurement: true}})
	if rec.Code != http.StatusOK {
		t.Fatalf("pressure_cap=6: %d", rec.Code)
	}
	if ok.Serving.Cache != "miss" {
		t.Errorf("first capped request cache = %q, want miss", ok.Serving.Cache)
	}
	// Same source without the cap is a different cache key.
	rec, ok2, _ := postPromote(t, s, PromoteRequest{Source: smallSrc, Options: RequestOptions{SkipMeasurement: true}})
	if rec.Code != http.StatusOK {
		t.Fatalf("uncapped request: %d", rec.Code)
	}
	if ok2.Serving.Cache != "miss" {
		t.Errorf("uncapped request cache = %q, want miss (capped entry must not be reused)", ok2.Serving.Cache)
	}
}

package server

import (
	"context"
	"errors"
)

// ErrQueueFull is returned by admission.acquire when every worker slot
// is busy and the waiting queue is at capacity. The handler maps it to
// an HTTP 429 with a Retry-After hint — explicit backpressure instead
// of unbounded queueing.
var ErrQueueFull = errors.New("server: admission queue full")

// admission is the server's two-tier admission control: a fixed pool of
// worker slots (requests actually running the pipeline) and a bounded
// queue of requests waiting for a slot. A request beyond both bounds is
// rejected immediately. Both tiers are plain buffered channels, so
// waiting requests are served slots in FIFO-ish channel order and a
// canceled request abandons its queue position without leaking either
// token.
type admission struct {
	workers chan struct{}
	queue   chan struct{}
}

// newAdmission sizes the two tiers. workers must be >= 1; depth is the
// number of requests allowed to wait beyond the ones running (0 = no
// waiting: reject as soon as every worker is busy).
func newAdmission(workers, depth int) *admission {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	a := &admission{
		workers: make(chan struct{}, workers),
		queue:   make(chan struct{}, depth),
	}
	for i := 0; i < workers; i++ {
		a.workers <- struct{}{}
	}
	for i := 0; i < depth; i++ {
		a.queue <- struct{}{}
	}
	return a
}

// acquire obtains a worker slot, waiting in the bounded queue if all
// slots are busy. It returns the release function for the slot, a flag
// saying whether the request had to queue, ErrQueueFull when the queue
// is at capacity, or ctx.Err() when the caller gave up while queued.
func (a *admission) acquire(ctx context.Context) (release func(), queued bool, err error) {
	// Fast path: a worker slot is free right now.
	select {
	case <-a.workers:
		return func() { a.workers <- struct{}{} }, false, nil
	default:
	}
	// Slow path: take a queue token (or reject), then wait for a worker.
	select {
	case <-a.queue:
	default:
		return nil, false, ErrQueueFull
	}
	defer func() { a.queue <- struct{}{} }()
	select {
	case <-a.workers:
		return func() { a.workers <- struct{}{} }, true, nil
	case <-ctx.Done():
		return nil, true, ctx.Err()
	}
}

// inUse reports how many worker slots are currently held.
func (a *admission) inUse() int { return cap(a.workers) - len(a.workers) }

// waiting reports how many requests are currently queued.
func (a *admission) waiting() int { return cap(a.queue) - len(a.queue) }

// saturated reports whether a new request would be rejected right now:
// the waiting queue is at capacity (or, with no queue, every worker
// slot is held). This is the readiness signal — an instant before the
// 429s start.
func (a *admission) saturated() bool {
	if cap(a.queue) > 0 {
		return len(a.queue) == 0
	}
	return len(a.workers) == 0
}

package server

import (
	"fmt"
	"testing"
)

func entry(s string) cachedOutcome {
	return cachedOutcome{outcome: []byte(s), report: "r:" + s}
}

// TestLRUEvictsLeastRecentlyUsed checks capacity is enforced in
// recency order and that Get refreshes recency.
func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRUCache(2)
	if c.Put("a", entry("A")) != 0 || c.Put("b", entry("B")) != 0 {
		t.Fatal("puts within capacity evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	// a is now most recent; inserting c must evict b.
	if n := c.Put("c", entry("C")); n != 1 {
		t.Fatalf("evicted %d entries, want 1", n)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction, want a to survive instead")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted, want b evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

// TestLRURefreshAndBytes checks refreshing a key keeps one entry and
// the byte accounting follows payload sizes.
func TestLRURefreshAndBytes(t *testing.T) {
	c := newLRUCache(4)
	c.Put("k", entry("small"))
	before := c.Bytes()
	c.Put("k", entry("a much larger payload than before"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d after refresh, want 1", c.Len())
	}
	if c.Bytes() <= before {
		t.Fatalf("Bytes = %d after growing refresh, want > %d", c.Bytes(), before)
	}
	got, ok := c.Get("k")
	if !ok || string(got.outcome) != "a much larger payload than before" {
		t.Fatalf("Get returned %q, %v", got.outcome, ok)
	}
}

// TestLRUDisabled checks max <= 0 turns the cache off entirely.
func TestLRUDisabled(t *testing.T) {
	c := newLRUCache(0)
	c.Put("k", entry("v"))
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("disabled cache holds state: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

// TestCacheKeySensitivity checks the content address covers both the
// source and every resolved option, and nothing else.
func TestCacheKeySensitivity(t *testing.T) {
	base := resolvedOptions{Algorithm: "ssa", Check: "off", Workers: 1, MaxSteps: 100, TimeoutMS: 50}
	k := cacheKey("void main() {}", base)
	if k != cacheKey("void main() {}", base) {
		t.Fatal("identical inputs hash differently")
	}
	if k == cacheKey("void main() { print(1); }", base) {
		t.Fatal("different sources share a key")
	}
	variants := []resolvedOptions{
		{Algorithm: "none", Check: "off", Workers: 1, MaxSteps: 100, TimeoutMS: 50},
		{Algorithm: "ssa", Check: "paranoid", Workers: 1, MaxSteps: 100, TimeoutMS: 50},
		{Algorithm: "ssa", Check: "off", Workers: 2, MaxSteps: 100, TimeoutMS: 50},
		{Algorithm: "ssa", Check: "off", Workers: 1, MaxSteps: 101, TimeoutMS: 50},
		{Algorithm: "ssa", Check: "off", Workers: 1, MaxSteps: 100, TimeoutMS: 51},
		{Algorithm: "ssa", Check: "off", Workers: 1, MaxSteps: 100, TimeoutMS: 50, SkipMeasurement: true},
		{Algorithm: "ssa", Check: "off", Workers: 1, MaxSteps: 100, TimeoutMS: 50, StaticProfile: true},
	}
	for i, v := range variants {
		if cacheKey("void main() {}", v) == k {
			t.Fatalf("variant %d shares the base key: %+v", i, v)
		}
	}
}

// TestLRUStress exercises the cache from the race detector's point of
// view: concurrent gets and puts over a small keyspace.
func TestLRUStress(t *testing.T) {
	c := newLRUCache(8)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%16)
				if i%3 == 0 {
					c.Put(key, entry(key))
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c.Len() > 8 {
		t.Fatalf("Len = %d exceeds capacity 8", c.Len())
	}
}

package server

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/histo"
	"repro/internal/pipeline"
)

// metrics holds the server's counters. Everything is an atomic or a
// mutex-guarded map of atomics, updated inline on the request path and
// rendered as Prometheus text by the /metrics handler. Instances are
// per-Server (no global expvar registration), so tests can run many
// servers in one process.
type metrics struct {
	requests     atomic.Int64 // POST /v1/promote requests accepted for processing
	ok           atomic.Int64 // 200 responses
	clientErrors atomic.Int64 // 4xx responses other than rejections
	serverErrors atomic.Int64 // 5xx responses
	timeouts     atomic.Int64 // 408 responses (interp step/wall-clock bound hit)
	rejected     atomic.Int64 // 429 responses (queue full)
	drained      atomic.Int64 // 503 responses while draining

	rateLimited atomic.Int64 // 429 responses (per-client token bucket exhausted)

	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	cacheEvictions  atomic.Int64
	collapsed       atomic.Int64 // requests served a singleflight leader's bytes
	diskHits        atomic.Int64 // outcomes served from the on-disk cold tier
	diskCorrupt     atomic.Int64 // disk entries that failed verification (quarantined)
	diskReadErrors  atomic.Int64 // disk reads that failed for non-corruption reasons
	diskWriteErrors atomic.Int64 // disk write-throughs that failed

	queuedTotal   atomic.Int64 // requests that had to wait for a worker slot
	queueWaitNS   atomic.Int64 // summed queue wait
	pipelineNS    atomic.Int64 // summed pipeline wall time (cache misses only)
	degradedFuncs atomic.Int64 // functions degraded across all runs

	// stageWallNS aggregates per-stage pipeline wall time. Stages are
	// known up front, so the map is built once and only its values
	// mutate.
	stageWallNS map[string]*atomic.Int64

	// reqSeconds is the end-to-end /v1/promote latency distribution —
	// every request, every status. pipeSeconds is the pipeline-run
	// distribution (cache misses only). Both use the shared fixed
	// bucket layout, so a fronting router can scrape them, merge across
	// replicas, and derive its hedging delay from the served p95
	// instead of a hardcoded guess.
	reqSeconds  *histo.Histogram
	pipeSeconds *histo.Histogram

	// analysisBuilds aggregates, per analysis.Kind, how many fresh
	// analysis builds the pipelines behind cache-miss requests ran.
	// Kinds are known up front; only the values mutate. A healthy cache
	// builds each CFG-keyed kind about once per function per request —
	// a superlinear ratio of builds to requests means version-keying
	// broke somewhere, which is exactly what this surfaces.
	analysisBuilds map[analysis.Kind]*atomic.Int64

	mu sync.Mutex // serializes /metrics rendering only
}

func newMetrics() *metrics {
	m := &metrics{
		stageWallNS:    make(map[string]*atomic.Int64, len(pipeline.Stages())),
		analysisBuilds: make(map[analysis.Kind]*atomic.Int64, len(analysis.Kinds())),
		reqSeconds:     histo.New(nil),
		pipeSeconds:    histo.New(nil),
	}
	for _, s := range pipeline.Stages() {
		m.stageWallNS[s] = new(atomic.Int64)
	}
	for _, k := range analysis.Kinds() {
		m.analysisBuilds[k] = new(atomic.Int64)
	}
	return m
}

// recordStages folds one outcome's stage timings into the aggregate.
func (m *metrics) recordStages(timings []pipeline.StageTiming) {
	for _, t := range timings {
		if c, ok := m.stageWallNS[t.Stage]; ok {
			c.Add(int64(t.Wall))
		}
	}
}

// recordAnalysis folds one run's analysis-cache build counts into the
// aggregate.
func (m *metrics) recordAnalysis(cache *analysis.Cache) {
	if cache == nil {
		return
	}
	for k, n := range cache.TotalBuilds() {
		if c, ok := m.analysisBuilds[k]; ok {
			c.Add(int64(n))
		}
	}
}

// writePrometheus renders every counter in Prometheus text exposition
// format, plus the gauges the server snapshots at render time.
func (m *metrics) writePrometheus(w io.Writer, s *Server) {
	m.mu.Lock()
	defer m.mu.Unlock()

	metric := func(name, help, typ string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	counter := func(name, help string, v int64) { metric(name, help, "counter", v) }
	gauge := func(name, help string, v int64) { metric(name, help, "gauge", v) }

	counter("rpserved_requests_total", "promotion requests accepted for processing", m.requests.Load())
	counter("rpserved_responses_ok_total", "successful promotion responses", m.ok.Load())
	counter("rpserved_responses_client_error_total", "4xx responses other than backpressure rejections", m.clientErrors.Load())
	counter("rpserved_responses_server_error_total", "5xx responses", m.serverErrors.Load())
	counter("rpserved_responses_timeout_total", "requests that hit the interpreter step or wall-clock bound", m.timeouts.Load())
	counter("rpserved_rejected_total", "requests rejected because the admission queue was full", m.rejected.Load())
	counter("rpserved_rate_limited_total", "requests rejected by the per-client rate limiter", m.rateLimited.Load())
	counter("rpserved_drained_total", "requests rejected because the server was draining", m.drained.Load())
	counter("rpserved_cache_hits_total", "promotion results served from the in-memory cache tier", m.cacheHits.Load())
	counter("rpserved_cache_misses_total", "promotion requests that ran the pipeline", m.cacheMisses.Load())
	counter("rpserved_cache_evictions_total", "cache entries evicted by the LRU bound", m.cacheEvictions.Load())
	counter("rpserved_collapsed_total", "requests served a singleflight leader's result", m.collapsed.Load())
	counter("rpserved_disk_hits_total", "promotion results served from the on-disk cache tier", m.diskHits.Load())
	counter("rpserved_disk_corrupt_total", "disk cache entries that failed verification and were quarantined", m.diskCorrupt.Load())
	counter("rpserved_disk_read_errors_total", "disk cache reads that failed (corruption excluded)", m.diskReadErrors.Load())
	counter("rpserved_disk_write_errors_total", "disk cache write-throughs that failed", m.diskWriteErrors.Load())
	counter("rpserved_queued_total", "requests that waited for a worker slot", m.queuedTotal.Load())
	counter("rpserved_queue_wait_ms_total", "summed queue wait in milliseconds", m.queueWaitNS.Load()/int64(time.Millisecond))
	counter("rpserved_pipeline_ms_total", "summed pipeline wall time in milliseconds (cache misses only)", m.pipelineNS.Load()/int64(time.Millisecond))
	counter("rpserved_degraded_funcs_total", "functions compiled without promotion after an absorbed stage failure", m.degradedFuncs.Load())

	gauge("rpserved_inflight_workers", "requests currently holding a worker slot", int64(s.adm.inUse()))
	gauge("rpserved_queue_depth", "requests currently waiting for a worker slot", int64(s.adm.waiting()))
	gauge("rpserved_cache_entries", "entries in the in-memory result cache tier", int64(s.cache.Len()))
	gauge("rpserved_cache_bytes", "approximate payload bytes held by the in-memory cache tier", int64(s.cache.Bytes()))
	if s.disk != nil {
		st := s.disk.Stats()
		gauge("rpserved_disk_entries", "entries in the on-disk cache tier", int64(st.Entries))
		gauge("rpserved_disk_bytes", "bytes held by the on-disk cache tier", st.Bytes)
		gauge("rpserved_disk_quarantine_bytes", "bytes held by quarantined disk entries", st.QuarantineBytes)
		gauge("rpserved_disk_quarantined", "disk entries quarantined since start", st.Quarantined)
		gauge("rpserved_disk_gc_evicted", "disk entries evicted by GC since start", st.Evicted)
	}
	gauge("rpserved_rate_limit_clients", "clients with a live rate-limit bucket", int64(s.limiter.clients()))
	draining := int64(0)
	if s.isDraining() {
		draining = 1
	}
	gauge("rpserved_draining", "1 while the server is draining", draining)
	ready := int64(1)
	if s.isDraining() || s.adm.saturated() {
		ready = 0
	}
	gauge("rpserved_ready", "1 while the server would answer /readyz with 200", ready)
	gauge("rpserved_uptime_seconds", "seconds since the server was created", int64(time.Since(s.start).Seconds()))

	// Per-stage pipeline wall time, one labeled series per stage, in
	// canonical stage order (stages that never ran render as 0).
	fmt.Fprintf(w, "# HELP rpserved_stage_wall_ms_total summed pipeline stage wall time in milliseconds\n")
	fmt.Fprintf(w, "# TYPE rpserved_stage_wall_ms_total counter\n")
	for _, stage := range pipeline.Stages() {
		fmt.Fprintf(w, "rpserved_stage_wall_ms_total{stage=%q} %d\n",
			stage, m.stageWallNS[stage].Load()/int64(time.Millisecond))
	}

	// Latency histograms: end-to-end request latency (all statuses) and
	// pipeline-run latency (misses only), fixed shared buckets. The
	// router scrapes rpserved_request_seconds to derive its hedging
	// delay from the replicas' actual p95.
	m.reqSeconds.Snapshot().WritePrometheus(w,
		"rpserved_request_seconds", "end-to-end /v1/promote latency in seconds", "")
	m.pipeSeconds.Snapshot().WritePrometheus(w,
		"rpserved_pipeline_seconds", "pipeline execution latency in seconds (cache misses only)", "")

	// Analysis-cache coherence: fresh builds per analysis kind, one
	// labeled series per kind in canonical kind order.
	fmt.Fprintf(w, "# HELP rpserved_analysis_builds fresh analysis builds run by cache-miss pipelines, per analysis kind\n")
	fmt.Fprintf(w, "# TYPE rpserved_analysis_builds gauge\n")
	for _, k := range analysis.Kinds() {
		fmt.Fprintf(w, "rpserved_analysis_builds{kind=%q} %d\n", k, m.analysisBuilds[k].Load())
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const smallSrc = `
int a = 1;
void main() {
	int i;
	for (i = 0; i < 8; i++) a = a + 2;
	print(a);
}
`

// spinSrc never terminates; only the interpreter bounds stop it.
const spinSrc = `
int x;
void main() {
	while (1 > 0) { x = x + 1; }
}
`

// newTestServer builds a server or fails the test.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postPromote(t *testing.T, s *Server, req PromoteRequest) (*httptest.ResponseRecorder, PromoteResponse, ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/promote", bytes.NewReader(body)))
	var ok PromoteResponse
	var fail ErrorResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &ok); err != nil {
			t.Fatalf("decoding 200 body: %v\n%s", err, rec.Body.String())
		}
	} else {
		if err := json.Unmarshal(rec.Body.Bytes(), &fail); err != nil {
			t.Fatalf("decoding %d body: %v\n%s", rec.Code, err, rec.Body.String())
		}
	}
	return rec, ok, fail
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCacheHitVsMiss checks the second identical request is served from
// the content-addressed cache with a byte-identical outcome, and that
// changing either the source or the options misses.
func TestCacheHitVsMiss(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	req := PromoteRequest{Source: smallSrc}

	rec, first, _ := postPromote(t, s, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("first request: %d %s", rec.Code, rec.Body.String())
	}
	if first.Serving.Cache != "miss" {
		t.Fatalf("first request cache = %q, want miss", first.Serving.Cache)
	}
	if first.Serving.SchemaVersion != 1 {
		t.Fatalf("serving schema_version = %d, want 1", first.Serving.SchemaVersion)
	}

	rec, second, _ := postPromote(t, s, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("second request: %d %s", rec.Code, rec.Body.String())
	}
	if second.Serving.Cache != "hit" {
		t.Fatalf("second request cache = %q, want hit", second.Serving.Cache)
	}
	if !bytes.Equal(first.Outcome, second.Outcome) || first.Report != second.Report {
		t.Fatal("cached outcome differs from computed outcome")
	}
	if s.m.cacheHits.Load() != 1 || s.m.cacheMisses.Load() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", s.m.cacheHits.Load(), s.m.cacheMisses.Load())
	}

	// Different options → different content address → miss.
	rec, third, _ := postPromote(t, s, PromoteRequest{Source: smallSrc,
		Options: RequestOptions{Algorithm: "none"}})
	if rec.Code != http.StatusOK || third.Serving.Cache != "miss" {
		t.Fatalf("different-options request: %d cache=%q, want 200 miss", rec.Code, third.Serving.Cache)
	}
}

// TestOutcomeDeterministicAcrossWorkerCounts checks the outcome payload
// is identical for per-request worker counts 1 and 2 (different cache
// keys, so both actually run the pipeline).
func TestOutcomeDeterministicAcrossWorkerCounts(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	_, one, _ := postPromote(t, s, PromoteRequest{Source: smallSrc, Options: RequestOptions{Workers: 1}})
	_, two, _ := postPromote(t, s, PromoteRequest{Source: smallSrc, Options: RequestOptions{Workers: 2}})
	if one.Serving.Cache != "miss" || two.Serving.Cache != "miss" {
		t.Fatalf("expected two misses, got %q and %q", one.Serving.Cache, two.Serving.Cache)
	}
	if !bytes.Equal(one.Outcome, two.Outcome) {
		t.Fatalf("outcome differs across worker counts:\n%s\nvs\n%s", one.Outcome, two.Outcome)
	}
	if one.Report != two.Report {
		t.Fatal("report differs across worker counts")
	}
}

// TestBadRequests checks malformed bodies and invalid options map to
// 400s with the bad_request kind.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/promote",
		strings.NewReader("{not json")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid JSON: %d, want 400", rec.Code)
	}

	cases := []PromoteRequest{
		{Source: ""},
		{Source: smallSrc, Options: RequestOptions{Algorithm: "turbo"}},
		{Source: smallSrc, Options: RequestOptions{Check: "extreme"}},
		{Source: smallSrc, Options: RequestOptions{Workers: -1}},
		{Source: smallSrc, Options: RequestOptions{Workers: 99}},
		{Source: smallSrc, Options: RequestOptions{MaxSteps: -5}},
		{Source: smallSrc, Options: RequestOptions{TimeoutMS: -5}},
		{Source: smallSrc, Options: RequestOptions{Fault: "promote:panic"}}, // faults disabled
	}
	for i, req := range cases {
		rec, _, fail := postPromote(t, s, req)
		if rec.Code != http.StatusBadRequest || fail.Kind != "bad_request" {
			t.Fatalf("case %d: %d kind=%q, want 400 bad_request (%s)", i, rec.Code, fail.Kind, fail.Error)
		}
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/promote", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/promote: %d, want 405", rec.Code)
	}
}

// TestBackpressureWhenQueueFull holds the only worker slot busy, fills
// the one queue slot, and checks the next request is rejected with 429
// and a Retry-After header instead of waiting.
func TestBackpressureWhenQueueFull(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	s.testHook = func() { <-block }

	type result struct {
		code  int
		cache string
	}
	results := make(chan result, 2)
	fire := func(src string) {
		go func() {
			rec, ok, _ := postPromote(t, s, PromoteRequest{Source: src})
			results <- result{rec.Code, ok.Serving.Cache}
		}()
	}

	fire(smallSrc)
	waitFor(t, "worker slot held", func() bool { return s.adm.inUse() == 1 })
	fire(`void main() { print(2); }`)
	waitFor(t, "queue slot held", func() bool { return s.adm.waiting() == 1 })

	// Both tiers are full: this request must be rejected immediately.
	rec, _, fail := postPromote(t, s, PromoteRequest{Source: `void main() { print(3); }`})
	if rec.Code != http.StatusTooManyRequests || fail.Kind != "queue_full" {
		t.Fatalf("saturated server: %d kind=%q, want 429 queue_full", rec.Code, fail.Kind)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}
	if s.m.rejected.Load() != 1 {
		t.Fatalf("rejected counter = %d, want 1", s.m.rejected.Load())
	}

	// Unblock: both held requests must complete successfully.
	close(block)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("held request %d finished with %d, want 200", i, r.code)
		}
	}
	if got := s.m.queuedTotal.Load(); got != 1 {
		t.Fatalf("queuedTotal = %d, want 1", got)
	}
}

// TestRequestTimeout checks a program that exhausts its per-request
// interpreter bounds maps to 408 with the timeout kind, for both the
// wall-clock and the step bound.
func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	rec, _, fail := postPromote(t, s, PromoteRequest{Source: spinSrc,
		Options: RequestOptions{TimeoutMS: 30}})
	if rec.Code != http.StatusRequestTimeout || fail.Kind != "timeout" {
		t.Fatalf("wall-clock bound: %d kind=%q (%s), want 408 timeout", rec.Code, fail.Kind, fail.Error)
	}
	if fail.Stage == "" {
		t.Fatal("timeout response does not name the failing stage")
	}

	rec, _, fail = postPromote(t, s, PromoteRequest{Source: spinSrc,
		Options: RequestOptions{MaxSteps: 10_000}})
	if rec.Code != http.StatusRequestTimeout || fail.Kind != "timeout" {
		t.Fatalf("step bound: %d kind=%q (%s), want 408 timeout", rec.Code, fail.Kind, fail.Error)
	}
	if s.m.timeouts.Load() != 2 {
		t.Fatalf("timeout counter = %d, want 2", s.m.timeouts.Load())
	}
}

// TestPanicInPipelineReturns500WithStageError injects a panic into a
// whole-program stage and checks the response is a 500 carrying the
// structured StageError fields.
func TestPanicInPipelineReturns500WithStageError(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, EnableFaults: true})
	rec, _, fail := postPromote(t, s, PromoteRequest{Source: smallSrc,
		Options: RequestOptions{Fault: "compile:panic"}})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("injected panic: %d, want 500", rec.Code)
	}
	if fail.Kind != "stage_error" || fail.Stage != "compile" {
		t.Fatalf("injected panic body: kind=%q stage=%q, want stage_error/compile", fail.Kind, fail.Stage)
	}
	if !strings.Contains(fail.Error, "panic") {
		t.Fatalf("error %q does not mention the panic", fail.Error)
	}
	if s.m.serverErrors.Load() != 1 {
		t.Fatalf("serverErrors = %d, want 1", s.m.serverErrors.Load())
	}
}

// TestPanicInPerFunctionStageDegrades checks a per-function panic is
// absorbed by the pipeline's rollback machinery: the request still
// succeeds, with the function listed as degraded in the outcome.
func TestPanicInPerFunctionStageDegrades(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, EnableFaults: true})
	rec, ok, _ := postPromote(t, s, PromoteRequest{Source: smallSrc,
		Options: RequestOptions{Fault: "promote/main:panic"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("per-function panic: %d %s, want 200", rec.Code, rec.Body.String())
	}
	var outcome struct {
		Degraded []struct {
			Func  string `json:"func"`
			Stage string `json:"stage"`
		} `json:"degraded"`
	}
	if err := json.Unmarshal(ok.Outcome, &outcome); err != nil {
		t.Fatal(err)
	}
	if len(outcome.Degraded) != 1 || outcome.Degraded[0].Func != "main" || outcome.Degraded[0].Stage != "promote" {
		t.Fatalf("degraded = %+v, want main at promote", outcome.Degraded)
	}
}

// TestDrain checks draining flips /healthz to 503, rejects new promote
// requests, and waits for in-flight requests to finish.
func TestDrain(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	block := make(chan struct{})
	s.testHook = func() { <-block }

	inflight := make(chan int, 1)
	go func() {
		rec, _, _ := postPromote(t, s, PromoteRequest{Source: smallSrc})
		inflight <- rec.Code
	}()
	waitFor(t, "in-flight request", func() bool { return s.adm.inUse() == 1 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, "draining flag", s.isDraining)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining: %d, want 503", rec.Code)
	}
	rec, _, fail := postPromote(t, s, PromoteRequest{Source: `void main() { print(9); }`})
	if rec.Code != http.StatusServiceUnavailable || fail.Kind != "draining" {
		t.Fatalf("promote while draining: %d kind=%q, want 503 draining", rec.Code, fail.Kind)
	}

	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v before the in-flight request finished", err)
	default:
	}
	close(block)
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
}

// TestHealthzAndMetrics spot-checks the operational endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Fatalf("/healthz: %d %s", rec.Code, rec.Body.String())
	}

	postPromote(t, s, PromoteRequest{Source: smallSrc})
	postPromote(t, s, PromoteRequest{Source: smallSrc})

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"rpserved_requests_total 2",
		"rpserved_cache_hits_total 1",
		"rpserved_cache_misses_total 1",
		"rpserved_cache_entries 1",
		"rpserved_inflight_workers 0",
		"rpserved_queue_depth 0",
		`rpserved_stage_wall_ms_total{stage="promote"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

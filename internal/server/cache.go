package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// cachedOutcome is what the result cache stores per key: the marshaled
// stable outcome JSON and the canonical text report. Both are
// deterministic functions of (source, options) — the pipeline
// guarantees byte-identical results for identical inputs at any worker
// count — which is what makes serving them back for a different request
// with the same key sound.
type cachedOutcome struct {
	outcome []byte
	report  string
}

// size approximates the entry's memory footprint for the byte
// accounting.
func (c cachedOutcome) size() int { return len(c.outcome) + len(c.report) }

// marshal frames the entry as the disk tier's payload: an 8-byte
// big-endian outcome length, the outcome JSON, then the report text.
// (The disk store adds its own checksummed header on top; this framing
// only has to separate the two parts.)
func (c cachedOutcome) marshal() []byte {
	buf := make([]byte, 0, 8+c.size())
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(c.outcome)))
	buf = append(buf, c.outcome...)
	return append(buf, c.report...)
}

// unmarshalOutcome decodes a disk payload back into an entry. The disk
// store has already checksum-verified the bytes; this only guards
// against framing from a buggy writer.
func unmarshalOutcome(b []byte) (cachedOutcome, error) {
	if len(b) < 8 {
		return cachedOutcome{}, fmt.Errorf("server: disk payload too short: %d bytes", len(b))
	}
	n := binary.BigEndian.Uint64(b[:8])
	if n > uint64(len(b)-8) {
		return cachedOutcome{}, fmt.Errorf("server: disk payload framing: outcome %d of %d bytes", n, len(b)-8)
	}
	return cachedOutcome{
		outcome: append([]byte(nil), b[8:8+n]...),
		report:  string(b[8+n:]),
	}, nil
}

// cacheKey derives the content address of one promotion request: the
// SHA-256 of the canonical JSON encoding of the resolved request
// options plus the source text. Resolved options (not the raw request
// body) go into the hash so that spellings that mean the same thing —
// an omitted algorithm and an explicit "ssa", a request timeout above
// the server ceiling and the ceiling itself — share an entry.
func cacheKey(src string, resolved resolvedOptions) string {
	canon, err := json.Marshal(resolved)
	if err != nil {
		// resolvedOptions is a fixed struct of scalars; Marshal cannot
		// fail on it.
		panic("server: marshal resolved options: " + err.Error())
	}
	h := sha256.New()
	h.Write(canon)
	h.Write([]byte{0})
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// lruCache is a size-bounded LRU over cached outcomes, safe for
// concurrent use. Capacity is bounded by entry count; Bytes reports the
// summed payload size for the metrics endpoint.
type lruCache struct {
	mu      sync.Mutex
	max     int
	bytes   int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type lruEntry struct {
	key string
	val cachedOutcome
}

// newLRUCache returns a cache bounded to max entries. max <= 0 disables
// caching: Get always misses and Put is a no-op.
func newLRUCache(max int) *lruCache {
	return &lruCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached outcome for key, marking it most recently
// used.
func (c *lruCache) Get(key string) (cachedOutcome, bool) {
	if c.max <= 0 {
		return cachedOutcome{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return cachedOutcome{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts (or refreshes) key and returns how many entries were
// evicted to stay within capacity.
func (c *lruCache) Put(key string, val cachedOutcome) (evicted int) {
	if c.max <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*lruEntry)
		c.bytes += val.size() - ent.val.size()
		ent.val = val
		c.order.MoveToFront(el)
		return 0
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	c.bytes += val.size()
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		ent := oldest.Value.(*lruEntry)
		c.order.Remove(oldest)
		delete(c.entries, ent.key)
		c.bytes -= ent.val.size()
		evicted++
	}
	return evicted
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the summed payload size of all cached entries.
func (c *lruCache) Bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

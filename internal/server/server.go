// Package server is the long-running promotion service: it accepts
// mini-C programs plus pipeline options over HTTP/JSON, runs them
// through the register promotion pipeline on a bounded worker pool, and
// fronts the pipeline with a content-addressed result cache.
//
// The serving core is three layers:
//
//   - Admission control: a fixed pool of worker slots plus a bounded
//     waiting queue. A request beyond both bounds gets an immediate 429
//     with Retry-After — explicit backpressure, never unbounded memory.
//   - Content-addressed caching: SHA-256 of (canonicalized source,
//     resolved options) keys a size-bounded LRU of outcome payloads.
//     The pipeline is deterministic for identical inputs at any worker
//     count, which is what makes serving a cached outcome sound.
//   - Isolation and bounds: pipeline stages already run behind panic
//     isolation (StageError); the server adds per-request interpreter
//     step and wall-clock ceilings so one hostile program cannot stall
//     a worker slot forever, and maps resource exhaustion to 408,
//     malformed requests (typed pipeline.OptionError, parse failures)
//     to 400, and internal stage failures to 500 with the structured
//     StageError in the body.
//
// Endpoints: POST /v1/promote, GET /healthz, GET /metrics
// (Prometheus text). Drain stops admission, waits for in-flight
// requests, and flips /healthz to 503 so load balancers rotate the
// instance out.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/pipeline"
	"repro/internal/report"
)

// Config sizes the server. The zero value picks sane defaults.
type Config struct {
	// Workers is how many requests may run the pipeline concurrently
	// (0 = GOMAXPROCS).
	Workers int
	// QueueDepth is how many requests may wait for a worker slot beyond
	// the ones running (0 = 2×Workers, negative = no waiting).
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache
	// (0 = 1024, negative = caching off).
	CacheEntries int
	// MaxSourceBytes bounds the request body (0 = 1 MiB).
	MaxSourceBytes int64
	// MaxSteps is the per-request interpreter step ceiling; requests may
	// ask for less, never more (0 = 50 million).
	MaxSteps int64
	// MaxTimeout is the per-request interpreter wall-clock ceiling;
	// requests may ask for less, never more (0 = 10s).
	MaxTimeout time.Duration
	// PipelineWorkers is the default per-request transform worker count
	// (0 = 1; requests can override within [1, 16]).
	PipelineWorkers int
	// EnableFaults allows requests to carry a fault-injection plan
	// (tests and chaos drills only — never enable on a real deployment).
	EnableFaults bool
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 50_000_000
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Second
	}
	if c.PipelineWorkers <= 0 {
		c.PipelineWorkers = 1
	}
	return c
}

// Server is one promotion service instance.
type Server struct {
	cfg   Config
	cache *lruCache
	adm   *admission
	m     *metrics
	start time.Time

	// drainMu orders request admission against Drain: a request
	// registers in wg only while draining is false, and Drain flips the
	// flag before waiting on wg, so no request can slip in after the
	// wait starts.
	drainMu  sync.Mutex
	draining bool
	wg       sync.WaitGroup

	// testHook, when non-nil, runs while the request holds its worker
	// slot, before the pipeline run. Tests use it to keep slots busy
	// deterministically; it is never set in production.
	testHook func()
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:   cfg,
		cache: newLRUCache(cfg.CacheEntries),
		adm:   newAdmission(cfg.Workers, cfg.QueueDepth),
		m:     newMetrics(),
		start: time.Now(),
	}
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/promote", s.handlePromote)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Drain stops admitting new requests and waits for every in-flight
// request to finish (or ctx to expire). After Drain, /healthz and
// /v1/promote answer 503; the caller is expected to stop the listener
// and exit.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// isDraining reports whether Drain has started.
func (s *Server) isDraining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// beginRequest registers an in-flight request unless the server is
// draining.
func (s *Server) beginRequest() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.wg.Add(1)
	return true
}

// PromoteRequest is the JSON body of POST /v1/promote.
type PromoteRequest struct {
	// Source is the mini-C program text.
	Source string `json:"source"`
	// Options tunes the pipeline run for this request.
	Options RequestOptions `json:"options"`
}

// RequestOptions is the request-level view of pipeline.Options: the
// per-request configuration is a cheap, cacheable input — part of the
// cache key — never a server rebuild.
type RequestOptions struct {
	// Algorithm is ssa (default), baseline, memopt, or none.
	Algorithm string `json:"algorithm,omitempty"`
	// Check is off (default), boundaries, or paranoid.
	Check string `json:"check,omitempty"`
	// Workers is the per-request transform worker count
	// (0 = server default).
	Workers int `json:"workers,omitempty"`
	// StaticProfile promotes with the loop-depth estimator instead of a
	// training run.
	StaticProfile bool `json:"static_profile,omitempty"`
	// PreMemOpts runs the memory-SSA scalar optimizations before
	// promotion.
	PreMemOpts bool `json:"pre_mem_opts,omitempty"`
	// PaperProfitFormula uses the paper's exact printed profit formula.
	PaperProfitFormula bool `json:"paper_profit_formula,omitempty"`
	// WholeFunctionScope promotes at whole-function scope.
	WholeFunctionScope bool `json:"whole_function_scope,omitempty"`
	// MaxPromotedWebs caps promotions per function (0 = unlimited).
	MaxPromotedWebs int `json:"max_promoted_webs,omitempty"`
	// SkipMeasurement skips the before/after interpreter runs.
	SkipMeasurement bool `json:"skip_measurement,omitempty"`
	// MaxSteps caps interpreter steps for this request; clamped to the
	// server ceiling (0 = ceiling).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// TimeoutMS caps interpreter wall-clock time for this request in
	// milliseconds; clamped to the server ceiling (0 = ceiling).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Fault injects a deterministic fault plan (stage[/func][:mode]);
	// rejected unless the server runs with EnableFaults.
	Fault string `json:"fault,omitempty"`
}

// resolvedOptions is the canonicalized form of RequestOptions after
// defaulting and clamping — the exact value hashed into the cache key,
// so every spelling of the same effective configuration shares a cache
// entry.
type resolvedOptions struct {
	Algorithm          string `json:"algorithm"`
	Check              string `json:"check"`
	Workers            int    `json:"workers"`
	StaticProfile      bool   `json:"static_profile"`
	PreMemOpts         bool   `json:"pre_mem_opts"`
	PaperProfitFormula bool   `json:"paper_profit_formula"`
	WholeFunctionScope bool   `json:"whole_function_scope"`
	MaxPromotedWebs    int    `json:"max_promoted_webs"`
	SkipMeasurement    bool   `json:"skip_measurement"`
	MaxSteps           int64  `json:"max_steps"`
	TimeoutMS          int64  `json:"timeout_ms"`
	Fault              string `json:"fault"`
}

// resolve canonicalizes the request options against the server's
// ceilings and converts them to pipeline options. Invalid values come
// back as a *badRequestError.
func (s *Server) resolve(ro RequestOptions) (resolvedOptions, pipeline.Options, error) {
	var res resolvedOptions
	var popts pipeline.Options

	res.Algorithm = ro.Algorithm
	if res.Algorithm == "" {
		res.Algorithm = "ssa"
	}
	alg, err := pipeline.ParseAlgorithm(res.Algorithm)
	if err != nil {
		return res, popts, &badRequestError{err}
	}
	res.Check = ro.Check
	if res.Check == "" {
		res.Check = "off"
	}
	check, err := pipeline.ParseCheckLevel(res.Check)
	if err != nil {
		return res, popts, &badRequestError{err}
	}
	res.Workers = ro.Workers
	if res.Workers == 0 {
		res.Workers = s.cfg.PipelineWorkers
	}
	if res.Workers < 0 || res.Workers > 16 {
		return res, popts, &badRequestError{fmt.Errorf("server: workers %d out of range [0, 16]", ro.Workers)}
	}
	if ro.MaxSteps < 0 || ro.TimeoutMS < 0 || ro.MaxPromotedWebs < 0 {
		return res, popts, &badRequestError{fmt.Errorf("server: negative resource bound in options")}
	}
	res.MaxSteps = ro.MaxSteps
	if res.MaxSteps == 0 || res.MaxSteps > s.cfg.MaxSteps {
		res.MaxSteps = s.cfg.MaxSteps
	}
	maxMS := s.cfg.MaxTimeout.Milliseconds()
	res.TimeoutMS = ro.TimeoutMS
	if res.TimeoutMS == 0 || res.TimeoutMS > maxMS {
		res.TimeoutMS = maxMS
	}
	res.StaticProfile = ro.StaticProfile
	res.PreMemOpts = ro.PreMemOpts
	res.PaperProfitFormula = ro.PaperProfitFormula
	res.WholeFunctionScope = ro.WholeFunctionScope
	res.MaxPromotedWebs = ro.MaxPromotedWebs
	res.SkipMeasurement = ro.SkipMeasurement
	res.Fault = ro.Fault

	popts = pipeline.Options{
		Algorithm:          alg,
		Check:              check,
		Workers:            res.Workers,
		StaticProfile:      res.StaticProfile,
		PreMemOpts:         res.PreMemOpts,
		PaperProfitFormula: res.PaperProfitFormula,
		WholeFunctionScope: res.WholeFunctionScope,
		MaxPromotedWebs:    res.MaxPromotedWebs,
		SkipMeasurement:    res.SkipMeasurement,
		Interp: interp.Options{
			MaxSteps: res.MaxSteps,
			Timeout:  time.Duration(res.TimeoutMS) * time.Millisecond,
		},
	}
	if ro.Fault != "" {
		if !s.cfg.EnableFaults {
			return res, popts, &badRequestError{fmt.Errorf("server: fault injection disabled (start with -enable-faults)")}
		}
		plan, err := faults.ParsePlan(ro.Fault)
		if err != nil {
			return res, popts, &badRequestError{err}
		}
		popts.Faults = faults.New(plan)
	}
	if err := popts.Validate(); err != nil {
		return res, popts, &badRequestError{err}
	}
	return res, popts, nil
}

// badRequestError wraps validation failures so the handler can map them
// to 400 while keeping the underlying typed error (pipeline.OptionError
// etc.) inspectable.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// ServingMeta is the per-request serving metadata attached to every
// promotion response. Unlike the outcome, it legitimately differs
// between identical requests (cache state, queue wait, timings).
type ServingMeta struct {
	SchemaVersion int              `json:"schema_version"`
	Cache         string           `json:"cache"` // hit, miss, or bypass (caching off)
	QueueWaitMS   float64          `json:"queue_wait_ms"`
	PipelineMS    float64          `json:"pipeline_ms"` // 0 on cache hits
	Stages        []report.StageMS `json:"stages,omitempty"`
}

// PromoteResponse is the JSON body of a successful promotion.
type PromoteResponse struct {
	// Outcome is the stable, versioned outcome encoding — identical for
	// identical (source, options) at any worker count.
	Outcome json.RawMessage `json:"outcome"`
	// Report is the pipeline's canonical text report.
	Report string `json:"report"`
	// Serving is the per-request serving metadata.
	Serving ServingMeta `json:"serving"`
}

// ErrorResponse is the JSON body of every non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind classifies the failure: bad_request, queue_full, draining,
	// timeout, or stage_error.
	Kind string `json:"kind"`
	// Stage and Func identify the failing pipeline stage for
	// kind=stage_error / kind=timeout.
	Stage string `json:"stage,omitempty"`
	Func  string `json:"func,omitempty"`
}

// handlePromote serves POST /v1/promote.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, ErrorResponse{
			Error: "use POST", Kind: "bad_request"})
		return
	}
	if !s.beginRequest() {
		s.m.drained.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, ErrorResponse{
			Error: "server is draining", Kind: "draining"})
		return
	}
	defer s.wg.Done()

	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxSourceBytes+1))
	if err != nil {
		s.m.clientErrors.Add(1)
		s.writeError(w, http.StatusBadRequest, ErrorResponse{
			Error: "reading body: " + err.Error(), Kind: "bad_request"})
		return
	}
	if int64(len(body)) > s.cfg.MaxSourceBytes {
		s.m.clientErrors.Add(1)
		s.writeError(w, http.StatusRequestEntityTooLarge, ErrorResponse{
			Error: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxSourceBytes), Kind: "bad_request"})
		return
	}
	var req PromoteRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.m.clientErrors.Add(1)
		s.writeError(w, http.StatusBadRequest, ErrorResponse{
			Error: "decoding request: " + err.Error(), Kind: "bad_request"})
		return
	}
	if req.Source == "" {
		s.m.clientErrors.Add(1)
		s.writeError(w, http.StatusBadRequest, ErrorResponse{
			Error: "empty source", Kind: "bad_request"})
		return
	}
	resolved, popts, err := s.resolve(req.Options)
	if err != nil {
		s.m.clientErrors.Add(1)
		s.writeError(w, http.StatusBadRequest, ErrorResponse{
			Error: err.Error(), Kind: "bad_request"})
		return
	}
	s.m.requests.Add(1)

	// Cache lookup before admission: a hit never needs a worker slot,
	// so a hot cache keeps absorbing traffic even when the pool is
	// saturated.
	key := cacheKey(req.Source, resolved)
	if hit, ok := s.cache.Get(key); ok {
		s.m.cacheHits.Add(1)
		s.m.ok.Add(1)
		s.writeJSON(w, http.StatusOK, PromoteResponse{
			Outcome: json.RawMessage(hit.outcome),
			Report:  hit.report,
			Serving: ServingMeta{SchemaVersion: report.SchemaVersion, Cache: "hit"},
		})
		return
	}

	// Admission: take a worker slot or reject with backpressure.
	waitStart := time.Now()
	release, queued, err := s.adm.acquire(r.Context())
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.m.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusTooManyRequests, ErrorResponse{
				Error: "admission queue full", Kind: "queue_full"})
			return
		}
		// The client went away while queued.
		s.m.clientErrors.Add(1)
		s.writeError(w, http.StatusRequestTimeout, ErrorResponse{
			Error: "canceled while queued: " + err.Error(), Kind: "timeout"})
		return
	}
	defer release()
	queueWait := time.Since(waitStart)
	if queued {
		s.m.queuedTotal.Add(1)
		s.m.queueWaitNS.Add(int64(queueWait))
	}

	if s.testHook != nil {
		s.testHook()
	}

	pipeStart := time.Now()
	out, runErr := pipeline.Run(req.Source, popts)
	pipeWall := time.Since(pipeStart)

	if runErr != nil {
		s.writeRunError(w, runErr)
		return
	}
	s.m.pipelineNS.Add(int64(pipeWall))
	s.m.recordStages(out.Timings)
	s.m.degradedFuncs.Add(int64(len(out.Degraded)))

	outcomeJSON, err := json.Marshal(report.EncodeOutcome(out))
	if err != nil {
		s.m.serverErrors.Add(1)
		s.writeError(w, http.StatusInternalServerError, ErrorResponse{
			Error: "encoding outcome: " + err.Error(), Kind: "stage_error"})
		return
	}
	entry := cachedOutcome{outcome: outcomeJSON, report: out.Report()}
	cacheState := "bypass"
	if s.cfg.CacheEntries > 0 {
		s.m.cacheMisses.Add(1)
		s.m.cacheEvictions.Add(int64(s.cache.Put(key, entry)))
		cacheState = "miss"
	}

	s.m.ok.Add(1)
	s.writeJSON(w, http.StatusOK, PromoteResponse{
		Outcome: json.RawMessage(outcomeJSON),
		Report:  entry.report,
		Serving: ServingMeta{
			SchemaVersion: report.SchemaVersion,
			Cache:         cacheState,
			QueueWaitMS:   float64(queueWait.Microseconds()) / 1000,
			PipelineMS:    float64(pipeWall.Microseconds()) / 1000,
			Stages:        report.StageTimingsMS(report.SumStageTimings(out)),
		},
	})
}

// writeRunError maps a pipeline failure to its HTTP shape: interpreter
// resource exhaustion to 408, everything else (stage panics included —
// the StageError machinery already absorbed them into structured form)
// to 500 with the StageError fields in the body.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	resp := ErrorResponse{Error: err.Error(), Kind: "stage_error"}
	var se *pipeline.StageError
	if errors.As(err, &se) {
		resp.Stage = se.Stage
		resp.Func = se.Func
	}
	if errors.Is(err, interp.ErrTimeout) || errors.Is(err, interp.ErrStepLimit) {
		resp.Kind = "timeout"
		s.m.timeouts.Add(1)
		s.writeError(w, http.StatusRequestTimeout, resp)
		return
	}
	s.m.serverErrors.Add(1)
	s.writeError(w, http.StatusInternalServerError, resp)
}

// handleHealthz serves GET /healthz: 200 while serving, 503 while
// draining — the signal a load balancer needs to rotate the instance
// out before the listener closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.isDraining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, map[string]any{
		"status":   status,
		"uptime_s": int64(time.Since(s.start).Seconds()),
	})
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.writePrometheus(w, s)
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, resp ErrorResponse) {
	s.writeJSON(w, code, resp)
}

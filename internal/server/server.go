// Package server is the long-running promotion service: it accepts
// mini-C programs plus pipeline options over HTTP/JSON, runs them
// through the register promotion pipeline on a bounded worker pool, and
// fronts the pipeline with a content-addressed result cache.
//
// The serving core is five layers, in admission order:
//
//   - Per-client rate limiting: a token bucket per client (X-Client-ID
//     header, else remote host) ahead of everything else, so one
//     misbehaving client collects 429s with jittered Retry-After hints
//     while every other client's latency holds.
//   - Content-addressed caching, two tiers: SHA-256 of (canonicalized
//     source, resolved options) keys a size-bounded in-memory LRU (hot
//     tier) over a durable on-disk store (internal/diskcache, cold
//     tier). The pipeline is deterministic for identical inputs at any
//     worker count, which is what makes serving a cached outcome sound;
//     the disk tier's checksum-verify-or-quarantine contract is what
//     makes serving one after a crash or corruption sound. A restarted
//     replica re-opens its cache directory and comes back warm.
//   - Singleflight collapsing: concurrent identical misses share one
//     pipeline execution — the leader runs, waiters get the leader's
//     bytes (or its error; a leader can never wedge its waiters). Hot
//     keys cost one worker slot, not one per request.
//   - Admission control: a fixed pool of worker slots plus a bounded
//     waiting queue. A request beyond both bounds gets an immediate 429
//     with Retry-After — explicit backpressure, never unbounded memory.
//   - Isolation and bounds: pipeline stages already run behind panic
//     isolation (StageError); the server adds per-request interpreter
//     step and wall-clock ceilings so one hostile program cannot stall
//     a worker slot forever, and maps resource exhaustion to 408,
//     malformed requests (typed pipeline.OptionError, parse failures)
//     to 400 carrying the offending field name, and internal stage
//     failures to 500 with the structured StageError in the body.
//
// Endpoints: POST /v1/promote, GET /healthz, GET /readyz, GET /metrics
// (Prometheus text). Drain stops admission, waits for in-flight
// requests, and flips /healthz and /readyz to 503 so load balancers
// rotate the instance out; /readyz additionally reports not-ready while
// the admission queue is saturated, the early signal to shed load
// upstream.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/diskcache"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/pipeline"
	"repro/internal/report"
)

// Config sizes the server. The zero value picks sane defaults.
type Config struct {
	// Workers is how many requests may run the pipeline concurrently
	// (0 = GOMAXPROCS).
	Workers int
	// QueueDepth is how many requests may wait for a worker slot beyond
	// the ones running (0 = 2×Workers, negative = no waiting).
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache
	// (0 = 1024, negative = caching off).
	CacheEntries int
	// MaxSourceBytes bounds the request body (0 = 1 MiB).
	MaxSourceBytes int64
	// MaxSteps is the per-request interpreter step ceiling; requests may
	// ask for less, never more (0 = 50 million).
	MaxSteps int64
	// MaxTimeout is the per-request interpreter wall-clock ceiling;
	// requests may ask for less, never more (0 = 10s).
	MaxTimeout time.Duration
	// PipelineWorkers is the default per-request transform worker count
	// (0 = 1; requests can override within [1, 16]).
	PipelineWorkers int
	// EnableFaults allows requests to carry a fault-injection plan
	// (tests and chaos drills only — never enable on a real deployment).
	EnableFaults bool
	// CacheDir, when non-empty, adds the durable on-disk cold tier under
	// this directory: misses are written through, memory-tier misses
	// check it before running the pipeline, and a restarted server
	// re-opens it warm.
	CacheDir string
	// CacheDiskBytes bounds the disk tier (0 = 256 MiB, negative =
	// unbounded). GC evicts least-recently-used entries in the
	// background.
	CacheDiskBytes int64
	// RateLimit is the per-client steady admission rate in requests per
	// second, applied ahead of the admission queue (0 = no limiting).
	RateLimit float64
	// RateBurst is the per-client token-bucket burst size
	// (0 = max(4, 2×RateLimit)).
	RateBurst int
	// DiskChaos, when non-nil, injects deterministic disk faults into
	// the cold tier (chaos drills only).
	DiskChaos *faults.DiskInjector
	// Bytecode runs the training/measurement interpreter on the compiled
	// bytecode path (rpserved -bytecode). Outcomes are byte-identical to
	// the default path; only the per-request CPU cost changes.
	Bytecode bool
	// ChaosSlow, when positive, stretches every pipeline execution by
	// this long while it holds its worker slot — emulating a backend
	// whose capacity is bounded by service time (real IO, a remote
	// compiler) rather than local CPU. Cache hits and collapsed waiters
	// skip it, so capacity experiments pair it with a no-reuse request
	// mix. Capacity experiments and chaos drills only; never enable on
	// a real deployment.
	ChaosSlow time.Duration
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 50_000_000
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Second
	}
	if c.PipelineWorkers <= 0 {
		c.PipelineWorkers = 1
	}
	if c.CacheDiskBytes == 0 {
		c.CacheDiskBytes = 256 << 20
	}
	return c
}

// Server is one promotion service instance.
type Server struct {
	cfg     Config
	cache   *lruCache
	disk    *diskcache.Store // nil when CacheDir is empty
	flights *flightGroup
	limiter *rateLimiter // nil when RateLimit is 0
	adm     *admission
	m       *metrics
	start   time.Time

	// drainMu orders request admission against Drain: a request
	// registers in wg only while draining is false, and Drain flips the
	// flag before waiting on wg, so no request can slip in after the
	// wait starts.
	drainMu  sync.Mutex
	draining bool
	wg       sync.WaitGroup

	// testHook, when non-nil, runs while the request holds its worker
	// slot, before the pipeline run. Tests use it to keep slots busy
	// deterministically; it is never set in production.
	testHook func()
}

// New builds a server from cfg. It fails only when the configured cache
// directory cannot be opened — every other degraded dependency is a
// runtime counter, but a server that silently lost its durability tier
// would violate the warm-restart contract.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newLRUCache(cfg.CacheEntries),
		flights: newFlightGroup(),
		limiter: newRateLimiter(cfg.RateLimit, cfg.RateBurst),
		adm:     newAdmission(cfg.Workers, cfg.QueueDepth),
		m:       newMetrics(),
		start:   time.Now(),
	}
	if cfg.CacheDir != "" {
		maxBytes := cfg.CacheDiskBytes
		if maxBytes < 0 {
			maxBytes = 0 // diskcache treats <= 0 as unbounded
		}
		disk, err := diskcache.Open(cfg.CacheDir, maxBytes, cfg.DiskChaos)
		if err != nil {
			return nil, err
		}
		s.disk = disk
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/promote", s.timedPromote)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Drain stops admitting new requests and waits for every in-flight
// request to finish (or ctx to expire). After Drain, /healthz and
// /v1/promote answer 503; the caller is expected to stop the listener
// and exit.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// isDraining reports whether Drain has started.
func (s *Server) isDraining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// beginRequest registers an in-flight request unless the server is
// draining.
func (s *Server) beginRequest() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.wg.Add(1)
	return true
}

// PromoteRequest is the JSON body of POST /v1/promote.
type PromoteRequest struct {
	// Source is the mini-C program text.
	Source string `json:"source"`
	// Options tunes the pipeline run for this request.
	Options RequestOptions `json:"options"`
}

// RequestOptions is the request-level view of pipeline.Options: the
// per-request configuration is a cheap, cacheable input — part of the
// cache key — never a server rebuild.
type RequestOptions struct {
	// Lang is the source language of the request program: "mc"
	// (default) for native mini-C, "ll" for the textual-IR dialect
	// internal/irimport accepts.
	Lang string `json:"lang,omitempty"`
	// Algorithm is ssa (default), baseline, memopt, or none.
	Algorithm string `json:"algorithm,omitempty"`
	// Check is off (default), boundaries, or paranoid.
	Check string `json:"check,omitempty"`
	// Workers is the per-request transform worker count
	// (0 = server default).
	Workers int `json:"workers,omitempty"`
	// StaticProfile promotes with the loop-depth estimator instead of a
	// training run.
	StaticProfile bool `json:"static_profile,omitempty"`
	// PreMemOpts runs the memory-SSA scalar optimizations before
	// promotion.
	PreMemOpts bool `json:"pre_mem_opts,omitempty"`
	// PaperProfitFormula uses the paper's exact printed profit formula.
	PaperProfitFormula bool `json:"paper_profit_formula,omitempty"`
	// WholeFunctionScope promotes at whole-function scope.
	WholeFunctionScope bool `json:"whole_function_scope,omitempty"`
	// MaxPromotedWebs caps promotions per function (0 = unlimited).
	MaxPromotedWebs int `json:"max_promoted_webs,omitempty"`
	// PressureCap, when positive, promotes under a hard register-
	// pressure cap (see pipeline.Options.PressureCap).
	PressureCap int `json:"pressure_cap,omitempty"`
	// SkipMeasurement skips the before/after interpreter runs.
	SkipMeasurement bool `json:"skip_measurement,omitempty"`
	// MaxSteps caps interpreter steps for this request; clamped to the
	// server ceiling (0 = ceiling).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// TimeoutMS caps interpreter wall-clock time for this request in
	// milliseconds; clamped to the server ceiling (0 = ceiling).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Fault injects a deterministic fault plan (stage[/func][:mode]);
	// rejected unless the server runs with EnableFaults.
	Fault string `json:"fault,omitempty"`
}

// resolvedOptions is the canonicalized form of RequestOptions after
// defaulting and clamping — the exact value hashed into the cache key,
// so every spelling of the same effective configuration shares a cache
// entry.
type resolvedOptions struct {
	Lang               string `json:"lang"`
	Algorithm          string `json:"algorithm"`
	Check              string `json:"check"`
	Workers            int    `json:"workers"`
	StaticProfile      bool   `json:"static_profile"`
	PreMemOpts         bool   `json:"pre_mem_opts"`
	PaperProfitFormula bool   `json:"paper_profit_formula"`
	WholeFunctionScope bool   `json:"whole_function_scope"`
	MaxPromotedWebs    int    `json:"max_promoted_webs"`
	PressureCap        int    `json:"pressure_cap"`
	SkipMeasurement    bool   `json:"skip_measurement"`
	MaxSteps           int64  `json:"max_steps"`
	TimeoutMS          int64  `json:"timeout_ms"`
	Fault              string `json:"fault"`
}

// resolve canonicalizes the request options against the server's
// ceilings and converts them to pipeline options. Invalid values come
// back as a *badRequestError. The canonicalization itself lives in
// canonicalize (keys.go), shared with the router's ResolveKey so both
// sides derive identical cache keys.
func (s *Server) resolve(ro RequestOptions) (resolvedOptions, pipeline.Options, error) {
	var popts pipeline.Options
	res, err := canonicalize(ro, KeyCeilings{
		MaxSteps:        s.cfg.MaxSteps,
		MaxTimeout:      s.cfg.MaxTimeout,
		PipelineWorkers: s.cfg.PipelineWorkers,
	})
	if err != nil {
		return res, popts, err
	}
	// canonicalize already validated both enums; re-parsing cannot fail.
	alg, _ := pipeline.ParseAlgorithm(res.Algorithm)
	check, _ := pipeline.ParseCheckLevel(res.Check)

	popts = pipeline.Options{
		Lang:               res.Lang,
		Algorithm:          alg,
		Check:              check,
		Workers:            res.Workers,
		StaticProfile:      res.StaticProfile,
		PreMemOpts:         res.PreMemOpts,
		PaperProfitFormula: res.PaperProfitFormula,
		WholeFunctionScope: res.WholeFunctionScope,
		MaxPromotedWebs:    res.MaxPromotedWebs,
		PressureCap:        res.PressureCap,
		SkipMeasurement:    res.SkipMeasurement,
		Interp: interp.Options{
			MaxSteps: res.MaxSteps,
			Timeout:  time.Duration(res.TimeoutMS) * time.Millisecond,
			Bytecode: s.cfg.Bytecode,
		},
	}
	if ro.Fault != "" {
		if !s.cfg.EnableFaults {
			return res, popts, &badRequestError{&pipeline.OptionError{Field: "Fault", Value: ro.Fault,
				Reason: "fault injection disabled (start the server with -enable-faults)"}}
		}
		plan, err := faults.ParsePlan(ro.Fault)
		if err != nil {
			return res, popts, &badRequestError{&pipeline.OptionError{Field: "Fault", Value: ro.Fault,
				Reason: err.Error()}}
		}
		popts.Faults = faults.New(plan)
	}
	if err := popts.Validate(); err != nil {
		return res, popts, &badRequestError{err}
	}
	return res, popts, nil
}

// badRequestError wraps validation failures so the handler can map them
// to 400 while keeping the underlying typed error (pipeline.OptionError
// etc.) inspectable.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// ServingMeta is the per-request serving metadata attached to every
// promotion response. Unlike the outcome, it legitimately differs
// between identical requests (cache state, queue wait, timings).
type ServingMeta struct {
	SchemaVersion int `json:"schema_version"`
	// Cache says how the outcome was produced: "hit" (memory tier),
	// "disk" (cold tier, promoted to memory), "collapsed" (another
	// request's in-flight computation, singleflight), "miss" (this
	// request ran the pipeline), or "bypass" (caching off).
	Cache       string           `json:"cache"`
	QueueWaitMS float64          `json:"queue_wait_ms"`
	PipelineMS  float64          `json:"pipeline_ms"` // 0 unless this request ran the pipeline
	Stages      []report.StageMS `json:"stages,omitempty"`
}

// PromoteResponse is the JSON body of a successful promotion.
type PromoteResponse struct {
	// Outcome is the stable, versioned outcome encoding — identical for
	// identical (source, options) at any worker count.
	Outcome json.RawMessage `json:"outcome"`
	// Report is the pipeline's canonical text report.
	Report string `json:"report"`
	// Serving is the per-request serving metadata.
	Serving ServingMeta `json:"serving"`
}

// ErrorResponse is the JSON body of every non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind classifies the failure: bad_request, rate_limited,
	// queue_full, draining, timeout, or stage_error.
	Kind string `json:"kind"`
	// Field names the rejected Options field for kind=bad_request when
	// the failure was a typed option validation error.
	Field string `json:"field,omitempty"`
	// Stage and Func identify the failing pipeline stage for
	// kind=stage_error / kind=timeout.
	Stage string `json:"stage,omitempty"`
	Func  string `json:"func,omitempty"`
}

// timedPromote wraps handlePromote with the request-latency histogram:
// every /v1/promote request — hit, miss, rejection, failure — lands one
// observation, because the p95 a fronting router derives from this
// histogram has to describe what clients actually experienced, not just
// the happy path.
func (s *Server) timedPromote(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.handlePromote(w, r)
	s.m.reqSeconds.Observe(time.Since(start))
}

// handlePromote serves POST /v1/promote.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, ErrorResponse{
			Error: "use POST", Kind: "bad_request"})
		return
	}
	if !s.beginRequest() {
		s.m.drained.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, ErrorResponse{
			Error: "server is draining", Kind: "draining"})
		return
	}
	defer s.wg.Done()

	// Rate limiting comes first: a limited client should not even cost
	// the server a body read, let alone a cache lookup.
	if ok, retry := s.limiter.allow(clientKey(r), time.Now()); !ok {
		s.m.rateLimited.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(retry))
		s.writeError(w, http.StatusTooManyRequests, ErrorResponse{
			Error: "per-client rate limit exceeded", Kind: "rate_limited"})
		return
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxSourceBytes+1))
	if err != nil {
		s.m.clientErrors.Add(1)
		s.writeError(w, http.StatusBadRequest, ErrorResponse{
			Error: "reading body: " + err.Error(), Kind: "bad_request"})
		return
	}
	if int64(len(body)) > s.cfg.MaxSourceBytes {
		s.m.clientErrors.Add(1)
		s.writeError(w, http.StatusRequestEntityTooLarge, ErrorResponse{
			Error: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxSourceBytes), Kind: "bad_request"})
		return
	}
	var req PromoteRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.m.clientErrors.Add(1)
		s.writeError(w, http.StatusBadRequest, ErrorResponse{
			Error: "decoding request: " + err.Error(), Kind: "bad_request"})
		return
	}
	if req.Source == "" {
		s.m.clientErrors.Add(1)
		s.writeError(w, http.StatusBadRequest, ErrorResponse{
			Error: "empty source", Kind: "bad_request"})
		return
	}
	resolved, popts, err := s.resolve(req.Options)
	if err != nil {
		s.m.clientErrors.Add(1)
		resp := ErrorResponse{Error: err.Error(), Kind: "bad_request"}
		var oe *pipeline.OptionError
		if errors.As(err, &oe) {
			resp.Field = oe.Field
		}
		s.writeError(w, http.StatusBadRequest, resp)
		return
	}
	s.m.requests.Add(1)

	// Cache lookups before admission: a hit never needs a worker slot,
	// so a hot cache keeps absorbing traffic even when the pool is
	// saturated. Memory tier first, then disk; a disk hit is promoted
	// into the memory tier on the way out.
	key := cacheKey(req.Source, resolved)
	var f *flight
	for attempt := 0; ; attempt++ {
		if hit, ok := s.cache.Get(key); ok {
			s.m.cacheHits.Add(1)
			s.serveCached(w, hit, "hit")
			return
		}
		if entry, ok := s.diskGet(key); ok {
			if s.cfg.CacheEntries > 0 {
				s.m.cacheEvictions.Add(int64(s.cache.Put(key, entry)))
			}
			s.serveCached(w, entry, "disk")
			return
		}

		// Singleflight: concurrent identical misses share one pipeline
		// execution. Waiters block here — holding no worker slot — until
		// the leader publishes its bytes or its error.
		var leader bool
		f, leader = s.flights.join(key)
		if leader {
			break
		}
		select {
		case <-f.done:
			if f.err != nil {
				// A leader canceled by its own client — a hedge loser
				// the router gave up on, a disconnect — says nothing
				// about this request. Re-run the flight (often becoming
				// the new leader) instead of propagating a stranger's
				// cancellation to a live caller.
				if attempt < 3 && isCanceled(f.err) && r.Context().Err() == nil {
					continue
				}
				s.writeFlightError(w, f.err)
				return
			}
			s.m.collapsed.Add(1)
			s.serveCached(w, f.entry, "collapsed")
		case <-r.Context().Done():
			s.m.clientErrors.Add(1)
			s.writeError(w, http.StatusRequestTimeout, ErrorResponse{
				Error: "canceled while waiting for shared result: " + r.Context().Err().Error(), Kind: "timeout"})
		}
		return
	}

	// Leader path. Whatever happens below — backpressure, pipeline
	// failure, even a panic unwinding this handler — the flight must be
	// completed exactly once, or waiters would hang forever.
	var (
		entry     cachedOutcome
		runErr    error
		published bool
	)
	publish := func() {
		if !published {
			published = true
			s.flights.complete(key, f, entry, runErr)
		}
	}
	defer func() {
		if !published {
			runErr = errLeaderAborted
			publish()
		}
	}()

	// Admission: take a worker slot or reject with backpressure. The
	// leader's rejection propagates to its waiters — if the system is
	// too loaded to run this key once, it is too loaded to run it at
	// all.
	waitStart := time.Now()
	release, queued, err := s.adm.acquire(r.Context())
	if err != nil {
		runErr = err
		publish()
		s.writeFlightError(w, err)
		return
	}
	defer release()
	queueWait := time.Since(waitStart)
	if queued {
		s.m.queuedTotal.Add(1)
		s.m.queueWaitNS.Add(int64(queueWait))
	}

	if s.testHook != nil {
		s.testHook()
	}

	// Chaos service time: stretch this computation while it holds its
	// worker slot, so per-replica capacity is bounded by
	// slots/service-time the way an IO-bound backend's would be. Sitting
	// inside the singleflight leader also widens the window in which
	// concurrent identical misses collapse onto this run.
	if s.cfg.ChaosSlow > 0 {
		select {
		case <-time.After(s.cfg.ChaosSlow):
		case <-r.Context().Done():
		}
	}

	// Attach a per-request analysis cache so the run's fresh-build
	// counts can be folded into /metrics after it completes.
	acache := analysis.New()
	popts.AnalysisCache = acache

	pipeStart := time.Now()
	out, pipeErr := pipeline.Run(req.Source, popts)
	pipeWall := time.Since(pipeStart)

	if pipeErr != nil {
		runErr = pipeErr
		publish()
		s.writeRunError(w, pipeErr)
		return
	}
	s.m.pipelineNS.Add(int64(pipeWall))
	s.m.pipeSeconds.Observe(pipeWall)
	s.m.recordStages(out.Timings)
	s.m.recordAnalysis(acache)
	s.m.degradedFuncs.Add(int64(len(out.Degraded)))

	outcomeJSON, err := json.Marshal(report.EncodeOutcome(out))
	if err != nil {
		runErr = fmt.Errorf("encoding outcome: %w", err)
		publish()
		s.m.serverErrors.Add(1)
		s.writeError(w, http.StatusInternalServerError, ErrorResponse{
			Error: runErr.Error(), Kind: "stage_error"})
		return
	}
	entry = cachedOutcome{outcome: outcomeJSON, report: out.Report()}
	publish()

	cacheState := "bypass"
	if s.cfg.CacheEntries > 0 {
		s.m.cacheMisses.Add(1)
		s.m.cacheEvictions.Add(int64(s.cache.Put(key, entry)))
		cacheState = "miss"
	}
	s.diskPut(key, entry)

	s.m.ok.Add(1)
	s.writeJSON(w, http.StatusOK, PromoteResponse{
		Outcome: json.RawMessage(outcomeJSON),
		Report:  entry.report,
		Serving: ServingMeta{
			SchemaVersion: report.SchemaVersion,
			Cache:         cacheState,
			QueueWaitMS:   float64(queueWait.Microseconds()) / 1000,
			PipelineMS:    float64(pipeWall.Microseconds()) / 1000,
			Stages:        report.StageTimingsMS(report.SumStageTimings(out)),
		},
	})
}

// serveCached writes a 200 for an outcome that did not run the pipeline
// in this request.
func (s *Server) serveCached(w http.ResponseWriter, entry cachedOutcome, state string) {
	s.m.ok.Add(1)
	s.writeJSON(w, http.StatusOK, PromoteResponse{
		Outcome: json.RawMessage(entry.outcome),
		Report:  entry.report,
		Serving: ServingMeta{SchemaVersion: report.SchemaVersion, Cache: state},
	})
}

// diskGet consults the cold tier. Every failure — absence, corruption
// (already quarantined by the store), injected or real IO errors —
// degrades to a miss; the counters keep score.
func (s *Server) diskGet(key string) (cachedOutcome, bool) {
	if s.disk == nil {
		return cachedOutcome{}, false
	}
	payload, err := s.disk.Get(key)
	if err != nil {
		switch {
		case errors.Is(err, diskcache.ErrNotFound):
		case errors.Is(err, diskcache.ErrCorrupt):
			s.m.diskCorrupt.Add(1)
		default:
			s.m.diskReadErrors.Add(1)
		}
		return cachedOutcome{}, false
	}
	entry, err := unmarshalOutcome(payload)
	if err != nil {
		s.m.diskCorrupt.Add(1)
		return cachedOutcome{}, false
	}
	s.m.diskHits.Add(1)
	return entry, true
}

// diskPut writes an outcome through to the cold tier; a failed write
// (injected or real) costs durability for this entry, never
// correctness.
func (s *Server) diskPut(key string, entry cachedOutcome) {
	if s.disk == nil {
		return
	}
	if err := s.disk.Put(key, entry.marshal()); err != nil {
		s.m.diskWriteErrors.Add(1)
	}
}

// writeFlightError maps an error shared through a flight — admission
// rejection, queued-context cancellation, or a pipeline failure — to
// its HTTP shape, for both the leader and every waiter.
func (s *Server) writeFlightError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.m.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, ErrorResponse{
			Error: "admission queue full", Kind: "queue_full"})
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The leader's client went away while queued; its waiters (if
		// any) see the same retryable shape.
		s.m.clientErrors.Add(1)
		s.writeError(w, http.StatusRequestTimeout, ErrorResponse{
			Error: "canceled while queued: " + err.Error(), Kind: "timeout"})
	default:
		s.writeRunError(w, err)
	}
}

// writeRunError maps a pipeline failure to its HTTP shape: interpreter
// resource exhaustion to 408, everything else (stage panics included —
// the StageError machinery already absorbed them into structured form)
// to 500 with the StageError fields in the body.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	resp := ErrorResponse{Error: err.Error(), Kind: "stage_error"}
	var se *pipeline.StageError
	if errors.As(err, &se) {
		resp.Stage = se.Stage
		resp.Func = se.Func
	}
	if errors.Is(err, interp.ErrTimeout) || errors.Is(err, interp.ErrStepLimit) {
		resp.Kind = "timeout"
		s.m.timeouts.Add(1)
		s.writeError(w, http.StatusRequestTimeout, resp)
		return
	}
	s.m.serverErrors.Add(1)
	s.writeError(w, http.StatusInternalServerError, resp)
}

// handleHealthz serves GET /healthz: 200 while serving, 503 while
// draining — the signal a load balancer needs to rotate the instance
// out before the listener closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.isDraining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, map[string]any{
		"status":   status,
		"uptime_s": int64(time.Since(s.start).Seconds()),
	})
}

// handleReadyz serves GET /readyz: distinct from liveness, readiness
// says "send me traffic". Not-ready (503) while draining — and, unlike
// /healthz, while the admission queue is saturated, so an upstream
// balancer stops routing here before requests start bouncing off the
// 429 wall.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	reason := ""
	switch {
	case s.isDraining():
		reason = "draining"
	case s.adm.saturated():
		reason = "admission queue saturated"
	}
	if reason != "" {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "not_ready", "reason": reason,
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.writePrometheus(w, s)
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, resp ErrorResponse) {
	s.writeJSON(w, code, resp)
}

package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// flight is one in-progress computation of a cache key. The leader
// fills entry/err and closes done; waiters block on done and then read
// the shared result. Fields other than done are written only before
// done closes and read only after, so no further locking is needed.
type flight struct {
	done  chan struct{}
	entry cachedOutcome
	err   error
}

// flightGroup collapses concurrent identical cache misses into one
// pipeline execution: the first request for a key becomes the leader
// and actually runs; the rest wait for the leader's bytes. That turns a
// thundering herd of identical requests — the hot-key failure mode —
// into one worker slot and one pipeline run, with every caller served
// the same (byte-identical, cacheable) outcome.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
	waiters map[string]int
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight), waiters: make(map[string]int)}
}

// join returns the flight for key and whether the caller is its leader.
// A leader MUST eventually call complete (the handler does so via a
// deferred guard, so even a panicking leader releases its waiters).
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		g.waiters[key]++
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	return f, true
}

// complete publishes the leader's result, removes the flight so later
// requests start fresh, and releases every waiter.
func (g *flightGroup) complete(key string, f *flight, entry cachedOutcome, err error) {
	g.mu.Lock()
	delete(g.flights, key)
	delete(g.waiters, key)
	g.mu.Unlock()
	f.entry = entry
	f.err = err
	close(f.done)
}

// waiting reports how many requests are currently waiting on key
// (metrics and tests).
func (g *flightGroup) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiters[key]
}

// errLeaderAborted is published to waiters when the leader's handler
// unwound without a result (a panic outside the pipeline's own recover
// barriers). Waiters map it to a 500; they are never left hanging.
var errLeaderAborted = fmt.Errorf("server: singleflight leader aborted")

// isCanceled reports whether a flight error reflects the leader's own
// client going away rather than a failure of the computation — the
// cases a still-live waiter should retry rather than inherit.
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, errLeaderAborted)
}

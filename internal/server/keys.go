package server

import (
	"time"

	"repro/internal/irimport"
	"repro/internal/pipeline"
)

// KeyCeilings are the server configuration values that participate in
// request canonicalization — and therefore in the content-addressed
// cache key. A router fronting a fleet of replicas must compute keys
// with the same ceilings the replicas run with, or identical requests
// would hash to different keys on the two sides and consistent-hash
// placement would stop aligning with replica cache contents.
type KeyCeilings struct {
	// MaxSteps is the interpreter step ceiling (0 = 50 million, the
	// server default).
	MaxSteps int64
	// MaxTimeout is the interpreter wall-clock ceiling (0 = 10s).
	MaxTimeout time.Duration
	// PipelineWorkers is the default per-request transform worker count
	// (0 = 1).
	PipelineWorkers int
}

// withDefaults mirrors Config.withDefaults for the key-relevant subset.
func (c KeyCeilings) withDefaults() KeyCeilings {
	if c.MaxSteps <= 0 {
		c.MaxSteps = 50_000_000
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Second
	}
	if c.PipelineWorkers <= 0 {
		c.PipelineWorkers = 1
	}
	return c
}

// ResolveKey canonicalizes ro against the ceilings and returns the
// content-addressed cache key for (src, ro) — byte-for-byte the key a
// replica running with matching ceilings derives for the same request.
// Invalid options return the same typed error shape the replica's 400
// carries, so a router can reject bad requests without spending a
// proxy hop.
func ResolveKey(src string, ro RequestOptions, ceil KeyCeilings) (string, error) {
	res, err := canonicalize(ro, ceil.withDefaults())
	if err != nil {
		return "", err
	}
	return cacheKey(src, res), nil
}

// canonicalize defaults and clamps request options into their resolved
// form — the exact struct hashed into the cache key. It is pure
// (depends only on ro and ceil) so the router and every replica agree
// on it. Rejections are typed *pipeline.OptionError wrapped for 400
// mapping, naming the offending field.
func canonicalize(ro RequestOptions, ceil KeyCeilings) (resolvedOptions, error) {
	var res resolvedOptions
	res.Lang = ro.Lang
	if res.Lang == "" {
		res.Lang = irimport.LangMiniC
	}
	if res.Lang != irimport.LangMiniC && res.Lang != irimport.LangIR {
		return res, &badRequestError{&pipeline.OptionError{Field: "Lang", Value: ro.Lang,
			Reason: `unknown input language (want "mc" or "ll")`}}
	}
	res.Algorithm = ro.Algorithm
	if res.Algorithm == "" {
		res.Algorithm = "ssa"
	}
	if _, err := pipeline.ParseAlgorithm(res.Algorithm); err != nil {
		return res, &badRequestError{&pipeline.OptionError{Field: "Algorithm", Value: ro.Algorithm,
			Reason: "unknown algorithm (want ssa, baseline, memopt, or none)"}}
	}
	res.Check = ro.Check
	if res.Check == "" {
		res.Check = "off"
	}
	if _, err := pipeline.ParseCheckLevel(res.Check); err != nil {
		return res, &badRequestError{&pipeline.OptionError{Field: "Check", Value: ro.Check,
			Reason: "unknown check level (want off, boundaries, or paranoid)"}}
	}
	res.Workers = ro.Workers
	if res.Workers == 0 {
		res.Workers = ceil.PipelineWorkers
	}
	if res.Workers < 0 || res.Workers > 16 {
		return res, &badRequestError{&pipeline.OptionError{Field: "Workers", Value: ro.Workers,
			Reason: "out of range [0, 16] (0 = server default)"}}
	}
	if ro.MaxSteps < 0 {
		return res, &badRequestError{&pipeline.OptionError{Field: "Interp.MaxSteps", Value: ro.MaxSteps,
			Reason: "must be >= 0 (0 = server ceiling)"}}
	}
	if ro.TimeoutMS < 0 {
		return res, &badRequestError{&pipeline.OptionError{Field: "Interp.Timeout", Value: ro.TimeoutMS,
			Reason: "must be >= 0 (0 = server ceiling)"}}
	}
	if ro.MaxPromotedWebs < 0 {
		return res, &badRequestError{&pipeline.OptionError{Field: "MaxPromotedWebs", Value: ro.MaxPromotedWebs,
			Reason: "must be >= 0 (0 = unlimited)"}}
	}
	if ro.PressureCap < 0 {
		return res, &badRequestError{&pipeline.OptionError{Field: "PressureCap", Value: ro.PressureCap,
			Reason: "must be >= 0 (0 = no pressure cap)"}}
	}
	res.MaxSteps = ro.MaxSteps
	if res.MaxSteps == 0 || res.MaxSteps > ceil.MaxSteps {
		res.MaxSteps = ceil.MaxSteps
	}
	maxMS := ceil.MaxTimeout.Milliseconds()
	res.TimeoutMS = ro.TimeoutMS
	if res.TimeoutMS == 0 || res.TimeoutMS > maxMS {
		res.TimeoutMS = maxMS
	}
	res.StaticProfile = ro.StaticProfile
	res.PreMemOpts = ro.PreMemOpts
	res.PaperProfitFormula = ro.PaperProfitFormula
	res.WholeFunctionScope = ro.WholeFunctionScope
	res.MaxPromotedWebs = ro.MaxPromotedWebs
	res.PressureCap = ro.PressureCap
	res.SkipMeasurement = ro.SkipMeasurement
	res.Fault = ro.Fault
	return res, nil
}

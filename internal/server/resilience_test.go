package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// promoteKey computes the cache key the server will use for req —
// tests need it to watch flights and find disk entries.
func promoteKey(t *testing.T, s *Server, req PromoteRequest) string {
	t.Helper()
	resolved, _, err := s.resolve(req.Options)
	if err != nil {
		t.Fatal(err)
	}
	return cacheKey(req.Source, resolved)
}

// TestSingleflightCollapsesIdenticalMisses fires N concurrent identical
// cache misses at a one-worker server whose leader is held at the
// pipeline boundary, and checks exactly one pipeline run happens, every
// caller gets 200 with byte-identical outcomes, and the collapse is
// visible in the counters. Run under -race this is also the
// singleflight memory-safety gate.
func TestSingleflightCollapsesIdenticalMisses(t *testing.T) {
	const n = 8
	s := newTestServer(t, Config{Workers: 1})
	block := make(chan struct{})
	s.testHook = func() { <-block }

	req := PromoteRequest{Source: smallSrc}
	key := promoteKey(t, s, req)

	type result struct {
		code    int
		cache   string
		outcome []byte
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, ok, _ := postPromote(t, s, req)
			results[i] = result{rec.Code, ok.Serving.Cache, ok.Outcome}
		}(i)
	}
	// The leader holds the worker slot at the test hook; everyone else
	// must be waiting on the flight, not on a worker slot.
	waitFor(t, "all waiters joined the flight", func() bool { return s.flights.waiting(key) == n-1 })
	if got := s.adm.inUse(); got != 1 {
		t.Fatalf("inUse = %d with %d identical requests, want 1 (waiters must not hold slots)", got, n)
	}
	close(block)
	wg.Wait()

	var miss, collapsed int
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: %d, want 200", i, r.code)
		}
		switch r.cache {
		case "miss":
			miss++
		case "collapsed":
			collapsed++
		default:
			t.Fatalf("request %d: cache=%q, want miss or collapsed", i, r.cache)
		}
		if !bytes.Equal(r.outcome, results[0].outcome) {
			t.Fatalf("request %d outcome differs from request 0", i)
		}
	}
	if miss != 1 || collapsed != n-1 {
		t.Fatalf("miss=%d collapsed=%d, want 1/%d", miss, collapsed, n-1)
	}
	if got := s.m.cacheMisses.Load(); got != 1 {
		t.Fatalf("pipeline ran %d times, want 1", got)
	}
	if got := s.m.collapsed.Load(); got != int64(n-1) {
		t.Fatalf("collapsed counter = %d, want %d", got, n-1)
	}

	// The flight is gone; the next request is a plain memory hit.
	rec, after, _ := postPromote(t, s, req)
	if rec.Code != http.StatusOK || after.Serving.Cache != "hit" {
		t.Fatalf("post-flight request: %d cache=%q, want 200 hit", rec.Code, after.Serving.Cache)
	}
}

// TestSingleflightLeaderErrorPropagates holds a leader whose pipeline
// will fail and checks every waiter receives the failure — nobody
// hangs, nobody gets fabricated bytes.
func TestSingleflightLeaderErrorPropagates(t *testing.T) {
	const n = 4
	s := newTestServer(t, Config{Workers: 1, EnableFaults: true})
	block := make(chan struct{})
	s.testHook = func() { <-block }

	req := PromoteRequest{Source: smallSrc, Options: RequestOptions{Fault: "compile:panic"}}
	key := promoteKey(t, s, req)

	codes := make([]int, n)
	kinds := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, _, fail := postPromote(t, s, req)
			codes[i], kinds[i] = rec.Code, fail.Kind
		}(i)
	}
	waitFor(t, "waiters joined", func() bool { return s.flights.waiting(key) == n-1 })
	close(block)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusInternalServerError || kinds[i] != "stage_error" {
			t.Fatalf("request %d: %d kind=%q, want 500 stage_error", i, codes[i], kinds[i])
		}
	}
	// The failure is not cached: a later good request runs the pipeline.
	good := PromoteRequest{Source: smallSrc}
	rec, ok, _ := postPromote(t, s, good)
	if rec.Code != http.StatusOK || ok.Serving.Cache != "miss" {
		t.Fatalf("request after failed flight: %d cache=%q, want 200 miss", rec.Code, ok.Serving.Cache)
	}
}

// TestDiskTierWarmRestart checks a second server over the same cache
// directory serves the first server's outcomes from disk, byte for
// byte, and promotes them into its memory tier.
func TestDiskTierWarmRestart(t *testing.T) {
	dir := t.TempDir()
	req := PromoteRequest{Source: smallSrc}

	s1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	rec, first, _ := postPromote(t, s1, req)
	if rec.Code != http.StatusOK || first.Serving.Cache != "miss" {
		t.Fatalf("first server: %d cache=%q, want 200 miss", rec.Code, first.Serving.Cache)
	}

	// "Restart": a brand-new server (empty memory tier) on the same dir.
	s2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	rec, warm, _ := postPromote(t, s2, req)
	if rec.Code != http.StatusOK || warm.Serving.Cache != "disk" {
		t.Fatalf("restarted server: %d cache=%q, want 200 disk", rec.Code, warm.Serving.Cache)
	}
	if !bytes.Equal(first.Outcome, warm.Outcome) || first.Report != warm.Report {
		t.Fatal("disk-served outcome differs from the originally computed one")
	}
	if s2.m.diskHits.Load() != 1 {
		t.Fatalf("diskHits = %d, want 1", s2.m.diskHits.Load())
	}
	// The disk hit was promoted: the next request is a memory hit.
	rec, hot, _ := postPromote(t, s2, req)
	if rec.Code != http.StatusOK || hot.Serving.Cache != "hit" {
		t.Fatalf("promoted entry: %d cache=%q, want 200 hit", rec.Code, hot.Serving.Cache)
	}
}

// TestDiskTierBackfillsMemoryEviction squeezes the memory tier to one
// entry and checks entries evicted from memory are still served from
// disk — the interaction that makes the cold tier an extension of the
// hot one rather than a separate cache.
func TestDiskTierBackfillsMemoryEviction(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, CacheEntries: 1, CacheDir: t.TempDir()})
	reqA := PromoteRequest{Source: smallSrc}
	reqB := PromoteRequest{Source: `void main() { print(7); }`}

	if rec, a, _ := postPromote(t, s, reqA); rec.Code != 200 || a.Serving.Cache != "miss" {
		t.Fatalf("A first: %d %q", rec.Code, a.Serving.Cache)
	}
	// B evicts A from the one-entry memory tier.
	if rec, b, _ := postPromote(t, s, reqB); rec.Code != 200 || b.Serving.Cache != "miss" {
		t.Fatalf("B first: %d %q", rec.Code, b.Serving.Cache)
	}
	// A is gone from memory but alive on disk.
	rec, a2, _ := postPromote(t, s, reqA)
	if rec.Code != 200 || a2.Serving.Cache != "disk" {
		t.Fatalf("A after eviction: %d cache=%q, want disk", rec.Code, a2.Serving.Cache)
	}
	// A's promotion evicted B in turn; B now comes from disk too.
	rec, b2, _ := postPromote(t, s, reqB)
	if rec.Code != 200 || b2.Serving.Cache != "disk" {
		t.Fatalf("B after A promoted: %d cache=%q, want disk", rec.Code, b2.Serving.Cache)
	}
}

// diskEntryFiles lists the live entry files under a server's cache dir.
func diskEntryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		parent := filepath.Base(filepath.Dir(path))
		if parent == "tmp" || parent == "bad" {
			return nil
		}
		files = append(files, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestDiskCorruptionRecovery corrupts the stored entry between two
// server generations (truncation and bit flip) and checks the restarted
// server quarantines it, recomputes the identical bytes, and carries
// on — never a 500, never wrong bytes.
func TestDiskCorruptionRecovery(t *testing.T) {
	cases := []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/3] }},
		{"bitflip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x01
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			req := PromoteRequest{Source: smallSrc}

			s1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
			_, first, _ := postPromote(t, s1, req)

			files := diskEntryFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("found %d disk entries, want 1", len(files))
			}
			data, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], tc.fn(data), 0o644); err != nil {
				t.Fatal(err)
			}

			s2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
			rec, recomputed, _ := postPromote(t, s2, req)
			if rec.Code != http.StatusOK || recomputed.Serving.Cache != "miss" {
				t.Fatalf("corrupt entry: %d cache=%q, want 200 miss (recompute)", rec.Code, recomputed.Serving.Cache)
			}
			if !bytes.Equal(first.Outcome, recomputed.Outcome) {
				t.Fatal("recomputed outcome differs from the pre-corruption one")
			}
			if s2.m.diskCorrupt.Load() != 1 {
				t.Fatalf("diskCorrupt = %d, want 1", s2.m.diskCorrupt.Load())
			}
			// The mangled bytes were preserved for forensics.
			bad, err := filepath.Glob(filepath.Join(dir, "v*", "bad", "*"))
			if err != nil || len(bad) != 1 {
				t.Fatalf("quarantine dir holds %d files (err %v), want 1", len(bad), err)
			}
			// And the entry was re-written: a third generation serves it
			// from disk again.
			s3 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
			rec, again, _ := postPromote(t, s3, req)
			if rec.Code != http.StatusOK || again.Serving.Cache != "disk" {
				t.Fatalf("after recompute: %d cache=%q, want 200 disk", rec.Code, again.Serving.Cache)
			}
		})
	}
}

// postPromoteAs is postPromote with a client identity header.
func postPromoteAs(t *testing.T, s *Server, client string, req PromoteRequest) (*httptest.ResponseRecorder, PromoteResponse, ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr := httptest.NewRequest(http.MethodPost, "/v1/promote", bytes.NewReader(body))
	hr.Header.Set("X-Client-ID", client)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, hr)
	var ok PromoteResponse
	var fail ErrorResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &ok); err != nil {
			t.Fatalf("decoding 200 body: %v\n%s", err, rec.Body.String())
		}
	} else if err := json.Unmarshal(rec.Body.Bytes(), &fail); err != nil {
		t.Fatalf("decoding %d body: %v\n%s", rec.Code, err, rec.Body.String())
	}
	return rec, ok, fail
}

// TestRateLimitIsolatesClients exhausts one client's token bucket and
// checks it gets 429 + Retry-After while a different client sails
// through — even on cache hits, which never touch the worker pool.
func TestRateLimitIsolatesClients(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RateLimit: 0.001, RateBurst: 2})
	req := PromoteRequest{Source: smallSrc}

	for i := 0; i < 2; i++ {
		if rec, _, _ := postPromoteAs(t, s, "greedy", req); rec.Code != http.StatusOK {
			t.Fatalf("burst request %d: %d, want 200", i, rec.Code)
		}
	}
	rec, _, fail := postPromoteAs(t, s, "greedy", req)
	if rec.Code != http.StatusTooManyRequests || fail.Kind != "rate_limited" {
		t.Fatalf("exhausted client: %d kind=%q, want 429 rate_limited", rec.Code, fail.Kind)
	}
	ra := rec.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("429 missing Retry-After")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want whole seconds >= 1", ra)
	}
	if s.m.rateLimited.Load() != 1 {
		t.Fatalf("rateLimited = %d, want 1", s.m.rateLimited.Load())
	}

	// A different client is untouched by the greedy one's exhaustion.
	if rec, ok, _ := postPromoteAs(t, s, "polite", req); rec.Code != http.StatusOK || ok.Serving.Cache != "hit" {
		t.Fatalf("other client: %d cache=%q, want 200 hit", rec.Code, ok.Serving.Cache)
	}
}

// TestRateLimitRefill checks tokens come back with time: the bucket
// refills at the configured rate rather than staying empty forever.
func TestRateLimitRefill(t *testing.T) {
	l := newRateLimiter(100, 1) // 100 tokens/s, burst 1
	now := time.Now()
	if ok, _ := l.allow("c", now); !ok {
		t.Fatal("first request rejected with a full bucket")
	}
	if ok, retry := l.allow("c", now); ok {
		t.Fatal("second immediate request allowed with burst 1")
	} else if retry <= 0 || retry > 2*time.Second {
		t.Fatalf("retry hint %v out of range", retry)
	}
	if ok, _ := l.allow("c", now.Add(50*time.Millisecond)); !ok {
		t.Fatal("request after refill interval rejected")
	}
}

// TestReadyz checks readiness is distinct from liveness: not-ready on
// queue saturation (while /healthz stays 200) and on drain.
func TestReadyz(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code, rec.Body.String()
	}

	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz idle: %d %s", code, body)
	}

	// Saturate: one request holds the worker, one holds the queue slot.
	block := make(chan struct{})
	s.testHook = func() { <-block }
	done := make(chan struct{}, 2)
	fire := func(src string) {
		go func() {
			postPromote(t, s, PromoteRequest{Source: src})
			done <- struct{}{}
		}()
	}
	fire(smallSrc)
	waitFor(t, "worker busy", func() bool { return s.adm.inUse() == 1 })
	fire(`void main() { print(4); }`)
	waitFor(t, "queue full", func() bool { return s.adm.waiting() == 1 })

	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !bytes.Contains([]byte(body), []byte("saturated")) {
		t.Fatalf("/readyz saturated: %d %s, want 503 with reason", code, body)
	}
	// Liveness is unaffected: the process is healthy, just busy.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while saturated: %d, want 200", code)
	}

	close(block)
	<-done
	<-done
	waitFor(t, "queue drained", func() bool { return !s.adm.saturated() })
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatal("/readyz did not recover after saturation cleared")
	}

	go s.Drain(context.Background())
	waitFor(t, "draining", s.isDraining)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !bytes.Contains([]byte(body), []byte("draining")) {
		t.Fatalf("/readyz draining: %d %s, want 503 draining", code, body)
	}
}

// TestBadRequestFieldNames checks every invalid option maps to a 400
// whose body names the offending field — the contract that lets a
// client fix its request programmatically.
func TestBadRequestFieldNames(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		opts  RequestOptions
		field string
	}{
		{RequestOptions{Algorithm: "turbo"}, "Algorithm"},
		{RequestOptions{Check: "extreme"}, "Check"},
		{RequestOptions{Workers: -1}, "Workers"},
		{RequestOptions{Workers: 99}, "Workers"},
		{RequestOptions{MaxSteps: -5}, "Interp.MaxSteps"},
		{RequestOptions{TimeoutMS: -5}, "Interp.Timeout"},
		{RequestOptions{MaxPromotedWebs: -1}, "MaxPromotedWebs"},
		{RequestOptions{Fault: "promote:panic"}, "Fault"}, // faults disabled
	}
	for _, tc := range cases {
		rec, _, fail := postPromote(t, s, PromoteRequest{Source: smallSrc, Options: tc.opts})
		if rec.Code != http.StatusBadRequest || fail.Kind != "bad_request" {
			t.Fatalf("%+v: %d kind=%q, want 400 bad_request", tc.opts, rec.Code, fail.Kind)
		}
		if fail.Field != tc.field {
			t.Fatalf("%+v: field=%q, want %q (error: %s)", tc.opts, fail.Field, tc.field, fail.Error)
		}
	}

	// A malformed fault plan names the field too, even with faults on.
	sf := newTestServer(t, Config{Workers: 1, EnableFaults: true})
	rec, _, fail := postPromote(t, sf, PromoteRequest{Source: smallSrc, Options: RequestOptions{Fault: ":::"}})
	if rec.Code != http.StatusBadRequest || fail.Field != "Fault" {
		t.Fatalf("bad fault plan: %d field=%q, want 400 Fault", rec.Code, fail.Field)
	}
}

// TestChaosDiskFaultsNeverFailRequests runs a server whose disk tier
// fails constantly — reads, writes, checksums all injected — and checks
// every request still succeeds with correct bytes: the cold tier can
// only ever add durability, never subtract correctness.
func TestChaosDiskFaultsNeverFailRequests(t *testing.T) {
	// The injector arrives via the config — the same wiring rpserved's
	// -chaos-disk flag uses.
	s := newTestServer(t, Config{
		Workers:  1,
		CacheDir: t.TempDir(),
		DiskChaos: faults.NewDisk(faults.DiskPlan{
			ReadErr: 0.5, WriteErr: 0.5, ChecksumErr: 0.5, Seed: 7,
		}),
	})
	req := PromoteRequest{Source: smallSrc}
	var first []byte
	for i := 0; i < 6; i++ {
		rec, ok, fail := postPromote(t, s, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d under disk chaos: %d %s", i, rec.Code, fail.Error)
		}
		if first == nil {
			first = ok.Outcome
		} else if !bytes.Equal(first, ok.Outcome) {
			t.Fatalf("request %d outcome differs under disk chaos", i)
		}
	}
	if s.m.serverErrors.Load() != 0 {
		t.Fatalf("serverErrors = %d under disk chaos, want 0", s.m.serverErrors.Load())
	}
}

// TestClientKeyStableWithoutPort checks the rate-limit key is stable
// across connections for every RemoteAddr shape. The regression: an
// address net.SplitHostPort cannot parse (unbracketed IPv6 with a
// port) used to key on the raw address, ephemeral port included, so
// each reconnect got a fresh bucket and the limit never bound.
func TestClientKeyStableWithoutPort(t *testing.T) {
	keyFor := func(remote string) string {
		r := httptest.NewRequest(http.MethodPost, "/v1/promote", nil)
		r.RemoteAddr = remote
		return clientKey(r)
	}
	if a, b := keyFor("::1:40001"), keyFor("::1:40002"); a != b {
		t.Fatalf("unbracketed IPv6 keys differ across ports: %q vs %q", a, b)
	}
	if a, b := keyFor("10.1.2.3:40001"), keyFor("10.1.2.3:40002"); a != b || a != "10.1.2.3" {
		t.Fatalf("IPv4 keys %q, %q, want both 10.1.2.3", a, b)
	}
	if got := keyFor("[::1]:40001"); got != "::1" {
		t.Fatalf("bracketed IPv6 key %q, want ::1", got)
	}
	// No port at all: the address itself is the stable key.
	if got := keyFor("unix-socket"); got != "unix-socket" {
		t.Fatalf("portless key %q, want unchanged", got)
	}
	// The header, when present, wins over any address.
	r := httptest.NewRequest(http.MethodPost, "/v1/promote", nil)
	r.RemoteAddr = "10.1.2.3:40001"
	r.Header.Set("X-Client-ID", "tenant-7")
	if got := clientKey(r); got != "tenant-7" {
		t.Fatalf("header key %q, want tenant-7", got)
	}
}

// TestRateLimitEvictionBounded fills the client map past its cap and
// checks admission stays bounded: the map never exceeds maxClients,
// and eviction inspects a fixed-size sample rather than scanning every
// bucket (the old full scan made each new client O(maxClients) with
// the lock held).
func TestRateLimitEvictionBounded(t *testing.T) {
	l := newRateLimiter(1, 1)
	l.maxClients = 100
	now := time.Now()
	// An old cohort that eviction should prefer once sampled.
	for i := 0; i < l.maxClients; i++ {
		l.allow("old-"+strconv.Itoa(i), now)
	}
	for i := 0; i < 500; i++ {
		l.allow("new-"+strconv.Itoa(i), now.Add(time.Hour))
	}
	if got := l.clients(); got > l.maxClients {
		t.Fatalf("clients = %d, want <= %d", got, l.maxClients)
	}
	// Churn far past the cap: with the full scan this loop is
	// quadratic in maxClients; with sampling it stays flat.
	for i := 0; i < 5_000; i++ {
		l.allow("churn-"+strconv.Itoa(i), now.Add(2*time.Hour))
	}
	if got := l.clients(); got > l.maxClients {
		t.Fatalf("after churn: clients = %d, want <= %d", got, l.maxClients)
	}
}

// TestFlightWaiterRetriesCanceledLeader: when a singleflight leader's
// own client vanishes while the leader is queued for admission (the
// router's hedge-loser cancellation), its waiters must not inherit the
// cancellation — a live waiter retries the flight, becomes the new
// leader, and serves a normal 200.
func TestFlightWaiterRetriesCanceledLeader(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	block := make(chan struct{})
	s.testHook = func() { <-block }

	// Occupy the only worker slot with an unrelated program so the
	// leader below parks in the admission queue.
	holdReq := PromoteRequest{Source: "int hold() { return 42; }\nint main() { return hold(); }"}
	var holdWG sync.WaitGroup
	holdWG.Add(1)
	go func() {
		defer holdWG.Done()
		postPromote(t, s, holdReq)
	}()
	waitFor(t, "slot holder admitted", func() bool { return s.adm.inUse() == 1 })

	// Leader for the shared key, with a cancellable client context; it
	// joins the flight first, then waits in the admission queue.
	req := PromoteRequest{Source: smallSrc}
	key := promoteKey(t, s, req)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	leaderDone := make(chan int, 1)
	go func() {
		hr := httptest.NewRequest(http.MethodPost, "/v1/promote", bytes.NewReader(body)).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, hr)
		leaderDone <- rec.Code
	}()
	waitFor(t, "leader joined the flight", func() bool {
		s.flights.mu.Lock()
		_, live := s.flights.flights[key]
		s.flights.mu.Unlock()
		return live
	})

	// Waiter on the same key with a live client.
	type outcome struct {
		code  int
		cache string
	}
	waiterDone := make(chan outcome, 1)
	go func() {
		rec, ok, _ := postPromote(t, s, req)
		waiterDone <- outcome{rec.Code, ok.Serving.Cache}
	}()
	waitFor(t, "waiter joined the flight", func() bool { return s.flights.waiting(key) == 1 })

	// Kill the leader's client. The leader aborts out of the admission
	// queue; the waiter must retry, inherit leadership, and queue up.
	cancel()
	if code := <-leaderDone; code != http.StatusRequestTimeout {
		t.Fatalf("canceled leader got %d, want 408", code)
	}
	// Release the slot holder; the retried waiter now runs for real.
	close(block)
	holdWG.Wait()
	got := <-waiterDone
	if got.code != http.StatusOK {
		t.Fatalf("waiter got %d after leader cancellation, want 200", got.code)
	}
	if got.cache != "miss" {
		t.Fatalf("waiter cache=%q, want miss (it should have become the new leader)", got.cache)
	}
}

package server

import (
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket sitting ahead of the
// admission queue: a misbehaving client exhausts its own bucket and
// collects 429s while every other client's latency holds. Clients are
// identified by the X-Client-ID header when present (trusted fronting
// proxies set it per tenant) and by remote host otherwise.
//
// Buckets refill continuously at rate tokens/second up to burst. The
// client map is bounded: past maxClients the stalest bucket (the one
// refilled longest ago, i.e. a full, idle bucket) is dropped — dropping
// a full bucket momentarily forgives an idle client, never a hot one.
type rateLimiter struct {
	rate       float64 // tokens per second per client
	burst      float64
	maxClients int

	mu      sync.Mutex
	buckets map[string]*bucket
	rng     *rand.Rand // jitter for Retry-After hints
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter builds a limiter; rate <= 0 disables limiting and
// returns nil (a nil limiter admits everything).
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = int(2 * rate)
		if burst < 4 {
			burst = 4
		}
	}
	return &rateLimiter{
		rate:       rate,
		burst:      float64(burst),
		maxClients: 10_000,
		buckets:    make(map[string]*bucket),
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// allow takes one token from client's bucket. When the bucket is empty
// it returns false and a jittered Retry-After hint: the base is the
// time until one token accrues, plus up to 50% random spread so a
// synchronized herd of limited clients does not return as a
// synchronized herd of retries.
func (l *rateLimiter) allow(client string, now time.Time) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[client]
	if !ok {
		if len(l.buckets) >= l.maxClients {
			l.evictStalest()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	wait += time.Duration(l.rng.Float64() * 0.5 * float64(wait))
	return false, wait
}

// evictSample bounds how many buckets evictStalest inspects. A full
// scan is O(maxClients) with the lock held, paid by every new client
// once the map is full — under key churn that turns admission into a
// quadratic stall. A small sample (map iteration starts at a random
// bucket, so repeated calls see different slices of the map) finds an
// old-enough victim with high probability at constant cost.
const evictSample = 32

// evictStalest drops the bucket refilled longest ago among a bounded
// random sample. Called with mu held.
func (l *rateLimiter) evictStalest() {
	var stalest string
	var oldest time.Time
	n := 0
	for c, b := range l.buckets {
		if n == 0 || b.last.Before(oldest) {
			stalest, oldest = c, b.last
		}
		n++
		if n >= evictSample {
			break
		}
	}
	if stalest != "" {
		delete(l.buckets, stalest)
	}
}

// clients reports how many buckets are live (metrics).
func (l *rateLimiter) clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// clientKey identifies the requester for rate limiting.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return stripPort(r.RemoteAddr)
}

// stripPort reduces an address net.SplitHostPort could not parse to a
// per-host bucket key. Without it the raw address — ephemeral port
// included — became the bucket key, handing every new connection a
// fresh bucket and making the limit trivially avoidable by
// reconnecting. The stripped form is stable per host, which is what
// bucketing needs; exact host parsing is not required.
//
// Three shapes matter:
//   - "[::1]:8080", "[fe80::1%eth0]" — bracketed IPv6 (with or without
//     a port, with or without a zone): the key is the content of the
//     brackets, matching what SplitHostPort returns for the same host
//     so both code paths agree on the bucket.
//   - "10.0.0.1:8080", "host:123", "::1:40001" — a trailing ":<digits>"
//     run is treated as a port and stripped. For unbracketed IPv6 this
//     is ambiguous (the digits could be address bits), but the key only
//     needs to be stable per host, and stripping is what keeps
//     reconnects with fresh ephemeral ports in one bucket.
//   - "::1", "fe80::2" — portless IPv6 where the candidate "port" sits
//     right after a double colon: stripping would leave a prefix ending
//     in ":", so the address is returned unchanged. (The old heuristic
//     mangled these: "::1" became ":".)
func stripPort(addr string) string {
	if strings.HasPrefix(addr, "[") {
		if end := strings.IndexByte(addr, ']'); end > 0 {
			return addr[1:end]
		}
		return addr
	}
	i := strings.LastIndexByte(addr, ':')
	if i <= 0 || i == len(addr)-1 || addr[i-1] == ':' {
		return addr
	}
	for _, ch := range addr[i+1:] {
		if ch < '0' || ch > '9' {
			return addr
		}
	}
	return addr[:i]
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up so the hint is never an invitation to retry early.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(d / time.Second)
	if d%time.Second != 0 || secs == 0 {
		secs++
	}
	return strconv.FormatInt(secs, 10)
}

package server

import (
	"testing"
	"time"
)

// TestResolveKeyMatchesServer: the exported ResolveKey — what the
// cluster router places requests with — must produce byte-identical
// keys to the server's own resolve+cacheKey path for every option
// shape, or sharding would silently stop lining up with replica
// caches.
func TestResolveKeyMatchesServer(t *testing.T) {
	s := newTestServer(t, Config{
		MaxSteps:        1 << 20,
		MaxTimeout:      3 * time.Second,
		PipelineWorkers: 2,
	})
	ceil := KeyCeilings{MaxSteps: 1 << 20, MaxTimeout: 3 * time.Second, PipelineWorkers: 2}
	cases := []RequestOptions{
		{},
		{Algorithm: "baseline", Check: "paranoid"},
		{Workers: 8, MaxSteps: 999, TimeoutMS: 50},
		{Workers: 16, MaxSteps: 1 << 40, TimeoutMS: 1 << 40}, // ceilings clamp steps/timeout
		{Check: "boundaries"},
	}
	for i, ro := range cases {
		resolved, _, err := s.resolve(ro)
		if err != nil {
			t.Fatalf("case %d: server resolve: %v", i, err)
		}
		want := cacheKey(smallSrc, resolved)
		got, err := ResolveKey(smallSrc, ro, ceil)
		if err != nil {
			t.Fatalf("case %d: ResolveKey: %v", i, err)
		}
		if got != want {
			t.Fatalf("case %d: ResolveKey = %s, server key = %s", i, got, want)
		}
	}

	// Invalid options fail identically on both paths.
	bad := RequestOptions{Algorithm: "turbo"}
	if _, _, err := s.resolve(bad); err == nil {
		t.Fatal("server resolve accepted a bad algorithm")
	}
	if _, err := ResolveKey(smallSrc, bad, ceil); err == nil {
		t.Fatal("ResolveKey accepted a bad algorithm")
	}

	// Different ceilings change the key: the router must be configured
	// with the replicas' ceilings or locality degrades.
	other, err := ResolveKey(smallSrc, RequestOptions{}, KeyCeilings{MaxSteps: 1 << 21, MaxTimeout: 3 * time.Second, PipelineWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	base, err := ResolveKey(smallSrc, RequestOptions{}, ceil)
	if err != nil {
		t.Fatal(err)
	}
	if other == base {
		t.Fatal("changing key ceilings did not change the key")
	}
}

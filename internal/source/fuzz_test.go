package source_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/source"
)

// FuzzParser feeds arbitrary text to the mini-C frontend. The contract
// is: never panic, and any program the frontend accepts must produce
// structurally valid IR. The seed corpus (testdata/fuzz/FuzzParser)
// carries the language's tricky shapes: address-taken locals, nested
// improper-ish loop exits via break/continue, call-heavy loops,
// structs, and pointer writes.
func FuzzParser(f *testing.F) {
	seeds := []string{
		`int x; void main() { x = 1; print(x); }`,
		`void main() { int a = 0; int* p = &a; *p = 7; print(a); }`,
		`int g; void h() { g++; } void main() { int i; for (i = 0; i < 9; i++) h(); print(g); }`,
		`struct P { int x; int y; }; struct P p; void main() { p.x = 1; p.y = p.x + 2; print(p.y); }`,
		`int a[4]; void main() { int i; for (i = 0; i < 4; i++) a[i] = i; print(a[3]); }`,
		`void main() { int i = 0; do { i++; if (i == 3) break; } while (i < 10); print(i); }`,
		`void main() { while } `,
		`int x void`,
		`}{`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := source.Compile(src)
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		if prog == nil {
			t.Fatal("Compile returned nil program and nil error")
		}
		for _, fn := range prog.Funcs {
			if verr := fn.Verify(ir.VerifyCFG); verr != nil {
				t.Fatalf("accepted program has invalid IR: %v\nsource:\n%s", verr, src)
			}
		}
	})
}

// Package source implements the mini-C frontend: a lexer, parser, type
// checker, and lowering to the project IR. The language is the subset of
// C the register promotion paper's workloads need: int scalars, int
// arrays, pointers to int obtained with &, structs with int fields,
// global and local variables, functions, and full structured control
// flow. It deliberately includes the three features that drive the
// paper's algorithm: global variables (memory-resident by default),
// address-exposed locals, and function calls / pointer references that
// act as aliased loads and stores.
package source

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNum

	// Keywords.
	TokInt
	TokVoid
	TokStruct
	TokIf
	TokElse
	TokWhile
	TokFor
	TokDo
	TokReturn
	TokBreak
	TokContinue

	// Punctuation and operators.
	TokLParen   // (
	TokRParen   // )
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokSemi     // ;
	TokComma    // ,
	TokDot      // .
	TokAssign   // =
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokPercent  // %
	TokAmp      // &
	TokPipe     // |
	TokCaret    // ^
	TokShl      // <<
	TokShr      // >>
	TokBang     // !
	TokTilde    // ~
	TokEq       // ==
	TokNe       // !=
	TokLt       // <
	TokLe       // <=
	TokGt       // >
	TokGe       // >=
	TokAndAnd   // &&
	TokOrOr     // ||
	TokPlusEq   // +=
	TokMinusEq  // -=
	TokStarEq   // *=
	TokSlashEq  // /=
	TokPctEq    // %=
	TokInc      // ++
	TokDec      // --
)

var kindNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNum: "number",
	TokInt: "int", TokVoid: "void", TokStruct: "struct", TokIf: "if",
	TokElse: "else", TokWhile: "while", TokFor: "for", TokDo: "do",
	TokReturn: "return", TokBreak: "break", TokContinue: "continue",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokSemi: ";", TokComma: ",",
	TokDot: ".", TokAssign: "=", TokPlus: "+", TokMinus: "-",
	TokStar: "*", TokSlash: "/", TokPercent: "%", TokAmp: "&",
	TokPipe: "|", TokCaret: "^", TokShl: "<<", TokShr: ">>",
	TokBang: "!", TokTilde: "~", TokEq: "==", TokNe: "!=",
	TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokAndAnd: "&&", TokOrOr: "||", TokPlusEq: "+=", TokMinusEq: "-=",
	TokStarEq: "*=", TokSlashEq: "/=", TokPctEq: "%=", TokInc: "++",
	TokDec: "--",
}

// String returns a human-readable token kind name.
func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier spelling
	Num  int64  // numeric literal value
	Pos  Pos
}

var keywords = map[string]TokKind{
	"int": TokInt, "void": TokVoid, "struct": TokStruct, "if": TokIf,
	"else": TokElse, "while": TokWhile, "for": TokFor, "do": TokDo,
	"return": TokReturn, "break": TokBreak, "continue": TokContinue,
}

package source

import "repro/internal/ir"

// Compile parses, checks, and lowers mini-C source text to an IR
// program. It is the convenience entry point used by the examples, the
// benchmark harness, and the command-line tools.
func Compile(src string) (*ir.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	checked, err := Check(file)
	if err != nil {
		return nil, err
	}
	return Lower(checked)
}

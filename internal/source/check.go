package source

import "fmt"

// VarKind classifies resolved variables.
type VarKind uint8

// Variable kinds.
const (
	VarGlobal VarKind = iota
	VarLocal
	VarParam
)

// Symbol is a resolved variable. One Symbol exists per declaration; the
// checker maps every use site to its Symbol, so the lowering pass never
// needs scope information.
type Symbol struct {
	Kind     VarKind
	Name     string
	Type     Type
	ArrayN   int
	Global   *GlobalDecl // when Kind == VarGlobal
	Decl     *DeclStmt   // when Kind == VarLocal
	ParamIdx int         // when Kind == VarParam
	// AddrTaken is set when &name occurs; address-taken locals are
	// lowered to stack slots instead of registers.
	AddrTaken bool
}

// Checked is the result of type checking: the file plus resolution and
// type annotations keyed by AST node identity.
type Checked struct {
	File    *File
	Structs map[string]*StructDef
	Funcs   map[string]*FuncDecl

	// Uses maps VarExpr, IndexExpr, and FieldExpr nodes (and assignment
	// targets) to the symbol they name.
	Uses map[Expr]*Symbol
	// Decls maps each local declaration to its symbol.
	Decls map[*DeclStmt]*Symbol
	// Params maps each function to its parameter symbols.
	Params map[*FuncDecl][]*Symbol
	// Types records the type of every expression.
	Types map[Expr]Type
}

type checker struct {
	c       *Checked
	fn      *FuncDecl
	scopes  []map[string]*Symbol
	globals map[string]*Symbol
	loops   int
}

// Check type-checks a parsed file and returns resolution annotations.
func Check(file *File) (*Checked, error) {
	c := &Checked{
		File:    file,
		Structs: make(map[string]*StructDef),
		Funcs:   make(map[string]*FuncDecl),
		Uses:    make(map[Expr]*Symbol),
		Decls:   make(map[*DeclStmt]*Symbol),
		Params:  make(map[*FuncDecl][]*Symbol),
		Types:   make(map[Expr]Type),
	}
	ck := &checker{c: c, globals: make(map[string]*Symbol)}

	for _, sd := range file.Structs {
		if _, dup := c.Structs[sd.Name]; dup {
			return nil, fmt.Errorf("%v: struct %s redefined", sd.Pos, sd.Name)
		}
		if len(sd.Fields) == 0 {
			return nil, fmt.Errorf("%v: struct %s has no fields", sd.Pos, sd.Name)
		}
		seen := map[string]bool{}
		for _, f := range sd.Fields {
			if seen[f] {
				return nil, fmt.Errorf("%v: struct %s: duplicate field %s", sd.Pos, sd.Name, f)
			}
			seen[f] = true
		}
		c.Structs[sd.Name] = sd
	}
	for _, g := range file.Globals {
		if g.Type.Kind == TypeStruct {
			sd, ok := c.Structs[g.Type.Struct.Name]
			if !ok {
				return nil, fmt.Errorf("%v: unknown struct %s", g.Pos, g.Type.Struct.Name)
			}
			g.Type.Struct = sd
		}
		if g.Type.Kind == TypeArray && g.ArrayN <= 0 {
			return nil, fmt.Errorf("%v: array %s has non-positive size", g.Pos, g.Name)
		}
		if _, dup := ck.globals[g.Name]; dup {
			return nil, fmt.Errorf("%v: global %s redefined", g.Pos, g.Name)
		}
		ck.globals[g.Name] = &Symbol{
			Kind: VarGlobal, Name: g.Name, Type: g.Type, ArrayN: g.ArrayN, Global: g,
		}
	}
	for _, fn := range file.Funcs {
		if _, dup := c.Funcs[fn.Name]; dup {
			return nil, fmt.Errorf("%v: function %s redefined", fn.Pos, fn.Name)
		}
		if fn.Name == "print" {
			return nil, fmt.Errorf("%v: cannot define built-in print", fn.Pos)
		}
		c.Funcs[fn.Name] = fn
	}
	if _, ok := c.Funcs["main"]; !ok {
		return nil, fmt.Errorf("program has no main function")
	}

	for _, fn := range file.Funcs {
		if err := ck.checkFunc(fn); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (ck *checker) checkFunc(fn *FuncDecl) error {
	ck.fn = fn
	ck.scopes = []map[string]*Symbol{{}}
	ck.loops = 0
	var params []*Symbol
	for i, p := range fn.Params {
		sym := &Symbol{Kind: VarParam, Name: p.Name, Type: p.Type, ParamIdx: i}
		if err := ck.declare(sym, p.Pos); err != nil {
			return err
		}
		params = append(params, sym)
	}
	ck.c.Params[fn] = params
	return ck.checkStmt(fn.Body)
}

func (ck *checker) pushScope() { ck.scopes = append(ck.scopes, map[string]*Symbol{}) }
func (ck *checker) popScope()  { ck.scopes = ck.scopes[:len(ck.scopes)-1] }

func (ck *checker) declare(sym *Symbol, pos Pos) error {
	top := ck.scopes[len(ck.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		return fmt.Errorf("%v: %s redeclared in this scope", pos, sym.Name)
	}
	top[sym.Name] = sym
	return nil
}

func (ck *checker) lookup(name string) *Symbol {
	for i := len(ck.scopes) - 1; i >= 0; i-- {
		if s, ok := ck.scopes[i][name]; ok {
			return s
		}
	}
	return ck.globals[name]
}

func (ck *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		ck.pushScope()
		defer ck.popScope()
		for _, st := range s.Stmts {
			if err := ck.checkStmt(st); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		if s.Type.Kind == TypeStruct {
			sd, ok := ck.c.Structs[s.Type.Struct.Name]
			if !ok {
				return fmt.Errorf("%v: unknown struct %s", s.Pos, s.Type.Struct.Name)
			}
			s.Type.Struct = sd
		}
		if s.Type.Kind == TypeArray && s.ArrayN <= 0 {
			return fmt.Errorf("%v: array %s has non-positive size", s.Pos, s.Name)
		}
		if s.Init != nil {
			ty, err := ck.checkExpr(s.Init)
			if err != nil {
				return err
			}
			if err := assignableExpr(s.Type, ty, s.Init, s.Pos); err != nil {
				return err
			}
		}
		sym := &Symbol{Kind: VarLocal, Name: s.Name, Type: s.Type, ArrayN: s.ArrayN, Decl: s}
		ck.c.Decls[s] = sym
		return ck.declare(sym, s.Pos)
	case *AssignStmt:
		lty, err := ck.checkLvalue(s.Lhs)
		if err != nil {
			return err
		}
		if s.Op == "++" || s.Op == "--" {
			if lty.Kind != TypeInt {
				return fmt.Errorf("%v: %s requires an int lvalue", s.Pos, s.Op)
			}
			return nil
		}
		rty, err := ck.checkExpr(s.Rhs)
		if err != nil {
			return err
		}
		if s.Op != "=" {
			if lty.Kind != TypeInt || rty.Kind != TypeInt {
				return fmt.Errorf("%v: %s requires int operands", s.Pos, s.Op)
			}
			return nil
		}
		return assignableExpr(lty, rty, s.Rhs, s.Pos)
	case *ExprStmt:
		_, err := ck.checkExpr(s.X)
		return err
	case *IfStmt:
		if err := ck.checkCond(s.Cond); err != nil {
			return err
		}
		if err := ck.checkStmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return ck.checkStmt(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := ck.checkCond(s.Cond); err != nil {
			return err
		}
		ck.loops++
		defer func() { ck.loops-- }()
		return ck.checkStmt(s.Body)
	case *DoWhileStmt:
		ck.loops++
		err := ck.checkStmt(s.Body)
		ck.loops--
		if err != nil {
			return err
		}
		return ck.checkCond(s.Cond)
	case *ForStmt:
		ck.pushScope()
		defer ck.popScope()
		if s.Init != nil {
			if err := ck.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := ck.checkCond(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := ck.checkStmt(s.Post); err != nil {
				return err
			}
		}
		ck.loops++
		defer func() { ck.loops-- }()
		return ck.checkStmt(s.Body)
	case *ReturnStmt:
		if ck.fn.Ret.Kind == TypeVoid {
			if s.X != nil {
				return fmt.Errorf("%v: void function %s returns a value", s.Pos, ck.fn.Name)
			}
			return nil
		}
		if s.X == nil {
			return fmt.Errorf("%v: function %s must return a value", s.Pos, ck.fn.Name)
		}
		ty, err := ck.checkExpr(s.X)
		if err != nil {
			return err
		}
		if ty.Kind != TypeInt {
			return fmt.Errorf("%v: return type mismatch in %s", s.Pos, ck.fn.Name)
		}
		return nil
	case *BreakStmt:
		if ck.loops == 0 {
			return fmt.Errorf("%v: break outside loop", s.Pos)
		}
		return nil
	case *ContinueStmt:
		if ck.loops == 0 {
			return fmt.Errorf("%v: continue outside loop", s.Pos)
		}
		return nil
	case *EmptyStmt:
		return nil
	}
	return fmt.Errorf("unhandled statement %T", s)
}

func (ck *checker) checkCond(e Expr) error {
	ty, err := ck.checkExpr(e)
	if err != nil {
		return err
	}
	if ty.Kind != TypeInt && ty.Kind != TypePtr {
		return fmt.Errorf("condition must be int or pointer, got %v", ty)
	}
	return nil
}

// isNullLiteral reports whether e is the literal 0, the only int
// expression convertible to a pointer. Keeping the int/pointer boundary
// this tight is what lets alias analysis enumerate every possible
// pointer target.
func isNullLiteral(e Expr) bool {
	n, ok := e.(*NumExpr)
	return ok && n.Val == 0
}

func assignableExpr(dst Type, src Type, srcExpr Expr, pos Pos) error {
	switch dst.Kind {
	case TypeInt:
		if src.Kind != TypeInt {
			return fmt.Errorf("%v: cannot assign %v to int", pos, src)
		}
	case TypePtr:
		if src.Kind == TypePtr {
			return nil
		}
		if src.Kind == TypeInt && srcExpr != nil && isNullLiteral(srcExpr) {
			return nil
		}
		return fmt.Errorf("%v: cannot assign %v to int* (only a pointer or literal 0)", pos, src)
	default:
		return fmt.Errorf("%v: cannot assign to %v", pos, dst)
	}
	return nil
}

// checkLvalue resolves an assignment target and returns its type.
func (ck *checker) checkLvalue(e Expr) (Type, error) {
	switch e := e.(type) {
	case *VarExpr:
		sym := ck.lookup(e.Name)
		if sym == nil {
			return Type{}, fmt.Errorf("%v: undefined variable %s", e.Pos, e.Name)
		}
		if sym.Type.Kind == TypeArray || sym.Type.Kind == TypeStruct {
			return Type{}, fmt.Errorf("%v: cannot assign to whole %v %s", e.Pos, sym.Type, e.Name)
		}
		ck.c.Uses[e] = sym
		ck.c.Types[e] = sym.Type
		return sym.Type, nil
	case *IndexExpr, *FieldExpr:
		return ck.checkExpr(e)
	case *UnaryExpr:
		if e.Op != "*" {
			return Type{}, fmt.Errorf("%v: expression is not an lvalue", e.Pos)
		}
		ty, err := ck.checkExpr(e.X)
		if err != nil {
			return Type{}, err
		}
		if ty.Kind != TypePtr {
			return Type{}, fmt.Errorf("%v: cannot dereference %v", e.Pos, ty)
		}
		ck.c.Types[e] = Type{Kind: TypeInt}
		return Type{Kind: TypeInt}, nil
	}
	return Type{}, fmt.Errorf("expression is not an lvalue")
}

func (ck *checker) checkExpr(e Expr) (Type, error) {
	ty, err := ck.exprType(e)
	if err != nil {
		return Type{}, err
	}
	ck.c.Types[e] = ty
	return ty, nil
}

func (ck *checker) exprType(e Expr) (Type, error) {
	switch e := e.(type) {
	case *NumExpr:
		return Type{Kind: TypeInt}, nil
	case *VarExpr:
		sym := ck.lookup(e.Name)
		if sym == nil {
			return Type{}, fmt.Errorf("%v: undefined variable %s", e.Pos, e.Name)
		}
		if sym.Type.Kind == TypeArray {
			return Type{}, fmt.Errorf("%v: array %s used without index (no decay)", e.Pos, e.Name)
		}
		if sym.Type.Kind == TypeStruct {
			return Type{}, fmt.Errorf("%v: struct %s used without field access", e.Pos, e.Name)
		}
		ck.c.Uses[e] = sym
		return sym.Type, nil
	case *IndexExpr:
		sym := ck.lookup(e.Arr)
		if sym == nil {
			return Type{}, fmt.Errorf("%v: undefined array %s", e.Pos, e.Arr)
		}
		if sym.Type.Kind != TypeArray {
			return Type{}, fmt.Errorf("%v: %s is not an array", e.Pos, e.Arr)
		}
		ity, err := ck.checkExpr(e.Idx)
		if err != nil {
			return Type{}, err
		}
		if ity.Kind != TypeInt {
			return Type{}, fmt.Errorf("%v: array index must be int", e.Pos)
		}
		ck.c.Uses[e] = sym
		return Type{Kind: TypeInt}, nil
	case *FieldExpr:
		sym := ck.lookup(e.Rec)
		if sym == nil {
			return Type{}, fmt.Errorf("%v: undefined variable %s", e.Pos, e.Rec)
		}
		if sym.Type.Kind != TypeStruct {
			return Type{}, fmt.Errorf("%v: %s is not a struct", e.Pos, e.Rec)
		}
		if sym.Type.Struct.FieldIndex(e.Field) < 0 {
			return Type{}, fmt.Errorf("%v: struct %s has no field %s", e.Pos, sym.Type.Struct.Name, e.Field)
		}
		ck.c.Uses[e] = sym
		return Type{Kind: TypeInt}, nil
	case *UnaryExpr:
		switch e.Op {
		case "&":
			return ck.checkAddrOf(e)
		case "*":
			ty, err := ck.checkExpr(e.X)
			if err != nil {
				return Type{}, err
			}
			if ty.Kind != TypePtr {
				return Type{}, fmt.Errorf("%v: cannot dereference %v", e.Pos, ty)
			}
			return Type{Kind: TypeInt}, nil
		default: // - ! ~
			ty, err := ck.checkExpr(e.X)
			if err != nil {
				return Type{}, err
			}
			if ty.Kind != TypeInt {
				return Type{}, fmt.Errorf("%v: unary %s requires int", e.Pos, e.Op)
			}
			return Type{Kind: TypeInt}, nil
		}
	case *BinExpr:
		xty, err := ck.checkExpr(e.X)
		if err != nil {
			return Type{}, err
		}
		yty, err := ck.checkExpr(e.Y)
		if err != nil {
			return Type{}, err
		}
		switch e.Op {
		case "==", "!=":
			if xty.Kind != yty.Kind && !(xty.Kind == TypePtr && yty.Kind == TypeInt) &&
				!(xty.Kind == TypeInt && yty.Kind == TypePtr) {
				return Type{}, fmt.Errorf("%v: mismatched comparison %v %s %v", e.Pos, xty, e.Op, yty)
			}
			return Type{Kind: TypeInt}, nil
		case "&&", "||":
			ok := func(t Type) bool { return t.Kind == TypeInt || t.Kind == TypePtr }
			if !ok(xty) || !ok(yty) {
				return Type{}, fmt.Errorf("%v: %s requires scalar operands", e.Pos, e.Op)
			}
			return Type{Kind: TypeInt}, nil
		default:
			if xty.Kind != TypeInt || yty.Kind != TypeInt {
				return Type{}, fmt.Errorf("%v: %s requires int operands", e.Pos, e.Op)
			}
			return Type{Kind: TypeInt}, nil
		}
	case *CallExpr:
		if e.Fn == "print" {
			if len(e.Args) != 1 {
				return Type{}, fmt.Errorf("%v: print takes exactly one argument", e.Pos)
			}
			ty, err := ck.checkExpr(e.Args[0])
			if err != nil {
				return Type{}, err
			}
			if ty.Kind != TypeInt {
				return Type{}, fmt.Errorf("%v: print requires an int", e.Pos)
			}
			return Type{Kind: TypeVoid}, nil
		}
		fn, ok := ck.c.Funcs[e.Fn]
		if !ok {
			return Type{}, fmt.Errorf("%v: call to undefined function %s", e.Pos, e.Fn)
		}
		if len(e.Args) != len(fn.Params) {
			return Type{}, fmt.Errorf("%v: %s expects %d arguments, got %d",
				e.Pos, e.Fn, len(fn.Params), len(e.Args))
		}
		for i, a := range e.Args {
			ty, err := ck.checkExpr(a)
			if err != nil {
				return Type{}, err
			}
			want := fn.Params[i].Type
			if err := assignableExpr(want, ty, a, e.Pos); err != nil {
				return Type{}, fmt.Errorf("%v: argument %d of %s: cannot pass %v as %v",
					e.Pos, i+1, e.Fn, ty, want)
			}
		}
		return fn.Ret, nil
	}
	return Type{}, fmt.Errorf("unhandled expression %T", e)
}

// checkAddrOf handles &x: the operand must be a scalar variable or a
// struct field, never an array element or parameter (the model keeps
// pointer targets enumerable for alias analysis).
func (ck *checker) checkAddrOf(e *UnaryExpr) (Type, error) {
	switch x := e.X.(type) {
	case *VarExpr:
		sym := ck.lookup(x.Name)
		if sym == nil {
			return Type{}, fmt.Errorf("%v: undefined variable %s", x.Pos, x.Name)
		}
		if sym.Type.Kind != TypeInt {
			return Type{}, fmt.Errorf("%v: & requires an int scalar, got %v", e.Pos, sym.Type)
		}
		if sym.Kind == VarParam {
			return Type{}, fmt.Errorf("%v: taking the address of parameter %s is not supported", e.Pos, x.Name)
		}
		ck.c.Uses[x] = sym
		ck.c.Types[x] = sym.Type
		ck.markAddrTaken(sym)
		return Type{Kind: TypePtr}, nil
	case *FieldExpr:
		if _, err := ck.checkExpr(x); err != nil {
			return Type{}, err
		}
		sym := ck.c.Uses[x]
		ck.markAddrTaken(sym)
		return Type{Kind: TypePtr}, nil
	}
	return Type{}, fmt.Errorf("%v: & requires a scalar variable or struct field", e.Pos)
}

func (ck *checker) markAddrTaken(sym *Symbol) {
	sym.AddrTaken = true
	switch sym.Kind {
	case VarGlobal:
		sym.Global.AddrTaken = true
	case VarLocal:
		sym.Decl.AddrTaken = true
	}
}

package source

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestLexAllBasics(t *testing.T) {
	toks, err := LexAll(`int x = 42; // comment
/* block */ if (x <= 10 && y != 0) x += 1;`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokKind{
		TokInt, TokIdent, TokAssign, TokNum, TokSemi,
		TokIf, TokLParen, TokIdent, TokLe, TokNum, TokAndAnd,
		TokIdent, TokNe, TokNum, TokRParen, TokIdent, TokPlusEq,
		TokNum, TokSemi, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[3].Num != 42 {
		t.Errorf("literal = %d, want 42", toks[3].Num)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"$", "/* unterminated", "@"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) succeeded, want error", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := LexAll("int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestParseStructAndGlobals(t *testing.T) {
	file, err := Parse(`
struct point { int x; int y; };
int g = -5;
int buf[100];
struct point p;
void main() {}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Structs) != 1 || file.Structs[0].Name != "point" || len(file.Structs[0].Fields) != 2 {
		t.Fatalf("structs = %+v", file.Structs)
	}
	if len(file.Globals) != 3 {
		t.Fatalf("globals = %d, want 3", len(file.Globals))
	}
	if file.Globals[0].Init[0] != -5 {
		t.Errorf("g init = %v, want -5", file.Globals[0].Init)
	}
	if file.Globals[1].Type.Kind != TypeArray || file.Globals[1].ArrayN != 100 {
		t.Errorf("buf = %+v", file.Globals[1])
	}
	if file.Globals[2].Type.Kind != TypeStruct {
		t.Errorf("p = %+v", file.Globals[2])
	}
}

func TestParsePrecedence(t *testing.T) {
	file, err := Parse(`void main() { int x = 1 + 2 * 3 == 7 && 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	decl := file.Funcs[0].Body.Stmts[0].(*DeclStmt)
	and, ok := decl.Init.(*BinExpr)
	if !ok || and.Op != "&&" {
		t.Fatalf("top = %T %v, want &&", decl.Init, and)
	}
	eq, ok := and.X.(*BinExpr)
	if !ok || eq.Op != "==" {
		t.Fatalf("lhs of && = %+v, want ==", and.X)
	}
	add, ok := eq.X.(*BinExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("lhs of == = %+v, want +", eq.X)
	}
	mul, ok := add.Y.(*BinExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("rhs of + = %+v, want *", add.Y)
	}
}

func TestParseControlFlow(t *testing.T) {
	file, err := Parse(`
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		if (i % 2 == 0) s += i; else s -= i;
		while (s > 100) { s /= 2; break; }
		do { s++; } while (s < 0);
		if (s == 13) continue;
	}
	return s;
}
void main() { f(10); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(file.Funcs))
	}
	body := file.Funcs[0].Body
	if _, ok := body.Stmts[1].(*ForStmt); !ok {
		t.Fatalf("stmt 1 = %T, want *ForStmt", body.Stmts[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`int f( {}`,
		`void main() { int; }`,
		`void main() { x = ; }`,
		`void main() { if x {} }`,
		`void main( ) { return 1 }`, // missing semi
		`struct S { }; void main() {}`,
		`void x;`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			// struct with no fields parses; checker rejects. Skip those.
			if f, _ := Parse(src); f != nil {
				if _, cerr := Check(f); cerr == nil {
					t.Errorf("Parse+Check(%q) succeeded, want error", src)
				}
			}
		}
	}
}

func TestCheckCatchesErrors(t *testing.T) {
	cases := map[string]string{
		"undefined var":      `void main() { x = 1; }`,
		"undefined func":     `void main() { foo(); }`,
		"arg count":          `int f(int a) { return a; } void main() { f(); }`,
		"redefined global":   `int x; int x; void main() {}`,
		"redeclared local":   `void main() { int x; int x; }`,
		"break outside loop": `void main() { break; }`,
		"void returns value": `void main() { return 1; }`,
		"array no index":     `int a[5]; void main() { a = 1; }`,
		"index non-array":    `int x; void main() { x[0] = 1; }`,
		"struct no field":    `struct S {int a;}; struct S s; void main() { s = 1; }`,
		"bad field":          `struct S {int a;}; struct S s; void main() { s.b = 1; }`,
		"deref int":          `void main() { int x; x = *x; }`,
		"addr of param":      `void f(int a) { int* p; p = &a; } void main() {}`,
		"addr of array elem": `int a[5]; void main() { int* p; p = &a[0]; }`,
		"no main":            `int f() { return 0; }`,
		"ptr arith":          `int x; void main() { int* p = &x; x = p + 1; }`,
		"print two args":     `void main() { print(1, 2); }`,
	}
	for name, src := range cases {
		file, err := Parse(src)
		if err != nil {
			continue // parse error also acceptable for these
		}
		if _, err := Check(file); err == nil {
			t.Errorf("%s: Check(%q) succeeded, want error", name, src)
		}
	}
}

func TestCheckMarksAddrTaken(t *testing.T) {
	file, err := Parse(`
int g;
int h;
void main() {
	int a;
	int b;
	int* p;
	p = &a;
	p = &g;
	b = *p;
	print(b);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Check(file)
	if err != nil {
		t.Fatal(err)
	}
	if !file.Globals[0].AddrTaken {
		t.Error("g should be address-taken")
	}
	if file.Globals[1].AddrTaken {
		t.Error("h should not be address-taken")
	}
	var aDecl, bDecl *DeclStmt
	for d := range checked.Decls {
		switch d.Name {
		case "a":
			aDecl = d
		case "b":
			bDecl = d
		}
	}
	if aDecl == nil || !aDecl.AddrTaken {
		t.Error("local a should be address-taken")
	}
	if bDecl == nil || bDecl.AddrTaken {
		t.Error("local b should not be address-taken")
	}
}

func mustCompile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, f := range prog.Funcs {
		if err := f.Verify(ir.VerifyCFG); err != nil {
			t.Fatalf("Verify(%s): %v", f.Name, err)
		}
	}
	return prog
}

func TestLowerGlobalAccessesUseLoadStore(t *testing.T) {
	prog := mustCompile(t, `
int x;
void main() {
	x = 1;
	x = x + 2;
}
`)
	main := prog.Func("main")
	loads, stores := 0, 0
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad:
				loads++
			case ir.OpStore:
				stores++
			}
		}
	}
	if loads != 1 || stores != 2 {
		t.Errorf("loads=%d stores=%d, want 1 and 2\n%s", loads, stores, main)
	}
}

func TestLowerRegisterLocalsAvoidMemory(t *testing.T) {
	prog := mustCompile(t, `
void main() {
	int a = 1;
	int b = a + 2;
	print(b);
}
`)
	main := prog.Func("main")
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad || in.Op == ir.OpStore {
				t.Fatalf("register locals produced memory op: %v", in)
			}
		}
	}
	if len(main.Slots) != 0 {
		t.Errorf("slots = %v, want none", main.Slots)
	}
}

func TestLowerAddrTakenLocalUsesSlot(t *testing.T) {
	prog := mustCompile(t, `
void main() {
	int a = 5;
	int* p = &a;
	*p = 7;
	print(a);
}
`)
	main := prog.Func("main")
	if len(main.Slots) != 1 || main.Slots[0].Name != "a" {
		t.Fatalf("slots = %+v, want [a]", main.Slots)
	}
	var hasStorePtr, hasAddr bool
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStorePtr {
				hasStorePtr = true
			}
			if in.Op == ir.OpAddr {
				hasAddr = true
			}
		}
	}
	if !hasStorePtr || !hasAddr {
		t.Errorf("storeptr=%v addr=%v, want both", hasStorePtr, hasAddr)
	}
}

func TestLowerStructFieldsAreDirectCells(t *testing.T) {
	prog := mustCompile(t, `
struct pair { int a; int b; };
struct pair g;
void main() {
	g.a = 1;
	g.b = g.a + 1;
	print(g.b);
}
`)
	main := prog.Func("main")
	offsets := map[int]bool{}
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore {
				offsets[in.Loc.Offset] = true
			}
		}
	}
	if !offsets[0] || !offsets[1] {
		t.Errorf("store offsets = %v, want cells 0 and 1", offsets)
	}
}

func TestLowerArrayUsesIdxOps(t *testing.T) {
	prog := mustCompile(t, `
int a[10];
void main() {
	int i;
	for (i = 0; i < 10; i++) a[i] = i;
	print(a[3]);
}
`)
	main := prog.Func("main")
	var hasLoadIdx, hasStoreIdx bool
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoadIdx {
				hasLoadIdx = true
			}
			if in.Op == ir.OpStoreIdx {
				hasStoreIdx = true
			}
		}
	}
	if !hasLoadIdx || !hasStoreIdx {
		t.Errorf("loadidx=%v storeidx=%v, want both", hasLoadIdx, hasStoreIdx)
	}
}

func TestLowerLoopShape(t *testing.T) {
	prog := mustCompile(t, `
int x;
void main() {
	int i;
	for (i = 0; i < 100; i++) x++;
}
`)
	main := prog.Func("main")
	// There must be a back edge (a loop).
	hasBack := false
	seen := map[*ir.Block]int{}
	order := 0
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = order
		order++
		for _, s := range b.Succs {
			if _, ok := seen[s]; !ok {
				dfs(s)
			} else {
				hasBack = true
			}
		}
	}
	dfs(main.Entry())
	if !hasBack {
		t.Errorf("no back edge in lowered loop:\n%s", main)
	}
}

func TestLowerShortCircuit(t *testing.T) {
	prog := mustCompile(t, `
int calls;
int check(int v) { calls++; return v; }
void main() {
	int r = check(0) && check(1);
	print(r);
	r = check(1) || check(2);
	print(r);
}
`)
	main := prog.Func("main")
	// Short-circuit forms must produce branches, not plain OpAnd/OpOr.
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAnd || in.Op == ir.OpOr {
				t.Errorf("&&/|| lowered to bitwise %v", in.Op)
			}
		}
	}
	brs := 0
	for _, b := range main.Blocks {
		if t := b.Term(); t != nil && t.Op == ir.OpBr {
			brs++
		}
	}
	if brs < 2 {
		t.Errorf("expected at least 2 branches for short-circuit, got %d", brs)
	}
}

func TestLowerCompoundAssignEvaluatesIndexOnce(t *testing.T) {
	prog := mustCompile(t, `
int a[10];
int idx() { return 3; }
void main() {
	a[idx()] += 5;
}
`)
	main := prog.Func("main")
	calls := 0
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				calls++
			}
		}
	}
	if calls != 1 {
		t.Errorf("index expression evaluated %d times, want 1", calls)
	}
}

func TestLowerReturnPaths(t *testing.T) {
	prog := mustCompile(t, `
int f(int c) {
	if (c) return 1;
	return 2;
}
void main() { print(f(1)); }
`)
	f := prog.Func("f")
	rets := 0
	for _, b := range f.Blocks {
		if t := b.Term(); t != nil && t.Op == ir.OpRet {
			rets++
		}
	}
	if rets < 2 {
		t.Errorf("rets = %d, want >= 2", rets)
	}
}

func TestCompileFigure1Program(t *testing.T) {
	// The paper's running example (Figure 1).
	prog := mustCompile(t, `
int x;
void foo() { x = x + 1; }
void main() {
	int i;
	for (i = 0; i < 100; i++) x++;
	for (i = 0; i < 10; i++) foo();
}
`)
	if prog.Func("foo") == nil || prog.Func("main") == nil {
		t.Fatal("missing functions")
	}
	if strings.Contains(prog.String(), "op?") {
		t.Error("printer produced unknown opcodes")
	}
}

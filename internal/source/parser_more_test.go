package source

import (
	"testing"

	"repro/internal/ir"
)

func TestParseAllAssignmentOperators(t *testing.T) {
	file, err := Parse(`
void main() {
	int a = 10;
	a += 1; a -= 2; a *= 3; a /= 4; a %= 5;
	a++; a--; ++a; --a;
}`)
	if err != nil {
		t.Fatal(err)
	}
	body := file.Funcs[0].Body
	ops := []string{}
	for _, s := range body.Stmts[1:] {
		ops = append(ops, s.(*AssignStmt).Op)
	}
	want := []string{"+=", "-=", "*=", "/=", "%=", "++", "--", "++", "--"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestParseDanglingElse(t *testing.T) {
	file, err := Parse(`
void main() {
	int a = 0;
	if (1)
		if (2) a = 1;
		else a = 2;
}`)
	if err != nil {
		t.Fatal(err)
	}
	outer := file.Funcs[0].Body.Stmts[1].(*IfStmt)
	if outer.Else != nil {
		t.Fatal("else bound to outer if; must bind to nearest")
	}
	inner := outer.Then.(*IfStmt)
	if inner.Else == nil {
		t.Fatal("inner if lost its else")
	}
}

func TestParseUnaryChains(t *testing.T) {
	file, err := Parse(`void main() { int a = - - 5; int b = !!1; int c = ~~0; print(a+b+c); }`)
	if err != nil {
		t.Fatal(err)
	}
	decl := file.Funcs[0].Body.Stmts[0].(*DeclStmt)
	u1, ok := decl.Init.(*UnaryExpr)
	if !ok || u1.Op != "-" {
		t.Fatalf("init = %#v", decl.Init)
	}
	if u2, ok := u1.X.(*UnaryExpr); !ok || u2.Op != "-" {
		t.Fatalf("inner = %#v", u1.X)
	}
}

func TestParseVoidParamList(t *testing.T) {
	file, err := Parse(`int f(void) { return 1; } void main() { print(f()); }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Funcs[0].Params) != 0 {
		t.Fatalf("params = %v, want none", file.Funcs[0].Params)
	}
}

func TestParseForVariants(t *testing.T) {
	srcs := []string{
		`void main() { for (;;) { break; } }`,
		`void main() { int i; for (i = 0; ; i++) { if (i > 3) break; } }`,
		`void main() { for (int i = 0; i < 3; ) { i++; } }`,
		`void main() { int i = 0; for (; i < 3; i++) ; }`,
	}
	for _, src := range srcs {
		if _, err := Compile(src); err != nil {
			t.Errorf("Compile(%q): %v", src, err)
		}
	}
}

func TestCheckerShadowingAcrossScopes(t *testing.T) {
	// The same name in sibling scopes must resolve to distinct symbols.
	file, err := Parse(`
void main() {
	{ int v = 1; print(v); }
	{ int v = 2; print(v); }
}`)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Check(file)
	if err != nil {
		t.Fatal(err)
	}
	decls := map[*DeclStmt]bool{}
	for d := range checked.Decls {
		decls[d] = true
	}
	if len(decls) != 2 {
		t.Fatalf("decl symbols = %d, want 2", len(decls))
	}
}

func TestLowerDoWhileShape(t *testing.T) {
	prog := mustCompile(t, `
int g;
void main() {
	int i = 0;
	do { g++; i++; } while (i < 5);
}`)
	main := prog.Func("main")
	// do-while: the body block must be reachable without passing the
	// condition first — entry's successor chain reaches the store
	// before any branch.
	visited := map[*ir.Block]bool{}
	b := main.Entry()
	sawStore := false
	for !visited[b] {
		visited[b] = true
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore {
				sawStore = true
			}
			if in.Op == ir.OpBr && !sawStore {
				t.Fatal("condition evaluated before first body execution")
			}
		}
		if len(b.Succs) == 0 {
			break
		}
		b = b.Succs[0]
	}
	if !sawStore {
		t.Fatal("store not found on straight-line path")
	}
}

func TestLowerBreakContinueTargets(t *testing.T) {
	prog := mustCompile(t, `
int g;
void main() {
	int i;
	for (i = 0; i < 10; i++) {
		if (i == 2) continue;
		if (i == 5) break;
		g++;
	}
	print(g);
}`)
	// Semantics validated elsewhere; here: CFG is well formed and has
	// no unreachable garbage after lowering cleanup.
	main := prog.Func("main")
	if err := main.Verify(ir.VerifyCFG); err != nil {
		t.Fatal(err)
	}
}

func TestLowerGlobalInitializerNegative(t *testing.T) {
	prog := mustCompile(t, `
int neg = -17;
void main() { print(neg); }`)
	g := prog.FindGlobal("neg")
	if g == nil || len(g.Init) != 1 || g.Init[0] != -17 {
		t.Fatalf("init = %+v", g)
	}
}

func TestCompileRejectsDeepPointerTypes(t *testing.T) {
	if _, err := Compile(`void main() { int** p; }`); err == nil {
		t.Fatal("int** accepted; only single-level pointers exist in mini-C")
	}
}

func TestLocalArrayAndStruct(t *testing.T) {
	prog := mustCompile(t, `
struct pt { int x; int y; };
void main() {
	int buf[4];
	struct pt p;
	buf[0] = 1;
	p.x = 2;
	p.y = buf[0] + p.x;
	print(p.y);
}`)
	main := prog.Func("main")
	if len(main.Slots) != 2 {
		t.Fatalf("slots = %v, want buf and p", main.Slots)
	}
	var arr, st *ir.Slot
	for _, s := range main.Slots {
		if s.IsArray {
			arr = s
		} else {
			st = s
		}
	}
	if arr == nil || arr.Size != 4 {
		t.Errorf("array slot = %+v", arr)
	}
	if st == nil || st.Size != 2 || st.FieldNames == nil {
		t.Errorf("struct slot = %+v", st)
	}
}

package source

import "fmt"

// Lexer turns mini-C source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := Pos{lx.line, lx.col}
			lx.advance()
			lx.advance()
			for {
				if lx.pos >= len(lx.src) {
					return fmt.Errorf("%v: unterminated block comment", start)
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{lx.line, lx.col}
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()

	switch {
	case isAlpha(c):
		start := lx.pos
		for lx.pos < len(lx.src) && (isAlpha(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil

	case isDigit(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		var n int64
		for _, d := range text {
			n = n*10 + int64(d-'0')
		}
		return Token{Kind: TokNum, Num: n, Text: text, Pos: pos}, nil
	}

	two := func(k TokKind) (Token, error) {
		lx.advance()
		lx.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	one := func(k TokKind) (Token, error) {
		lx.advance()
		return Token{Kind: k, Pos: pos}, nil
	}

	d := lx.peek2()
	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ';':
		return one(TokSemi)
	case ',':
		return one(TokComma)
	case '.':
		return one(TokDot)
	case '~':
		return one(TokTilde)
	case '^':
		return one(TokCaret)
	case '+':
		if d == '+' {
			return two(TokInc)
		}
		if d == '=' {
			return two(TokPlusEq)
		}
		return one(TokPlus)
	case '-':
		if d == '-' {
			return two(TokDec)
		}
		if d == '=' {
			return two(TokMinusEq)
		}
		return one(TokMinus)
	case '*':
		if d == '=' {
			return two(TokStarEq)
		}
		return one(TokStar)
	case '/':
		if d == '=' {
			return two(TokSlashEq)
		}
		return one(TokSlash)
	case '%':
		if d == '=' {
			return two(TokPctEq)
		}
		return one(TokPercent)
	case '&':
		if d == '&' {
			return two(TokAndAnd)
		}
		return one(TokAmp)
	case '|':
		if d == '|' {
			return two(TokOrOr)
		}
		return one(TokPipe)
	case '!':
		if d == '=' {
			return two(TokNe)
		}
		return one(TokBang)
	case '=':
		if d == '=' {
			return two(TokEq)
		}
		return one(TokAssign)
	case '<':
		if d == '=' {
			return two(TokLe)
		}
		if d == '<' {
			return two(TokShl)
		}
		return one(TokLt)
	case '>':
		if d == '=' {
			return two(TokGe)
		}
		if d == '>' {
			return two(TokShr)
		}
		return one(TokGt)
	}
	return Token{}, fmt.Errorf("%v: unexpected character %q", pos, string(c))
}

// LexAll tokenizes the whole input (for tests and tooling).
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

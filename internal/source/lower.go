package source

import (
	"fmt"

	"repro/internal/ir"
)

// Lower translates a checked mini-C file into an IR program. Scalar
// locals whose address is never taken become virtual registers (they may
// be assigned multiple times; SSA construction renames them later).
// Address-taken locals, local arrays, and local structs become stack
// slots accessed with loads and stores, and globals are accessed with
// loads and stores against global cells — exactly the memory-resident
// names register promotion later tries to lift into registers.
func Lower(checked *Checked) (*ir.Program, error) {
	prog := ir.NewProgram()
	lw := &lowerer{checked: checked, prog: prog}

	for _, g := range checked.File.Globals {
		size := 1
		var fields []string
		isArray := false
		switch g.Type.Kind {
		case TypeArray:
			size = g.ArrayN
			isArray = true
		case TypeStruct:
			size = len(g.Type.Struct.Fields)
			fields = g.Type.Struct.Fields
		}
		og := prog.AddGlobal(g.Name, size, isArray, fields)
		og.Init = g.Init
		og.AddrTaken = g.AddrTaken
		lw.globalObjs = append(lw.globalObjs, og)
	}

	for _, fn := range checked.File.Funcs {
		if err := lw.lowerFunc(fn); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

type lowerer struct {
	checked    *Checked
	prog       *ir.Program
	globalObjs []*ir.Global

	f      *ir.Function
	cur    *ir.Block
	regs   map[*Symbol]ir.RegID // register-resident locals and params
	slots  map[*Symbol]*ir.Slot // memory-resident locals
	breaks []*ir.Block
	conts  []*ir.Block
}

func (lw *lowerer) globalObj(g *GlobalDecl) *ir.Global {
	return lw.prog.FindGlobal(g.Name)
}

func (lw *lowerer) emit(in *ir.Instr) *ir.Instr {
	lw.cur.Append(in)
	return in
}

// startBlock begins emitting into b.
func (lw *lowerer) startBlock(b *ir.Block) { lw.cur = b }

// jumpTo terminates the current block with a jump to b (if not already
// terminated) and makes b current.
func (lw *lowerer) jumpTo(b *ir.Block) {
	if lw.cur.Term() == nil {
		lw.emit(ir.NewInstr(ir.OpJmp, ir.NoReg))
		ir.AddEdge(lw.cur, b)
	}
	lw.startBlock(b)
}

// branchTo terminates the current block with `br cond, then, els`.
func (lw *lowerer) branchTo(cond ir.Value, then, els *ir.Block) {
	lw.emit(ir.NewInstr(ir.OpBr, ir.NoReg, cond))
	ir.AddEdge(lw.cur, then)
	ir.AddEdge(lw.cur, els)
}

func (lw *lowerer) lowerFunc(fn *FuncDecl) error {
	f := ir.NewFunction(lw.prog, fn.Name)
	lw.f = f
	lw.regs = make(map[*Symbol]ir.RegID)
	lw.slots = make(map[*Symbol]*ir.Slot)
	lw.breaks = nil
	lw.conts = nil

	for _, psym := range lw.checked.Params[fn] {
		r := f.NewReg(psym.Name)
		f.Params = append(f.Params, r)
		lw.regs[psym] = r
	}

	entry := f.NewBlock()
	lw.startBlock(entry)
	if err := lw.lowerStmt(fn.Body); err != nil {
		return err
	}
	// Implicit return: void functions just return; int functions
	// falling off the end return 0 (deterministic, unlike C).
	if lw.cur.Term() == nil {
		if fn.Ret.Kind == TypeVoid {
			lw.emit(ir.NewInstr(ir.OpRet, ir.NoReg))
		} else {
			lw.emit(ir.NewInstr(ir.OpRet, ir.NoReg, ir.ConstVal(0)))
		}
	}
	return f.Verify(ir.VerifyCFG)
}

func (lw *lowerer) lowerStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		for _, st := range s.Stmts {
			if err := lw.lowerStmt(st); err != nil {
				return err
			}
		}
		return nil

	case *DeclStmt:
		sym := lw.checked.Decls[s]
		switch {
		case sym.Type.Kind == TypeArray:
			lw.slots[sym] = lw.f.NewSlot(sym.Name, sym.ArrayN, true, nil)
		case sym.Type.Kind == TypeStruct:
			lw.slots[sym] = lw.f.NewSlot(sym.Name, len(sym.Type.Struct.Fields), false, sym.Type.Struct.Fields)
		case sym.AddrTaken:
			slot := lw.f.NewSlot(sym.Name, 1, false, nil)
			slot.AddrTaken = true
			lw.slots[sym] = slot
			init := ir.ConstVal(0)
			if s.Init != nil {
				v, err := lw.lowerExpr(s.Init)
				if err != nil {
					return err
				}
				init = v
			}
			st := ir.NewInstr(ir.OpStore, ir.NoReg, init)
			st.Loc = ir.SlotLoc(slot, 0)
			lw.emit(st)
		default:
			r := lw.f.NewReg(sym.Name)
			lw.regs[sym] = r
			init := ir.ConstVal(0)
			if s.Init != nil {
				v, err := lw.lowerExpr(s.Init)
				if err != nil {
					return err
				}
				init = v
			}
			lw.emit(ir.NewInstr(ir.OpCopy, r, init))
		}
		return nil

	case *AssignStmt:
		return lw.lowerAssign(s)

	case *ExprStmt:
		_, err := lw.lowerExprOrVoid(s.X)
		return err

	case *IfStmt:
		cond, err := lw.lowerExpr(s.Cond)
		if err != nil {
			return err
		}
		then := lw.f.NewBlock()
		join := lw.f.NewBlock()
		els := join
		if s.Else != nil {
			els = lw.f.NewBlock()
		}
		lw.branchTo(cond, then, els)
		lw.startBlock(then)
		if err := lw.lowerStmt(s.Then); err != nil {
			return err
		}
		lw.jumpTo(join)
		if s.Else != nil {
			lw.startBlock(els)
			if err := lw.lowerStmt(s.Else); err != nil {
				return err
			}
			lw.jumpTo(join)
		}
		lw.startBlock(join)
		return nil

	case *WhileStmt:
		header := lw.f.NewBlock()
		body := lw.f.NewBlock()
		exit := lw.f.NewBlock()
		lw.jumpTo(header)
		cond, err := lw.lowerExpr(s.Cond)
		if err != nil {
			return err
		}
		lw.branchTo(cond, body, exit)
		lw.pushLoop(exit, header)
		lw.startBlock(body)
		if err := lw.lowerStmt(s.Body); err != nil {
			return err
		}
		lw.jumpTo(header)
		lw.popLoop()
		lw.startBlock(exit)
		return nil

	case *DoWhileStmt:
		body := lw.f.NewBlock()
		check := lw.f.NewBlock()
		exit := lw.f.NewBlock()
		lw.jumpTo(body)
		lw.pushLoop(exit, check)
		if err := lw.lowerStmt(s.Body); err != nil {
			return err
		}
		lw.popLoop()
		lw.jumpTo(check)
		cond, err := lw.lowerExpr(s.Cond)
		if err != nil {
			return err
		}
		lw.branchTo(cond, body, exit)
		lw.startBlock(exit)
		return nil

	case *ForStmt:
		if s.Init != nil {
			if err := lw.lowerStmt(s.Init); err != nil {
				return err
			}
		}
		header := lw.f.NewBlock()
		body := lw.f.NewBlock()
		post := lw.f.NewBlock()
		exit := lw.f.NewBlock()
		lw.jumpTo(header)
		if s.Cond != nil {
			cond, err := lw.lowerExpr(s.Cond)
			if err != nil {
				return err
			}
			lw.branchTo(cond, body, exit)
		} else {
			lw.jumpTo(body) // no condition: header falls through to body
		}
		lw.startBlock(body)
		lw.pushLoop(exit, post)
		if err := lw.lowerStmt(s.Body); err != nil {
			return err
		}
		lw.popLoop()
		lw.jumpTo(post)
		if s.Post != nil {
			if err := lw.lowerStmt(s.Post); err != nil {
				return err
			}
		}
		lw.jumpTo(header)
		// jumpTo made header current but header is already terminated;
		// continue in a fresh exit block.
		lw.startBlock(exit)
		return nil

	case *ReturnStmt:
		if s.X == nil {
			lw.emit(ir.NewInstr(ir.OpRet, ir.NoReg))
		} else {
			v, err := lw.lowerExpr(s.X)
			if err != nil {
				return err
			}
			lw.emit(ir.NewInstr(ir.OpRet, ir.NoReg, v))
		}
		// Code after a return is unreachable; emit into a scratch block
		// that RemoveUnreachable deletes.
		lw.startBlock(lw.f.NewBlock())
		return nil

	case *BreakStmt:
		lw.jumpTo(lw.breaks[len(lw.breaks)-1])
		lw.startBlock(lw.f.NewBlock())
		return nil

	case *ContinueStmt:
		lw.jumpTo(lw.conts[len(lw.conts)-1])
		lw.startBlock(lw.f.NewBlock())
		return nil

	case *EmptyStmt:
		return nil
	}
	return fmt.Errorf("unhandled statement %T", s)
}

func (lw *lowerer) pushLoop(brk, cont *ir.Block) {
	lw.breaks = append(lw.breaks, brk)
	lw.conts = append(lw.conts, cont)
}

func (lw *lowerer) popLoop() {
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.conts = lw.conts[:len(lw.conts)-1]
}

// lvalueLoc computes where an assignment target lives. Exactly one of
// the returns is meaningful: a register, a direct location, an indexed
// location, or a pointer value.
type lvalue struct {
	reg    ir.RegID // register-resident scalar (NoReg otherwise)
	direct bool     // scalar cell at loc
	loc    ir.MemLoc
	index  ir.Value // for arrays: loc[index]
	isIdx  bool
	ptr    ir.Value // for *p
	isPtr  bool
}

func (lw *lowerer) lowerLvalue(e Expr) (lvalue, error) {
	switch e := e.(type) {
	case *VarExpr:
		sym := lw.checked.Uses[e]
		if r, ok := lw.regs[sym]; ok {
			return lvalue{reg: r}, nil
		}
		loc, err := lw.symbolLoc(sym, 0)
		if err != nil {
			return lvalue{}, err
		}
		return lvalue{reg: ir.NoReg, direct: true, loc: loc}, nil
	case *FieldExpr:
		sym := lw.checked.Uses[e]
		idx := sym.Type.Struct.FieldIndex(e.Field)
		loc, err := lw.symbolLoc(sym, idx)
		if err != nil {
			return lvalue{}, err
		}
		return lvalue{reg: ir.NoReg, direct: true, loc: loc}, nil
	case *IndexExpr:
		sym := lw.checked.Uses[e]
		loc, err := lw.symbolLoc(sym, 0)
		if err != nil {
			return lvalue{}, err
		}
		iv, err := lw.lowerExpr(e.Idx)
		if err != nil {
			return lvalue{}, err
		}
		return lvalue{reg: ir.NoReg, loc: loc, index: iv, isIdx: true}, nil
	case *UnaryExpr:
		if e.Op != "*" {
			break
		}
		pv, err := lw.lowerExpr(e.X)
		if err != nil {
			return lvalue{}, err
		}
		return lvalue{reg: ir.NoReg, ptr: pv, isPtr: true}, nil
	}
	return lvalue{}, fmt.Errorf("unsupported assignment target %T", e)
}

func (lw *lowerer) symbolLoc(sym *Symbol, offset int) (ir.MemLoc, error) {
	switch sym.Kind {
	case VarGlobal:
		g := lw.globalObj(sym.Global)
		if g == nil {
			return ir.MemLoc{}, fmt.Errorf("missing global object %s", sym.Name)
		}
		return ir.GlobalLoc(g, offset), nil
	case VarLocal:
		slot, ok := lw.slots[sym]
		if !ok {
			return ir.MemLoc{}, fmt.Errorf("local %s has no slot", sym.Name)
		}
		return ir.SlotLoc(slot, offset), nil
	}
	return ir.MemLoc{}, fmt.Errorf("symbol %s is not addressable", sym.Name)
}

// loadLvalue reads the current value of an lvalue.
func (lw *lowerer) loadLvalue(v lvalue) ir.Value {
	switch {
	case v.reg != ir.NoReg:
		return ir.RegVal(v.reg)
	case v.direct:
		r := lw.f.NewReg("")
		ld := ir.NewInstr(ir.OpLoad, r)
		ld.Loc = v.loc
		lw.emit(ld)
		return ir.RegVal(r)
	case v.isIdx:
		r := lw.f.NewReg("")
		ld := ir.NewInstr(ir.OpLoadIdx, r, v.index)
		ld.Loc = v.loc
		lw.emit(ld)
		return ir.RegVal(r)
	default: // pointer
		r := lw.f.NewReg("")
		lw.emit(ir.NewInstr(ir.OpLoadPtr, r, v.ptr))
		return ir.RegVal(r)
	}
}

// storeLvalue writes val into an lvalue.
func (lw *lowerer) storeLvalue(v lvalue, val ir.Value) {
	switch {
	case v.reg != ir.NoReg:
		lw.emit(ir.NewInstr(ir.OpCopy, v.reg, val))
	case v.direct:
		st := ir.NewInstr(ir.OpStore, ir.NoReg, val)
		st.Loc = v.loc
		lw.emit(st)
	case v.isIdx:
		st := ir.NewInstr(ir.OpStoreIdx, ir.NoReg, v.index, val)
		st.Loc = v.loc
		lw.emit(st)
	default:
		lw.emit(ir.NewInstr(ir.OpStorePtr, ir.NoReg, v.ptr, val))
	}
}

var compoundOps = map[string]ir.Op{
	"+=": ir.OpAdd, "-=": ir.OpSub, "*=": ir.OpMul, "/=": ir.OpDiv, "%=": ir.OpRem,
	"++": ir.OpAdd, "--": ir.OpSub,
}

func (lw *lowerer) lowerAssign(s *AssignStmt) error {
	lv, err := lw.lowerLvalue(s.Lhs)
	if err != nil {
		return err
	}
	if s.Op == "=" {
		val, err := lw.lowerExpr(s.Rhs)
		if err != nil {
			return err
		}
		lw.storeLvalue(lv, val)
		return nil
	}
	// Compound assignment and ++/--: read-modify-write, evaluating the
	// target address/index once.
	cur := lw.loadLvalue(lv)
	rhs := ir.ConstVal(1)
	if s.Rhs != nil {
		if rhs, err = lw.lowerExpr(s.Rhs); err != nil {
			return err
		}
	}
	op, ok := compoundOps[s.Op]
	if !ok {
		return fmt.Errorf("unsupported assignment operator %s", s.Op)
	}
	r := lw.f.NewReg("")
	lw.emit(ir.NewInstr(op, r, cur, rhs))
	lw.storeLvalue(lv, ir.RegVal(r))
	return nil
}

// lowerExprOrVoid lowers an expression statement; void calls produce no
// value.
func (lw *lowerer) lowerExprOrVoid(e Expr) (ir.Value, error) {
	if call, ok := e.(*CallExpr); ok {
		return lw.lowerCall(call, true)
	}
	return lw.lowerExpr(e)
}

var binOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv, "%": ir.OpRem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpShr,
	"==": ir.OpEq, "!=": ir.OpNe, "<": ir.OpLt, "<=": ir.OpLe, ">": ir.OpGt, ">=": ir.OpGe,
}

func (lw *lowerer) lowerExpr(e Expr) (ir.Value, error) {
	switch e := e.(type) {
	case *NumExpr:
		return ir.ConstVal(e.Val), nil

	case *VarExpr:
		sym := lw.checked.Uses[e]
		if r, ok := lw.regs[sym]; ok {
			return ir.RegVal(r), nil
		}
		loc, err := lw.symbolLoc(sym, 0)
		if err != nil {
			return ir.Value{}, err
		}
		r := lw.f.NewReg("")
		ld := ir.NewInstr(ir.OpLoad, r)
		ld.Loc = loc
		lw.emit(ld)
		return ir.RegVal(r), nil

	case *FieldExpr:
		sym := lw.checked.Uses[e]
		idx := sym.Type.Struct.FieldIndex(e.Field)
		loc, err := lw.symbolLoc(sym, idx)
		if err != nil {
			return ir.Value{}, err
		}
		r := lw.f.NewReg("")
		ld := ir.NewInstr(ir.OpLoad, r)
		ld.Loc = loc
		lw.emit(ld)
		return ir.RegVal(r), nil

	case *IndexExpr:
		sym := lw.checked.Uses[e]
		loc, err := lw.symbolLoc(sym, 0)
		if err != nil {
			return ir.Value{}, err
		}
		iv, err := lw.lowerExpr(e.Idx)
		if err != nil {
			return ir.Value{}, err
		}
		r := lw.f.NewReg("")
		ld := ir.NewInstr(ir.OpLoadIdx, r, iv)
		ld.Loc = loc
		lw.emit(ld)
		return ir.RegVal(r), nil

	case *UnaryExpr:
		switch e.Op {
		case "&":
			lv, err := lw.lowerLvalue(e.X)
			if err != nil {
				return ir.Value{}, err
			}
			if !lv.direct {
				return ir.Value{}, fmt.Errorf("& target must be a scalar cell")
			}
			r := lw.f.NewReg("")
			ad := ir.NewInstr(ir.OpAddr, r)
			ad.Loc = lv.loc
			lw.emit(ad)
			return ir.RegVal(r), nil
		case "*":
			pv, err := lw.lowerExpr(e.X)
			if err != nil {
				return ir.Value{}, err
			}
			r := lw.f.NewReg("")
			lw.emit(ir.NewInstr(ir.OpLoadPtr, r, pv))
			return ir.RegVal(r), nil
		case "-":
			xv, err := lw.lowerExpr(e.X)
			if err != nil {
				return ir.Value{}, err
			}
			r := lw.f.NewReg("")
			lw.emit(ir.NewInstr(ir.OpNeg, r, xv))
			return ir.RegVal(r), nil
		case "~":
			xv, err := lw.lowerExpr(e.X)
			if err != nil {
				return ir.Value{}, err
			}
			r := lw.f.NewReg("")
			lw.emit(ir.NewInstr(ir.OpNot, r, xv))
			return ir.RegVal(r), nil
		case "!":
			xv, err := lw.lowerExpr(e.X)
			if err != nil {
				return ir.Value{}, err
			}
			r := lw.f.NewReg("")
			lw.emit(ir.NewInstr(ir.OpEq, r, xv, ir.ConstVal(0)))
			return ir.RegVal(r), nil
		}
		return ir.Value{}, fmt.Errorf("unhandled unary %s", e.Op)

	case *BinExpr:
		if e.Op == "&&" || e.Op == "||" {
			return lw.lowerShortCircuit(e)
		}
		xv, err := lw.lowerExpr(e.X)
		if err != nil {
			return ir.Value{}, err
		}
		yv, err := lw.lowerExpr(e.Y)
		if err != nil {
			return ir.Value{}, err
		}
		op, ok := binOps[e.Op]
		if !ok {
			return ir.Value{}, fmt.Errorf("unhandled binary %s", e.Op)
		}
		r := lw.f.NewReg("")
		lw.emit(ir.NewInstr(op, r, xv, yv))
		return ir.RegVal(r), nil

	case *CallExpr:
		return lw.lowerCall(e, false)
	}
	return ir.Value{}, fmt.Errorf("unhandled expression %T", e)
}

// lowerShortCircuit lowers && and || with proper short-circuit control
// flow, producing 0 or 1 in a result register.
func (lw *lowerer) lowerShortCircuit(e *BinExpr) (ir.Value, error) {
	res := lw.f.NewReg("")
	xv, err := lw.lowerExpr(e.X)
	if err != nil {
		return ir.Value{}, err
	}
	evalY := lw.f.NewBlock()
	short := lw.f.NewBlock()
	join := lw.f.NewBlock()
	if e.Op == "&&" {
		lw.branchTo(xv, evalY, short)
	} else {
		lw.branchTo(xv, short, evalY)
	}

	lw.startBlock(short)
	if e.Op == "&&" {
		lw.emit(ir.NewInstr(ir.OpCopy, res, ir.ConstVal(0)))
	} else {
		lw.emit(ir.NewInstr(ir.OpCopy, res, ir.ConstVal(1)))
	}
	lw.jumpTo(join)

	lw.startBlock(evalY)
	yv, err := lw.lowerExpr(e.Y)
	if err != nil {
		return ir.Value{}, err
	}
	norm := lw.f.NewReg("")
	lw.emit(ir.NewInstr(ir.OpNe, norm, yv, ir.ConstVal(0)))
	lw.emit(ir.NewInstr(ir.OpCopy, res, ir.RegVal(norm)))
	lw.jumpTo(join)
	return ir.RegVal(res), nil
}

func (lw *lowerer) lowerCall(e *CallExpr, stmt bool) (ir.Value, error) {
	var args []ir.Value
	for _, a := range e.Args {
		v, err := lw.lowerExpr(a)
		if err != nil {
			return ir.Value{}, err
		}
		args = append(args, v)
	}
	if e.Fn == "print" {
		lw.emit(ir.NewInstr(ir.OpPrint, ir.NoReg, args...))
		return ir.ConstVal(0), nil
	}
	fn := lw.checked.Funcs[e.Fn]
	dst := ir.NoReg
	if fn.Ret.Kind != TypeVoid && !stmt {
		dst = lw.f.NewReg("")
	}
	call := ir.NewInstr(ir.OpCall, dst, args...)
	call.Callee = e.Fn
	lw.emit(call)
	if dst == ir.NoReg {
		return ir.ConstVal(0), nil
	}
	return ir.RegVal(dst), nil
}

package source

import "fmt"

// Parser builds an AST from mini-C tokens.
type Parser struct {
	lx  *Lexer
	tok Token // current
	nxt Token // lookahead
}

// Parse parses a mini-C compilation unit.
func Parse(src string) (*File, error) {
	p := &Parser{lx: NewLexer(src)}
	if err := p.prime(); err != nil {
		return nil, err
	}
	return p.parseFile()
}

func (p *Parser) prime() error {
	var err error
	if p.tok, err = p.lx.Next(); err != nil {
		return err
	}
	p.nxt, err = p.lx.Next()
	return err
}

func (p *Parser) next() error {
	p.tok = p.nxt
	var err error
	p.nxt, err = p.lx.Next()
	return err
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, fmt.Errorf("%v: expected %v, found %v", p.tok.Pos, k, p.tok.Kind)
	}
	t := p.tok
	return t, p.next()
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("%v: %s", p.tok.Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) parseFile() (*File, error) {
	file := &File{}
	for p.tok.Kind != TokEOF {
		switch p.tok.Kind {
		case TokStruct:
			// Either a struct type definition `struct S { ... };` or a
			// global struct variable `struct S name;`.
			if p.nxt.Kind != TokIdent {
				return nil, p.errf("expected struct name")
			}
			save := p.tok.Pos
			if err := p.next(); err != nil { // consume 'struct'
				return nil, err
			}
			name := p.tok.Text
			if err := p.next(); err != nil {
				return nil, err
			}
			if p.tok.Kind == TokLBrace {
				sd, err := p.parseStructBody(name, save)
				if err != nil {
					return nil, err
				}
				file.Structs = append(file.Structs, sd)
			} else {
				// Global struct variable.
				vname, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokSemi); err != nil {
					return nil, err
				}
				file.Globals = append(file.Globals, &GlobalDecl{
					Name: vname.Text,
					Type: Type{Kind: TypeStruct, Struct: &StructDef{Name: name}},
					Pos:  save,
				})
			}
		case TokInt, TokVoid:
			decl, err := p.parseTopLevelIntOrFunc(file)
			if err != nil {
				return nil, err
			}
			_ = decl
		default:
			return nil, p.errf("expected declaration, found %v", p.tok.Kind)
		}
	}
	return file, nil
}

func (p *Parser) parseStructBody(name string, pos Pos) (*StructDef, error) {
	sd := &StructDef{Name: name, Pos: pos}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for p.tok.Kind != TokRBrace {
		if _, err := p.expect(TokInt); err != nil {
			return nil, err
		}
		f, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		sd.Fields = append(sd.Fields, f.Text)
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if p.tok.Kind == TokSemi {
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	return sd, nil
}

// parseTopLevelIntOrFunc handles `int x;`, `int x = 5;`, `int a[10];`,
// `int f(...) {...}`, `void f(...) {...}`, `int *f?` (pointer returns are
// not supported).
func (p *Parser) parseTopLevelIntOrFunc(file *File) (any, error) {
	pos := p.tok.Pos
	isVoid := p.tok.Kind == TokVoid
	if err := p.next(); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokLParen {
		fn, err := p.parseFuncRest(name.Text, isVoid, pos)
		if err != nil {
			return nil, err
		}
		file.Funcs = append(file.Funcs, fn)
		return fn, nil
	}
	if isVoid {
		return nil, p.errf("void is only valid as a function return type")
	}
	g := &GlobalDecl{Name: name.Text, Type: Type{Kind: TypeInt}, Pos: pos}
	if p.tok.Kind == TokLBracket {
		if err := p.next(); err != nil {
			return nil, err
		}
		n, err := p.expect(TokNum)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		g.Type = Type{Kind: TypeArray}
		g.ArrayN = int(n.Num)
	}
	if p.tok.Kind == TokAssign {
		if err := p.next(); err != nil {
			return nil, err
		}
		neg := false
		if p.tok.Kind == TokMinus {
			neg = true
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		n, err := p.expect(TokNum)
		if err != nil {
			return nil, err
		}
		v := n.Num
		if neg {
			v = -v
		}
		g.Init = []int64{v}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	file.Globals = append(file.Globals, g)
	return g, nil
}

func (p *Parser) parseFuncRest(name string, isVoid bool, pos Pos) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name, Pos: pos}
	if isVoid {
		fn.Ret = Type{Kind: TypeVoid}
	} else {
		fn.Ret = Type{Kind: TypeInt}
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	for p.tok.Kind != TokRParen {
		if len(fn.Params) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		ppos := p.tok.Pos
		if p.tok.Kind == TokVoid && p.nxt.Kind == TokRParen {
			if err := p.next(); err != nil {
				return nil, err
			}
			break
		}
		if _, err := p.expect(TokInt); err != nil {
			return nil, err
		}
		ty := Type{Kind: TypeInt}
		if p.tok.Kind == TokStar {
			ty = Type{Kind: TypePtr}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		id, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, Param{Name: id.Text, Type: ty, Pos: ppos})
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: pos}
	for p.tok.Kind != TokRBrace {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	return blk, p.next()
}

func (p *Parser) parseStmt() (Stmt, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokSemi:
		return &EmptyStmt{Pos: pos}, p.next()
	case TokInt, TokStruct:
		s, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	case TokIf:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.tok.Kind == TokElse {
			if err := p.next(); err != nil {
				return nil, err
			}
			if els, err = p.parseStmt(); err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Pos: pos}, nil
	case TokWhile:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: pos}, nil
	case TokDo:
		if err := p.next(); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Body: body, Cond: cond, Pos: pos}, nil
	case TokFor:
		return p.parseFor()
	case TokReturn:
		if err := p.next(); err != nil {
			return nil, err
		}
		var x Expr
		if p.tok.Kind != TokSemi {
			var err error
			if x, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x, Pos: pos}, nil
	case TokBreak:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, nil
	case TokContinue:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *Parser) parseDecl() (Stmt, error) {
	pos := p.tok.Pos
	if p.tok.Kind == TokStruct {
		if err := p.next(); err != nil {
			return nil, err
		}
		sname, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		vname, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{
			Name: vname.Text,
			Type: Type{Kind: TypeStruct, Struct: &StructDef{Name: sname.Text}},
			Pos:  pos,
		}, nil
	}
	if _, err := p.expect(TokInt); err != nil {
		return nil, err
	}
	ty := Type{Kind: TypeInt}
	if p.tok.Kind == TokStar {
		ty = Type{Kind: TypePtr}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: name.Text, Type: ty, Pos: pos}
	if p.tok.Kind == TokLBracket {
		if ty.Kind != TypeInt {
			return nil, p.errf("array of pointers not supported")
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		n, err := p.expect(TokNum)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		d.Type = Type{Kind: TypeArray}
		d.ArrayN = int(n.Num)
		return d, nil
	}
	if p.tok.Kind == TokAssign {
		if err := p.next(); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

// parseSimpleStmt parses assignments, ++/--, and expression statements.
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	pos := p.tok.Pos
	if p.tok.Kind == TokInc || p.tok.Kind == TokDec {
		op := "++"
		if p.tok.Kind == TokDec {
			op = "--"
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		lhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Lhs: lhs, Op: op, Pos: pos}, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.tok.Kind {
	case TokAssign, TokPlusEq, TokMinusEq, TokStarEq, TokSlashEq, TokPctEq:
		op := map[TokKind]string{
			TokAssign: "=", TokPlusEq: "+=", TokMinusEq: "-=",
			TokStarEq: "*=", TokSlashEq: "/=", TokPctEq: "%=",
		}[p.tok.Kind]
		if err := p.next(); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Lhs: x, Op: op, Rhs: rhs, Pos: pos}, nil
	case TokInc:
		if err := p.next(); err != nil {
			return nil, err
		}
		return &AssignStmt{Lhs: x, Op: "++", Pos: pos}, nil
	case TokDec:
		if err := p.next(); err != nil {
			return nil, err
		}
		return &AssignStmt{Lhs: x, Op: "--", Pos: pos}, nil
	}
	return &ExprStmt{X: x, Pos: pos}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.next(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var init Stmt
	if p.tok.Kind != TokSemi {
		var err error
		if p.tok.Kind == TokInt {
			if init, err = p.parseDecl(); err != nil {
				return nil, err
			}
		} else if init, err = p.parseSimpleStmt(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	var cond Expr
	if p.tok.Kind != TokSemi {
		var err error
		if cond, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	var post Stmt
	if p.tok.Kind != TokRParen {
		var err error
		if post, err = p.parseSimpleStmt(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Init: init, Cond: cond, Post: post, Body: body, Pos: pos}, nil
}

// Expression parsing: precedence climbing.
//
//	||  (lowest)
//	&&
//	|
//	^
//	&
//	== !=
//	< <= > >=
//	<< >>
//	+ -
//	* / %
//	unary - ! ~ * &
var binPrec = map[TokKind]int{
	TokOrOr: 1, TokAndAnd: 2, TokPipe: 3, TokCaret: 4, TokAmp: 5,
	TokEq: 6, TokNe: 6,
	TokLt: 7, TokLe: 7, TokGt: 7, TokGe: 7,
	TokShl: 8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

var binName = map[TokKind]string{
	TokOrOr: "||", TokAndAnd: "&&", TokPipe: "|", TokCaret: "^",
	TokAmp: "&", TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=",
	TokGt: ">", TokGe: ">=", TokShl: "<<", TokShr: ">>", TokPlus: "+",
	TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBin(1) }

func (p *Parser) parseBin(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.tok.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := binName[p.tok.Kind]
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: op, X: lhs, Y: rhs, Pos: pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokMinus, TokBang, TokTilde, TokStar, TokAmp:
		op := map[TokKind]string{
			TokMinus: "-", TokBang: "!", TokTilde: "~", TokStar: "*", TokAmp: "&",
		}[p.tok.Kind]
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x, Pos: pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokNum:
		v := p.tok.Num
		return &NumExpr{Val: v, Pos: pos}, p.next()
	case TokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TokIdent:
		name := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		switch p.tok.Kind {
		case TokLParen:
			if err := p.next(); err != nil {
				return nil, err
			}
			call := &CallExpr{Fn: name, Pos: pos}
			for p.tok.Kind != TokRParen {
				if len(call.Args) > 0 {
					if _, err := p.expect(TokComma); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			return call, p.next()
		case TokLBracket:
			if err := p.next(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Arr: name, Idx: idx, Pos: pos}, nil
		case TokDot:
			if err := p.next(); err != nil {
				return nil, err
			}
			f, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			return &FieldExpr{Rec: name, Field: f.Text, Pos: pos}, nil
		}
		return &VarExpr{Name: name, Pos: pos}, nil
	}
	return nil, p.errf("expected expression, found %v", p.tok.Kind)
}

package source

// Type is a mini-C type.
type Type struct {
	Kind   TypeKind
	Struct *StructDef // for TypeStruct
}

// TypeKind enumerates mini-C types.
type TypeKind uint8

// Mini-C types: int, int* (pointer to an int scalar cell), struct (by
// name; only declarable, fields accessed individually), array of int
// (only declarable), and void (function results only).
const (
	TypeInt TypeKind = iota
	TypePtr
	TypeStruct
	TypeArray
	TypeVoid
)

func (t Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypePtr:
		return "int*"
	case TypeStruct:
		if t.Struct != nil {
			return "struct " + t.Struct.Name
		}
		return "struct"
	case TypeArray:
		return "int[]"
	case TypeVoid:
		return "void"
	}
	return "?"
}

// StructDef is a struct type declaration; all fields are ints.
type StructDef struct {
	Name   string
	Fields []string
	Pos    Pos
}

// FieldIndex returns the cell offset of the named field, or -1.
func (sd *StructDef) FieldIndex(name string) int {
	for i, f := range sd.Fields {
		if f == name {
			return i
		}
	}
	return -1
}

// File is a parsed compilation unit.
type File struct {
	Structs []*StructDef
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a global variable.
type GlobalDecl struct {
	Name   string
	Type   Type
	ArrayN int     // for TypeArray: element count
	Init   []int64 // optional initializer(s)
	Pos    Pos

	// AddrTaken is set by the checker when &name occurs anywhere in the
	// program.
	AddrTaken bool
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Ret    Type
	Params []Param
	Body   *BlockStmt
	Pos    Pos
}

// Param is a function parameter (int or int*).
type Param struct {
	Name string
	Type Type
	Pos  Pos
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is `{ ... }`.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// DeclStmt declares a local variable.
type DeclStmt struct {
	Name   string
	Type   Type
	ArrayN int
	Init   Expr // optional, scalar/pointer only
	Pos    Pos

	// AddrTaken is set by the checker when &name occurs anywhere in the
	// function, forcing the local into a stack slot.
	AddrTaken bool
}

// AssignStmt is `lhs op= rhs`, where Op is one of "=", "+=", "-=", "*=",
// "/=", "%=", "++", "--" ("++"/"--" have nil Rhs).
type AssignStmt struct {
	Lhs Expr // lvalue
	Op  string
	Rhs Expr
	Pos Pos
}

// ExprStmt evaluates an expression for its side effects (usually a
// call).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// IfStmt is `if (Cond) Then else Else`; Else may be nil.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt
	Pos  Pos
}

// WhileStmt is `while (Cond) Body`.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// DoWhileStmt is `do Body while (Cond);`.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
	Pos  Pos
}

// ForStmt is `for (Init; Cond; Post) Body`; any of the three headers may
// be nil.
type ForStmt struct {
	Init Stmt // DeclStmt or AssignStmt or ExprStmt
	Cond Expr
	Post Stmt // AssignStmt or ExprStmt
	Body Stmt
	Pos  Pos
}

// ReturnStmt is `return X;` (X nil for void).
type ReturnStmt struct {
	X   Expr
	Pos Pos
}

// BreakStmt is `break;`.
type BreakStmt struct{ Pos Pos }

// ContinueStmt is `continue;`.
type ContinueStmt struct{ Pos Pos }

// EmptyStmt is `;`.
type EmptyStmt struct{ Pos Pos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*EmptyStmt) stmtNode()    {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// NumExpr is an integer literal.
type NumExpr struct {
	Val int64
	Pos Pos
}

// VarExpr names a variable (global, local, or parameter).
type VarExpr struct {
	Name string
	Pos  Pos
}

// IndexExpr is `Arr[Idx]`.
type IndexExpr struct {
	Arr string // array variable name
	Idx Expr
	Pos Pos
}

// FieldExpr is `Rec.Field`.
type FieldExpr struct {
	Rec   string // struct variable name
	Field string
	Pos   Pos
}

// UnaryExpr is `Op X` with Op in "-", "!", "~", "*", "&".
type UnaryExpr struct {
	Op  string
	X   Expr
	Pos Pos
}

// BinExpr is `X Op Y` for arithmetic, comparison, and logical (&&, ||)
// operators. Logical operators short-circuit.
type BinExpr struct {
	Op   string
	X, Y Expr
	Pos  Pos
}

// CallExpr is `Fn(Args...)`. The name "print" is the built-in output
// statement.
type CallExpr struct {
	Fn   string
	Args []Expr
	Pos  Pos
}

func (*NumExpr) exprNode()   {}
func (*VarExpr) exprNode()   {}
func (*IndexExpr) exprNode() {}
func (*FieldExpr) exprNode() {}
func (*UnaryExpr) exprNode() {}
func (*BinExpr) exprNode()   {}
func (*CallExpr) exprNode()  {}

package oracle

import "strings"

// shrinkBudget bounds how many candidate programs one Shrink call may
// evaluate. Each candidate costs a handful of pipeline and interpreter
// runs, so the bound keeps a pathological failure from stalling the
// whole oracle sweep.
const shrinkBudget = 400

// Shrink reduces src to a smaller program for which fails still
// returns true, using line-granular delta debugging (ddmin): it
// repeatedly tries to delete chunks of lines, halving the chunk size
// until single lines, and restarts whenever a deletion sticks.
// Candidates that no longer fail — including ones that stop compiling,
// which fails reports as false — are simply skipped. The result always
// still fails; at worst it is src itself.
func Shrink(src string, fails func(string) bool) string {
	lines := strings.Split(strings.TrimRight(src, "\n"), "\n")
	tries := 0
	attempt := func(cand []string) bool {
		if tries >= shrinkBudget {
			return false
		}
		tries++
		return fails(strings.Join(cand, "\n") + "\n")
	}
	chunk := len(lines) / 2
	for chunk >= 1 && tries < shrinkBudget {
		removedAny := false
		for start := 0; start+chunk <= len(lines); {
			cand := make([]string, 0, len(lines)-chunk)
			cand = append(cand, lines[:start]...)
			cand = append(cand, lines[start+chunk:]...)
			if len(cand) > 0 && attempt(cand) {
				lines = cand
				removedAny = true
				// The same start index now names the next chunk.
			} else {
				start += chunk
			}
		}
		if !removedAny || chunk > len(lines) {
			chunk /= 2
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

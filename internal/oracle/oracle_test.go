package oracle

import (
	"strings"
	"testing"
)

// TestRunClean sweeps a small seeded stream and expects zero
// mismatches — the production property on the production pipeline.
func TestRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep in -short mode")
	}
	rep, err := Run(Config{Seed: 1, Programs: 25, RoundTrip: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("program %d (seed %d) violated %s: %s\nshrunk to:\n%s",
			m.Index, m.Seed, m.Property, m.Detail, m.Source)
	}
	if rep.Runs < 25*6 {
		t.Errorf("only %d interpreter runs for 25 programs; expected at least %d", rep.Runs, 25*6)
	}
}

// TestCheckProgramKnownGood pins the checker on hand-written programs
// covering the shapes promotion cares about.
func TestCheckProgramKnownGood(t *testing.T) {
	progs := map[string]string{
		"global loop": `int g; void main() { int i; for (i = 0; i < 50; i++) g = g + i; print(g); }`,
		"addr taken":  `void main() { int a = 3; int* p = &a; *p = 8; print(a + *p); }`,
		"calls":       `int g; void bump() { g++; } void main() { int i; for (i = 0; i < 9; i++) bump(); print(g); }`,
		"array":       `int a[6]; void main() { int i; for (i = 0; i < 6; i++) a[i] = i * i; print(a[5]); }`,
	}
	for name, src := range progs {
		if d := CheckProgram(src, 0, true); d != "" {
			t.Errorf("%s: %s", name, d)
		}
	}
}

// TestCheckProgramDetects pins the failure plumbing. A program whose
// promoted version genuinely diverges cannot be constructed from
// outside the pipeline, so the cheapest guaranteed failure is one that
// does not compile: the checker must report it, not claim success.
func TestCheckProgramDetects(t *testing.T) {
	if d := CheckProgram("void main() { totally not a program", 0, false); d == "" {
		t.Fatal("CheckProgram accepted an uncompilable program")
	} else if !strings.Contains(d, "pipeline-error") {
		t.Fatalf("unexpected property name in %q", d)
	}
}

// TestShrink pins the ddmin pass on a synthetic predicate: the
// "failure" is any candidate containing both marker lines, and
// shrinking must isolate exactly those two lines regardless of the
// noise around them.
func TestShrink(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		switch i {
		case 7:
			sb.WriteString("NEEDLE-A\n")
		case 29:
			sb.WriteString("NEEDLE-B\n")
		default:
			sb.WriteString("noise\n")
		}
	}
	fails := func(s string) bool {
		return strings.Contains(s, "NEEDLE-A") && strings.Contains(s, "NEEDLE-B")
	}
	got := Shrink(sb.String(), fails)
	if got != "NEEDLE-A\nNEEDLE-B\n" {
		t.Fatalf("shrunk to %q, want the two needle lines", got)
	}
}

// TestShrinkKeepsFailing guarantees the result still satisfies the
// predicate even when nothing can be removed.
func TestShrinkKeepsFailing(t *testing.T) {
	src := "a\nb\n"
	fails := func(s string) bool { return s == src }
	if got := Shrink(src, fails); got != src {
		t.Fatalf("shrink altered an unshrinkable input: %q", got)
	}
}

// TestDeterminism runs the same configuration twice and requires
// identical reports — the reproducibility contract behind publishing
// (seed, index) pairs in EXPERIMENTS.md.
func TestDeterminism(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Config{Seed: 42, Programs: 8})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Runs != b.Runs || len(a.Mismatches) != len(b.Mismatches) || a.Degraded != b.Degraded {
		t.Fatalf("two identical runs diverged: %+v vs %+v", a, b)
	}
}

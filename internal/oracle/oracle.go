// Package oracle is the property-based semantics oracle: it feeds
// streams of generated programs through the promotion pipeline and
// checks that promotion preserves meaning. Each program is compiled
// twice — once with promotion disabled (the control) and once with the
// paper's SSA promotion — and both versions run on all three
// interpreter paths (legacy, fast, bytecode). The six runs must agree
// on every observable: printed output, main's return value, and the
// final memory image of every global. Two more properties ride along:
// step-limit traps must be path-independent (a budget below a
// version's instruction count must produce ErrStepLimit on every
// path), and, optionally, printing the compiled program as textual IR
// and re-importing it must preserve the observables (the round-trip
// property tying internal/irimport to the native frontend).
//
// Failures are shrunk to minimal counterexamples with a line-based
// ddmin pass (see shrink.go) before they are reported, so a mismatch
// arrives as a few lines of mini-C rather than a 200-line generated
// program.
//
// Everything is deterministic: the program stream derives from
// Config.Seed via workload.DeriveSeed, and the package uses no clock
// (internal/lint enforces this), so a failing (seed, index) pair
// reproduces exactly.
package oracle

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irimport"
	"repro/internal/pipeline"
	"repro/internal/source"
	"repro/internal/workload"
)

// Config parameterizes an oracle run.
type Config struct {
	// Seed is the base seed of the program stream; program i uses
	// workload.DeriveSeed(Seed, i).
	Seed int64
	// Programs is how many generated programs to check (default 200).
	Programs int
	// Size selects the generator size class ("small", "medium",
	// "large"; default "small" — the oracle wants many programs more
	// than it wants big ones).
	Size string
	// MaxSteps bounds each interpreter run (default 20 million; the
	// generator emits terminating programs far below this).
	MaxSteps int64
	// RoundTrip additionally checks that print→reimport preserves the
	// observables of every program.
	RoundTrip bool
	// NoShrink reports raw counterexamples without the ddmin pass.
	NoShrink bool
	// Progress, when non-nil, is called after each program with the
	// number checked so far and the total.
	Progress func(done, total int)
}

// Mismatch is one failed equivalence check, shrunk when possible.
type Mismatch struct {
	// Index and Seed identify the failing program in the stream.
	Index int   `json:"index"`
	Seed  int64 `json:"seed"`
	// Property names the violated property: "observable" (the six-run
	// equivalence), "trap-parity", "round-trip", or "pipeline-error".
	Property string `json:"property"`
	// Detail says which runs disagreed and how.
	Detail string `json:"detail"`
	// Source is the counterexample program (shrunk unless
	// Config.NoShrink).
	Source string `json:"source"`
	// OrigLines and ShrunkLines record what shrinking achieved.
	OrigLines   int `json:"orig_lines"`
	ShrunkLines int `json:"shrunk_lines"`
}

// Report summarizes an oracle run.
type Report struct {
	// Seed, Programs, and Size echo the configuration.
	Seed     int64  `json:"seed"`
	Programs int    `json:"programs"`
	Size     string `json:"size"`
	// Runs counts interpreter executions performed.
	Runs int `json:"runs"`
	// Degraded counts programs where the pipeline rolled back promotion
	// for at least one function (not a mismatch: the control equivalence
	// still holds and is still checked).
	Degraded int `json:"degraded"`
	// Skipped counts programs discarded before checking because the
	// control run came too close to the step budget to leave every
	// variant and path room (a precondition failure, not a verdict).
	// Raise Config.MaxSteps to check them.
	Skipped int `json:"skipped"`
	// Mismatches holds every violated property, in stream order.
	Mismatches []Mismatch `json:"mismatches"`
}

// Ok reports whether the run found no mismatches.
func (r *Report) Ok() bool { return len(r.Mismatches) == 0 }

// Run checks cfg.Programs generated programs and reports every
// violated property.
func Run(cfg Config) (*Report, error) {
	if cfg.Programs <= 0 {
		cfg.Programs = 200
	}
	if cfg.Size == "" {
		cfg.Size = "small"
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 20_000_000
	}
	rep := &Report{Seed: cfg.Seed, Programs: cfg.Programs, Size: cfg.Size}
	ch := &checker{cfg: cfg, rep: rep}
	for i := 0; i < cfg.Programs; i++ {
		seed := workload.DeriveSeed(cfg.Seed, i)
		gcfg, err := workload.SizedGenConfig(seed, cfg.Size)
		if err != nil {
			return nil, fmt.Errorf("oracle: %w", err)
		}
		src := workload.Generate(gcfg)
		fail, skip := ch.check(src)
		if skip {
			rep.Skipped++
		}
		if fail != nil {
			m := Mismatch{
				Index:     i,
				Seed:      seed,
				Property:  fail.property,
				Detail:    fail.detail,
				Source:    src,
				OrigLines: countLines(src),
			}
			if !cfg.NoShrink {
				m.Source = Shrink(src, func(cand string) bool {
					f, _ := ch.check(cand)
					return f != nil && f.property == fail.property
				})
			}
			m.ShrunkLines = countLines(m.Source)
			rep.Mismatches = append(rep.Mismatches, m)
		}
		if cfg.Progress != nil {
			cfg.Progress(i+1, cfg.Programs)
		}
	}
	return rep, nil
}

// CheckProgram runs the full property suite on a single source
// program and returns "" or a description of the violated property.
// rpbench -oracle-one and the shrinking predicate use it; tests use it
// to pin known-good programs.
func CheckProgram(src string, maxSteps int64, roundTrip bool) string {
	ch := &checker{cfg: Config{MaxSteps: maxSteps, RoundTrip: roundTrip}, rep: &Report{}}
	if ch.cfg.MaxSteps <= 0 {
		ch.cfg.MaxSteps = 20_000_000
	}
	f, skip := ch.check(src)
	if skip {
		return "skipped: control run too close to the step budget"
	}
	if f != nil {
		return f.property + ": " + f.detail
	}
	return ""
}

// failure is a violated property before it is packaged as a Mismatch.
type failure struct {
	property string
	detail   string
}

type checker struct {
	cfg Config
	rep *Report
}

// pathOpts enumerates the three interpreter paths.
var pathOpts = []struct {
	name string
	opts interp.Options
}{
	{"legacy", interp.Options{Legacy: true}},
	{"fast", interp.Options{}},
	{"bytecode", interp.Options{Bytecode: true}},
}

// check runs every property on one source program. A non-nil return
// describes the first violated property; skip reports a precondition
// failure (the program outgrew the step budget), which is neither pass
// nor fail.
func (c *checker) check(src string) (fail *failure, skip bool) {
	control, err := pipeline.Run(src, pipeline.Options{
		Algorithm:       pipeline.AlgNone,
		StaticProfile:   true,
		SkipMeasurement: true,
	})
	if err != nil {
		return &failure{"pipeline-error", fmt.Sprintf("control compile: %v", err)}, false
	}
	promoted, err := pipeline.Run(src, pipeline.Options{
		Algorithm:       pipeline.AlgSSA,
		StaticProfile:   true,
		SkipMeasurement: true,
	})
	if err != nil {
		return &failure{"pipeline-error", fmt.Sprintf("promotion: %v", err)}, false
	}
	if len(promoted.Degraded) > 0 {
		c.rep.Degraded++
	}

	// Precondition probe: the control program must finish with at least
	// 4x headroom under the budget, so every variant on every path —
	// promotion inserts destruct copies, the legacy path counts every
	// instruction — still has room. Anything closer is skipped, not
	// judged: a step-limit trap there would say "big program", not
	// "wrong program".
	probe, err := interp.Run(control.Prog, interp.Options{MaxSteps: c.cfg.MaxSteps})
	c.rep.Runs++
	if errors.Is(err, interp.ErrStepLimit) || (err == nil && probe.Steps > c.cfg.MaxSteps/4) {
		return nil, true
	}
	if err != nil {
		return &failure{"observable", fmt.Sprintf("control/fast run failed: %v", err)}, false
	}

	// Property 1: all six runs agree on every observable.
	type run struct {
		name string
		res  *interp.Result
	}
	runs := make([]run, 0, 6)
	for _, variant := range []struct {
		name string
		prog *ir.Program
	}{{"control", control.Prog}, {"promoted", promoted.Prog}} {
		for _, p := range pathOpts {
			opts := p.opts
			opts.MaxSteps = c.cfg.MaxSteps
			res, err := interp.Run(variant.prog, opts)
			c.rep.Runs++
			if err != nil {
				return &failure{"observable",
					fmt.Sprintf("%s/%s run failed: %v", variant.name, p.name, err)}, false
			}
			runs = append(runs, run{variant.name + "/" + p.name, res})
		}
	}
	base := runs[0]
	for _, r := range runs[1:] {
		if diff := diffResults(base.res, r.res); diff != "" {
			return &failure{"observable",
				fmt.Sprintf("%s vs %s: %s", base.name, r.name, diff)}, false
		}
	}

	// Property 2: step-limit traps are path-independent. For each
	// version, a budget strictly below the cheapest path's instruction
	// count must trap every path with ErrStepLimit. (The bytecode path
	// fuses opcode pairs, so paths may count different totals for the
	// same execution — hence the min, and never a budget at an exact
	// count.)
	for vi, variant := range []struct {
		name string
		prog *ir.Program
	}{{"control", control.Prog}, {"promoted", promoted.Prog}} {
		minSteps := runs[vi*3].res.Steps
		for _, r := range runs[vi*3+1 : vi*3+3] {
			if r.res.Steps < minSteps {
				minSteps = r.res.Steps
			}
		}
		if minSteps < 8 {
			continue // too small for a meaningful cut
		}
		budget := minSteps / 2
		for _, p := range pathOpts {
			opts := p.opts
			opts.MaxSteps = budget
			_, err := interp.Run(variant.prog, opts)
			c.rep.Runs++
			if !errors.Is(err, interp.ErrStepLimit) {
				return &failure{"trap-parity",
					fmt.Sprintf("%s/%s with budget %d (half of %d): got %v, want step-limit trap",
						variant.name, p.name, budget, minSteps, err)}, false
			}
		}
	}

	// Property 3 (optional): print→reimport preserves observables.
	if c.cfg.RoundTrip {
		if f := c.roundTrip(src, base.res); f != nil {
			return f, false
		}
	}
	return nil, false
}

// roundTrip prints the plainly-compiled program as textual IR,
// re-imports it, and holds the re-imported program to the control
// observables on the fast path.
func (c *checker) roundTrip(src string, want *interp.Result) *failure {
	prog, err := source.Compile(src)
	if err != nil {
		return &failure{"round-trip", fmt.Sprintf("plain compile: %v", err)}
	}
	text, err := ir.ProgramText(prog)
	if err != nil {
		return &failure{"round-trip", fmt.Sprintf("print: %v", err)}
	}
	back, err := irimport.Compile(text)
	if err != nil {
		return &failure{"round-trip", fmt.Sprintf("reimport of printed IR: %v", err)}
	}
	res, err := interp.Run(back, interp.Options{MaxSteps: c.cfg.MaxSteps})
	c.rep.Runs++
	if err != nil {
		return &failure{"round-trip", fmt.Sprintf("run of reimported program: %v", err)}
	}
	// The lowering inserts copies, so step counts legitimately differ;
	// only the observables must survive the trip.
	if diff := diffResults(want, res); diff != "" {
		return &failure{"round-trip", "reimported program diverges: " + diff}
	}
	return nil
}

// diffResults compares the observables of two runs and describes the
// first difference, or returns "".
func diffResults(a, b *interp.Result) string {
	if a.ReturnValue != b.ReturnValue {
		return fmt.Sprintf("return value %d vs %d", a.ReturnValue, b.ReturnValue)
	}
	if !reflect.DeepEqual(a.Output, b.Output) {
		if len(a.Output) != len(b.Output) {
			return fmt.Sprintf("output length %d vs %d", len(a.Output), len(b.Output))
		}
		for i := range a.Output {
			if a.Output[i] != b.Output[i] {
				return fmt.Sprintf("output[%d] = %d vs %d", i, a.Output[i], b.Output[i])
			}
		}
	}
	names := make([]string, 0, len(a.Globals))
	for name := range a.Globals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !reflect.DeepEqual(a.Globals[name], b.Globals[name]) {
			return fmt.Sprintf("final @%s = %v vs %v", name, a.Globals[name], b.Globals[name])
		}
	}
	return ""
}

func countLines(s string) int {
	return strings.Count(strings.TrimRight(s, "\n"), "\n") + 1
}

package alias

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/source"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := source.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := Analyze(prog); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return prog
}

func findOp(f *ir.Function, op ir.Op) *ir.Instr {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				return in
			}
		}
	}
	return nil
}

func resNames(f *ir.Function, refs []ir.MemRef) map[string]bool {
	names := map[string]bool{}
	for _, r := range refs {
		names[f.Res(r.Res).Name] = true
	}
	return names
}

func TestDirectLoadStoreSingleton(t *testing.T) {
	prog := compile(t, `
int x;
int y;
void main() { x = y + 1; }
`)
	main := prog.Func("main")
	ld := findOp(main, ir.OpLoad)
	st := findOp(main, ir.OpStore)
	if ld == nil || st == nil {
		t.Fatal("missing load/store")
	}
	if len(ld.MemUses) != 1 || ld.MemUses[0].Aliased {
		t.Fatalf("load MemUses = %v, want one non-aliased", ld.MemUses)
	}
	if main.Res(ld.MemUses[0].Res).Name != "y" {
		t.Errorf("load uses %s, want y", main.Res(ld.MemUses[0].Res).Name)
	}
	if len(st.MemDefs) != 1 || st.MemDefs[0].Aliased {
		t.Fatalf("store MemDefs = %v, want one non-aliased", st.MemDefs)
	}
	if main.Res(st.MemDefs[0].Res).Name != "x" {
		t.Errorf("store defines %s, want x", main.Res(st.MemDefs[0].Res).Name)
	}
}

func TestCallTouchesAllGlobals(t *testing.T) {
	prog := compile(t, `
int x;
int y;
int arr[4];
void foo() { x = 1; }
void main() { foo(); }
`)
	main := prog.Func("main")
	call := findOp(main, ir.OpCall)
	if call == nil {
		t.Fatal("no call")
	}
	defs := resNames(main, call.MemDefs)
	uses := resNames(main, call.MemUses)
	for _, want := range []string{"x", "y", "arr"} {
		if !defs[want] || !uses[want] {
			t.Errorf("call should def+use %s: defs=%v uses=%v", want, defs, uses)
		}
	}
	for _, r := range call.MemDefs {
		if !r.Aliased {
			t.Errorf("call def of %s not marked aliased", main.Res(r.Res))
		}
	}
}

func TestDerefAliasesOnlyAddrTaken(t *testing.T) {
	prog := compile(t, `
int x;
int y;
void main() {
	int a = 3;
	int* p = &x;
	*p = 9;
	print(a + y);
}
`)
	main := prog.Func("main")
	sp := findOp(main, ir.OpStorePtr)
	if sp == nil {
		t.Fatal("no storeptr")
	}
	defs := resNames(main, sp.MemDefs)
	if !defs["x"] {
		t.Errorf("deref should alias x: %v", defs)
	}
	if defs["y"] {
		t.Errorf("deref must not alias y (address never taken): %v", defs)
	}
	// Weak update: every aliased def pairs with a use.
	if len(sp.MemUses) != len(sp.MemDefs) {
		t.Errorf("weak update needs matching uses: %d defs, %d uses", len(sp.MemDefs), len(sp.MemUses))
	}
}

func TestDerefAliasesAddrTakenLocal(t *testing.T) {
	prog := compile(t, `
int g;
void main() {
	int a = 1;
	int* p = &a;
	*p = 2;
	print(a);
}
`)
	main := prog.Func("main")
	sp := findOp(main, ir.OpStorePtr)
	defs := resNames(main, sp.MemDefs)
	if !defs["a"] {
		t.Errorf("deref should alias local a: %v", defs)
	}
	if defs["g"] {
		t.Errorf("deref must not alias g: %v", defs)
	}
}

func TestEscapedSlotKilledByCall(t *testing.T) {
	prog := compile(t, `
void sink(int* p) { *p = 5; }
void main() {
	int a = 1;
	sink(&a);
	print(a);
}
`)
	main := prog.Func("main")
	slot := main.FindSlot("a")
	if slot == nil || !slot.Escapes {
		t.Fatalf("slot a should escape: %+v", slot)
	}
	call := findOp(main, ir.OpCall)
	defs := resNames(main, call.MemDefs)
	if !defs["a"] {
		t.Errorf("call should def escaped local a: %v", defs)
	}
}

func TestNonEscapedSlotNotKilledByCall(t *testing.T) {
	prog := compile(t, `
void foo() {}
void main() {
	int a = 1;
	int* p = &a;
	foo();
	*p = 2;
	print(a);
}
`)
	main := prog.Func("main")
	slot := main.FindSlot("a")
	if slot == nil {
		t.Fatal("no slot a")
	}
	if slot.Escapes {
		t.Error("a's address never leaves main; it must not escape")
	}
	call := findOp(main, ir.OpCall)
	defs := resNames(main, call.MemDefs)
	if defs["a"] {
		t.Errorf("call must not def non-escaped local a: %v", defs)
	}
}

func TestEscapeThroughCopyChain(t *testing.T) {
	prog := compile(t, `
void sink(int* p) { *p = 5; }
void main() {
	int a = 1;
	int* p = &a;
	int* q = p;
	sink(q);
	print(a);
}
`)
	main := prog.Func("main")
	slot := main.FindSlot("a")
	if slot == nil || !slot.Escapes {
		t.Error("address flowing through a copy chain must escape")
	}
}

func TestEscapeThroughReturn(t *testing.T) {
	// Returning an address publishes it: the slot must escape. (The
	// program never dereferences the dangling pointer; it only checks
	// the analysis verdict.)
	prog := compile(t, `
int keep(int* p) { return *p; }
void main() {
	int a = 1;
	print(keep(&a));
}
`)
	main := prog.Func("main")
	slot := main.FindSlot("a")
	if slot == nil || !slot.Escapes {
		t.Fatalf("address passed to call must escape: %+v", slot)
	}
}

func TestEscapeThroughStoreToMemory(t *testing.T) {
	prog := compile(t, `
int mailbox;
void main() {
	int a = 5;
	int* p = &a;
	int addr = 0;
	mailbox = *p;
	print(mailbox);
}
`)
	// *p is a plain deref (no escape); a is address-taken but its
	// address never leaves main.
	main := prog.Func("main")
	slot := main.FindSlot("a")
	if slot == nil {
		t.Fatal("no slot")
	}
	if slot.Escapes {
		t.Error("deref-only address must not escape")
	}
	if !slot.AddrTaken {
		t.Error("slot must be address-taken")
	}
}

func TestRetUsesAllGlobals(t *testing.T) {
	prog := compile(t, `
int x;
int arr[2];
void main() { x = 1; }
`)
	main := prog.Func("main")
	var ret *ir.Instr
	for _, b := range main.Blocks {
		if tm := b.Term(); tm != nil && tm.Op == ir.OpRet {
			ret = tm
		}
	}
	if ret == nil {
		t.Fatal("no ret")
	}
	uses := resNames(main, ret.MemUses)
	if !uses["x"] || !uses["arr"] {
		t.Errorf("ret uses %v, want x and arr (globals observable after return)", uses)
	}
	for _, u := range ret.MemUses {
		if !u.Aliased {
			t.Error("ret uses must be aliased references")
		}
	}
}

func TestArrayOpsUseArrayResourceOnly(t *testing.T) {
	prog := compile(t, `
int x;
int a[8];
void main() {
	a[0] = x;
	x = a[1];
}
`)
	main := prog.Func("main")
	li := findOp(main, ir.OpLoadIdx)
	si := findOp(main, ir.OpStoreIdx)
	if names := resNames(main, li.MemUses); !names["a"] || names["x"] {
		t.Errorf("loadidx uses %v, want only a", names)
	}
	if names := resNames(main, si.MemDefs); !names["a"] || names["x"] {
		t.Errorf("storeidx defs %v, want only a", names)
	}
	// Array resources are not promotable.
	for _, r := range main.Resources {
		if r.Name == "a" && r.Promotable() {
			t.Error("array resource must not be promotable")
		}
		if r.Name == "x" && !r.Promotable() {
			t.Error("scalar resource must be promotable")
		}
	}
}

func TestStructFieldsGetDistinctResources(t *testing.T) {
	prog := compile(t, `
struct pt { int x; int y; };
struct pt p;
void main() {
	p.x = 1;
	p.y = 2;
}
`)
	main := prog.Func("main")
	var defs []string
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore {
				defs = append(defs, main.Res(in.MemDefs[0].Res).Name)
			}
		}
	}
	if len(defs) != 2 || defs[0] == defs[1] {
		t.Errorf("struct field stores share a resource: %v", defs)
	}
}

func TestResourceTablesDeterministic(t *testing.T) {
	src := `
int a; int b; int c[3];
void f() { a = b; }
void main() { f(); c[0] = a; }
`
	p1 := compile(t, src)
	p2 := compile(t, src)
	for i := range p1.Funcs {
		f1, f2 := p1.Funcs[i], p2.Funcs[i]
		if len(f1.Resources) != len(f2.Resources) {
			t.Fatalf("resource count differs: %d vs %d", len(f1.Resources), len(f2.Resources))
		}
		for j := range f1.Resources {
			if f1.Resources[j].Name != f2.Resources[j].Name {
				t.Fatalf("resource %d differs: %s vs %s", j, f1.Resources[j].Name, f2.Resources[j].Name)
			}
		}
	}
}

// Package alias implements the memory resource model of the register
// promotion paper. It tags every memory location with a resource
// identifier — singleton resources for scalar cells, array resources for
// aggregates — and annotates each instruction with the set of resource
// references it defines and uses. Aggregate effects are expanded on the
// spot:
//
//   - a direct scalar load or store references exactly one singleton,
//     non-aliased;
//   - a pointer load or store references every address-taken scalar
//     (globals program-wide, plus the function's own address-taken
//     slots), aliased — the paper's aliased loads and stores;
//   - a function call references every global resource plus the
//     function's own escaped slots, aliased, matching the paper's
//     assumption that "a function call may modify and use all memory
//     singleton resources from global variables";
//   - an array access references its array's resource, aliased (arrays
//     are never promoted).
//
// Aliased defs are weak updates, so every aliased def is paired with a
// use of the same resource (the chi convention): the new version may
// retain the old value.
package alias

import (
	"fmt"

	"repro/internal/ir"
)

// Analyze computes escape information and fills the resource tables and
// per-instruction MemDefs/MemUses of every function in prog. It must run
// after lowering and before SSA construction; all references carry base
// (version 0) resources.
func Analyze(prog *ir.Program) error {
	for _, f := range prog.Funcs {
		if err := analyzeFunc(prog, f); err != nil {
			return err
		}
	}
	return nil
}

// funcInfo carries the per-function resource layout.
type funcInfo struct {
	f *ir.Function

	// cellRes maps (object, offset) to the base singleton resource, and
	// arrRes maps array objects to their array resource.
	globalCell map[*ir.Global][]ir.ResourceID
	slotCell   map[*ir.Slot][]ir.ResourceID
	globalArr  map[*ir.Global]ir.ResourceID
	slotArr    map[*ir.Slot]ir.ResourceID

	// derefSet lists resources a pointer dereference may touch, callSet
	// the resources a call may touch, and retSet the resources still
	// observable after the function returns (all globals), each in
	// table order.
	derefSet []ir.ResourceID
	callSet  []ir.ResourceID
	retSet   []ir.ResourceID
}

func analyzeFunc(prog *ir.Program, f *ir.Function) error {
	computeSlotEscapes(f)

	info := &funcInfo{
		f:          f,
		globalCell: make(map[*ir.Global][]ir.ResourceID),
		slotCell:   make(map[*ir.Slot][]ir.ResourceID),
		globalArr:  make(map[*ir.Global]ir.ResourceID),
		slotArr:    make(map[*ir.Slot]ir.ResourceID),
	}

	// Seed the resource table deterministically: globals in program
	// order, then slots in declaration order.
	for _, g := range prog.Globals {
		if g.IsArray {
			r := f.AddResource(g.Name, ir.ResArray, ir.GlobalLoc(g, 0))
			info.globalArr[g] = r.ID
			info.callSet = append(info.callSet, r.ID)
			info.retSet = append(info.retSet, r.ID)
			continue
		}
		cells := make([]ir.ResourceID, g.Size)
		for off := 0; off < g.Size; off++ {
			r := f.AddResource(g.CellName(off), ir.ResScalar, ir.GlobalLoc(g, off))
			cells[off] = r.ID
			info.callSet = append(info.callSet, r.ID)
			info.retSet = append(info.retSet, r.ID)
			if g.AddrTaken {
				info.derefSet = append(info.derefSet, r.ID)
			}
		}
		info.globalCell[g] = cells
	}
	for _, s := range f.Slots {
		if s.IsArray {
			r := f.AddResource(s.Name, ir.ResArray, ir.SlotLoc(s, 0))
			info.slotArr[s] = r.ID
			if s.Escapes {
				info.callSet = append(info.callSet, r.ID)
			}
			continue
		}
		cells := make([]ir.ResourceID, s.Size)
		for off := 0; off < s.Size; off++ {
			r := f.AddResource(s.CellName(off), ir.ResScalar, ir.SlotLoc(s, off))
			cells[off] = r.ID
			if s.AddrTaken {
				info.derefSet = append(info.derefSet, r.ID)
			}
			if s.Escapes {
				info.callSet = append(info.callSet, r.ID)
			}
		}
		info.slotCell[s] = cells
	}

	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if err := info.annotate(in); err != nil {
				return fmt.Errorf("%s: %w", f.Name, err)
			}
		}
	}
	return nil
}

func (info *funcInfo) cellResource(loc ir.MemLoc) (ir.ResourceID, error) {
	switch loc.Kind {
	case ir.LocGlobal:
		cells, ok := info.globalCell[loc.Global]
		if !ok || loc.Offset >= len(cells) {
			return ir.NoResource, fmt.Errorf("no resource for global cell %v", loc)
		}
		return cells[loc.Offset], nil
	case ir.LocSlot:
		cells, ok := info.slotCell[loc.Slot]
		if !ok || loc.Offset >= len(cells) {
			return ir.NoResource, fmt.Errorf("no resource for slot cell %v", loc)
		}
		return cells[loc.Offset], nil
	}
	return ir.NoResource, fmt.Errorf("location %v has no resource", loc)
}

func (info *funcInfo) arrayResource(loc ir.MemLoc) (ir.ResourceID, error) {
	switch loc.Kind {
	case ir.LocGlobal:
		if r, ok := info.globalArr[loc.Global]; ok {
			return r, nil
		}
	case ir.LocSlot:
		if r, ok := info.slotArr[loc.Slot]; ok {
			return r, nil
		}
	}
	return ir.NoResource, fmt.Errorf("location %v has no array resource", loc)
}

func aliasedRefs(ids []ir.ResourceID) []ir.MemRef {
	refs := make([]ir.MemRef, len(ids))
	for i, id := range ids {
		refs[i] = ir.MemRef{Res: id, Aliased: true}
	}
	return refs
}

func (info *funcInfo) annotate(in *ir.Instr) error {
	in.MemDefs, in.MemUses = nil, nil
	switch in.Op {
	case ir.OpLoad:
		r, err := info.cellResource(in.Loc)
		if err != nil {
			return err
		}
		in.MemUses = []ir.MemRef{{Res: r}}
	case ir.OpStore:
		r, err := info.cellResource(in.Loc)
		if err != nil {
			return err
		}
		in.MemDefs = []ir.MemRef{{Res: r}}
	case ir.OpLoadIdx:
		r, err := info.arrayResource(in.Loc)
		if err != nil {
			return err
		}
		in.MemUses = []ir.MemRef{{Res: r, Aliased: true}}
	case ir.OpStoreIdx:
		// Weak update: element stores preserve the rest of the array.
		r, err := info.arrayResource(in.Loc)
		if err != nil {
			return err
		}
		in.MemDefs = []ir.MemRef{{Res: r, Aliased: true}}
		in.MemUses = []ir.MemRef{{Res: r, Aliased: true}}
	case ir.OpLoadPtr:
		in.MemUses = aliasedRefs(info.derefSet)
	case ir.OpStorePtr:
		in.MemDefs = aliasedRefs(info.derefSet)
		in.MemUses = aliasedRefs(info.derefSet)
	case ir.OpCall:
		in.MemDefs = aliasedRefs(info.callSet)
		in.MemUses = aliasedRefs(info.callSet)
	case ir.OpRet:
		// Globals remain observable after the function returns, so a
		// return acts as an aliased load of every global resource. This
		// is what keeps "dead" global stores alive across the exit and
		// forces promotion to write values back before leaving.
		in.MemUses = aliasedRefs(info.retSet)
	}
	return nil
}

// computeSlotEscapes marks slots whose address can leave the function:
// passed to a call, stored into memory, returned, or laundered through
// arithmetic. Address values are tracked through copies with a fixed
// point over the (pre-SSA) register file.
func computeSlotEscapes(f *ir.Function) {
	// holds[r] = set of slots whose address register r may hold.
	holds := make([]map[*ir.Slot]bool, f.NumRegs)
	add := func(r ir.RegID, s *ir.Slot) bool {
		if holds[r] == nil {
			holds[r] = make(map[*ir.Slot]bool)
		}
		if holds[r][s] {
			return false
		}
		holds[r][s] = true
		return true
	}
	union := func(dst ir.RegID, src ir.Value) bool {
		if src.IsConst() {
			return false
		}
		changed := false
		for s := range holds[src.Reg()] {
			if add(dst, s) {
				changed = true
			}
		}
		return changed
	}

	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch {
				case in.Op == ir.OpAddr && in.Loc.Kind == ir.LocSlot:
					if add(in.Dst, in.Loc.Slot) {
						changed = true
					}
				case in.Op == ir.OpLoad, in.Op == ir.OpLoadPtr, in.Op == ir.OpLoadIdx, in.Op == ir.OpCall:
					// Results of memory loads and calls are never
					// addresses: the type system forbids storing or
					// returning pointers and converting ints to
					// pointers, so memory cannot hold an address.
				case in.HasDst():
					// Copies, phis, and arithmetic propagate taint from
					// their operands.
					for _, a := range in.Args {
						if union(in.Dst, a) {
							changed = true
						}
					}
				}
			}
		}
	}

	escape := func(v ir.Value) {
		if v.IsConst() {
			return
		}
		for s := range holds[v.Reg()] {
			s.Escapes = true
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpCall:
				for _, a := range in.Args {
					escape(a)
				}
			case ir.OpRet:
				for _, a := range in.Args {
					escape(a)
				}
			case ir.OpStore:
				escape(in.Args[0])
			case ir.OpStoreIdx:
				escape(in.Args[1])
			case ir.OpStorePtr:
				escape(in.Args[1]) // stored value escapes; the pointer itself does not
			}
		}
	}
}

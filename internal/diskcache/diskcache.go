// Package diskcache is a durable content-addressed store: the cold tier
// below the serving layer's in-memory result cache. Entries are keyed
// by the same SHA-256 content address the memory tier uses and live as
// individual files under a format-version directory, so a restarted
// replica comes back warm and a future format change is a new directory
// rather than a migration.
//
// The durability contract is the paper's own invariant turned into a
// storage rule: a promotion outcome is a pure function of (source,
// resolved options), so the store must either return the exact bytes
// that were written or admit it cannot — never plausible-but-wrong
// bytes. Concretely:
//
//   - Writes are atomic: payloads go to a temp file in the same
//     filesystem, are fsynced, and are renamed into place. A crash at
//     any instant leaves either the old state or the new state, never a
//     torn entry. Stale temp files are swept on Open.
//   - Reads verify: every entry carries a header with a magic tag,
//     payload length, and payload SHA-256. A mismatch (truncation, bit
//     flip, partial write that somehow survived) quarantines the file
//     into a bad/ subdirectory and reports ErrCorrupt — the caller
//     degrades to a recompute; the operator keeps the evidence.
//   - Size is bounded: when the store exceeds its byte budget a
//     background GC evicts entries least-recently-used first (read
//     hits re-stamp the file mtime, so recency survives restarts too).
//     Quarantined evidence counts against the same budget, is evicted
//     before any live entry, and expires outright after a TTL — bad/
//     is a holding pen, not a leak.
//
// A *faults.DiskInjector can be plugged in to drive the degraded paths
// deterministically: injected read/write failures surface as errors
// (the caller treats them as misses), injected checksum faults force
// the quarantine path, and slow-IO adds latency — the knobs the chaos
// harness turns.
package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
)

// FormatVersion names the on-disk layout. Entries live under
// <root>/v<FormatVersion>/; bumping it orphans (never misreads) old
// entries.
const FormatVersion = 1

// magic tags every entry file. The final byte is the format version, so
// a file from a future layout fails fast as corrupt rather than being
// half-parsed.
var magic = []byte{'R', 'P', 'D', 'C', FormatVersion}

// headerSize is magic + 32-byte payload SHA-256 + 8-byte payload length.
const headerSize = len("RPDC*") + sha256.Size + 8

// quarantineTTL bounds how long quarantined evidence is kept. A bad
// entry exists for the operator to inspect; after a week it is noise
// occupying budget, and GC removes it even when the store is under
// budget.
const quarantineTTL = 7 * 24 * time.Hour

var (
	// ErrNotFound reports a key with no entry.
	ErrNotFound = errors.New("diskcache: entry not found")
	// ErrCorrupt reports an entry that failed verification and was
	// quarantined. The caller should treat it as a miss and recompute.
	ErrCorrupt = errors.New("diskcache: entry corrupt (quarantined)")
)

// Store is one on-disk cache instance. All methods are safe for
// concurrent use.
type Store struct {
	dir      string // <root>/v1
	tmpDir   string // <root>/v1/tmp — same filesystem, so rename is atomic
	badDir   string // <root>/v1/bad — quarantined entries
	maxBytes int64  // GC budget; <= 0 means unbounded
	chaos    *faults.DiskInjector

	mu        sync.Mutex
	bytes     int64 // payload + header bytes of live entries (approximate under races, re-trued by GC)
	badBytes  int64 // bytes held by quarantined entries in bad/ — counted against the budget
	count     int
	gcRunning bool
	tmpSeq    atomic.Int64

	quarantined atomic.Int64
	gcEvicted   atomic.Int64
	readErrs    atomic.Int64
	writeErrs   atomic.Int64
}

// Open creates (or reopens) the store rooted at root. maxBytes bounds
// the live entry bytes (<= 0 = unbounded); chaos may be nil. Reopening
// an existing root walks it once to rebuild the size accounting — that
// walk is what makes a restarted replica warm instead of amnesiac.
func Open(root string, maxBytes int64, chaos *faults.DiskInjector) (*Store, error) {
	s := &Store{
		dir:      filepath.Join(root, fmt.Sprintf("v%d", FormatVersion)),
		maxBytes: maxBytes,
		chaos:    chaos,
	}
	s.tmpDir = filepath.Join(s.dir, "tmp")
	s.badDir = filepath.Join(s.dir, "bad")
	for _, d := range []string{s.dir, s.tmpDir, s.badDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("diskcache: open: %w", err)
		}
	}
	// A crash can strand temp files; they were never visible, so they
	// are garbage by construction.
	if stale, err := os.ReadDir(s.tmpDir); err == nil {
		for _, e := range stale {
			os.Remove(filepath.Join(s.tmpDir, e.Name()))
		}
	}
	entries, err := s.walk()
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		s.bytes += e.size
		s.count++
	}
	// Quarantined evidence survives restarts; so must its accounting,
	// or a replica that crashed with a full bad/ would leak that space
	// past the budget forever.
	for _, e := range s.walkBad() {
		s.badBytes += e.size
	}
	return s, nil
}

// path maps a key to its entry file, sharded by key prefix so no single
// directory grows unboundedly.
func (s *Store) path(key string) string {
	shard := "__"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, shard, key)
}

// Get returns the payload stored for key. It returns ErrNotFound for a
// missing entry, ErrCorrupt after quarantining an entry that failed
// verification, and other errors for environmental failures (including
// injected ones) — every non-nil error means "treat as a miss".
func (s *Store) Get(key string) ([]byte, error) {
	if err := s.chaos.Read(key); err != nil {
		s.readErrs.Add(1)
		return nil, err
	}
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		s.readErrs.Add(1)
		return nil, fmt.Errorf("diskcache: read %s: %w", key, err)
	}
	payload, err := decode(data)
	if err == nil && s.chaos.Checksum(key) {
		err = fmt.Errorf("injected checksum mismatch")
	}
	if err != nil {
		s.quarantine(key, p, int64(len(data)))
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, key, err)
	}
	// Re-stamp recency so GC's LRU-by-atime ordering tracks reads even
	// on filesystems mounted noatime. Best effort: a failure here only
	// ages the entry.
	now := time.Now()
	_ = os.Chtimes(p, now, now)
	return payload, nil
}

// Put durably stores payload under key. Existing entries are left in
// place (the store is content-addressed: same key, same bytes) with
// their recency refreshed. Any error means the entry may be absent but
// is never torn.
func (s *Store) Put(key string, payload []byte) error {
	if err := s.chaos.Write(key); err != nil {
		s.writeErrs.Add(1)
		return err
	}
	p := s.path(key)
	if _, err := os.Stat(p); err == nil {
		now := time.Now()
		_ = os.Chtimes(p, now, now)
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		s.writeErrs.Add(1)
		return fmt.Errorf("diskcache: write %s: %w", key, err)
	}
	data := encode(payload)
	tmp := filepath.Join(s.tmpDir, fmt.Sprintf("%s.%d.%d", key, os.Getpid(), s.tmpSeq.Add(1)))
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		s.writeErrs.Add(1)
		return fmt.Errorf("diskcache: write %s: %w", key, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		s.writeErrs.Add(1)
		return fmt.Errorf("diskcache: write %s: %w", key, err)
	}
	// fsync the shard directory so the rename itself is durable; best
	// effort — a failure degrades durability for this entry, not
	// integrity.
	if d, err := os.Open(filepath.Dir(p)); err == nil {
		_ = d.Sync()
		d.Close()
	}

	s.mu.Lock()
	s.bytes += int64(len(data))
	s.count++
	over := s.maxBytes > 0 && s.bytes+s.badBytes > s.maxBytes && !s.gcRunning
	if over {
		s.gcRunning = true
	}
	s.mu.Unlock()
	if over {
		go s.gc()
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// encode frames a payload: magic, payload SHA-256, payload length,
// payload.
func encode(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	data := make([]byte, 0, headerSize+len(payload))
	data = append(data, magic...)
	data = append(data, sum[:]...)
	data = binary.BigEndian.AppendUint64(data, uint64(len(payload)))
	return append(data, payload...)
}

// decode verifies a framed entry and returns its payload.
func decode(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("short entry: %d bytes", len(data))
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return nil, fmt.Errorf("bad magic %x", data[:len(magic)])
	}
	var sum [sha256.Size]byte
	copy(sum[:], data[len(magic):])
	n := binary.BigEndian.Uint64(data[len(magic)+sha256.Size : headerSize])
	payload := data[headerSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("length mismatch: header %d, payload %d", n, len(payload))
	}
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return payload, nil
}

// quarantine moves a failed entry into bad/ (preserving the evidence)
// and moves its bytes from the live accounting to the quarantine
// accounting — the file still occupies disk, so it still counts
// against the budget. If the move itself fails the entry is removed
// outright — a corrupt file must never be served twice.
func (s *Store) quarantine(key, path string, size int64) {
	kept := os.Rename(path, filepath.Join(s.badDir, key)) == nil
	if !kept {
		os.Remove(path)
	}
	s.quarantined.Add(1)
	s.mu.Lock()
	s.bytes -= size
	s.count--
	if s.bytes < 0 {
		s.bytes = 0
	}
	if s.count < 0 {
		s.count = 0
	}
	if kept {
		s.badBytes += size
	}
	over := s.maxBytes > 0 && s.bytes+s.badBytes > s.maxBytes && !s.gcRunning
	if over {
		s.gcRunning = true
	}
	s.mu.Unlock()
	if over {
		go s.gc()
	}
}

// entryInfo is one live entry seen by a directory walk.
type entryInfo struct {
	path  string
	size  int64
	mtime time.Time
}

// walk lists live entries (excluding tmp/ and bad/).
func (s *Store) walk() ([]entryInfo, error) {
	var out []entryInfo
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("diskcache: walk: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() || sh.Name() == "tmp" || sh.Name() == "bad" {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			info, err := f.Info()
			if err != nil {
				continue
			}
			out = append(out, entryInfo{
				path:  filepath.Join(s.dir, sh.Name(), f.Name()),
				size:  info.Size(),
				mtime: info.ModTime(),
			})
		}
	}
	return out, nil
}

// walkBad lists quarantined entries in bad/.
func (s *Store) walkBad() []entryInfo {
	var out []entryInfo
	files, err := os.ReadDir(s.badDir)
	if err != nil {
		return nil
	}
	for _, f := range files {
		info, err := f.Info()
		if err != nil {
			continue
		}
		out = append(out, entryInfo{
			path:  filepath.Join(s.badDir, f.Name()),
			size:  info.Size(),
			mtime: info.ModTime(),
		})
	}
	return out
}

// gc brings the store back under its byte budget and re-trues the
// accounting from the walks it took anyway. Order of sacrifice:
// expired quarantined evidence goes unconditionally, remaining
// quarantined entries go oldest-first while over budget (evidence is
// worth less than cache hits), and only then are live entries evicted
// least-recently-used.
func (s *Store) gc() {
	defer func() {
		s.mu.Lock()
		s.gcRunning = false
		s.mu.Unlock()
	}()
	entries, err := s.walk()
	if err != nil {
		return
	}
	bad := s.walkBad()
	sort.Slice(bad, func(i, j int) bool { return bad[i].mtime.Before(bad[j].mtime) })
	var badTotal int64
	for _, e := range bad {
		badTotal += e.size
	}
	expiry := time.Now().Add(-quarantineTTL)
	for i, e := range bad {
		if !e.mtime.Before(expiry) {
			bad = bad[i:]
			break
		}
		if os.Remove(e.path) == nil {
			badTotal -= e.size
		}
		if i == len(bad)-1 {
			bad = nil
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	var total int64
	for _, e := range entries {
		total += e.size
	}
	if s.maxBytes > 0 {
		for _, e := range bad {
			if total+badTotal <= s.maxBytes {
				break
			}
			if os.Remove(e.path) == nil {
				badTotal -= e.size
			}
		}
		for _, e := range entries {
			if total+badTotal <= s.maxBytes {
				break
			}
			if os.Remove(e.path) == nil {
				total -= e.size
				s.gcEvicted.Add(1)
			}
		}
	}
	live := 0
	for _, e := range entries {
		if _, err := os.Stat(e.path); err == nil {
			live++
		}
	}
	s.mu.Lock()
	s.bytes = total
	s.badBytes = badTotal
	s.count = live
	s.mu.Unlock()
}

// GC runs one synchronous collection pass (tests and operators; the
// serving path relies on the automatic background pass).
func (s *Store) GC() {
	s.mu.Lock()
	if s.gcRunning {
		s.mu.Unlock()
		return
	}
	s.gcRunning = true
	s.mu.Unlock()
	s.gc()
}

// Stats is a point-in-time snapshot for metrics.
type Stats struct {
	Entries         int
	Bytes           int64
	QuarantineBytes int64 // bytes currently held by quarantined entries in bad/
	Quarantined     int64 // entries quarantined since Open
	Evicted         int64 // entries evicted by GC since Open
	ReadErrors      int64 // failed or injected reads since Open
	WriteErrors     int64 // failed or injected writes since Open
}

// Stats returns current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	count, bytes, badBytes := s.count, s.bytes, s.badBytes
	s.mu.Unlock()
	return Stats{
		Entries:         count,
		Bytes:           bytes,
		QuarantineBytes: badBytes,
		Quarantined:     s.quarantined.Load(),
		Evicted:         s.gcEvicted.Load(),
		ReadErrors:      s.readErrs.Load(),
		WriteErrors:     s.writeErrs.Load(),
	}
}

package diskcache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faults"
)

func mustOpen(t *testing.T, root string, maxBytes int64, chaos *faults.DiskInjector) *Store {
	t.Helper()
	s, err := Open(root, maxBytes, chaos)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func key(i int) string { return fmt.Sprintf("%02x%062x", i%256, i) }

// TestPutGetRoundTrip checks basic storage plus the not-found path.
func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0, nil)
	payload := []byte("outcome bytes")
	if err := s.Put(key(1), payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key(1))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := s.Get(key(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v, want ErrNotFound", err)
	}
	if st := s.Stats(); st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Re-putting the same key is a refresh, not a second entry.
	if err := s.Put(key(1), payload); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("after re-put: %+v", st)
	}
}

// TestReopenWarm checks a new Store over the same root serves entries
// written by the previous one and rebuilds the size accounting — the
// warm-restart property the serving layer depends on.
func TestReopenWarm(t *testing.T) {
	root := t.TempDir()
	s1 := mustOpen(t, root, 0, nil)
	payload := []byte("survives restart")
	if err := s1.Put(key(1), payload); err != nil {
		t.Fatal(err)
	}
	want := s1.Stats()

	s2 := mustOpen(t, root, 0, nil)
	got, err := s2.Get(key(1))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("after reopen: Get = %q, %v", got, err)
	}
	if st := s2.Stats(); st.Entries != want.Entries || st.Bytes != want.Bytes {
		t.Fatalf("reopened stats %+v, want %+v", st, want)
	}
}

// TestOpenSweepsTempFiles checks stranded temp files from a crashed
// writer are removed on Open and never visible as entries.
func TestOpenSweepsTempFiles(t *testing.T) {
	root := t.TempDir()
	s1 := mustOpen(t, root, 0, nil)
	stale := filepath.Join(s1.tmpDir, "deadbeef.123.1")
	if err := os.WriteFile(stale, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, root, 0, nil)
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp file survived reopen: %v", err)
	}
	if st := s2.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("temp file counted as entry: %+v", st)
	}
}

// corruptEntry mangles the stored file for key with fn.
func corruptEntry(t *testing.T, s *Store, key string, fn func([]byte) []byte) {
	t.Helper()
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionQuarantine checks both truncated and bit-flipped
// entries fail verification, land in bad/, and leave the store serving
// ErrNotFound (a clean miss) afterwards.
func TestCorruptionQuarantine(t *testing.T) {
	cases := []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bitflip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x40
			return c
		}},
		{"badmagic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustOpen(t, t.TempDir(), 0, nil)
			if err := s.Put(key(1), []byte("precious bytes")); err != nil {
				t.Fatal(err)
			}
			corruptEntry(t, s, key(1), tc.fn)

			if _, err := s.Get(key(1)); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corrupt entry: %v, want ErrCorrupt", err)
			}
			if _, err := os.Stat(filepath.Join(s.badDir, key(1))); err != nil {
				t.Fatalf("quarantine file missing: %v", err)
			}
			if _, err := s.Get(key(1)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("after quarantine: %v, want ErrNotFound", err)
			}
			st := s.Stats()
			if st.Quarantined != 1 || st.Entries != 0 {
				t.Fatalf("stats after quarantine: %+v", st)
			}
			// The store recovers: the key can be written and read again.
			if err := s.Put(key(1), []byte("recomputed bytes")); err != nil {
				t.Fatal(err)
			}
			if got, err := s.Get(key(1)); err != nil || string(got) != "recomputed bytes" {
				t.Fatalf("recovery Get = %q, %v", got, err)
			}
		})
	}
}

// TestGCEvictsLRUByRecency fills past the byte budget and checks GC
// drops the least recently touched entries first — including recency
// granted by Get, not just Put.
func TestGCEvictsLRUByRecency(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0, nil)
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 10; i++ {
		if err := s.Put(key(i), payload); err != nil {
			t.Fatal(err)
		}
		// Spread mtimes so LRU order is unambiguous on coarse clocks.
		old := time.Now().Add(time.Duration(i-20) * time.Hour)
		if err := os.Chtimes(s.path(key(i)), old, old); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest entry via Get: it must survive the GC.
	if _, err := s.Get(key(0)); err != nil {
		t.Fatal(err)
	}

	entrySize := int64(headerSize + len(payload))
	s.maxBytes = 4 * entrySize
	s.GC()

	st := s.Stats()
	if st.Bytes > s.maxBytes {
		t.Fatalf("after GC: %d bytes > budget %d", st.Bytes, s.maxBytes)
	}
	if st.Entries != 4 || st.Evicted != 6 {
		t.Fatalf("after GC: %+v, want 4 entries / 6 evicted", st)
	}
	if _, err := s.Get(key(0)); err != nil {
		t.Fatalf("recently read entry evicted: %v", err)
	}
	for _, i := range []int{1, 2, 3} {
		if _, err := s.Get(key(i)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("old entry %d: %v, want ErrNotFound", i, err)
		}
	}
}

// TestBackgroundGCTriggersOnPut checks the automatic pass fires when a
// Put pushes the store over budget.
func TestBackgroundGCTriggersOnPut(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 200)
	entrySize := int64(headerSize + len(payload))
	s := mustOpen(t, t.TempDir(), 3*entrySize, nil)
	for i := 0; i < 8; i++ {
		if err := s.Put(key(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := s.Stats(); st.Bytes <= s.maxBytes && !s.gcBusy() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("store never shrank to budget: %+v", s.Stats())
}

func (s *Store) gcBusy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gcRunning
}

// TestInjectedFaultsDegradeCleanly checks chaos-injected read, write,
// and checksum failures surface as errors (miss semantics) without ever
// corrupting a stored entry or tearing a write.
func TestInjectedFaultsDegradeCleanly(t *testing.T) {
	root := t.TempDir()
	payload := []byte("chaos payload")

	// Write faults: a failed Put leaves nothing behind.
	s := mustOpen(t, root, 0, faults.NewDisk(faults.DiskPlan{WriteErr: 1}))
	if err := s.Put(key(1), payload); !errors.Is(err, faults.ErrInjectedDisk) {
		t.Fatalf("Put under write fault = %v, want injected error", err)
	}
	if _, err := s.Get(key(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed Put left state: %v", err)
	}
	if st := s.Stats(); st.WriteErrors != 1 || st.Entries != 0 {
		t.Fatalf("stats after write fault: %+v", st)
	}

	// Read faults: the entry stays intact, later reads succeed.
	s = mustOpen(t, root, 0, faults.NewDisk(faults.DiskPlan{ReadErr: 1}))
	if err := s.Put(key(1), payload); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key(1)); !errors.Is(err, faults.ErrInjectedDisk) {
		t.Fatalf("Get under read fault = %v, want injected error", err)
	}
	s.chaos = nil
	if got, err := s.Get(key(1)); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("entry damaged by injected read fault: %q, %v", got, err)
	}

	// Checksum faults: the healthy entry is sacrificed to the
	// quarantine path — the caller sees ErrCorrupt, never wrong bytes.
	s = mustOpen(t, t.TempDir(), 0, faults.NewDisk(faults.DiskPlan{ChecksumErr: 1}))
	if err := s.Put(key(2), payload); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key(2)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get under checksum fault = %v, want ErrCorrupt", err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats after checksum fault: %+v", st)
	}
}

// TestConcurrentPutGet exercises the store from the race detector's
// point of view: concurrent writers and readers over a small keyspace
// with a tight GC budget.
func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 2048, nil)
	payload := bytes.Repeat([]byte("z"), 64)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				k := key((g*31 + i) % 16)
				if i%2 == 0 {
					if err := s.Put(k, payload); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				} else if got, err := s.Get(k); err == nil && !bytes.Equal(got, payload) {
					t.Errorf("Get returned wrong bytes")
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

// TestQuarantineBudgetAndExpiry pins the full lifecycle of quarantined
// evidence: its bytes count against the budget (and survive reopen),
// GC sacrifices it before any live entry, and it expires on TTL even
// when the store is under budget.
func TestQuarantineBudgetAndExpiry(t *testing.T) {
	root := t.TempDir()
	payload := bytes.Repeat([]byte("q"), 100)
	entrySize := int64(headerSize + len(payload))

	// Quarantine three entries via injected checksum faults.
	s := mustOpen(t, root, 0, faults.NewDisk(faults.DiskPlan{ChecksumErr: 1}))
	for i := 0; i < 3; i++ {
		if err := s.Put(key(i), payload); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(key(i)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("entry %d: %v, want ErrCorrupt", i, err)
		}
	}
	if st := s.Stats(); st.QuarantineBytes != 3*entrySize || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after quarantines: %+v, want %d quarantine bytes", st, 3*entrySize)
	}

	// A fresh Store over the same root rebuilds the accounting from
	// bad/ — quarantined space must not become invisible on restart.
	s = mustOpen(t, root, 0, nil)
	if st := s.Stats(); st.QuarantineBytes != 3*entrySize {
		t.Fatalf("after reopen: %+v, want %d quarantine bytes", st, 3*entrySize)
	}

	// Fill with live entries until live alone consumes the budget:
	// GC must clear all quarantined files and evict zero live ones.
	for i := 4; i < 8; i++ {
		if err := s.Put(key(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	s.maxBytes = 4 * entrySize
	s.GC()
	st := s.Stats()
	if st.QuarantineBytes != 0 {
		t.Fatalf("quarantined evidence survived budget pressure: %+v", st)
	}
	if st.Entries != 4 || st.Evicted != 0 {
		t.Fatalf("live entries paid for quarantine: %+v, want 4 entries / 0 evicted", st)
	}
	if files, err := os.ReadDir(s.badDir); err != nil || len(files) != 0 {
		t.Fatalf("bad/ not emptied: %d files, %v", len(files), err)
	}

	// TTL expiry fires even with no budget pressure at all.
	s = mustOpen(t, t.TempDir(), 0, faults.NewDisk(faults.DiskPlan{ChecksumErr: 1}))
	if err := s.Put(key(1), payload); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key(1)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get = %v, want ErrCorrupt", err)
	}
	old := time.Now().Add(-quarantineTTL - time.Hour)
	if err := os.Chtimes(filepath.Join(s.badDir, key(1)), old, old); err != nil {
		t.Fatal(err)
	}
	s.GC()
	if st := s.Stats(); st.QuarantineBytes != 0 {
		t.Fatalf("expired quarantine entry still counted: %+v", st)
	}
	if files, _ := os.ReadDir(s.badDir); len(files) != 0 {
		t.Fatalf("expired quarantine file survived GC")
	}
}

// TestQuarantineTriggersGC checks that quarantining itself kicks the
// background GC when the move pushes total usage over budget — the bug
// this guards against let bad/ grow without bound because only Put
// looked at the budget, and only at live bytes.
func TestQuarantineTriggersGC(t *testing.T) {
	payload := bytes.Repeat([]byte("g"), 200)
	entrySize := int64(headerSize + len(payload))
	s := mustOpen(t, t.TempDir(), 2*entrySize, faults.NewDisk(faults.DiskPlan{ChecksumErr: 1}))
	for i := 0; i < 2; i++ {
		if err := s.Put(key(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Quarantining both entries leaves live == 0 but bad/ at budget;
	// the third Put overflows and GC must claw back quarantine space.
	for i := 0; i < 2; i++ {
		if _, err := s.Get(key(i)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("entry %d: %v, want ErrCorrupt", i, err)
		}
	}
	s.chaos = nil
	if err := s.Put(key(3), payload); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Stats()
		if st.Bytes+st.QuarantineBytes <= s.maxBytes && !s.gcBusy() {
			if _, err := s.Get(key(3)); err != nil {
				t.Fatalf("live entry sacrificed before quarantine space: %v", err)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("store never shrank below budget: %+v", s.Stats())
}

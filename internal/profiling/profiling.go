// Package profiling wires the runtime's pprof profilers to the tools'
// -cpuprofile and -memprofile flags, so hot-path investigations can go
// straight from an rpbench/rpromote run to `go tool pprof`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins CPU profiling into the file at path and returns a
// stop function that ends profiling and closes the file. An empty path
// is a no-op: the returned stop does nothing.
func StartCPU(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes an allocation profile to the file at path, running a
// GC first so the numbers reflect live and cumulative allocation
// accurately. An empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

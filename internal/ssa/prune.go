package ssa

import "repro/internal/ir"

// PruneTrivialPhis removes phi and memphi instructions whose operands
// (ignoring self-references) are all the same value, rewriting their
// uses to that value. It iterates to a fixed point, since removing one
// trivial phi can make another trivial, and returns the number of phis
// removed. Memory phis merging a single resource version arise routinely
// from pessimistic phi placement; keeping them would distort the
// promotion algorithm's SSA webs, so Build always prunes.
func PruneTrivialPhis(f *ir.Function) int {
	removed := 0
	for {
		regRepl := make(map[ir.RegID]ir.Value)
		resRepl := make(map[ir.ResourceID]ir.ResourceID)
		var dead []*ir.Instr

		for _, b := range f.Blocks {
			for _, phi := range b.Phis() {
				switch phi.Op {
				case ir.OpPhi:
					if v, ok := trivialRegPhi(phi); ok {
						regRepl[phi.Dst] = v
						dead = append(dead, phi)
					}
				case ir.OpMemPhi:
					if r, ok := trivialMemPhi(phi); ok {
						resRepl[phi.MemDefs[0].Res] = r
						dead = append(dead, phi)
					}
				}
			}
		}
		if len(dead) == 0 {
			return removed
		}
		// Resolve replacement chains (a phi may map to another dead
		// phi's target).
		resolveReg := func(v ir.Value) ir.Value {
			for !v.IsConst() {
				next, ok := regRepl[v.Reg()]
				if !ok {
					return v
				}
				v = next
			}
			return v
		}
		resolveRes := func(r ir.ResourceID) ir.ResourceID {
			for {
				next, ok := resRepl[r]
				if !ok {
					return r
				}
				r = next
			}
		}

		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for i, a := range in.Args {
					if !a.IsConst() {
						if v, ok := regRepl[a.Reg()]; ok {
							in.Args[i] = resolveReg(v)
						}
					}
				}
				for i := range in.MemUses {
					if r, ok := resRepl[in.MemUses[i].Res]; ok {
						in.MemUses[i].Res = resolveRes(r)
					}
				}
			}
		}
		for _, phi := range dead {
			phi.Parent.Remove(phi)
			removed++
		}
	}
}

// trivialRegPhi reports whether phi merges a single distinct value and
// returns it. A phi all of whose operands are itself never executes
// meaningfully; it maps to the constant 0.
func trivialRegPhi(phi *ir.Instr) (ir.Value, bool) {
	var uniq ir.Value
	found := false
	for _, a := range phi.Args {
		if a.IsReg(phi.Dst) {
			continue // self-reference
		}
		if !found {
			uniq = a
			found = true
			continue
		}
		if a != uniq {
			return ir.Value{}, false
		}
	}
	if !found {
		return ir.ConstVal(0), true
	}
	return uniq, true
}

// trivialMemPhi reports whether a memphi merges a single distinct
// resource version and returns it.
func trivialMemPhi(phi *ir.Instr) (ir.ResourceID, bool) {
	self := phi.MemDefs[0].Res
	uniq := ir.NoResource
	for _, u := range phi.MemUses {
		if u.Res == self {
			continue
		}
		if uniq == ir.NoResource {
			uniq = u.Res
			continue
		}
		if u.Res != uniq {
			return ir.NoResource, false
		}
	}
	if uniq == ir.NoResource {
		return ir.NoResource, false // all-self memphi: keep (degenerate)
	}
	return uniq, true
}

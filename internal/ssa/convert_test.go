package ssa

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// buildUnversioned constructs a function where every reference to
// global x still uses version 0, with multiple definitions:
//
//	b0: store x = 1; br -> b1, b2
//	b1: store x = 2; jmp b3
//	b2: load x (sees the b0 store); jmp b3
//	b3: load x (needs a phi); ret
func buildUnversioned(t *testing.T) (*ir.Function, ir.ResourceID, map[string]*ir.Instr) {
	t.Helper()
	p := ir.NewProgram()
	g := p.AddGlobal("x", 1, false, nil)
	f := ir.NewFunction(p, "conv")
	base := f.AddResource("x", ir.ResScalar, ir.GlobalLoc(g, 0))
	cond := f.NewReg("c")
	f.Params = []ir.RegID{cond}

	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	ir.AddEdge(b0, b1)
	ir.AddEdge(b0, b2)
	ir.AddEdge(b1, b3)
	ir.AddEdge(b2, b3)

	instrs := map[string]*ir.Instr{}
	store := func(blk *ir.Block, val int64, name string) {
		st := ir.NewInstr(ir.OpStore, ir.NoReg, ir.ConstVal(val))
		st.Loc = ir.GlobalLoc(g, 0)
		st.MemDefs = []ir.MemRef{{Res: base.ID}}
		blk.Append(st)
		instrs[name] = st
	}
	load := func(blk *ir.Block, name string) {
		r := f.NewReg("")
		ld := ir.NewInstr(ir.OpLoad, r)
		ld.Loc = ir.GlobalLoc(g, 0)
		ld.MemUses = []ir.MemRef{{Res: base.ID}}
		blk.Append(ld)
		instrs[name] = ld
	}

	store(b0, 1, "st0")
	b0.Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(cond)))
	store(b1, 2, "st1")
	b1.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
	load(b2, "ld2")
	b2.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
	load(b3, "ld3")
	b3.Append(ir.NewInstr(ir.OpRet, ir.NoReg))

	return f, base.ID, instrs
}

func TestConvertResourceToSSA(t *testing.T) {
	f, base, instrs := buildUnversioned(t)
	dom := cfg.BuildDomTree(f)
	df := cfg.BuildDomFrontiers(dom)

	n, err := ConvertResourceToSSA(f, dom, df, base)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("versioned %d definitions, want 2", n)
	}

	v0 := instrs["st0"].MemDefs[0].Res
	v1 := instrs["st1"].MemDefs[0].Res
	if f.Res(v0).Version == 0 || f.Res(v1).Version == 0 || v0 == v1 {
		t.Fatalf("stores not distinctly versioned: %s, %s", f.Res(v0), f.Res(v1))
	}
	// The load in b2 sees the b0 store directly.
	if got := instrs["ld2"].MemUses[0].Res; got != v0 {
		t.Errorf("load in b2 uses %s, want %s", f.Res(got), f.Res(v0))
	}
	// The load at the join must use a phi merging both stores.
	join := instrs["ld3"].Parent
	var phi *ir.Instr
	for _, in := range join.Phis() {
		if in.Op == ir.OpMemPhi {
			phi = in
		}
	}
	if phi == nil {
		t.Fatalf("no memphi at join:\n%s", f)
	}
	if instrs["ld3"].MemUses[0].Res != phi.MemDefs[0].Res {
		t.Error("join load not renamed to phi target")
	}
	ops := map[ir.ResourceID]bool{}
	for _, u := range phi.MemUses {
		ops[u.Res] = true
	}
	if !ops[v0] || !ops[v1] {
		t.Errorf("phi merges %v, want {%s, %s}", ops, f.Res(v0), f.Res(v1))
	}

	if err := f.Verify(ir.VerifySSA); err != nil {
		t.Fatalf("post-convert: %v\n%s", err, f)
	}
	if err := VerifyDominance(f); err != nil {
		t.Fatalf("post-convert dominance: %v", err)
	}
}

func TestConvertResourceNoDefs(t *testing.T) {
	p := ir.NewProgram()
	g := p.AddGlobal("x", 1, false, nil)
	f := ir.NewFunction(p, "nd")
	base := f.AddResource("x", ir.ResScalar, ir.GlobalLoc(g, 0))
	b := f.NewBlock()
	r := f.NewReg("")
	ld := ir.NewInstr(ir.OpLoad, r)
	ld.Loc = ir.GlobalLoc(g, 0)
	ld.MemUses = []ir.MemRef{{Res: base.ID}}
	b.Append(ld)
	b.Append(ir.NewInstr(ir.OpRet, ir.NoReg))

	dom := cfg.BuildDomTree(f)
	df := cfg.BuildDomFrontiers(dom)
	n, err := ConvertResourceToSSA(f, dom, df, base.ID)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("versioned %d defs in def-free function", n)
	}
	if ld.MemUses[0].Res != base.ID {
		t.Error("live-in use must keep version 0")
	}
}

func TestConvertRejectsVersionedInput(t *testing.T) {
	p := ir.NewProgram()
	g := p.AddGlobal("x", 1, false, nil)
	f := ir.NewFunction(p, "rv")
	base := f.AddResource("x", ir.ResScalar, ir.GlobalLoc(g, 0))
	v := f.NewVersion(base.ID)
	b := f.NewBlock()
	b.Append(ir.NewInstr(ir.OpRet, ir.NoReg))
	dom := cfg.BuildDomTree(f)
	df := cfg.BuildDomFrontiers(dom)
	if _, err := ConvertResourceToSSA(f, dom, df, v.ID); err == nil {
		t.Fatal("conversion accepted a non-base resource")
	}
}

func TestConvertLoopCarried(t *testing.T) {
	// Def inside a loop, use after: conversion must create the header
	// phi merging live-in and the loop def.
	p := ir.NewProgram()
	g := p.AddGlobal("x", 1, false, nil)
	f := ir.NewFunction(p, "loop")
	base := f.AddResource("x", ir.ResScalar, ir.GlobalLoc(g, 0))
	cond := f.NewReg("c")
	f.Params = []ir.RegID{cond}

	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	ir.AddEdge(b0, b1)
	ir.AddEdge(b1, b2)
	ir.AddEdge(b2, b1)
	ir.AddEdge(b2, b3)

	b0.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
	b1.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
	st := ir.NewInstr(ir.OpStore, ir.NoReg, ir.ConstVal(7))
	st.Loc = ir.GlobalLoc(g, 0)
	st.MemDefs = []ir.MemRef{{Res: base.ID}}
	b2.Append(st)
	b2.Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(cond)))
	r := f.NewReg("")
	ld := ir.NewInstr(ir.OpLoad, r)
	ld.Loc = ir.GlobalLoc(g, 0)
	ld.MemUses = []ir.MemRef{{Res: base.ID}}
	b3.Append(ld)
	b3.Append(ir.NewInstr(ir.OpRet, ir.NoReg))

	dom := cfg.BuildDomTree(f)
	df := cfg.BuildDomFrontiers(dom)
	if _, err := ConvertResourceToSSA(f, dom, df, base.ID); err != nil {
		t.Fatal(err)
	}
	if f.Res(ld.MemUses[0].Res).Version == 0 {
		t.Errorf("loop exit load still uses version 0:\n%s", f)
	}
	if err := VerifyDominance(f); err != nil {
		t.Fatalf("post-convert: %v\n%s", err, f)
	}
}

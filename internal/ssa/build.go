// Package ssa converts IR functions into and out of Static Single
// Assignment form, for both virtual registers and memory resources, and
// implements the register promotion paper's incremental SSA update for
// cloned definitions (its Figure 11 algorithm).
//
// After Build, every register has one definition, every memory resource
// reference names a versioned resource, Phi instructions join register
// values, and MemPhi instructions join memory versions. Version 0 of a
// base resource denotes the location's value on function entry (the
// live-in value); it has no defining instruction.
package ssa

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// Build converts f to SSA form. The CFG must already be normalized
// (critical edges split); Build does not change the block graph. It
// returns the dominator tree it computed, which callers typically reuse.
func Build(f *ir.Function) (*cfg.DomTree, error) {
	cfg.RemoveUnreachable(f)
	dom := cfg.BuildDomTree(f)
	if err := BuildWith(f, dom, cfg.BuildDomFrontiers(dom)); err != nil {
		return nil, err
	}
	return dom, nil
}

// BuildWith converts f to SSA form using prebuilt analyses. dom and df
// must describe f's current CFG (the pipeline supplies them from its
// analysis cache); unreachable blocks must already be removed.
func BuildWith(f *ir.Function, dom *cfg.DomTree, df cfg.DomFrontiers) error {
	b := &builder{f: f, dom: dom, df: df}
	if err := b.run(); err != nil {
		return err
	}
	PruneTrivialPhis(f)
	return nil
}

type builder struct {
	f   *ir.Function
	dom *cfg.DomTree
	df  cfg.DomFrontiers

	// regStacks[orig] is the renaming stack of the pre-SSA register
	// orig; resStacks[base] is the version stack of base resource base.
	regStacks map[ir.RegID][]ir.RegID
	resStacks map[ir.ResourceID][]ir.ResourceID

	// phiOrig records, for inserted phis, which original name they
	// merge, so operand filling and renaming know what to push.
	phiOrigReg map[*ir.Instr]ir.RegID
	phiOrigRes map[*ir.Instr]ir.ResourceID
}

func (b *builder) run() error {
	f := b.f

	// Collect definition sites, densely indexed by register and resource
	// number so the phi-placement loops below iterate in ID order with no
	// map traffic (and no map iteration order anywhere near the output).
	regDefs := make([][]*ir.Block, f.NumRegs)
	resDefs := make([][]*ir.Block, len(f.Resources))
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.HasDst() {
				regDefs[in.Dst] = appendUnique(regDefs[in.Dst], blk)
			}
			for _, d := range in.MemDefs {
				resDefs[d.Res] = appendUnique(resDefs[d.Res], blk)
			}
		}
	}

	// Place phis at iterated dominance frontiers. Spurious phis merging
	// a single reaching definition are cleaned by PruneTrivialPhis.
	b.phiOrigReg = make(map[*ir.Instr]ir.RegID)
	b.phiOrigRes = make(map[*ir.Instr]ir.ResourceID)
	for r := 0; r < f.NumRegs; r++ {
		reg := ir.RegID(r)
		defs := regDefs[reg]
		if len(defs) == 0 {
			continue
		}
		for _, jb := range cfg.IteratedDF(b.df, defs) {
			phi := ir.NewInstr(ir.OpPhi, reg, make([]ir.Value, len(jb.Preds))...)
			jb.InsertPhi(phi)
			b.phiOrigReg[phi] = reg
		}
	}
	for id := 0; id < len(f.Resources); id++ {
		base := ir.ResourceID(id)
		defs := resDefs[base]
		if len(defs) == 0 {
			continue
		}
		for _, jb := range cfg.IteratedDF(b.df, defs) {
			phi := ir.NewInstr(ir.OpMemPhi, ir.NoReg)
			phi.MemDefs = []ir.MemRef{{Res: base}}
			phi.MemUses = make([]ir.MemRef, len(jb.Preds))
			for i := range phi.MemUses {
				phi.MemUses[i] = ir.MemRef{Res: ir.NoResource}
			}
			jb.InsertPhi(phi)
			b.phiOrigRes[phi] = base
		}
	}

	// Rename along the dominator tree.
	b.regStacks = make(map[ir.RegID][]ir.RegID)
	b.resStacks = make(map[ir.ResourceID][]ir.ResourceID)
	for _, p := range f.Params {
		// Parameters are their own first SSA version.
		b.regStacks[p] = []ir.RegID{p}
	}
	if err := b.rename(f.Entry()); err != nil {
		return err
	}
	return nil
}

func appendUnique(bs []*ir.Block, b *ir.Block) []*ir.Block {
	for _, x := range bs {
		if x == b {
			return bs
		}
	}
	return append(bs, b)
}

func (b *builder) topReg(orig ir.RegID) (ir.RegID, bool) {
	st := b.regStacks[orig]
	if len(st) == 0 {
		return ir.NoReg, false
	}
	return st[len(st)-1], true
}

func (b *builder) topRes(base ir.ResourceID) ir.ResourceID {
	st := b.resStacks[base]
	if len(st) == 0 {
		return base // version 0: live-in value
	}
	return st[len(st)-1]
}

func (b *builder) rename(blk *ir.Block) error {
	f := b.f
	var pushedRegs []ir.RegID
	var pushedRes []ir.ResourceID

	pushReg := func(orig ir.RegID, name ir.RegID) {
		b.regStacks[orig] = append(b.regStacks[orig], name)
		pushedRegs = append(pushedRegs, orig)
	}
	pushRes := func(base ir.ResourceID, ver ir.ResourceID) {
		b.resStacks[base] = append(b.resStacks[base], ver)
		pushedRes = append(pushedRes, base)
	}

	for _, in := range blk.Instrs {
		switch in.Op {
		case ir.OpPhi:
			orig := b.phiOrigReg[in]
			nr := f.NewReg(f.RegName(orig))
			in.Dst = nr
			pushReg(orig, nr)
			continue
		case ir.OpMemPhi:
			base := b.phiOrigRes[in]
			nv := f.NewVersion(base)
			in.MemDefs[0].Res = nv.ID
			pushRes(base, nv.ID)
			continue
		}
		// Ordinary instruction: rewrite register uses.
		for i, a := range in.Args {
			if a.IsConst() {
				continue
			}
			cur, ok := b.topReg(a.Reg())
			if !ok {
				return fmt.Errorf("ssa: %s: register r%d used before definition in %v",
					f.Name, a.Reg(), blk)
			}
			in.Args[i] = ir.RegVal(cur)
		}
		// Rewrite memory uses to current versions.
		for i := range in.MemUses {
			in.MemUses[i].Res = b.topRes(in.MemUses[i].Res)
		}
		// Rewrite register definition.
		if in.HasDst() {
			orig := in.Dst
			nr := f.NewReg(f.RegName(orig))
			in.Dst = nr
			pushReg(orig, nr)
		}
		// Rewrite memory definitions to fresh versions.
		for i := range in.MemDefs {
			base := in.MemDefs[i].Res
			nv := f.NewVersion(base)
			in.MemDefs[i].Res = nv.ID
			pushRes(f.BaseOf(nv.ID).ID, nv.ID)
		}
	}

	// Fill phi operands in successors.
	for _, s := range blk.Succs {
		pi := s.PredIndex(blk)
		for _, phi := range s.Phis() {
			switch phi.Op {
			case ir.OpPhi:
				orig, ok := b.phiOrigReg[phi]
				if !ok {
					continue // pre-existing phi (none expected)
				}
				if cur, ok := b.topReg(orig); ok {
					phi.Args[pi] = ir.RegVal(cur)
				} else {
					// The merged variable is undefined along this path;
					// its value can never be observed, so any operand
					// is sound.
					phi.Args[pi] = ir.ConstVal(0)
				}
			case ir.OpMemPhi:
				base, ok := b.phiOrigRes[phi]
				if !ok {
					continue
				}
				phi.MemUses[pi] = ir.MemRef{Res: b.topRes(base)}
			}
		}
	}

	for _, c := range b.dom.Children(blk) {
		if err := b.rename(c); err != nil {
			return err
		}
	}

	for _, orig := range pushedRegs {
		st := b.regStacks[orig]
		b.regStacks[orig] = st[:len(st)-1]
	}
	for _, base := range pushedRes {
		st := b.resStacks[base]
		b.resStacks[base] = st[:len(st)-1]
	}
	return nil
}

package ssa_test

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/source"
	"repro/internal/ssa"
	"repro/internal/workload"
)

// benchFuncs compiles a large generated program and returns its
// normalized functions, ready for SSA construction.
func benchFuncs(b *testing.B) []*ir.Function {
	b.Helper()
	gen, err := workload.SizedGenConfig(13, "large")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := source.Compile(workload.Generate(gen))
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	if err := alias.Analyze(prog); err != nil {
		b.Fatalf("Analyze: %v", err)
	}
	for _, f := range prog.Funcs {
		if _, err := cfg.Normalize(f); err != nil {
			b.Fatalf("Normalize(%s): %v", f.Name, err)
		}
	}
	return prog.Funcs
}

// BenchmarkBuild measures whole-program SSA construction. Build mutates
// the function, so each iteration works on fresh clones; the clone cost
// is included on both sides of any before/after comparison and the
// numbers remain comparable.
func BenchmarkBuild(b *testing.B) {
	funcs := benchFuncs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range funcs {
			g := f.Clone()
			if _, err := ssa.Build(g); err != nil {
				b.Fatalf("Build(%s): %v", g.Name, err)
			}
		}
	}
}

package ssa

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// UpdateForClonedResources is the paper's incremental SSA update for
// cloned definitions (its updateSSAForClonedResources, Figure 11).
//
// oldRes is a set of resource versions already under SSA form, all
// renamed from the same base name; cloned is a set of new versions of
// the same base whose defining instructions have already been inserted
// into the code stream (for register promotion these are the
// compensation stores; loop unrolling would pass the duplicated
// definitions). The update:
//
//  1. collects the definition blocks of old and cloned resources,
//     computes their iterated dominance frontier in one batch, and
//     places a fresh memphi at each frontier block;
//  2. renames every use of an old resource to its reaching definition,
//     found by walking backward in the block and then up the dominator
//     tree;
//  3. fills the operands of phis that uses made live, propagating
//     liveness through newly reached phis (a phi operand counts as a
//     use at the end of its predecessor);
//  4. deletes every definition left without uses — dead old stores,
//     dead cloned stores, and redundant inserted phis — iterating so
//     cascading deadness is also removed. Only direct stores and
//     memphis are deleted; aliased definitions (calls, pointer stores)
//     merely keep their dead version.
//
// The batch IDF over all definition sites is what makes this cheaper
// than updating one definition at a time as in Choi–Sarkar–Schonberg;
// step 4 is why the paper can promise that cloning introduces no dead
// code.
//
// It returns the set of memphi instructions it inserted and left alive.
func UpdateForClonedResources(f *ir.Function, dom *cfg.DomTree, df cfg.DomFrontiers, oldRes, cloned []ir.ResourceID) ([]*ir.Instr, error) {
	if len(oldRes) == 0 {
		return nil, fmt.Errorf("ssa: update with empty oldRes set")
	}
	base := f.BaseOf(oldRes[0]).ID
	for _, r := range append(append([]ir.ResourceID(nil), oldRes...), cloned...) {
		if f.BaseOf(r).ID != base {
			return nil, fmt.Errorf("ssa: update resources span different bases (%s vs %s)",
				f.Res(base), f.BaseOf(r))
		}
	}

	u := &updater{
		f:    f,
		dom:  dom,
		base: base,
		old:  make(map[ir.ResourceID]bool, len(oldRes)),
		all:  make(map[ir.ResourceID]bool, len(oldRes)+len(cloned)),
	}
	for _, r := range oldRes {
		u.old[r] = true
		u.all[r] = true
	}
	for _, r := range cloned {
		u.all[r] = true
	}

	// Step 1: batch phi placement at the IDF of every definition block.
	var defBlocks []*ir.Block
	seen := make(map[*ir.Block]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, d := range in.MemDefs {
				if u.all[d.Res] && !seen[b] {
					seen[b] = true
					defBlocks = append(defBlocks, b)
				}
			}
		}
	}
	newPhis := make(map[*ir.Instr]bool)
	for _, jb := range cfg.IteratedDF(df, defBlocks) {
		if dom.RPOIndex(jb) < 0 {
			continue
		}
		target := f.NewVersion(base)
		phi := ir.NewInstr(ir.OpMemPhi, ir.NoReg)
		phi.MemDefs = []ir.MemRef{{Res: target.ID}}
		phi.MemUses = make([]ir.MemRef, len(jb.Preds))
		for i := range phi.MemUses {
			phi.MemUses[i] = ir.MemRef{Res: base} // placeholder until filled
		}
		jb.InsertPhi(phi)
		newPhis[phi] = true
		u.all[target.ID] = true
	}
	u.indexDefs()

	// Step 2: rename uses of old resources to their reaching defs.
	live := make(map[*ir.Instr]bool)
	var work []*ir.Instr
	enqueue := func(def ir.ResourceID) {
		if phi := u.defInstr[def]; phi != nil && newPhis[phi] && !live[phi] {
			live[phi] = true
			work = append(work, phi)
		}
	}
	for _, b := range f.Blocks {
		if dom.RPOIndex(b) < 0 {
			continue
		}
		for idx, in := range b.Instrs {
			if newPhis[in] {
				continue // operands are filled in step 3
			}
			for i := range in.MemUses {
				if !u.old[in.MemUses[i].Res] {
					continue
				}
				var rdef ir.ResourceID
				if in.Op == ir.OpMemPhi {
					pred := b.Preds[i]
					rdef = u.reachingDef(pred, len(pred.Instrs))
				} else {
					rdef = u.reachingDef(b, idx)
				}
				if rdef != in.MemUses[i].Res {
					in.MemUses[i].Res = rdef
				}
				enqueue(rdef)
			}
		}
	}

	// Step 3: fill the operands of live new phis, propagating liveness.
	for len(work) > 0 {
		phi := work[len(work)-1]
		work = work[:len(work)-1]
		b := phi.Parent
		for pi, pred := range b.Preds {
			rdef := u.reachingDefExcluding(pred, len(pred.Instrs), phi)
			phi.MemUses[pi].Res = rdef
			enqueue(rdef)
		}
	}

	// Unreached new phis are dead; remove them before counting uses so
	// their placeholder operands do not hold other defs alive.
	var alive []*ir.Instr
	for phi := range newPhis {
		if !live[phi] {
			delete(u.all, phi.MemDefs[0].Res)
			phi.Parent.Remove(phi)
		}
	}

	// Step 4: delete definitions without uses. A plain use count cannot
	// retire cycles of mutually-referencing dead phis (a loop header phi
	// and a join phi feeding each other), so liveness is computed by
	// mark and sweep: a version is live when a non-phi instruction uses
	// it, or when a memphi whose own target is live uses it. The sweep
	// must see every memphi in the function — phis outside the updated
	// family (for example an enclosing loop's header phi) legitimately
	// keep cloned definitions alive.
	u.indexDefs()
	allPhiDefs := make(map[ir.ResourceID]*ir.Instr)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpMemPhi {
				allPhiDefs[in.MemDefs[0].Res] = in
			}
		}
	}
	liveRes := make(map[ir.ResourceID]bool)
	var resWork []ir.ResourceID
	markRes := func(r ir.ResourceID) {
		if !liveRes[r] {
			liveRes[r] = true
			resWork = append(resWork, r)
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpMemPhi {
				continue
			}
			for _, use := range in.MemUses {
				markRes(use.Res)
			}
		}
	}
	for len(resWork) > 0 {
		r := resWork[len(resWork)-1]
		resWork = resWork[:len(resWork)-1]
		if phi := allPhiDefs[r]; phi != nil {
			for _, use := range phi.MemUses {
				markRes(use.Res)
			}
		}
	}
	for res := range u.all {
		if liveRes[res] {
			continue
		}
		in := u.defInstr[res]
		if in == nil || in.Parent == nil {
			continue
		}
		switch in.Op {
		case ir.OpMemPhi, ir.OpStore:
			in.Parent.Remove(in)
			delete(newPhis, in)
		}
	}
	for phi := range newPhis {
		if phi.Parent != nil && live[phi] {
			alive = append(alive, phi)
		}
	}
	return alive, nil
}

type updater struct {
	f    *ir.Function
	dom  *cfg.DomTree
	base ir.ResourceID
	old  map[ir.ResourceID]bool
	all  map[ir.ResourceID]bool

	defInstr map[ir.ResourceID]*ir.Instr
}

func (u *updater) indexDefs() {
	u.defInstr = make(map[ir.ResourceID]*ir.Instr)
	for _, b := range u.f.Blocks {
		for _, in := range b.Instrs {
			for _, d := range in.MemDefs {
				if u.all[d.Res] {
					u.defInstr[d.Res] = in
				}
			}
		}
	}
}

// reachingDef is the paper's computeReachingDef: the nearest definition
// of any resource in the tracked set that precedes position (blk, idx),
// found by scanning backward in the block and then walking the dominator
// tree toward the root. If no definition reaches, the base's live-in
// version 0 is returned.
func (u *updater) reachingDef(blk *ir.Block, idx int) ir.ResourceID {
	return u.reachingDefExcluding(blk, idx, nil)
}

// reachingDefExcluding is reachingDef but skips the definition made by
// skip. Filling a phi's operand from a predecessor must not see the
// phi itself (possible when the predecessor is the phi's own block in a
// self-loop).
func (u *updater) reachingDefExcluding(blk *ir.Block, idx int, skip *ir.Instr) ir.ResourceID {
	for b := blk; ; {
		instrs := b.Instrs
		limit := len(instrs)
		if b == blk {
			limit = idx
		}
		for i := limit - 1; i >= 0; i-- {
			in := instrs[i]
			if in == skip {
				continue
			}
			for _, d := range in.MemDefs {
				if u.all[d.Res] {
					return d.Res
				}
			}
		}
		next := u.dom.Idom(b)
		if next == nil || next == b {
			return u.base // live-in version 0
		}
		b = next
	}
}

package ssa

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/source"
)

// buildSSA compiles mini-C, runs alias analysis, normalizes, and builds
// SSA for every function.
func buildSSA(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := source.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for _, f := range prog.Funcs {
		if _, err := cfg.Normalize(f); err != nil {
			t.Fatalf("Normalize(%s): %v", f.Name, err)
		}
		if _, err := Build(f); err != nil {
			t.Fatalf("Build(%s): %v", f.Name, err)
		}
		if err := VerifyDominance(f); err != nil {
			t.Fatalf("VerifyDominance(%s): %v\n%s", f.Name, err, f)
		}
	}
	return prog
}

func countOp(f *ir.Function, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestBuildStraightLine(t *testing.T) {
	prog := buildSSA(t, `
void main() {
	int a = 1;
	a = a + 2;
	a = a * 3;
	print(a);
}
`)
	main := prog.Func("main")
	if n := countOp(main, ir.OpPhi); n != 0 {
		t.Errorf("straight-line code has %d phis, want 0", n)
	}
}

func TestBuildIfElsePhi(t *testing.T) {
	prog := buildSSA(t, `
int c;
void main() {
	int a = 0;
	if (c > 0) { a = 1; } else { a = 2; }
	print(a);
}
`)
	main := prog.Func("main")
	if n := countOp(main, ir.OpPhi); n != 1 {
		t.Errorf("if/else merge has %d reg phis, want 1\n%s", n, main)
	}
}

func TestBuildLoopMemPhi(t *testing.T) {
	// The first loop of the paper's Figure 1: x is loaded and stored in
	// every iteration, so the loop header needs a memphi for x merging
	// the preheader value with the back-edge store.
	prog := buildSSA(t, `
int x;
void main() {
	int i;
	for (i = 0; i < 100; i++) x++;
}
`)
	main := prog.Func("main")
	var memphi *ir.Instr
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpMemPhi && main.Res(in.MemDefs[0].Res).Name == "x" {
				memphi = in
			}
		}
	}
	if memphi == nil {
		t.Fatalf("no memphi for x:\n%s", main)
	}
	if len(memphi.MemUses) != 2 {
		t.Fatalf("memphi arity = %d, want 2", len(memphi.MemUses))
	}
	vers := map[int]bool{}
	for _, u := range memphi.MemUses {
		vers[main.Res(u.Res).Version] = true
	}
	if len(vers) != 2 {
		t.Errorf("memphi merges one version twice: %v", vers)
	}
}

func TestBuildLoadUsesStoreVersion(t *testing.T) {
	prog := buildSSA(t, `
int x;
void main() {
	x = 5;
	print(x);
}
`)
	main := prog.Func("main")
	var st, ld *ir.Instr
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore {
				st = in
			}
			if in.Op == ir.OpLoad {
				ld = in
			}
		}
	}
	if st == nil || ld == nil {
		t.Fatal("missing store/load")
	}
	if ld.MemUses[0].Res != st.MemDefs[0].Res {
		t.Errorf("load uses %s but store defines %s",
			main.Res(ld.MemUses[0].Res), main.Res(st.MemDefs[0].Res))
	}
	if main.Res(st.MemDefs[0].Res).Version == 0 {
		t.Error("store must define a fresh version, not version 0")
	}
}

func TestBuildCallCreatesNewVersions(t *testing.T) {
	prog := buildSSA(t, `
int x;
void foo() { x++; }
void main() {
	x = 1;
	foo();
	print(x);
}
`)
	main := prog.Func("main")
	var st, call, ld *ir.Instr
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				st = in
			case ir.OpCall:
				call = in
			case ir.OpLoad:
				ld = in
			}
		}
	}
	xStore := st.MemDefs[0].Res
	xCall := memDefNamed(main, call, "x")
	if memUseNamed(main, call, "x") != xStore {
		t.Errorf("call should use the stored version of x")
	}
	if ld.MemUses[0].Res != xCall {
		t.Errorf("load after call must use the call's version of x")
	}
}

// memDefNamed returns the resource version the instruction defines for
// the named base, or NoResource.
func memDefNamed(f *ir.Function, in *ir.Instr, name string) ir.ResourceID {
	for _, d := range in.MemDefs {
		if f.Res(d.Res).Name == name {
			return d.Res
		}
	}
	return ir.NoResource
}

// memUseNamed returns the resource version the instruction uses for the
// named base, or NoResource.
func memUseNamed(f *ir.Function, in *ir.Instr, name string) ir.ResourceID {
	for _, u := range in.MemUses {
		if f.Res(u.Res).Name == name {
			return u.Res
		}
	}
	return ir.NoResource
}

func TestPruneTrivialPhis(t *testing.T) {
	// A diamond where both arms leave the variable untouched produces a
	// trivial phi under pessimistic placement; Build must have pruned it.
	prog := buildSSA(t, `
int c;
void main() {
	int a = 7;
	if (c) { print(1); } else { print(2); }
	print(a);
}
`)
	main := prog.Func("main")
	if n := countOp(main, ir.OpPhi); n != 0 {
		t.Errorf("trivial phi survived: %d phis\n%s", n, main)
	}
}

func TestDestructRemovesPhisAndVersions(t *testing.T) {
	prog := buildSSA(t, `
int x;
int c;
void main() {
	int a = 0;
	if (c > 0) { a = 1; x = 2; } else { a = 2; x = 3; }
	print(a + x);
}
`)
	main := prog.Func("main")
	Destruct(main)
	if n := countOp(main, ir.OpPhi) + countOp(main, ir.OpMemPhi); n != 0 {
		t.Fatalf("%d phis remain after Destruct", n)
	}
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			for _, u := range in.MemUses {
				if main.Res(u.Res).Version != 0 {
					t.Fatalf("versioned resource %s survived Destruct", main.Res(u.Res))
				}
			}
			for _, d := range in.MemDefs {
				if main.Res(d.Res).Version != 0 {
					t.Fatalf("versioned resource %s survived Destruct", main.Res(d.Res))
				}
			}
		}
	}
	if err := main.Verify(ir.VerifyCFG); err != nil {
		t.Fatal(err)
	}
}

func TestDestructBreaksSwapCycle(t *testing.T) {
	// Construct a phi swap by hand:
	//   header: a = phi(1, b'), b = phi(2, a')  with a'=b, b'=a in body
	// i.e. each iteration swaps a and b. Destruct must introduce a temp.
	p := ir.NewProgram()
	f := ir.NewFunction(p, "swap")
	n := f.NewReg("n")
	f.Params = []ir.RegID{n}
	entry, header, body, exit := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()

	a := f.NewReg("a")
	b := f.NewReg("b")
	i := f.NewReg("i")
	i2 := f.NewReg("i2")
	cond := f.NewReg("cond")

	entry.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
	ir.AddEdge(entry, header)

	phiA := ir.NewInstr(ir.OpPhi, a, ir.ConstVal(1), ir.RegVal(b))
	phiB := ir.NewInstr(ir.OpPhi, b, ir.ConstVal(2), ir.RegVal(a))
	phiI := ir.NewInstr(ir.OpPhi, i, ir.ConstVal(0), ir.RegVal(i2))
	header.Append(phiA)
	header.Append(phiB)
	header.Append(phiI)
	header.Append(ir.NewInstr(ir.OpLt, cond, ir.RegVal(i), ir.RegVal(n)))
	header.Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(cond)))
	ir.AddEdge(header, body)
	ir.AddEdge(header, exit)

	body.Append(ir.NewInstr(ir.OpAdd, i2, ir.RegVal(i), ir.ConstVal(1)))
	body.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
	ir.AddEdge(body, header)

	exit.Append(ir.NewInstr(ir.OpPrint, ir.NoReg, ir.RegVal(a)))
	exit.Append(ir.NewInstr(ir.OpRet, ir.NoReg))

	if err := VerifyDominance(f); err != nil {
		t.Fatalf("input not valid SSA: %v", err)
	}
	Destruct(f)
	if err := f.Verify(ir.VerifyCFG); err != nil {
		t.Fatal(err)
	}
	// The body edge's parallel copy {a<-b, b<-a} needs a temporary:
	// there must be at least 3 copies at the end of body.
	copies := 0
	for _, in := range body.Instrs {
		if in.Op == ir.OpCopy {
			copies++
		}
	}
	if copies < 3 {
		t.Errorf("swap cycle broken with %d copies, want >= 3 (temp needed)\n%s", copies, f)
	}
}

func TestBuildWholeProgramsVerify(t *testing.T) {
	srcs := map[string]string{
		"nested loops": `
int g;
void main() {
	int i; int j;
	for (i = 0; i < 10; i++) {
		for (j = 0; j < 10; j++) {
			g = g + i * j;
		}
	}
	print(g);
}`,
		"calls and pointers": `
int x; int y;
int addx(int k) { x += k; return x; }
void main() {
	int* p = &y;
	int i;
	for (i = 0; i < 5; i++) {
		*p = addx(i);
	}
	print(x + y);
}`,
		"breaks and continues": `
int g;
void main() {
	int i;
	for (i = 0; i < 100; i++) {
		if (i % 3 == 0) continue;
		if (i > 50) break;
		g += i;
	}
	print(g);
}`,
		"structs and arrays": `
struct acc { int lo; int hi; };
struct acc a;
int tab[16];
void main() {
	int i;
	for (i = 0; i < 16; i++) {
		tab[i] = i * i;
		if (tab[i] < 100) { a.lo += tab[i]; } else { a.hi += tab[i]; }
	}
	print(a.lo); print(a.hi);
}`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			buildSSA(t, src)
		})
	}
}

package ssa

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// figure9 builds the CFG of the paper's Example 2 (Figures 9 and 10):
//
//	b0 (entry) -> b1; b1 -> b2, b3; b2 -> b4, b5; b3 -> b5;
//	b4 -> b6; b5 -> b6; b6 -> b1 (back edge), b6 -> b7 (exit)
//
// Global x has its value defined in b1 (version x.1, the paper's x0)
// and used in b3, b4, and b5. The test then clones two stores — one in
// b2 (x.2, the paper's x1) and one in b3 before its use (x.3, the
// paper's x2) — and runs the incremental update.
type figure9 struct {
	f                          *ir.Function
	x                          ir.ResourceID // base
	v1, v2, v3                 ir.ResourceID
	b                          []*ir.Block
	defB1, useB3, useB4, useB5 *ir.Instr
	cloneB2, cloneB3           *ir.Instr
}

func buildFigure9(t *testing.T) *figure9 {
	t.Helper()
	p := ir.NewProgram()
	g := p.AddGlobal("x", 1, false, nil)
	f := ir.NewFunction(p, "fig9")
	base := f.AddResource("x", ir.ResScalar, ir.GlobalLoc(g, 0))

	fg := &figure9{f: f, x: base.ID}
	for i := 0; i < 8; i++ {
		fg.b = append(fg.b, f.NewBlock())
	}
	b := fg.b
	edge := ir.AddEdge
	edge(b[0], b[1])
	edge(b[1], b[2])
	edge(b[1], b[3])
	edge(b[2], b[4])
	edge(b[2], b[5]) // the paper's deliberately unsplit edge
	edge(b[3], b[5])
	edge(b[4], b[6])
	edge(b[5], b[6])
	edge(b[6], b[1])
	edge(b[6], b[7])

	cond := f.NewReg("c")
	f.Params = []ir.RegID{cond}

	b[0].Append(ir.NewInstr(ir.OpJmp, ir.NoReg))

	v1 := f.NewVersion(base.ID)
	fg.v1 = v1.ID
	fg.defB1 = ir.NewInstr(ir.OpStore, ir.NoReg, ir.ConstVal(10))
	fg.defB1.Loc = ir.GlobalLoc(g, 0)
	fg.defB1.MemDefs = []ir.MemRef{{Res: v1.ID}}
	b[1].Append(fg.defB1)
	b[1].Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(cond)))

	b[2].Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(cond)))

	newLoad := func(use ir.ResourceID) *ir.Instr {
		r := f.NewReg("")
		ld := ir.NewInstr(ir.OpLoad, r)
		ld.Loc = ir.GlobalLoc(g, 0)
		ld.MemUses = []ir.MemRef{{Res: use}}
		return ld
	}
	fg.useB3 = newLoad(v1.ID)
	b[3].Append(fg.useB3)
	b[3].Append(ir.NewInstr(ir.OpJmp, ir.NoReg))

	fg.useB4 = newLoad(v1.ID)
	b[4].Append(fg.useB4)
	b[4].Append(ir.NewInstr(ir.OpJmp, ir.NoReg))

	fg.useB5 = newLoad(v1.ID)
	b[5].Append(fg.useB5)
	b[5].Append(ir.NewInstr(ir.OpJmp, ir.NoReg))

	b[6].Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(cond)))
	ret := ir.NewInstr(ir.OpRet, ir.NoReg)
	b[7].Append(ret)

	if err := f.Verify(ir.VerifySSA); err != nil {
		t.Fatalf("figure 9 base program invalid: %v", err)
	}
	return fg
}

// cloneStores inserts the two cloned definitions of x: one at the end
// of b2 and one in b3 before its use.
func (fg *figure9) cloneStores(t *testing.T) {
	t.Helper()
	f := fg.f
	g := f.Res(fg.x).Loc.Global

	v2 := f.NewVersion(fg.x)
	fg.v2 = v2.ID
	fg.cloneB2 = ir.NewInstr(ir.OpStore, ir.NoReg, ir.ConstVal(20))
	fg.cloneB2.Loc = ir.GlobalLoc(g, 0)
	fg.cloneB2.MemDefs = []ir.MemRef{{Res: v2.ID}}
	fg.b[2].InsertBeforeTerm(fg.cloneB2)

	v3 := f.NewVersion(fg.x)
	fg.v3 = v3.ID
	fg.cloneB3 = ir.NewInstr(ir.OpStore, ir.NoReg, ir.ConstVal(30))
	fg.cloneB3.Loc = ir.GlobalLoc(g, 0)
	fg.cloneB3.MemDefs = []ir.MemRef{{Res: v3.ID}}
	fg.b[3].InsertBefore(fg.cloneB3, fg.useB3)
}

func TestUpdateFigure9(t *testing.T) {
	fg := buildFigure9(t)
	fg.cloneStores(t)
	f := fg.f

	dom := cfg.BuildDomTree(f)
	df := cfg.BuildDomFrontiers(dom)
	livePhis, err := UpdateForClonedResources(f, dom, df,
		[]ir.ResourceID{fg.v1}, []ir.ResourceID{fg.v2, fg.v3})
	if err != nil {
		t.Fatal(err)
	}

	// The use in b3 sits after the cloned store there: renamed to v3
	// (the paper's x2).
	if got := fg.useB3.MemUses[0].Res; got != fg.v3 {
		t.Errorf("use in b3 renamed to %s, want %s", f.Res(got), f.Res(fg.v3))
	}
	// The use in b4 is reached only by the b2 clone: renamed to v2 (x1).
	if got := fg.useB4.MemUses[0].Res; got != fg.v2 {
		t.Errorf("use in b4 renamed to %s, want %s", f.Res(got), f.Res(fg.v2))
	}
	// The use in b5 joins b2's and b3's clones: a phi target (x3).
	gotB5 := fg.useB5.MemUses[0].Res
	var phiB5 *ir.Instr
	for _, in := range fg.b[5].Phis() {
		if in.Op == ir.OpMemPhi {
			phiB5 = in
		}
	}
	if phiB5 == nil {
		t.Fatalf("no memphi in b5:\n%s", f)
	}
	if gotB5 != phiB5.MemDefs[0].Res {
		t.Errorf("use in b5 = %s, want the b5 phi target %s",
			f.Res(gotB5), f.Res(phiB5.MemDefs[0].Res))
	}
	ops := map[ir.ResourceID]bool{}
	for _, u := range phiB5.MemUses {
		ops[u.Res] = true
	}
	if !ops[fg.v2] || !ops[fg.v3] || len(ops) != 2 {
		t.Errorf("b5 phi merges %v, want {%s, %s}", ops, f.Res(fg.v2), f.Res(fg.v3))
	}

	// The phis at b1 and b6 (also in the IDF) are dead and must have
	// been removed, along with the original store in b1 whose version
	// no longer has uses — the cascade the paper describes.
	for _, blk := range []*ir.Block{fg.b[1], fg.b[6]} {
		for _, in := range blk.Phis() {
			if in.Op == ir.OpMemPhi {
				t.Errorf("dead memphi survived in %v", blk)
			}
		}
	}
	if fg.defB1.Parent != nil {
		t.Error("original store in b1 should have been deleted (its version has no uses)")
	}

	// Exactly one live phi (b5) was reported.
	if len(livePhis) != 1 || livePhis[0] != phiB5 {
		t.Errorf("live phis = %v, want [b5 phi]", livePhis)
	}

	if err := f.Verify(ir.VerifySSA); err != nil {
		t.Fatalf("post-update SSA invalid: %v\n%s", err, f)
	}
	if err := VerifyDominance(f); err != nil {
		t.Fatalf("post-update dominance: %v\n%s", err, f)
	}
}

func TestUpdateKeepsOldDefWithRemainingUses(t *testing.T) {
	// Same CFG, but with an extra use of x.1 in b1 right after its def
	// (before any clone can reach it) — the old def must survive.
	fg := buildFigure9(t)
	f := fg.f
	g := f.Res(fg.x).Loc.Global
	r := f.NewReg("")
	keep := ir.NewInstr(ir.OpLoad, r)
	keep.Loc = ir.GlobalLoc(g, 0)
	keep.MemUses = []ir.MemRef{{Res: fg.v1}}
	fg.b[1].InsertBefore(keep, fg.b[1].Term())
	fg.cloneStores(t)

	dom := cfg.BuildDomTree(f)
	df := cfg.BuildDomFrontiers(dom)
	if _, err := UpdateForClonedResources(f, dom, df,
		[]ir.ResourceID{fg.v1}, []ir.ResourceID{fg.v2, fg.v3}); err != nil {
		t.Fatal(err)
	}
	if fg.defB1.Parent == nil {
		t.Error("store in b1 deleted despite a live use")
	}
	if keep.MemUses[0].Res != fg.v1 {
		t.Errorf("use adjacent to def renamed to %s, want unchanged %s",
			f.Res(keep.MemUses[0].Res), f.Res(fg.v1))
	}
	if err := f.Verify(ir.VerifySSA); err != nil {
		t.Fatalf("post-update SSA invalid: %v", err)
	}
}

func TestUpdateSingleClone(t *testing.T) {
	// Minimal case: def at entry, clone on one arm of a diamond, use at
	// the join. The join needs a phi merging old and new — the paper's
	// "both a new definition and an old one can reach a use" case.
	p := ir.NewProgram()
	g := p.AddGlobal("x", 1, false, nil)
	f := ir.NewFunction(p, "m")
	base := f.AddResource("x", ir.ResScalar, ir.GlobalLoc(g, 0))
	cond := f.NewReg("c")
	f.Params = []ir.RegID{cond}

	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	ir.AddEdge(b0, b1)
	ir.AddEdge(b0, b2)
	ir.AddEdge(b1, b3)
	ir.AddEdge(b2, b3)

	v1 := f.NewVersion(base.ID)
	def := ir.NewInstr(ir.OpStore, ir.NoReg, ir.ConstVal(1))
	def.Loc = ir.GlobalLoc(g, 0)
	def.MemDefs = []ir.MemRef{{Res: v1.ID}}
	b0.Append(def)
	b0.Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(cond)))
	b1.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
	b2.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))

	r := f.NewReg("")
	use := ir.NewInstr(ir.OpLoad, r)
	use.Loc = ir.GlobalLoc(g, 0)
	use.MemUses = []ir.MemRef{{Res: v1.ID}}
	b3.Append(use)
	b3.Append(ir.NewInstr(ir.OpRet, ir.NoReg))

	v2 := f.NewVersion(base.ID)
	clone := ir.NewInstr(ir.OpStore, ir.NoReg, ir.ConstVal(2))
	clone.Loc = ir.GlobalLoc(g, 0)
	clone.MemDefs = []ir.MemRef{{Res: v2.ID}}
	b1.InsertBeforeTerm(clone)

	dom := cfg.BuildDomTree(f)
	df := cfg.BuildDomFrontiers(dom)
	live, err := UpdateForClonedResources(f, dom, df,
		[]ir.ResourceID{v1.ID}, []ir.ResourceID{v2.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 1 {
		t.Fatalf("want exactly one live phi, got %d\n%s", len(live), f)
	}
	phi := live[0]
	if phi.Parent != b3 {
		t.Errorf("phi placed in %v, want b3", phi.Parent)
	}
	if use.MemUses[0].Res != phi.MemDefs[0].Res {
		t.Error("join use not renamed to phi target")
	}
	ops := map[ir.ResourceID]bool{}
	for _, u := range phi.MemUses {
		ops[u.Res] = true
	}
	if !ops[v1.ID] || !ops[v2.ID] {
		t.Errorf("phi must merge old %s and cloned %s, got %v", v1, v2, ops)
	}
	// def still has a use (through the phi operand) and must survive.
	if def.Parent == nil {
		t.Error("old def deleted although reachable through the phi")
	}
	if err := VerifyDominance(f); err != nil {
		t.Fatalf("post-update: %v", err)
	}
}

func TestUpdateRejectsMixedBases(t *testing.T) {
	p := ir.NewProgram()
	gx := p.AddGlobal("x", 1, false, nil)
	gy := p.AddGlobal("y", 1, false, nil)
	f := ir.NewFunction(p, "m")
	bx := f.AddResource("x", ir.ResScalar, ir.GlobalLoc(gx, 0))
	by := f.AddResource("y", ir.ResScalar, ir.GlobalLoc(gy, 0))
	b := f.NewBlock()
	b.Append(ir.NewInstr(ir.OpRet, ir.NoReg))
	dom := cfg.BuildDomTree(f)
	df := cfg.BuildDomFrontiers(dom)
	if _, err := UpdateForClonedResources(f, dom, df,
		[]ir.ResourceID{bx.ID}, []ir.ResourceID{by.ID}); err == nil {
		t.Fatal("mixed-base update accepted, want error")
	}
}

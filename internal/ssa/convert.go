package ssa

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// ConvertResourceToSSA incrementally converts one base resource into
// SSA form — the second use the paper claims for its update algorithm:
// "When a compiler phase adds a new resource with multiple definitions
// and uses to the code stream, the resource can be converted into SSA
// form by using the incremental update algorithm."
//
// The function must otherwise be in SSA form, with every reference to
// base still carrying version 0. ConvertResourceToSSA gives each
// definition a fresh version and then runs UpdateForClonedResources
// with the base as the sole "old" resource and the new versions as the
// clones: uses rename to their reaching definitions, phis appear at the
// iterated dominance frontier, and anything left dead is swept. It
// returns the number of definitions versioned.
func ConvertResourceToSSA(f *ir.Function, dom *cfg.DomTree, df cfg.DomFrontiers, base ir.ResourceID) (int, error) {
	if !f.Res(base).IsBase() {
		return 0, fmt.Errorf("ssa: ConvertResourceToSSA on non-base resource %s", f.Res(base))
	}
	var cloned []ir.ResourceID
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i := range in.MemDefs {
				if in.MemDefs[i].Res != base {
					continue
				}
				v := f.NewVersion(base)
				in.MemDefs[i].Res = v.ID
				cloned = append(cloned, v.ID)
			}
		}
	}
	if len(cloned) == 0 {
		return 0, nil
	}
	if _, err := UpdateForClonedResources(f, dom, df, []ir.ResourceID{base}, cloned); err != nil {
		return 0, err
	}
	return len(cloned), nil
}

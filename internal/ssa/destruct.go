package ssa

import "repro/internal/ir"

// Destruct converts f out of SSA form:
//
//   - register phis become parallel copies at the end of each
//     predecessor, sequentialized with cycle-breaking temporaries;
//   - memory phis are deleted;
//   - every remaining memory reference collapses back to its base
//     resource, implementing the paper's rule that on leaving SSA form
//     "all of the singleton memory resources that refer to the same
//     memory location must be replaced by one unique name".
//
// The CFG must have no critical edges (Normalize guarantees this and no
// pass in this repository creates them), so predecessor-edge copies are
// safe.
func Destruct(f *ir.Function) {
	for _, b := range f.Blocks {
		phis := append([]*ir.Instr(nil), b.Phis()...)
		if len(phis) == 0 {
			continue
		}

		// Gather per-predecessor parallel copy lists from register phis.
		for pi, pred := range b.Preds {
			var dsts []ir.RegID
			var srcs []ir.Value
			for _, phi := range phis {
				if phi.Op != ir.OpPhi {
					continue
				}
				dst, src := phi.Dst, phi.Args[pi]
				if src.IsReg(dst) {
					continue // self-copy
				}
				dsts = append(dsts, dst)
				srcs = append(srcs, src)
			}
			emitParallelCopy(f, pred, dsts, srcs)
		}
		for _, phi := range phis {
			b.Remove(phi)
		}
	}

	// Collapse memory references to base resources.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i := range in.MemUses {
				in.MemUses[i].Res = f.BaseOf(in.MemUses[i].Res).ID
			}
			for i := range in.MemDefs {
				in.MemDefs[i].Res = f.BaseOf(in.MemDefs[i].Res).ID
			}
		}
	}
}

// emitParallelCopy emits the parallel assignment dsts := srcs at the end
// of pred (before its terminator), breaking copy cycles with fresh
// temporaries.
func emitParallelCopy(f *ir.Function, pred *ir.Block, dsts []ir.RegID, srcs []ir.Value) {
	type pair struct {
		dst ir.RegID
		src ir.Value
	}
	var pairs []pair
	for i := range dsts {
		pairs = append(pairs, pair{dsts[i], srcs[i]})
	}
	emit := func(dst ir.RegID, src ir.Value) {
		pred.InsertBeforeTerm(ir.NewInstr(ir.OpCopy, dst, src))
	}

	for len(pairs) > 0 {
		// A pair is ready when its destination is not needed as a source
		// by any other remaining pair.
		progress := false
		for i := 0; i < len(pairs); i++ {
			blocked := false
			for j := range pairs {
				if j != i && pairs[j].src.IsReg(pairs[i].dst) {
					blocked = true
					break
				}
			}
			if !blocked {
				emit(pairs[i].dst, pairs[i].src)
				pairs = append(pairs[:i], pairs[i+1:]...)
				progress = true
				i--
			}
		}
		if progress {
			continue
		}
		// Every remaining destination is also a pending source: a copy
		// cycle. Save one destination in a temp and retarget its readers.
		t := f.NewReg("")
		save := pairs[0].dst
		emit(t, ir.RegVal(save))
		for j := range pairs {
			if pairs[j].src.IsReg(save) {
				pairs[j].src = ir.RegVal(t)
			}
		}
	}
}

package ssa

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// VerifyDominance checks the full SSA discipline of f: single
// definitions (delegated to ir.Verify), plus the requirement that every
// definition dominates each of its uses — with phi operands counted as
// uses at the end of the corresponding predecessor. Memory resource
// versions are checked with the same rule; version 0 resources are
// live-in and treated as defined at entry.
func VerifyDominance(f *ir.Function) error {
	return VerifyDominanceWith(f, cfg.BuildDomTree(f))
}

// VerifyDominanceWith is VerifyDominance with a caller-supplied
// dominator tree, which must describe f's current CFG.
func VerifyDominanceWith(f *ir.Function, dom *cfg.DomTree) error {
	if err := f.Verify(ir.VerifySSA); err != nil {
		return err
	}

	type defSite struct {
		blk *ir.Block
		idx int
	}
	regDef := make(map[ir.RegID]defSite)
	resDef := make(map[ir.ResourceID]defSite)
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.HasDst() {
				regDef[in.Dst] = defSite{b, i}
			}
			for _, d := range in.MemDefs {
				resDef[d.Res] = defSite{b, i}
			}
		}
	}
	for _, p := range f.Params {
		regDef[p] = defSite{f.Entry(), -1}
	}

	// dominatesUse reports whether a definition site dominates a use at
	// (blk, idx); phi uses pass the predecessor end as the use site.
	dominatesUse := func(def defSite, blk *ir.Block, idx int) bool {
		if def.blk == blk {
			return def.idx < idx
		}
		return dom.Dominates(def.blk, blk)
	}

	for _, b := range f.Blocks {
		if dom.RPOIndex(b) < 0 {
			continue // unreachable; not subject to dominance
		}
		for i, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				for pi, a := range in.Args {
					if a.IsConst() {
						continue
					}
					def, ok := regDef[a.Reg()]
					if !ok {
						return fmt.Errorf("%s: phi r%d operand r%d has no definition", f.Name, in.Dst, a.Reg())
					}
					pred := b.Preds[pi]
					if !dominatesUse(def, pred, len(pred.Instrs)) {
						return fmt.Errorf("%s: def of r%d does not dominate phi use via %v", f.Name, a.Reg(), pred)
					}
				}
				continue
			}
			if in.Op == ir.OpMemPhi {
				for pi, u := range in.MemUses {
					if f.Res(u.Res).Version == 0 {
						continue
					}
					def, ok := resDef[u.Res]
					if !ok {
						return fmt.Errorf("%s: memphi operand %s has no definition", f.Name, f.Res(u.Res))
					}
					pred := b.Preds[pi]
					if !dominatesUse(def, pred, len(pred.Instrs)) {
						return fmt.Errorf("%s: def of %s does not dominate memphi use via %v", f.Name, f.Res(u.Res), pred)
					}
				}
				continue
			}
			for _, a := range in.Args {
				if a.IsConst() {
					continue
				}
				def, ok := regDef[a.Reg()]
				if !ok {
					return fmt.Errorf("%s: r%d used in %v without definition", f.Name, a.Reg(), b)
				}
				if !dominatesUse(def, b, i) {
					return fmt.Errorf("%s: def of r%d does not dominate use in %v (%s)", f.Name, a.Reg(), b, in.Op)
				}
			}
			for _, u := range in.MemUses {
				if f.Res(u.Res).Version == 0 {
					continue
				}
				def, ok := resDef[u.Res]
				if !ok {
					return fmt.Errorf("%s: %s used in %v without definition", f.Name, f.Res(u.Res), b)
				}
				if !dominatesUse(def, b, i) {
					return fmt.Errorf("%s: def of %s does not dominate use in %v (%s)", f.Name, f.Res(u.Res), b, in.Op)
				}
			}
		}
	}
	return nil
}

package workload_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/workload"
)

// TestCorpusConcurrentDeterminism: generating corpus entries from many
// goroutines at once (the rpbench -j sharding pattern) must produce the
// same programs as a sequential Corpus call — each entry owns a
// derived-seed rng, so there is no shared random state to race on or to
// leak ordering into. Run under -race this is also the regression test
// for generator thread safety.
func TestCorpusConcurrentDeterminism(t *testing.T) {
	const seed, n = 42, 24
	sequential := workload.Corpus(seed, n)
	if len(sequential) != n {
		t.Fatalf("Corpus returned %d entries, want %d", len(sequential), n)
	}

	concurrent := make([]workload.Workload, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			concurrent[i] = workload.CorpusEntry(seed, i)
		}(i)
	}
	wg.Wait()

	for i := range sequential {
		if sequential[i].Name != concurrent[i].Name || sequential[i].Src != concurrent[i].Src {
			t.Fatalf("entry %d differs between sequential and concurrent generation", i)
		}
	}
}

// TestDeriveSeedDecorrelates: derived seeds must differ across entries
// of one corpus and across adjacent base seeds — entries sharing a seed
// would silently shrink the stress surface.
func TestDeriveSeedDecorrelates(t *testing.T) {
	seen := make(map[int64]string)
	for base := int64(0); base < 8; base++ {
		for i := 0; i < 32; i++ {
			s := workload.DeriveSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("DeriveSeed(%d, %d) collides with %s", base, i, prev)
			}
			seen[s] = fmt.Sprintf("DeriveSeed(%d, %d)", base, i)
		}
	}
	if workload.DeriveSeed(1, 0) == workload.DeriveSeed(2, 0) {
		t.Fatal("adjacent base seeds produced equal entry seeds")
	}
}

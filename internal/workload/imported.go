package workload

// The imported suite: real textual-IR programs (the dialect
// internal/irimport accepts, clang -O0-shaped) that harnesses mix into
// generated corpora so the serving and batch paths continuously
// exercise the import frontend, not just the native one. Entries carry
// Lang "ll"; everything else in a corpus stays mini-C.

// ImportedSuite returns the real-IR workloads, in fixed order.
func ImportedSuite() []Workload {
	return []Workload{
		{
			Name:        "ir-dotprod",
			Description: "imported IR: dot product over two global arrays, O0-style alloca loop",
			Src:         srcIRDotprod,
			Lang:        LangIR,
		},
		{
			Name:        "ir-histo",
			Description: "imported IR: histogram with dynamic gep stores and a phi-carried cursor",
			Src:         srcIRHisto,
			Lang:        LangIR,
		},
		{
			Name:        "ir-chain",
			Description: "imported IR: call chain threading an accumulator through helpers",
			Src:         srcIRChain,
			Lang:        LangIR,
		},
	}
}

// LangIR mirrors irimport.LangIR without importing it (workload stays
// dependency-free below the frontends).
const LangIR = "ll"

// ReplayCorpusMix is ReplayCorpus with every irEvery-th entry replaced
// by an imported real-IR program (irEvery 0 disables mixing). The
// replacement is positional and seed-derived, so the mix is identical
// across processes — the property the load generator's cross-process
// determinism checks rely on. Replaced entries keep a position-unique
// name so caches and logs distinguish repeat visits from distinct
// entries.
func ReplayCorpusMix(seed int64, n int, size string, irEvery int) ([]Workload, error) {
	entries, err := ReplayCorpus(seed, n, size)
	if err != nil {
		return nil, err
	}
	if irEvery <= 0 {
		return entries, nil
	}
	suite := ImportedSuite()
	for i := irEvery - 1; i < len(entries); i += irEvery {
		w := suite[int(uint64(DeriveSeed(seed, i))%uint64(len(suite)))]
		w.Name = w.Name + "@" + itoa(i)
		entries[i] = w
	}
	return entries, nil
}

// MixComposition counts corpus entries by language, for bench-record
// JSON ("what was this run actually made of").
func MixComposition(ws []Workload) map[string]int {
	mix := make(map[string]int)
	for _, w := range ws {
		lang := w.Lang
		if lang == "" {
			lang = "mc"
		}
		mix[lang]++
	}
	return mix
}

func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

const srcIRDotprod = `; dot product of two constant vectors, clang -O0 shape
@xs = global [8 x i64] [i64 1, i64 2, i64 3, i64 4, i64 5, i64 6, i64 7, i64 8]
@ys = global [8 x i64] [i64 8, i64 7, i64 6, i64 5, i64 4, i64 3, i64 2, i64 1]

declare void @print(i64)

define i64 @main() {
entry:
  %i = alloca i64, align 8
  %acc = alloca i64, align 8
  store i64 0, i64* %i, align 8
  store i64 0, i64* %acc, align 8
  br label %cond

cond:
  %0 = load i64, i64* %i, align 8
  %cmp = icmp slt i64 %0, 8
  br i1 %cmp, label %body, label %done

body:
  %1 = load i64, i64* %i, align 8
  %px = getelementptr inbounds [8 x i64], [8 x i64]* @xs, i64 0, i64 %1
  %x = load i64, i64* %px, align 8
  %py = getelementptr inbounds [8 x i64], [8 x i64]* @ys, i64 0, i64 %1
  %y = load i64, i64* %py, align 8
  %m = mul nsw i64 %x, %y
  %a = load i64, i64* %acc, align 8
  %a2 = add nsw i64 %a, %m
  store i64 %a2, i64* %acc, align 8
  %n = add nsw i64 %1, 1
  store i64 %n, i64* %i, align 8
  br label %cond

done:
  %r = load i64, i64* %acc, align 8
  call void @print(i64 %r)
  ret i64 %r
}
`

const srcIRHisto = `; histogram of a key stream into a small table
@table = global [4 x i64] zeroinitializer

declare void @print(i64)

define void @bump(i64 %k) {
entry:
  %slot = srem i64 %k, 4
  %p = getelementptr i64, i64* @table, i64 %slot
  %v = load i64, i64* %p
  %v2 = add i64 %v, 1
  store i64 %v2, i64* %p
  ret void
}

define i64 @main() {
entry:
  br label %loop

loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %k = mul i64 %i, 7
  call void @bump(i64 %k)
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, 12
  br i1 %c, label %loop, label %out

out:
  %p0 = getelementptr i64, i64* @table, i64 0
  %h0 = load i64, i64* %p0
  call void @print(i64 %h0)
  ret i64 %h0
}
`

const srcIRChain = `; accumulator threaded through a helper chain
@state = global i64 3

declare void @print(i64)

define i64 @step(i64 %x) {
entry:
  %s = load i64, i64* @state
  %t = add i64 %x, %s
  %u = xor i64 %t, 21
  store i64 %u, i64* @state
  ret i64 %u
}

define i64 @twice(i64 %x) {
entry:
  %a = call i64 @step(i64 %x)
  %b = call i64 @step(i64 %a)
  ret i64 %b
}

define i64 @main() {
entry:
  br label %loop

loop:
  %i = phi i64 [ 0, %entry ], [ %n, %loop ]
  %acc = phi i64 [ 0, %entry ], [ %r, %loop ]
  %r = call i64 @twice(i64 %acc)
  %n = add i64 %i, 1
  %c = icmp slt i64 %n, 6
  br i1 %c, label %loop, label %out

out:
  call void @print(i64 %r)
  %s = load i64, i64* @state
  call void @print(i64 %s)
  ret i64 %r
}
`

// Package workload supplies the benchmark programs of the reproduction:
// eight synthetic mini-C programs standing in for the SPECInt95
// components the paper evaluates on, plus a seeded random program
// generator for property and stress testing.
//
// Each workload is engineered to the access-pattern profile that shapes
// the paper's per-benchmark numbers, not to the SPEC source itself:
// what matters for the tables is how often hot loops touch global
// scalars directly versus through calls and pointers. The names follow
// the paper's Table 1/2 rows.
package workload

// Workload is one benchmark program.
type Workload struct {
	// Name is the SPECInt95-analogue identifier used in tables.
	Name string
	// Description says which access pattern the program models.
	Description string
	// Src is the program source text, in the language Lang names.
	Src string
	// Lang identifies Src's input language: "" or "mc" for native
	// mini-C, "ll" for the textual-IR dialect internal/irimport
	// accepts. Harnesses pass it through as pipeline.Options.Lang.
	Lang string
}

// Suite returns the eight benchmark programs in the paper's table
// order.
func Suite() []Workload {
	return []Workload{
		{
			Name: "go",
			Description: "game engine: many hot global scalar counters updated in " +
				"nested board-scan loops, calls only on rare events — the paper's " +
				"best case (its go promotes freelist, mvp, ...)",
			Src: srcGo,
		},
		{
			Name: "li",
			Description: "interpreter with recursive evaluation: global heap counters " +
				"touched between moderately frequent calls",
			Src: srcLi,
		},
		{
			Name: "ijpeg",
			Description: "image codec: load-heavy inner loops reading global parameters " +
				"per pixel, results written to arrays — big load win, few stores killed",
			Src: srcIjpeg,
		},
		{
			Name: "perl",
			Description: "bytecode interpreter: dispatch loop with helper calls on " +
				"several opcodes — modest improvement",
			Src: srcPerl,
		},
		{
			Name: "m88ksim",
			Description: "CPU simulator: fetch/decode loop updating global machine state " +
				"with execute helpers called per instruction",
			Src: srcM88ksim,
		},
		{
			Name: "sc",
			Description: "spreadsheet recalculation: relaxation sweeps over a cell array " +
				"with global accumulators and occasional pointer references",
			Src: srcSc,
		},
		{
			Name: "compress",
			Description: "tiny kernel: few globals, small static footprint — little to " +
				"promote, near-zero change",
			Src: srcCompress,
		},
		{
			Name: "vortex",
			Description: "call-dense object store: nearly every loop body calls into " +
				"accessors, leaving promotion almost no room — the paper's worst case",
			Src: srcVortex,
		},
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range Suite() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

const srcGo = `
// go-analogue: board scanning with hot global counters.
int board[361];
int liberties;
int captures;
int territory;
int influence;
int mvp;
int freelist;
int moves;
int passes;

void rare_event() {
	captures = captures + 1;
	freelist = freelist - 1;
}

void place_stones() {
	int i;
	for (i = 0; i < 361; i++) {
		board[i] = (i * 7 + 3) % 5;
	}
}

void scan_board() {
	int i;
	for (i = 0; i < 361; i++) {
		int v = board[i];
		liberties = liberties + (v == 0);
		territory = territory + (v == 1) * 2;
		influence = influence + v * (i % 3);
		mvp = mvp + (influence > territory);
		if (liberties % 251 == 250) rare_event();
	}
}

void evaluate() {
	int pass;
	for (pass = 0; pass < 40; pass++) {
		scan_board();
		moves = moves + 1;
		freelist = freelist + (moves % 2);
		if (pass == 39) passes = passes + 1;
	}
}

void main() {
	place_stones();
	evaluate();
	print(liberties);
	print(captures);
	print(territory);
	print(influence);
	print(mvp);
	print(freelist);
	print(moves);
}
`

const srcLi = `
// li-analogue: list interpreter with recursion and global heap state.
int car[512];
int cdr[512];
int heap_top;
int conses;
int evals;
int gc_runs;

int cons(int a, int d) {
	car[heap_top] = a;
	cdr[heap_top] = d;
	heap_top = heap_top + 1;
	conses = conses + 1;
	if (heap_top >= 500) {
		heap_top = 1;
		gc_runs = gc_runs + 1;
	}
	return heap_top - 1;
}

int build_list(int n) {
	if (n == 0) return 0;
	return cons(n, build_list(n - 1));
}

int sum_list(int cell) {
	int total = 0;
	while (cell != 0) {
		evals = evals + 1;
		total = total + car[cell];
		cell = cdr[cell];
	}
	return total;
}

void main() {
	int round;
	int checksum = 0;
	for (round = 0; round < 60; round++) {
		int lst = build_list(20);
		checksum = checksum + sum_list(lst);
		evals = evals + 1;
	}
	print(checksum);
	print(conses);
	print(evals);
	print(gc_runs);
	print(heap_top);
}
`

const srcIjpeg = `
// ijpeg-analogue: per-pixel loops reading global parameters — loads
// dominate, stores go to the (unpromotable) image array.
int image[1024];
int quant[64];
int quality;
int offset;
int scale;
int clip_lo;
int clip_hi;
int out_checksum;

void init_tables() {
	int i;
	quality = 75;
	offset = 128;
	scale = 3;
	clip_lo = 0;
	clip_hi = 255;
	for (i = 0; i < 64; i++) {
		quant[i] = 1 + (i * quality) / 50;
	}
	for (i = 0; i < 1024; i++) {
		image[i] = (i * 31 + 7) % 256;
	}
}

void transform_block(int base) {
	int i;
	for (i = 0; i < 64; i++) {
		int px = image[base + i];
		int q = quant[i];
		int v = (px - offset) * scale / q + offset;
		if (v < clip_lo) v = clip_lo;
		if (v > clip_hi) v = clip_hi;
		image[base + i] = v;
	}
}

void main() {
	init_tables();
	int block;
	int pass;
	for (pass = 0; pass < 6; pass++) {
		for (block = 0; block < 16; block++) {
			transform_block(block * 64);
		}
	}
	int i;
	for (i = 0; i < 1024; i++) {
		out_checksum = out_checksum + image[i] * (i % 7 + 1);
	}
	print(out_checksum);
	print(quality);
	print(scale);
}
`

const srcPerl = `
// perl-analogue: bytecode dispatch loop; several opcodes call helpers,
// the rest update interpreter globals directly.
int code[256];
int stack[64];
int sp;
int acc;
int pc;
int steps;
int string_ops;
int hash_ops;

void do_string_op() {
	string_ops = string_ops + 1;
	acc = acc * 2 + 1;
}

void do_hash_op() {
	hash_ops = hash_ops + 1;
	acc = acc ^ 21845;
}

void main() {
	int i;
	for (i = 0; i < 256; i++) {
		code[i] = (i * 13 + 5) % 8;
	}
	sp = 0;
	acc = 0;
	int round;
	for (round = 0; round < 120; round++) {
		pc = 0;
		while (pc < 256) {
			int op = code[pc];
			steps = steps + 1;
			if (op == 0) { acc = acc + pc; }
			else if (op == 1) { acc = acc - 3; }
			else if (op == 2) {
				if (sp < 63) { stack[sp] = acc; sp = sp + 1; }
			}
			else if (op == 3) {
				if (sp > 0) { sp = sp - 1; acc = acc + stack[sp]; }
			}
			else if (op == 4) { do_string_op(); }
			else if (op == 5) { acc = acc * 3 % 65537; }
			else if (op == 6) { do_hash_op(); }
			else { acc = acc ^ pc; }
			pc = pc + 1;
		}
	}
	print(acc);
	print(steps);
	print(string_ops);
	print(hash_ops);
	print(sp);
}
`

const srcM88ksim = `
// m88ksim-analogue: instruction-set simulator with global machine state
// and per-instruction execute helpers.
int regs[32];
int memory[256];
int pc;
int cycles;
int instret;
int branches;
int loadstores;
int halted;

void exec_alu(int rd, int rs, int imm) {
	regs[rd] = regs[rs] + imm;
	cycles = cycles + 1;
}

void exec_mem(int rd, int addr) {
	if (addr >= 0) {
		if (addr < 256) {
			regs[rd] = memory[addr];
			loadstores = loadstores + 1;
		}
	}
	cycles = cycles + 2;
}

void exec_branch(int target, int cond) {
	branches = branches + 1;
	cycles = cycles + 1;
	if (cond != 0) pc = target;
}

void main() {
	int i;
	for (i = 0; i < 256; i++) memory[i] = i * 3 % 97;
	for (i = 0; i < 32; i++) regs[i] = 0;
	pc = 0;
	int fuel;
	for (fuel = 0; fuel < 20000; fuel++) {
		if (halted == 0) {
			int word = memory[pc % 256];
			int opcode = word % 4;
			int rd = (word / 4) % 32;
			int rs = (word / 128) % 32;
			instret = instret + 1;
			if (opcode == 0) { exec_alu(rd, rs, word % 11); }
			else if (opcode == 1) { exec_mem(rd, (word * 7) % 256); }
			else if (opcode == 2) { exec_branch((pc + word) % 256, rd % 2); }
			else { cycles = cycles + 1; }
			pc = pc + 1;
			if (instret >= 15000) halted = 1;
		}
	}
	print(cycles);
	print(instret);
	print(branches);
	print(loadstores);
	print(regs[5]);
}
`

const srcSc = `
// sc-analogue: spreadsheet relaxation sweeps with global accumulators
// and a pointer-written status cell.
int cells[400];
int deps[400];
int recalcs;
int dirty;
int sweeps;
int status;

void mark_dirty() {
	dirty = dirty + 1;
}

void main() {
	int i;
	for (i = 0; i < 400; i++) {
		cells[i] = i % 17;
		deps[i] = (i * 3 + 1) % 400;
	}
	int* pstatus = &status;
	int sweep;
	for (sweep = 0; sweep < 25; sweep++) {
		int changed = 0;
		for (i = 0; i < 400; i++) {
			int want = (cells[deps[i]] * 2 + i) % 101;
			if (cells[i] != want) {
				cells[i] = want;
				recalcs = recalcs + 1;
				changed = changed + 1;
			}
		}
		sweeps = sweeps + 1;
		if (changed > 390) mark_dirty();
		if (sweep % 10 == 9) { *pstatus = sweeps * 1000 + recalcs % 1000; }
	}
	int checksum = 0;
	for (i = 0; i < 400; i++) checksum = checksum + cells[i] * (i % 5 + 1);
	print(checksum);
	print(recalcs);
	print(sweeps);
	print(dirty);
	print(status);
}
`

const srcCompress = `
// compress-analogue: tiny kernel, few globals, small static footprint.
int htab[256];
int in_count;
int out_count;
int checksum;

void main() {
	int i;
	int state = 12345;
	for (i = 0; i < 4000; i++) {
		state = (state * 1103515245 + 12345) % 2147483647;
		int sym = state % 256;
		int slot = sym % 256;
		if (htab[slot] == sym) {
			out_count = out_count + 1;
		} else {
			htab[slot] = sym;
			out_count = out_count + 2;
		}
		in_count = in_count + 1;
		checksum = (checksum + sym) % 65536;
	}
	print(in_count);
	print(out_count);
	print(checksum);
}
`

const srcVortex = `
// vortex-analogue: object store where every hot loop body calls
// accessors — aliased references everywhere, promotion starved.
int objects[512];
int links[512];
int num_objects;
int lookups;
int inserts;
int deletes;
int generation;

int hash_key(int key) {
	return (key * 2654435761) % 512;
}

void insert_object(int key, int value) {
	int h = hash_key(key);
	if (h < 0) h = -h;
	objects[h % 512] = value;
	links[h % 512] = key;
	num_objects = num_objects + 1;
	inserts = inserts + 1;
	generation = generation + 1;
}

int lookup_object(int key) {
	int h = hash_key(key);
	if (h < 0) h = -h;
	lookups = lookups + 1;
	if (links[h % 512] == key) return objects[h % 512];
	return 0;
}

void delete_object(int key) {
	int h = hash_key(key);
	if (h < 0) h = -h;
	if (links[h % 512] == key) {
		links[h % 512] = 0;
		num_objects = num_objects - 1;
		deletes = deletes + 1;
	}
	generation = generation + 1;
}

void main() {
	int round;
	int total = 0;
	for (round = 0; round < 150; round++) {
		int k;
		for (k = 1; k < 40; k++) {
			insert_object(k * 3 + round, k * round);
			total = total + lookup_object(k * 3 + round);
			if (k % 7 == 0) delete_object(k * 3 + round);
		}
	}
	print(total);
	print(num_objects);
	print(lookups);
	print(inserts);
	print(deletes);
	print(generation);
}
`

package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Profile is a declarative cluster traffic profile: how many requests
// to send, over how many distinct programs, skewed how, paced by which
// rate shape, and what service levels the run must meet. Profiles are
// pure data — the request mix and the rate curve both derive entirely
// from (Seed-at-replay, profile fields), so two runs of the same
// profile against equivalent clusters issue byte-identical traffic.
type Profile struct {
	// Name identifies the profile in records and on the command line.
	Name string `json:"name"`
	// Requests is the total request count. With DurationS > 0 it is
	// advisory: the effective count becomes DurationS x the shape's
	// average rate (soak mode).
	Requests int `json:"requests"`
	// Unique is the number of distinct programs in the replay corpus.
	Unique int `json:"unique"`
	// Size is the generated program size: small, medium, or large.
	Size string `json:"size"`
	// Shape names the rate curve: steady, ramp, spike, or diurnal.
	Shape string `json:"shape"`
	// QPS is the peak request rate; 0 means unpaced (as fast as the
	// client concurrency allows), which forces Shape to steady.
	QPS float64 `json:"qps"`
	// BaseQPS is the off-peak rate for ramp/spike/diurnal shapes
	// (default QPS/4 when a shaped profile leaves it 0).
	BaseQPS float64 `json:"base_qps"`
	// ZipfS skews the request mix: program rank r is visited with
	// weight 1/(r+1)^ZipfS. 0 keeps the uniform MixIndexes mix. Larger
	// s concentrates traffic on a few hot keys — the adversarial case
	// for consistent hashing, which bounded-load spilling absorbs.
	ZipfS float64 `json:"zipf_s"`
	// DurationS > 0 switches to soak mode: run for this many seconds
	// at the shape's average rate instead of a fixed request count.
	DurationS float64 `json:"duration_s"`
	// SLO is asserted after the run; the zero value asserts nothing.
	SLO SLO `json:"slo"`
}

// SLO is a profile's pass/fail contract. Zero-valued fields are not
// asserted; outcome identity is always asserted by the load generator
// regardless.
type SLO struct {
	// P99MS fails the run when the measured p99 exceeds it.
	P99MS float64 `json:"p99_ms,omitempty"`
	// MaxErrorRate fails the run when (server errors + transport
	// errors + timeouts + gave-up requests) / total exceeds it.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
}

// Validate rejects profiles that cannot be replayed deterministically.
func (p Profile) Validate() error {
	if p.Requests < 1 && p.DurationS <= 0 {
		return fmt.Errorf("workload: profile %q needs requests >= 1 or duration_s > 0", p.Name)
	}
	if p.Unique < 1 {
		return fmt.Errorf("workload: profile %q needs unique >= 1", p.Name)
	}
	switch p.Shape {
	case "", "steady", "ramp", "spike", "diurnal":
	default:
		return fmt.Errorf("workload: profile %q: unknown shape %q (want steady, ramp, spike, or diurnal)", p.Name, p.Shape)
	}
	if p.Shape != "" && p.Shape != "steady" && p.QPS <= 0 {
		return fmt.Errorf("workload: profile %q: shape %q needs qps > 0 to pace against", p.Name, p.Shape)
	}
	if p.ZipfS < 0 {
		return fmt.Errorf("workload: profile %q: zipf_s must be >= 0", p.Name)
	}
	if p.DurationS > 0 && p.QPS <= 0 {
		return fmt.Errorf("workload: profile %q: soak mode (duration_s) needs qps > 0", p.Name)
	}
	return nil
}

// baseRate is the off-peak rate, defaulting to a quarter of peak.
func (p Profile) baseRate() float64 {
	if p.BaseQPS > 0 {
		return p.BaseQPS
	}
	return p.QPS / 4
}

// RateAt evaluates the profile's rate curve at frac ∈ [0, 1] of run
// progress, in requests/second. Shapes:
//
//	steady:  QPS throughout
//	ramp:    linear BaseQPS → QPS
//	spike:   BaseQPS, with a QPS burst over the middle fifth
//	diurnal: one raised-cosine day, trough BaseQPS, peak QPS
//
// Unpaced profiles (QPS == 0) return 0 everywhere: no pacing.
func (p Profile) RateAt(frac float64) float64 {
	if p.QPS <= 0 {
		return 0
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	switch p.Shape {
	case "ramp":
		return p.baseRate() + (p.QPS-p.baseRate())*frac
	case "spike":
		if frac >= 0.4 && frac < 0.6 {
			return p.QPS
		}
		return p.baseRate()
	case "diurnal":
		return p.baseRate() + (p.QPS-p.baseRate())*(1-math.Cos(2*math.Pi*frac))/2
	default: // steady
		return p.QPS
	}
}

// AvgRate is the mean of the rate curve over the run — the rate soak
// mode sizes its request count with.
func (p Profile) AvgRate() float64 {
	switch p.Shape {
	case "ramp", "diurnal":
		return (p.baseRate() + p.QPS) / 2
	case "spike":
		return 0.8*p.baseRate() + 0.2*p.QPS
	default:
		return p.QPS
	}
}

// EffectiveRequests resolves soak mode: with DurationS set the count is
// duration x average rate, otherwise Requests as written.
func (p Profile) EffectiveRequests() int {
	if p.DurationS > 0 {
		n := int(math.Round(p.DurationS * p.AvgRate()))
		if n < 1 {
			n = 1
		}
		return n
	}
	return p.Requests
}

// Mix returns the profile's deterministic request mix: a length-n
// sequence of program indexes in [0, Unique). With ZipfS == 0 it is
// the uniform MixIndexes mix; otherwise each position's index is drawn
// from a Zipf distribution over program ranks (program 0 hottest) by
// inverting the CDF with that position's own derived-seed uniform —
// so, like MixIndexes, the mix is independent of replay concurrency.
func (p Profile) Mix(seed int64, n int) []int {
	if p.ZipfS == 0 {
		return MixIndexes(seed, n, p.Unique)
	}
	unique := p.Unique
	if unique < 1 {
		unique = 1
	}
	// Cumulative Zipf weights over ranks: w_r = 1/(r+1)^s.
	cdf := make([]float64, unique)
	total := 0.0
	for r := 0; r < unique; r++ {
		total += 1 / math.Pow(float64(r+1), p.ZipfS)
		cdf[r] = total
	}
	if n < 0 {
		n = 0
	}
	mix := make([]int, n)
	for i := range mix {
		// 53 uniform bits from the position's derived seed.
		u := float64(uint64(DeriveSeed(seed, i))>>11) / (1 << 53)
		mix[i] = sort.SearchFloat64s(cdf, u*total)
		if mix[i] >= unique {
			mix[i] = unique - 1
		}
	}
	return mix
}

// BuiltinProfiles returns the named cluster experiment profiles, in
// presentation order. They are starting points — -profile-file takes a
// JSON Profile for anything custom.
func BuiltinProfiles() []Profile {
	return []Profile{
		{
			Name: "steady", Requests: 2048, Unique: 16, Size: "small",
			Shape: "steady",
		},
		{
			Name: "ramp", Requests: 1024, Unique: 16, Size: "small",
			Shape: "ramp", QPS: 400, BaseQPS: 50,
		},
		{
			Name: "spike", Requests: 1024, Unique: 16, Size: "small",
			Shape: "spike", QPS: 600, BaseQPS: 100,
		},
		{
			Name: "diurnal", Requests: 1024, Unique: 16, Size: "small",
			Shape: "diurnal", QPS: 300, BaseQPS: 50,
		},
		{
			// The consistent-hashing stress case: a handful of keys take
			// most of the traffic, so a router without bounded-load
			// spilling melts one replica while the rest idle. Also the
			// singleflight showcase — concurrent repeats of the hot keys
			// collapse onto in-flight pipeline runs.
			Name: "hotkey", Requests: 2048, Unique: 32, Size: "small",
			Shape: "steady", ZipfS: 1.2,
		},
	}
}

// LookupProfile resolves a builtin profile by name.
func LookupProfile(name string) (Profile, error) {
	for _, p := range BuiltinProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0, len(BuiltinProfiles()))
	for _, p := range BuiltinProfiles() {
		names = append(names, p.Name)
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q (builtin: %v)", name, names)
}

// LoadProfile reads a JSON Profile from a file and validates it.
func LoadProfile(path string) (Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, fmt.Errorf("workload: profile file: %w", err)
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return Profile{}, fmt.Errorf("workload: profile file %s: %w", path, err)
	}
	if p.Name == "" {
		p.Name = path
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

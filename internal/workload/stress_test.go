package workload_test

import (
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestLargeGeneratedProgramCompileTime: the whole pipeline (without
// measurement runs) must chew through a deliberately large generated
// program quickly — a guard against accidental quadratic blowups in
// SSA construction, web building, or the incremental update.
func TestLargeGeneratedProgramCompileTime(t *testing.T) {
	cfg := workload.GenConfig{
		Seed:       7,
		NumGlobals: 20,
		NumArrays:  4,
		NumHelpers: 10,
		MaxStmts:   8,
		MaxDepth:   3,
		CallChance: 0.08,
		PtrChance:  0.4,
		LoopMax:    6,
	}
	src := workload.Generate(cfg)
	if len(src) < 5000 {
		t.Fatalf("stress program too small (%d bytes); raise generator knobs", len(src))
	}
	start := time.Now()
	out, err := pipeline.Run(src, pipeline.Options{
		StaticProfile:   true,
		SkipMeasurement: true,
	})
	if err != nil {
		t.Fatalf("%v", err)
	}
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Errorf("pipeline took %v on a %d-byte program", elapsed, len(src))
	}
	t.Logf("compiled+promoted %d bytes in %v; webs considered %d",
		len(src), elapsed, out.TotalStats.WebsConsidered)
}

// TestManySeedsCompile compiles a spread of generated programs with
// promotion to catch rare shapes; semantics are covered by the quick
// properties, so measurement is skipped for speed.
func TestManySeedsCompile(t *testing.T) {
	n := int64(120)
	if testing.Short() {
		n = 20
	}
	for seed := int64(100); seed < 100+n; seed++ {
		src := workload.Generate(workload.DefaultGenConfig(seed))
		if _, err := pipeline.Run(src, pipeline.Options{
			StaticProfile:   true,
			SkipMeasurement: true,
		}); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

func TestWorkloadDescriptions(t *testing.T) {
	for _, w := range workload.Suite() {
		if w.Name == "" || w.Description == "" || len(w.Src) < 100 {
			t.Errorf("workload %q underspecified", w.Name)
		}
	}
	if _, ok := workload.ByName("go"); !ok {
		t.Error("ByName(go) failed")
	}
	if _, ok := workload.ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}

package workload

import "testing"

// TestReplayCorpusMatchesCorpusEntries checks the client-side replay
// corpus is byte-identical to the batch harness's corpus entries.
func TestReplayCorpusMatchesCorpusEntries(t *testing.T) {
	entries, err := ReplayCorpus(7, 5, "small")
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range entries {
		want, err := SizedCorpusEntry(7, i, "small")
		if err != nil {
			t.Fatal(err)
		}
		if w.Src != want.Src || w.Name != want.Name {
			t.Fatalf("entry %d differs from SizedCorpusEntry", i)
		}
	}
	if _, err := ReplayCorpus(7, 0, "small"); err == nil {
		t.Fatal("ReplayCorpus(n=0) succeeded, want error")
	}
	if _, err := ReplayCorpus(7, 1, "galactic"); err == nil {
		t.Fatal("ReplayCorpus with unknown size succeeded, want error")
	}
}

// TestMixIndexesDeterministicAndCovering checks the mix is stable
// across calls, in range, and touches every program for a reasonable
// n/unique ratio.
func TestMixIndexesDeterministicAndCovering(t *testing.T) {
	const n, unique = 64, 4
	a := MixIndexes(3, n, unique)
	b := MixIndexes(3, n, unique)
	if len(a) != n {
		t.Fatalf("len = %d, want %d", len(a), n)
	}
	seen := make(map[int]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mix differs between calls at %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= unique {
			t.Fatalf("mix[%d] = %d out of [0, %d)", i, a[i], unique)
		}
		seen[a[i]] = true
	}
	if len(seen) != unique {
		t.Fatalf("mix covered %d of %d programs", len(seen), unique)
	}
	if other := MixIndexes(4, n, unique); equalInts(a, other) {
		t.Fatal("different seeds produced the same mix")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package workload_test

import (
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/irimport"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestImportedSuiteRuns compiles every imported-IR workload through
// the full pipeline and checks promotion preserved its observables.
func TestImportedSuiteRuns(t *testing.T) {
	for _, w := range workload.ImportedSuite() {
		t.Run(w.Name, func(t *testing.T) {
			if w.Lang != irimport.LangIR {
				t.Fatalf("imported workload tagged %q, want %q", w.Lang, irimport.LangIR)
			}
			out, err := pipeline.Run(w.Src, pipeline.Options{
				Lang:   w.Lang,
				Check:  pipeline.CheckParanoid,
				Interp: interp.Options{MaxSteps: 1_000_000},
			})
			if err != nil {
				t.Fatalf("pipeline: %v", err)
			}
			if len(out.Degraded) > 0 {
				t.Errorf("degraded: %v", out.DegradedFuncs())
			}
			if diffOut := out.Before.Output; len(diffOut) == 0 {
				t.Error("imported workload printed nothing; suite entries should be observable")
			}
			if !reflect.DeepEqual(out.Before.Output, out.After.Output) ||
				out.Before.ReturnValue != out.After.ReturnValue {
				t.Errorf("promotion changed observables: %v/%d vs %v/%d",
					out.Before.Output, out.Before.ReturnValue, out.After.Output, out.After.ReturnValue)
			}
		})
	}
}

// TestReplayCorpusMix pins the mixing contract: deterministic across
// calls, imported entries exactly at the irEvery-th positions, and
// composition counts that add up.
func TestReplayCorpusMix(t *testing.T) {
	a, err := workload.ReplayCorpusMix(11, 20, "small", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ReplayCorpusMix(11, 20, "small", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical ReplayCorpusMix calls diverged")
	}
	for i, w := range a {
		wantIR := (i+1)%5 == 0
		if gotIR := w.Lang == irimport.LangIR; gotIR != wantIR {
			t.Errorf("entry %d: lang %q (imported=%v), want imported=%v", i, w.Lang, gotIR, wantIR)
		}
	}
	mix := workload.MixComposition(a)
	if mix["ll"] != 4 || mix["mc"] != 16 {
		t.Errorf("mix composition %v, want 4 ll + 16 mc", mix)
	}

	// irEvery 0 must be plain ReplayCorpus.
	plain, err := workload.ReplayCorpusMix(11, 6, "small", 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := workload.ReplayCorpus(11, 6, "small")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, want) {
		t.Fatal("ReplayCorpusMix(.., 0) differs from ReplayCorpus")
	}
}

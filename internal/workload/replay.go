package workload

import "fmt"

// ReplayCorpus generates the n distinct programs a load-generation run
// replays against the promotion service. It is the client-side twin of
// the batch harness's corpus: the same derived-seed generation, so a
// server-side run over the same (seed, size) produces byte-identical
// sources and the load generator's determinism checks can compare
// outcomes across processes and machines.
func ReplayCorpus(seed int64, n int, size string) ([]Workload, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: replay corpus needs n >= 1, got %d", n)
	}
	entries := make([]Workload, n)
	for i := range entries {
		w, err := SizedCorpusEntry(seed, i, size)
		if err != nil {
			return nil, err
		}
		entries[i] = w
	}
	return entries, nil
}

// MixIndexes returns the deterministic request mix of a load run: a
// length-n sequence of corpus indexes in [0, unique). Each position's
// index comes from its own DeriveSeed stream, so the mix is identical
// whatever concurrency the client replays it at, and every program is
// revisited roughly n/unique times — which is what gives a warmed
// result cache a predictable hit rate of about 1 - unique/n.
func MixIndexes(seed int64, n, unique int) []int {
	if n < 0 {
		n = 0
	}
	if unique < 1 {
		unique = 1
	}
	mix := make([]int, n)
	for i := range mix {
		mix[i] = int(uint64(DeriveSeed(seed, i)) % uint64(unique))
	}
	return mix
}

package workload

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestBuiltinProfilesValidate(t *testing.T) {
	for _, p := range BuiltinProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("builtin profile %q invalid: %v", p.Name, err)
		}
		if got, err := LookupProfile(p.Name); err != nil || got.Name != p.Name {
			t.Errorf("LookupProfile(%q) = %+v, %v", p.Name, got, err)
		}
	}
	if _, err := LookupProfile("nope"); err == nil {
		t.Error("LookupProfile accepted an unknown name")
	}
}

func TestProfileValidateRejects(t *testing.T) {
	bad := []Profile{
		{Name: "n", Unique: 4},                                  // no requests, no duration
		{Name: "u", Requests: 10},                               // unique < 1
		{Name: "s", Requests: 10, Unique: 4, Shape: "sawtooth"}, // unknown shape
		{Name: "q", Requests: 10, Unique: 4, Shape: "ramp"},     // shaped but unpaced
		{Name: "z", Requests: 10, Unique: 4, ZipfS: -1},         // negative skew
		{Name: "d", Unique: 4, DurationS: 5},                    // soak needs qps
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %q validated but should not", p.Name)
		}
	}
}

func TestRateAtShapes(t *testing.T) {
	ramp := Profile{Shape: "ramp", QPS: 100, BaseQPS: 20}
	if got := ramp.RateAt(0); got != 20 {
		t.Errorf("ramp start = %v, want 20", got)
	}
	if got := ramp.RateAt(1); got != 100 {
		t.Errorf("ramp end = %v, want 100", got)
	}
	if got := ramp.RateAt(0.5); got != 60 {
		t.Errorf("ramp mid = %v, want 60", got)
	}

	spike := Profile{Shape: "spike", QPS: 100, BaseQPS: 10}
	if got := spike.RateAt(0.1); got != 10 {
		t.Errorf("spike off-peak = %v, want 10", got)
	}
	if got := spike.RateAt(0.5); got != 100 {
		t.Errorf("spike peak = %v, want 100", got)
	}

	diurnal := Profile{Shape: "diurnal", QPS: 100, BaseQPS: 20}
	if got := diurnal.RateAt(0); math.Abs(got-20) > 1e-9 {
		t.Errorf("diurnal trough = %v, want 20", got)
	}
	if got := diurnal.RateAt(0.5); math.Abs(got-100) > 1e-9 {
		t.Errorf("diurnal peak = %v, want 100", got)
	}

	unpaced := Profile{Shape: "steady"}
	if got := unpaced.RateAt(0.5); got != 0 {
		t.Errorf("unpaced rate = %v, want 0", got)
	}

	// RateAt clamps out-of-range progress instead of extrapolating.
	if got := ramp.RateAt(-1); got != 20 {
		t.Errorf("ramp clamped start = %v, want 20", got)
	}
	if got := ramp.RateAt(2); got != 100 {
		t.Errorf("ramp clamped end = %v, want 100", got)
	}
}

func TestEffectiveRequestsSoak(t *testing.T) {
	p := Profile{Shape: "steady", QPS: 50, DurationS: 10, Requests: 7}
	if got := p.EffectiveRequests(); got != 500 {
		t.Errorf("soak requests = %d, want 500", got)
	}
	fixed := Profile{Requests: 7}
	if got := fixed.EffectiveRequests(); got != 7 {
		t.Errorf("fixed requests = %d, want 7", got)
	}
}

func TestProfileMixUniformMatchesMixIndexes(t *testing.T) {
	p := Profile{Unique: 8}
	mix := p.Mix(3, 64)
	want := MixIndexes(3, 64, 8)
	for i := range mix {
		if mix[i] != want[i] {
			t.Fatalf("uniform profile mix diverges from MixIndexes at %d: %d vs %d", i, mix[i], want[i])
		}
	}
}

func TestProfileMixZipfSkew(t *testing.T) {
	p := Profile{Unique: 32, ZipfS: 1.2}
	mix := p.Mix(7, 4096)
	counts := make([]int, 32)
	for _, idx := range mix {
		if idx < 0 || idx >= 32 {
			t.Fatalf("mix index %d out of range", idx)
		}
		counts[idx]++
	}
	// Rank 0 must dominate and the top 4 ranks must take a majority —
	// the defining property of a hot-key distribution.
	if counts[0] <= counts[16] {
		t.Errorf("rank 0 (%d) not hotter than rank 16 (%d)", counts[0], counts[16])
	}
	top4 := counts[0] + counts[1] + counts[2] + counts[3]
	if top4 <= len(mix)/2 {
		t.Errorf("top-4 ranks took %d of %d requests; expected a majority", top4, len(mix))
	}

	// Determinism: same seed, same mix; different seed, different mix.
	again := p.Mix(7, 4096)
	for i := range mix {
		if mix[i] != again[i] {
			t.Fatalf("zipf mix not deterministic at position %d", i)
		}
	}
	other := p.Mix(8, 4096)
	same := 0
	for i := range mix {
		if mix[i] == other[i] {
			same++
		}
	}
	if same == len(mix) {
		t.Error("different seeds produced an identical zipf mix")
	}
}

func TestLoadProfileRoundTrip(t *testing.T) {
	p := Profile{
		Name: "custom", Requests: 128, Unique: 4, Size: "small",
		Shape: "spike", QPS: 200, BaseQPS: 40, ZipfS: 0.9,
		SLO: SLO{P99MS: 250, MaxErrorRate: 0.01},
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("LoadProfile round trip = %+v, want %+v", got, p)
	}

	if err := os.WriteFile(path, []byte(`{"name":"bad","requests":10,"unique":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(path); err == nil {
		t.Error("LoadProfile accepted an invalid profile")
	}
}

package workload_test

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

func TestSuiteCompilesAndRuns(t *testing.T) {
	for _, w := range workload.Suite() {
		t.Run(w.Name, func(t *testing.T) {
			out, err := pipeline.Run(w.Src, pipeline.Options{Algorithm: pipeline.AlgNone})
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if len(out.Before.Output) == 0 {
				t.Fatalf("%s prints nothing; results unobservable", w.Name)
			}
		})
	}
}

// TestSuitePromotionPreservesSemantics is the workhorse: every workload
// must behave identically after promotion by either algorithm.
func TestSuitePromotionPreservesSemantics(t *testing.T) {
	for _, w := range workload.Suite() {
		for _, alg := range []pipeline.Algorithm{pipeline.AlgSSA, pipeline.AlgBaseline} {
			t.Run(w.Name+"/"+alg.String(), func(t *testing.T) {
				out, err := pipeline.Run(w.Src, pipeline.Options{Algorithm: alg})
				if err != nil {
					t.Fatalf("%v", err)
				}
				if !reflect.DeepEqual(out.Before.Output, out.After.Output) {
					t.Fatalf("output changed:\nbefore: %v\nafter:  %v",
						out.Before.Output, out.After.Output)
				}
				if !reflect.DeepEqual(out.Before.Globals, out.After.Globals) {
					t.Fatalf("memory image changed")
				}
			})
		}
	}
}

// TestSuiteShapes checks the qualitative per-benchmark behaviour the
// paper reports: strong wins on go/ijpeg, near-nothing on vortex and
// compress.
func TestSuiteShapes(t *testing.T) {
	improvement := func(name string) float64 {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		out, err := pipeline.Run(w.Src, pipeline.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		before := float64(out.Before.DynMemOps())
		if before == 0 {
			return 0
		}
		return (before - float64(out.After.DynMemOps())) / before * 100
	}

	goImp := improvement("go")
	ijpegImp := improvement("ijpeg")
	vortexImp := improvement("vortex")

	if goImp < 15 {
		t.Errorf("go-analogue improvement = %.1f%%, want >= 15%%", goImp)
	}
	if ijpegImp < 10 {
		t.Errorf("ijpeg-analogue improvement = %.1f%%, want >= 10%%", ijpegImp)
	}
	if vortexImp > goImp/2 {
		t.Errorf("vortex-analogue improvement %.1f%% should be far below go's %.1f%%",
			vortexImp, goImp)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := workload.Generate(workload.DefaultGenConfig(42))
	b := workload.Generate(workload.DefaultGenConfig(42))
	if a != b {
		t.Fatal("same seed produced different programs")
	}
	c := workload.Generate(workload.DefaultGenConfig(43))
	if a == c {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsCompileAndRun(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		src := workload.Generate(workload.DefaultGenConfig(seed))
		out, err := pipeline.Run(src, pipeline.Options{Algorithm: pipeline.AlgNone})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		_ = out
	}
}

// TestQuickPromotionSemantics is the property-based acid test: for
// random seeds, the promoted program is observationally equivalent to
// the original under both algorithms.
func TestQuickPromotionSemantics(t *testing.T) {
	property := func(seed int64) bool {
		src := workload.Generate(workload.DefaultGenConfig(seed))
		for _, alg := range []pipeline.Algorithm{pipeline.AlgSSA, pipeline.AlgBaseline} {
			out, err := pipeline.Run(src, pipeline.Options{Algorithm: alg})
			if err != nil {
				t.Logf("seed %d (%v): %v\n%s", seed, alg, err, src)
				return false
			}
			if !reflect.DeepEqual(out.Before.Output, out.After.Output) ||
				!reflect.DeepEqual(out.Before.Globals, out.After.Globals) {
				t.Logf("seed %d (%v): semantics changed\nbefore: %v\nafter: %v\n%s",
					seed, alg, out.Before.Output, out.After.Output, src)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPaperFormulaSemantics re-runs the property with the paper's
// exact profit formula (tail stores uncounted) — the formula changes
// which webs promote, never correctness.
func TestQuickPaperFormulaSemantics(t *testing.T) {
	property := func(seed int64) bool {
		src := workload.Generate(workload.DefaultGenConfig(seed))
		out, err := pipeline.Run(src, pipeline.Options{PaperProfitFormula: true})
		if err != nil {
			return false
		}
		return reflect.DeepEqual(out.Before.Output, out.After.Output) &&
			reflect.DeepEqual(out.Before.Globals, out.After.Globals)
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

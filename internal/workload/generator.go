package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenConfig parameterizes random program generation. The generator
// produces deterministic, terminating mini-C programs: every loop has a
// fixed iteration count, divisions and shifts use safe constants, array
// indexes are reduced modulo the array size, and helper functions only
// call helpers with lower indexes (so there is no recursion). Pointers
// are used only in the restricted pattern the alias model supports
// (p = &scalar; *p as a load or store).
type GenConfig struct {
	Seed       int64
	NumGlobals int     // global scalar count (>= 1)
	NumArrays  int     // global array count
	NumHelpers int     // helper functions besides main
	MaxStmts   int     // statements per block
	MaxDepth   int     // nesting depth of loops/ifs
	CallChance float64 // probability a statement is a helper call
	PtrChance  float64 // probability a function uses a pointer
	LoopMax    int     // maximum loop trip count
}

// DefaultGenConfig returns a balanced configuration for the given seed.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		Seed:       seed,
		NumGlobals: 6,
		NumArrays:  2,
		NumHelpers: 3,
		MaxStmts:   5,
		MaxDepth:   2,
		CallChance: 0.12,
		PtrChance:  0.3,
		LoopMax:    8,
	}
}

// SizedGenConfig returns a generation config scaled to a named workload
// size: "small" (shallow, few functions — unit-test scale), "medium"
// (the default balanced config), or "large" (deeper nesting, more
// functions and globals — stress scale). The empty string means medium.
func SizedGenConfig(seed int64, size string) (GenConfig, error) {
	cfg := DefaultGenConfig(seed)
	switch size {
	case "", "medium":
	case "small":
		cfg.NumGlobals = 3
		cfg.NumArrays = 1
		cfg.NumHelpers = 1
		cfg.MaxStmts = 3
		cfg.MaxDepth = 1
		cfg.LoopMax = 4
	case "large":
		cfg.NumGlobals = 10
		cfg.NumArrays = 4
		cfg.NumHelpers = 6
		cfg.MaxStmts = 8
		cfg.MaxDepth = 3
		cfg.CallChance = 0.18
		cfg.LoopMax = 12
	default:
		return cfg, fmt.Errorf("workload: unknown size %q (want small, medium, or large)", size)
	}
	return cfg, nil
}

// Generate produces a random mini-C program. Every call constructs its
// own rng from cfg.Seed, so concurrent Generate calls never share
// random state: generation is deterministic per seed and race-free
// across goroutines.
func Generate(cfg GenConfig) string {
	if cfg.NumGlobals < 1 {
		cfg.NumGlobals = 1
	}
	if cfg.MaxStmts < 1 {
		cfg.MaxStmts = 1
	}
	if cfg.LoopMax < 1 {
		cfg.LoopMax = 1
	}
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	return g.program()
}

// DeriveSeed decorrelates the i'th corpus entry's seed from the base
// seed with a splitmix64 step. Adjacent base seeds and adjacent entry
// indexes land far apart in the generator's state space, and — unlike
// handing one *rand.Rand to every entry — each entry owns its whole
// random stream, so a corpus generated in parallel shards is identical
// to one generated sequentially.
func DeriveSeed(base int64, i int) int64 {
	z := uint64(base) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// CorpusEntry generates the i'th entry of the stress corpus derived
// from the base seed. Entries are independent: any subset may be
// generated, in any order, on any goroutine, and each comes out
// identical to a sequential Corpus call.
func CorpusEntry(seed int64, i int) Workload {
	w, _ := SizedCorpusEntry(seed, i, "medium")
	return w
}

// SizedCorpusEntry is CorpusEntry with an explicit workload size (see
// SizedGenConfig).
func SizedCorpusEntry(seed int64, i int, size string) (Workload, error) {
	entrySeed := DeriveSeed(seed, i)
	cfg, err := SizedGenConfig(entrySeed, size)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:        fmt.Sprintf("gen%04d", i),
		Description: fmt.Sprintf("generated stress program (base seed %d, entry seed %d)", seed, entrySeed),
		Src:         Generate(cfg),
	}, nil
}

// Corpus generates an n-entry stress corpus from the base seed.
func Corpus(seed int64, n int) []Workload {
	entries := make([]Workload, n)
	for i := range entries {
		entries[i] = CorpusEntry(seed, i)
	}
	return entries
}

type generator struct {
	cfg GenConfig
	rng *rand.Rand
	sb  strings.Builder

	indent int
	// locals in scope of the function being generated.
	locals []string
	// loopVars tracks loop counters usable as reads.
	loopVars []string
	nextVar  int
	usesPtr  bool
}

func (g *generator) w(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteString("\n")
}

func (g *generator) global(i int) string { return fmt.Sprintf("g%d", i) }
func (g *generator) array(i int) string  { return fmt.Sprintf("arr%d", i) }
func (g *generator) helper(i int) string { return fmt.Sprintf("helper%d", i) }

const arraySize = 16

func (g *generator) program() string {
	for i := 0; i < g.cfg.NumGlobals; i++ {
		g.w("int %s = %d;", g.global(i), g.rng.Intn(100))
	}
	for i := 0; i < g.cfg.NumArrays; i++ {
		g.w("int %s[%d];", g.array(i), arraySize)
	}
	for i := 0; i < g.cfg.NumHelpers; i++ {
		g.function(g.helper(i), i)
	}
	g.function("main", g.cfg.NumHelpers)
	return g.sb.String()
}

// function emits a void function that may call helpers with index below
// maxCallee (no recursion possible). Helpers get shallow bodies so the
// total step count stays bounded even when calls sit inside nested
// loops in main.
func (g *generator) function(name string, maxCallee int) {
	g.locals = nil
	g.loopVars = nil
	g.nextVar = 0
	g.usesPtr = g.rng.Float64() < g.cfg.PtrChance && g.cfg.NumGlobals > 0

	g.w("void %s() {", name)
	g.indent++
	nLocals := 1 + g.rng.Intn(3)
	for i := 0; i < nLocals; i++ {
		v := g.freshVar()
		g.locals = append(g.locals, v)
		g.w("int %s = %d;", v, g.rng.Intn(50))
	}
	if g.usesPtr {
		g.w("int* ptr = &%s;", g.global(g.rng.Intn(g.cfg.NumGlobals)))
	}
	depth := g.cfg.MaxDepth
	if name != "main" {
		depth = 1
	}
	g.block(depth, maxCallee)
	if name == "main" {
		for i := 0; i < g.cfg.NumGlobals; i++ {
			g.w("print(%s);", g.global(i))
		}
		for _, v := range g.locals {
			g.w("print(%s);", v)
		}
	}
	g.indent--
	g.w("}")
}

func (g *generator) freshVar() string {
	v := fmt.Sprintf("v%d", g.nextVar)
	g.nextVar++
	return v
}

func (g *generator) block(depth, maxCallee int) {
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(depth, maxCallee)
	}
}

func (g *generator) stmt(depth, maxCallee int) {
	roll := g.rng.Float64()
	switch {
	case roll < g.cfg.CallChance && maxCallee > 0:
		g.w("%s();", g.helper(g.rng.Intn(maxCallee)))
	case roll < 0.45 || depth == 0:
		g.assign()
	case roll < 0.7:
		// Bounded for loop over a fresh counter.
		v := g.freshVar()
		trip := 1 + g.rng.Intn(g.cfg.LoopMax)
		g.w("for (int %s = 0; %s < %d; %s++) {", v, v, trip, v)
		g.indent++
		g.loopVars = append(g.loopVars, v)
		g.block(depth-1, maxCallee)
		g.loopVars = g.loopVars[:len(g.loopVars)-1]
		g.indent--
		g.w("}")
	case roll < 0.9:
		g.w("if (%s) {", g.cond())
		g.indent++
		g.block(depth-1, maxCallee)
		g.indent--
		if g.rng.Intn(2) == 0 {
			g.w("} else {")
			g.indent++
			g.block(depth-1, maxCallee)
			g.indent--
		}
		g.w("}")
	default:
		// While loop with a decreasing local: always terminates.
		v := g.freshVar()
		g.w("int %s = %d;", v, 1+g.rng.Intn(g.cfg.LoopMax))
		g.w("while (%s > 0) {", v)
		g.indent++
		g.loopVars = append(g.loopVars, v)
		g.block(depth-1, maxCallee)
		g.loopVars = g.loopVars[:len(g.loopVars)-1]
		g.w("%s = %s - 1;", v, v)
		g.indent--
		g.w("}")
	}
}

// assign writes to a random global, local, array element, or pointer
// target.
func (g *generator) assign() {
	roll := g.rng.Float64()
	switch {
	case g.usesPtr && roll < 0.1:
		g.w("*ptr = %s;", g.expr(2))
	case roll < 0.55:
		target := g.global(g.rng.Intn(g.cfg.NumGlobals))
		switch g.rng.Intn(4) {
		case 0:
			g.w("%s = %s;", target, g.expr(2))
		case 1:
			g.w("%s += %s;", target, g.expr(1))
		case 2:
			g.w("%s++;", target)
		default:
			g.w("%s = %s %% 9973;", target, g.expr(2))
		}
	case roll < 0.8 && len(g.locals) > 0:
		target := g.locals[g.rng.Intn(len(g.locals))]
		g.w("%s = %s;", target, g.expr(2))
	case g.cfg.NumArrays > 0:
		arr := g.array(g.rng.Intn(g.cfg.NumArrays))
		// Double-mod keeps the index in range even for negative values
		// (mini-C % truncates toward zero, like C).
		g.w("%s[((%s) %% %d + %d) %% %d] = %s;",
			arr, g.expr(1), arraySize, arraySize, arraySize, g.expr(2))
	default:
		target := g.global(g.rng.Intn(g.cfg.NumGlobals))
		g.w("%s = %s;", target, g.expr(2))
	}
}

// expr builds a side-effect-free expression of bounded depth.
func (g *generator) expr(depth int) string {
	if depth == 0 {
		return g.atom()
	}
	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.atom())
	case 3:
		return fmt.Sprintf("(%s / %d)", g.expr(depth-1), 1+g.rng.Intn(9))
	case 4:
		return fmt.Sprintf("(%s %% %d)", g.expr(depth-1), 2+g.rng.Intn(97))
	case 5:
		return fmt.Sprintf("(%s ^ %s)", g.expr(depth-1), g.atom())
	default:
		return g.atom()
	}
}

func (g *generator) atom() string {
	choices := 3
	if g.usesPtr {
		choices = 4
	}
	switch g.rng.Intn(choices) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(200))
	case 1:
		return g.global(g.rng.Intn(g.cfg.NumGlobals))
	case 2:
		pool := append(append([]string(nil), g.locals...), g.loopVars...)
		if len(pool) == 0 {
			return fmt.Sprintf("%d", g.rng.Intn(200))
		}
		return pool[g.rng.Intn(len(pool))]
	default:
		return "(*ptr)"
	}
}

func (g *generator) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %s", g.atom(), ops[g.rng.Intn(len(ops))], g.atom())
}

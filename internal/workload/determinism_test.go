package workload_test

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestPipelineDeterministic: the full pipeline must produce bit-equal
// transformed programs across runs — no map iteration order may leak
// into web processing, phi placement, or cleanup. The printed IR is the
// canonical form compared.
func TestPipelineDeterministic(t *testing.T) {
	for _, w := range workload.Suite() {
		t.Run(w.Name, func(t *testing.T) {
			dump := func() string {
				out, err := pipeline.Run(w.Src, pipeline.Options{
					SkipMeasurement: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				return out.Prog.String()
			}
			first := dump()
			for i := 0; i < 3; i++ {
				if again := dump(); again != first {
					t.Fatalf("run %d produced different IR", i+2)
				}
			}
		})
	}
}

// TestGeneratedPipelineDeterministic repeats the check on generated
// programs, which exercise shapes the workloads do not.
func TestGeneratedPipelineDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		src := workload.Generate(workload.DefaultGenConfig(seed))
		dump := func() string {
			out, err := pipeline.Run(src, pipeline.Options{
				StaticProfile:   true,
				SkipMeasurement: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return out.Prog.String()
		}
		first := dump()
		if again := dump(); again != first {
			t.Fatalf("seed %d: nondeterministic pipeline", seed)
		}
	}
}

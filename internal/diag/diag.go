// Package diag is the IR diagnostics layer behind cmd/rpanalyze and the
// pipeline's opt-in diagnose stage: a fixed table of pluggable rules
// run over a compiled (and alias-analyzed) program, each producing
// typed findings. The input program is never mutated — rules needing
// normalized or SSA form work on a Clone — so the stage can run on the
// pipeline's baseline program without perturbing the differential
// check.
//
// Findings are deterministic: rules run in table order, walk blocks in
// function order, and the final report is sorted by (function, rule,
// block, detail), so two runs over the same program are byte-identical.
package diag

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// SchemaVersion versions the JSON report shape.
const SchemaVersion = 1

// Severity classifies findings.
const (
	SevError = "error" // the IR violates an invariant
	SevWarn  = "warn"  // almost certainly a source-program defect
	SevInfo  = "info"  // analysis facts worth surfacing
)

// Finding is one diagnostic: a rule, the function and block it anchors
// to (Block is -1 for function-scoped findings), and a human detail.
type Finding struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Func     string `json:"func"`
	Block    int    `json:"block"` // post-normalize block ID; -1 if not block-scoped
	Detail   string `json:"detail"`
}

// String renders the finding as one report line.
func (f Finding) String() string {
	at := f.Func
	if f.Block >= 0 {
		at = fmt.Sprintf("%s b%d", f.Func, f.Block)
	}
	return fmt.Sprintf("%-5s %-18s %-14s %s", f.Severity, f.Rule, at, f.Detail)
}

// Options configures an analysis run.
type Options struct {
	// Rules selects a subset of rule names; nil or empty means all.
	Rules []string
	// PressureThreshold is the BlockMaxLive at or above which the
	// pressure-hotspot rule fires (0 = DefaultPressureThreshold).
	PressureThreshold int
}

// DefaultPressureThreshold approximates the allocatable-register count
// of a small RISC machine: blocks keeping 8+ values live are where a
// backend starts spilling.
const DefaultPressureThreshold = 8

// RuleInfo describes one registered rule, for -list-rules.
type RuleInfo struct {
	Name     string `json:"name"`
	Severity string `json:"severity"`
	Desc     string `json:"desc"`
}

// Rules lists the registered rules in execution order.
func Rules() []RuleInfo {
	out := make([]RuleInfo, len(ruleTable))
	for i, r := range ruleTable {
		out[i] = RuleInfo{Name: r.name, Severity: r.severity, Desc: r.desc}
	}
	return out
}

// AnalyzeProgram runs the selected rules over every function, in
// program declaration order. The program must have alias analysis
// applied (source.Compile + alias.Analyze, or any pipeline frontend);
// it is not mutated.
func AnalyzeProgram(prog *ir.Program, opts Options) ([]Finding, error) {
	selected, err := selectRules(opts.Rules)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, f := range prog.Funcs {
		all = append(all, analyzeFunc(f, selected, opts)...)
	}
	sortFindings(all, prog)
	return all, nil
}

// selectRules resolves Options.Rules against the table, preserving
// table order; an unknown name is an error so typos cannot silently
// disable a rule.
func selectRules(names []string) ([]rule, error) {
	if len(names) == 0 {
		return ruleTable, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		known := false
		for _, r := range ruleTable {
			if r.name == n {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("diag: unknown rule %q (have %s)", n, strings.Join(ruleNames(), ", "))
		}
		want[n] = true
	}
	var out []rule
	for _, r := range ruleTable {
		if want[r.name] {
			out = append(out, r)
		}
	}
	return out, nil
}

func ruleNames() []string {
	names := make([]string, len(ruleTable))
	for i, r := range ruleTable {
		names[i] = r.name
	}
	return names
}

// sortFindings orders findings canonically: program declaration order
// of the function, then rule name, block, and detail.
func sortFindings(fs []Finding, prog *ir.Program) {
	funcIdx := make(map[string]int, len(prog.Funcs))
	for i, f := range prog.Funcs {
		funcIdx[f.Name] = i
	}
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if funcIdx[a.Func] != funcIdx[b.Func] {
			return funcIdx[a.Func] < funcIdx[b.Func]
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		return a.Detail < b.Detail
	})
}

// Report is the versioned JSON shape rpanalyze -json emits.
type Report struct {
	SchemaVersion int       `json:"schema_version"`
	Findings      []Finding `json:"findings"`
	Errors        int       `json:"errors"`
	Warnings      int       `json:"warnings"`
}

// NewReport wraps findings with their severity tallies.
func NewReport(fs []Finding) Report {
	r := Report{SchemaVersion: SchemaVersion, Findings: fs}
	if r.Findings == nil {
		r.Findings = []Finding{}
	}
	for _, f := range fs {
		switch f.Severity {
		case SevError:
			r.Errors++
		case SevWarn:
			r.Warnings++
		}
	}
	return r
}

// MarshalJSON is provided on Report's value via the standard library;
// FormatJSON renders it indented with a trailing newline.
func FormatJSON(fs []Finding) ([]byte, error) {
	data, err := json.MarshalIndent(NewReport(fs), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Format renders the human report: one line per finding plus a tally.
func Format(fs []Finding) string {
	var sb strings.Builder
	for _, f := range fs {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	rep := NewReport(fs)
	fmt.Fprintf(&sb, "%d finding(s): %d error(s), %d warning(s)\n",
		len(fs), rep.Errors, rep.Warnings)
	return sb.String()
}

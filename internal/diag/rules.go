package diag

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/opt"
	"repro/internal/ssa"
)

// rule is one registered diagnostic. Rules needing SSA form run on the
// prepared clone; the unreachable rule runs on the original CFG, since
// normalization deletes exactly the blocks it wants to report.
type rule struct {
	name     string
	severity string
	desc     string
	needsSSA bool
	run      func(*context) []Finding
}

// ruleTable registers the rules, in execution order. Adding a rule is
// one entry here plus its run function.
var ruleTable = []rule{
	{"unreachable-block", SevWarn, "block unreachable from the function entry", false, runUnreachable},
	{"dead-store", SevWarn, "direct store whose value can never be read", true, runDeadStores},
	{"dominance", SevError, "SSA definition fails to dominate a use", true, runDominance},
	{"unpromotable-web", SevInfo, "memory web that can never be promoted, with the blocking alias reason", true, runUnpromotable},
	{"pressure-hotspot", SevInfo, "block register pressure at or above the threshold", true, runPressure},
}

// context carries one function's prepared analyses through the rules.
type context struct {
	orig      *ir.Function
	f         *ir.Function // normalized SSA clone; nil when prep failed
	dom       *cfg.DomTree
	live      *liveness.Info
	threshold int
}

// analyzeFunc runs the selected rules over one function.
func analyzeFunc(f *ir.Function, selected []rule, opts Options) []Finding {
	ctx := &context{orig: f, threshold: opts.PressureThreshold}
	if ctx.threshold <= 0 {
		ctx.threshold = DefaultPressureThreshold
	}

	needSSA := false
	for _, r := range selected {
		if r.needsSSA {
			needSSA = true
			break
		}
	}
	var out []Finding
	if needSSA {
		clone := f.Clone()
		if _, err := cfg.Normalize(clone); err != nil {
			out = append(out, Finding{Rule: "analysis", Severity: SevError, Func: f.Name, Block: -1,
				Detail: fmt.Sprintf("cannot normalize: %v (SSA rules skipped)", err)})
		} else if dom, err := ssa.Build(clone); err != nil {
			out = append(out, Finding{Rule: "analysis", Severity: SevError, Func: f.Name, Block: -1,
				Detail: fmt.Sprintf("cannot build SSA: %v (SSA rules skipped)", err)})
		} else {
			ctx.f = clone
			ctx.dom = dom
			ctx.live = liveness.Compute(clone)
		}
	}

	for _, r := range selected {
		if r.needsSSA && ctx.f == nil {
			continue
		}
		out = append(out, r.run(ctx)...)
	}
	return out
}

// runUnreachable reports blocks not reachable from the entry, on the
// original (pre-normalize) CFG. Block IDs in these findings are the
// original function's.
func runUnreachable(ctx *context) []Finding {
	f := ctx.orig
	if len(f.Blocks) == 0 {
		return nil
	}
	seen := map[*ir.Block]bool{f.Entry(): true}
	work := []*ir.Block{f.Entry()}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	var out []Finding
	for _, b := range f.Blocks {
		if !seen[b] {
			out = append(out, Finding{Rule: "unreachable-block", Severity: SevWarn, Func: f.Name,
				Block: int(b.ID), Detail: fmt.Sprintf("block b%d (%d instruction(s)) is unreachable from entry", b.ID, len(b.Instrs))})
		}
	}
	return out
}

// runDeadStores reports stores DeadStoreElim would delete.
func runDeadStores(ctx *context) []Finding {
	var out []Finding
	for _, st := range opt.DeadStores(ctx.f) {
		out = append(out, Finding{Rule: "dead-store", Severity: SevWarn, Func: ctx.f.Name,
			Block:  int(st.Parent.ID),
			Detail: fmt.Sprintf("store to %s is never read on any path", locString(st.Loc))})
	}
	return out
}

// runDominance reports SSA dominance violations — definitions that fail
// to dominate a use. On IR produced by this repo's own frontend the rule
// is expected to stay silent; it exists for hand-written or mutated IR.
func runDominance(ctx *context) []Finding {
	if err := ssa.VerifyDominanceWith(ctx.f, ctx.dom); err != nil {
		return []Finding{{Rule: "dominance", Severity: SevError, Func: ctx.f.Name, Block: -1,
			Detail: err.Error()}}
	}
	return nil
}

// runUnpromotable reports memory webs promotion can never touch: array
// resources, and scalars referenced only through aliased operations,
// each with the blocking reason.
func runUnpromotable(ctx *context) []Finding {
	f := ctx.f
	type refCount struct{ direct, aliased, aliasedNonCall int }
	counts := make(map[ir.ResourceID]*refCount)
	tally := func(in *ir.Instr, ref ir.MemRef) {
		base := f.BaseOf(ref.Res)
		c := counts[base.ID]
		if c == nil {
			c = &refCount{}
			counts[base.ID] = c
		}
		if ref.Aliased {
			c.aliased++
			if in.Op != ir.OpCall && in.Op != ir.OpRet {
				c.aliasedNonCall++
			}
		} else {
			c.direct++
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpMemPhi || in.Op == ir.OpDummyLoad {
				continue
			}
			for _, d := range in.MemDefs {
				tally(in, d)
			}
			for _, u := range in.MemUses {
				tally(in, u)
			}
		}
	}

	bases := make([]ir.ResourceID, 0, len(counts))
	for id := range counts {
		bases = append(bases, id)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })

	var out []Finding
	for _, id := range bases {
		res := f.Res(id)
		c := counts[id]
		var reason string
		switch {
		case !res.Promotable():
			reason = "array object: indexed accesses alias every element"
		case c.direct > 0:
			continue // has singleton refs; promotion can work on it
		case c.aliasedNonCall == 0:
			// Touched only by call/return summaries in this function —
			// nothing here blocks promotion elsewhere.
			continue
		case res.Loc.Kind == ir.LocSlot && res.Loc.Slot.Escapes:
			reason = "address escapes to a call or to memory; every access is a pointer access"
		case res.Loc.Kind == ir.LocSlot && res.Loc.Slot.AddrTaken:
			reason = "address taken; referenced only through pointers"
		case res.Loc.Kind == ir.LocGlobal && res.Loc.Global.AddrTaken:
			reason = "address taken; referenced only through pointers"
		default:
			reason = "referenced only through aliased operations"
		}
		out = append(out, Finding{Rule: "unpromotable-web", Severity: SevInfo, Func: f.Name, Block: -1,
			Detail: fmt.Sprintf("%s: never promotable — %s (%d direct, %d aliased ref(s))",
				res.Name, reason, c.direct, c.aliased)})
	}
	return out
}

// runPressure reports blocks whose static register pressure meets the
// threshold.
func runPressure(ctx *context) []Finding {
	var out []Finding
	for _, b := range ctx.f.Blocks {
		ml := ctx.live.BlockMaxLive[b.ID]
		if ml >= ctx.threshold {
			out = append(out, Finding{Rule: "pressure-hotspot", Severity: SevInfo, Func: ctx.f.Name,
				Block:  int(b.ID),
				Detail: fmt.Sprintf("b%d keeps %d values live (threshold %d); promotion here trades memory traffic for spills", b.ID, ml, ctx.threshold)})
		}
	}
	return out
}

// locString renders a memory location for humans.
func locString(l ir.MemLoc) string {
	if l.Offset != 0 {
		return fmt.Sprintf("%s+%d", l.Object(), l.Offset)
	}
	return l.Object()
}

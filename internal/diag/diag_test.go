package diag_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/alias"
	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/source"
	"repro/internal/workload"
)

// analyze compiles src and runs the rules.
func analyze(t *testing.T, src string, opts diag.Options) []diag.Finding {
	t.Helper()
	prog := compileSrc(t, src)
	findings, err := diag.AnalyzeProgram(prog, opts)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	return findings
}

func compileSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := source.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatalf("alias: %v", err)
	}
	return prog
}

func byRule(findings []diag.Finding, rule string) []diag.Finding {
	var out []diag.Finding
	for _, f := range findings {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

func TestDeadStoreRule(t *testing.T) {
	src := `
int live; int dead;
void main() {
	dead = 7;
	live = 1;
	dead = live;
	print(live);
}
`
	findings := analyze(t, src, diag.Options{})
	ds := byRule(findings, "dead-store")
	if len(ds) == 0 {
		t.Fatalf("no dead-store findings in %v", findings)
	}
	joined := ""
	for _, f := range ds {
		if f.Severity != diag.SevWarn {
			t.Errorf("dead-store severity %q, want warn", f.Severity)
		}
		joined += f.Detail + "\n"
	}
	if !strings.Contains(joined, "dead") {
		t.Errorf("dead-store details never name the dead global: %q", joined)
	}
	// Stores to live must not be flagged.
	if strings.Contains(joined, "store to live") {
		t.Errorf("live store misflagged: %q", joined)
	}
}

func TestUnreachableBlockRule(t *testing.T) {
	src := `
int x;
int f() {
	return 1;
	x = 99;
}
void main() { print(f()); }
`
	findings := analyze(t, src, diag.Options{Rules: []string{"unreachable-block"}})
	un := byRule(findings, "unreachable-block")
	if len(un) == 0 {
		t.Fatalf("code after return produced no unreachable-block finding: %v", findings)
	}
	if un[0].Func != "f" {
		t.Errorf("finding anchored to %q, want f", un[0].Func)
	}
}

func TestUnpromotableWebRule(t *testing.T) {
	// arr is indexed with a variable, so every element aliases; g is
	// promotable and must not be flagged.
	src := `
int arr[10];
int g;
void main() {
	int i;
	for (i = 0; i < 10; i++) { arr[i] = i; g += i; }
	print(arr[3] + g);
}
`
	findings := analyze(t, src, diag.Options{Rules: []string{"unpromotable-web"}})
	up := byRule(findings, "unpromotable-web")
	if len(up) == 0 {
		t.Fatalf("aliased array produced no unpromotable-web finding: %v", findings)
	}
	for _, f := range up {
		if strings.Contains(f.Detail, " g ") || strings.HasSuffix(f.Detail, " g") {
			t.Errorf("promotable global g flagged: %q", f.Detail)
		}
	}
	if !strings.Contains(up[0].Detail, "alias") {
		t.Errorf("finding lacks an alias reason: %q", up[0].Detail)
	}
}

func TestPressureHotspotThreshold(t *testing.T) {
	src := `
int a; int b; int c; int d;
void main() {
	int i;
	for (i = 0; i < 10; i++) { a += i; b += a; c += b; d += c; }
	print(a + b + c + d);
}
`
	// Threshold 1: every block with a live register is a hotspot.
	low := analyze(t, src, diag.Options{Rules: []string{"pressure-hotspot"}, PressureThreshold: 1})
	if len(byRule(low, "pressure-hotspot")) == 0 {
		t.Fatal("threshold 1 flagged no blocks")
	}
	// An absurd threshold flags nothing.
	high := analyze(t, src, diag.Options{Rules: []string{"pressure-hotspot"}, PressureThreshold: 10_000})
	if n := len(byRule(high, "pressure-hotspot")); n != 0 {
		t.Fatalf("threshold 10000 flagged %d blocks", n)
	}
}

func TestUnknownRuleRejected(t *testing.T) {
	prog := compileSrc(t, "void main() { print(1); }")
	_, err := diag.AnalyzeProgram(prog, diag.Options{Rules: []string{"no-such-rule"}})
	if err == nil {
		t.Fatal("unknown rule accepted")
	}
	if !strings.Contains(err.Error(), "no-such-rule") {
		t.Errorf("error does not name the bad rule: %v", err)
	}
}

// TestDeterministicAcrossRuns: the full rule set over the whole suite
// must produce identical findings on repeated runs (ordering included).
func TestDeterministicAcrossRuns(t *testing.T) {
	for _, w := range workload.Suite() {
		a, err := diag.AnalyzeProgram(compileSrc(t, w.Src), diag.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		b, err := diag.AnalyzeProgram(compileSrc(t, w.Src), diag.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: findings differ across runs:\n%v\nvs\n%v", w.Name, a, b)
		}
	}
}

func TestReportJSONShape(t *testing.T) {
	findings := analyze(t, `
int dead;
void main() { dead = 3; dead = 4; print(7); }
`, diag.Options{})
	data, err := diag.FormatJSON(findings)
	if err != nil {
		t.Fatal(err)
	}
	var rep diag.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if rep.SchemaVersion != diag.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", rep.SchemaVersion, diag.SchemaVersion)
	}
	if rep.Warnings == 0 {
		t.Errorf("report counted no warnings: %+v", rep)
	}
	if rep.Findings == nil {
		t.Error("findings array must never be null")
	}
}

// TestPipelineDiagnoseStage: the opt-in stage surfaces the same
// findings on the Outcome and does not perturb the paranoid
// differential.
func TestPipelineDiagnoseStage(t *testing.T) {
	src := `
int dead;
void main() { dead = 3; dead = 4; print(7); }
`
	out, err := pipeline.Run(src, pipeline.Options{
		Diagnose: true,
		Check:    pipeline.CheckParanoid,
	})
	if err != nil {
		t.Fatalf("pipeline.Run: %v", err)
	}
	if len(byRule(out.Diagnostics, "dead-store")) == 0 {
		t.Fatalf("outcome carries no dead-store diagnostics: %v", out.Diagnostics)
	}
	direct, err := diag.AnalyzeProgram(compileSrc(t, src), diag.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Diagnostics, direct) {
		t.Fatalf("pipeline diagnostics differ from direct analysis:\n%v\nvs\n%v", out.Diagnostics, direct)
	}
}

// Package baseline implements the loop-based register promotion the
// paper compares against (in the style of Lu–Cooper, PLDI 1997, and the
// IMPACT compiler's global variable migration): for each loop,
// innermost first, promote every scalar variable whose references in
// the loop are all unambiguous direct loads and stores. One aliased
// reference — a call or pointer access that may touch the variable —
// anywhere in the loop disqualifies the variable for that loop, no
// matter how rarely the aliased path executes. The pass is profile-
// blind and runs on the normalized pre-SSA IR.
//
// The contrast with the paper's algorithm (internal/core) is the point:
// on loops whose only aliased references sit on cold paths, the
// baseline does nothing while the SSA algorithm promotes and pays one
// compensation load and store on the cold path.
package baseline

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// Stats reports what the baseline promoter did.
type Stats struct {
	VarsConsidered int
	VarsPromoted   int
	LoadsReplaced  int
	StoresDeleted  int
	LoadsInserted  int
	StoresInserted int
}

// PromoteFunction promotes scalars loop by loop, bottom-up. The
// function must be alias-annotated, normalized, and not in SSA form.
func PromoteFunction(f *ir.Function, forest *cfg.Forest) *Stats {
	st := &Stats{}
	forest.Root.Walk(func(iv *cfg.Interval) {
		if iv.Root {
			return
		}
		promoteInLoop(f, iv, st)
	})
	return st
}

func promoteInLoop(f *ir.Function, iv *cfg.Interval, st *Stats) {
	// Classify every base resource referenced in the loop.
	direct := make(map[ir.ResourceID]bool)  // has direct load/store
	aliased := make(map[ir.ResourceID]bool) // has aliased ref
	scan := func(refs []ir.MemRef) {
		for _, r := range refs {
			base := f.BaseOf(r.Res)
			if !base.Promotable() {
				continue
			}
			if r.Aliased {
				aliased[base.ID] = true
			} else {
				direct[base.ID] = true
			}
		}
	}
	for _, b := range iv.Blocks {
		for _, in := range b.Instrs {
			scan(in.MemDefs)
			scan(in.MemUses)
		}
	}

	for _, base := range sortedKeys(direct) {
		st.VarsConsidered++
		if aliased[base] {
			continue // ambiguous reference anywhere in the loop: skip
		}
		promoteVar(f, iv, base, st)
		st.VarsPromoted++
	}
}

func promoteVar(f *ir.Function, iv *cfg.Interval, base ir.ResourceID, st *Stats) {
	res := f.Res(base)
	reg := f.NewReg(res.Name)

	// Load the variable into the register at the preheader.
	ld := ir.NewInstr(ir.OpLoad, reg)
	ld.Loc = res.Loc
	ld.MemUses = []ir.MemRef{{Res: base}}
	iv.Preheader.InsertBeforeTerm(ld)
	st.LoadsInserted++

	// Rewrite every direct reference in the loop.
	hasStore := false
	for _, b := range iv.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad:
				if in.MemUses[0].Res == base {
					in.Op = ir.OpCopy
					in.Args = []ir.Value{ir.RegVal(reg)}
					in.Loc = ir.MemLoc{}
					in.MemUses = nil
					st.LoadsReplaced++
				}
			case ir.OpStore:
				if in.MemDefs[0].Res == base {
					in.Op = ir.OpCopy
					in.Dst = reg
					// Args[0] (the stored value) becomes the copy source.
					in.Loc = ir.MemLoc{}
					in.MemDefs = nil
					hasStore = true
					st.StoresDeleted++
				}
			}
		}
	}

	// Store back at every exit if the loop modified the variable.
	if hasStore {
		for _, e := range iv.ExitEdges {
			stIn := ir.NewInstr(ir.OpStore, ir.NoReg, ir.RegVal(reg))
			stIn.Loc = res.Loc
			stIn.MemDefs = []ir.MemRef{{Res: base}}
			if first := firstNonPhi(e.Tail); first != nil {
				e.Tail.InsertBefore(stIn, first)
			} else {
				e.Tail.Append(stIn)
			}
			st.StoresInserted++
		}
	}
}

func firstNonPhi(b *ir.Block) *ir.Instr {
	for _, in := range b.Instrs {
		if !in.Op.IsPhi() {
			return in
		}
	}
	return nil
}

func sortedKeys(set map[ir.ResourceID]bool) []ir.ResourceID {
	out := make([]ir.ResourceID, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

package baseline_test

import (
	"reflect"
	"testing"

	"repro/internal/pipeline"
)

// run executes the baseline pipeline and checks semantic equivalence.
func run(t *testing.T, src string) *pipeline.Outcome {
	t.Helper()
	out, err := pipeline.Run(src, pipeline.Options{Algorithm: pipeline.AlgBaseline})
	if err != nil {
		t.Fatalf("pipeline.Run: %v", err)
	}
	if !reflect.DeepEqual(out.Before.Output, out.After.Output) {
		t.Fatalf("baseline changed output:\nbefore: %v\nafter:  %v\n%s",
			out.Before.Output, out.After.Output, out.Prog)
	}
	if !reflect.DeepEqual(out.Before.Globals, out.After.Globals) {
		t.Fatalf("baseline changed globals:\nbefore: %v\nafter:  %v", out.Before.Globals, out.After.Globals)
	}
	return out
}

func TestBaselinePromotesCleanLoop(t *testing.T) {
	out := run(t, `
int x;
void main() {
	int i;
	for (i = 0; i < 100; i++) x++;
	print(x);
}`)
	if out.TotalStats.WebsPromoted == 0 {
		t.Fatalf("clean loop not promoted: %+v", out.TotalStats)
	}
	if out.After.DynMemOps() > 5 {
		t.Errorf("after promotion %d mem ops, want <= 5 (before %d)",
			out.After.DynMemOps(), out.Before.DynMemOps())
	}
}

func TestBaselineRefusesLoopWithCall(t *testing.T) {
	// The defining weakness the paper targets: one call anywhere in the
	// loop and the baseline gives up entirely, however cold the path.
	out := run(t, `
int x;
int log;
void foo() { log = log + 1; }
void main() {
	int i;
	for (i = 0; i < 100; i++) {
		x++;
		if (x > 95) foo();
	}
	print(x);
}`)
	if out.After.DynMemOps() != out.Before.DynMemOps() {
		t.Errorf("baseline should not touch a call-bearing loop: before=%d after=%d",
			out.Before.DynMemOps(), out.After.DynMemOps())
	}
}

func TestBaselineRefusesLoopWithPointer(t *testing.T) {
	out := run(t, `
int x;
void main() {
	int* p = &x;
	int i;
	for (i = 0; i < 50; i++) {
		x++;
		if (i == 49) { *p = 0; }
	}
	print(x);
}`)
	// x is aliased by *p inside the loop: untouchable for the baseline.
	mainStats := out.Stats["main"]
	if mainStats.WebsPromoted != 0 {
		t.Errorf("baseline promoted an aliased variable: %+v", mainStats)
	}
}

func TestBaselineNestedLoops(t *testing.T) {
	out := run(t, `
int g;
void main() {
	int i; int j;
	for (i = 0; i < 10; i++) {
		for (j = 0; j < 10; j++) g += j;
	}
	print(g);
}`)
	// Inner promotion leaves a load/store pair in the outer loop; outer
	// promotion lifts them again. Memory traffic collapses to O(1).
	if out.After.DynMemOps() > 6 {
		t.Errorf("nested baseline promotion left %d mem ops (before %d)",
			out.After.DynMemOps(), out.Before.DynMemOps())
	}
}

func TestBaselinePromotesReadOnly(t *testing.T) {
	out := run(t, `
int limit = 500;
void main() {
	int i;
	int s = 0;
	for (i = 0; i < limit; i++) s += i;
	print(s);
}`)
	if out.After.DynLoads() > 4 {
		t.Errorf("read-only global not hoisted: %d loads (before %d)",
			out.After.DynLoads(), out.Before.DynLoads())
	}
	// No stores in the loop: no store-back may be added.
	if out.After.DynStores() > out.Before.DynStores() {
		t.Errorf("baseline added stores to a read-only promotion")
	}
}

package irimport

import (
	"repro/internal/ir"
)

// ---- registers and symbols ----

// getReg returns the register for a textual %name, creating it on first
// mention. Use before definition is allowed (loop-carried values read
// at a block top before the textual def); body() errors at the end of
// the function for names that never get a definition.
func (fp *funcParser) getReg(t token) (ir.RegID, error) {
	if s, ok := fp.syms[t.text]; ok {
		_ = s
		return ir.NoReg, fp.p.errTok(t, "%%%s names memory (alloca/getelementptr), not a value", t.text)
	}
	ri, ok := fp.regs[t.text]
	if !ok {
		ri = &regInfo{id: fp.f.NewReg(""), firstUse: t.pos}
		fp.regs[t.text] = ri
	}
	return ri.id, nil
}

// defReg returns the register for an instruction destination %name,
// marking it defined. Reassignment of an already-defined register is
// allowed — the importer produces the pre-SSA form ssa.Build expects.
func (fp *funcParser) defReg(t token) (ir.RegID, error) {
	r, err := fp.getReg(t)
	if err != nil {
		return r, err
	}
	fp.regs[t.text].defined = true
	return r, nil
}

// defSym records a memory symbol (alloca or getelementptr result).
func (fp *funcParser) defSym(t token, s *sym) error {
	if _, clash := fp.regs[t.text]; clash {
		return fp.p.errTok(t, "%%%s is already used as a value", t.text)
	}
	if old, clash := fp.syms[t.text]; clash {
		return fp.p.errTok(t, "redefinition of %%%s (first defined at %s)", t.text, old.pos)
	}
	s.pos = t.pos
	fp.syms[t.text] = s
	return nil
}

func (fp *funcParser) emit(in *ir.Instr) { fp.cur.Append(in) }

// addrTemp emits an addr-of into a fresh temp register and returns it,
// marking the underlying storage address-taken (the same bookkeeping
// the mini-C frontend does for `&x`, which alias analysis relies on).
func (fp *funcParser) addrTemp(loc ir.MemLoc) ir.RegID {
	markAddrTaken(loc)
	t := fp.f.NewReg("")
	in := ir.NewInstr(ir.OpAddr, t)
	in.Loc = loc
	fp.emit(in)
	return t
}

func markAddrTaken(loc ir.MemLoc) {
	switch loc.Kind {
	case ir.LocGlobal:
		loc.Global.AddrTaken = true
	case ir.LocSlot:
		loc.Slot.AddrTaken = true
	}
}

// ---- operand resolution ----

// value resolves an operand that is used as an integer value. Pointers
// to named storage (allocas, globals, constant geps) materialize as
// addr-of temps; a dynamic gep materializes as addr-of plus add.
func (fp *funcParser) value(t token) (ir.Value, error) {
	switch t.kind {
	case tInt:
		return ir.ConstVal(t.ival), nil
	case tWord:
		switch t.text {
		case "true":
			return ir.ConstVal(1), nil
		case "false", "null", "zeroinitializer":
			return ir.ConstVal(0), nil
		case "undef", "poison":
			return ir.Value{}, fp.p.errTok(t, "undef/poison values are not supported")
		}
		return ir.Value{}, fp.p.errTok(t, "expected value, found %s", t.describe())
	case tGlobal:
		g := fp.p.prog.FindGlobal(t.text)
		if g == nil {
			return ir.Value{}, fp.p.errTok(t, "@%s is not a global (function addresses are not supported)", t.text)
		}
		return ir.RegVal(fp.addrTemp(ir.GlobalLoc(g, 0))), nil
	case tLocal:
		if s, ok := fp.syms[t.text]; ok {
			return fp.placeValue(symPlace(s))
		}
		r, err := fp.getReg(t)
		if err != nil {
			return ir.Value{}, err
		}
		return ir.RegVal(r), nil
	}
	return ir.Value{}, fp.p.errTok(t, "expected value, found %s", t.describe())
}

// place is a resolved pointer operand: a direct cell, an array cell
// selected by an index, or a runtime pointer value.
type place struct {
	kind placeKind
	loc  ir.MemLoc
	idx  ir.Value
	ptr  ir.Value
}

type placeKind int

const (
	placeLoc placeKind = iota
	placeIdx
	placePtr
)

// placeValue materializes a place as an integer value (its address).
func (fp *funcParser) placeValue(pl place) (ir.Value, error) {
	switch pl.kind {
	case placeLoc:
		return ir.RegVal(fp.addrTemp(pl.loc)), nil
	case placeIdx:
		if pl.idx.IsConst() {
			loc := pl.loc
			loc.Offset = int(pl.idx.Const())
			return ir.RegVal(fp.addrTemp(loc)), nil
		}
		base := fp.addrTemp(pl.loc)
		sum := fp.f.NewReg("")
		fp.emit(ir.NewInstr(ir.OpAdd, sum, ir.RegVal(base), pl.idx))
		return ir.RegVal(sum), nil
	}
	return pl.ptr, nil
}

// symPlace converts a memory symbol into a place. Aggregates resolve
// to their first cell, which is what their base address points at.
func symPlace(s *sym) place {
	switch {
	case s.kind == symSlot && (s.slot.IsArray || s.slot.Size > 1):
		return place{kind: placeIdx, loc: ir.SlotLoc(s.slot, 0), idx: ir.ConstVal(0)}
	case s.kind == symSlot:
		return place{kind: placeLoc, loc: ir.SlotLoc(s.slot, 0)}
	case s.arr:
		return place{kind: placeIdx, loc: s.loc, idx: s.idx}
	default:
		return place{kind: placeLoc, loc: s.loc}
	}
}

// pointer resolves the pointer operand of a load or store; whole
// aggregates are rejected (index them with getelementptr).
func (fp *funcParser) pointer() (place, error) { return fp.pointerEx(false) }

// pointerOrSym resolves a pointer operand in address-taking position,
// where whole aggregates are fine (their address is cell 0).
func (fp *funcParser) pointerOrSym() (place, error) { return fp.pointerEx(true) }

func (fp *funcParser) pointerEx(allowAgg bool) (place, error) {
	p := fp.p
	t := p.next()
	switch t.kind {
	case tGlobal:
		g := p.prog.FindGlobal(t.text)
		if g == nil {
			return place{}, p.errTok(t, "unknown global @%s", t.text)
		}
		if g.Size != 1 || g.IsArray {
			if !allowAgg {
				return place{}, p.errTok(t, "cannot access whole aggregate @%s; use getelementptr", t.text)
			}
			return place{kind: placeIdx, loc: ir.GlobalLoc(g, 0), idx: ir.ConstVal(0)}, nil
		}
		return place{kind: placeLoc, loc: ir.GlobalLoc(g, 0)}, nil
	case tLocal:
		if s, ok := fp.syms[t.text]; ok {
			if s.kind == symSlot && (s.slot.Size != 1 || s.slot.IsArray) && !allowAgg {
				return place{}, p.errTok(t, "cannot access whole aggregate %%%s; use getelementptr", t.text)
			}
			return symPlace(s), nil
		}
		r, err := fp.getReg(t)
		if err != nil {
			return place{}, err
		}
		return place{kind: placePtr, ptr: ir.RegVal(r)}, nil
	case tWord:
		switch t.text {
		case "null":
			return place{kind: placePtr, ptr: ir.ConstVal(0)}, nil
		case "inttoptr":
			// inttoptr (i64 N to i64*)
			if _, err := p.expectPunct("("); err != nil {
				return place{}, err
			}
			if _, err := p.parseType(); err != nil {
				return place{}, err
			}
			vt := p.next()
			if vt.kind != tInt {
				return place{}, p.errTok(vt, "expected integer in inttoptr constant, found %s", vt.describe())
			}
			if !p.acceptWord("to") {
				return place{}, p.errTok(p.peek(), "expected \"to\" in inttoptr constant")
			}
			if _, err := p.parseType(); err != nil {
				return place{}, err
			}
			if _, err := p.expectPunct(")"); err != nil {
				return place{}, err
			}
			return place{kind: placePtr, ptr: ir.ConstVal(vt.ival)}, nil
		case "getelementptr":
			// Constant expression: getelementptr [inbounds] (TY, TY* @g, ...)
			p.acceptWord("inbounds")
			if _, err := p.expectPunct("("); err != nil {
				return place{}, err
			}
			elem, err := p.parseType()
			if err != nil {
				return place{}, err
			}
			if _, err := p.expectPunct(","); err != nil {
				return place{}, err
			}
			if _, err := p.parseType(); err != nil {
				return place{}, err
			}
			base := p.next()
			if base.kind != tGlobal {
				return place{}, p.errTok(base, "constant getelementptr base must be a global")
			}
			idx, err := fp.gepIndexes(base, elem)
			if err != nil {
				return place{}, err
			}
			if _, err := p.expectPunct(")"); err != nil {
				return place{}, err
			}
			s, err := fp.resolveGepTarget(base, idx)
			if err != nil {
				return place{}, err
			}
			return symPlace(s), nil
		}
	}
	return place{}, p.errTok(t, "expected pointer operand, found %s", t.describe())
}

// ---- instructions ----

var arithOps = map[string]ir.Op{
	"add": ir.OpAdd, "sub": ir.OpSub, "mul": ir.OpMul,
	"sdiv": ir.OpDiv, "srem": ir.OpRem,
	"and": ir.OpAnd, "or": ir.OpOr, "xor": ir.OpXor,
	"shl": ir.OpShl, "ashr": ir.OpShr,
}

var cmpPreds = map[string]ir.Op{
	"eq": ir.OpEq, "ne": ir.OpNe,
	"slt": ir.OpLt, "sle": ir.OpLe, "sgt": ir.OpGt, "sge": ir.OpGe,
}

// instr parses one instruction into the current block.
func (fp *funcParser) instr() error {
	p := fp.p
	t := p.next()
	if t.kind == tLocal {
		dst := t
		if _, err := p.expectPunct("="); err != nil {
			return err
		}
		op := p.next()
		if op.kind != tWord {
			return p.errTok(op, "expected instruction, found %s", op.describe())
		}
		return fp.valueInstr(dst, op)
	}
	if t.kind != tWord {
		return p.errTok(t, "expected instruction, found %s", t.describe())
	}
	switch t.text {
	case "store":
		return fp.store()
	case "call", "tail":
		if t.text == "tail" && !p.acceptWord("call") {
			return p.errTok(p.peek(), "expected \"call\" after \"tail\"")
		}
		return fp.call(token{}, t.pos, false)
	case "br":
		return fp.branch(t)
	case "ret":
		return fp.ret(t)
	case "switch", "unreachable", "indirectbr", "invoke", "resume":
		return p.errTok(t, "%q is outside the supported dialect (see DESIGN.md §14)", t.text)
	case "fence", "atomicrmw", "cmpxchg":
		return p.errTok(t, "atomic instruction %q is not supported", t.text)
	}
	return p.errTok(t, "unknown instruction %q", t.text)
}

// valueInstr parses `%dst = <op> ...`.
func (fp *funcParser) valueInstr(dst, op token) error {
	p := fp.p
	switch op.text {
	case "add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr":
		for p.acceptWord("nuw") || p.acceptWord("nsw") || p.acceptWord("exact") || p.acceptWord("disjoint") {
		}
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		if !ty.isInt() {
			return p.errTok(op, "%s requires an integer type", op.text)
		}
		a, err := fp.operand()
		if err != nil {
			return err
		}
		if _, err := p.expectPunct(","); err != nil {
			return err
		}
		b, err := fp.operand()
		if err != nil {
			return err
		}
		d, err := fp.defReg(dst)
		if err != nil {
			return err
		}
		fp.emit(ir.NewInstr(arithOps[op.text], d, a, b))
		return nil

	case "udiv", "urem", "lshr":
		return p.errTok(op, "unsigned %s is outside the dialect (values are signed 64-bit; use sdiv/srem/ashr)", op.text)

	case "icmp":
		pred := p.next()
		if pred.kind != tWord {
			return p.errTok(pred, "expected icmp predicate, found %s", pred.describe())
		}
		irop, ok := cmpPreds[pred.text]
		if !ok {
			switch pred.text {
			case "ugt", "uge", "ult", "ule":
				return p.errTok(pred, "unsigned predicate %s is outside the dialect (use signed slt/sle/sgt/sge)", pred.text)
			}
			return p.errTok(pred, "unknown icmp predicate %q", pred.text)
		}
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		if !ty.isInt() && !ty.isPtr() {
			return p.errTok(op, "icmp requires integer or pointer operands")
		}
		a, err := fp.operand()
		if err != nil {
			return err
		}
		if _, err := p.expectPunct(","); err != nil {
			return err
		}
		b, err := fp.operand()
		if err != nil {
			return err
		}
		d, err := fp.defReg(dst)
		if err != nil {
			return err
		}
		fp.emit(ir.NewInstr(irop, d, a, b))
		return nil

	case "phi":
		if _, err := p.parseType(); err != nil {
			return err
		}
		if len(fp.cur.Instrs) > 0 {
			return p.errTok(op, "phi must be at the top of its block")
		}
		d, err := fp.defReg(dst)
		if err != nil {
			return err
		}
		rec := phiRec{blk: fp.cur, dst: d, pos: op.pos}
		for {
			if _, err := p.expectPunct("["); err != nil {
				return err
			}
			v, err := fp.phiOperand()
			if err != nil {
				return err
			}
			if _, err := p.expectPunct(","); err != nil {
				return err
			}
			lt := p.next()
			if lt.kind != tLocal {
				return p.errTok(lt, "expected predecessor label in phi, found %s", lt.describe())
			}
			if _, err := p.expectPunct("]"); err != nil {
				return err
			}
			rec.ops = append(rec.ops, v)
			rec.labels = append(rec.labels, lt.text)
			rec.lpos = append(rec.lpos, lt.pos)
			if !p.acceptPunct(",") {
				break
			}
		}
		fp.phis = append(fp.phis, rec)
		return nil

	case "load":
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		if !ty.isInt() {
			return p.errTok(op, "only integer loads are supported")
		}
		if _, err := p.expectPunct(","); err != nil {
			return err
		}
		if _, err := p.parseType(); err != nil {
			return err
		}
		pl, err := fp.pointer()
		if err != nil {
			return err
		}
		d, err := fp.defReg(dst)
		if err != nil {
			return err
		}
		switch pl.kind {
		case placeLoc:
			in := ir.NewInstr(ir.OpLoad, d)
			in.Loc = pl.loc
			fp.emit(in)
		case placeIdx:
			in := ir.NewInstr(ir.OpLoadIdx, d, pl.idx)
			in.Loc = pl.loc
			fp.emit(in)
		case placePtr:
			fp.emit(ir.NewInstr(ir.OpLoadPtr, d, pl.ptr))
		}
		p.skipAlign()
		return nil

	case "alloca":
		if fp.cur != fp.f.Blocks[0] {
			return p.errTok(op, "alloca outside the entry block is not supported")
		}
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		var slot *ir.Slot
		switch {
		case ty.isInt():
			slot = fp.f.NewSlot(dst.text, 1, false, nil)
		case ty.arr && ty.ptr == 0:
			slot = fp.f.NewSlot(dst.text, ty.n, true, nil)
		default:
			return p.errTok(op, "alloca of unsupported type (want iN or [N x iN])")
		}
		p.skipAlign()
		return fp.defSym(dst, &sym{kind: symSlot, slot: slot})

	case "getelementptr":
		return fp.gep(dst, op)

	case "ptrtoint":
		if _, err := p.parseType(); err != nil {
			return err
		}
		pl, err := fp.pointerOrSym()
		if err != nil {
			return err
		}
		if !p.acceptWord("to") {
			return p.errTok(p.peek(), "expected \"to\" in ptrtoint")
		}
		if _, err := p.parseType(); err != nil {
			return err
		}
		d, err := fp.defReg(dst)
		if err != nil {
			return err
		}
		switch pl.kind {
		case placeLoc:
			markAddrTaken(pl.loc)
			in := ir.NewInstr(ir.OpAddr, d)
			in.Loc = pl.loc
			fp.emit(in)
		case placeIdx:
			if pl.idx.IsConst() {
				loc := pl.loc
				loc.Offset = int(pl.idx.Const())
				markAddrTaken(loc)
				in := ir.NewInstr(ir.OpAddr, d)
				in.Loc = loc
				fp.emit(in)
			} else {
				base := fp.addrTemp(pl.loc)
				fp.emit(ir.NewInstr(ir.OpAdd, d, ir.RegVal(base), pl.idx))
			}
		case placePtr:
			fp.emit(ir.NewInstr(ir.OpCopy, d, pl.ptr))
		}
		return nil

	case "inttoptr", "zext", "sext", "trunc", "bitcast":
		v, err := fp.castOperand(op)
		if err != nil {
			return err
		}
		d, err := fp.defReg(dst)
		if err != nil {
			return err
		}
		fp.emit(ir.NewInstr(ir.OpCopy, d, v))
		return nil

	case "call", "tail":
		if op.text == "tail" && !p.acceptWord("call") {
			return p.errTok(p.peek(), "expected \"call\" after \"tail\"")
		}
		return fp.call(dst, op.pos, true)

	case "select", "freeze", "fadd", "fsub", "fmul", "fdiv":
		return p.errTok(op, "%q is outside the supported dialect (see DESIGN.md §14)", op.text)
	}
	return p.errTok(op, "unknown instruction %q", op.text)
}

// operand parses and resolves one value operand (with the
// getelementptr/inttoptr constant-expression forms reduced through the
// pointer path when they appear in value position).
func (fp *funcParser) operand() (ir.Value, error) {
	if t := fp.p.peek(); t.kind == tWord && (t.text == "inttoptr" || t.text == "getelementptr") {
		pl, err := fp.pointerOrSym()
		if err != nil {
			return ir.Value{}, err
		}
		return fp.placeValue(pl)
	}
	return fp.value(fp.p.next())
}

// phiOperand parses one phi incoming value. Unlike operand it emits no
// IR into the current (phi's own) block: pointer constants are recorded
// as locations for lowerPhis to materialize in each predecessor. A
// dynamically indexed address has no block whose dominance covers every
// predecessor copy, so it is rejected rather than mis-lowered.
func (fp *funcParser) phiOperand() (phiOperand, error) {
	p := fp.p
	t := p.peek()
	pointerish := t.kind == tGlobal ||
		(t.kind == tLocal && fp.syms[t.text] != nil) ||
		(t.kind == tWord && (t.text == "null" || t.text == "inttoptr" || t.text == "getelementptr"))
	if !pointerish {
		v, err := fp.value(p.next())
		if err != nil {
			return phiOperand{}, err
		}
		return phiOperand{val: v}, nil
	}
	pl, err := fp.pointerOrSym()
	if err != nil {
		return phiOperand{}, err
	}
	switch pl.kind {
	case placeLoc:
		return phiOperand{isLoc: true, loc: pl.loc}, nil
	case placeIdx:
		if !pl.idx.IsConst() {
			return phiOperand{}, p.errTok(t, "dynamically indexed address is not a valid phi operand")
		}
		loc := pl.loc
		loc.Offset = int(pl.idx.Const())
		return phiOperand{isLoc: true, loc: loc}, nil
	}
	return phiOperand{val: pl.ptr}, nil
}

// castOperand parses `TYPE VAL to TYPE` and returns VAL as a value.
func (fp *funcParser) castOperand(op token) (ir.Value, error) {
	p := fp.p
	if _, err := p.parseType(); err != nil {
		return ir.Value{}, err
	}
	v, err := fp.operand()
	if err != nil {
		return ir.Value{}, err
	}
	if !p.acceptWord("to") {
		return ir.Value{}, p.errTok(p.peek(), "expected \"to\" in %s", op.text)
	}
	if _, err := p.parseType(); err != nil {
		return ir.Value{}, err
	}
	return v, nil
}

func (p *parser) skipAlign() {
	for p.acceptPunct(",") {
		if p.acceptWord("align") {
			if p.peek().kind == tInt {
				p.i++
			}
			continue
		}
		// Unknown trailing clause: put the comma back for the caller's
		// error message.
		p.unread()
		return
	}
}

func (fp *funcParser) store() error {
	p := fp.p
	ty, err := p.parseType()
	if err != nil {
		return err
	}
	if !ty.isInt() && !ty.isPtr() {
		return p.errTok(p.peek(), "only integer and pointer stores are supported")
	}
	v, err := fp.operand()
	if err != nil {
		return err
	}
	if _, err := p.expectPunct(","); err != nil {
		return err
	}
	if _, err := p.parseType(); err != nil {
		return err
	}
	pl, err := fp.pointer()
	if err != nil {
		return err
	}
	switch pl.kind {
	case placeLoc:
		in := ir.NewInstr(ir.OpStore, ir.NoReg, v)
		in.Loc = pl.loc
		fp.emit(in)
	case placeIdx:
		in := ir.NewInstr(ir.OpStoreIdx, ir.NoReg, pl.idx, v)
		in.Loc = pl.loc
		fp.emit(in)
	case placePtr:
		fp.emit(ir.NewInstr(ir.OpStorePtr, ir.NoReg, pl.ptr, v))
	}
	p.skipAlign()
	return nil
}

// call parses a call; dst is the zero token for statement calls.
func (fp *funcParser) call(dst token, pos Pos, hasDst bool) error {
	p := fp.p
	for p.peek().kind == tWord && !p.typeStart() {
		p.i++ // calling convention / fn attrs
	}
	retty, err := p.parseType()
	if err != nil {
		return err
	}
	// A literal function type like `i64 (i64, i64)` before the callee
	// is not emitted by the producers this dialect targets; the callee
	// must follow directly.
	ct := p.next()
	if ct.kind != tGlobal {
		return p.errTok(ct, "expected direct callee @name, found %s (indirect calls are not supported)", ct.describe())
	}
	if _, err := p.expectPunct("("); err != nil {
		return err
	}
	var args []ir.Value
	for !p.acceptPunct(")") {
		if len(args) > 0 {
			if _, err := p.expectPunct(","); err != nil {
				return err
			}
		}
		if _, err := p.parseType(); err != nil {
			return err
		}
		for p.peek().kind == tWord { // argument attributes
			switch p.peek().text {
			case "true", "false", "null", "undef", "poison", "zeroinitializer", "inttoptr", "getelementptr":
			default:
				p.i++
				continue
			}
			break
		}
		v, err := fp.operand()
		if err != nil {
			return err
		}
		args = append(args, v)
	}
	if ct.text == "print" {
		if hasDst {
			return p.errAt(pos, "@print returns no value")
		}
		if len(args) != 1 {
			return p.errAt(pos, "@print takes exactly one argument")
		}
		fp.emit(ir.NewInstr(ir.OpPrint, ir.NoReg, args[0]))
		return nil
	}
	d := ir.NoReg
	if hasDst {
		if retty.void {
			return p.errAt(pos, "cannot name the result of a void call")
		}
		d, err = fp.defReg(dst)
		if err != nil {
			return err
		}
	}
	in := ir.NewInstr(ir.OpCall, d, args...)
	in.Callee = ct.text
	fp.emit(in)
	p.calls = append(p.calls, callSite{callee: ct.text, nargs: len(args), hasDst: hasDst, pos: pos})
	return nil
}

func (fp *funcParser) branch(t token) error {
	p := fp.p
	if p.acceptWord("label") {
		bt := p.next()
		if bt.kind != tLocal {
			return p.errTok(bt, "expected block label, found %s", bt.describe())
		}
		b, ok := fp.blocks[bt.text]
		if !ok {
			return p.errTok(bt, "branch to unknown label %%%s", bt.text)
		}
		fp.emit(ir.NewInstr(ir.OpJmp, ir.NoReg))
		ir.AddEdge(fp.cur, b)
		fp.done = true
		return nil
	}
	ty, err := p.parseType()
	if err != nil {
		return err
	}
	if !ty.isInt() {
		return p.errTok(t, "conditional branch needs an integer condition")
	}
	cond, err := fp.operand()
	if err != nil {
		return err
	}
	if _, err := p.expectPunct(","); err != nil {
		return err
	}
	readTarget := func() (*ir.Block, string, error) {
		if !p.acceptWord("label") {
			return nil, "", p.errTok(p.peek(), "expected \"label\" in br")
		}
		bt := p.next()
		if bt.kind != tLocal {
			return nil, "", p.errTok(bt, "expected block label, found %s", bt.describe())
		}
		b, ok := fp.blocks[bt.text]
		if !ok {
			return nil, "", p.errTok(bt, "branch to unknown label %%%s", bt.text)
		}
		return b, bt.text, nil
	}
	thenB, _, err := readTarget()
	if err != nil {
		return err
	}
	if _, err := p.expectPunct(","); err != nil {
		return err
	}
	elseB, _, err := readTarget()
	if err != nil {
		return err
	}
	if thenB == elseB {
		// A two-way branch to one target is a jump; ir.Verify rejects
		// duplicate successor edges.
		fp.emit(ir.NewInstr(ir.OpJmp, ir.NoReg))
		ir.AddEdge(fp.cur, thenB)
	} else {
		fp.emit(ir.NewInstr(ir.OpBr, ir.NoReg, cond))
		ir.AddEdge(fp.cur, thenB)
		ir.AddEdge(fp.cur, elseB)
	}
	fp.done = true
	return nil
}

func (fp *funcParser) ret(t token) error {
	p := fp.p
	ty, err := p.parseType()
	if err != nil {
		return err
	}
	if ty.void {
		if fp.retty.isInt() {
			return p.errTok(t, "ret void in function returning an integer")
		}
		fp.emit(ir.NewInstr(ir.OpRet, ir.NoReg))
		fp.done = true
		return nil
	}
	if !ty.isInt() {
		return p.errTok(t, "only integer returns are supported")
	}
	if fp.retty.void {
		return p.errTok(t, "ret with a value in a void function")
	}
	v, err := fp.operand()
	if err != nil {
		return err
	}
	fp.emit(ir.NewInstr(ir.OpRet, ir.NoReg, v))
	fp.done = true
	return nil
}

// gep parses `%dst = getelementptr [inbounds] TY, TY* BASE, i64 IDX
// [, i64 IDX2]`. Over named storage it is purely symbolic — the result
// records which cell is addressed and no IR is emitted; over a runtime
// pointer it lowers to integer arithmetic (addresses are cell-granular
// in the interpreter's flat arena, so an i64 element step is +1).
func (fp *funcParser) gep(dst, op token) error {
	p := fp.p
	p.acceptWord("inbounds")
	elem, err := p.parseType()
	if err != nil {
		return err
	}
	if !elem.isInt() && !(elem.arr && elem.ptr == 0) {
		return p.errTok(op, "getelementptr over unsupported element type")
	}
	if _, err := p.expectPunct(","); err != nil {
		return err
	}
	if _, err := p.parseType(); err != nil {
		return err
	}
	base := p.next()
	if _, err := p.expectPunct(","); err != nil {
		return err
	}
	// Pointer in a register: lower to integer arithmetic and define
	// %dst as a plain value.
	if base.kind == tLocal {
		if _, isSym := fp.syms[base.text]; !isSym {
			idx, err := fp.gepIndexTail(op, elem)
			if err != nil {
				return err
			}
			p.skipAlign()
			r, err := fp.getReg(base)
			if err != nil {
				return err
			}
			d, err := fp.defReg(dst)
			if err != nil {
				return err
			}
			if idx.IsConst() && idx.Const() == 0 {
				fp.emit(ir.NewInstr(ir.OpCopy, d, ir.RegVal(r)))
			} else {
				fp.emit(ir.NewInstr(ir.OpAdd, d, ir.RegVal(r), idx))
			}
			return nil
		}
	}
	idx, err := fp.gepIndexTail(op, elem)
	if err != nil {
		return err
	}
	if p.isPunct(",") && (p.toks[p.i+1].kind != tWord || p.toks[p.i+1].text != "align") {
		return p.errTok(op, "multi-dimensional getelementptr is not supported")
	}
	p.skipAlign()
	s, err := fp.resolveGepTarget(base, idx)
	if err != nil {
		return err
	}
	return fp.defSym(dst, s)
}

// gepIndexes parses the `, i64 I` / `, i64 0, i64 J` index tail of a
// getelementptr whose leading comma has not been consumed yet.
func (fp *funcParser) gepIndexes(base token, elem typ) (ir.Value, error) {
	if _, err := fp.p.expectPunct(","); err != nil {
		return ir.Value{}, err
	}
	return fp.gepIndexTail(base, elem)
}

// gepIndexTail parses the indexes after the leading comma. The
// two-index clang form over [N x i64] steps the whole object first
// (that index must be 0) and selects the cell second; the flat i64 form
// takes a single index.
func (fp *funcParser) gepIndexTail(at token, elem typ) (ir.Value, error) {
	p := fp.p
	readIndex := func() (ir.Value, error) {
		it, err := p.parseType()
		if err != nil {
			return ir.Value{}, err
		}
		if !it.isInt() {
			return ir.Value{}, p.errTok(at, "getelementptr index must be an integer")
		}
		return fp.operand()
	}
	idx, err := readIndex()
	if err != nil {
		return ir.Value{}, err
	}
	if !elem.arr {
		return idx, nil
	}
	if !idx.IsConst() || idx.Const() != 0 {
		return ir.Value{}, p.errTok(at, "first getelementptr index over an array type must be 0")
	}
	if _, err := p.expectPunct(","); err != nil {
		return ir.Value{}, err
	}
	return readIndex()
}

// resolveGepTarget resolves a getelementptr over named storage (a
// global or an alloca) into a memory symbol, range-checking constant
// indexes against the object size.
func (fp *funcParser) resolveGepTarget(base token, idx ir.Value) (*sym, error) {
	p := fp.p
	var loc ir.MemLoc
	var size int
	var isArr bool
	switch base.kind {
	case tGlobal:
		g := p.prog.FindGlobal(base.text)
		if g == nil {
			return nil, p.errTok(base, "unknown global @%s", base.text)
		}
		loc, size, isArr = ir.GlobalLoc(g, 0), g.Size, g.IsArray
	case tLocal:
		s, ok := fp.syms[base.text]
		if !ok || s.kind != symSlot {
			if ok {
				return nil, p.errTok(base, "getelementptr of a getelementptr is not supported; index the base object directly")
			}
			return nil, p.errTok(base, "unknown getelementptr base %%%s", base.text)
		}
		loc, size, isArr = ir.SlotLoc(s.slot, 0), s.slot.Size, s.slot.IsArray
	default:
		return nil, p.errTok(base, "expected getelementptr base, found %s", base.describe())
	}
	if idx.IsConst() && (idx.Const() < 0 || idx.Const() >= int64(size)) {
		return nil, p.errTok(base, "constant index %d out of range for %s (size %d)",
			idx.Const(), base.describe(), size)
	}
	s := &sym{kind: symGep, loc: loc, arr: isArr}
	switch {
	case isArr:
		s.idx = idx
	case idx.IsConst():
		s.loc.Offset = int(idx.Const())
	default:
		return nil, p.errTok(base, "dynamic index into non-array object %s", base.describe())
	}
	return s, nil
}

// ---- phi lowering ----

// lowerPhis rewrites the function's phis into copies in the
// predecessors. All phis of all successors of a predecessor P form one
// parallel move: every source is read before any destination is
// written (via fresh temps when a destination also appears as a
// source), which keeps swap-shaped phi cycles and cross-successor
// reads on critical edges correct without edge splitting.
func (fp *funcParser) lowerPhis() error {
	p := fp.p
	type move struct {
		dst ir.RegID
		src phiOperand
	}
	perPred := map[*ir.Block][]move{}

	for _, rec := range fp.phis {
		preds := rec.blk.Preds
		if len(rec.ops) != len(preds) {
			return p.errAt(rec.pos, "phi has %d incoming values, block has %d predecessors",
				len(rec.ops), len(preds))
		}
		seen := make(map[*ir.Block]bool, len(preds))
		for j, lbl := range rec.labels {
			pb, ok := fp.blocks[lbl]
			if !ok {
				return p.errAt(rec.lpos[j], "phi references unknown label %%%s", lbl)
			}
			found := false
			for _, pred := range preds {
				if pred == pb {
					found = true
					break
				}
			}
			if !found {
				return p.errAt(rec.lpos[j], "%%%s is not a predecessor of the phi's block", lbl)
			}
			if seen[pb] {
				return p.errAt(rec.lpos[j], "duplicate phi entry for %%%s", lbl)
			}
			seen[pb] = true
			// Two phis reachable from the same predecessor (sibling
			// successors of a conditional branch, or reassignment within
			// one block) run as copies in that predecessor regardless of
			// which edge is taken, so a shared destination is only
			// meaningful when both phis agree on the incoming value.
			dup := false
			for _, m := range perPred[pb] {
				if m.dst == rec.dst {
					if !m.src.equal(rec.ops[j]) {
						return p.errAt(rec.pos,
							"phi destination is assigned a different value by another phi on the edge from %%%s", lbl)
					}
					dup = true
					break
				}
			}
			if !dup {
				perPred[pb] = append(perPred[pb], move{dst: rec.dst, src: rec.ops[j]})
			}
		}
	}

	// Deterministic emission order: predecessors in layout order.
	for _, pred := range fp.f.Blocks {
		moves := perPred[pred]
		if len(moves) == 0 {
			continue
		}
		// Pointer-constant sources materialize here, in the predecessor,
		// so the addr temp is defined before the copy that reads it.
		srcs := make([]ir.Value, len(moves))
		for i, m := range moves {
			if !m.src.isLoc {
				srcs[i] = m.src.val
				continue
			}
			markAddrTaken(m.src.loc)
			t := fp.f.NewReg("")
			in := ir.NewInstr(ir.OpAddr, t)
			in.Loc = m.src.loc
			pred.InsertBeforeTerm(in)
			srcs[i] = ir.RegVal(t)
		}
		inDst := func(v ir.Value) bool {
			if v.IsConst() {
				return false
			}
			for _, m := range moves {
				if m.dst == v.Reg() {
					return true
				}
			}
			return false
		}
		// The branch condition is evaluated after the copies run, so a
		// condition register that is also a phi destination must be
		// snapshotted first.
		if term := pred.Term(); term != nil && term.Op == ir.OpBr && inDst(term.Args[0]) {
			t := fp.f.NewReg("")
			pred.InsertBeforeTerm(ir.NewInstr(ir.OpCopy, t, term.Args[0]))
			term.Args[0] = ir.RegVal(t)
		}
		twoPhase := false
		for _, s := range srcs {
			if inDst(s) {
				twoPhase = true
				break
			}
		}
		if twoPhase {
			temps := make([]ir.RegID, len(moves))
			for i, s := range srcs {
				temps[i] = fp.f.NewReg("")
				pred.InsertBeforeTerm(ir.NewInstr(ir.OpCopy, temps[i], s))
			}
			for i, m := range moves {
				pred.InsertBeforeTerm(ir.NewInstr(ir.OpCopy, m.dst, ir.RegVal(temps[i])))
			}
		} else {
			for i, m := range moves {
				pred.InsertBeforeTerm(ir.NewInstr(ir.OpCopy, m.dst, srcs[i]))
			}
		}
	}
	return nil
}

// renumberRegs permutes register IDs into the textual first-mention
// order of ir.WriteText, making the printer a fixed point over parsed
// programs.
func (fp *funcParser) renumberRegs() {
	f := fp.f
	order := ir.TextRegOrder(f)
	perm := make([]ir.RegID, f.NumRegs)
	for i := range perm {
		perm[i] = ir.NoReg
	}
	next := 0
	for _, r := range order {
		perm[r] = ir.RegID(next)
		next++
	}
	for r := range perm {
		if perm[r] == ir.NoReg {
			perm[r] = ir.RegID(next)
			next++
		}
	}
	for i, r := range f.Params {
		f.Params[i] = perm[r]
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Dst != ir.NoReg {
				in.Dst = perm[in.Dst]
			}
			for i, a := range in.Args {
				if !a.IsConst() {
					in.Args[i] = ir.RegVal(perm[a.Reg()])
				}
			}
		}
	}
}

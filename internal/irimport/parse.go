package irimport

import (
	"fmt"

	"repro/internal/ir"
)

// Parse parses textual IR in the dialect documented in irimport.go and
// lowers it into an ir.Program in the pre-SSA form the pipeline
// consumes: phis become parallel copies in the predecessors, pointers
// to named storage become direct load/store/addr instructions, and
// registers are renumbered into textual first-mention order so that
// ir.WriteText of the result is a fixed point of parse∘print.
// The file name is used in error positions only.
func Parse(file, src string) (*ir.Program, error) {
	toks, err := lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks, prog: ir.NewProgram(),
		declared: map[string]bool{}, retVoid: map[string]bool{}}
	if err := p.module(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// Compile parses src with a placeholder file name.
func Compile(src string) (*ir.Program, error) { return Parse("<input>", src) }

type parser struct {
	file     string
	toks     []token
	i        int
	prog     *ir.Program
	declared map[string]bool
	retVoid  map[string]bool // defined functions returning void
	calls    []callSite
}

// callSite defers callee resolution to the end of the module so that
// forward calls work.
type callSite struct {
	callee string
	nargs  int
	hasDst bool
	pos    Pos
}

func (p *parser) peek() token { return p.toks[p.i] }

// next consumes the current token. The tEOF sentinel is sticky: the
// index never advances past it, so the helpers above stay in bounds no
// matter how many tokens an error path over-consumes.
func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tEOF {
		p.i++
	}
	return t
}

func (p *parser) unread() { p.i-- }
func (p *parser) atEOF() bool  { return p.toks[p.i].kind == tEOF }
func (p *parser) pos() Pos     { return p.toks[p.i].pos }

func (p *parser) errAt(pos Pos, format string, args ...any) error {
	return &ParseError{File: p.file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) errTok(t token, format string, args ...any) error {
	return p.errAt(t.pos, format, args...)
}

// skipLine discards tokens through the end of the current source line.
func (p *parser) skipLine() {
	p.skipRestOfLine(p.toks[p.i].pos.Line)
}

// skipRestOfLine discards tokens while they are still on the given
// line. Used after a construct has been fully parsed, where the next
// token may already be on the following line and must stay.
func (p *parser) skipRestOfLine(line int) {
	for !p.atEOF() && p.toks[p.i].pos.Line == line {
		p.i++
	}
}

func (p *parser) expectPunct(s string) (token, error) {
	t := p.next()
	if t.kind != tPunct || t.text != s {
		return t, p.errTok(t, "expected %q, found %s", s, t.describe())
	}
	return t, nil
}

func (p *parser) isPunct(s string) bool {
	t := p.peek()
	return t.kind == tPunct && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptWord(s string) bool {
	t := p.peek()
	if t.kind == tWord && t.text == s {
		p.i++
		return true
	}
	return false
}

// module parses the top level: globals, defines, declares, and the
// skippable module furniture clang emits around them.
func (p *parser) module() error {
	for !p.atEOF() {
		t := p.peek()
		switch {
		case t.kind == tGlobal:
			if err := p.global(); err != nil {
				return err
			}
		case t.kind == tWord && t.text == "define":
			if err := p.function(); err != nil {
				return err
			}
		case t.kind == tWord && t.text == "declare":
			p.declare()
		case t.kind == tWord && (t.text == "source_filename" || t.text == "target" ||
			t.text == "attributes" || t.text == "module"):
			p.skipLine()
		default:
			return p.errTok(t, "expected global, define, or declare at top level, found %s", t.describe())
		}
	}
	return p.checkCalls()
}

func (p *parser) declare() {
	line := p.peek().pos.Line
	p.i++ // "declare"
	for !p.atEOF() && p.toks[p.i].pos.Line == line {
		if t := p.toks[p.i]; t.kind == tGlobal {
			p.declared[t.text] = true
		}
		p.i++
	}
}

func (p *parser) checkCalls() error {
	for _, c := range p.calls {
		f := p.prog.Func(c.callee)
		if f == nil {
			if p.declared[c.callee] {
				return p.errAt(c.pos, "call to @%s, which is declared but not defined in this module", c.callee)
			}
			return p.errAt(c.pos, "call to undefined function @%s", c.callee)
		}
		if c.nargs != len(f.Params) {
			return p.errAt(c.pos, "call to @%s with %d arguments, function takes %d",
				c.callee, c.nargs, len(f.Params))
		}
		if c.hasDst && p.retVoid[c.callee] {
			return p.errAt(c.pos, "call names a result, but @%s returns void", c.callee)
		}
	}
	return nil
}

// ---- types ----

type typ struct {
	void  bool
	label bool
	bits  int // int width, 0 if not an integer
	arr   bool
	n     int // array length
	ptr   int // pointer depth ("ptr" counts as 1)
}

func (t typ) isInt() bool    { return t.bits > 0 && t.ptr == 0 && !t.arr }
func (t typ) isPtr() bool    { return t.ptr > 0 }
func (t typ) isScalar() bool { return t.isInt() }

// parseType parses void, label, ptr, iN, [N x iN], with trailing '*'s.
func (p *parser) parseType() (typ, error) {
	var out typ
	t := p.next()
	switch {
	case t.kind == tWord && t.text == "void":
		out.void = true
	case t.kind == tWord && t.text == "label":
		out.label = true
	case t.kind == tWord && t.text == "ptr":
		out.ptr = 1
	case t.kind == tWord && len(t.text) > 1 && t.text[0] == 'i' && allDigits(t.text[1:]):
		bits := 0
		for _, c := range t.text[1:] {
			bits = bits*10 + int(c-'0')
		}
		if bits < 1 || bits > 64 {
			return out, p.errTok(t, "unsupported integer width %s (the dialect widens i1..i64 to 64-bit cells)", t.text)
		}
		out.bits = bits
	case t.kind == tPunct && t.text == "[":
		nt := p.next()
		if nt.kind != tInt || nt.ival < 1 {
			return out, p.errTok(nt, "expected positive array length, found %s", nt.describe())
		}
		if !p.acceptWord("x") {
			return out, p.errTok(p.peek(), "expected \"x\" in array type")
		}
		elem, err := p.parseType()
		if err != nil {
			return out, err
		}
		if !elem.isInt() {
			return out, p.errTok(t, "only integer array elements are supported")
		}
		if _, err := p.expectPunct("]"); err != nil {
			return out, err
		}
		out.arr = true
		out.n = int(nt.ival)
	default:
		return out, p.errTok(t, "expected type, found %s", t.describe())
	}
	for p.acceptPunct("*") {
		out.ptr++
	}
	return out, nil
}

// typeStart reports whether the next token begins a type, used to skip
// linkage/attribute words in positions like `define dso_local i64 @f`.
func (p *parser) typeStart() bool {
	t := p.peek()
	if t.kind == tPunct && t.text == "[" {
		return true
	}
	if t.kind != tWord {
		return false
	}
	switch t.text {
	case "void", "label", "ptr":
		return true
	}
	return len(t.text) > 1 && t.text[0] == 'i' && allDigits(t.text[1:])
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// ---- globals ----

func (p *parser) global() error {
	name := p.next() // tGlobal
	if p.prog.FindGlobal(name.text) != nil {
		return p.errTok(name, "redefinition of global @%s", name.text)
	}
	if _, err := p.expectPunct("="); err != nil {
		return err
	}
	sawKind := false
	for {
		t := p.peek()
		if t.kind != tWord {
			break
		}
		switch t.text {
		case "global", "constant":
			sawKind = true
			p.i++
			continue
		case "private", "internal", "external", "dso_local", "common",
			"unnamed_addr", "local_unnamed_addr", "linkonce", "linkonce_odr", "weak":
			p.i++
			continue
		}
		break
	}
	if !sawKind {
		return p.errTok(p.peek(), "expected \"global\" or \"constant\" in definition of @%s", name.text)
	}
	ty, err := p.parseType()
	if err != nil {
		return err
	}
	switch {
	case ty.isInt():
		t := p.next()
		var init int64
		switch {
		case t.kind == tInt:
			init = t.ival
		case t.kind == tWord && t.text == "zeroinitializer":
		default:
			return p.errTok(t, "expected integer initializer for @%s, found %s", name.text, t.describe())
		}
		g := p.prog.AddGlobal(name.text, 1, false, nil)
		g.Init = []int64{init}
	case ty.arr && ty.ptr == 0:
		init := make([]int64, ty.n)
		t := p.next()
		switch {
		case t.kind == tWord && t.text == "zeroinitializer":
		case t.kind == tPunct && t.text == "[":
			for k := 0; ; k++ {
				et, err := p.parseType()
				if err != nil {
					return err
				}
				if !et.isInt() {
					return p.errTok(t, "array initializer elements must be integers")
				}
				vt := p.next()
				if vt.kind != tInt {
					return p.errTok(vt, "expected integer in array initializer, found %s", vt.describe())
				}
				if k >= ty.n {
					return p.errTok(vt, "too many initializer elements for @%s (array length %d)", name.text, ty.n)
				}
				init[k] = vt.ival
				if p.acceptPunct("]") {
					if k != ty.n-1 {
						return p.errTok(vt, "initializer for @%s has %d elements, array length is %d",
							name.text, k+1, ty.n)
					}
					break
				}
				if _, err := p.expectPunct(","); err != nil {
					return err
				}
			}
		default:
			return p.errTok(t, "expected array initializer for @%s, found %s", name.text, t.describe())
		}
		g := p.prog.AddGlobal(name.text, ty.n, true, nil)
		g.Init = init
	default:
		return p.errTok(name, "unsupported global type for @%s (want iN or [N x iN])", name.text)
	}
	// Trailing `, align N`, section markers, and comdat furniture all
	// live on the same line as the end of the initializer; discard
	// them without touching the next line.
	p.skipRestOfLine(p.toks[p.i-1].pos.Line)
	return nil
}

// ---- functions ----

// symbol kinds: a local %name resolves to exactly one of these.
type symKind int

const (
	symSlot symKind = iota // alloca result: a stack slot
	symGep                 // getelementptr over named storage: a cell address, no IR emitted
)

type sym struct {
	kind symKind
	slot *ir.Slot
	loc  ir.MemLoc // symGep: base location, Offset set for struct-style cells
	idx  ir.Value  // symGep over an array: cell index
	arr  bool      // symGep: base is an array resource
	pos  Pos
}

type regInfo struct {
	id       ir.RegID
	defined  bool
	firstUse Pos
}

// phiOperand is one phi incoming value, parsed without emitting IR.
// A pointer constant (@g, an alloca, a constant getelementptr or
// inttoptr) is held as the memory location it names; lowerPhis
// materializes the addr-of in each predecessor, where the copy that
// reads it runs — materializing at parse time would define the temp in
// the phi's own block, after the predecessor copy that uses it.
type phiOperand struct {
	val   ir.Value // when !isLoc: a constant or register
	isLoc bool
	loc   ir.MemLoc
}

func (a phiOperand) equal(b phiOperand) bool {
	if a.isLoc != b.isLoc {
		return false
	}
	if a.isLoc {
		return a.loc == b.loc
	}
	return a.val == b.val
}

type phiRec struct {
	blk    *ir.Block
	dst    ir.RegID
	ops    []phiOperand
	labels []string
	lpos   []Pos
	pos    Pos
}

type funcParser struct {
	p      *parser
	f      *ir.Function
	fpos   Pos
	retty  typ
	syms   map[string]*sym
	regs   map[string]*regInfo
	blocks map[string]*ir.Block
	names  []string // block names in layout order
	cur    *ir.Block
	done   bool // current block has seen its terminator
	phis   []phiRec
}

func (p *parser) function() error {
	fpos := p.next().pos // "define"
	for p.peek().kind == tWord && !p.typeStart() {
		p.i++ // linkage / visibility / cc words
	}
	retty, err := p.parseType()
	if err != nil {
		return err
	}
	if !retty.void && !retty.isInt() {
		return p.errAt(fpos, "function return type must be void or an integer")
	}
	nameTok := p.next()
	if nameTok.kind != tGlobal {
		return p.errTok(nameTok, "expected function name after define, found %s", nameTok.describe())
	}
	if p.prog.Func(nameTok.text) != nil {
		return p.errTok(nameTok, "redefinition of function @%s", nameTok.text)
	}
	p.retVoid[nameTok.text] = retty.void

	f := ir.NewFunction(p.prog, nameTok.text)
	fp := &funcParser{
		p: p, f: f, fpos: fpos, retty: retty,
		syms:   map[string]*sym{},
		regs:   map[string]*regInfo{},
		blocks: map[string]*ir.Block{},
	}

	if _, err := p.expectPunct("("); err != nil {
		return err
	}
	for !p.acceptPunct(")") {
		if len(f.Params) > 0 {
			if _, err := p.expectPunct(","); err != nil {
				return err
			}
		}
		pt, err := p.parseType()
		if err != nil {
			return err
		}
		if !pt.isInt() && !pt.isPtr() {
			return p.errAt(fpos, "parameters must be integers or pointers")
		}
		for p.peek().kind == tWord { // parameter attributes: noundef, signext, ...
			p.i++
		}
		ptok := p.next()
		if ptok.kind != tLocal {
			return p.errTok(ptok, "expected parameter name, found %s (unnamed parameters are not supported)", ptok.describe())
		}
		if _, clash := fp.regs[ptok.text]; clash {
			return p.errTok(ptok, "duplicate parameter %%%s", ptok.text)
		}
		r := f.NewReg("")
		fp.regs[ptok.text] = &regInfo{id: r, defined: true}
		f.Params = append(f.Params, r)
	}
	for p.peek().kind == tWord || p.peek().kind == tGlobal {
		p.i++ // function attributes, personality, section names
	}
	if _, err := p.expectPunct("{"); err != nil {
		return err
	}
	if err := fp.body(); err != nil {
		return err
	}
	return nil
}

// body parses the function body between braces and runs the lowering
// passes that turn the parsed form into pipeline-ready IR.
func (fp *funcParser) body() error {
	p := fp.p
	if err := fp.scanLabels(); err != nil {
		return err
	}
	if len(fp.names) == 0 {
		return p.errAt(fp.fpos, "function @%s has no basic blocks", fp.f.Name)
	}
	for _, name := range fp.names {
		b := fp.f.NewBlock()
		fp.blocks[name] = b
	}
	fp.cur = fp.f.Blocks[0]

	for {
		t := p.peek()
		if t.kind == tPunct && t.text == "}" {
			p.i++
			break
		}
		if t.kind == tEOF {
			return p.errTok(t, "unexpected end of input in function @%s", fp.f.Name)
		}
		// A label introduces the next block.
		if (t.kind == tWord || t.kind == tInt) && p.toks[p.i+1].kind == tPunct && p.toks[p.i+1].text == ":" {
			b, ok := fp.blocks[t.text]
			if !ok {
				return p.errTok(t, "internal label scan missed %q", t.text)
			}
			// Only the very first label may open the (still empty)
			// entry block; everywhere else the previous block must
			// have ended in a terminator.
			if !fp.done && (b != fp.cur || fp.hasInstrs()) {
				return p.errTok(t, "block %q is not terminated (the dialect has no fallthrough)", fp.curName())
			}
			p.i += 2
			fp.cur = b
			fp.done = false
			continue
		}
		if fp.done {
			return p.errTok(t, "instruction after terminator in block %q", fp.curName())
		}
		if err := fp.instr(); err != nil {
			return err
		}
	}
	if !fp.done {
		return p.errAt(fp.fpos, "final block %q of @%s is not terminated", fp.curName(), fp.f.Name)
	}
	for name, ri := range fp.regs {
		if !ri.defined {
			return p.errAt(ri.firstUse, "%%%s is used but never defined", name)
		}
	}
	if len(fp.f.Blocks[0].Preds) > 0 {
		return p.errAt(fp.fpos, "branch to the entry block of @%s (entry must have no predecessors)", fp.f.Name)
	}
	if err := fp.lowerPhis(); err != nil {
		return err
	}
	fp.renumberRegs()
	if err := fp.f.Verify(ir.VerifyCFG); err != nil {
		return p.errAt(fp.fpos, "@%s: %v", fp.f.Name, err)
	}
	return nil
}

func (fp *funcParser) hasInstrs() bool { return len(fp.cur.Instrs) > 0 }

func (fp *funcParser) curName() string {
	for name, b := range fp.blocks {
		if b == fp.cur {
			if name == "" {
				return "entry"
			}
			return name
		}
	}
	return "?"
}

// scanLabels walks the body tokens ahead of parsing to collect block
// labels in layout order, so blocks exist (with dense IDs in textual
// order) before any branch references them. An unlabeled first block
// gets the internal name "".
func (fp *funcParser) scanLabels() error {
	p := fp.p
	first := true
	for j := p.i; ; j++ {
		t := p.toks[j]
		if t.kind == tEOF || t.kind == tPunct && t.text == "}" {
			return nil
		}
		isLabel := (t.kind == tWord || t.kind == tInt) &&
			p.toks[j+1].kind == tPunct && p.toks[j+1].text == ":"
		if isLabel {
			if _, dup := fp.blocks[t.text]; dup {
				return p.errTok(t, "duplicate label %q", t.text)
			}
			fp.blocks[t.text] = nil // reserve; filled in by body
			fp.names = append(fp.names, t.text)
			j++
		} else if first {
			// Unlabeled entry block.
			fp.names = append(fp.names, "")
			fp.blocks[""] = nil
		}
		first = false
	}
}

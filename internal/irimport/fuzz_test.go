package irimport_test

import (
	"os"
	"testing"

	"repro/internal/ir"
	"repro/internal/irimport"
)

// FuzzIRImport holds the importer to its two contracts on arbitrary
// input: it never panics (rejecting with a positioned error is fine),
// and any module it accepts prints to a textual form that reparses to
// the same printed form (the parse→print fixed point TestRoundTrip
// pins on the curated corpus). The real corpus files are the primary
// seeds; the inline ones carry shapes the corpus keeps well-formed —
// truncated constructs, stray tokens, empty input.
func FuzzIRImport(f *testing.F) {
	for _, file := range corpusFiles(f) {
		src, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	for _, s := range []string{
		"define i64 @main() {\nentry:\n  ret i64 0\n}\n",
		"@g = global i64 7\ndefine void @main() {\nentry:\n  store i64 1, i64* @g\n  ret void\n}\n",
		"define i64 @main() {\nentry:\n  br label %l\nl:\n  %v = phi i64 [ 0, %entry ], [ %v, %l ]\n  br label %l\n}\n",
		"define i64 @main() {", "declare void @print(i64)", "@x = global", "%", "}{", "",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := irimport.Compile(src)
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		if prog == nil {
			t.Fatal("Compile returned nil program and nil error")
		}
		text, err := ir.ProgramText(prog)
		if err != nil {
			t.Fatalf("accepted module does not print: %v\nsource:\n%s", err, src)
		}
		prog2, err := irimport.Parse("<printed>", text)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\nprinted:\n%s", err, text)
		}
		text2, err := ir.ProgramText(prog2)
		if err != nil {
			t.Fatalf("reprint failed: %v", err)
		}
		if text2 != text {
			t.Fatalf("parse→print is not a fixed point:\nfirst:\n%s\nsecond:\n%s", text, text2)
		}
	})
}

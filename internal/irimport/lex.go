package irimport

import (
	"fmt"
	"strconv"
	"strings"
)

// Pos is a position in the input, 1-based.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// ParseError is a parse or lowering failure with a precise position.
type ParseError struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}

type tokKind int

const (
	tEOF tokKind = iota
	tWord        // bare identifier or keyword: define, add, i64, label, ...
	tLocal       // %name
	tGlobal      // @name
	tInt         // integer literal, possibly negative
	tPunct       // one of = , ( ) { } [ ] * :
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of input"
	case tWord:
		return "word"
	case tLocal:
		return "local name"
	case tGlobal:
		return "global name"
	case tInt:
		return "integer"
	case tPunct:
		return "punctuation"
	}
	return "token"
}

type token struct {
	kind tokKind
	text string // without the %/@ sigil for tLocal/tGlobal
	ival int64  // tInt only
	pos  Pos
}

func (t token) describe() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	case tLocal:
		return "%" + t.text
	case tGlobal:
		return "@" + t.text
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes the whole input up front. Comments (;), metadata (!...
// to end of line), attribute references (#N), and string literals are
// skipped entirely; the parser never sees them.
func lex(file, src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	adv := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	errAt := func(p Pos, format string, args ...any) error {
		return &ParseError{File: file, Pos: p, Msg: fmt.Sprintf(format, args...)}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == ';':
			for i < n && src[i] != '\n' {
				adv(1)
			}
		case c == '!':
			// Metadata: a `!dbg !7` suffix or a top-level `!0 = !{...}`
			// definition. Both are line-structured in the inputs this
			// dialect accepts, so skip to end of line.
			for i < n && src[i] != '\n' {
				adv(1)
			}
		case c == '#':
			// Attribute reference (#0). The attribute group definitions
			// themselves start with the word `attributes`, which the
			// parser skips line-wise.
			adv(1)
			for i < n && isIdentChar(src[i]) {
				adv(1)
			}
		case c == '"':
			pos := Pos{line, col}
			adv(1)
			for i < n && src[i] != '"' {
				if src[i] == '\\' && i+1 < n {
					adv(1)
				}
				adv(1)
			}
			if i >= n {
				return nil, errAt(pos, "unterminated string literal")
			}
			adv(1)
		case c == '%' || c == '@':
			pos := Pos{line, col}
			adv(1)
			start := i
			for i < n && isIdentChar(src[i]) {
				adv(1)
			}
			if i == start {
				return nil, errAt(pos, "empty name after %q", string(c))
			}
			kind := tLocal
			if c == '@' {
				kind = tGlobal
			}
			toks = append(toks, token{kind: kind, text: src[start:i], pos: pos})
		case c == '-' || (c >= '0' && c <= '9'):
			pos := Pos{line, col}
			start := i
			adv(1)
			for i < n && src[i] >= '0' && src[i] <= '9' {
				adv(1)
			}
			text := src[start:i]
			if text == "-" {
				return nil, errAt(pos, "stray '-'")
			}
			// A digits-only token followed by ident chars (e.g. 0x...)
			// is out of the dialect.
			if i < n && isIdentChar(src[i]) {
				return nil, errAt(pos, "malformed number %q", text+string(src[i]))
			}
			v, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return nil, errAt(pos, "integer %s out of range", text)
			}
			toks = append(toks, token{kind: tInt, text: text, ival: v, pos: pos})
		case isIdentStart(c):
			pos := Pos{line, col}
			start := i
			for i < n && isIdentChar(src[i]) {
				adv(1)
			}
			toks = append(toks, token{kind: tWord, text: src[start:i], pos: pos})
		case strings.IndexByte("=,(){}[]*:", c) >= 0:
			toks = append(toks, token{kind: tPunct, text: string(c), pos: Pos{line, col}})
			adv(1)
		default:
			return nil, errAt(Pos{line, col}, "unexpected character %q", string(c))
		}
	}
	toks = append(toks, token{kind: tEOF, pos: Pos{line, col}})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '.' || c == '$'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

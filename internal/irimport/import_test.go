package irimport_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/irimport"
	"repro/internal/pipeline"
)

// expectedRuns pins hand-computed observables for the corpus programs,
// so the importer's semantics are checked against the source text, not
// just for internal consistency. ebpf_hash is covered by the
// cross-path and promotion differentials only (its value is not
// comfortably hand-checkable).
var expectedRuns = map[string]struct {
	output []int64
	ret    int64
}{
	"straightline.ll":    {[]int64{49}, 49},
	"loop_sum.ll":        {[]int64{36}, 36},
	"branchy.ll":         {[]int64{104, 120}, 224},
	"global_counters.ll": {[]int64{2, 2}, 0},
	"ptr_swap.ll":        {[]int64{22, 11}, 11},
	"nested_loops.ll":    {[]int64{18, 4}, 4},
	"calls_i32.ll":       {[]int64{72}, 72},
	"struct_fields.ll":   {[]int64{25}, 25},
	"phi_swap.ll":        {[]int64{6765}, 6765},
	"phi_ptr_const.ll":   {[]int64{37, 135}, 172},
	"opaque_ptr.ll":      {[]int64{14}, 14},
}

// TestImportedSemantics runs every corpus program through the full
// promotion pipeline in paranoid mode and then executes the promoted
// program on all three interpreter paths, holding everything to the
// unpromoted observables (and to the pinned expected values where we
// have them).
func TestImportedSemantics(t *testing.T) {
	for _, file := range corpusFiles(t) {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			out, err := pipeline.Run(string(src), pipeline.Options{
				Lang:      irimport.LangIR,
				Algorithm: pipeline.AlgSSA,
				Check:     pipeline.CheckParanoid,
				Interp:    interp.Options{MaxSteps: 10_000_000},
			})
			if err != nil {
				t.Fatalf("pipeline: %v", err)
			}
			for _, d := range out.Degraded {
				t.Errorf("degraded %s at %s: %v", d.Func, d.Stage, d.Err.Err)
			}
			if want, ok := expectedRuns[filepath.Base(file)]; ok {
				if !reflect.DeepEqual(out.Before.Output, want.output) || out.Before.ReturnValue != want.ret {
					t.Fatalf("unpromoted run: output %v return %d, want %v / %d",
						out.Before.Output, out.Before.ReturnValue, want.output, want.ret)
				}
			}
			base := out.Before
			for _, path := range []struct {
				name string
				opts interp.Options
			}{
				{"legacy", interp.Options{Legacy: true, MaxSteps: 10_000_000}},
				{"fast", interp.Options{MaxSteps: 10_000_000}},
				{"bytecode", interp.Options{Bytecode: true, MaxSteps: 10_000_000}},
			} {
				res, err := interp.Run(out.Prog, path.opts)
				if err != nil {
					t.Fatalf("%s run of promoted program: %v", path.name, err)
				}
				if !reflect.DeepEqual(res.Output, base.Output) || res.ReturnValue != base.ReturnValue {
					t.Errorf("%s path: output %v return %d, want %v / %d",
						path.name, res.Output, res.ReturnValue, base.Output, base.ReturnValue)
				}
				for name, img := range base.Globals {
					if !reflect.DeepEqual(res.Globals[name], img) {
						t.Errorf("%s path: final @%s = %v, want %v", path.name, name, res.Globals[name], img)
					}
				}
			}
		})
	}
}

// TestParseErrors pins the error positions and messages for
// representative rejections of the dialect.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown instruction",
			"define i64 @main() {\nentry:\n  %x = frobnicate i64 1\n  ret i64 %x\n}\n",
			"3:8: "},
		{"unsigned div",
			"define i64 @main() {\nentry:\n  %x = udiv i64 4, 2\n  ret i64 %x\n}\n",
			"unsigned udiv"},
		{"undefined register",
			"define i64 @main() {\nentry:\n  %x = add i64 %nope, 1\n  ret i64 %x\n}\n",
			"%nope is used but never defined"},
		{"missing terminator",
			"define i64 @main() {\nentry:\n  %x = add i64 1, 2\nnext:\n  ret i64 %x\n}\n",
			"not terminated"},
		{"branch to entry",
			"define i64 @main() {\nentry:\n  br label %entry\n}\n",
			"entry"},
		{"call arity",
			"define i64 @f(i64 %a) {\nentry:\n  ret i64 %a\n}\ndefine i64 @main() {\nentry:\n  %x = call i64 @f(i64 1, i64 2)\n  ret i64 %x\n}\n",
			"2 arguments, function takes 1"},
		{"undefined callee",
			"define i64 @main() {\nentry:\n  %x = call i64 @ghost(i64 1)\n  ret i64 %x\n}\n",
			"undefined function @ghost"},
		{"gep out of range",
			"@a = global [4 x i64] zeroinitializer\ndefine i64 @main() {\nentry:\n  %p = getelementptr [4 x i64], [4 x i64]* @a, i64 0, i64 9\n  %x = load i64, i64* %p\n  ret i64 %x\n}\n",
			"out of range"},
		{"whole array load",
			"@a = global [4 x i64] zeroinitializer\ndefine i64 @main() {\nentry:\n  %x = load i64, i64* @a\n  ret i64 %x\n}\n",
			"whole aggregate"},
		{"duplicate label",
			"define i64 @main() {\nentry:\n  br label %x\nx:\n  br label %x\nx:\n  ret i64 0\n}\n",
			"duplicate label"},
		{"void call result",
			"define void @f() {\nentry:\n  ret void\n}\ndefine i64 @main() {\nentry:\n  %x = call i64 @f()\n  ret i64 %x\n}\n",
			"@f returns void"},
		{"conflicting sibling phi destinations",
			"define i64 @main() {\nentry:\n  %t = icmp ne i64 1, 0\n  br i1 %t, label %a, label %b\na:\n  %v = phi i64 [ 1, %entry ]\n  ret i64 %v\nb:\n  %v = phi i64 [ 2, %entry ]\n  ret i64 %v\n}\n",
			"different value"},
		{"dynamic address phi operand",
			"@a = global [4 x i64] zeroinitializer\ndefine i64 @main() {\nentry:\n  %i = add i64 1, 1\n  br label %u\nu:\n  %p = phi i64* [ getelementptr ([4 x i64], [4 x i64]* @a, i64 0, i64 %i), %entry ]\n  %x = load i64, i64* %p\n  ret i64 %x\n}\n",
			"not a valid phi operand"},
		{"phi pred mismatch",
			"define i64 @main() {\nentry:\n  br label %a\na:\n  %v = phi i64 [ 1, %entry ], [ 2, %b ]\n  ret i64 %v\nb:\n  ret i64 0\n}\n",
			"predecessor"},
		{"float op",
			"define i64 @main() {\nentry:\n  %x = fadd double %x, %x\n  ret i64 0\n}\n",
			"outside the supported dialect"},
		{"float literal",
			"define i64 @main() {\nentry:\n  %x = fadd double 1.0, 2.0\n  ret i64 0\n}\n",
			"malformed number"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := irimport.Compile(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got none", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestSiblingPhiSharedDest pins the allowed side of the sibling-phi
// destination rule: phis in two successors of one predecessor may
// share a destination when they agree on the incoming value — the
// moves dedupe instead of erroring.
func TestSiblingPhiSharedDest(t *testing.T) {
	src := "define i64 @main() {\nentry:\n  %t = icmp ne i64 1, 0\n  br i1 %t, label %a, label %b\n" +
		"a:\n  %v = phi i64 [ 5, %entry ]\n  ret i64 %v\n" +
		"b:\n  %v = phi i64 [ 5, %entry ]\n  %w = add i64 %v, 1\n  ret i64 %w\n}\n"
	prog, err := irimport.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReturnValue != 5 {
		t.Fatalf("return %d, want 5", res.ReturnValue)
	}
}

// TestDetectLang pins the extension mapping and the unknown-format
// error.
func TestDetectLang(t *testing.T) {
	for file, want := range map[string]string{
		"prog.mc": "mc", "prog.c": "mc", "kernel.ll": "ll",
		"dir.ll/prog.MC": "mc", "x.LL": "ll",
	} {
		got, err := irimport.DetectLang(file)
		if err != nil || got != want {
			t.Errorf("DetectLang(%q) = %q, %v; want %q", file, got, err, want)
		}
	}
	if _, err := irimport.DetectLang("prog.wat"); err == nil || !strings.Contains(err.Error(), "-lang") {
		t.Errorf("DetectLang(prog.wat) = %v, want unknown-format error mentioning -lang", err)
	}
}

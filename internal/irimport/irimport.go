// Package irimport ingests textual LLVM-style IR and lowers it into the
// compiler's ir.Program form, giving the promotion pipeline an input
// surface beyond the mini-C frontend: CFGs produced by other compilers
// (clang -O0 style output, hand-written kernels) can be promoted,
// interpreted, and checked like any native program.
//
// # The dialect
//
// The accepted language is a documented subset of LLVM textual IR with
// a few deliberate relaxations that match this IR's semantics (every
// integer is a signed 64-bit cell, addresses are cell-granular, and
// registers may be reassigned). In outline:
//
//   - module level: `@g = global i64 N`, `@a = global [N x i64]
//     zeroinitializer|[i64 ...]`, `define`, `declare` (recorded, but
//     every called function must be defined in the module), and
//     skippable furniture (source_filename, target, attributes,
//     metadata, comments);
//   - types: void, i1..i64 (all widened to 64-bit cells), pointers
//     (`T*` or opaque `ptr`), and one-dimensional `[N x iM]` arrays;
//   - instructions: add sub mul sdiv srem and or xor shl ashr, icmp
//     with signed predicates, zext/sext/trunc/bitcast (no-op copies
//     after widening), alloca (entry block only), load/store through
//     globals, allocas, getelementptr results, or runtime pointers,
//     getelementptr (flat `i64` and two-index `[N x i64]` forms,
//     constant expressions included), ptrtoint/inttoptr, phi, direct
//     call (plus the `@print` builtin), br, and ret. Unsigned
//     operations (udiv, urem, lshr, unsigned icmp), floats, selects,
//     switches, and atomics are rejected with a positioned error, as
//     is branching to the entry block.
//
// Lowering produces the same pre-SSA shape the mini-C frontend emits —
// phis become per-predecessor parallel copies (ssa.Build reconstructs
// them), pointer references to named storage become direct load/store
// instructions that alias analysis can classify, and address-taken
// bookkeeping is recorded for the alias analyzer. Registers are
// renumbered into first-mention order of ir.WriteText, so parse →
// print → reparse is a byte-identical fixed point; the testdata
// goldens and FuzzIRImport hold that line.
package irimport

import (
	"fmt"
	"path"
	"strings"
)

// Language names accepted across the CLIs and the server.
const (
	LangMiniC = "mc" // the native mini-C frontend (internal/source)
	LangIR    = "ll" // textual IR accepted by this package
)

// DetectLang maps a source file name to its input language by
// extension: .mc and .c are mini-C, .ll is textual IR. Unknown
// extensions are an error so a typo cannot silently parse a file with
// the wrong frontend; callers expose a -lang flag as the override.
func DetectLang(file string) (string, error) {
	switch strings.ToLower(path.Ext(path.Base(file))) {
	case ".mc", ".c":
		return LangMiniC, nil
	case ".ll":
		return LangIR, nil
	}
	return "", fmt.Errorf("cannot detect input language of %q (known: .mc/.c mini-C, .ll textual IR); use -lang mc|ll", file)
}

; clang -O0 style counted loop summing a global array through allocas.
source_filename = "loop_sum.c"

@arr = dso_local global [8 x i64] [i64 1, i64 2, i64 3, i64 4, i64 5, i64 6, i64 7, i64 8], align 16

define dso_local i64 @main() {
entry:
  %sum = alloca i64, align 8
  %i = alloca i64, align 8
  store i64 0, i64* %sum, align 8
  store i64 0, i64* %i, align 8
  br label %for.cond

for.cond:
  %0 = load i64, i64* %i, align 8
  %cmp = icmp slt i64 %0, 8
  br i1 %cmp, label %for.body, label %for.end

for.body:
  %1 = load i64, i64* %i, align 8
  %arrayidx = getelementptr inbounds [8 x i64], [8 x i64]* @arr, i64 0, i64 %1
  %2 = load i64, i64* %arrayidx, align 8
  %3 = load i64, i64* %sum, align 8
  %add = add nsw i64 %3, %2
  store i64 %add, i64* %sum, align 8
  br label %for.inc

for.inc:
  %4 = load i64, i64* %i, align 8
  %inc = add nsw i64 %4, 1
  store i64 %inc, i64* %i, align 8
  br label %for.cond

for.end:
  %5 = load i64, i64* %sum, align 8
  call void @print(i64 %5)
  ret i64 %5
}

declare void @print(i64)

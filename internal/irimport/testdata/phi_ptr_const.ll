; Pointer-constant phi operands: a global, a constant getelementptr,
; and an alloca flow into phis on a two-way join. The addr-of for each
; incoming value must be materialized in its predecessor — the copy
; that reads it runs there, before the phi's own block is entered.
@g = global i64 7
@h = global i64 35
@tab = global [4 x i64] [i64 10, i64 20, i64 30, i64 40]

define i64 @pick(i64 %c) {
entry:
  %slot = alloca i64
  store i64 100, i64* %slot
  %t = icmp ne i64 %c, 0
  br i1 %t, label %yes, label %no

yes:
  br label %join

no:
  br label %join

join:
  %p = phi i64* [ @g, %yes ], [ @h, %no ]
  %q = phi i64* [ getelementptr inbounds ([4 x i64], [4 x i64]* @tab, i64 0, i64 2), %yes ], [ %slot, %no ]
  %a = load i64, i64* %p
  %b = load i64, i64* %q
  %s = add i64 %a, %b
  ret i64 %s
}

define i64 @main() {
entry:
  %x = call i64 @pick(i64 1)
  %y = call i64 @pick(i64 0)
  call void @print(i64 %x)
  call void @print(i64 %y)
  %r = add i64 %x, %y
  ret i64 %r
}

declare void @print(i64)

; Modern opaque-pointer syntax: ptr instead of typed pointers, a local
; array buffer, and an accumulator behind a helper call.
@acc = global i64 0

define void @step(i64 %v) {
entry:
  %cur = load i64, ptr @acc
  %nxt = add i64 %cur, %v
  store i64 %nxt, ptr @acc
  ret void
}

define i64 @main() {
entry:
  %buf = alloca [4 x i64]
  br label %fill

fill:
  %i = phi i64 [ 0, %entry ], [ %in, %fill ]
  %p = getelementptr inbounds [4 x i64], ptr %buf, i64 0, i64 %i
  %sq = mul i64 %i, %i
  store i64 %sq, ptr %p
  call void @step(i64 %sq)
  %in = add i64 %i, 1
  %more = icmp ne i64 %in, 4
  br i1 %more, label %fill, label %out

out:
  %r = load i64, ptr @acc
  call void @print(i64 %r)
  ret i64 %r
}

declare void @print(i64)

; Raw pointer traffic: addresses flow through integers and back, and
; the callee dereferences them blind.
@a = global i64 11
@b = global i64 22

define void @swap(i64 %pa, i64 %pb) {
entry:
  %p = inttoptr i64 %pa to i64*
  %q = inttoptr i64 %pb to i64*
  %x = load i64, i64* %p
  %y = load i64, i64* %q
  store i64 %y, i64* %p
  store i64 %x, i64* %q
  ret void
}

define i64 @main() {
entry:
  %pa = ptrtoint i64* @a to i64
  %pb = ptrtoint i64* @b to i64
  call void @swap(i64 %pa, i64 %pb)
  %x = load i64, i64* @a
  %y = load i64, i64* @b
  call void @print(i64 %x)
  call void @print(i64 %y)
  %d = sub i64 %x, %y
  ret i64 %d
}

declare void @print(i64)

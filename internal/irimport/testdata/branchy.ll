; mem2reg-style SSA: an if/else diamond joined by a phi.
define dso_local i64 @classify(i64 %x) {
entry:
  %cmp = icmp sgt i64 %x, 10
  br i1 %cmp, label %if.then, label %if.else

if.then:
  %mul = mul nsw i64 %x, 3
  br label %if.end

if.else:
  %add = add nsw i64 %x, 100
  br label %if.end

if.end:
  %r = phi i64 [ %mul, %if.then ], [ %add, %if.else ]
  ret i64 %r
}

define dso_local i64 @main() {
entry:
  %a = call i64 @classify(i64 4)
  %b = call i64 @classify(i64 40)
  call void @print(i64 %a)
  call void @print(i64 %b)
  %sum = add nsw i64 %a, %b
  ret i64 %sum
}

declare void @print(i64)

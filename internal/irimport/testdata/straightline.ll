; clang -O0 style straight-line code: every local lives in an alloca.
source_filename = "straightline.c"
target datalayout = "e-m:e-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

@g = dso_local global i64 7, align 8

define dso_local i64 @main() #0 {
entry:
  %x = alloca i64, align 8
  %y = alloca i64, align 8
  %t = alloca i64, align 8
  store i64 3, i64* %x, align 8
  store i64 4, i64* %y, align 8
  %0 = load i64, i64* %x, align 8
  %1 = load i64, i64* %y, align 8
  %add = add nsw i64 %0, %1
  store i64 %add, i64* %t, align 8
  %2 = load i64, i64* %t, align 8
  %3 = load i64, i64* @g, align 8
  %mul = mul nsw i64 %2, %3
  call void @print(i64 %mul)
  ret i64 %mul
}

declare void @print(i64) #1

attributes #0 = { noinline nounwind optnone uwtable }
attributes #1 = { nounwind }

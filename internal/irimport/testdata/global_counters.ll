; Shared global counters updated from a helper, with a dynamic
; getelementptr over a global table.
@hits = global i64 0
@misses = global i64 0
@table = global [4 x i64] zeroinitializer

define void @bump(i64 %key) {
entry:
  %slot = srem i64 %key, 4
  %p = getelementptr i64, i64* @table, i64 %slot
  %v = load i64, i64* %p
  %cmp = icmp eq i64 %v, 0
  br i1 %cmp, label %miss, label %hit

miss:
  %m = load i64, i64* @misses
  %m1 = add i64 %m, 1
  store i64 %m1, i64* @misses
  br label %done

hit:
  %h = load i64, i64* @hits
  %h1 = add i64 %h, 1
  store i64 %h1, i64* @hits
  br label %done

done:
  %nv = add i64 %v, 1
  store i64 %nv, i64* %p
  ret void
}

define i64 @main() {
entry:
  call void @bump(i64 3)
  call void @bump(i64 7)
  call void @bump(i64 11)
  call void @bump(i64 6)
  %h = load i64, i64* @hits
  %m = load i64, i64* @misses
  call void @print(i64 %h)
  call void @print(i64 %m)
  %score = sub i64 %h, %m
  ret i64 %score
}

declare void @print(i64)

; An eBPF-style hashing kernel: a fold round per key cell, all
; arithmetic masked into a bounded range.
@keys = global [6 x i64] [i64 104, i64 97, i64 115, i64 104, i64 109, i64 101]

define i64 @fold(i64 %h, i64 %k) {
entry:
  %x = xor i64 %h, %k
  %s = shl i64 %x, 5
  %t = ashr i64 %x, 2
  %m = add i64 %s, %t
  %r = and i64 %m, 1048575
  ret i64 %r
}

define i64 @main() {
entry:
  br label %loop

loop:
  %i = phi i64 [ 0, %entry ], [ %inc, %loop ]
  %h = phi i64 [ 5381, %entry ], [ %nh, %loop ]
  %p = getelementptr [6 x i64], [6 x i64]* @keys, i64 0, i64 %i
  %k = load i64, i64* %p
  %nh = call i64 @fold(i64 %h, i64 %k)
  %inc = add i64 %i, 1
  %cmp = icmp slt i64 %inc, 6
  br i1 %cmp, label %loop, label %exit

exit:
  call void @print(i64 %nh)
  ret i64 %nh
}

declare void @print(i64)

; Narrow integer types and casts: the dialect widens every iN to a
; 64-bit cell, so zext/sext/trunc are value-preserving copies here.
define i32 @square(i32 %n) {
entry:
  %m = mul nsw i32 %n, %n
  ret i32 %m
}

define i32 @twice(i32 %n) {
entry:
  %a = call i32 @square(i32 %n)
  %w = zext i32 %a to i64
  %t = trunc i64 %w to i32
  %b = add nsw i32 %t, %a
  ret i32 %b
}

define i64 @main() {
entry:
  %r = call i32 @twice(i32 6)
  %x = sext i32 %r to i64
  call void @print(i64 %x)
  ret i64 %x
}

declare void @print(i64)

; A point record {x, y, tag} kept as three cells with constant-index
; getelementptrs, the shape clang gives a small struct.
@pt = global [3 x i64] [i64 3, i64 4, i64 0]

define i64 @main() {
entry:
  %px = getelementptr [3 x i64], [3 x i64]* @pt, i64 0, i64 0
  %py = getelementptr [3 x i64], [3 x i64]* @pt, i64 0, i64 1
  %ptag = getelementptr [3 x i64], [3 x i64]* @pt, i64 0, i64 2
  %x = load i64, i64* %px
  %y = load i64, i64* %py
  %xx = mul i64 %x, %x
  %yy = mul i64 %y, %y
  %d2 = add i64 %xx, %yy
  store i64 %d2, i64* %ptag
  %t = load i64, i64* %ptag
  call void @print(i64 %t)
  ret i64 %t
}

declare void @print(i64)

; Nested loops over a flattened 3x4 grid: the outer counter lives in an
; alloca (O0 style), the inner one in a phi (mem2reg style).
@grid = global [12 x i64] zeroinitializer

define i64 @main() {
entry:
  %i = alloca i64
  store i64 0, i64* %i
  br label %outer.cond

outer.cond:
  %0 = load i64, i64* %i
  %cmp = icmp slt i64 %0, 3
  br i1 %cmp, label %inner.head, label %done

inner.head:
  br label %inner

inner:
  %j = phi i64 [ 0, %inner.head ], [ %jn, %inner ]
  %1 = load i64, i64* %i
  %row = mul i64 %1, 4
  %idx = add i64 %row, %j
  %p = getelementptr i64, i64* @grid, i64 %idx
  %v = mul i64 %1, %j
  store i64 %v, i64* %p
  %jn = add i64 %j, 1
  %jc = icmp slt i64 %jn, 4
  br i1 %jc, label %inner, label %outer.inc

outer.inc:
  %2 = load i64, i64* %i
  %3 = add i64 %2, 1
  store i64 %3, i64* %i
  br label %outer.cond

done:
  br label %sum.loop

sum.loop:
  %k = phi i64 [ 0, %done ], [ %kn, %sum.loop ]
  %s = phi i64 [ 0, %done ], [ %sn, %sum.loop ]
  %q = getelementptr i64, i64* @grid, i64 %k
  %c = load i64, i64* %q
  %sn = add i64 %s, %c
  %kn = add i64 %k, 1
  %kc = icmp slt i64 %kn, 12
  br i1 %kc, label %sum.loop, label %exit

exit:
  %avg = sdiv i64 %sn, 4
  call void @print(i64 %sn)
  call void @print(i64 %avg)
  ret i64 %avg
}

declare void @print(i64)

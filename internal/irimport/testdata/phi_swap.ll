; Fibonacci-style swap phis: (a, b) <- (b, a+b) around the back edge.
; The parallel-copy lowering must read both sources before writing
; either destination.
define i64 @main() {
entry:
  br label %loop

loop:
  %i = phi i64 [ 0, %entry ], [ %in, %loop ]
  %a = phi i64 [ 0, %entry ], [ %b, %loop ]
  %b = phi i64 [ 1, %entry ], [ %c, %loop ]
  %c = add i64 %a, %b
  %in = add i64 %i, 1
  %go = icmp slt i64 %in, 20
  br i1 %go, label %loop, label %exit

exit:
  call void @print(i64 %a)
  ret i64 %a
}

declare void @print(i64)

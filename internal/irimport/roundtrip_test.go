package irimport_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/irimport"
)

var update = flag.Bool("update", false, "rewrite the testdata goldens")

func corpusFiles(t testing.TB) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "*.ll"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata corpus")
	}
	return files
}

// TestRoundTrip pins the printer-parser fixed point on the corpus:
// print(parse(input)) must match the golden, and the golden must be a
// byte-identical fixed point of another parse→print trip.
func TestRoundTrip(t *testing.T) {
	for _, file := range corpusFiles(t) {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := irimport.Parse(file, string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			text, err := ir.ProgramText(prog)
			if err != nil {
				t.Fatalf("print: %v", err)
			}
			golden := file + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(text), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/irimport -update` to generate)", err)
			}
			if text != string(want) {
				t.Fatalf("print(parse(%s)) differs from golden:\n%s", file, diffHint(string(want), text))
			}

			// The golden must be a fixed point.
			prog2, err := irimport.Parse(golden, text)
			if err != nil {
				t.Fatalf("reparse of printed form: %v", err)
			}
			text2, err := ir.ProgramText(prog2)
			if err != nil {
				t.Fatalf("reprint: %v", err)
			}
			if text2 != text {
				t.Fatalf("parse→print is not a fixed point for %s:\n%s", file, diffHint(text, text2))
			}
		})
	}
}

func diffHint(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return "line " + itoa(i+1) + ":\n  want: " + wl[i] + "\n  got:  " + gl[i]
		}
	}
	return "lengths differ: want " + itoa(len(wl)) + " lines, got " + itoa(len(gl))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

package profile

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/source"
)

func prep(t *testing.T, src string) (*ir.Program, map[string]*cfg.Forest) {
	t.Helper()
	prog, err := source.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatal(err)
	}
	forests := make(map[string]*cfg.Forest)
	for _, f := range prog.Funcs {
		fo, err := cfg.Normalize(f)
		if err != nil {
			t.Fatal(err)
		}
		forests[f.Name] = fo
	}
	return prog, forests
}

func TestEstimateScalesWithLoopDepth(t *testing.T) {
	prog, forests := prep(t, `
int g;
void main() {
	int i; int j;
	g = 1;
	for (i = 0; i < 10; i++) {
		for (j = 0; j < 10; j++) {
			g = g + 1;
		}
	}
}`)
	main := prog.Func("main")
	fo := forests["main"]
	fp := Estimate(main, fo)

	freqAtDepth := map[int]float64{}
	for _, b := range main.Blocks {
		d := fo.InnermostInterval(b).Depth
		if fp.BlockFreq(b) > freqAtDepth[d] {
			freqAtDepth[d] = fp.BlockFreq(b)
		}
	}
	if !(freqAtDepth[0] < freqAtDepth[1] && freqAtDepth[1] < freqAtDepth[2]) {
		t.Errorf("frequencies do not scale with depth: %v", freqAtDepth)
	}
	if freqAtDepth[0] != 1 || freqAtDepth[1] != 10 || freqAtDepth[2] != 100 {
		t.Errorf("freqs = %v, want 1/10/100", freqAtDepth)
	}
}

func TestEstimateEdgeSplit(t *testing.T) {
	prog, forests := prep(t, `
int c;
void main() {
	if (c) { c = 1; } else { c = 2; }
}`)
	main := prog.Func("main")
	fp := Estimate(main, forests["main"])
	// A two-way branch at depth 0 gives each edge half the frequency.
	for _, b := range main.Blocks {
		if len(b.Succs) == 2 {
			e0 := fp.EdgeFreq(b, b.Succs[0])
			e1 := fp.EdgeFreq(b, b.Succs[1])
			if e0 != e1 || e0 != fp.BlockFreq(b)/2 {
				t.Errorf("edge freqs %v/%v for block freq %v", e0, e1, fp.BlockFreq(b))
			}
		}
	}
}

func TestForFuncCreatesOnDemand(t *testing.T) {
	p := NewProfile()
	fp := p.ForFunc("f")
	if fp == nil || p.ForFunc("f") != fp {
		t.Fatal("ForFunc must return a stable profile")
	}
}

func TestEstimateProgramCoversAllFunctions(t *testing.T) {
	prog, _ := prep(t, `
int g;
void helper() { g++; }
void main() { helper(); }`)
	p, err := EstimateProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if p.Funcs["main"] == nil || p.Funcs["helper"] == nil {
		t.Fatalf("missing function profiles: %v", p.Funcs)
	}
}

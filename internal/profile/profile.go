// Package profile represents execution frequency information — the
// profile feedback that drives the register promotion algorithm's
// profitability decisions. Profiles come from two sources: measured
// counts recorded by the interpreter on a training run, and a static
// loop-depth estimator used when no run profile is available. Both
// produce the same FuncProfile shape.
package profile

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// Edge identifies a CFG edge by block IDs.
type Edge struct {
	From, To ir.BlockID
}

// FuncProfile holds execution frequencies for one function. Frequencies
// are float64 so static estimates (which scale geometrically with loop
// depth) and measured counts share a representation.
type FuncProfile struct {
	Block map[ir.BlockID]float64
	Edge  map[Edge]float64
}

// NewFuncProfile returns an empty function profile.
func NewFuncProfile() *FuncProfile {
	return &FuncProfile{
		Block: make(map[ir.BlockID]float64),
		Edge:  make(map[Edge]float64),
	}
}

// BlockFreq returns the execution frequency of b (0 if never recorded).
func (fp *FuncProfile) BlockFreq(b *ir.Block) float64 { return fp.Block[b.ID] }

// EdgeFreq returns the execution frequency of the edge from -> to.
func (fp *FuncProfile) EdgeFreq(from, to *ir.Block) float64 {
	return fp.Edge[Edge{from.ID, to.ID}]
}

// AddBlock accumulates n executions of b.
func (fp *FuncProfile) AddBlock(b *ir.Block, n float64) { fp.Block[b.ID] += n }

// AddEdge accumulates n traversals of from -> to.
func (fp *FuncProfile) AddEdge(from, to *ir.Block, n float64) {
	fp.Edge[Edge{from.ID, to.ID}] += n
}

// Profile maps function names to their profiles.
type Profile struct {
	Funcs map[string]*FuncProfile
}

// NewProfile returns an empty program profile.
func NewProfile() *Profile {
	return &Profile{Funcs: make(map[string]*FuncProfile)}
}

// ForFunc returns the profile of the named function, creating an empty
// one on first use.
func (p *Profile) ForFunc(name string) *FuncProfile {
	fp, ok := p.Funcs[name]
	if !ok {
		fp = NewFuncProfile()
		p.Funcs[name] = fp
	}
	return fp
}

// loopScale is the factor by which the static estimator assumes each
// loop level multiplies execution frequency. Ten is the traditional
// compiler folklore value.
const loopScale = 10

// Estimate produces a static profile for f from its interval forest:
// every block's frequency is loopScale^depth, and each edge carries its
// source frequency split evenly across successors. It is deliberately
// crude — the paper's algorithm only needs relative frequencies between
// a loop body and the blocks holding its aliased references.
func Estimate(f *ir.Function, forest *cfg.Forest) *FuncProfile {
	fp := NewFuncProfile()
	for _, b := range f.Blocks {
		depth := forest.InnermostInterval(b).Depth
		freq := 1.0
		for i := 0; i < depth; i++ {
			freq *= loopScale
		}
		fp.Block[b.ID] = freq
	}
	for _, b := range f.Blocks {
		if len(b.Succs) == 0 {
			continue
		}
		share := fp.Block[b.ID] / float64(len(b.Succs))
		for _, s := range b.Succs {
			fp.Edge[Edge{b.ID, s.ID}] += share
		}
	}
	return fp
}

// EstimateProgram runs Estimate on every function of prog, building each
// function's interval forest on the fly.
func EstimateProgram(prog *ir.Program) (*Profile, error) {
	p := NewProfile()
	for _, f := range prog.Funcs {
		forest := cfg.BuildIntervals(f)
		p.Funcs[f.Name] = Estimate(f, forest)
	}
	return p, nil
}

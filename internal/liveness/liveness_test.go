package liveness_test

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/source"
	"repro/internal/ssa"
	"repro/internal/workload"
)

// figure1Src is the paper's running example (Figure 1).
const figure1Src = `
int x;
void foo() { x = x + 1; }
void main() {
	int i;
	for (i = 0; i < 100; i++) x++;
	for (i = 0; i < 10; i++) foo();
	print(x);
}
`

// figure7Src is the paper's cold-call-path example (Figure 7).
const figure7Src = `
int x;
int log;
void foo() { log = log + x; }
void main() {
	int i;
	for (i = 0; i < 100; i++) {
		x++;
		if (x < 30) foo();
	}
	print(x);
	print(log);
}
`

// buildSSA compiles src through the front half of the pipeline and
// returns each function in SSA form along with its interval forest.
func buildSSA(t *testing.T, src string) (*ir.Program, map[string]*cfg.Forest) {
	t.Helper()
	prog, err := source.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatalf("alias: %v", err)
	}
	forests := make(map[string]*cfg.Forest, len(prog.Funcs))
	for _, f := range prog.Funcs {
		forest, err := cfg.Normalize(f)
		if err != nil {
			t.Fatalf("normalize %s: %v", f.Name, err)
		}
		if _, err := ssa.Build(f); err != nil {
			t.Fatalf("ssa %s: %v", f.Name, err)
		}
		forests[f.Name] = forest
	}
	return prog, forests
}

func fn(t *testing.T, prog *ir.Program, name string) *ir.Function {
	t.Helper()
	for _, f := range prog.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// TestFigure1Golden pins the liveness facts of the paper's running
// example. The values are goldens: any change to the front end, the
// SSA builder, or the analysis that moves them is worth noticing.
func TestFigure1Golden(t *testing.T) {
	prog, forests := buildSSA(t, figure1Src)

	foo := liveness.Compute(fn(t, prog, "foo"))
	if foo.MaxLive != 1 {
		t.Errorf("foo MaxLive = %d, want 1 (straight-line load-add-store)", foo.MaxLive)
	}

	main := fn(t, prog, "main")
	info := liveness.Compute(main)
	if info.MaxLive != 5 {
		t.Errorf("main MaxLive = %d, want 5", info.MaxLive)
	}
	// Per-block pressure of the two loops: the hot x++ loop peaks at 5
	// (i, x, both increments, and the loop-carried phi inputs), the
	// call loop at 3 (the call kills everything but i's web).
	wantBlock := map[ir.BlockID]int{0: 1, 1: 2, 2: 4, 3: 5, 4: 1, 5: 2, 6: 2, 7: 3, 8: 1}
	for id, want := range wantBlock {
		if got := info.BlockMaxLive[id]; got != want {
			t.Errorf("main BlockMaxLive[%d] = %d, want %d", id, got, want)
		}
	}
	// Interval pressure: the function root sees 5; the first loop's
	// interval (header 1) contains the hot blocks, the second (header
	// 5) only the call loop.
	pres := liveness.ComputePressure(info, forests["main"])
	if pres.FunctionMaxLive != 5 {
		t.Errorf("FunctionMaxLive = %d, want 5", pres.FunctionMaxLive)
	}
	wantHeaders := map[ir.BlockID]int{0: 5, 1: 5, 5: 3}
	if len(pres.ByHeader) != len(wantHeaders) {
		t.Errorf("ByHeader = %v, want headers %v", pres.ByHeader, wantHeaders)
	}
	for h, want := range wantHeaders {
		if got, ok := pres.ByHeader[h]; !ok || got != want {
			t.Errorf("ByHeader[%d] = %d (present %v), want %d", h, got, ok, want)
		}
	}
}

// TestFigure7Golden pins the liveness facts of the cold-call example:
// the conditional call keeps both globals' webs live around the
// branch diamond, so every diamond block carries the same 6 live webs.
func TestFigure7Golden(t *testing.T) {
	prog, forests := buildSSA(t, figure7Src)

	foo := liveness.Compute(fn(t, prog, "foo"))
	if foo.MaxLive != 2 {
		t.Errorf("foo MaxLive = %d, want 2 (log and x webs overlap)", foo.MaxLive)
	}

	main := fn(t, prog, "main")
	info := liveness.Compute(main)
	if info.MaxLive != 7 {
		t.Errorf("main MaxLive = %d, want 7", info.MaxLive)
	}
	wantBlock := map[ir.BlockID]int{0: 1, 1: 2, 2: 6, 3: 7, 4: 1, 5: 6, 6: 6, 7: 6}
	for id, want := range wantBlock {
		if got := info.BlockMaxLive[id]; got != want {
			t.Errorf("main BlockMaxLive[%d] = %d, want %d", id, got, want)
		}
	}
	pres := liveness.ComputePressure(info, forests["main"])
	wantHeaders := map[ir.BlockID]int{0: 7, 1: 7}
	if len(pres.ByHeader) != len(wantHeaders) {
		t.Errorf("ByHeader = %v, want headers %v", pres.ByHeader, wantHeaders)
	}
	for h, want := range wantHeaders {
		if got, ok := pres.ByHeader[h]; !ok || got != want {
			t.Errorf("ByHeader[%d] = %d (present %v), want %d", h, got, ok, want)
		}
	}
}

// referenceLiveness is a deliberately naive map-based fixpoint with the
// same phi semantics as Compute, iterated in forward block order (the
// opposite of Compute's backward sweep) until stable. It exists only to
// cross-check the bitset implementation.
func referenceLiveness(f *ir.Function) (in, out map[ir.BlockID]map[int]bool) {
	in = make(map[ir.BlockID]map[int]bool)
	out = make(map[ir.BlockID]map[int]bool)
	for _, b := range f.Blocks {
		in[b.ID] = map[int]bool{}
		out[b.ID] = map[int]bool{}
	}
	equal := func(a, b map[int]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for r := range a {
			if !b[r] {
				return false
			}
		}
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			o := map[int]bool{}
			for _, s := range b.Succs {
				for r := range in[s.ID] {
					o[r] = true
				}
				for _, phi := range s.Phis() {
					if phi.Op != ir.OpPhi {
						continue
					}
					pi := s.PredIndex(b)
					if pi >= 0 && pi < len(phi.Args) && !phi.Args[pi].IsConst() {
						o[int(phi.Args[pi].Reg())] = true
					}
				}
			}
			i := map[int]bool{}
			for r := range o {
				i[r] = true
			}
			for k := len(b.Instrs) - 1; k >= 0; k-- {
				instr := b.Instrs[k]
				if instr.HasDst() {
					delete(i, int(instr.Dst))
				}
				if instr.Op == ir.OpPhi {
					continue
				}
				for _, a := range instr.Args {
					if !a.IsConst() {
						i[int(a.Reg())] = true
					}
				}
			}
			if !equal(o, out[b.ID]) || !equal(i, in[b.ID]) {
				out[b.ID], in[b.ID] = o, i
				changed = true
			}
		}
	}
	return in, out
}

// TestMatchesReference cross-checks Compute against the map-based
// reference on the whole workload suite plus a generated corpus.
func TestMatchesReference(t *testing.T) {
	corpus := workload.Suite()
	corpus = append(corpus, workload.Corpus(7, 6)...)
	for _, w := range corpus {
		prog, _ := buildSSA(t, w.Src)
		for _, f := range prog.Funcs {
			info := liveness.Compute(f)
			refIn, refOut := referenceLiveness(f)
			for _, b := range f.Blocks {
				for r := 0; r < f.NumRegs; r++ {
					if info.LiveIn[b.ID].Has(r) != refIn[b.ID][r] {
						t.Fatalf("%s/%s block %d: live-in disagreement on r%d (bitset %v, reference %v)",
							w.Name, f.Name, b.ID, r, info.LiveIn[b.ID].Has(r), refIn[b.ID][r])
					}
					if info.LiveOut[b.ID].Has(r) != refOut[b.ID][r] {
						t.Fatalf("%s/%s block %d: live-out disagreement on r%d (bitset %v, reference %v)",
							w.Name, f.Name, b.ID, r, info.LiveOut[b.ID].Has(r), refOut[b.ID][r])
					}
				}
			}
		}
	}
}

// TestComputeIsDeterministic checks Equal and that recomputation on a
// clone reproduces the Info bit for bit, fingerprint included.
func TestComputeIsDeterministic(t *testing.T) {
	prog, _ := buildSSA(t, figure7Src)
	main := fn(t, prog, "main")
	a := liveness.Compute(main)
	b := liveness.Compute(main.Clone())
	if !a.Equal(b) {
		t.Fatal("liveness of a clone differs from the original")
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints differ across Clone: %x vs %x", a.Fingerprint, b.Fingerprint)
	}
}

// TestFingerprintSensitivity checks the fingerprint moves when the
// instruction stream changes without a CFG edit — the exact situation
// the (version, fingerprint) cache key exists for.
func TestFingerprintSensitivity(t *testing.T) {
	prog, _ := buildSSA(t, figure1Src)
	main := fn(t, prog, "main")
	before := liveness.Fingerprint(main)

	// Swap one instruction's opcode in place: no CFG change, no
	// version bump, different stream.
	var victim *ir.Instr
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAdd {
				victim = in
				break
			}
		}
		if victim != nil {
			break
		}
	}
	if victim == nil {
		t.Fatal("no add instruction to mutate")
	}
	victim.Op = ir.OpSub
	if after := liveness.Fingerprint(main); after == before {
		t.Fatal("fingerprint unchanged after in-place opcode rewrite")
	}
	victim.Op = ir.OpAdd
	if restored := liveness.Fingerprint(main); restored != before {
		t.Fatal("fingerprint not restored after undoing the rewrite")
	}
}

// TestLiveAcross spot-checks the helper against the Figure 7 diamond:
// whatever is live-in of the branch block stays live across both arms.
func TestLiveAcross(t *testing.T) {
	prog, _ := buildSSA(t, figure7Src)
	main := fn(t, prog, "main")
	info := liveness.Compute(main)
	found := false
	for r := 0; r < main.NumRegs; r++ {
		if info.LiveIn[5] != nil && info.LiveIn[5].Has(r) {
			found = true
			if !info.LiveAcross(5, ir.RegID(r)) {
				t.Errorf("r%d live-in of block 5 but LiveAcross says no", r)
			}
		}
	}
	if !found {
		t.Fatal("block 5 has empty live-in; golden assumption broken")
	}
	if info.LiveAcross(ir.BlockID(10_000), 0) {
		t.Error("LiveAcross claims liveness in a nonexistent block")
	}
}

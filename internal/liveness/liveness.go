// Package liveness computes static per-block register liveness for the
// IR: live-in/live-out bitsets indexed by block ID, the per-block and
// whole-function MaxLive (the largest number of registers simultaneously
// live at any program point), and per-interval pressure summaries. The
// analysis uses exactly the semantics regalloc's interference walk
// assumes — phi operands are live-out of the corresponding predecessor,
// not live-in of the phi's block, and phi definitions are killed at
// block entry — so regalloc consumes an Info directly and the two can
// never disagree about MaxLive.
//
// Results are pure functions of the instruction stream, which the CFG
// version counter alone does not capture (promotion rewrites
// instructions without touching the CFG). Info therefore carries an
// FNV-1a fingerprint of the stream, and the analysis cache keys on
// (CFGVersion, Fingerprint) — the same discipline as the compiled
// bytecode kind.
package liveness

import (
	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/ir"
)

// Info is the liveness analysis result for one function. The per-block
// slices are indexed by ir.BlockID (bound f.BlockIDBound()); entries for
// IDs with no live block are nil.
type Info struct {
	// NumRegs is the register capacity the bitsets were built with.
	NumRegs int
	// LiveIn[id] holds the registers live at entry to block id. Phi
	// definitions are excluded (killed at entry) and phi operands are
	// charged to predecessors, matching regalloc.
	LiveIn []*bitset.Dense
	// LiveOut[id] holds the registers live at exit from block id,
	// including the block's outgoing phi operands.
	LiveOut []*bitset.Dense
	// BlockMaxLive[id] is the largest live count at any point inside
	// block id (sampled at live-out and after each instruction, exactly
	// as regalloc's interference walk samples it).
	BlockMaxLive []int
	// MaxLive is the maximum of BlockMaxLive — the function's register
	// pressure floor and a lower bound on regalloc Colors.
	MaxLive int
	// Version is the function's CFGVersion when the analysis ran.
	Version uint64
	// Fingerprint is the FNV-1a hash of the instruction stream the
	// analysis saw (see Fingerprint).
	Fingerprint uint64
}

// Compute runs backward liveness to a fixed point over all blocks. It
// accepts SSA or non-SSA IR; blocks unreachable from the entry are
// analyzed like any other (their live-in simply never flows anywhere),
// which matches regalloc's whole-list walk.
func Compute(f *ir.Function) *Info {
	bound := int(f.BlockIDBound())
	n := f.NumRegs
	info := &Info{
		NumRegs:      n,
		LiveIn:       make([]*bitset.Dense, bound),
		LiveOut:      make([]*bitset.Dense, bound),
		BlockMaxLive: make([]int, bound),
		Version:      f.CFGVersion(),
		Fingerprint:  Fingerprint(f),
	}
	for _, b := range f.Blocks {
		info.LiveIn[b.ID] = bitset.NewDense(n)
		info.LiveOut[b.ID] = bitset.NewDense(n)
	}

	out := bitset.NewDense(n)
	in := bitset.NewDense(n)
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out.Reset()
			for _, s := range b.Succs {
				out.UnionWith(info.LiveIn[s.ID])
				for _, phi := range s.Phis() {
					if phi.Op != ir.OpPhi {
						continue
					}
					pi := s.PredIndex(b)
					if pi >= 0 && pi < len(phi.Args) && !phi.Args[pi].IsConst() {
						out.Set(int(phi.Args[pi].Reg()))
					}
				}
			}
			in.CopyFrom(out)
			for k := len(b.Instrs) - 1; k >= 0; k-- {
				instr := b.Instrs[k]
				if instr.HasDst() {
					in.Clear(int(instr.Dst))
				}
				if instr.Op == ir.OpPhi {
					continue // phi uses belong to predecessors
				}
				for _, a := range instr.Args {
					if !a.IsConst() {
						in.Set(int(a.Reg()))
					}
				}
			}
			if !out.Equal(info.LiveOut[b.ID]) {
				info.LiveOut[b.ID].CopyFrom(out)
				changed = true
			}
			if !in.Equal(info.LiveIn[b.ID]) {
				info.LiveIn[b.ID].CopyFrom(in)
				changed = true
			}
		}
	}

	// Per-block MaxLive: re-walk each block backward from its final
	// live-out, tracking the live count the way regalloc's interference
	// walk does (kill the definition, then add the uses, then sample).
	live := out // reuse the scratch set
	for _, b := range f.Blocks {
		live.CopyFrom(info.LiveOut[b.ID])
		count := live.Count()
		max := count
		for k := len(b.Instrs) - 1; k >= 0; k-- {
			instr := b.Instrs[k]
			if instr.HasDst() && live.Has(int(instr.Dst)) {
				live.Clear(int(instr.Dst))
				count--
			}
			if instr.Op != ir.OpPhi {
				for _, a := range instr.Args {
					if !a.IsConst() && !live.Has(int(a.Reg())) {
						live.Set(int(a.Reg()))
						count++
					}
				}
			}
			if count > max {
				max = count
			}
		}
		info.BlockMaxLive[b.ID] = max
		if max > info.MaxLive {
			info.MaxLive = max
		}
	}
	return info
}

// Equal reports whether two Infos describe identical liveness (ignoring
// Version and Fingerprint). Used by the cache's paranoid revalidation.
func (info *Info) Equal(other *Info) bool {
	if info.NumRegs != other.NumRegs || info.MaxLive != other.MaxLive ||
		len(info.LiveIn) != len(other.LiveIn) {
		return false
	}
	for id := range info.LiveIn {
		a, b := info.LiveIn[id], other.LiveIn[id]
		if (a == nil) != (b == nil) {
			return false
		}
		if a != nil && (!a.Equal(b) || !info.LiveOut[id].Equal(other.LiveOut[id])) {
			return false
		}
		if info.BlockMaxLive[id] != other.BlockMaxLive[id] {
			return false
		}
	}
	return true
}

// LiveAcross reports whether register r is live at any point in block id
// (live-in, live-out, or defined/used inside — approximated as live-in
// or live-out, which is exact for SSA webs spanning the block).
func (info *Info) LiveAcross(id ir.BlockID, r ir.RegID) bool {
	if int(id) >= len(info.LiveIn) || info.LiveIn[id] == nil {
		return false
	}
	return info.LiveIn[id].Has(int(r)) || info.LiveOut[id].Has(int(r))
}

// Pressure summarizes MaxLive per cfg.Interval: the budget input for
// pressure-aware promotion. Intervals are identified by their header
// block ID; the root pseudo-interval maps to the whole function.
type Pressure struct {
	// FunctionMaxLive is MaxLive over the whole function.
	FunctionMaxLive int
	// ByHeader[h] is the max BlockMaxLive over the blocks of the
	// interval whose header has block ID h.
	ByHeader map[ir.BlockID]int
	// Version and Fingerprint identify the Info this was derived from.
	Version     uint64
	Fingerprint uint64
}

// ComputePressure folds Info's per-block MaxLive over an interval
// forest. Nested intervals each get their own entry (an inner loop's
// pressure counts toward every enclosing interval, since its blocks are
// members of all of them).
func ComputePressure(info *Info, forest *cfg.Forest) *Pressure {
	p := &Pressure{
		FunctionMaxLive: info.MaxLive,
		ByHeader:        make(map[ir.BlockID]int),
		Version:         info.Version,
		Fingerprint:     info.Fingerprint,
	}
	forest.Root.Walk(func(iv *cfg.Interval) {
		max := 0
		for _, b := range iv.Blocks {
			if int(b.ID) < len(info.BlockMaxLive) && info.BlockMaxLive[b.ID] > max {
				max = info.BlockMaxLive[b.ID]
			}
		}
		p.ByHeader[iv.Header.ID] = max
	})
	return p
}

// IntervalMaxLive returns the pressure recorded for iv, or the function
// MaxLive when iv is unknown (conservative).
func (p *Pressure) IntervalMaxLive(iv *cfg.Interval) int {
	if m, ok := p.ByHeader[iv.Header.ID]; ok {
		return m
	}
	return p.FunctionMaxLive
}

// Equal reports whether two Pressure summaries coincide (ignoring
// Version and Fingerprint).
func (p *Pressure) Equal(other *Pressure) bool {
	if p.FunctionMaxLive != other.FunctionMaxLive || len(p.ByHeader) != len(other.ByHeader) {
		return false
	}
	for h, m := range p.ByHeader {
		om, ok := other.ByHeader[h]
		if !ok || om != m {
			return false
		}
	}
	return true
}

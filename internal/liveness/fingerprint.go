package liveness

import "repro/internal/ir"

// fnv64Offset and fnv64Prime are the FNV-1a 64-bit parameters.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// Fingerprint hashes the parts of the instruction stream liveness
// depends on: block identity and order, successor edges, opcodes,
// destination and operand registers, constants, callees, and memory
// locations. Two functions with equal fingerprints (and equal register
// counts, which the hash includes) get identical liveness, so the
// analysis cache can key on (CFGVersion, Fingerprint) and survive
// shape-preserving rewrites like promotion's load/store replacement.
func Fingerprint(f *ir.Function) uint64 {
	h := uint64(fnv64Offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnv64Prime
			v >>= 8
		}
	}
	mixStr := func(s string) {
		mix(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= fnv64Prime
		}
	}

	mix(uint64(f.NumRegs))
	mix(uint64(len(f.Params)))
	for _, p := range f.Params {
		mix(uint64(p))
	}
	mix(uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		mix(uint64(b.ID))
		mix(uint64(len(b.Succs)))
		for _, s := range b.Succs {
			mix(uint64(s.ID))
		}
		mix(uint64(len(b.Instrs)))
		for _, in := range b.Instrs {
			mix(uint64(in.Op))
			mix(uint64(int64(in.Dst)))
			mix(uint64(len(in.Args)))
			for _, a := range in.Args {
				if a.IsConst() {
					mix(1)
					mix(uint64(a.Const()))
				} else {
					mix(0)
					mix(uint64(a.Reg()))
				}
			}
			if in.Callee != "" {
				mixStr(in.Callee)
			}
			if in.Loc.Kind != ir.LocNone {
				mix(uint64(in.Loc.Kind))
				mixStr(in.Loc.Object())
				mix(uint64(in.Loc.Offset))
			}
		}
	}
	return h
}

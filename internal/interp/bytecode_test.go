package interp

import (
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/alias"
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/source"
	"repro/internal/workload"
)

// compileSource builds a program for direct Run calls.
func compileSource(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := source.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return prog
}

// requireSameResult holds two interpretation paths to the full
// observable contract: output, return value, step count, opcode
// counts, global images, and the block/edge profile.
func requireSameResult(t *testing.T, name, aPath, bPath string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Output, b.Output) {
		t.Errorf("%s: output differs: %s %v %s %v", name, aPath, a.Output, bPath, b.Output)
	}
	if a.ReturnValue != b.ReturnValue {
		t.Errorf("%s: return value differs: %s %d %s %d", name, aPath, a.ReturnValue, bPath, b.ReturnValue)
	}
	if a.Steps != b.Steps {
		t.Errorf("%s: steps differ: %s %d %s %d", name, aPath, a.Steps, bPath, b.Steps)
	}
	if !reflect.DeepEqual(a.OpCounts, b.OpCounts) {
		t.Errorf("%s: opcode counts differ:\n%s %v\n%s %v", name, aPath, a.OpCounts, bPath, b.OpCounts)
	}
	if !reflect.DeepEqual(a.Globals, b.Globals) {
		t.Errorf("%s: global images differ", name)
	}
	if (a.Profile == nil) != (b.Profile == nil) {
		t.Fatalf("%s: one path lost its profile", name)
	}
	if a.Profile != nil && !reflect.DeepEqual(a.Profile.Funcs, b.Profile.Funcs) {
		t.Errorf("%s: profiles differ:\n%s %+v\n%s %+v", name, aPath, a.Profile.Funcs, bPath, b.Profile.Funcs)
	}
}

// threeWay runs src on all three execution paths and requires pairwise
// identical results. Each path gets a fresh program instance.
func threeWay(t *testing.T, name, src string) {
	t.Helper()
	bc := runPath(t, src, Options{CollectProfile: true, Bytecode: true})
	fast := runPath(t, src, Options{CollectProfile: true})
	legacy := runPath(t, src, Options{CollectProfile: true, Legacy: true})
	requireSameResult(t, name, "bytecode", "legacy", bc, legacy)
	requireSameResult(t, name, "bytecode", "fast", bc, fast)
}

// TestBytecodeMatchesLegacyAndFast is the three-way differential over
// the full workload suite plus generated programs, including configs
// tuned toward the shapes that stress the compiler: helper-call fanout,
// arrays, deep nesting, and pointer traffic.
func TestBytecodeMatchesLegacyAndFast(t *testing.T) {
	type gen struct {
		seed       int64
		helpers    int
		arrays     int
		depth      int
		ptrPercent int
	}
	tuned := []gen{
		{1, 3, 2, 2, 30},
		{7, 0, 0, 1, 0},
		{42, 2, 1, 3, 80},
		{1998, 4, 2, 2, 50},
		{-3, 1, 2, 1, 99},
	}

	for _, w := range workload.Suite() {
		threeWay(t, "suite/"+w.Name, w.Src)
	}
	for i := 0; i < 8; i++ {
		src := workload.Generate(workload.DefaultGenConfig(workload.DeriveSeed(41, i)))
		threeWay(t, "gen/"+strconv.Itoa(i), src)
	}
	for _, g := range tuned {
		cfg := workload.DefaultGenConfig(g.seed)
		cfg.NumHelpers = g.helpers
		cfg.NumArrays = g.arrays
		cfg.MaxDepth = g.depth
		cfg.PtrChance = float64(g.ptrPercent) / 100
		threeWay(t, "tuned/"+strconv.FormatInt(g.seed, 10), workload.Generate(cfg))
	}
}

// TestBytecodeParserCorpus sweeps the parser fuzz seed corpus through
// the three-way differential, skipping entries the frontend rejects
// (they seed error paths).
func TestBytecodeParserCorpus(t *testing.T) {
	dir := filepath.Join("..", "source", "testdata", "fuzz", "FuzzParser")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	ran := 0
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "string(") {
				continue
			}
			src, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "string("), ")"))
			if err != nil {
				t.Fatalf("%s: bad corpus entry: %v", e.Name(), err)
			}
			prog, err := source.Compile(src)
			if err != nil || prog.Func("main") == nil {
				continue
			}
			if err := alias.Analyze(prog); err != nil {
				continue
			}
			if _, err := Run(prog, Options{Legacy: true}); err != nil {
				continue // seeds runtime error paths; covered by TestBytecodeErrorParity
			}
			threeWay(t, "corpus/"+e.Name(), src)
			ran++
		}
	}
	if ran < 4 {
		t.Fatalf("only %d usable corpus programs; corpus missing?", ran)
	}
}

// TestBytecodeRecursion exercises the register arena's growth path
// (reallocation without copying, live parent frames on the old backing
// array) under deep recursion with multiple live activations.
func TestBytecodeRecursion(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int acc;
void twist(int d, int salt) {
	int local;
	local = d * 3 + salt;
	if (d > 0) {
		twist(d - 1, local);
		twist(d - 1, local + 1);
	}
	acc = acc + local;
}
void main() {
	print(fib(17));
	twist(8, 5);
	print(acc);
}`
	bc := runPath(t, src, Options{CollectProfile: true, Bytecode: true})
	legacy := runPath(t, src, Options{CollectProfile: true, Legacy: true})
	requireSameResult(t, "recursion", "bytecode", "legacy", bc, legacy)
	if bc.Output[0] != 1597 {
		t.Fatalf("fib(17) = %d, want 1597", bc.Output[0])
	}
}

// TestBytecodeErrorParity holds the bytecode path to the legacy
// interpreter's exact error behavior: same message, and no Result.
func TestBytecodeErrorParity(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts Options
	}{
		{"step limit", `void main() { int i; i = 0; while (i < 1000000) { i = i + 1; } }`,
			Options{MaxSteps: 10_000}},
		{"division by zero", `int g; void main() { int x; x = 7 / g; print(x); }`, Options{}},
		{"modulo by zero", `int g; void main() { int x; x = 7 % g; print(x); }`, Options{}},
		{"call depth", `int down(int n) { return down(n + 1); } void main() { print(down(0)); }`,
			Options{MaxDepth: 100}},
		{"index out of range", `int a[4]; void main() { int i; i = 9; a[i] = 1; }`, Options{}},
	}
	for _, tc := range cases {
		prog := compileSource(t, tc.src)
		bopts := tc.opts
		bopts.Bytecode = true
		bres, berr := Run(prog, bopts)
		lopts := tc.opts
		lopts.Legacy = true
		lres, lerr := Run(compileSource(t, tc.src), lopts)
		if berr == nil || lerr == nil {
			t.Fatalf("%s: expected both paths to fail, bytecode %v legacy %v", tc.name, berr, lerr)
		}
		if berr.Error() != lerr.Error() {
			t.Errorf("%s: error differs:\nbytecode %q\nlegacy   %q", tc.name, berr, lerr)
		}
		if bres != nil || lres != nil {
			t.Errorf("%s: failed run leaked a Result", tc.name)
		}
	}
}

// TestBytecodeCompileOncePerVersion wires the real analysis cache in as
// the code cache and requires exactly one compilation per function
// across repeated runs, plus exactly one recompilation after the CFG
// version moves.
func TestBytecodeCompileOncePerVersion(t *testing.T) {
	src := `
int g;
int bump(int x) { g = g + x; return g; }
void main() {
	int i;
	i = 0;
	while (i < 50) { i = i + bump(1) % 3; }
	print(g);
}`
	prog := compileSource(t, src)
	cache := analysis.New()
	opts := Options{Bytecode: true, Code: cache}

	var first *Result
	for run := 0; run < 3; run++ {
		res, err := Run(prog, opts)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if first == nil {
			first = res
		} else if !reflect.DeepEqual(res.Output, first.Output) || res.Steps != first.Steps {
			t.Fatalf("run %d: result drifted", run)
		}
	}
	for _, name := range []string{"main", "bump"} {
		f := prog.Func(name)
		got := len(cache.Builds(f)[analysis.KindCode])
		if got != 1 {
			t.Errorf("%s: %d code builds across 3 runs, want 1", name, got)
		}
	}

	// A CFG shape change must force exactly one recompile.
	main := prog.Func("main")
	main.MarkCFGChanged()
	if _, err := Run(prog, opts); err != nil {
		t.Fatal(err)
	}
	if got := len(cache.Builds(main)[analysis.KindCode]); got != 2 {
		t.Errorf("main: %d code builds after CFG change, want 2", got)
	}
	if got := len(cache.Builds(prog.Func("bump"))[analysis.KindCode]); got != 1 {
		t.Errorf("bump: %d code builds after unrelated CFG change, want 1", got)
	}
}

// TestBytecodeStaleCacheRejected plants code compiled from a rewritten
// twin of the program under the original function's cache slot and
// requires the fingerprint check to reject it: CFGVersion alone cannot
// see instruction rewrites that leave the block graph intact.
func TestBytecodeStaleCacheRejected(t *testing.T) {
	src := `int g; void main() { g = g + 41; print(g); }`
	prog := compileSource(t, src)
	main := prog.Func("main")

	m := &machine{prog: prog}
	m.layoutGlobals()
	good := compileBytecode(main, m.globalBase)
	if !good.bcValid(main, m.globalBase) {
		t.Fatal("freshly compiled code reported stale")
	}

	// Rewrite an instruction operand without touching the CFG.
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			for j, a := range in.Args {
				if a.IsConst() && a.Const() == 41 {
					in.Args[j] = ir.ConstVal(99)
				}
			}
		}
	}
	if good.bcValid(main, m.globalBase) {
		t.Fatal("stale code accepted after instruction rewrite at unchanged CFG version")
	}

	res, err := Run(prog, Options{Bytecode: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 99 {
		t.Fatalf("output %v, want [99]", res.Output)
	}
}

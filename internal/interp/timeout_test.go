package interp_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/interp"
	"repro/internal/source"
)

// longLoop runs ~40M instructions — far past a 1ms deadline, well
// under the step limit.
const longLoop = `
int x;
void main() {
	int i;
	for (i = 0; i < 10000000; i++) x++;
	print(x);
}
`

func TestWallClockTimeout(t *testing.T) {
	prog, err := source.Compile(longLoop)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = interp.Run(prog, interp.Options{Timeout: time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("err = %v, want wall-clock timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout enforcement took %v", elapsed)
	}
}

func TestNoTimeoutByDefault(t *testing.T) {
	prog, err := source.Compile(`void main() { print(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 1 {
		t.Fatalf("output = %v", res.Output)
	}
}

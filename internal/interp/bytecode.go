// Bytecode compilation: the third execution path. The compiler flattens
// a function into a linear array of register-numbered instructions with
// the blocks' phi prefixes lowered to per-edge copy sequences, constants
// materialized into a pool appended to the register frame (so operand
// resolution is one indexed load, never a const/register branch), and
// the two most common adjacent pairs fused into single superinstructions
// (scalar load + arithmetic consumer, comparison + conditional branch).
// Memory addressing is resolved at compile time: global cells become
// absolute arena addresses, slot cells become frame-relative offsets via
// FrameLayout, so the executor's load/store is pointer arithmetic plus a
// bounds check.
//
// Compiled code is immutable and cacheable. Validity is two keys deep:
// the CFG version counter catches shape mutations, and a fingerprint
// hash over the instruction stream catches the rewrites that leave the
// shape alone (SSA construction, promotion rewriting loads to copies) —
// CFGVersion only promises an unchanged block graph, not unchanged
// instructions, so the hash is what makes cross-stage caching sound.
package interp

import (
	"fmt"

	"repro/internal/ir"
)

// bcOp enumerates bytecode opcodes. The base set mirrors ir.Op one to
// one; the fused opcodes execute an adjacent pair in one dispatch while
// preserving the pair's observable accounting (both steps, both opcode
// counts, both destination writes, original fault ordering).
type bcOp uint8

const (
	bcInvalid bcOp = iota

	// dst = a op b (operands are frame indexes: registers or pool
	// constants).
	bcAdd
	bcSub
	bcMul
	bcDiv
	bcRem
	bcAnd
	bcOr
	bcXor
	bcShl
	bcShr
	bcEq
	bcNe
	bcLt
	bcLe
	bcGt
	bcGe

	bcNeg  // dst = -a
	bcNot  // dst = ^a
	bcCopy // dst = a

	bcLoad     // dst = mem[addr]
	bcStore    // mem[addr] = a
	bcAddr     // dst = addr
	bcLoadPtr  // dst = mem[regs[a]]
	bcStorePtr // mem[regs[a]] = b
	bcLoadIdx  // dst = mem[addr + a], bounds-checked against size
	bcStoreIdx // mem[addr + a] = b, bounds-checked against size

	bcCall  // dst = callee(args...)
	bcPrint // print a
	bcNop   // dummyload / body memphi: counted, no effect

	bcJmp     // take edges[aux]
	bcBr      // a != 0 ? edges[aux] : edges[aux2]
	bcRet     // return a
	bcRetVoid // return 0

	// bcTrap raises a precomputed error (unallocated slot, phi outside
	// the block prefix, unterminated block): malformed-IR paths that the
	// legacy interpreter detects instruction by instruction and the
	// compiler detects once, up front.
	bcTrap

	// Fused load + arithmetic: dst2 = mem[addr]; dst = a op b. The load
	// destination is always written, so fusion needs no liveness
	// analysis, and faulting ops (div/rem) are never fused.
	bcLoadAdd
	bcLoadSub
	bcLoadMul
	bcLoadAnd
	bcLoadOr
	bcLoadXor
	bcLoadShl
	bcLoadShr

	// Fused comparison + branch: dst = a cmp b; branch on it. The
	// comparison destination is always written.
	bcEqBr
	bcNeBr
	bcLtBr
	bcLeBr
	bcGtBr
	bcGeBr

	// Fused arithmetic + statically addressed store: dst = a op b;
	// mem[addr] = frame[dst2]. Only stores whose cell is resolved at
	// compile time (scalar, or constant in-bounds index) fuse, so the
	// second half cannot fault before its own step is charged.
	bcAddSt
	bcSubSt
	bcMulSt
	bcAndSt
	bcOrSt
	bcXorSt
	bcShlSt
	bcShrSt
)

// bcInstr is one bytecode instruction, kept to hot fields only (48
// bytes, so instructions pack tightly into cache lines). Operand
// fields a, b are frame indexes (register number, or numRegs+k for
// constant pool entry k); dst and dst2 are register numbers, except
// that a fused store reads its stored value through dst2. Cold
// payloads — call argument lists, callee names, trap errors, and the
// IR instructions behind indexed-op error messages — live in side
// tables on bcCode, referenced by index.
type bcInstr struct {
	addr int64 // LocGlobal: absolute arena address; LocSlot: frame-relative
	size int64 // object cell count for indexed bounds checks
	dst  int32
	dst2 int32 // fused load destination; fused store value
	a    int32 // operand; argPool offset (Call)
	b    int32 // operand; argument count (Call)
	aux  int32 // edge index (Jmp, Br taken, fused-cmp Br taken); link slot (Call); trap index (Trap); src index (LoadIdx, StoreIdx)
	aux2 int32 // edge index (Br not taken)
	op   bcOp
	rel  bool // addr is frame-relative (slot cell)
}

// bcMove is one lowered phi move: frame[dst] = frame[src]. Sequences
// are pre-sequentialized, so execution is a plain ordered loop.
type bcMove struct {
	dst int32
	src int32
}

// bcEdge is one lowered CFG edge: where to resume, which counters to
// bump, how many phi-prefix steps the target charges, and the move
// sequence implementing the target's phi row for this predecessor.
type bcEdge struct {
	target   int32 // pc of the target block's first post-phi instruction
	blockID  int32 // target block, for the execution counter
	fromID   int32 // source block, for the edge profile counter
	succIdx  int32
	phiSteps int64
	copies   []bcMove
	trap     error // register phi entered from a non-predecessor
}

// opCount is one entry of a block's static opcode tally.
type opCount struct {
	op ir.Op
	n  int64
}

// bcCode is a compiled function. It is immutable after compilation and
// shared freely across machines running the same program.
type bcCode struct {
	fname string
	ins   []bcInstr
	edges []bcEdge

	consts   []int64 // constant pool, copied into each frame's tail
	numRegs  int32
	frameLen int32 // numRegs + len(consts) + 1 scratch slot

	slotCount int   // len(f.Slots) at compile, for staleness checks
	nCalls    int   // call sites, numbering each bcCall's link slot

	// Cold side tables, indexed from bcInstr as documented there.
	argPool   []int32     // call arguments as frame indexes
	callNames []string    // callee name per call site
	traps     []error     // bcTrap payloads
	srcs      []*ir.Instr // indexed-op IR instructions, for error text
	frameSize int64 // memory-slot frame size (FrameLayout)

	entryPC       int32
	entryID       int32
	entryPhiSteps int64
	entryTrap     error // register phi in the entry block

	// blockOps[id] tallies every instruction of block id (phi prefix
	// included). A block entered on the successful path always runs to
	// its terminator, so opcode counts are exactly the per-block entry
	// counters times these static tallies, reconstructed once per run.
	blockOps [][]opCount

	version uint64 // f.CFGVersion() at compile
	hash    uint64 // bcFingerprint(f, layout) at compile
}

// bcFingerprint hashes everything compiled code depends on beyond the
// CFG shape: register and slot counts, instruction payloads, resolved
// global addresses, and successor wiring. globalBase must be the
// executing machine's layout — it is deterministic per program, so one
// function's fingerprint is stable across machines. FNV-1a over folded
// words.
func bcFingerprint(f *ir.Function, globalBase map[*ir.Global]int64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mixStr := func(s string) {
		mix(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			mix(uint64(s[i]))
		}
	}
	mixVal := func(v ir.Value) {
		if v.IsConst() {
			mix(1)
			mix(uint64(v.Const()))
		} else {
			mix(2)
			mix(uint64(v.Reg()))
		}
	}
	mix(uint64(f.NumRegs))
	mix(uint64(len(f.Params)))
	for _, p := range f.Params {
		mix(uint64(p))
	}
	mix(uint64(len(f.Slots)))
	for _, s := range f.Slots {
		mix(uint64(s.Size))
	}
	mix(uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		mix(uint64(b.ID))
		mix(uint64(len(b.Preds)))
		for _, p := range b.Preds {
			mix(uint64(p.ID))
		}
		mix(uint64(len(b.Succs)))
		for _, s := range b.Succs {
			mix(uint64(s.ID))
		}
		mix(uint64(len(b.Instrs)))
		for _, in := range b.Instrs {
			mix(uint64(in.Op))
			mix(uint64(in.Dst))
			mix(uint64(len(in.Args)))
			for _, a := range in.Args {
				mixVal(a)
			}
			if in.Op == ir.OpCall {
				mixStr(in.Callee)
			}
			switch in.Loc.Kind {
			case ir.LocGlobal:
				mix(3)
				mix(uint64(globalBase[in.Loc.Global]))
				mix(uint64(in.Loc.Offset))
				mix(uint64(in.Loc.Size()))
			case ir.LocSlot:
				mix(4)
				mix(uint64(in.Loc.Slot.Index))
				mix(uint64(in.Loc.Offset))
				mix(uint64(in.Loc.Size()))
			}
		}
	}
	return h
}

// bcValid reports whether compiled code is still current for f under
// the machine's global layout.
func (c *bcCode) bcValid(f *ir.Function, globalBase map[*ir.Global]int64) bool {
	return c != nil &&
		c.version == f.CFGVersion() &&
		int(c.numRegs) == f.NumRegs &&
		c.slotCount == len(f.Slots) &&
		c.hash == bcFingerprint(f, globalBase)
}

// compiler carries one compilation's state.
type compiler struct {
	f    *ir.Function
	code *bcCode

	constIdx map[int64]int32
	pcOf     []int32 // post-phi pc per BlockID
}

// emitTrap emits a bcTrap carrying err via the trap side table.
func (c *compiler) emitTrap(err error) {
	c.emit(bcInstr{op: bcTrap, aux: int32(len(c.code.traps))})
	c.code.traps = append(c.code.traps, err)
}

// srcIdx interns an IR instruction into the cold source table and
// returns its index.
func (c *compiler) srcIdx(in *ir.Instr) int32 {
	c.code.srcs = append(c.code.srcs, in)
	return int32(len(c.code.srcs) - 1)
}

// compileBytecode flattens f. Compilation never fails: malformed IR
// compiles to bcTrap instructions that reproduce the legacy
// interpreter's errors at the same execution points.
func compileBytecode(f *ir.Function, globalBase map[*ir.Global]int64) *bcCode {
	_, fsize := f.FrameLayout()
	c := &compiler{
		f: f,
		code: &bcCode{
			fname:     f.Name,
			numRegs:   int32(f.NumRegs),
			slotCount: len(f.Slots),
			frameSize: fsize,
			version:   f.CFGVersion(),
			hash:      bcFingerprint(f, globalBase),
			blockOps:  make([][]opCount, f.BlockIDBound()),
		},
		constIdx: make(map[int64]int32),
		pcOf:     make([]int32, f.BlockIDBound()),
	}

	// Pass 1: emit every block body (post-phi prefix) and record the
	// blocks' entry pcs, phi step counts, and static opcode tallies.
	// Edge indexes are assigned per block in f.Blocks order, successor
	// order within a block, matching the append order of pass 2.
	phiSteps := make([]int64, f.BlockIDBound())
	edgeBase := int32(0)
	for _, b := range f.Blocks {
		ops := make(map[ir.Op]int64, 8)
		idx := 0
		for idx < len(b.Instrs) && b.Instrs[idx].Op.IsPhi() {
			ops[b.Instrs[idx].Op]++
			phiSteps[b.ID]++
			idx++
		}
		c.pcOf[b.ID] = int32(len(c.code.ins))
		for i := idx; i < len(b.Instrs); i++ {
			ops[b.Instrs[i].Op]++
		}
		c.emitBody(b, idx, edgeBase, globalBase)
		if b.Term() == nil {
			// The legacy interpreter spins forever re-entering an
			// unterminated block; the verifier rejects such IR before it
			// ever runs. Trap deterministically instead.
			c.emitTrap(fmt.Errorf("interp: block %v has no terminator in %s", b, f.Name))
		}
		tally := make([]opCount, 0, len(ops))
		for _, op := range opOrder {
			if n := ops[op]; n != 0 {
				tally = append(tally, opCount{op: op, n: n})
			}
		}
		c.code.blockOps[b.ID] = tally
		edgeBase += int32(len(b.Succs))
	}

	// Pass 2: lower every CFG edge's phi row to a copy sequence now that
	// all targets have pcs.
	for _, b := range f.Blocks {
		for si, s := range b.Succs {
			c.code.edges = append(c.code.edges, c.lowerEdge(b, s, si, phiSteps))
		}
	}

	entry := f.Entry()
	c.code.entryPC = c.pcOf[entry.ID]
	c.code.entryID = int32(entry.ID)
	c.code.entryPhiSteps = phiSteps[entry.ID]
	for _, in := range entry.Phis() {
		if in.Op == ir.OpPhi {
			c.code.entryTrap = fmt.Errorf("interp: phi in %v entered from non-predecessor", entry)
			break
		}
	}

	// The constant pool is final only now (edge lowering interns phi
	// constants), so the scratch slot index is final only now: patch the
	// sentinel in every copy sequence.
	c.code.frameLen = c.code.numRegs + int32(len(c.code.consts)) + 1
	scratch := c.code.frameLen - 1
	for i := range c.code.edges {
		cps := c.code.edges[i].copies
		for j := range cps {
			if cps[j].dst == scratchSentinel {
				cps[j].dst = scratch
			}
			if cps[j].src == scratchSentinel {
				cps[j].src = scratch
			}
		}
	}
	return c.code
}

// opOrder fixes a deterministic tally order (map iteration is not).
var opOrder = func() []ir.Op {
	ops := make([]ir.Op, ir.NumOps)
	for i := range ops {
		ops[i] = ir.Op(i)
	}
	return ops
}()

func (c *compiler) emit(in bcInstr) {
	c.code.ins = append(c.code.ins, in)
}

// valIdx returns the frame index of a value operand, interning
// constants into the pool.
func (c *compiler) valIdx(v ir.Value) int32 {
	if !v.IsConst() {
		return int32(v.Reg())
	}
	k := v.Const()
	if i, ok := c.constIdx[k]; ok {
		return i
	}
	i := c.code.numRegs + int32(len(c.code.consts))
	c.code.consts = append(c.code.consts, k)
	c.constIdx[k] = i
	return i
}

// scratchSentinel marks the phi-cycle scratch slot in copy sequences
// while the constant pool (and so the final frame length) is still
// growing; compileBytecode patches it to frameLen-1 once the pool is
// final. Frames always reserve that one trailing slot.
const scratchSentinel = int32(-2)

// resolveAddr compiles a memory location. ok=false means the location
// cannot be resolved (unallocated slot) and the caller must trap with
// err.
func (c *compiler) resolveAddr(loc ir.MemLoc, globalBase map[*ir.Global]int64, offs []int64) (addr int64, rel bool, err error) {
	switch loc.Kind {
	case ir.LocGlobal:
		// A global missing from the program maps to base 0, making the
		// final address fail the executor's bounds check exactly like
		// the legacy path's zero map lookup.
		return globalBase[loc.Global] + int64(loc.Offset), false, nil
	case ir.LocSlot:
		if loc.Slot.Index >= len(offs) {
			return 0, false, fmt.Errorf("interp: slot %s not allocated", loc.Slot.Name)
		}
		return offs[loc.Slot.Index] + int64(loc.Offset), true, nil
	}
	return 0, false, fmt.Errorf("interp: address of %v", loc)
}

// fusedStoreOp maps a fusible arithmetic producer to its store-fused
// form, or bcInvalid. Div and Rem are excluded: they fault between the
// pair's two steps.
func fusedStoreOp(op ir.Op) bcOp {
	switch op {
	case ir.OpAdd:
		return bcAddSt
	case ir.OpSub:
		return bcSubSt
	case ir.OpMul:
		return bcMulSt
	case ir.OpAnd:
		return bcAndSt
	case ir.OpOr:
		return bcOrSt
	case ir.OpXor:
		return bcXorSt
	case ir.OpShl:
		return bcShlSt
	case ir.OpShr:
		return bcShrSt
	}
	return bcInvalid
}

// staticStore reports whether a store's cell is fully resolved at
// compile time — a scalar store, or an indexed store with a constant
// in-bounds index — returning the resolved address and the stored
// value's frame index.
func (c *compiler) staticStore(in *ir.Instr, globalBase map[*ir.Global]int64, offs []int64) (addr int64, rel bool, val int32, ok bool) {
	switch in.Op {
	case ir.OpStore:
		a, r, err := c.resolveAddr(in.Loc, globalBase, offs)
		if err != nil {
			return 0, false, 0, false
		}
		return a, r, c.valIdx(in.Args[0]), true
	case ir.OpStoreIdx:
		ix := in.Args[0]
		if !ix.IsConst() || ix.Const() < 0 || ix.Const() >= int64(in.Loc.Size()) {
			return 0, false, 0, false
		}
		a, r, err := c.resolveAddr(in.Loc, globalBase, offs)
		if err != nil {
			return 0, false, 0, false
		}
		return a + ix.Const(), r, c.valIdx(in.Args[1]), true
	}
	return 0, false, 0, false
}

// binOpOf maps a binary/compare ir.Op to its bytecode opcode, or
// bcInvalid.
func binOpOf(op ir.Op) bcOp {
	switch op {
	case ir.OpAdd:
		return bcAdd
	case ir.OpSub:
		return bcSub
	case ir.OpMul:
		return bcMul
	case ir.OpDiv:
		return bcDiv
	case ir.OpRem:
		return bcRem
	case ir.OpAnd:
		return bcAnd
	case ir.OpOr:
		return bcOr
	case ir.OpXor:
		return bcXor
	case ir.OpShl:
		return bcShl
	case ir.OpShr:
		return bcShr
	case ir.OpEq:
		return bcEq
	case ir.OpNe:
		return bcNe
	case ir.OpLt:
		return bcLt
	case ir.OpLe:
		return bcLe
	case ir.OpGt:
		return bcGt
	case ir.OpGe:
		return bcGe
	}
	return bcInvalid
}

// fusedLoadOp maps a fusible arithmetic consumer to its load-fused
// opcode, or bcInvalid. Div and Rem are excluded: their zero-divisor
// fault would complicate the fused limit/fault ordering for no gain.
func fusedLoadOp(op ir.Op) bcOp {
	switch op {
	case ir.OpAdd:
		return bcLoadAdd
	case ir.OpSub:
		return bcLoadSub
	case ir.OpMul:
		return bcLoadMul
	case ir.OpAnd:
		return bcLoadAnd
	case ir.OpOr:
		return bcLoadOr
	case ir.OpXor:
		return bcLoadXor
	case ir.OpShl:
		return bcLoadShl
	case ir.OpShr:
		return bcLoadShr
	}
	return bcInvalid
}

// fusedCmpBr maps a comparison to its branch-fused opcode, or
// bcInvalid.
func fusedCmpBr(op ir.Op) bcOp {
	switch op {
	case ir.OpEq:
		return bcEqBr
	case ir.OpNe:
		return bcNeBr
	case ir.OpLt:
		return bcLtBr
	case ir.OpLe:
		return bcLeBr
	case ir.OpGt:
		return bcGtBr
	case ir.OpGe:
		return bcGeBr
	}
	return bcInvalid
}

// emitBody compiles the non-phi instructions of b, fusing adjacent
// load+arith and cmp+branch pairs. edgeBase is the index of b's first
// outgoing edge in the final edge array.
func (c *compiler) emitBody(b *ir.Block, start int, edgeBase int32, globalBase map[*ir.Global]int64) {
	f := c.f
	offs, _ := f.FrameLayout()

	for i := start; i < len(b.Instrs); i++ {
		in := b.Instrs[i]
		switch in.Op {
		case ir.OpCopy:
			c.emit(bcInstr{op: bcCopy, dst: int32(in.Dst), a: c.valIdx(in.Args[0])})
		case ir.OpNeg:
			c.emit(bcInstr{op: bcNeg, dst: int32(in.Dst), a: c.valIdx(in.Args[0])})
		case ir.OpNot:
			c.emit(bcInstr{op: bcNot, dst: int32(in.Dst), a: c.valIdx(in.Args[0])})

		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
			ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
			ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			// cmp + br fusion: the branch condition is this comparison's
			// destination and the branch immediately follows.
			if in.Op.IsCompare() && i+1 < len(b.Instrs) {
				next := b.Instrs[i+1]
				if next.Op == ir.OpBr && len(next.Args) == 1 && next.Args[0].IsReg(in.Dst) {
					c.emit(bcInstr{
						op:   fusedCmpBr(in.Op),
						dst:  int32(in.Dst),
						a:    c.valIdx(in.Args[0]),
						b:    c.valIdx(in.Args[1]),
						aux:  edgeBase,
						aux2: edgeBase + 1,
					})
					i++
					continue
				}
			}
			// arith + store fusion: the next instruction stores to a
			// statically resolved cell (often this result's only use).
			if fop := fusedStoreOp(in.Op); fop != bcInvalid && i+1 < len(b.Instrs) {
				next := b.Instrs[i+1]
				if next.Op == ir.OpStore || next.Op == ir.OpStoreIdx {
					if saddr, srel, sval, ok := c.staticStore(next, globalBase, offs); ok {
						c.emit(bcInstr{
							op:   fop,
							dst:  int32(in.Dst),
							dst2: sval,
							a:    c.valIdx(in.Args[0]),
							b:    c.valIdx(in.Args[1]),
							addr: saddr,
							rel:  srel,
						})
						i++
						continue
					}
				}
			}
			c.emit(bcInstr{
				op:  binOpOf(in.Op),
				dst: int32(in.Dst),
				a:   c.valIdx(in.Args[0]),
				b:   c.valIdx(in.Args[1]),
			})

		case ir.OpLoad:
			addr, rel, err := c.resolveAddr(in.Loc, globalBase, offs)
			if err != nil {
				c.emitTrap(err)
				continue
			}
			// load + arith fusion: write the load destination, then run
			// the consumer; operands resolve through the frame, so the
			// loaded value is visible wherever the pair referenced it.
			if i+1 < len(b.Instrs) {
				next := b.Instrs[i+1]
				if fop := fusedLoadOp(next.Op); fop != bcInvalid && next.HasDst() && len(next.Args) == 2 {
					c.emit(bcInstr{
						op:   fop,
						dst:  int32(next.Dst),
						dst2: int32(in.Dst),
						a:    c.valIdx(next.Args[0]),
						b:    c.valIdx(next.Args[1]),
						addr: addr,
						rel:  rel,
					})
					i++
					continue
				}
			}
			c.emit(bcInstr{op: bcLoad, dst: int32(in.Dst), addr: addr, rel: rel})
		case ir.OpStore:
			addr, rel, err := c.resolveAddr(in.Loc, globalBase, offs)
			if err != nil {
				c.emitTrap(err)
				continue
			}
			c.emit(bcInstr{op: bcStore, a: c.valIdx(in.Args[0]), addr: addr, rel: rel})
		case ir.OpAddr:
			addr, rel, err := c.resolveAddr(in.Loc, globalBase, offs)
			if err != nil {
				c.emitTrap(err)
				continue
			}
			c.emit(bcInstr{op: bcAddr, dst: int32(in.Dst), addr: addr, rel: rel})
		case ir.OpLoadPtr:
			c.emit(bcInstr{op: bcLoadPtr, dst: int32(in.Dst), a: c.valIdx(in.Args[0])})
		case ir.OpStorePtr:
			c.emit(bcInstr{op: bcStorePtr, a: c.valIdx(in.Args[0]), b: c.valIdx(in.Args[1])})
		case ir.OpLoadIdx:
			addr, rel, err := c.resolveAddr(in.Loc, globalBase, offs)
			if err != nil {
				c.emitTrap(err)
				continue
			}
			// A constant in-bounds index folds into the address: the
			// bounds check is decided here, and the cell is a statically
			// laid-out slot or global, so the residual address check can
			// never fire — the plain-load form is observationally exact.
			if ix := in.Args[0]; ix.IsConst() && ix.Const() >= 0 && ix.Const() < int64(in.Loc.Size()) {
				addr += ix.Const()
				if i+1 < len(b.Instrs) {
					next := b.Instrs[i+1]
					if fop := fusedLoadOp(next.Op); fop != bcInvalid && next.HasDst() && len(next.Args) == 2 {
						c.emit(bcInstr{
							op:   fop,
							dst:  int32(next.Dst),
							dst2: int32(in.Dst),
							a:    c.valIdx(next.Args[0]),
							b:    c.valIdx(next.Args[1]),
							addr: addr,
							rel:  rel,
						})
						i++
						continue
					}
				}
				c.emit(bcInstr{op: bcLoad, dst: int32(in.Dst), addr: addr, rel: rel})
				continue
			}
			c.emit(bcInstr{
				op: bcLoadIdx, dst: int32(in.Dst), a: c.valIdx(in.Args[0]),
				aux: c.srcIdx(in), addr: addr, rel: rel, size: int64(in.Loc.Size()),
			})
		case ir.OpStoreIdx:
			addr, rel, err := c.resolveAddr(in.Loc, globalBase, offs)
			if err != nil {
				c.emitTrap(err)
				continue
			}
			if ix := in.Args[0]; ix.IsConst() && ix.Const() >= 0 && ix.Const() < int64(in.Loc.Size()) {
				c.emit(bcInstr{op: bcStore, a: c.valIdx(in.Args[1]), addr: addr + ix.Const(), rel: rel})
				continue
			}
			c.emit(bcInstr{
				op: bcStoreIdx, a: c.valIdx(in.Args[0]), b: c.valIdx(in.Args[1]),
				aux: c.srcIdx(in), addr: addr, rel: rel, size: int64(in.Loc.Size()),
			})

		case ir.OpCall:
			off := int32(len(c.code.argPool))
			for _, a := range in.Args {
				c.code.argPool = append(c.code.argPool, c.valIdx(a))
			}
			dst := int32(ir.NoReg)
			if in.HasDst() {
				dst = int32(in.Dst)
			}
			c.code.callNames = append(c.code.callNames, in.Callee)
			c.emit(bcInstr{op: bcCall, dst: dst, aux: int32(c.code.nCalls), a: off, b: int32(len(in.Args))})
			c.code.nCalls++
		case ir.OpPrint:
			c.emit(bcInstr{op: bcPrint, a: c.valIdx(in.Args[0])})
		case ir.OpDummyLoad, ir.OpMemPhi:
			// OpMemPhi outside the phi prefix is unreachable in verified
			// IR; legacy treats both as counted no-ops.
			c.emit(bcInstr{op: bcNop})

		case ir.OpJmp:
			c.emit(bcInstr{op: bcJmp, aux: edgeBase})
		case ir.OpBr:
			c.emit(bcInstr{op: bcBr, a: c.valIdx(in.Args[0]), aux: edgeBase, aux2: edgeBase + 1})
		case ir.OpRet:
			if len(in.Args) > 0 {
				c.emit(bcInstr{op: bcRet, a: c.valIdx(in.Args[0])})
			} else {
				c.emit(bcInstr{op: bcRetVoid})
			}

		default:
			// Matches the legacy switch's default arm (a phi past the
			// prefix lands here too).
			c.emitTrap(fmt.Errorf("interp: unhandled opcode %s", in.Op))
		}
	}
}

// lowerEdge builds the edge descriptor for b -> s at successor index
// si. The phi row follows the legacy semantics exactly: the
// predecessor index is the FIRST occurrence of b in s.Preds (duplicate
// edges share one row), and all phi reads happen before any phi write
// (sequentialized with the scratch slot when the moves form a cycle).
func (c *compiler) lowerEdge(b, s *ir.Block, si int, phiSteps []int64) bcEdge {
	e := bcEdge{
		target:   c.pcOf[s.ID],
		blockID:  int32(s.ID),
		fromID:   int32(b.ID),
		succIdx:  int32(si),
		phiSteps: phiSteps[s.ID],
	}
	pi := s.PredIndex(b)
	if pi < 0 {
		// Successor lists b but b is missing from Preds: broken CFG
		// wiring. Legacy fails at the first register phi; an edge into a
		// phi-free block tolerates it, and so does this path (no copies
		// to build).
		for _, in := range s.Phis() {
			if in.Op == ir.OpPhi {
				e.trap = fmt.Errorf("interp: phi in %v entered from non-predecessor", s)
				return e
			}
		}
		return e
	}
	var moves []bcMove
	for _, in := range s.Phis() {
		if in.Op != ir.OpPhi {
			continue
		}
		moves = append(moves, bcMove{dst: int32(in.Dst), src: c.valIdx(in.Args[pi])})
	}
	e.copies = sequentialize(moves)
	return e
}

// sequentialize orders a parallel move set so plain sequential
// execution preserves the all-reads-first semantics. Cycles are broken
// through the frame's scratch slot (index frameLen-1, emitted as
// scratchSentinel and patched by the executor's frame setup — one
// scratch suffices because cycles are broken one at a time).
func sequentialize(moves []bcMove) []bcMove {
	out := make([]bcMove, 0, len(moves))
	// Self-moves are no-ops.
	pending := moves[:0]
	for _, mv := range moves {
		if mv.dst != mv.src {
			pending = append(pending, mv)
		}
	}
	for len(pending) > 0 {
		emitted := false
		for i, mv := range pending {
			needed := false
			for j, other := range pending {
				if j != i && other.src == mv.dst {
					needed = true
					break
				}
			}
			if !needed {
				out = append(out, mv)
				pending = append(pending[:i], pending[i+1:]...)
				emitted = true
				break
			}
		}
		if !emitted {
			// Every pending destination is still needed as a source: a
			// cycle. Park one value in the scratch slot and redirect its
			// readers there.
			mv0 := pending[0]
			out = append(out, bcMove{dst: scratchSentinel, src: mv0.dst})
			for j := range pending {
				if pending[j].src == mv0.dst {
					pending[j].src = scratchSentinel
				}
			}
		}
	}
	return out
}

// Package interp executes IR programs directly. The interpreter serves
// three roles in the reproduction:
//
//   - it collects the block and edge execution profile that drives the
//     promotion algorithm's profitability decisions (standing in for the
//     paper's profile feedback runs);
//   - it measures the dynamic cost of memory operations — the
//     frequency-weighted operation counts reported in the paper's
//     Table 2;
//   - it provides semantic ground truth: a transformed program must
//     print the same output and leave the same global memory image as
//     the original, which the test suites check relentlessly.
//
// Memory is a flat int64 arena: address 0 is the null guard, globals
// occupy a fixed prefix, and stack slots are bump-allocated per call
// frame. Pointers are ordinary int64 addresses into the arena.
//
// The execution loop keeps all per-step accounting dense: opcode counts
// live in a flat array indexed by ir.Op, profile collection increments
// []int64 block and edge counters indexed by ir.BlockID (flushed into
// profile.Profile once per run), stack slots resolve through the
// function's precomputed FrameLayout offsets, and register frames and
// call argument buffers are pooled across activations. Options.Legacy
// selects the original map-based, allocation-per-call path, kept as the
// measured baseline for the hot-path benchmarks.
package interp

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ir"
	"repro/internal/profile"
)

// ErrStepLimit and ErrTimeout classify the two resource-bound failures
// a run can hit. They are wrapped (not returned bare) so messages keep
// their detail; match with errors.Is. The promotion service uses them
// to map an exhausted request to a timeout response instead of a
// generic server error.
var (
	// ErrStepLimit means the run executed more than Options.MaxSteps
	// instructions.
	ErrStepLimit = errors.New("interp: step limit exceeded")
	// ErrTimeout means the run exceeded Options.Timeout of wall-clock
	// time.
	ErrTimeout = errors.New("interp: wall-clock timeout exceeded")
)

// Options configures a run.
type Options struct {
	// MaxSteps bounds the number of executed instructions (0 means the
	// default of 200 million).
	MaxSteps int64
	// MaxDepth bounds call nesting (0 means 4096).
	MaxDepth int
	// MaxOutput bounds the number of printed values retained (0 means
	// one million; execution continues but further output is dropped).
	MaxOutput int
	// Timeout bounds the wall-clock duration of the run (0 means no
	// limit). The clock is checked every few thousand steps, so the
	// overrun is bounded and the common case costs nothing.
	Timeout time.Duration
	// CollectProfile enables block/edge profile recording.
	CollectProfile bool
	// Legacy selects the pre-optimization interpretation path: map
	// lookups per executed block for profile collection, a map increment
	// per instruction for opcode counts, and fresh register/slot
	// allocations per call. Results are identical to the default fast
	// path; the benchmark harness (rpbench -legacy) uses it as the
	// before side of the hot-path comparison. Legacy wins over Bytecode
	// when both are set.
	Legacy bool
	// Bytecode selects the compiled execution path: each function is
	// flattened once into linear bytecode (fused opcode pairs, pooled
	// constants, precompiled addressing) and runs on a dense dispatch
	// loop over arena-allocated frames. Results are identical to the
	// other two paths.
	Bytecode bool
	// Code optionally supplies a cross-run cache for compiled bytecode
	// (internal/analysis.Cache implements it). Entries are revalidated
	// against the function's CFG version and an instruction-stream
	// fingerprint on every run, so stale code is recompiled, never
	// executed. Nil means each run compiles privately.
	Code CodeCache
}

// CodeCache stores compiled bytecode across runs, keyed per function.
// The stored value is opaque to implementors; interp validates it
// before use and republishes after recompiling.
type CodeCache interface {
	// CompiledCode returns the cached unit for f, if any.
	CompiledCode(f *ir.Function) (any, bool)
	// PutCompiledCode stores the unit just compiled for f.
	PutCompiledCode(f *ir.Function, code any)
}

// Result is the outcome of a run.
type Result struct {
	// Output holds the values printed by the program, in order.
	Output []int64
	// ReturnValue is main's return value (0 for void main).
	ReturnValue int64
	// OpCounts counts executed instructions by opcode.
	OpCounts map[ir.Op]int64
	// Globals is the final memory image of every global, by name.
	Globals map[string][]int64
	// Profile holds measured block/edge frequencies when requested.
	Profile *profile.Profile
	// Steps is the total number of instructions executed.
	Steps int64
}

// DynLoads returns the number of executed singleton (scalar) loads, the
// paper's dynamic load cost.
func (r *Result) DynLoads() int64 { return r.OpCounts[ir.OpLoad] }

// DynStores returns the number of executed singleton stores.
func (r *Result) DynStores() int64 { return r.OpCounts[ir.OpStore] }

// DynMemOps returns loads plus stores.
func (r *Result) DynMemOps() int64 { return r.DynLoads() + r.DynStores() }

// Run executes prog starting at main.
func Run(prog *ir.Program, opts Options) (*Result, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 200_000_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 4096
	}
	if opts.MaxOutput == 0 {
		opts.MaxOutput = 1_000_000
	}
	main := prog.Func("main")
	if main == nil {
		return nil, fmt.Errorf("interp: program has no main")
	}

	m := &machine{
		prog:   prog,
		opts:   opts,
		result: &Result{OpCounts: make(map[ir.Op]int64)},
	}
	if opts.Timeout > 0 {
		m.deadline = time.Now().Add(opts.Timeout)
	}
	bytecode := opts.Bytecode && !opts.Legacy
	if opts.CollectProfile {
		m.result.Profile = profile.NewProfile()
		if !opts.Legacy {
			m.counters = make(map[*ir.Function]*funcCounters)
		}
	}
	if bytecode && m.counters == nil {
		// The bytecode path reconstructs opcode counts from per-block
		// execution counters, so they are maintained even without
		// profile collection.
		m.counters = make(map[*ir.Function]*funcCounters)
	}
	if !opts.Legacy {
		m.opCounts = make([]int64, ir.NumOps)
	}
	m.layoutGlobals()

	args := make([]int64, len(main.Params))
	var ret int64
	var err error
	if bytecode {
		m.codes = make([]mcodeEntry, 0, len(prog.Funcs))
		ret, err = m.callBC(main, args, 0)
	} else {
		ret, err = m.call(main, args, 0)
	}
	if err != nil {
		return nil, err
	}
	if bytecode {
		m.flushBytecode()
	}
	if !opts.Legacy {
		m.flushCounts()
	}
	m.result.ReturnValue = ret
	m.result.Globals = make(map[string][]int64, len(prog.Globals))
	for _, g := range prog.Globals {
		base := m.globalBase[g]
		img := make([]int64, g.Size)
		copy(img, m.mem[base:base+int64(g.Size)])
		m.result.Globals[g.Name] = img
	}
	return m.result, nil
}

type machine struct {
	prog   *ir.Program
	opts   Options
	result *Result

	mem        []int64
	globalBase map[*ir.Global]int64
	sp         int64     // next free stack address
	deadline   time.Time // wall-clock bound; zero means none

	// Fast-path accounting (nil in legacy mode): dense opcode counts,
	// per-function dense block/edge counters, a pool of register frames,
	// and a stack-disciplined buffer for call arguments. All are flushed
	// or recycled, never observable in Result except through the final
	// maps they populate.
	opCounts []int64
	counters map[*ir.Function]*funcCounters
	regPool  [][]int64
	argStack []int64

	// Bytecode-path state: this run's compiled-code table and the
	// register-frame arena (frames are stack-disciplined slices of
	// regArena; see execBC).
	codes    []mcodeEntry
	regArena []int64
	regTop   int
}

// funcCounters holds one function's dense profile counters: executions
// per block, and traversals per (block, successor index) edge.
type funcCounters struct {
	blocks []int64
	edges  [][]int64
}

// timeoutCheckInterval is how many steps pass between wall-clock
// checks: frequent enough that overruns stay in the low milliseconds,
// rare enough that time.Now stays off the hot path.
const timeoutCheckInterval = 1 << 14

// checkDeadline enforces the wall-clock bound; called every
// timeoutCheckInterval steps.
func (m *machine) checkDeadline() error {
	if !m.deadline.IsZero() && time.Now().After(m.deadline) {
		return fmt.Errorf("%w: %v after %d steps", ErrTimeout, m.opts.Timeout, m.result.Steps)
	}
	return nil
}

func (m *machine) layoutGlobals() {
	m.globalBase = make(map[*ir.Global]int64, len(m.prog.Globals))
	addr := int64(1) // 0 is the null guard
	for _, g := range m.prog.Globals {
		m.globalBase[g] = addr
		addr += int64(g.Size)
	}
	m.mem = make([]int64, addr)
	for _, g := range m.prog.Globals {
		base := m.globalBase[g]
		for i, v := range g.Init {
			if i < g.Size {
				m.mem[base+int64(i)] = v
			}
		}
	}
	m.sp = addr
}

// ensure grows the arena so addresses [0, n) exist.
func (m *machine) ensure(n int64) {
	for int64(len(m.mem)) < n {
		m.mem = append(m.mem, make([]int64, n-int64(len(m.mem)))...)
	}
}

// countersFor returns f's dense profile counters, building them on the
// first call of f. The per-block edge slices share one backing array.
func (m *machine) countersFor(f *ir.Function) *funcCounters {
	fc := m.counters[f]
	if fc == nil {
		bound := int(f.BlockIDBound())
		fc = &funcCounters{
			blocks: make([]int64, bound),
			edges:  make([][]int64, bound),
		}
		total := 0
		for _, b := range f.Blocks {
			total += len(b.Succs)
		}
		backing := make([]int64, total)
		for _, b := range f.Blocks {
			n := len(b.Succs)
			fc.edges[b.ID], backing = backing[:n:n], backing[n:]
		}
		m.counters[f] = fc
	}
	return fc
}

// flushCounts moves the dense opcode and profile counters into the
// map-shaped Result fields, once per run.
func (m *machine) flushCounts() {
	for op, n := range m.opCounts {
		if n != 0 {
			m.result.OpCounts[ir.Op(op)] += n
		}
	}
	if m.result.Profile == nil {
		return
	}
	for f, fc := range m.counters {
		fp := m.result.Profile.ForFunc(f.Name)
		for _, b := range f.Blocks {
			if n := fc.blocks[b.ID]; n != 0 {
				fp.Block[b.ID] += float64(n)
			}
			for i, n := range fc.edges[b.ID] {
				if n != 0 {
					fp.Edge[profile.Edge{From: b.ID, To: b.Succs[i].ID}] += float64(n)
				}
			}
		}
	}
}

// maxPooledFrames bounds the register-frame pool. The pool's high-water
// mark tracks the deepest call chain of the run; without a cap a single
// deep recursion leaves thousands of frames pinned for the rest of the
// run.
const maxPooledFrames = 64

// acquireRegs returns a zeroed register frame of length n, reusing a
// pooled one when available. An under-capacity frame at the top of the
// pool stays pooled (it can still serve a later, smaller activation)
// instead of being popped and lost to the allocator.
func (m *machine) acquireRegs(n int) []int64 {
	if k := len(m.regPool); k > 0 && cap(m.regPool[k-1]) >= n {
		s := m.regPool[k-1][:n]
		m.regPool = m.regPool[:k-1]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]int64, n)
}

// releaseRegs returns a frame to the pool, dropping it once the pool is
// full. A frame larger than the pooled top replaces it (keeping the
// biggest backing arrays raises the acquire hit rate under mixed frame
// sizes).
func (m *machine) releaseRegs(s []int64) {
	if len(m.regPool) < maxPooledFrames {
		m.regPool = append(m.regPool, s)
		return
	}
	if k := len(m.regPool); cap(m.regPool[k-1]) < cap(s) {
		m.regPool[k-1] = s
	}
}

// addrOf resolves a memory location to an arena address. Exactly one of
// slotBase (legacy path) and slotOffs (fast path, with frameBase) is in
// effect for slot locations.
func (m *machine) addrOf(loc ir.MemLoc, slotBase map[*ir.Slot]int64, frameBase int64, slotOffs []int64) (int64, error) {
	switch loc.Kind {
	case ir.LocGlobal:
		return m.globalBase[loc.Global] + int64(loc.Offset), nil
	case ir.LocSlot:
		if slotBase != nil {
			base, ok := slotBase[loc.Slot]
			if !ok {
				return 0, fmt.Errorf("interp: slot %s not allocated", loc.Slot.Name)
			}
			return base + int64(loc.Offset), nil
		}
		if loc.Slot.Index >= len(slotOffs) {
			return 0, fmt.Errorf("interp: slot %s not allocated", loc.Slot.Name)
		}
		return frameBase + slotOffs[loc.Slot.Index] + int64(loc.Offset), nil
	}
	return 0, fmt.Errorf("interp: address of %v", loc)
}

func (m *machine) loadMem(addr int64, what, fn string) (int64, error) {
	if addr <= 0 || addr >= int64(len(m.mem)) {
		return 0, fmt.Errorf("interp: %s: invalid address %d in %s", what, addr, fn)
	}
	return m.mem[addr], nil
}

func (m *machine) storeMem(addr, v int64, what, fn string) error {
	if addr <= 0 || addr >= int64(len(m.mem)) {
		return fmt.Errorf("interp: %s: invalid address %d in %s", what, addr, fn)
	}
	m.mem[addr] = v
	return nil
}

// eval resolves a value operand against the register frame.
func eval(regs []int64, v ir.Value) int64 {
	if v.IsConst() {
		return v.Const()
	}
	return regs[v.Reg()]
}

func (m *machine) call(f *ir.Function, args []int64, depth int) (int64, error) {
	if depth > m.opts.MaxDepth {
		return 0, fmt.Errorf("interp: call depth exceeds %d in %s", m.opts.MaxDepth, f.Name)
	}
	legacy := m.opts.Legacy

	var regs []int64
	if legacy {
		regs = make([]int64, f.NumRegs)
	} else {
		regs = m.acquireRegs(f.NumRegs)
	}
	for i, p := range f.Params {
		if i < len(args) {
			regs[p] = args[i]
		}
	}

	// Allocate and zero stack slots for this activation: a per-slot map
	// in legacy mode, one contiguous frame at precomputed offsets
	// otherwise.
	savedSP := m.sp
	var slotBase map[*ir.Slot]int64
	var frameBase int64
	var slotOffs []int64
	if legacy {
		slotBase = make(map[*ir.Slot]int64, len(f.Slots))
		for _, s := range f.Slots {
			slotBase[s] = m.sp
			m.ensure(m.sp + int64(s.Size))
			for i := int64(0); i < int64(s.Size); i++ {
				m.mem[m.sp+i] = 0
			}
			m.sp += int64(s.Size)
		}
	} else {
		offs, size := f.FrameLayout()
		slotOffs = offs
		frameBase = m.sp
		m.ensure(m.sp + size)
		z := m.mem[frameBase : frameBase+size]
		for i := range z {
			z[i] = 0
		}
		m.sp += size
	}
	defer func() {
		m.sp = savedSP
		if !legacy {
			m.releaseRegs(regs)
		}
	}()

	// Profile collection state: the legacy path updates the profile maps
	// per executed block; the fast path bumps dense counters and flushes
	// at end of run.
	var fp *profile.FuncProfile
	var bc []int64
	var ec [][]int64
	if m.result.Profile != nil {
		if legacy {
			fp = m.result.Profile.ForFunc(f.Name)
		} else {
			fc := m.countersFor(f)
			bc, ec = fc.blocks, fc.edges
		}
	}

	blk := f.Entry()
	var prev *ir.Block
	var phiDsts []ir.RegID
	var phiVals []int64
	for {
		if fp != nil {
			fp.AddBlock(blk, 1)
			if prev != nil {
				fp.AddEdge(prev, blk, 1)
			}
		} else if bc != nil {
			bc[blk.ID]++
		}

		// Phi prefix: evaluate register phis in parallel using the
		// incoming edge. (Interpreting SSA form directly is supported
		// for tests; memory phis are no-ops at runtime.)
		idx := 0
		phiDsts, phiVals = phiDsts[:0], phiVals[:0]
		for idx < len(blk.Instrs) && blk.Instrs[idx].Op.IsPhi() {
			in := blk.Instrs[idx]
			m.result.Steps++
			if legacy {
				m.result.OpCounts[in.Op]++
			} else {
				m.opCounts[in.Op]++
			}
			if in.Op == ir.OpPhi {
				pi := blk.PredIndex(prev)
				if pi < 0 {
					return 0, fmt.Errorf("interp: phi in %v entered from non-predecessor", blk)
				}
				phiDsts = append(phiDsts, in.Dst)
				phiVals = append(phiVals, eval(regs, in.Args[pi]))
			}
			idx++
		}
		for i, d := range phiDsts {
			regs[d] = phiVals[i]
		}

		for ; idx < len(blk.Instrs); idx++ {
			in := blk.Instrs[idx]
			m.result.Steps++
			if m.result.Steps > m.opts.MaxSteps {
				return 0, fmt.Errorf("%w: limit %d", ErrStepLimit, m.opts.MaxSteps)
			}
			if m.result.Steps%timeoutCheckInterval == 0 {
				if err := m.checkDeadline(); err != nil {
					return 0, err
				}
			}
			if legacy {
				m.result.OpCounts[in.Op]++
			} else {
				m.opCounts[in.Op]++
			}

			switch in.Op {
			case ir.OpCopy:
				regs[in.Dst] = eval(regs, in.Args[0])
			case ir.OpAdd:
				regs[in.Dst] = eval(regs, in.Args[0]) + eval(regs, in.Args[1])
			case ir.OpSub:
				regs[in.Dst] = eval(regs, in.Args[0]) - eval(regs, in.Args[1])
			case ir.OpMul:
				regs[in.Dst] = eval(regs, in.Args[0]) * eval(regs, in.Args[1])
			case ir.OpDiv:
				d := eval(regs, in.Args[1])
				if d == 0 {
					return 0, fmt.Errorf("interp: division by zero in %s", f.Name)
				}
				regs[in.Dst] = eval(regs, in.Args[0]) / d
			case ir.OpRem:
				d := eval(regs, in.Args[1])
				if d == 0 {
					return 0, fmt.Errorf("interp: modulo by zero in %s", f.Name)
				}
				regs[in.Dst] = eval(regs, in.Args[0]) % d
			case ir.OpAnd:
				regs[in.Dst] = eval(regs, in.Args[0]) & eval(regs, in.Args[1])
			case ir.OpOr:
				regs[in.Dst] = eval(regs, in.Args[0]) | eval(regs, in.Args[1])
			case ir.OpXor:
				regs[in.Dst] = eval(regs, in.Args[0]) ^ eval(regs, in.Args[1])
			case ir.OpShl:
				regs[in.Dst] = eval(regs, in.Args[0]) << (uint64(eval(regs, in.Args[1])) & 63)
			case ir.OpShr:
				regs[in.Dst] = eval(regs, in.Args[0]) >> (uint64(eval(regs, in.Args[1])) & 63)
			case ir.OpNeg:
				regs[in.Dst] = -eval(regs, in.Args[0])
			case ir.OpNot:
				regs[in.Dst] = ^eval(regs, in.Args[0])
			case ir.OpEq:
				regs[in.Dst] = b2i(eval(regs, in.Args[0]) == eval(regs, in.Args[1]))
			case ir.OpNe:
				regs[in.Dst] = b2i(eval(regs, in.Args[0]) != eval(regs, in.Args[1]))
			case ir.OpLt:
				regs[in.Dst] = b2i(eval(regs, in.Args[0]) < eval(regs, in.Args[1]))
			case ir.OpLe:
				regs[in.Dst] = b2i(eval(regs, in.Args[0]) <= eval(regs, in.Args[1]))
			case ir.OpGt:
				regs[in.Dst] = b2i(eval(regs, in.Args[0]) > eval(regs, in.Args[1]))
			case ir.OpGe:
				regs[in.Dst] = b2i(eval(regs, in.Args[0]) >= eval(regs, in.Args[1]))

			case ir.OpLoad:
				addr, err := m.addrOf(in.Loc, slotBase, frameBase, slotOffs)
				if err != nil {
					return 0, err
				}
				v, err := m.loadMem(addr, "load", f.Name)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = v
			case ir.OpStore:
				addr, err := m.addrOf(in.Loc, slotBase, frameBase, slotOffs)
				if err != nil {
					return 0, err
				}
				if err := m.storeMem(addr, eval(regs, in.Args[0]), "store", f.Name); err != nil {
					return 0, err
				}
			case ir.OpAddr:
				addr, err := m.addrOf(in.Loc, slotBase, frameBase, slotOffs)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = addr
			case ir.OpLoadPtr:
				v, err := m.loadMem(eval(regs, in.Args[0]), "pointer load", f.Name)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = v
			case ir.OpStorePtr:
				if err := m.storeMem(eval(regs, in.Args[0]), eval(regs, in.Args[1]), "pointer store", f.Name); err != nil {
					return 0, err
				}
			case ir.OpLoadIdx:
				i := eval(regs, in.Args[0])
				if i < 0 || i >= int64(in.Loc.Size()) {
					return 0, fmt.Errorf("interp: index %d out of range for %s[%d] in %s",
						i, in.Loc.Object(), in.Loc.Size(), f.Name)
				}
				addr, err := m.addrOf(in.Loc, slotBase, frameBase, slotOffs)
				if err != nil {
					return 0, err
				}
				v, err := m.loadMem(addr+i, "indexed load", f.Name)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = v
			case ir.OpStoreIdx:
				i := eval(regs, in.Args[0])
				if i < 0 || i >= int64(in.Loc.Size()) {
					return 0, fmt.Errorf("interp: index %d out of range for %s[%d] in %s",
						i, in.Loc.Object(), in.Loc.Size(), f.Name)
				}
				addr, err := m.addrOf(in.Loc, slotBase, frameBase, slotOffs)
				if err != nil {
					return 0, err
				}
				if err := m.storeMem(addr+i, eval(regs, in.Args[1]), "indexed store", f.Name); err != nil {
					return 0, err
				}

			case ir.OpCall:
				callee := m.prog.Func(in.Callee)
				if callee == nil {
					return 0, fmt.Errorf("interp: call to unknown function %s", in.Callee)
				}
				var rv int64
				var err error
				if legacy {
					cargs := make([]int64, len(in.Args))
					for i, a := range in.Args {
						cargs[i] = eval(regs, a)
					}
					rv, err = m.call(callee, cargs, depth+1)
				} else {
					// Arguments live in a stack-disciplined shared buffer;
					// the callee copies them into its frame on entry, so
					// the slice is dead once call returns.
					base := len(m.argStack)
					for _, a := range in.Args {
						m.argStack = append(m.argStack, eval(regs, a))
					}
					rv, err = m.call(callee, m.argStack[base:], depth+1)
					m.argStack = m.argStack[:base]
				}
				if err != nil {
					return 0, err
				}
				if in.HasDst() {
					regs[in.Dst] = rv
				}
			case ir.OpPrint:
				if len(m.result.Output) < m.opts.MaxOutput {
					m.result.Output = append(m.result.Output, eval(regs, in.Args[0]))
				}
			case ir.OpDummyLoad:
				// Promotion bookkeeping only; no runtime effect.
			case ir.OpMemPhi:
				// Memory SSA bookkeeping only; no runtime effect.

			case ir.OpJmp:
				if ec != nil {
					ec[blk.ID][0]++
				}
				prev, blk = blk, blk.Succs[0]
			case ir.OpBr:
				si := 1
				if eval(regs, in.Args[0]) != 0 {
					si = 0
				}
				if ec != nil {
					ec[blk.ID][si]++
				}
				prev, blk = blk, blk.Succs[si]
			case ir.OpRet:
				if len(in.Args) > 0 {
					return eval(regs, in.Args[0]), nil
				}
				return 0, nil
			default:
				return 0, fmt.Errorf("interp: unhandled opcode %s", in.Op)
			}
			if in.Op.IsTerminator() {
				break
			}
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

package interp

import (
	"testing"
)

// TestCSemantics pins down the C-like arithmetic corners the language
// promises: truncating division and remainder, 64-bit wrapping, masked
// shifts.
func TestCSemantics(t *testing.T) {
	wantOutput(t, `
void main() {
	print(-7 / 2);
	print(-7 % 2);
	print(7 / -2);
	print(7 % -2);
	int big = 4611686018427387904; // 2^62
	print(big * 4);                // wraps to 0
	print(big + big);              // wraps negative
	print(1 << 70);                // shift count masked to 6 bits -> 1<<6
	print(-8 >> 1);                // arithmetic shift
}`, []int64{-3, -1, -3, 1, 0, -9223372036854775808, 64, -4})
}

func TestNestedCallsAndEvaluationOrder(t *testing.T) {
	wantOutput(t, `
int trace;
int tag(int v) { trace = trace * 10 + v; return v; }
int add3(int a, int b, int c) { return a + b + c; }
void main() {
	print(add3(tag(1), tag(2), tag(3)));
	print(trace);
}`, []int64{6, 123})
}

func TestGlobalStructAndArrayInterplay(t *testing.T) {
	wantOutput(t, `
struct stat { int n; int sum; };
struct stat s;
int data[6];
void record(int v) {
	data[s.n] = v;
	s.n = s.n + 1;
	s.sum = s.sum + v;
}
void main() {
	record(5);
	record(7);
	record(11);
	print(s.n);
	print(s.sum);
	print(data[0] + data[1] * data[2]);
}`, []int64{3, 23, 5 + 7*11})
}

func TestShadowingScopes(t *testing.T) {
	wantOutput(t, `
int x = 100;
void main() {
	int x = 1;
	print(x);
	{
		int x = 2;
		print(x);
	}
	print(x);
	for (int x = 9; x < 10; x++) print(x);
	print(x);
}`, []int64{1, 2, 1, 9, 1})
}

func TestWhileConditionOnPointer(t *testing.T) {
	wantOutput(t, `
int a = 3;
void main() {
	int* p = &a;
	int n = 0;
	while (*p > 0) { a = a - 1; n++; }
	print(n);
	print(a);
	int* q = 0;
	if (q) { print(111); } else { print(222); }
}`, []int64{3, 0, 222})
}

func TestMutualRecursion(t *testing.T) {
	// Forward references need no prototypes: the checker registers
	// every function before checking bodies.
	wantOutput(t, `
int isEven(int n) {
	if (n == 0) return 1;
	return isOdd(n - 1);
}
int isOdd(int n) {
	if (n == 0) return 0;
	return isEven(n - 1);
}
void main() {
	print(isEven(10));
	print(isOdd(10));
}`, []int64{1, 0})
}

func TestOpCountsBreakdown(t *testing.T) {
	res := run(t, `
int x;
void main() {
	x = 1;
	x = x + 1;
	print(x);
}`, Options{})
	if res.DynStores() != 2 {
		t.Errorf("stores = %d, want 2", res.DynStores())
	}
	if res.DynLoads() != 2 {
		t.Errorf("loads = %d, want 2", res.DynLoads())
	}
	if res.Steps == 0 {
		t.Error("steps not counted")
	}
}

func TestReturnValuePropagates(t *testing.T) {
	res := run(t, `
int main() {
	return 42;
}`, Options{})
	if res.ReturnValue != 42 {
		t.Errorf("return = %d, want 42", res.ReturnValue)
	}
}

func TestMaxOutputCaps(t *testing.T) {
	res := run(t, `
void main() {
	int i;
	for (i = 0; i < 100; i++) print(i);
}`, Options{MaxOutput: 10})
	if len(res.Output) != 10 {
		t.Errorf("output capped at %d, want 10", len(res.Output))
	}
}

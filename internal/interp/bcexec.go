// Bytecode execution: the dispatch loop over compiled code. One
// activation is one execBC call: a register frame carved from the
// machine's arena (registers, then the constant pool, then the phi
// scratch slot), memory slots bump-allocated exactly like the fast
// path, and a local step counter synced to the Result at call
// boundaries. Observable behavior — output, return value, step count,
// opcode counts, globals, profile, and every error message — matches
// the legacy interpreter bit for bit; the three-way differential tests
// hold all paths to that contract.
package interp

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// mcode is one machine's view of a compiled function: the shared
// immutable code plus this run's mutable companions — the dense
// profile counters and the lazily linked call sites. Linking resolves
// each call site's callee and code exactly once per run, so a
// steady-state call does no map lookups at all.
type mcode struct {
	code  *bcCode
	fc    *funcCounters
	links []bcLink

	// Hot copies of the counter slices: block counters always, edge
	// counters only when this run collects a profile (nil otherwise),
	// so the dispatch prologue does no pointer chasing and no
	// profiling branch.
	blocks []int64
	edges  [][]int64
}

// bcLink is one resolved call site.
type bcLink struct {
	f  *ir.Function
	mc *mcode
}

// mcodeEntry is one slot of the machine's compiled-code table. The
// table is a pre-sized slice rather than a map: a run touches at most
// len(prog.Funcs) functions, lookups happen only while linking, and
// embedding the mcode values makes the whole table one allocation.
// The fixed capacity keeps handed-out *mcode pointers stable.
type mcodeEntry struct {
	f  *ir.Function
	mc mcode
}

// codeFor returns f's machine code wrapper: this run's private table
// first, then the external cache (validated against the current CFG
// version and instruction fingerprint), compiling and publishing on
// miss. The private table makes validation a once-per-function-per-run
// cost.
func (m *machine) codeFor(f *ir.Function) *mcode {
	for i := range m.codes {
		if m.codes[i].f == f {
			return &m.codes[i].mc
		}
	}
	var c *bcCode
	if m.opts.Code != nil {
		if v, ok := m.opts.Code.CompiledCode(f); ok {
			if cc, ok := v.(*bcCode); ok && cc.bcValid(f, m.globalBase) {
				c = cc
			}
		}
	}
	if c == nil {
		c = compileBytecode(f, m.globalBase)
		if m.opts.Code != nil {
			m.opts.Code.PutCompiledCode(f, c)
		}
	}
	fc := m.countersFor(f)
	mc := mcode{code: c, fc: fc, links: make([]bcLink, c.nCalls), blocks: fc.blocks}
	if m.result.Profile != nil {
		mc.edges = fc.edges
	}
	m.codes = append(m.codes, mcodeEntry{f: f, mc: mc})
	return &m.codes[len(m.codes)-1].mc
}

// callBC is the bytecode path's top-level m.call: depth check, compile
// (or cache hit), execute. Nested calls bypass it via linked sites.
func (m *machine) callBC(f *ir.Function, args []int64, depth int) (int64, error) {
	if depth > m.opts.MaxDepth {
		return 0, fmt.Errorf("interp: call depth exceeds %d in %s", m.opts.MaxDepth, f.Name)
	}
	return m.execBC(f, m.codeFor(f), args, depth)
}

// execBC runs one activation of compiled code. Every exit funnels
// through the done label, which restores the slot stack pointer and
// the register arena top — cheaper than a deferred closure on a
// function this hot.
func (m *machine) execBC(f *ir.Function, mc *mcode, args []int64, depth int) (rv int64, rerr error) {
	code := mc.code

	// Register frame: a slice of the shared arena. Growth reallocates
	// the arena without copying — live parent frames keep their captured
	// slices of the old backing array, and every new frame fully
	// initializes its own region, so activations never alias.
	need := int(code.frameLen)
	base := m.regTop
	if base+need > len(m.regArena) {
		n := 2 * len(m.regArena)
		if n < base+need {
			n = base + need
		}
		if n < 256 {
			n = 256
		}
		m.regArena = make([]int64, n)
	}
	regs := m.regArena[base : base+need]
	m.regTop = base + need
	nr := int(code.numRegs)
	zr := regs[:nr]
	for i := range zr {
		zr[i] = 0
	}
	copy(regs[nr:], code.consts)
	regs[need-1] = 0 // phi scratch
	for i, p := range f.Params {
		if i < len(args) {
			regs[p] = args[i]
		}
	}

	// Memory slot frame, identical to the fast path.
	savedSP := m.sp
	frameBase := m.sp
	if end := m.sp + code.frameSize; end > int64(len(m.mem)) {
		m.ensure(end)
	}
	z := m.mem[frameBase : frameBase+code.frameSize]
	for i := range z {
		z[i] = 0
	}
	m.sp += code.frameSize

	// Block counters are maintained unconditionally: opcode counts are
	// reconstructed from them at flush. Edge counters only when
	// profiling.
	bcnt := mc.blocks
	ec := mc.edges

	steps := m.result.Steps
	maxSteps := m.opts.MaxSteps
	nextCheck := int64(math.MaxInt64)
	if !m.deadline.IsZero() {
		nextCheck = steps - steps%timeoutCheckInterval + timeoutCheckInterval
	}
	// One hot-path compare covers both bounds: trip when the step limit
	// is exceeded or a deadline check is due, and sort out which on the
	// cold side.
	limit := maxSteps
	if nextCheck-1 < limit {
		limit = nextCheck - 1
	}

	ins := code.ins
	edges := code.edges
	pc := int(code.entryPC)
	var e *bcEdge
	var in *bcInstr
	bcnt[code.entryID]++
	steps += code.entryPhiSteps
	if code.entryTrap != nil {
		m.result.Steps = steps
		rerr = code.entryTrap
		goto done
	}

	for {
		in = &ins[pc]
		pc++
		steps++
		if steps > limit {
			if steps > maxSteps {
				m.result.Steps = steps
				rerr = fmt.Errorf("%w: limit %d", ErrStepLimit, maxSteps)
				goto done
			}
			m.result.Steps = steps
			if err := m.checkDeadline(); err != nil {
				rerr = err
				goto done
			}
			nextCheck = steps - steps%timeoutCheckInterval + timeoutCheckInterval
			limit = maxSteps
			if nextCheck-1 < limit {
				limit = nextCheck - 1
			}
		}

		switch in.op {
		case bcAdd:
			regs[in.dst] = regs[in.a] + regs[in.b]
		case bcSub:
			regs[in.dst] = regs[in.a] - regs[in.b]
		case bcMul:
			regs[in.dst] = regs[in.a] * regs[in.b]
		case bcDiv:
			d := regs[in.b]
			if d == 0 {
				m.result.Steps = steps
				rerr = fmt.Errorf("interp: division by zero in %s", code.fname)
				goto done
			}
			regs[in.dst] = regs[in.a] / d
		case bcRem:
			d := regs[in.b]
			if d == 0 {
				m.result.Steps = steps
				rerr = fmt.Errorf("interp: modulo by zero in %s", code.fname)
				goto done
			}
			regs[in.dst] = regs[in.a] % d
		case bcAnd:
			regs[in.dst] = regs[in.a] & regs[in.b]
		case bcOr:
			regs[in.dst] = regs[in.a] | regs[in.b]
		case bcXor:
			regs[in.dst] = regs[in.a] ^ regs[in.b]
		case bcShl:
			regs[in.dst] = regs[in.a] << (uint64(regs[in.b]) & 63)
		case bcShr:
			regs[in.dst] = regs[in.a] >> (uint64(regs[in.b]) & 63)
		case bcEq:
			regs[in.dst] = b2i(regs[in.a] == regs[in.b])
		case bcNe:
			regs[in.dst] = b2i(regs[in.a] != regs[in.b])
		case bcLt:
			regs[in.dst] = b2i(regs[in.a] < regs[in.b])
		case bcLe:
			regs[in.dst] = b2i(regs[in.a] <= regs[in.b])
		case bcGt:
			regs[in.dst] = b2i(regs[in.a] > regs[in.b])
		case bcGe:
			regs[in.dst] = b2i(regs[in.a] >= regs[in.b])
		case bcNeg:
			regs[in.dst] = -regs[in.a]
		case bcNot:
			regs[in.dst] = ^regs[in.a]
		case bcCopy:
			regs[in.dst] = regs[in.a]

		case bcLoad:
			addr := in.addr
			if in.rel {
				addr += frameBase
			}
			if addr <= 0 || addr >= int64(len(m.mem)) {
				m.result.Steps = steps
				rerr = fmt.Errorf("interp: load: invalid address %d in %s", addr, code.fname)
				goto done
			}
			regs[in.dst] = m.mem[addr]
		case bcStore:
			addr := in.addr
			if in.rel {
				addr += frameBase
			}
			if addr <= 0 || addr >= int64(len(m.mem)) {
				m.result.Steps = steps
				rerr = fmt.Errorf("interp: store: invalid address %d in %s", addr, code.fname)
				goto done
			}
			m.mem[addr] = regs[in.a]
		case bcAddr:
			addr := in.addr
			if in.rel {
				addr += frameBase
			}
			regs[in.dst] = addr
		case bcLoadPtr:
			addr := regs[in.a]
			if addr <= 0 || addr >= int64(len(m.mem)) {
				m.result.Steps = steps
				rerr = fmt.Errorf("interp: pointer load: invalid address %d in %s", addr, code.fname)
				goto done
			}
			regs[in.dst] = m.mem[addr]
		case bcStorePtr:
			addr := regs[in.a]
			if addr <= 0 || addr >= int64(len(m.mem)) {
				m.result.Steps = steps
				rerr = fmt.Errorf("interp: pointer store: invalid address %d in %s", addr, code.fname)
				goto done
			}
			m.mem[addr] = regs[in.b]
		case bcLoadIdx:
			i := regs[in.a]
			if i < 0 || i >= in.size {
				m.result.Steps = steps
				rerr = fmt.Errorf("interp: index %d out of range for %s[%d] in %s",
					i, code.srcs[in.aux].Loc.Object(), code.srcs[in.aux].Loc.Size(), code.fname)
				goto done
			}
			addr := in.addr + i
			if in.rel {
				addr += frameBase
			}
			if addr <= 0 || addr >= int64(len(m.mem)) {
				m.result.Steps = steps
				rerr = fmt.Errorf("interp: indexed load: invalid address %d in %s", addr, code.fname)
				goto done
			}
			regs[in.dst] = m.mem[addr]
		case bcStoreIdx:
			i := regs[in.a]
			if i < 0 || i >= in.size {
				m.result.Steps = steps
				rerr = fmt.Errorf("interp: index %d out of range for %s[%d] in %s",
					i, code.srcs[in.aux].Loc.Object(), code.srcs[in.aux].Loc.Size(), code.fname)
				goto done
			}
			addr := in.addr + i
			if in.rel {
				addr += frameBase
			}
			if addr <= 0 || addr >= int64(len(m.mem)) {
				m.result.Steps = steps
				rerr = fmt.Errorf("interp: indexed store: invalid address %d in %s", addr, code.fname)
				goto done
			}
			m.mem[addr] = regs[in.b]

		case bcCall:
			lk := &mc.links[in.aux]
			if lk.mc == nil {
				name := code.callNames[in.aux]
				callee := m.prog.Func(name)
				if callee == nil {
					m.result.Steps = steps
					rerr = fmt.Errorf("interp: call to unknown function %s", name)
					goto done
				}
				lk.f = callee
				lk.mc = m.codeFor(callee)
			}
			if depth+1 > m.opts.MaxDepth {
				m.result.Steps = steps
				rerr = fmt.Errorf("interp: call depth exceeds %d in %s", m.opts.MaxDepth, lk.f.Name)
				goto done
			}
			abase := len(m.argStack)
			for _, ai := range code.argPool[in.a : in.a+in.b] {
				m.argStack = append(m.argStack, regs[ai])
			}
			m.result.Steps = steps
			ret, err := m.execBC(lk.f, lk.mc, m.argStack[abase:], depth+1)
			m.argStack = m.argStack[:abase]
			if err != nil {
				rerr = err
				goto done
			}
			steps = m.result.Steps
			if nextCheck != math.MaxInt64 {
				nextCheck = steps - steps%timeoutCheckInterval + timeoutCheckInterval
				limit = maxSteps
				if nextCheck-1 < limit {
					limit = nextCheck - 1
				}
			}
			if in.dst >= 0 {
				regs[in.dst] = ret
			}
		case bcPrint:
			if len(m.result.Output) < m.opts.MaxOutput {
				m.result.Output = append(m.result.Output, regs[in.a])
			}
		case bcNop:
			// counted no-op (dummy load, body memphi)

		case bcJmp:
			e = &edges[in.aux]
			goto edge
		case bcBr:
			if regs[in.a] != 0 {
				e = &edges[in.aux]
			} else {
				e = &edges[in.aux2]
			}
			goto edge
		case bcRet:
			m.result.Steps = steps
			rv = regs[in.a]
			goto done
		case bcRetVoid:
			m.result.Steps = steps
			goto done
		case bcTrap:
			m.result.Steps = steps
			rerr = code.traps[in.aux]
			goto done

		// Fused load + arithmetic. The preamble charged the load's step
		// and ran its limit/deadline checks; the legacy order is load
		// executes (and may fault) before the consumer's own step-limit
		// check, so that check runs between the two halves.
		case bcLoadAdd, bcLoadSub, bcLoadMul, bcLoadAnd, bcLoadOr, bcLoadXor, bcLoadShl, bcLoadShr:
			addr := in.addr
			if in.rel {
				addr += frameBase
			}
			if addr <= 0 || addr >= int64(len(m.mem)) {
				m.result.Steps = steps
				rerr = fmt.Errorf("interp: load: invalid address %d in %s", addr, code.fname)
				goto done
			}
			regs[in.dst2] = m.mem[addr]
			steps++
			if steps > maxSteps {
				m.result.Steps = steps
				rerr = fmt.Errorf("%w: limit %d", ErrStepLimit, maxSteps)
				goto done
			}
			switch in.op {
			case bcLoadAdd:
				regs[in.dst] = regs[in.a] + regs[in.b]
			case bcLoadSub:
				regs[in.dst] = regs[in.a] - regs[in.b]
			case bcLoadMul:
				regs[in.dst] = regs[in.a] * regs[in.b]
			case bcLoadAnd:
				regs[in.dst] = regs[in.a] & regs[in.b]
			case bcLoadOr:
				regs[in.dst] = regs[in.a] | regs[in.b]
			case bcLoadXor:
				regs[in.dst] = regs[in.a] ^ regs[in.b]
			case bcLoadShl:
				regs[in.dst] = regs[in.a] << (uint64(regs[in.b]) & 63)
			case bcLoadShr:
				regs[in.dst] = regs[in.a] >> (uint64(regs[in.b]) & 63)
			}

		// Fused comparison + branch: both steps charged up front (the
		// pair cannot fault, so collapsing the two limit checks is
		// observationally identical), the comparison destination always
		// written.
		case bcEqBr, bcNeBr, bcLtBr, bcLeBr, bcGtBr, bcGeBr:
			steps++
			if steps > maxSteps {
				m.result.Steps = steps
				rerr = fmt.Errorf("%w: limit %d", ErrStepLimit, maxSteps)
				goto done
			}
			var v int64
			switch in.op {
			case bcEqBr:
				v = b2i(regs[in.a] == regs[in.b])
			case bcNeBr:
				v = b2i(regs[in.a] != regs[in.b])
			case bcLtBr:
				v = b2i(regs[in.a] < regs[in.b])
			case bcLeBr:
				v = b2i(regs[in.a] <= regs[in.b])
			case bcGtBr:
				v = b2i(regs[in.a] > regs[in.b])
			case bcGeBr:
				v = b2i(regs[in.a] >= regs[in.b])
			}
			regs[in.dst] = v
			if v != 0 {
				e = &edges[in.aux]
			} else {
				e = &edges[in.aux2]
			}
			goto edge

		// Fused arithmetic + store: the preamble charged the arithmetic
		// step; the store charges its own step (with limit check) before
		// the address check, matching the legacy instruction order.
		case bcAddSt, bcSubSt, bcMulSt, bcAndSt, bcOrSt, bcXorSt, bcShlSt, bcShrSt:
			var v int64
			switch in.op {
			case bcAddSt:
				v = regs[in.a] + regs[in.b]
			case bcSubSt:
				v = regs[in.a] - regs[in.b]
			case bcMulSt:
				v = regs[in.a] * regs[in.b]
			case bcAndSt:
				v = regs[in.a] & regs[in.b]
			case bcOrSt:
				v = regs[in.a] | regs[in.b]
			case bcXorSt:
				v = regs[in.a] ^ regs[in.b]
			case bcShlSt:
				v = regs[in.a] << (uint64(regs[in.b]) & 63)
			case bcShrSt:
				v = regs[in.a] >> (uint64(regs[in.b]) & 63)
			}
			regs[in.dst] = v
			steps++
			if steps > maxSteps {
				m.result.Steps = steps
				rerr = fmt.Errorf("%w: limit %d", ErrStepLimit, maxSteps)
				goto done
			}
			addr := in.addr
			if in.rel {
				addr += frameBase
			}
			if addr <= 0 || addr >= int64(len(m.mem)) {
				m.result.Steps = steps
				rerr = fmt.Errorf("interp: store: invalid address %d in %s", addr, code.fname)
				goto done
			}
			m.mem[addr] = regs[in.dst2]

		default:
			m.result.Steps = steps
			rerr = fmt.Errorf("interp: bytecode: invalid opcode %d in %s", in.op, code.fname)
			goto done
		}
		continue

	edge:
		// Take edge e: target block counter, edge profile counter, the
		// target's phi-prefix steps (charged without a limit check, as
		// in the legacy phi loop), then the lowered phi moves.
		bcnt[e.blockID]++
		if ec != nil {
			ec[e.fromID][e.succIdx]++
		}
		steps += e.phiSteps
		if e.trap != nil {
			m.result.Steps = steps
			rerr = e.trap
			goto done
		}
		for i := range e.copies {
			regs[e.copies[i].dst] = regs[e.copies[i].src]
		}
		pc = int(e.target)
	}

done:
	m.sp = savedSP
	m.regTop = base
	return rv, rerr
}

// flushBytecode reconstructs the dense opcode counters from the
// per-block execution counts and each block's static opcode tally. On
// the successful path every counted block ran to its terminator, so
// the product is exact; error paths discard the Result entirely.
func (m *machine) flushBytecode() {
	for i := range m.codes {
		mc := &m.codes[i].mc
		fc := mc.fc
		for id, tally := range mc.code.blockOps {
			if id >= len(fc.blocks) {
				continue
			}
			n := fc.blocks[id]
			if n == 0 {
				continue
			}
			for _, oc := range tally {
				m.opCounts[oc.op] += n * oc.n
			}
		}
	}
}

package interp

import (
	"reflect"
	"testing"

	"repro/internal/alias"
	"repro/internal/source"
	"repro/internal/workload"
)

// runPath compiles src and executes it with the given options. Each
// path runs on its own freshly compiled program instance, keeping the
// comparison airtight even though interpretation does not mutate IR.
func runPath(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	prog, err := source.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := Run(prog, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestFastPathMatchesLegacy runs every suite workload and a slice of
// generated programs through both interpretation paths and requires
// identical results: output, return value, globals, step and opcode
// counts, and the collected block/edge profile.
func TestFastPathMatchesLegacy(t *testing.T) {
	var sources []string
	for _, w := range workload.Suite() {
		sources = append(sources, w.Src)
	}
	for i := 0; i < 8; i++ {
		sources = append(sources, workload.Generate(workload.DefaultGenConfig(workload.DeriveSeed(41, i))))
	}

	for i, src := range sources {
		fast := runPath(t, src, Options{CollectProfile: true})
		legacy := runPath(t, src, Options{CollectProfile: true, Legacy: true})

		if !reflect.DeepEqual(fast.Output, legacy.Output) {
			t.Errorf("source %d: output differs: fast %v legacy %v", i, fast.Output, legacy.Output)
		}
		if fast.ReturnValue != legacy.ReturnValue {
			t.Errorf("source %d: return value differs: fast %d legacy %d", i, fast.ReturnValue, legacy.ReturnValue)
		}
		if fast.Steps != legacy.Steps {
			t.Errorf("source %d: steps differ: fast %d legacy %d", i, fast.Steps, legacy.Steps)
		}
		if !reflect.DeepEqual(fast.OpCounts, legacy.OpCounts) {
			t.Errorf("source %d: opcode counts differ:\nfast   %v\nlegacy %v", i, fast.OpCounts, legacy.OpCounts)
		}
		if !reflect.DeepEqual(fast.Globals, legacy.Globals) {
			t.Errorf("source %d: global images differ", i)
		}
		if !reflect.DeepEqual(fast.Profile.Funcs, legacy.Profile.Funcs) {
			t.Errorf("source %d: profiles differ:\nfast   %+v\nlegacy %+v", i, fast.Profile.Funcs, legacy.Profile.Funcs)
		}
	}
}

// TestFastPathRecursion exercises the pooled register frames and the
// stack-disciplined argument buffer under deep recursion with multiple
// live activations per level.
func TestFastPathRecursion(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int acc;
void twist(int d, int salt) {
	int local;
	local = d * 3 + salt;
	if (d > 0) {
		twist(d - 1, local);
		twist(d - 1, local + 1);
	}
	acc = acc + local;
}
void main() {
	print(fib(17));
	twist(8, 5);
	print(acc);
}`
	fast := runPath(t, src, Options{CollectProfile: true})
	legacy := runPath(t, src, Options{CollectProfile: true, Legacy: true})
	if !reflect.DeepEqual(fast.Output, legacy.Output) {
		t.Fatalf("output differs: fast %v legacy %v", fast.Output, legacy.Output)
	}
	if !reflect.DeepEqual(fast.Profile.Funcs, legacy.Profile.Funcs) {
		t.Fatalf("profiles differ")
	}
	if fast.Output[0] != 1597 {
		t.Fatalf("fib(17) = %d, want 1597", fast.Output[0])
	}
}

package interp

import "testing"

// TestRegPoolBounded regresses the unbounded-growth bug: releasing far
// more frames than the cap (the shape a deep recursion produces as it
// unwinds) must leave at most maxPooledFrames pinned.
func TestRegPoolBounded(t *testing.T) {
	m := &machine{}
	for i := 0; i < maxPooledFrames*4; i++ {
		m.releaseRegs(make([]int64, 16))
	}
	if len(m.regPool) > maxPooledFrames {
		t.Fatalf("pool grew to %d frames, cap is %d", len(m.regPool), maxPooledFrames)
	}
}

// TestRegPoolKeepsUndersizedFrame regresses the silent-discard bug: an
// acquire too big for the pooled top used to pop and drop that frame,
// bleeding the pool empty under mixed frame sizes. The top must stay
// put and still serve a later, smaller activation.
func TestRegPoolKeepsUndersizedFrame(t *testing.T) {
	m := &machine{}
	small := make([]int64, 4)
	m.releaseRegs(small)

	big := m.acquireRegs(64)
	if len(m.regPool) != 1 {
		t.Fatalf("undersized frame discarded by a large acquire: pool len %d, want 1", len(m.regPool))
	}
	if &big[0] == &small[0] {
		t.Fatal("acquire handed out an under-capacity frame")
	}

	got := m.acquireRegs(4)
	if &got[0] != &small[0] {
		t.Fatal("pooled frame not reused for a fitting acquire")
	}
	if len(m.regPool) != 0 {
		t.Fatalf("pool len %d after reuse, want 0", len(m.regPool))
	}
}

// TestRegPoolFullPrefersBiggerFrames checks the eviction choice when
// the pool is at capacity: a bigger frame replaces the top (raising the
// future hit rate), a smaller one is dropped.
func TestRegPoolFullPrefersBiggerFrames(t *testing.T) {
	m := &machine{}
	for i := 0; i < maxPooledFrames; i++ {
		m.releaseRegs(make([]int64, 8))
	}
	m.releaseRegs(make([]int64, 128))
	if len(m.regPool) != maxPooledFrames {
		t.Fatalf("pool len %d, want %d", len(m.regPool), maxPooledFrames)
	}
	if top := m.regPool[len(m.regPool)-1]; cap(top) != 128 {
		t.Fatalf("full pool kept cap-%d top over a cap-128 release", cap(top))
	}
	m.releaseRegs(make([]int64, 2))
	if top := m.regPool[len(m.regPool)-1]; cap(top) != 128 {
		t.Fatalf("full pool replaced its cap-128 top with cap-%d", cap(top))
	}
}

// TestRegPoolSteadyStateAllocs holds the pool to zero allocations in
// steady state: a hot call loop that acquires and releases same-shaped
// frames must run entirely off pooled memory.
func TestRegPoolSteadyStateAllocs(t *testing.T) {
	m := &machine{}
	// Warm: one frame of each size in the pool.
	for _, n := range []int{8, 16, 32} {
		m.releaseRegs(make([]int64, n))
	}
	avg := testing.AllocsPerRun(200, func() {
		a := m.acquireRegs(8)
		b := m.acquireRegs(8)
		m.releaseRegs(b)
		m.releaseRegs(a)
	})
	if avg != 0 {
		t.Fatalf("steady-state acquire/release allocates %.1f per run, want 0", avg)
	}
}

package interp

import (
	"reflect"
	"testing"

	"repro/internal/alias"
	"repro/internal/cfg"
	"repro/internal/source"
	"repro/internal/ssa"
)

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	prog, err := source.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := Run(prog, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func wantOutput(t *testing.T, src string, want []int64) *Result {
	t.Helper()
	res := run(t, src, Options{})
	if !reflect.DeepEqual(res.Output, want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	wantOutput(t, `
void main() {
	print(2 + 3 * 4);
	print((2 + 3) * 4);
	print(10 / 3);
	print(10 % 3);
	print(-7);
	print(1 << 5);
	print(64 >> 2);
	print(6 & 3);
	print(6 | 3);
	print(6 ^ 3);
	print(~0);
	print(!5);
	print(!0);
}`, []int64{14, 20, 3, 1, -7, 32, 16, 2, 7, 5, -1, 0, 1})
}

func TestComparisonsAndShortCircuit(t *testing.T) {
	wantOutput(t, `
int calls;
int effect(int v) { calls++; return v; }
void main() {
	print(3 < 5);
	print(5 <= 4);
	print(4 == 4);
	print(4 != 4);
	calls = 0;
	print(effect(0) && effect(1));
	print(calls);
	calls = 0;
	print(effect(2) || effect(3));
	print(calls);
}`, []int64{1, 0, 1, 0, 0, 1, 1, 1})
}

func TestLoopsAndGlobals(t *testing.T) {
	res := wantOutput(t, `
int x;
void main() {
	int i;
	for (i = 0; i < 100; i++) x++;
	print(x);
}`, []int64{100})
	// Each iteration loads and stores x (plus the final print load):
	// the dynamic costs the paper's Table 2 measures.
	if res.DynLoads() < 100 || res.DynStores() < 100 {
		t.Errorf("dyn loads/stores = %d/%d, want >= 100 each", res.DynLoads(), res.DynStores())
	}
}

func TestWhileDoWhileBreakContinue(t *testing.T) {
	wantOutput(t, `
void main() {
	int s = 0;
	int i = 0;
	while (i < 10) { s += i; i++; }
	print(s);
	do { s--; } while (s > 40);
	print(s);
	for (i = 0; i < 100; i++) {
		if (i % 2 == 0) continue;
		if (i > 10) break;
		s += i;
	}
	print(s);
}`, []int64{45, 40, 40 + 1 + 3 + 5 + 7 + 9})
}

func TestRecursion(t *testing.T) {
	wantOutput(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
void main() { print(fib(15)); }`, []int64{610})
}

func TestPointersAndSlots(t *testing.T) {
	wantOutput(t, `
int g = 7;
void bump(int* p) { *p = *p + 1; }
void main() {
	int a = 10;
	bump(&a);
	bump(&g);
	print(a);
	print(g);
	int* q = &a;
	*q = *q * 2;
	print(a);
}`, []int64{11, 8, 22})
}

func TestArraysAndStructs(t *testing.T) {
	wantOutput(t, `
struct pair { int lo; int hi; };
struct pair acc;
int tab[10];
void main() {
	int i;
	for (i = 0; i < 10; i++) tab[i] = i * i;
	for (i = 0; i < 10; i++) {
		if (tab[i] < 25) { acc.lo += tab[i]; } else { acc.hi += tab[i]; }
	}
	print(acc.lo);
	print(acc.hi);
}`, []int64{0 + 1 + 4 + 9 + 16, 25 + 36 + 49 + 64 + 81})
}

func TestGlobalInitAndFinalImage(t *testing.T) {
	res := run(t, `
int a = 5;
int b;
int arr[3];
void main() {
	b = a * 2;
	arr[1] = 42;
}`, Options{})
	if got := res.Globals["a"]; got[0] != 5 {
		t.Errorf("a = %v, want 5", got)
	}
	if got := res.Globals["b"]; got[0] != 10 {
		t.Errorf("b = %v, want 10", got)
	}
	if got := res.Globals["arr"]; !reflect.DeepEqual(got, []int64{0, 42, 0}) {
		t.Errorf("arr = %v, want [0 42 0]", got)
	}
}

func TestLocalSlotsZeroedPerActivation(t *testing.T) {
	// Each call to leak() re-zeroes its address-taken local, so both
	// calls print 1 — and recursion gets distinct slot instances.
	wantOutput(t, `
int probe(int* p, int depth) {
	*p = *p + 1;
	if (depth > 0) {
		int inner = 0;
		probe(&inner, depth - 1);
		print(inner);
	}
	return *p;
}
void main() {
	int a = 0;
	print(probe(&a, 2));
	print(a);
}`, []int64{1, 1, 1, 1})
}

func TestRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		"div by zero": `void main() { int z = 0; print(1 / z); }`,
		"mod by zero": `void main() { int z = 0; print(1 % z); }`,
		"null deref":  `void main() { int* p = 0; print(*p); }`,
		"oob index":   `int a[4]; void main() { int i = 9; a[i] = 1; }`,
		"neg index":   `int a[4]; void main() { int i = -1; print(a[i]); }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			prog, err := source.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			if err := alias.Analyze(prog); err != nil {
				t.Fatal(err)
			}
			if _, err := Run(prog, Options{}); err == nil {
				t.Fatal("run succeeded, want runtime error")
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	prog, err := source.Compile(`void main() { while (1) {} }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, Options{MaxSteps: 1000}); err == nil {
		t.Fatal("infinite loop terminated without error")
	}
}

func TestDepthLimit(t *testing.T) {
	prog, err := source.Compile(`
int f(int n) { return f(n + 1); }
void main() { print(f(0)); }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, Options{MaxDepth: 50}); err == nil {
		t.Fatal("unbounded recursion terminated without error")
	}
}

func TestProfileCollection(t *testing.T) {
	res := run(t, `
int x;
void main() {
	int i;
	for (i = 0; i < 25; i++) x += i;
}`, Options{CollectProfile: true})
	fp := res.Profile.Funcs["main"]
	if fp == nil {
		t.Fatal("no profile for main")
	}
	// Some block must have run 25 times (the loop body).
	found := false
	for _, n := range fp.Block {
		if n == 25 {
			found = true
		}
	}
	if !found {
		t.Errorf("no block with frequency 25: %v", fp.Block)
	}
	// Edge counts must sum consistently: total block entries - 1 (entry
	// block has no incoming edge) equals total edge traversals.
	var blocks, edges float64
	for _, n := range fp.Block {
		blocks += n
	}
	for _, n := range fp.Edge {
		edges += n
	}
	if blocks-1 != edges {
		t.Errorf("block entries (%v) - 1 != edge traversals (%v)", blocks, edges)
	}
}

func TestInterpretSSAFormDirectly(t *testing.T) {
	// The interpreter must also execute SSA-form programs (used by
	// integration tests to check promotion before destruction).
	prog, err := source.Compile(`
int x;
void main() {
	int i;
	for (i = 0; i < 10; i++) {
		if (i % 2 == 0) x += i;
	}
	print(x);
}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := alias.Analyze(prog); err != nil {
		t.Fatal(err)
	}
	for _, f := range prog.Funcs {
		if _, err := cfg.Normalize(f); err != nil {
			t.Fatal(err)
		}
		if _, err := ssa.Build(f); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 2+4+6+8 {
		t.Errorf("output = %v, want [20]", res.Output)
	}
}

package interp

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/source"
)

// callHeavySrc exercises the per-call costs the fast path attacks:
// frame setup (registers and slots), argument passing, and profile
// accounting across many short activations.
const callHeavySrc = `
int depth;
int leaf(int a, int b) {
	int t[4];
	t[0] = a; t[1] = b; t[2] = a + b; t[3] = a - b;
	return t[0] + t[1] * t[2] - t[3];
}
int mid(int n) {
	int acc;
	int i;
	for (i = 0; i < 8; i++) {
		acc = acc + leaf(i, n);
	}
	return acc;
}
void main() {
	int i;
	int sum;
	for (i = 0; i < 2000; i++) {
		sum = sum + mid(i);
	}
	print(sum);
}`

func benchProgram(b *testing.B) *ir.Program {
	b.Helper()
	prog, err := source.Compile(callHeavySrc)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	if err := alias.Analyze(prog); err != nil {
		b.Fatalf("Analyze: %v", err)
	}
	return prog
}

func benchRun(b *testing.B, opts Options) {
	b.Helper()
	prog := benchProgram(b)
	opts.CollectProfile = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(prog, opts); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
}

func BenchmarkInterpCallHeavy(b *testing.B)       { benchRun(b, Options{}) }
func BenchmarkInterpCallHeavyLegacy(b *testing.B) { benchRun(b, Options{Legacy: true}) }

// The bytecode benchmark shares one external code cache across
// iterations, the deployment shape: compilation is paid once, every
// run after that is pure dispatch.
func BenchmarkInterpCallHeavyBytecode(b *testing.B) {
	benchRun(b, Options{Bytecode: true, Code: analysis.New()})
}

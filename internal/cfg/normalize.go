package cfg

import (
	"fmt"

	"repro/internal/ir"
)

// SplitCriticalEdges splits every critical edge of f (an edge whose
// source has multiple successors and whose target has multiple
// predecessors) by inserting a jump-only block, and returns the number of
// edges split. The promotion paper assumes interval entry and exit edges
// are never critical; splitting everything up front establishes that
// globally.
func SplitCriticalEdges(f *ir.Function) int {
	split := 0
	// Snapshot the block list: SplitEdge appends new blocks.
	blocks := append([]*ir.Block(nil), f.Blocks...)
	for _, b := range blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for i, s := range b.Succs {
			if len(s.Preds) > 1 {
				f.SplitEdge(b, s, i)
				split++
			}
		}
	}
	return split
}

// Normalize prepares f for interval-based register promotion:
//
//  1. removes unreachable blocks,
//  2. splits all critical edges,
//  3. gives every proper interval a dedicated preheader (a block with
//     the interval header as its only successor, carrying every edge
//     that enters the interval from outside),
//  4. gives every interval exit edge a dedicated tail block (the
//     target's only incoming edge is that exit edge),
//
// and returns the resulting interval forest with Preheader fields set.
// For improper (multi-entry) intervals, the preheader is the paper's
// "least common dominator of all of the entry basic blocks", walked up
// the dominator tree until it lies outside the interval; such a
// preheader is not dedicated, and promotion inserts its loads before the
// block's terminator. Normalize must run before SSA construction (it
// does not update phis when retargeting entry edges).
func Normalize(f *ir.Function) (*Forest, error) {
	RemoveUnreachable(f)
	// Re-establish dense block numbering once, before anything keyed on
	// block IDs exists. Every block Normalize adds below gets the next
	// sequential ID, so density survives, and both the baseline and the
	// promoted compile of the same source (and a TrainSrc variant with
	// the same structure) end up with identical IDs — the property the
	// profile relies on.
	f.Renumber()
	SplitCriticalEdges(f)

	var forest *Forest
	for round := 0; ; round++ {
		if round > 4*len(f.Blocks)+16 {
			return nil, fmt.Errorf("cfg: Normalize(%s) did not converge", f.Name)
		}
		forest = BuildIntervals(f)
		changed := false
		forest.Root.Walk(func(iv *Interval) {
			if iv.Root {
				return
			}
			if insertPreheader(f, iv) {
				changed = true
			}
			if dedicateTails(f, iv) {
				changed = true
			}
		})
		if !changed {
			break
		}
	}

	annotatePreheaders(f, forest)
	return forest, nil
}

// insertPreheader ensures a proper interval has a dedicated preheader and
// reports whether it changed the CFG.
func insertPreheader(f *ir.Function, iv *Interval) bool {
	if !iv.Proper() {
		return false
	}
	header := iv.Header
	var outside []*ir.Block
	for _, p := range header.Preds {
		if !iv.Contains(p) {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 && len(outside[0].Succs) == 1 {
		return false // dedicated preheader already exists
	}
	pre := f.NewBlock()
	pre.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
	for _, p := range outside {
		for i, s := range p.Succs {
			if s == header {
				p.Succs[i] = pre
				pre.Preds = append(pre.Preds, p)
			}
		}
		// Drop p from header's preds (no phis exist pre-SSA).
		for i := len(header.Preds) - 1; i >= 0; i-- {
			if header.Preds[i] == p {
				header.Preds = append(header.Preds[:i], header.Preds[i+1:]...)
			}
		}
	}
	// The rewiring above edits Preds/Succs directly, so bump the CFG
	// version explicitly (the NewBlock/AddEdge bumps alone would also
	// invalidate, but the contract is per mutation point).
	f.MarkCFGChanged()
	ir.AddEdge(pre, header)
	return true
}

// dedicateTails splits every exit edge whose target has other
// predecessors, so each exit edge owns its tail block. Reports whether
// the CFG changed.
func dedicateTails(f *ir.Function, iv *Interval) bool {
	changed := false
	for _, e := range iv.ExitEdges {
		if len(e.Tail.Preds) > 1 {
			f.SplitEdge(e.From, e.Tail, -1)
			changed = true
		}
	}
	return changed
}

// AnnotatedIntervals builds the interval forest of an already-normalized
// function and re-derives the Preheader annotations Normalize would have
// set. Callers transforming a Clone (whose forest pointers reference the
// original's blocks) use this to get a forest over the clone's own
// blocks; on a normalized CFG the preheaders found here are exactly the
// ones Normalize inserted.
func AnnotatedIntervals(f *ir.Function) *Forest {
	forest := BuildIntervals(f)
	annotatePreheaders(f, forest)
	return forest
}

func annotatePreheaders(f *ir.Function, forest *Forest) {
	dom := BuildDomTree(f)
	forest.Root.Walk(func(iv *Interval) {
		switch {
		case iv.Root:
			iv.Preheader = f.Entry()
		case iv.Proper():
			for _, p := range iv.Header.Preds {
				if !iv.Contains(p) {
					iv.Preheader = p
					break
				}
			}
		default:
			pre := dom.LeastCommonDominator(iv.Entries)
			for pre != nil && iv.Contains(pre) {
				next := dom.Idom(pre)
				if next == pre {
					break
				}
				pre = next
			}
			iv.Preheader = pre
		}
	})
}

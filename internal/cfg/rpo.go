// Package cfg provides control-flow-graph analyses over the IR: reverse
// postorder, dominator trees (Cooper–Harvey–Kennedy), dominance
// frontiers and iterated dominance frontiers, interval (loop nesting)
// forests in the sense of the Sastry–Ju register promotion paper, and
// the CFG normalizations that paper assumes: no critical entry or exit
// edges, a dedicated preheader per interval, and a dedicated tail block
// per interval exit edge.
//
// The analyses index their state by ir.BlockID, sizing slices with
// ir.Function.BlockIDBound — the dense-numbering contract established
// by ir.Function.Renumber (DESIGN.md §8). IDs need not be gap-free for
// correctness, only bounded; density just keeps the slices tight.
package cfg

import (
	"repro/internal/bitset"
	"repro/internal/ir"
)

// ReversePostorder returns the blocks of f reachable from the entry in
// reverse postorder of a depth-first search. Unreachable blocks are
// omitted.
func ReversePostorder(f *ir.Function) []*ir.Block {
	seen := bitset.NewDense(int(f.BlockIDBound()))
	post := make([]*ir.Block, 0, len(f.Blocks))

	// Iterative DFS; frame holds the block and the next successor index
	// to visit, so post-order positions match the recursive formulation.
	type frame struct {
		b *ir.Block
		i int
	}
	stack := make([]frame, 0, len(f.Blocks))
	entry := f.Entry()
	seen.Set(int(entry.ID))
	stack = append(stack, frame{b: entry})
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.i < len(top.b.Succs) {
			s := top.b.Succs[top.i]
			top.i++
			if !seen.Has(int(s.ID)) {
				seen.Set(int(s.ID))
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, top.b)
		stack = stack[:len(stack)-1]
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// RemoveUnreachable deletes blocks not reachable from the entry,
// unlinking their edges (and trimming phi arguments in reachable
// successors). The CFG version is bumped only when a block is actually
// removed, so the no-op call on an already-clean graph keeps cached
// analyses valid.
func RemoveUnreachable(f *ir.Function) int {
	reach := bitset.NewDense(int(f.BlockIDBound()))
	for _, b := range ReversePostorder(f) {
		reach.Set(int(b.ID))
	}
	removed := 0
	for _, b := range f.Blocks {
		if reach.Has(int(b.ID)) {
			continue
		}
		for _, s := range b.Succs {
			if reach.Has(int(s.ID)) {
				s.RemovePred(b)
			}
		}
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach.Has(int(b.ID)) {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	f.Blocks = kept
	if removed > 0 {
		f.MarkCFGChanged()
	}
	return removed
}

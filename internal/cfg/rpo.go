// Package cfg provides control-flow-graph analyses over the IR: reverse
// postorder, dominator trees (Cooper–Harvey–Kennedy), dominance
// frontiers and iterated dominance frontiers, interval (loop nesting)
// forests in the sense of the Sastry–Ju register promotion paper, and
// the CFG normalizations that paper assumes: no critical entry or exit
// edges, a dedicated preheader per interval, and a dedicated tail block
// per interval exit edge.
package cfg

import "repro/internal/ir"

// ReversePostorder returns the blocks of f reachable from the entry in
// reverse postorder of a depth-first search. Unreachable blocks are
// omitted.
func ReversePostorder(f *ir.Function) []*ir.Block {
	seen := make(map[*ir.Block]bool, len(f.Blocks))
	post := make([]*ir.Block, 0, len(f.Blocks))
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// RemoveUnreachable deletes blocks not reachable from the entry,
// unlinking their edges (and trimming phi arguments in reachable
// successors).
func RemoveUnreachable(f *ir.Function) int {
	reach := make(map[*ir.Block]bool, len(f.Blocks))
	for _, b := range ReversePostorder(f) {
		reach[b] = true
	}
	removed := 0
	for _, b := range f.Blocks {
		if reach[b] {
			continue
		}
		for _, s := range b.Succs {
			if reach[s] {
				s.RemovePred(b)
			}
		}
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	f.Blocks = kept
	return removed
}

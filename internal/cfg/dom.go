package cfg

import "repro/internal/ir"

// DomTree is the dominator tree of a function, built with the
// Cooper–Harvey–Kennedy iterative algorithm over reverse postorder.
// All per-block state is held in slices indexed by ir.BlockID, and the
// tree is preorder in/out numbered so Dominates answers in O(1).
type DomTree struct {
	f   *ir.Function
	rpo []*ir.Block

	// All of the following are indexed by ir.BlockID. Unreachable blocks
	// have rpoIndex -1 and nil idom.
	rpoIndex []int32
	idom     []*ir.Block
	children [][]*ir.Block
	depth    []int32

	// Euler tour numbering of the dominator tree: a dominates b iff
	// pre[a] <= pre[b] && post[b] <= post[a].
	pre, post []int32
}

// BuildDomTree computes the dominator tree of f. Unreachable blocks are
// ignored; callers normally run RemoveUnreachable first.
func BuildDomTree(f *ir.Function) *DomTree {
	bound := int(f.BlockIDBound())
	t := &DomTree{
		f:        f,
		rpo:      ReversePostorder(f),
		rpoIndex: make([]int32, bound),
		idom:     make([]*ir.Block, bound),
		children: make([][]*ir.Block, bound),
		depth:    make([]int32, bound),
		pre:      make([]int32, bound),
		post:     make([]int32, bound),
	}
	for i := range t.rpoIndex {
		t.rpoIndex[i] = -1
	}
	for i, b := range t.rpo {
		t.rpoIndex[b.ID] = int32(i)
	}

	// The fixed point runs entirely on RPO numbers: doms[i] is the RPO
	// number of rpo[i]'s candidate idom, -1 while unprocessed.
	n := len(t.rpo)
	doms := make([]int32, n)
	for i := range doms {
		doms[i] = -1
	}
	doms[0] = 0

	intersect := func(a, b int32) int32 {
		for a != b {
			for a > b {
				a = doms[a]
			}
			for b > a {
				b = doms[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for i := 1; i < n; i++ {
			newIdom := int32(-1)
			for _, p := range t.rpo[i].Preds {
				pi := t.rpoIndex[p.ID]
				if pi < 0 || doms[pi] < 0 {
					continue // unreachable, or not yet processed this round
				}
				if newIdom < 0 {
					newIdom = pi
				} else {
					newIdom = intersect(pi, newIdom)
				}
			}
			if newIdom >= 0 && doms[i] != newIdom {
				doms[i] = newIdom
				changed = true
			}
		}
	}

	for i, b := range t.rpo {
		t.idom[b.ID] = t.rpo[doms[i]]
	}
	for _, b := range t.rpo[1:] {
		id := t.idom[b.ID]
		t.children[id.ID] = append(t.children[id.ID], b)
	}
	// Depths in RPO order: idom always precedes its children in RPO.
	for _, b := range t.rpo[1:] {
		t.depth[b.ID] = t.depth[t.idom[b.ID].ID] + 1
	}
	t.number()
	return t
}

// number assigns the Euler preorder in/out numbers by an iterative DFS
// over dominator-tree children.
func (t *DomTree) number() {
	type frame struct {
		b *ir.Block
		i int
	}
	var clock int32
	stack := []frame{{b: t.rpo[0]}}
	t.pre[t.rpo[0].ID] = 0
	clock = 1
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		kids := t.children[top.b.ID]
		if top.i < len(kids) {
			c := kids[top.i]
			top.i++
			t.pre[c.ID] = clock
			clock++
			stack = append(stack, frame{b: c})
			continue
		}
		t.post[top.b.ID] = clock
		clock++
		stack = stack[:len(stack)-1]
	}
}

// Func returns the function the tree was built for.
func (t *DomTree) Func() *ir.Function { return t.f }

// Idom returns the immediate dominator of b; the entry block returns
// itself. Unreachable blocks return nil.
func (t *DomTree) Idom(b *ir.Block) *ir.Block {
	if int(b.ID) >= len(t.idom) {
		return nil
	}
	return t.idom[b.ID]
}

// Children returns the dominator-tree children of b.
func (t *DomTree) Children(b *ir.Block) []*ir.Block {
	if int(b.ID) >= len(t.children) {
		return nil
	}
	return t.children[b.ID]
}

// Depth returns the dominator-tree depth of b (entry = 0).
func (t *DomTree) Depth(b *ir.Block) int {
	if int(b.ID) >= len(t.depth) {
		return 0
	}
	return int(t.depth[b.ID])
}

// RPO returns the reverse postorder the tree was built over.
func (t *DomTree) RPO() []*ir.Block { return t.rpo }

// RPOIndex returns b's reverse-postorder number, or -1 if unreachable.
func (t *DomTree) RPOIndex(b *ir.Block) int {
	if int(b.ID) >= len(t.rpoIndex) {
		return -1
	}
	return int(t.rpoIndex[b.ID])
}

// Dominates reports whether a dominates b (reflexively). The query is
// O(1): it compares Euler in/out numbers instead of walking the idom
// chain.
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	if a == b {
		return true
	}
	if t.RPOIndex(a) < 0 || t.RPOIndex(b) < 0 {
		return false
	}
	return t.pre[a.ID] <= t.pre[b.ID] && t.post[b.ID] <= t.post[a.ID]
}

// StrictlyDominates reports whether a dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && t.Dominates(a, b)
}

// LCA returns the least common ancestor of a and b in the dominator
// tree: the deepest block that dominates both.
func (t *DomTree) LCA(a, b *ir.Block) *ir.Block {
	for t.Depth(a) > t.Depth(b) {
		a = t.idom[a.ID]
	}
	for t.Depth(b) > t.Depth(a) {
		b = t.idom[b.ID]
	}
	for a != b {
		a = t.idom[a.ID]
		b = t.idom[b.ID]
	}
	return a
}

// LeastCommonDominator returns the deepest block dominating every block
// in the list, or nil for an empty list.
func (t *DomTree) LeastCommonDominator(blocks []*ir.Block) *ir.Block {
	if len(blocks) == 0 {
		return nil
	}
	lca := blocks[0]
	for _, b := range blocks[1:] {
		lca = t.LCA(lca, b)
	}
	return lca
}
